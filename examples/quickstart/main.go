// Quickstart: factor a 2D Poisson matrix, solve it with the paper's
// proposed 3D SpTRSV on a simulated 4×4×4 Cori layout, and verify the
// residual. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"sptrsv"
)

func main() {
	// A 96×96 2D 9-point Poisson analog (n = 9216).
	a := sptrsv.S2D9pt(96, 96, 1)
	fmt.Printf("matrix: n=%d nnz=%d\n", a.N, a.NNZ())

	// Preprocess: nested dissection, symbolic analysis, supernodal LU.
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factors: nnz(LU)=%d\n", sys.NNZFactors())

	// The proposed 3D algorithm on a 4×4×4 layout (64 simulated ranks of
	// the Cori Haswell model), binary/flat trees picked automatically.
	solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
		Layout:    sptrsv.Layout{Px: 4, Py: 4, Pz: 4},
		Algorithm: sptrsv.Proposed3D,
		Trees:     sptrsv.BinaryTrees,
		Machine:   sptrsv.CoriHaswell(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// One right-hand side of all ones.
	b := sptrsv.NewPanel(a.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}

	x, report, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated solve time: %.4g s\n", report.Time)
	fmt.Printf("breakdown (mean/rank): FP %.3g s, XY-comm %.3g s, Z-comm %.3g s\n",
		report.MeanFP, report.MeanXY, report.MeanZ)
	fmt.Printf("residual ‖Ax−b‖∞ = %.3g\n", solver.Residual(x, b))
}
