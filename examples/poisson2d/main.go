// Poisson2d reproduces the paper's central CPU comparison on one matrix:
// it sweeps Pz for a fixed total rank count and prints the solve time of
// the baseline 3D algorithm against the proposed one — a one-matrix slice
// of Fig. 4, runnable in seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sptrsv"
)

func main() {
	a := sptrsv.S2D9pt(128, 128, 7)
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{})
	if err != nil {
		log.Fatal(err)
	}

	b := sptrsv.NewPanel(a.N, 1)
	for i := range b.Data {
		b.Data[i] = float64(i%13) - 6
	}

	const totalRanks = 256
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pz\tPx×Py\tbaseline 3D [ms]\tproposed 3D [ms]\tspeedup")
	for pz := 1; pz <= 32; pz *= 2 {
		px, py := sptrsv.Square2D(totalRanks / pz)
		layout := sptrsv.Layout{Px: px, Py: py, Pz: pz}

		run := func(algo sptrsv.Config) float64 {
			solver, err := sptrsv.NewSolver(sys, algo)
			if err != nil {
				log.Fatal(err)
			}
			x, rep, err := solver.Solve(b)
			if err != nil {
				log.Fatal(err)
			}
			if r := solver.Residual(x, b); r > 1e-7 {
				log.Fatalf("residual too large: %g", r)
			}
			return rep.Time
		}

		base := run(sptrsv.Config{
			Layout: layout, Algorithm: sptrsv.Baseline3D,
			Trees: sptrsv.FlatTrees, Machine: sptrsv.CoriHaswell(),
		})
		neu := run(sptrsv.Config{
			Layout: layout, Algorithm: sptrsv.Proposed3D,
			Trees: sptrsv.BinaryTrees, Machine: sptrsv.CoriHaswell(),
		})
		fmt.Fprintf(tw, "%d\t%d×%d\t%.3g\t%.3g\t%.2fx\n", pz, px, py, base*1e3, neu*1e3, base/neu)
	}
	tw.Flush()
	fmt.Println("\n(256 simulated Cori Haswell ranks; Pz=1 rows are the 2D algorithms)")
}
