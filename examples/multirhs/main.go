// Multirhs explores the paper's nrhs dimension (Figs. 9–10 run 1 and 50
// right-hand sides): on a GPU model, GEMM efficiency makes 50 RHS far
// cheaper than 50 single-RHS solves, and the CPU→GPU speedup shifts.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sptrsv"
)

func main() {
	// The fusion-analog matrix of the paper's Fig. 9 (block-structured 2D).
	a := sptrsv.S1MatLike(24, 8, 3)
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s1_mat analog: n=%d, nnz(LU)=%d\n", a.N, sys.NNZFactors())

	layout := sptrsv.Layout{Px: 1, Py: 1, Pz: 8} // 8 GPUs, one per grid
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nrhs\tCPU [ms]\tGPU [ms]\tCPU/GPU\tGPU ms/rhs")
	for _, nrhs := range []int{1, 5, 50} {
		b := sptrsv.NewPanel(a.N, nrhs)
		for i := range b.Data {
			b.Data[i] = 1 + float64(i%5)
		}

		solve := func(cfg sptrsv.Config) float64 {
			solver, err := sptrsv.NewSolver(sys, cfg)
			if err != nil {
				log.Fatal(err)
			}
			x, rep, err := solver.Solve(b)
			if err != nil {
				log.Fatal(err)
			}
			if r := solver.Residual(x, b); r > 1e-7 {
				log.Fatalf("residual too large: %g", r)
			}
			return rep.Time
		}

		cpu := solve(sptrsv.Config{
			Layout: layout, Algorithm: sptrsv.Proposed3D,
			Trees: sptrsv.FlatTrees, Machine: sptrsv.CrusherCPU(),
		})
		gpu := solve(sptrsv.Config{
			Layout: layout, Algorithm: sptrsv.GPUSingle,
			Machine: sptrsv.CrusherGPU(),
		})
		fmt.Fprintf(tw, "%d\t%.3g\t%.3g\t%.2fx\t%.4g\n",
			nrhs, cpu*1e3, gpu*1e3, cpu/gpu, gpu*1e3/float64(nrhs))
	}
	tw.Flush()
	fmt.Println("\n(Crusher model, 1×1×8 layout — the paper's Fig. 9 protocol)")
}
