// Gpuscaling reproduces the headline of the paper's Fig. 11 on one matrix:
// the 2D GPU algorithm (Pz=1, NVSHMEM multi-GPU) stops scaling once it
// leaves the NVLink island, while the 3D layout keeps scaling to hundreds
// of GPUs because the third dimension communicates only through the cheap
// sparse allreduce.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sptrsv"
)

func main() {
	a := sptrsv.DielFilterLike(16, 4) // 3D wave-equation analog
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dielFilter analog: n=%d, nnz(LU)=%d\n", a.N, sys.NNZFactors())

	b := sptrsv.NewPanel(a.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}

	solve := func(layout sptrsv.Layout) float64 {
		algo := sptrsv.GPUMulti
		if layout.Px == 1 {
			algo = sptrsv.GPUSingle
		}
		solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
			Layout: layout, Algorithm: algo,
			Trees: sptrsv.BinaryTrees, Machine: sptrsv.PerlmutterGPU(),
		})
		if err != nil {
			log.Fatal(err)
		}
		x, rep, err := solver.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		if r := solver.Residual(x, b); r > 1e-7 {
			log.Fatalf("residual too large: %g", r)
		}
		return rep.Time
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layout\tGPUs\ttime [ms]\tnote")
	fmt.Fprintln(tw, "-- 2D (Pz=1): scaling dies at the node boundary (4 GPUs/node) --")
	for _, px := range []int{1, 2, 4, 8} {
		t := solve(sptrsv.Layout{Px: px, Py: 1, Pz: 1})
		note := ""
		if px == 8 {
			note = "crosses nodes: inter-node puts at 12.5 GB/s vs 250 GB/s NVLink"
		}
		fmt.Fprintf(tw, "%d×1×1\t%d\t%.4g\t%s\n", px, px, t*1e3, note)
	}
	fmt.Fprintln(tw, "-- 3D (Px≤4 inside a node, Pz grows): scales on --")
	for _, pz := range []int{1, 4, 16, 64} {
		t := solve(sptrsv.Layout{Px: 4, Py: 1, Pz: pz})
		fmt.Fprintf(tw, "4×1×%d\t%d\t%.4g\t\n", pz, 4*pz, t*1e3)
	}
	tw.Flush()
	fmt.Println("\n(Perlmutter A100 model; the paper scales the 3D variant to 256 GPUs)")
}
