package sptrsv_test

// One testing.B benchmark per table/figure of the paper, each driving the
// same harness as cmd/figures in quick mode (simulated time, real
// numerics), plus wall-clock benchmarks of the goroutine backend and the
// preprocessing pipeline. Run with:
//
//	go test -bench=. -benchmem
//
// For the full-resolution sweeps use cmd/figures.

import (
	"testing"

	"sptrsv"
	"sptrsv/internal/bench"
	"sptrsv/internal/gen"
)

func quick() bench.Config {
	return bench.Config{Scale: gen.Small, Quick: true}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := bench.Table1(quick()); len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.Fig4(quick()); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.Breakdown(quick(), "s2d9pt"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.Breakdown(quick(), "nlpkkt"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.LoadBalance(quick(), "s2d9pt"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.LoadBalance(quick(), "nlpkkt"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.GPUScaling(quick(), "crusher"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.GPUScaling(quick(), "perlmutter"); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.Fig11(quick()); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// benchSystem builds one reusable factored system for the wall-clock
// benchmarks below.
func benchSystem(b *testing.B) *sptrsv.System {
	b.Helper()
	sys, err := sptrsv.Factorize(sptrsv.S2D9pt(64, 64, 1), sptrsv.FactorOptions{TreeDepth: 3})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkFactorize measures the preprocessing pipeline (ordering,
// symbolic analysis, numeric LU, supernodal packaging).
func BenchmarkFactorize(b *testing.B) {
	a := sptrsv.S2D9pt(64, 64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sptrsv.Factorize(a, sptrsv.FactorOptions{TreeDepth: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialSolve measures the single-threaded supernodal reference.
func BenchmarkSerialSolve(b *testing.B) {
	sys := benchSystem(b)
	rhs := sptrsv.NewPanel(sys.A.N, 1)
	for i := range rhs.Data {
		rhs.Data[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SN.Solve(rhs.PermuteRows(sys.Perm))
	}
}

// benchPoolSolve measures real parallel wall-clock solves on the goroutine
// backend with the given layout.
func benchPoolSolve(b *testing.B, px, py, pz, nrhs int) {
	sys := benchSystem(b)
	solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
		Layout:    sptrsv.Layout{Px: px, Py: py, Pz: pz},
		Algorithm: sptrsv.Proposed3D,
		Trees:     sptrsv.BinaryTrees,
		Machine:   sptrsv.CoriHaswell(),
		Backend:   sptrsv.GoroutinePool(),
	})
	if err != nil {
		b.Fatal(err)
	}
	rhs := sptrsv.NewPanel(sys.A.N, nrhs)
	for i := range rhs.Data {
		rhs.Data[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
}

func BenchmarkPoolSolve1x1x1(b *testing.B) { benchPoolSolve(b, 1, 1, 1, 1) }
func BenchmarkPoolSolve2x2x1(b *testing.B) { benchPoolSolve(b, 2, 2, 1, 1) }
func BenchmarkPoolSolve2x2x4(b *testing.B) { benchPoolSolve(b, 2, 2, 4, 1) }
func BenchmarkPoolSolveMulti(b *testing.B) { benchPoolSolve(b, 2, 2, 4, 8) }

// BenchmarkSimSolve measures the simulator's own throughput (events/sec
// matter for the figure sweeps).
func BenchmarkSimSolve(b *testing.B) {
	sys := benchSystem(b)
	solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
		Layout:    sptrsv.Layout{Px: 4, Py: 4, Pz: 4},
		Algorithm: sptrsv.Proposed3D,
		Trees:     sptrsv.BinaryTrees,
		Machine:   sptrsv.CoriHaswell(),
	})
	if err != nil {
		b.Fatal(err)
	}
	rhs := sptrsv.NewPanel(sys.A.N, 1)
	for i := range rhs.Data {
		rhs.Data[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
}

// BenchmarkSolveBatch measures SolveBatch throughput: 8 independent
// right-hand sides solved concurrently on the goroutine backend by one
// shared Solver, reporting aggregate solves per second.
func BenchmarkSolveBatch(b *testing.B) {
	sys := benchSystem(b)
	solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
		Layout:    sptrsv.Layout{Px: 2, Py: 2, Pz: 1},
		Algorithm: sptrsv.Proposed3D,
		Trees:     sptrsv.BinaryTrees,
		Machine:   sptrsv.CoriHaswell(),
		Backend:   sptrsv.GoroutinePool(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	bs := make([]*sptrsv.Panel, batch)
	for i := range bs {
		bs[i] = sptrsv.NewPanel(sys.A.N, 1)
		for j := range bs[i].Data {
			bs[i].Data[j] = float64(i + 1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.SolveBatch(bs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "solves/s")
}
