package runtime

import (
	"container/heap"
	"fmt"
	"runtime/debug"

	"sptrsv/internal/fault"
)

// Network models the cost of one point-to-point message.
//
// Cost returns the sender-side injection overhead (CPU time the sender
// spends in the send call), the end-to-end latency until the payload is
// available at the receiver (the α + β·bytes term, link chosen by the
// src/dst placement), and the receiver-side processing overhead charged
// when the message is consumed — the term that makes high fan-in flat
// reductions expensive in real MPI. Self-messages scheduled with Ctx.After
// bypass it.
type Network interface {
	Cost(src, dst, bytes int) (sendOverhead, latency, recvOverhead float64)
}

// ZeroNetwork is a Network with no cost; unit tests use it to check pure
// algorithm correctness.
type ZeroNetwork struct{}

// Cost implements Network.
func (ZeroNetwork) Cost(_, _, _ int) (float64, float64, float64) { return 0, 0, 0 }

type event struct {
	time     float64
	seq      int
	recvOver float64
	msg      Msg
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the discrete-event backend. Events are delivered in global
// virtual-time order with a deterministic sequence tie-break, so two runs of
// the same deterministic handlers produce identical clocks — including under
// fault injection, whose PRNG draws happen in that same global order.
type Engine struct {
	net       Network
	handlers  []Handler
	clocks    []float64
	timers    []Timers
	queue     eventHeap
	seq       int
	delivered int
	// MaxEvents guards against runaway handlers; 0 means the default.
	MaxEvents int
	// Opts enables optional instrumentation (event tracing) and fault
	// injection. Zero value: everything off, no overhead on the hot paths.
	Opts Options

	tr *tracer
	// msgID numbers traced messages. It is deliberately separate from seq:
	// seq breaks virtual-time ties in the event heap, and tracing must not
	// perturb that ordering (determinism is pinned by tests).
	msgID int64

	inj     *fault.Injector
	crashed []bool
	// firstCrash records the earliest injected crash that fired; the run
	// reports it as a fault.CrashError.
	firstCrash *fault.CrashError
	// faults tallies the injected faults that fired this run, published to
	// the metrics registry when the run ends.
	faults faultTally
}

// NewEngine creates a DES over n ranks with the given network model.
func NewEngine(n int, net Network) *Engine {
	return &Engine{
		net:      net,
		handlers: make([]Handler, n),
		clocks:   make([]float64, n),
		timers:   make([]Timers, n),
	}
}

// step runs one handler entry (Init or OnMessage) panic-safely: a panic in
// the handler — or in the backend invariants it trips — surfaces as a typed
// error from Run instead of crashing the process.
func (e *Engine) step(rank int, f func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fault.FromPanic(rank, rec, debug.Stack())
		}
	}()
	f()
	return nil
}

// noteCrash kills rank at virtual time t: it executes nothing further and
// every message addressed to it is discarded.
func (e *Engine) noteCrash(rank int, t float64) {
	e.crashed[rank] = true
	e.faults.crashes++
	if e.firstCrash == nil || t < e.firstCrash.At {
		e.firstCrash = &fault.CrashError{Rank: rank, At: t}
	}
	if e.tr != nil {
		at := e.clocks[rank]
		if t > at {
			at = t
		}
		e.tr.add(rank, Event{Kind: EvFault, Cat: CatFault, Peer: -1, Start: at, Key: "crash"})
	}
}

// Run installs one handler per rank, drives the simulation to quiescence,
// and returns per-rank clocks and timers. It fails with a typed fault error
// if a handler panics, an injected crash prevents completion, or any rank
// is not Done at quiescence (a deadlock — the algorithm expected more
// messages), and with a plain error if the event budget is exhausted.
func (e *Engine) Run(newHandler func(rank int) Handler) (*Result, error) {
	n := len(e.handlers)
	e.tr = newTracer(n, e.Opts)
	e.inj = fault.NewInjector(e.Opts.Faults)
	e.crashed = make([]bool, n)
	e.firstCrash = nil
	e.faults = faultTally{}
	failed, stalled := true, false
	defer func() { publishRun("des", e.timers, e.tr, e.faults, failed, stalled) }()
	ctxs := make([]*Ctx, n)
	for r := 0; r < n; r++ {
		e.handlers[r] = newHandler(r)
		ctxs[r] = &Ctx{rank: r, b: e}
	}
	for r := 0; r < n; r++ {
		if t, ok := e.inj.CrashTime(r); ok && t <= 0 {
			e.noteCrash(r, t)
			continue
		}
		if err := e.step(r, func() { e.handlers[r].Init(ctxs[r]) }); err != nil {
			return nil, err
		}
	}
	maxEvents := e.MaxEvents
	if maxEvents == 0 {
		maxEvents = 500_000_000
	}
	for len(e.queue) > 0 {
		if e.delivered++; e.delivered > maxEvents {
			return nil, fmt.Errorf("runtime: event budget %d exhausted", maxEvents)
		}
		ev := heap.Pop(&e.queue).(event)
		r := ev.msg.Dst
		if e.crashed[r] {
			continue // the payload is lost with the rank
		}
		if t, ok := e.inj.CrashTime(r); ok && ev.time >= t {
			e.noteCrash(r, t)
			continue
		}
		dead := false
		if tg := e.Opts.ElasticTag; tg != 0 {
			if ev.msg.Tag == tg {
				// Elastic deadline ticks are timer pops, not dependencies: one
				// that outlived its purpose (the rank already closed that phase,
				// or finished outright) is discarded undelivered, so a trailing
				// tick can never bump a finished rank's clock toward the deadline
				// and inflate the makespan.
				if el, ok := e.handlers[r].(ElasticTicker); !ok || !el.TickLive(ev.msg.Data) {
					continue
				}
			} else if dl, ok := e.handlers[r].(DeadLetterer); ok {
				// A payload for a phase the rank forcibly closed is delivered
				// (the deferral bookkeeping stays uniform) but charged no wait:
				// the rank polls past it rather than blocking on it.
				dead = dl.DeadOnArrival(ev.msg)
			}
		}
		if wait := ev.time - e.clocks[r]; !dead && wait > 0 {
			e.timers[r].ByCat[ev.msg.Cat] += wait
			e.timers[r].Waits++
			e.timers[r].WaitSeconds += wait
			if e.tr != nil {
				e.tr.add(r, Event{
					Kind: EvWait, Cat: ev.msg.Cat, Tag: ev.msg.Tag,
					Peer: ev.msg.Src, Bytes: ev.msg.Bytes, MsgID: ev.msg.id,
					Start: e.clocks[r], Dur: wait, Arrive: ev.time,
				})
			}
			e.clocks[r] = ev.time
		}
		if e.tr != nil {
			e.tr.add(r, Event{
				Kind: EvRecv, Cat: ev.msg.Cat, Tag: ev.msg.Tag,
				Peer: ev.msg.Src, Bytes: ev.msg.Bytes, MsgID: ev.msg.id,
				Start: e.clocks[r], Dur: ev.recvOver, Arrive: ev.time,
			})
		}
		if ev.recvOver > 0 && !dead {
			e.timers[r].ByCat[ev.msg.Cat] += ev.recvOver
			e.clocks[r] += ev.recvOver
		}
		if err := e.step(r, func() { e.handlers[r].OnMessage(ctxs[r], ev.msg) }); err != nil {
			return nil, err
		}
	}
	if e.firstCrash != nil {
		return e.partialResult(), e.firstCrash
	}
	if stuck := e.stuckRank(); stuck >= 0 {
		stalled = true
		peer, tag, ok := e.inj.SuspectFor(stuck)
		if !ok {
			peer, tag = -1, -1
		}
		done, total := progressOf(e.handlers[stuck])
		return e.partialResult(), &fault.StallError{
			Rank: stuck, Peer: peer, Tag: tag,
			State: waitState(e.handlers[stuck]), Virtual: true,
			Done: done, Total: total,
		}
	}
	failed = false
	res := &Result{
		Clocks: append([]float64(nil), e.clocks...),
		Timers: make([]Timers, n),
	}
	copy(res.Timers, e.timers)
	if e.tr != nil {
		res.Trace = e.tr.snapshot()
	}
	return res, nil
}

// partialResult snapshots the clocks, timers, and armed trace at the point
// a run failed with a typed fault (crash, stall) — the events leading up to
// a failure are exactly what a flight recorder wants. It returns nil when
// tracing was off, so an untraced failed run keeps the plain nil-result
// convention; a non-nil result alongside an error is trace salvage, not a
// completed run.
func (e *Engine) partialResult() *Result {
	if e.tr == nil {
		return nil
	}
	res := &Result{
		Clocks: append([]float64(nil), e.clocks...),
		Timers: make([]Timers, len(e.timers)),
		Trace:  e.tr.snapshot(),
	}
	copy(res.Timers, e.timers)
	return res
}

// stuckRank returns a rank that is not Done at quiescence, preferring one
// whose stall a dropped message explains; -1 when every rank finished.
func (e *Engine) stuckRank() int {
	stuck := -1
	for r := range e.handlers {
		if e.crashed[r] || e.handlers[r].Done() {
			continue
		}
		if stuck < 0 {
			stuck = r
		}
		if _, _, ok := e.inj.SuspectFor(r); ok {
			return r
		}
	}
	return stuck
}

func (e *Engine) send(src int, m Msg) {
	if m.Dst < 0 || m.Dst >= len(e.handlers) {
		panic(&fault.ProtocolError{Rank: src, Tag: m.Tag,
			Msg: fmt.Sprintf("send to rank %d of %d", m.Dst, len(e.handlers))})
	}
	over, lat, recvOver := e.net.Cost(src, m.Dst, m.Bytes)
	e.timers[src].MsgsSent[m.Cat]++
	e.timers[src].BytesSent[m.Cat] += m.Bytes
	if e.tr != nil {
		e.msgID++
		m.id = e.msgID
		e.tr.add(src, Event{
			Kind: EvSend, Cat: m.Cat, Tag: m.Tag, Peer: m.Dst,
			Bytes: m.Bytes, MsgID: m.id, Start: e.clocks[src], Dur: over,
		})
	}
	e.timers[src].ByCat[m.Cat] += over
	e.clocks[src] += over
	if e.inj.Drop(src, m.Dst, m.Tag, e.clocks[src]) {
		e.faults.drops++
		if e.tr != nil {
			e.tr.add(src, Event{
				Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
				MsgID: m.id, Start: e.clocks[src], Key: "drop",
			})
		}
		return
	}
	if d := e.inj.Delay() + e.inj.NetDelay(src); d > 0 {
		e.faults.delays++
		lat += d
		if e.tr != nil {
			// Zero-duration stamp: the extra latency rides the message edge
			// (visible as slack/latency in the analysis), not the sender's
			// clock. Arrive holds the injected extra seconds.
			e.tr.add(src, Event{
				Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
				MsgID: m.id, Start: e.clocks[src], Arrive: d, Key: "delay",
			})
		}
	}
	e.pushRecv(e.clocks[src]+lat, recvOver, m)
}

func (e *Engine) sendAfter(src int, delay float64, m Msg) {
	if m.Dst < 0 || m.Dst >= len(e.handlers) {
		panic(&fault.ProtocolError{Rank: src, Tag: m.Tag,
			Msg: fmt.Sprintf("sendAfter to rank %d of %d", m.Dst, len(e.handlers))})
	}
	if delay < 0 {
		panic(&fault.ProtocolError{Rank: src, Tag: m.Tag, Msg: "negative sendAfter delay"})
	}
	if m.Dst != src {
		e.timers[src].MsgsSent[m.Cat]++
		e.timers[src].BytesSent[m.Cat] += m.Bytes
	}
	if e.tr != nil {
		// A zero-duration send at schedule time keeps the dependency chain
		// connected: the modeled put cost shows up as the latency edge.
		e.msgID++
		m.id = e.msgID
		e.tr.add(src, Event{
			Kind: EvSend, Cat: m.Cat, Tag: m.Tag, Peer: m.Dst,
			Bytes: m.Bytes, MsgID: m.id, Start: e.clocks[src],
		})
	}
	if m.Dst != src && e.inj.Drop(src, m.Dst, m.Tag, e.clocks[src]) {
		e.faults.drops++
		if e.tr != nil {
			e.tr.add(src, Event{
				Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
				MsgID: m.id, Start: e.clocks[src], Key: "drop",
			})
		}
		return
	}
	if m.Dst != src {
		if d := e.inj.Delay() + e.inj.NetDelay(src); d > 0 {
			e.faults.delays++
			delay += d
			if e.tr != nil {
				e.tr.add(src, Event{
					Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
					MsgID: m.id, Start: e.clocks[src], Arrive: d, Key: "delay",
				})
			}
		}
	}
	e.push(e.clocks[src]+delay, m)
}

func (e *Engine) after(src int, delay float64, tag int, data any) {
	if delay < 0 {
		panic(&fault.ProtocolError{Rank: src, Tag: tag, Msg: "negative After delay"})
	}
	// A straggling rank's self-scheduled work (the GPU model's task
	// completions) finishes late too. Elastic deadline ticks are exempt:
	// they model an absolute timeout, and inflating the straggler's own
	// deadlines would hand the slowest rank the loosest staleness bound.
	if f := e.inj.StragglerFactor(src); f > 1 && (e.Opts.ElasticTag == 0 || tag != e.Opts.ElasticTag) {
		delay *= f
	}
	m := Msg{Src: src, Dst: src, Tag: tag, Cat: CatFP, Data: data}
	if e.tr != nil {
		// Same trick as sendAfter: the GPU model's task delay becomes a
		// latency edge from this zero-duration self-send.
		e.msgID++
		m.id = e.msgID
		e.tr.add(src, Event{
			Kind: EvSend, Cat: m.Cat, Tag: m.Tag, Peer: src,
			MsgID: m.id, Start: e.clocks[src],
		})
	}
	e.push(e.clocks[src]+delay, m)
}

func (e *Engine) push(t float64, m Msg) { e.pushRecv(t, 0, m) }

func (e *Engine) pushRecv(t, recvOver float64, m Msg) {
	e.seq++
	heap.Push(&e.queue, event{time: t, seq: e.seq, recvOver: recvOver, msg: m})
}

func (e *Engine) compute(rank, tag int, seconds float64, f func()) {
	if seconds < 0 {
		panic(&fault.ProtocolError{Rank: rank, Tag: tag, Msg: "negative compute time"})
	}
	if e.tr != nil {
		e.tr.add(rank, Event{
			Kind: EvCompute, Cat: CatFP, Tag: tag, Peer: -1,
			Start: e.clocks[rank], Dur: seconds,
		})
	}
	e.timers[rank].ByCat[CatFP] += seconds
	e.clocks[rank] += seconds
	e.straggle(rank, seconds)
	if f != nil {
		f()
	}
}

// straggle charges the injected slowdown of a straggler rank after a span
// of modeled seconds: the extra time is attributed to CatFault so the
// breakdowns show exactly what the fault cost.
func (e *Engine) straggle(rank int, seconds float64) {
	f := e.inj.StragglerFactor(rank)
	if f <= 1 || seconds <= 0 {
		return
	}
	extra := seconds * (f - 1)
	e.faults.straggles++
	if e.tr != nil {
		e.tr.add(rank, Event{
			Kind: EvFault, Cat: CatFault, Peer: -1,
			Start: e.clocks[rank], Dur: extra, Key: "straggle",
		})
	}
	e.timers[rank].ByCat[CatFault] += extra
	e.clocks[rank] += extra
}

// span records a trace-only level-sweep annotation; it never advances the
// clock or schedules events, so tracing on/off cannot change the run.
func (e *Engine) span(rank, tag int, start, dur float64) {
	if e.tr != nil {
		e.tr.add(rank, Event{
			Kind: EvSweep, Cat: CatFP, Tag: tag, Peer: -1,
			Start: start, Dur: dur,
		})
	}
}

func (e *Engine) elapse(rank int, cat Category, seconds float64) {
	if seconds < 0 {
		panic(&fault.ProtocolError{Rank: rank, Msg: "negative elapse time"})
	}
	if e.tr != nil {
		e.tr.add(rank, Event{
			Kind: EvElapse, Cat: cat, Peer: -1,
			Start: e.clocks[rank], Dur: seconds,
		})
	}
	e.timers[rank].ByCat[cat] += seconds
	e.clocks[rank] += seconds
	e.straggle(rank, seconds)
}

func (e *Engine) now(rank int) float64 { return e.clocks[rank] }

func (e *Engine) mark(rank int, key string) {
	if e.timers[rank].Marks == nil {
		e.timers[rank].Marks = make(map[string]float64)
	}
	e.timers[rank].Marks[key] = e.clocks[rank]
	if e.tr != nil {
		e.tr.add(rank, Event{Kind: EvMark, Peer: -1, Start: e.clocks[rank], Key: key})
	}
}

func (e *Engine) isVirtual() bool { return true }
