package runtime

import (
	"errors"
	"testing"
	"time"

	"sptrsv/internal/fault"
)

func runPingPongFaults(t *testing.T, plan *fault.Plan) (*Result, error) {
	t.Helper()
	e := NewEngine(2, constNet{o: 1e-6, alpha: 2e-6, beta: 1e-9})
	e.Opts = Options{Faults: plan, Trace: true}
	return e.Run(func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
}

func TestEngineJitterDeterministic(t *testing.T) {
	plan := &fault.Plan{Seed: 11, Jitter: 1e-5}
	a, err := runPingPongFaults(t, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runPingPongFaults(t, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			t.Fatalf("same seed, different clocks: %v vs %v", a.Clocks, b.Clocks)
		}
	}
	// The injection must actually perturb timing relative to a clean run.
	clean, err := runPingPongFaults(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxClock() <= clean.MaxClock() {
		t.Fatalf("jittered makespan %g not above clean %g", a.MaxClock(), clean.MaxClock())
	}
	// Delay events are traced as zero-duration fault stamps carrying the
	// injected seconds in Arrive (latency rides the message edge, so the
	// critical-path walker's span-contiguity invariant holds).
	found := false
	for r := range a.Trace.Ranks {
		for _, ev := range a.Trace.Ranks[r] {
			if ev.Kind == EvFault && ev.Key == "delay" {
				found = true
				if ev.Dur != 0 {
					t.Fatalf("delay fault event has Dur %g, want 0", ev.Dur)
				}
				if ev.Arrive <= 0 {
					t.Fatalf("delay fault event carries no extra latency: %+v", ev)
				}
			}
		}
	}
	if !found {
		t.Fatal("no delay fault events traced")
	}
}

func TestEngineStraggler(t *testing.T) {
	run := func(plan *fault.Plan) *Result {
		e := NewEngine(1, ZeroNetwork{})
		e.Opts = Options{Faults: plan, Trace: true}
		res, err := e.Run(func(int) Handler {
			return &initOnly{fn: func(ctx *Ctx) { ctx.Compute(1.0, nil) }}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(&fault.Plan{Straggler: map[int]float64{0: 4}})
	if c := res.Clocks[0]; c < 3.999 || c > 4.001 {
		t.Fatalf("straggled clock %g, want ~4 (factor 4 on 1s compute)", c)
	}
	// The base second stays FP; the 3 extra seconds are charged to CatFault.
	if fp := res.Timers[0].ByCat[CatFP]; fp < 0.999 || fp > 1.001 {
		t.Fatalf("FP time %g, want ~1", fp)
	}
	if f := res.Timers[0].ByCat[CatFault]; f < 2.999 || f > 3.001 {
		t.Fatalf("fault time %g, want ~3", f)
	}
	// Straggle spans are real rank-serial trace spans.
	found := false
	for _, ev := range res.Trace.Ranks[0] {
		if ev.Kind == EvFault && ev.Key == "straggle" && ev.Dur > 2.9 {
			found = true
		}
	}
	if !found {
		t.Fatal("no straggle span traced")
	}
}

func TestEngineDropYieldsStallError(t *testing.T) {
	// Dropping the very first ping deadlocks both ranks; the engine must
	// blame the receiver of the lost message and name the expected peer/tag.
	_, err := runPingPongFaults(t, &fault.Plan{
		Drops: []fault.DropRule{{Src: 0, Dst: 1, Tag: 1, Count: 1}},
	})
	var se *fault.StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected StallError, got %v", err)
	}
	if !se.Virtual {
		t.Fatal("DES stall should be virtual")
	}
	if se.Rank != 1 || se.Peer != 0 || se.Tag != 1 {
		t.Fatalf("stall blames rank %d peer %d tag %d, want rank 1 peer 0 tag 1: %v",
			se.Rank, se.Peer, se.Tag, err)
	}
	if !fault.IsFault(err) {
		t.Fatal("StallError not classified as fault")
	}
}

func TestEngineCrash(t *testing.T) {
	// Crash at t=0: the rank never runs Init, its peer starves.
	_, err := runPingPongFaults(t, &fault.Plan{Crash: map[int]float64{1: 0}})
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CrashError, got %v", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crash blames rank %d, want 1", ce.Rank)
	}

	// Crash mid-run (after a few virtual microseconds of ping-pong): the
	// crash triggers on the first event at or after the injected time.
	_, err = runPingPongFaults(t, &fault.Plan{Crash: map[int]float64{0: 5e-6}})
	if !errors.As(err, &ce) {
		t.Fatalf("expected mid-run CrashError, got %v", err)
	}
	if ce.Rank != 0 || ce.At < 5e-6 {
		t.Fatalf("crash = rank %d at %g, want rank 0 at ≥5e-6", ce.Rank, ce.At)
	}
}

func TestEnginePanicBecomesTypedError(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	_, err := e.Run(func(int) Handler {
		return &initOnly{fn: func(*Ctx) { panic("boom") }}
	})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if pe.Rank != 0 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error incomplete: %+v", pe)
	}
}

func TestEngineBadDestinationIsProtocolError(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	_, err := e.Run(func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) { ctx.Send(Msg{Dst: 7, Tag: 1, Cat: CatXY}) }}
	})
	var pe *fault.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Rank != 0 {
		t.Fatalf("protocol error blames rank %d, want 0", pe.Rank)
	}
}

func TestPoolWatchdog(t *testing.T) {
	// Rank 0 waits forever; the watchdog must fire within a small multiple
	// of the deadline, long before the coarse pool timeout.
	const deadline = 150 * time.Millisecond
	p := &Pool{Timeout: 30 * time.Second, Opts: Options{StallTimeout: deadline}}
	start := time.Now()
	_, err := p.Run(2, func(r int) Handler {
		if r == 1 {
			return &recvN{n: 0} // exits immediately
		}
		return &recvN{n: 1}
	})
	elapsed := time.Since(start)
	var se *fault.StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected StallError, got %v", err)
	}
	if se.Virtual {
		t.Fatal("pool stall should not be virtual")
	}
	if se.Rank != 0 {
		t.Fatalf("stall blames rank %d, want 0", se.Rank)
	}
	if se.Waited < deadline {
		t.Fatalf("reported wait %v below deadline %v", se.Waited, deadline)
	}
	if se.Deadline != deadline {
		t.Fatalf("reported deadline %v, want %v", se.Deadline, deadline)
	}
	if elapsed < deadline {
		t.Fatalf("watchdog fired after %v, before the %v deadline", elapsed, deadline)
	}
	if elapsed > 10*deadline {
		t.Fatalf("watchdog took %v to fire (deadline %v)", elapsed, deadline)
	}
}

func TestPoolDropSuspectNamed(t *testing.T) {
	// The lost message's receiver is identified even though the watchdog
	// may first notice a different blocked rank.
	p := &Pool{
		Timeout: 30 * time.Second,
		Opts: Options{
			StallTimeout: 100 * time.Millisecond,
			Faults:       &fault.Plan{Drops: []fault.DropRule{{Src: 0, Dst: 1, Tag: 1, Count: 1}}},
		},
	}
	_, err := p.Run(2, func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	var se *fault.StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected StallError, got %v", err)
	}
	if se.Rank != 1 || se.Peer != 0 || se.Tag != 1 {
		t.Fatalf("stall blames rank %d peer %d tag %d, want rank 1 peer 0 tag 1: %v",
			se.Rank, se.Peer, se.Tag, err)
	}
}

func TestPoolCrash(t *testing.T) {
	p := &Pool{
		Timeout: 30 * time.Second,
		Opts: Options{
			StallTimeout: 100 * time.Millisecond,
			Faults:       &fault.Plan{Crash: map[int]float64{1: 0}},
		},
	}
	_, err := p.Run(2, func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CrashError, got %v", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crash blames rank %d, want 1", ce.Rank)
	}
}

func TestPoolJitterStillCorrect(t *testing.T) {
	// Delayed (AfterFunc) deliveries must not lose or duplicate messages.
	p := &Pool{
		Timeout: 30 * time.Second,
		Opts:    Options{Faults: &fault.Plan{Seed: 3, Jitter: 0.02}},
	}
	var captured [2]*pingpong
	_, err := p.Run(2, func(r int) Handler {
		captured[r] = &pingpong{rank: r, rounds: 5, peer: 1 - r}
		return captured[r]
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, h := range captured {
		if h.got != 5 {
			t.Fatalf("rank %d received %d messages, want 5", r, h.got)
		}
	}
}

func TestPoolStraggler(t *testing.T) {
	p := &Pool{
		Timeout: 30 * time.Second,
		Opts:    Options{Faults: &fault.Plan{Straggler: map[int]float64{0: 3}}},
	}
	res, err := p.Run(1, func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) {
			ctx.Compute(0, func() { time.Sleep(30 * time.Millisecond) })
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 30ms of real work at factor 3 adds ~60ms of injected stall.
	if f := res.Timers[0].ByCat[CatFault]; f < 0.03 {
		t.Fatalf("injected straggler time %g, want ≥0.03", f)
	}
}

func TestFaultTraceNaming(t *testing.T) {
	if CatFault.String() != "Fault" {
		t.Fatalf("CatFault name %q", CatFault.String())
	}
	if EvFault.String() != "fault" {
		t.Fatalf("EvFault name %q", EvFault.String())
	}
}
