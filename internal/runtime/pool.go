package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the real-parallelism backend: one goroutine per rank, unbounded
// in-memory inboxes, wall-clock timing. It runs the same handlers as the
// Engine, providing true shared-memory parallel execution for the examples
// and the testing.B wall-clock benchmarks.
//
// Wait-time attribution rule: the wall-clock time a rank spends blocked on
// its inbox is charged to the category of the message that ends the wait —
// including the wait before the first message of a phase. This matches the
// Engine, which charges a rank's virtual idle gap to the category of the
// event that wakes it, so the per-category breakdowns of the two backends
// are directly comparable: ByCat[c] answers "how long did ranks sit waiting
// for category-c traffic", not "what was the rank doing before it blocked".
// A Pool value holds only configuration; every Run builds its own state, so
// concurrent Run calls on one Pool are independent.
type Pool struct {
	// Timeout aborts a run that stops making progress (a handler waiting
	// for a message that never comes). Zero means 60s.
	Timeout time.Duration
	// Opts enables optional instrumentation (event tracing) with the same
	// schema as the Engine, on the wall clock instead of the virtual one.
	Opts Options
}

type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Msg
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(m Msg) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// get blocks until a message arrives or the inbox is closed.
func (b *inbox) get() (Msg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return Msg{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *inbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

type poolShared struct {
	start    time.Time
	inboxes  []*inbox
	timers   []Timers
	clocks   []float64
	panicked atomic.Value // first panic message
	// tr is nil unless tracing: each rank goroutine writes only its own
	// ring, so rings need no locking; msgID is shared and atomic.
	tr    *tracer
	msgID atomic.Int64
}

// poolCtx adapts one rank's view of the pool to the backend interface.
type poolCtx struct {
	s    *poolShared
	rank int
}

func (p *poolCtx) send(src int, m Msg) {
	if m.Dst < 0 || m.Dst >= len(p.s.inboxes) {
		panic(fmt.Sprintf("runtime: send to rank %d of %d", m.Dst, len(p.s.inboxes)))
	}
	p.s.timers[src].MsgsSent[m.Cat]++
	p.s.timers[src].BytesSent[m.Cat] += m.Bytes
	if p.s.tr != nil {
		m.id = p.s.msgID.Add(1)
		m.at = time.Since(p.s.start).Seconds()
		p.s.tr.add(src, Event{
			Kind: EvSend, Cat: m.Cat, Tag: m.Tag, Peer: m.Dst,
			Bytes: m.Bytes, MsgID: m.id, Start: m.at,
		})
	}
	p.s.inboxes[m.Dst].put(m)
}

func (p *poolCtx) after(int, float64, int, any) {
	panic("runtime: Ctx.After requires the simulation backend (Engine)")
}

func (p *poolCtx) sendAfter(int, float64, Msg) {
	panic("runtime: Ctx.SendAfter requires the simulation backend (Engine)")
}

func (p *poolCtx) compute(rank, tag int, _ float64, f func()) {
	t0 := time.Now()
	if f != nil {
		f()
	}
	dur := time.Since(t0).Seconds()
	p.s.timers[rank].ByCat[CatFP] += dur
	if p.s.tr != nil {
		p.s.tr.add(rank, Event{
			Kind: EvCompute, Cat: CatFP, Tag: tag, Peer: -1,
			Start: t0.Sub(p.s.start).Seconds(), Dur: dur,
		})
	}
}

func (p *poolCtx) elapse(int, Category, float64) {} // real time flows on its own

func (p *poolCtx) now(int) float64 { return time.Since(p.s.start).Seconds() }

func (p *poolCtx) mark(rank int, key string) {
	if p.s.timers[rank].Marks == nil {
		p.s.timers[rank].Marks = make(map[string]float64)
	}
	now := p.now(rank)
	p.s.timers[rank].Marks[key] = now
	if p.s.tr != nil {
		p.s.tr.add(rank, Event{Kind: EvMark, Peer: -1, Start: now, Key: key})
	}
}

func (p *poolCtx) isVirtual() bool { return false }

// Run executes one handler per rank until every handler reports Done. It
// returns an error on timeout (suspected deadlock), on a handler panic, or
// if messages remain queued for ranks that finished early (a protocol bug:
// the algorithms know their exact message counts).
func (p *Pool) Run(n int, newHandler func(rank int) Handler) (*Result, error) {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	s := &poolShared{
		start:   time.Now(),
		inboxes: make([]*inbox, n),
		timers:  make([]Timers, n),
		clocks:  make([]float64, n),
		tr:      newTracer(n, p.Opts),
	}
	for i := range s.inboxes {
		s.inboxes[i] = newInbox()
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					s.panicked.CompareAndSwap(nil, fmt.Sprintf("rank %d: %v", rank, rec))
					// Unblock everyone so the run can fail fast.
					for _, b := range s.inboxes {
						b.close()
					}
				}
			}()
			h := newHandler(rank)
			ctx := &Ctx{rank: rank, b: &poolCtx{s: s, rank: rank}}
			h.Init(ctx)
			for !h.Done() {
				t0 := time.Now()
				m, ok := s.inboxes[rank].get()
				if !ok {
					if s.panicked.Load() == nil && !h.Done() {
						s.panicked.CompareAndSwap(nil, fmt.Sprintf("rank %d: inbox closed while expecting messages", rank))
					}
					return
				}
				wait := time.Since(t0).Seconds()
				s.timers[rank].ByCat[m.Cat] += wait
				if s.tr != nil {
					st := t0.Sub(s.start).Seconds()
					if wait > 0 {
						s.tr.add(rank, Event{
							Kind: EvWait, Cat: m.Cat, Tag: m.Tag,
							Peer: m.Src, Bytes: m.Bytes, MsgID: m.id,
							Start: st, Dur: wait, Arrive: m.at,
						})
					}
					s.tr.add(rank, Event{
						Kind: EvRecv, Cat: m.Cat, Tag: m.Tag,
						Peer: m.Src, Bytes: m.Bytes, MsgID: m.id,
						Start: st + wait, Arrive: m.at,
					})
				}
				h.OnMessage(ctx, m)
			}
			s.clocks[rank] = time.Since(s.start).Seconds()
		}(r)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		for _, b := range s.inboxes {
			b.close()
		}
		<-done
		return nil, fmt.Errorf("runtime: pool run timed out after %v (deadlock?)", timeout)
	}
	if msg := s.panicked.Load(); msg != nil {
		return nil, fmt.Errorf("runtime: %v", msg)
	}
	for r, b := range s.inboxes {
		if pend := b.pending(); pend != 0 {
			return nil, fmt.Errorf("runtime: %d stray messages for finished rank %d", pend, r)
		}
	}
	res := &Result{Clocks: s.clocks, Timers: s.timers}
	if s.tr != nil {
		res.Trace = s.tr.snapshot()
	}
	return res, nil
}
