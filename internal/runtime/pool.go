package runtime

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sptrsv/internal/fault"
)

// Pool is the real-parallelism backend: one goroutine per rank, unbounded
// in-memory inboxes, wall-clock timing. It runs the same handlers as the
// Engine, providing true shared-memory parallel execution for the examples
// and the testing.B wall-clock benchmarks.
//
// Wait-time attribution rule: the wall-clock time a rank spends blocked on
// its inbox is charged to the category of the message that ends the wait —
// including the wait before the first message of a phase. This matches the
// Engine, which charges a rank's virtual idle gap to the category of the
// event that wakes it, so the per-category breakdowns of the two backends
// are directly comparable: ByCat[c] answers "how long did ranks sit waiting
// for category-c traffic", not "what was the rank doing before it blocked".
// A Pool value holds only configuration; every Run builds its own state, so
// concurrent Run calls on one Pool are independent.
type Pool struct {
	// Timeout aborts a run that stops making progress (a handler waiting
	// for a message that never comes). Zero means 60s. Options.StallTimeout
	// arms the finer-grained per-rank stall watchdog on top of it.
	Timeout time.Duration
	// Opts enables optional instrumentation (event tracing) with the same
	// schema as the Engine, on the wall clock instead of the virtual one,
	// plus fault injection and the stall watchdog.
	Opts Options
}

type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Msg
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// put enqueues m; once the inbox is closed (the run aborted) messages are
// dropped, so late senders — including injected-delay timers firing after
// an abort — cannot resurrect a dead run.
func (b *inbox) put(m Msg) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// get blocks until a message arrives or the inbox is closed; after a close
// the remaining queue still drains, so ranks finish cleanly when they can.
func (b *inbox) get() (Msg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return Msg{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *inbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// stallReport is one rank's account of being stuck: either the watchdog's
// observation or the rank's own after it was woken by the abort.
type stallReport struct {
	rank   int
	waited time.Duration
	state  string
	// done/total is the rank's solve progress (runtime.Progresser) at the
	// stall, zeros when the handler reports none.
	done, total int
}

type poolShared struct {
	start   time.Time
	inboxes []*inbox
	timers  []Timers
	clocks  []float64
	// tr is nil unless tracing: each rank goroutine writes only its own
	// ring, so rings need no locking; msgID is shared and atomic.
	tr    *tracer
	msgID atomic.Int64

	inj *fault.Injector
	// elasticTag mirrors Options.ElasticTag: nonzero enables wall-clock
	// Ctx.After for that tag and the stray-message exemption.
	elasticTag int

	// failMu guards failErr, the first failure of the run (recovered panic
	// or protocol violation); later failures are consequences of the abort
	// it triggers and are discarded.
	failMu  sync.Mutex
	failErr error
	// aborted is set before the inboxes are closed, letting woken ranks
	// tell an abort (expected: record a stall report) from a spontaneous
	// close (a protocol bug).
	aborted atomic.Bool

	// blockedSince[r] is the UnixNano instant rank r entered a blocking
	// receive (0 while running); rankDone[r] is set when r's handler
	// reported Done. The watchdog reads only these atomics — it never
	// touches handler state across goroutines.
	blockedSince []atomic.Int64
	rankDone     []atomic.Bool
	stallFired   atomic.Bool

	stallMu sync.Mutex
	wd      *stallReport // the watchdog's observation when it fired
	stalls  []stallReport

	crashMu sync.Mutex
	crashes []fault.CrashError

	// Injected-fault tallies; atomics because rank goroutines fire them
	// concurrently. Folded into a faultTally when the run is published.
	ftDrops, ftDelays, ftStraggles, ftCrashes atomic.Int64
}

func (s *poolShared) tally() faultTally {
	return faultTally{
		drops:     int(s.ftDrops.Load()),
		delays:    int(s.ftDelays.Load()),
		straggles: int(s.ftStraggles.Load()),
		crashes:   int(s.ftCrashes.Load()),
	}
}

// fail records the run's first failure and aborts everyone else.
func (s *poolShared) fail(err error) {
	s.failMu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.failMu.Unlock()
	s.abort()
}

func (s *poolShared) failure() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

// abort wakes every rank by closing the inboxes; queued messages still
// drain, new ones are dropped.
func (s *poolShared) abort() {
	s.aborted.Store(true)
	for _, b := range s.inboxes {
		b.close()
	}
}

func (s *poolShared) noteCrash(rank int, at float64) {
	s.ftCrashes.Add(1)
	s.crashMu.Lock()
	s.crashes = append(s.crashes, fault.CrashError{Rank: rank, At: at})
	s.crashMu.Unlock()
	if s.tr != nil {
		s.tr.add(rank, Event{
			Kind: EvFault, Cat: CatFault, Peer: -1,
			Start: time.Since(s.start).Seconds(), Key: "crash",
		})
	}
}

func (s *poolShared) noteStall(rep stallReport) {
	s.stallMu.Lock()
	s.stalls = append(s.stalls, rep)
	s.stallMu.Unlock()
}

// crashError returns the earliest injected crash, nil when none fired.
func (s *poolShared) crashError() error {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	if len(s.crashes) == 0 {
		return nil
	}
	first := s.crashes[0]
	for _, c := range s.crashes[1:] {
		if c.At < first.At {
			first = c
		}
	}
	return &first
}

// stallError builds the StallError reported after the watchdog fired,
// preferring the stalled rank a dropped message explains, then the rank the
// watchdog observed (whose self-report carries the handler state), then the
// longest-waiting self-reporter.
func (s *poolShared) stallError(deadline time.Duration) error {
	s.stallMu.Lock()
	defer s.stallMu.Unlock()
	var best *stallReport
	for i := range s.stalls {
		if _, _, ok := s.inj.SuspectFor(s.stalls[i].rank); ok {
			best = &s.stalls[i]
			break
		}
	}
	if best == nil && s.wd != nil {
		for i := range s.stalls {
			if s.stalls[i].rank == s.wd.rank {
				best = &s.stalls[i]
				break
			}
		}
	}
	if best == nil {
		for i := range s.stalls {
			if best == nil || s.stalls[i].waited > best.waited {
				best = &s.stalls[i]
			}
		}
	}
	if best == nil {
		best = s.wd
	}
	if best == nil {
		best = &stallReport{rank: -1}
	}
	peer, tag, ok := s.inj.SuspectFor(best.rank)
	if !ok {
		peer, tag = -1, -1
	}
	return &fault.StallError{
		Rank: best.rank, Peer: peer, Tag: tag,
		Waited: best.waited, Deadline: deadline, State: best.state,
		Done: best.done, Total: best.total,
	}
}

// poolCtx adapts one rank's view of the pool to the backend interface.
type poolCtx struct {
	s    *poolShared
	rank int
}

func (p *poolCtx) send(src int, m Msg) {
	if m.Dst < 0 || m.Dst >= len(p.s.inboxes) {
		panic(&fault.ProtocolError{Rank: src, Tag: m.Tag,
			Msg: fmt.Sprintf("send to rank %d of %d", m.Dst, len(p.s.inboxes))})
	}
	p.s.timers[src].MsgsSent[m.Cat]++
	p.s.timers[src].BytesSent[m.Cat] += m.Bytes
	if p.s.tr != nil {
		m.id = p.s.msgID.Add(1)
		m.at = time.Since(p.s.start).Seconds()
		p.s.tr.add(src, Event{
			Kind: EvSend, Cat: m.Cat, Tag: m.Tag, Peer: m.Dst,
			Bytes: m.Bytes, MsgID: m.id, Start: m.at,
		})
	}
	now := time.Since(p.s.start).Seconds()
	if p.s.inj.Drop(src, m.Dst, m.Tag, now) {
		p.s.ftDrops.Add(1)
		if p.s.tr != nil {
			p.s.tr.add(src, Event{
				Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
				MsgID: m.id, Start: now, Key: "drop",
			})
		}
		return
	}
	if d := p.s.inj.Delay() + p.s.inj.NetDelay(src); d > 0 {
		p.s.ftDelays.Add(1)
		if p.s.tr != nil {
			// Traced on the sender at send time: the timer goroutine below
			// must not touch the sender's ring (rings are single-writer).
			p.s.tr.add(src, Event{
				Kind: EvFault, Cat: CatFault, Tag: m.Tag, Peer: m.Dst,
				MsgID: m.id, Start: now, Arrive: d, Key: "delay",
			})
		}
		dst := p.s.inboxes[m.Dst]
		time.AfterFunc(time.Duration(d*float64(time.Second)), func() { dst.put(m) })
		return
	}
	p.s.inboxes[m.Dst].put(m)
}

// after implements elastic deadline ticks on the wall clock: the delay is
// real seconds and the pop is a self-message into the rank's own inbox (a
// pop landing after an abort or after the rank finished is dropped or
// strands harmlessly — the elastic stray-check exemption covers it). Any
// other tag keeps the historical behavior: self-scheduling models virtual
// time and requires the Engine.
func (p *poolCtx) after(src int, delay float64, tag int, data any) {
	if et := p.s.elasticTag; et == 0 || tag != et {
		panic(&fault.ProtocolError{Rank: p.rank,
			Msg: "Ctx.After requires the simulation backend (Engine)"})
	}
	m := Msg{Src: src, Dst: src, Tag: tag, Cat: CatFP, Data: data}
	dst := p.s.inboxes[src]
	if delay <= 0 {
		dst.put(m)
		return
	}
	time.AfterFunc(time.Duration(delay*float64(time.Second)), func() { dst.put(m) })
}

func (p *poolCtx) sendAfter(int, float64, Msg) {
	panic(&fault.ProtocolError{Rank: p.rank,
		Msg: "Ctx.SendAfter requires the simulation backend (Engine)"})
}

func (p *poolCtx) compute(rank, tag int, _ float64, f func()) {
	t0 := time.Now()
	if f != nil {
		f()
	}
	dur := time.Since(t0).Seconds()
	p.s.timers[rank].ByCat[CatFP] += dur
	if p.s.tr != nil {
		p.s.tr.add(rank, Event{
			Kind: EvCompute, Cat: CatFP, Tag: tag, Peer: -1,
			Start: t0.Sub(p.s.start).Seconds(), Dur: dur,
		})
	}
	// A straggler rank really sleeps off its slowdown, so downstream ranks
	// observe the late arrivals on the wall clock.
	if fac := p.s.inj.StragglerFactor(rank); fac > 1 && dur > 0 {
		extra := dur * (fac - 1)
		p.s.ftStraggles.Add(1)
		if p.s.tr != nil {
			p.s.tr.add(rank, Event{
				Kind: EvFault, Cat: CatFault, Peer: -1,
				Start: time.Since(p.s.start).Seconds(), Dur: extra, Key: "straggle",
			})
		}
		p.s.timers[rank].ByCat[CatFault] += extra
		time.Sleep(time.Duration(extra * float64(time.Second)))
	}
}

// span records a trace-only level-sweep annotation on the wall clock.
func (p *poolCtx) span(rank, tag int, start, dur float64) {
	if p.s.tr != nil {
		p.s.tr.add(rank, Event{
			Kind: EvSweep, Cat: CatFP, Tag: tag, Peer: -1,
			Start: start, Dur: dur,
		})
	}
}

func (p *poolCtx) elapse(int, Category, float64) {} // real time flows on its own

func (p *poolCtx) now(int) float64 { return time.Since(p.s.start).Seconds() }

func (p *poolCtx) mark(rank int, key string) {
	if p.s.timers[rank].Marks == nil {
		p.s.timers[rank].Marks = make(map[string]float64)
	}
	now := p.now(rank)
	p.s.timers[rank].Marks[key] = now
	if p.s.tr != nil {
		p.s.tr.add(rank, Event{Kind: EvMark, Peer: -1, Start: now, Key: key})
	}
}

func (p *poolCtx) isVirtual() bool { return false }

// Run executes one handler per rank until every handler reports Done. It
// returns typed fault errors for failures the robustness layer diagnoses —
// a recovered handler panic (fault.PanicError / fault.ProtocolError), an
// injected rank crash (fault.CrashError), a stall caught by the watchdog
// (fault.StallError when Options.StallTimeout is set) — and plain errors
// for a whole-run timeout or messages left queued for finished ranks (a
// protocol bug: the algorithms know their exact message counts; the check
// is skipped under fault injection, where drops legitimately strand
// messages).
func (p *Pool) Run(n int, newHandler func(rank int) Handler) (*Result, error) {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	s := &poolShared{
		start:        time.Now(),
		inboxes:      make([]*inbox, n),
		timers:       make([]Timers, n),
		clocks:       make([]float64, n),
		tr:           newTracer(n, p.Opts),
		inj:          fault.NewInjector(p.Opts.Faults),
		elasticTag:   p.Opts.ElasticTag,
		blockedSince: make([]atomic.Int64, n),
		rankDone:     make([]atomic.Bool, n),
	}
	for i := range s.inboxes {
		s.inboxes[i] = newInbox()
	}
	// Published once the run settles; every return path below is reached
	// only after all rank goroutines have exited, so the timers are quiet.
	failed, stalled := true, false
	defer func() { publishRun("pool", s.timers, s.tr, s.tally(), failed, stalled) }()
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					s.fail(fault.FromPanic(rank, rec, debug.Stack()))
				}
			}()
			crashT, hasCrash := s.inj.CrashTime(rank)
			if hasCrash && crashT <= 0 {
				s.noteCrash(rank, crashT)
				return
			}
			h := newHandler(rank)
			ctx := &Ctx{rank: rank, b: &poolCtx{s: s, rank: rank}}
			h.Init(ctx)
			for !h.Done() {
				t0 := time.Now()
				s.blockedSince[rank].Store(t0.UnixNano())
				m, ok := s.inboxes[rank].get()
				s.blockedSince[rank].Store(0)
				if !ok {
					if s.aborted.Load() {
						done, total := progressOf(h)
						s.noteStall(stallReport{
							rank: rank, waited: time.Since(t0), state: waitState(h),
							done: done, total: total,
						})
					} else {
						s.fail(&fault.ProtocolError{Rank: rank,
							Msg: "inbox closed while expecting messages"})
					}
					return
				}
				if hasCrash && time.Since(s.start).Seconds() >= crashT {
					s.noteCrash(rank, crashT)
					return
				}
				wait := time.Since(t0).Seconds()
				s.timers[rank].ByCat[m.Cat] += wait
				s.timers[rank].Waits++
				s.timers[rank].WaitSeconds += wait
				if s.tr != nil {
					st := t0.Sub(s.start).Seconds()
					if wait > 0 {
						s.tr.add(rank, Event{
							Kind: EvWait, Cat: m.Cat, Tag: m.Tag,
							Peer: m.Src, Bytes: m.Bytes, MsgID: m.id,
							Start: st, Dur: wait, Arrive: m.at,
						})
					}
					s.tr.add(rank, Event{
						Kind: EvRecv, Cat: m.Cat, Tag: m.Tag,
						Peer: m.Src, Bytes: m.Bytes, MsgID: m.id,
						Start: st + wait, Arrive: m.at,
					})
				}
				h.OnMessage(ctx, m)
			}
			s.rankDone[rank].Store(true)
			s.clocks[rank] = time.Since(s.start).Seconds()
		}(r)
	}
	if deadline := p.Opts.StallTimeout; deadline > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go s.watchdog(deadline, stop)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.abort()
		<-done
		if err := s.failure(); err != nil {
			return s.partialResult(), err
		}
		if err := s.crashError(); err != nil {
			return s.partialResult(), err
		}
		return s.partialResult(), fmt.Errorf("runtime: pool run timed out after %v (deadlock?)", timeout)
	}
	if err := s.failure(); err != nil {
		return s.partialResult(), err
	}
	if err := s.crashError(); err != nil {
		return s.partialResult(), err
	}
	if s.stallFired.Load() {
		stalled = true
		deadline := p.Opts.StallTimeout
		return s.partialResult(), s.stallError(deadline)
	}
	// The stray-message invariant holds only for strict runs without fault
	// injection: drops strand peers' messages, and an elastic forced phase
	// closure strands both late traffic and in-flight deadline ticks.
	if !s.inj.Active() && s.elasticTag == 0 {
		for r, b := range s.inboxes {
			if pend := b.pending(); pend != 0 {
				return nil, fmt.Errorf("runtime: %d stray messages for finished rank %d", pend, r)
			}
		}
	}
	failed = false
	res := &Result{Clocks: s.clocks, Timers: s.timers}
	if s.tr != nil {
		res.Trace = s.tr.snapshot()
	}
	return res, nil
}

// partialResult snapshots the timers and armed trace of a failed run (all
// rank goroutines have exited by the time any error return is reached) so
// fault diagnostics can see the events leading up to the failure. Nil when
// tracing was off: a non-nil result alongside an error is trace salvage,
// not a completed run.
func (s *poolShared) partialResult() *Result {
	if s.tr == nil {
		return nil
	}
	res := &Result{
		Clocks: append([]float64(nil), s.clocks...),
		Timers: make([]Timers, len(s.timers)),
		Trace:  s.tr.snapshot(),
	}
	copy(res.Timers, s.timers)
	return res
}

// watchdog periodically scans the per-rank blocked timestamps and aborts
// the run when any rank has been stuck in a receive past the deadline. It
// reads only atomics, so it races with nothing; the stalled ranks describe
// themselves (noteStall) after the abort wakes them.
func (s *poolShared) watchdog(deadline time.Duration, stop <-chan struct{}) {
	period := deadline / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			for r := range s.blockedSince {
				since := s.blockedSince[r].Load()
				if since == 0 || s.rankDone[r].Load() {
					continue
				}
				waited := time.Duration(now - since)
				if waited < deadline {
					continue
				}
				s.stallMu.Lock()
				s.wd = &stallReport{rank: r, waited: waited}
				s.stallMu.Unlock()
				s.stallFired.Store(true)
				s.abort()
				return
			}
		}
	}
}
