// Package runtime executes message-driven per-rank algorithms under two
// interchangeable backends:
//
//   - Engine: a deterministic discrete-event simulator in which every rank
//     carries a virtual clock, message delivery costs follow a pluggable
//     network model, and per-rank time is attributed to floating-point
//     work, intra-grid (XY) communication, or inter-grid (Z)
//     communication. This backend regenerates the paper's figures.
//   - Pool: a real goroutine-per-rank backend exchanging messages over
//     in-memory queues, used for wall-clock benchmarks on the host machine.
//
// Both backends run the same Handler implementations, which perform the
// actual numeric work — every simulated experiment is also a bit-exact
// correctness run.
package runtime

import (
	"fmt"
	"math"
)

// Category classifies where a rank's time goes, matching the breakdown in
// the paper's Figs. 5–6 (FP-Operation, XY-Comm, Z-Comm).
type Category int

const (
	CatFP    Category = iota // floating-point block operations
	CatXY                    // intra-grid communication
	CatZ                     // inter-grid communication
	CatFault                 // injected fault time (straggler slowdown, jitter)
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatFP:
		return "FP-Operation"
	case CatXY:
		return "XY-Comm"
	case CatZ:
		return "Z-Comm"
	case CatFault:
		return "Fault"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Msg is a point-to-point message. Data carries real payload (the handlers
// do real numerics); Bytes is the modeled wire size used by the network
// model. The sender must not retain or mutate Data after sending.
type Msg struct {
	Src, Dst int
	Tag      int
	Cat      Category
	Data     any
	Bytes    int

	// id and at are stamped by a tracing backend: id links the send event
	// to its delivery events, at is the send time (Pool wall clock).
	id int64
	at float64
}

// Handler is one rank's algorithm state machine. Implementations must be
// driven entirely by Init and OnMessage (the paper's Algorithms 3 and 5 are
// already in this form: fmod counters plus a blocking any-source receive
// loop).
type Handler interface {
	// Init runs once at time zero, before any delivery.
	Init(ctx *Ctx)
	// OnMessage processes one delivered message.
	OnMessage(ctx *Ctx, m Msg)
	// Done reports that the rank expects no further messages. The run
	// finishes when every rank is done and no messages are in flight.
	Done() bool
}

// WaitStater is optionally implemented by handlers to describe what they
// are waiting for — phase, outstanding receive counters, queue depths.
// Stall and deadlock diagnostics (fault.StallError.State) embed it so a
// stuck solve reports the algorithm's own view of the hang.
type WaitStater interface {
	WaitState() string
}

// waitState returns h's self-description, or "" when it offers none.
func waitState(h Handler) string {
	if ws, ok := h.(WaitStater); ok {
		return ws.WaitState()
	}
	return ""
}

// Progresser is optionally implemented by handlers to report solve
// progress: units of work completed versus the rank's total (the trsv
// handlers count diagonal panel solves across both sweeps). Stall and
// deadlock diagnostics embed it so an operator can tell a true deadlock
// (progress frozen near zero) from slow-but-live progress.
type Progresser interface {
	Progress() (done, total int)
}

// progressOf returns h's progress, or zeros when it offers none.
func progressOf(h Handler) (int, int) {
	if p, ok := h.(Progresser); ok {
		return p.Progress()
	}
	return 0, 0
}

// ElasticTicker is implemented by handlers running an elastic-mode solve
// (Options.ElasticTag nonzero). Before delivering a message carrying the
// elastic tag — a staleness-deadline timer pop — the DES Engine asks the
// destination whether the tick is still live; stale ticks (the rank
// already moved past the tick's phase, or finished) are discarded without
// charging wait time or bumping the rank's clock.
type ElasticTicker interface {
	TickLive(data any) bool
}

// DeadLetterer is optionally implemented by elastic handlers: DeadOnArrival
// reports that a delivered payload can no longer influence the numerics —
// it belongs to a phase (or reduction step) the rank has already moved
// past, typically after a forced closure, and the deferral protocol will
// park it forever. The DES Engine still delivers such a message, keeping
// the handler bookkeeping uniform, but skips the wait charge that would
// drag the rank's clock to the arrival time: a real rank polls past dead
// traffic instead of blocking on it, so packets that straggle in after a
// phase was forcibly closed must not inflate the modeled makespan. Only
// consulted on elastic runs (Options.ElasticTag nonzero); admission gates
// are monotone (phases, stages, and reduction steps only advance), so a
// true answer is permanent and the classification is deterministic.
type DeadLetterer interface {
	DeadOnArrival(m Msg) bool
}

// Ctx is the per-rank facade handlers use to interact with the backend.
type Ctx struct {
	rank int
	b    backend
}

// backend is implemented by Engine and Pool.
type backend interface {
	send(src int, m Msg)
	sendAfter(src int, delay float64, m Msg)
	after(src int, delay float64, tag int, data any)
	compute(rank, tag int, seconds float64, f func())
	span(rank, tag int, start, dur float64)
	elapse(rank int, cat Category, seconds float64)
	now(rank int) float64
	mark(rank int, key string)
	isVirtual() bool
}

// Rank returns the rank this context belongs to.
func (c *Ctx) Rank() int { return c.rank }

// Now returns the rank's current clock: virtual seconds under the Engine,
// wall-clock seconds since start under the Pool.
func (c *Ctx) Now() float64 { return c.b.now(c.rank) }

// Send delivers m to m.Dst. Src is stamped automatically.
func (c *Ctx) Send(m Msg) {
	m.Src = c.rank
	c.b.send(c.rank, m)
}

// SendAfter delivers m to m.Dst exactly delay seconds from now, bypassing
// the network model — the mechanism for one-sided (NVSHMEM-style) puts
// whose cost the GPU model computes itself. Engine backend only.
func (c *Ctx) SendAfter(delay float64, m Msg) {
	m.Src = c.rank
	c.b.sendAfter(c.rank, delay, m)
}

// After schedules a self-message delivered delay seconds from now — the
// mechanism the GPU execution model uses for task completions. Only the
// Engine backend supports it; the Pool rejects it, since the GPU model is
// simulation-only.
func (c *Ctx) After(delay float64, tag int, data any) {
	c.b.after(c.rank, delay, tag, data)
}

// Compute performs f (which may be nil) and charges the rank seconds of
// floating-point time. Under the Engine the charge is the modeled seconds;
// under the Pool the real execution time is recorded instead.
func (c *Ctx) Compute(seconds float64, f func()) {
	c.b.compute(c.rank, 0, seconds, f)
}

// ComputeT is Compute with a caller-chosen span tag recorded in the trace
// (see Options.Trace), letting handlers label what each FP span was —
// diagonal solve, block GEMM, allreduce merge. Timing semantics are
// identical to Compute.
func (c *Ctx) ComputeT(tag int, seconds float64, f func()) {
	c.b.compute(c.rank, tag, seconds, f)
}

// Span records a trace-only annotation covering [start, start+dur) on the
// rank's clock — the scheduled execution path uses it to mark each level
// sweep as one event (tag = LevelSweepTag(taskCount)). It charges no time
// and schedules nothing, so enabling or disabling it cannot perturb the
// run: the member compute spans have already advanced the clock. A no-op
// when tracing is off.
func (c *Ctx) Span(tag int, start, dur float64) {
	c.b.span(c.rank, tag, start, dur)
}

// Elapse advances the rank's clock by the modeled overhead, attributed to
// cat. The Pool backend ignores it (real overheads are already in the wall
// clock).
func (c *Ctx) Elapse(cat Category, seconds float64) {
	c.b.elapse(c.rank, cat, seconds)
}

// Mark records the rank's current clock under key; stats use marks to
// compute per-phase durations (L-solve vs U-solve, Figs. 7–10).
func (c *Ctx) Mark(key string) { c.b.mark(c.rank, key) }

// Virtual reports whether time is simulated; handlers that only make sense
// under the Engine (the GPU models) check it.
func (c *Ctx) Virtual() bool { return c.b.isVirtual() }

// Timers accumulates a rank's attributed time and traffic.
type Timers struct {
	ByCat [numCategories]float64
	Marks map[string]float64
	// MsgsSent and BytesSent count this rank's outgoing messages per
	// category (self-events excluded) — the message-count statistics
	// behind the paper's tree-communication argument.
	MsgsSent  [numCategories]int
	BytesSent [numCategories]int
	// Waits and WaitSeconds count the blocking receives that idled this
	// rank and the total time it spent blocked. The seconds are already
	// included in ByCat (charged to the category of the message that ended
	// each wait); these fields separate "idle waiting" from "processing".
	Waits       int
	WaitSeconds float64
}

// Total returns the sum across categories.
func (t *Timers) Total() float64 {
	s := 0.0
	for _, v := range t.ByCat {
		s += v
	}
	return s
}

// Result is the outcome of a run: per-rank finishing clocks and timers,
// plus the event trace when the backend ran with Options.Trace.
type Result struct {
	Clocks []float64
	Timers []Timers
	// Trace is the per-rank event history; nil unless tracing was enabled.
	Trace *Trace
}

// MaxClock returns the latest rank clock: the run's makespan, the quantity
// the paper reports as SpTRSV time.
func (r *Result) MaxClock() float64 {
	m := 0.0
	for _, c := range r.Clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// active reports whether the rank did anything at all during the run:
// attributed time, sent messages, or phase marks.
func (t *Timers) active() bool {
	if t.Marks != nil || t.Total() > 0 {
		return true
	}
	for _, c := range t.MsgsSent {
		if c > 0 {
			return true
		}
	}
	return false
}

// Participants returns the number of ranks that did any work during the
// run. On replicated grids some ranks can hold no blocks of any supernode
// and never run a handler step; per-rank means must not be deflated by
// them.
func (r *Result) Participants() int {
	n := 0
	for i := range r.Timers {
		if r.Timers[i].active() {
			n++
		}
	}
	return n
}

// MeanCat returns the mean over participating ranks of the given category,
// matching the "averaged over all MPI ranks" breakdown plots (idle ranks
// that never ran a handler are excluded, so replicated grids don't deflate
// the mean).
func (r *Result) MeanCat(cat Category) float64 {
	p := r.Participants()
	if p == 0 {
		return 0
	}
	s := 0.0
	for i := range r.Timers {
		s += r.Timers[i].ByCat[cat]
	}
	return s / float64(p)
}

// TotalMsgs sums sent messages over ranks and categories.
func (r *Result) TotalMsgs() int {
	n := 0
	for i := range r.Timers {
		for _, c := range r.Timers[i].MsgsSent {
			n += c
		}
	}
	return n
}

// TotalBytes sums sent bytes over ranks and categories.
func (r *Result) TotalBytes() int {
	n := 0
	for i := range r.Timers {
		for _, c := range r.Timers[i].BytesSent {
			n += c
		}
	}
	return n
}

// CatMsgs sums sent messages of one category over ranks.
func (r *Result) CatMsgs(cat Category) int {
	n := 0
	for i := range r.Timers {
		n += r.Timers[i].MsgsSent[cat]
	}
	return n
}

// MarkSpan returns per-rank durations between two marks. A rank missing
// either mark, or whose marks were recorded out of order (to before from),
// yields NaN — a span that doesn't exist, not a zero-length one. Callers
// aggregating spans must skip NaN entries rather than fold them into means.
func (r *Result) MarkSpan(from, to string) []float64 {
	out := make([]float64, len(r.Timers))
	for i := range r.Timers {
		out[i] = math.NaN()
		m := r.Timers[i].Marks
		if m == nil {
			continue
		}
		a, okA := m[from]
		b, okB := m[to]
		if okA && okB && b >= a {
			out[i] = b - a
		}
	}
	return out
}
