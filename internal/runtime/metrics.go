package runtime

import "sptrsv/internal/metrics"

// Runtime metrics, published to the process-wide registry once per run —
// at completion, from the per-rank timers the backends already keep — so
// the hot paths gain no metric updates and the discrete-event schedule is
// untouched (repeated DES runs of one seed add bit-identical values).
var (
	mRuns = metrics.Default().Counter("sptrsv_runtime_runs",
		"Completed backend runs by backend and outcome.", "backend", "status")
	mMsgs = metrics.Default().Counter("sptrsv_runtime_messages_sent",
		"Point-to-point messages sent, by backend and traffic category.", "backend", "category")
	mBytes = metrics.Default().Counter("sptrsv_runtime_bytes_sent",
		"Modeled wire bytes sent, by backend and traffic category.", "backend", "category")
	mRankSeconds = metrics.Default().Counter("sptrsv_runtime_rank_seconds",
		"Per-rank attributed seconds (virtual under des, wall under pool) summed over ranks, by category.", "backend", "category")
	mWaits = metrics.Default().Counter("sptrsv_runtime_waits",
		"Blocking receives that idled a rank.", "backend")
	mWaitSeconds = metrics.Default().Counter("sptrsv_runtime_wait_seconds",
		"Seconds ranks spent blocked in receives.", "backend")
	mFaults = metrics.Default().Counter("sptrsv_runtime_faults_injected",
		"Injected faults that fired, by kind (drop, delay, straggle, crash).", "backend", "kind")
	mStalls = metrics.Default().Counter("sptrsv_runtime_stalls",
		"Runs aborted by the stall watchdog or ended deadlocked at quiescence.", "backend")
	mTraceDropped = metrics.Default().Counter("sptrsv_runtime_trace_dropped_events",
		"Trace ring-buffer events dropped because TraceCap was exceeded.", "backend")
)

// faultTally counts the injected faults that actually fired during one
// run. The engine keeps one per run; the pool accumulates per rank into a
// shared tally under the injector's existing synchronization points.
type faultTally struct {
	drops, delays, straggles, crashes int
}

func (t *faultTally) addTo(backend string) {
	if t.drops > 0 {
		mFaults.With(backend, "drop").Add(float64(t.drops))
	}
	if t.delays > 0 {
		mFaults.With(backend, "delay").Add(float64(t.delays))
	}
	if t.straggles > 0 {
		mFaults.With(backend, "straggle").Add(float64(t.straggles))
	}
	if t.crashes > 0 {
		mFaults.With(backend, "crash").Add(float64(t.crashes))
	}
}

// publishRun aggregates one run's per-rank timers into the registry.
// stalled marks runs that ended in a stall/deadlock diagnosis; tr (may be
// nil) contributes the trace drop count.
func publishRun(backend string, timers []Timers, tr *tracer, ft faultTally, failed, stalled bool) {
	status := "ok"
	if failed {
		status = "error"
	}
	mRuns.With(backend, status).Inc()
	var msgs, bytes [numCategories]int
	var secs [numCategories]float64
	waits, waitSecs := 0, 0.0
	for i := range timers {
		t := &timers[i]
		for c := 0; c < int(numCategories); c++ {
			msgs[c] += t.MsgsSent[c]
			bytes[c] += t.BytesSent[c]
			secs[c] += t.ByCat[c]
		}
		waits += t.Waits
		waitSecs += t.WaitSeconds
	}
	for c := Category(0); c < numCategories; c++ {
		if msgs[c] > 0 {
			mMsgs.With(backend, c.String()).Add(float64(msgs[c]))
		}
		if bytes[c] > 0 {
			mBytes.With(backend, c.String()).Add(float64(bytes[c]))
		}
		if secs[c] > 0 {
			mRankSeconds.With(backend, c.String()).Add(secs[c])
		}
	}
	if waits > 0 {
		mWaits.With(backend).Add(float64(waits))
		mWaitSeconds.With(backend).Add(waitSecs)
	}
	ft.addTo(backend)
	if stalled {
		mStalls.With(backend).Inc()
	}
	if tr != nil {
		dropped := 0
		for i := range tr.rings {
			dropped += tr.rings[i].dropped
		}
		if dropped > 0 {
			mTraceDropped.With(backend).Add(float64(dropped))
		}
	}
}
