package runtime

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func tracedPingPong(t *testing.T, cap int) *Result {
	t.Helper()
	e := NewEngine(2, constNet{o: 1e-6, alpha: 2e-6, beta: 1e-9})
	e.Opts = Options{Trace: true, TraceCap: cap}
	res, err := e.Run(func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func countKind(tr *Trace, k EventKind) int {
	n := 0
	for _, evs := range tr.Ranks {
		for i := range evs {
			if evs[i].Kind == k {
				n++
			}
		}
	}
	return n
}

func TestEngineTraceEvents(t *testing.T) {
	res := tracedPingPong(t, 0)
	tr := res.Trace
	if tr == nil {
		t.Fatal("traced run has nil Trace")
	}
	if !tr.Complete() {
		t.Fatalf("events dropped: %v", tr.Dropped)
	}
	// 10 messages: every send must pair with exactly one recv via MsgID.
	if s, r := countKind(tr, EvSend), countKind(tr, EvRecv); s != 10 || r != 10 {
		t.Fatalf("send/recv counts %d/%d, want 10/10", s, r)
	}
	sends := map[int64]bool{}
	for _, evs := range tr.Ranks {
		for i := range evs {
			if evs[i].Kind == EvSend {
				if evs[i].MsgID == 0 || sends[evs[i].MsgID] {
					t.Fatalf("bad or duplicate send MsgID %d", evs[i].MsgID)
				}
				sends[evs[i].MsgID] = true
			}
		}
	}
	for _, evs := range tr.Ranks {
		for i := range evs {
			if evs[i].Kind == EvRecv && !sends[evs[i].MsgID] {
				t.Fatalf("recv MsgID %d has no send", evs[i].MsgID)
			}
		}
	}
	// Per-rank events must be chronological with non-overlapping spans.
	for rank, evs := range tr.Ranks {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End()-1e-15 {
				t.Fatalf("rank %d events overlap: %v then %v", rank, evs[i-1], evs[i])
			}
		}
	}
}

func TestUntracedRunHasNoTrace(t *testing.T) {
	res := runPingPong(t)
	if res.Trace != nil {
		t.Fatal("untraced run recorded a trace")
	}
	if _, err := res.TraceBreakdown(); err == nil {
		t.Fatal("TraceBreakdown without a trace must fail")
	}
	if _, err := res.CriticalPath(); err == nil {
		t.Fatal("CriticalPath without a trace must fail")
	}
	if err := res.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace without a trace must fail")
	}
}

func TestTraceRingDrop(t *testing.T) {
	res := tracedPingPong(t, 4)
	tr := res.Trace
	if tr.Complete() {
		t.Fatal("tiny ring did not drop events")
	}
	for _, evs := range tr.Ranks {
		if len(evs) > 4 {
			t.Fatalf("ring held %d events, cap 4", len(evs))
		}
	}
	// The retained window must be the newest events, still chronological.
	for rank, evs := range tr.Ranks {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].Start {
				t.Fatalf("rank %d retained window out of order", rank)
			}
		}
	}
	if _, err := res.CriticalPath(); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("critical path on dropped trace: %v", err)
	}
}

func TestTraceBreakdown(t *testing.T) {
	e := NewEngine(3, ZeroNetwork{})
	e.Opts = Options{Trace: true}
	res, err := e.Run(func(r int) Handler {
		if r == 2 {
			return &recvN{n: 0} // idle rank: no events at all
		}
		return &initOnly{fn: func(ctx *Ctx) {
			ctx.ComputeT(7, 0.5, nil)
			ctx.Elapse(CatZ, 0.25)
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.TraceBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if b.Participants != 2 {
		t.Fatalf("participants %d, want 2 (idle rank excluded)", b.Participants)
	}
	if got := b.Seconds[EvCompute][CatFP]; got != 0.5 {
		t.Fatalf("mean compute %g, want 0.5", got)
	}
	if got := b.Seconds[EvElapse][CatZ]; got != 0.25 {
		t.Fatalf("mean elapse %g, want 0.25", got)
	}
	if b.Counts[EvCompute][CatFP] != 2 || b.Counts[EvElapse][CatZ] != 2 {
		t.Fatalf("counts wrong: %+v", b.Counts)
	}
	if got := b.KindSeconds(EvCompute); got != 0.5 {
		t.Fatalf("KindSeconds %g", got)
	}
}

// TestMeanCatParticipants is the regression test for the averaging bugfix:
// ranks that never ran a handler must not deflate per-rank means.
func TestMeanCatParticipants(t *testing.T) {
	res := &Result{
		Clocks: []float64{4, 4, 0, 0},
		Timers: make([]Timers, 4),
	}
	res.Timers[0].ByCat[CatXY] = 3
	res.Timers[1].ByCat[CatXY] = 1
	// Ranks 2 and 3 never did anything.
	if p := res.Participants(); p != 2 {
		t.Fatalf("Participants = %d, want 2", p)
	}
	if m := res.MeanCat(CatXY); m != 2 {
		t.Fatalf("MeanCat = %g, want 2 (mean over participants, not all ranks)", m)
	}
	// A rank that only sent (zero modeled overhead) still participates.
	res.Timers[2].MsgsSent[CatZ] = 1
	if p := res.Participants(); p != 3 {
		t.Fatalf("Participants = %d, want 3 after a sender appears", p)
	}
	// All-idle result keeps MeanCat safe.
	empty := &Result{Timers: make([]Timers, 2)}
	if m := empty.MeanCat(CatXY); m != 0 {
		t.Fatalf("all-idle MeanCat = %g, want 0", m)
	}
}

// TestMarkSpanNaN is the regression test for the mark-pair bugfix: missing
// or inverted pairs yield NaN, not a meaningless 0 or negative span.
func TestMarkSpanNaN(t *testing.T) {
	res := &Result{Timers: []Timers{
		{Marks: map[string]float64{"a": 1, "b": 3}}, // normal
		{Marks: map[string]float64{"a": 5, "b": 2}}, // inverted
		{Marks: map[string]float64{"a": 1}},         // missing "b"
		{},                                          // no marks
		{Marks: map[string]float64{"a": 2, "b": 2}}, // zero-length, valid
	}}
	s := res.MarkSpan("a", "b")
	if s[0] != 2 {
		t.Fatalf("span[0] = %g, want 2", s[0])
	}
	if !math.IsNaN(s[1]) || !math.IsNaN(s[2]) || !math.IsNaN(s[3]) {
		t.Fatalf("missing/inverted spans %v, want NaN", s[1:4])
	}
	if s[4] != 0 {
		t.Fatalf("zero-length span = %g, want 0", s[4])
	}
}

// TestWriteTraceDropped pins the truncation contract: when the rings
// overflowed, WriteTrace still writes the whole retained trace as valid
// JSON and then reports the loss as a *DroppedEventsError.
func TestWriteTraceDropped(t *testing.T) {
	res := tracedPingPong(t, 4)
	var buf bytes.Buffer
	err := res.WriteTrace(&buf)
	if err == nil {
		t.Fatal("overflowed trace exported without an error")
	}
	var dropped *DroppedEventsError
	if !errors.As(err, &dropped) {
		t.Fatalf("error %T %v, want *DroppedEventsError", err, err)
	}
	if dropped.Dropped <= 0 || dropped.Ranks <= 0 {
		t.Fatalf("empty drop report: %+v", dropped)
	}
	if !strings.Contains(err.Error(), "TraceCap") {
		t.Fatalf("error %q does not tell the user which knob to raise", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("truncated trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("truncated trace carries no events")
	}
}

func TestWriteTraceJSON(t *testing.T) {
	res := tracedPingPong(t, 0)
	var buf bytes.Buffer
	if err := res.WriteTraceNamed(&buf, func(tag int) string {
		if tag == 1 {
			return "ping"
		}
		return ""
	}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	meta, spans := 0, 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Ts < 0 {
				t.Fatalf("negative timestamp: %+v", ev)
			}
			if !strings.Contains(ev.Name, "ping") {
				t.Fatalf("tag namer not applied: %q", ev.Name)
			}
		case "i":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 {
		t.Fatalf("%d thread_name records, want 2", meta)
	}
	if spans == 0 {
		t.Fatal("no span events")
	}
}

func TestCriticalPathSimpleChain(t *testing.T) {
	// Rank 1 computes 1s then messages idle rank 0: the whole makespan is
	// on the dependency chain, split as 1s FP work + one message hop.
	e := NewEngine(2, ZeroNetwork{})
	e.Opts = Options{Trace: true}
	res, err := e.Run(func(r int) Handler {
		if r == 1 {
			return &initOnly{fn: func(ctx *Ctx) {
				ctx.Compute(1.0, nil)
				ctx.Send(Msg{Dst: 0, Tag: 9, Cat: CatZ})
			}}
		}
		return &recvN{n: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := res.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Makespan != res.MaxClock() {
		t.Fatalf("makespan %g != %g", cp.Makespan, res.MaxClock())
	}
	if math.Abs(cp.Length-1.0) > 1e-12 {
		t.Fatalf("chain length %g, want 1.0", cp.Length)
	}
	if math.Abs(cp.WorkByCat[CatFP]-1.0) > 1e-12 {
		t.Fatalf("FP work on chain %g, want 1.0", cp.WorkByCat[CatFP])
	}
	if cp.MsgHops != 1 {
		t.Fatalf("MsgHops %d, want 1", cp.MsgHops)
	}
	// Chronological and within the run.
	for i := 1; i < len(cp.Steps); i++ {
		if cp.Steps[i].Start < cp.Steps[i-1].Start {
			t.Fatalf("steps not chronological: %+v", cp.Steps)
		}
	}
}

func TestCriticalPathBoundedByMakespan(t *testing.T) {
	res := tracedPingPong(t, 0)
	cp, err := res.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length > cp.Makespan*(1+1e-12) {
		t.Fatalf("chain %g exceeds makespan %g", cp.Length, cp.Makespan)
	}
	// Ping-pong is fully serialized: the chain IS the makespan.
	if cp.Length < cp.Makespan*0.999 {
		t.Fatalf("serialized run: chain %g should equal makespan %g", cp.Length, cp.Makespan)
	}
	if cp.MsgHops == 0 || cp.LatencySeconds <= 0 {
		t.Fatalf("chain has no message hops: %+v", cp)
	}
}

func TestCriticalPathThroughAfter(t *testing.T) {
	// Self-scheduled events (Ctx.After) must keep the chain connected: the
	// task delay appears as a latency edge from a zero-duration send.
	e := NewEngine(1, ZeroNetwork{})
	e.Opts = Options{Trace: true}
	res, err := e.Run(func(int) Handler { return &afterChain{} })
	if err != nil {
		t.Fatal(err)
	}
	cp, err := res.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length > cp.Makespan*(1+1e-12) {
		t.Fatalf("chain %g exceeds makespan %g", cp.Length, cp.Makespan)
	}
	if math.Abs(cp.Length-0.3) > 1e-12 {
		t.Fatalf("chain %g, want 0.3 (the longest After delay)", cp.Length)
	}
	if cp.MsgHops != 1 {
		t.Fatalf("MsgHops %d, want 1 (jump straight to the 0.3s self-send)", cp.MsgHops)
	}
}

func TestMessageEdges(t *testing.T) {
	res := tracedPingPong(t, 0)
	edges, err := res.MessageEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 10 {
		t.Fatalf("%d edges, want 10", len(edges))
	}
	for _, e := range edges {
		if e.Consume < e.Arrive-1e-15 {
			t.Fatalf("edge consumed before arrival: %+v", e)
		}
		if e.Slack < -1e-15 {
			t.Fatalf("negative slack: %+v", e)
		}
		// Ping-pong receivers are always blocked: every edge ends a wait.
		if e.Wait <= 0 {
			t.Fatalf("serialized edge with no wait: %+v", e)
		}
	}
	top := TopSlack(edges, 3)
	if len(top) != 3 {
		t.Fatalf("TopSlack returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Slack < top[i-1].Slack {
			t.Fatal("TopSlack not ascending")
		}
	}
	tw := TopWait(edges, 3)
	for i := 1; i < len(tw); i++ {
		if tw[i].Wait > tw[i-1].Wait {
			t.Fatal("TopWait not descending")
		}
	}
	if k := len(TopSlack(edges, 100)); k != 10 {
		t.Fatalf("TopSlack over-asks: %d", k)
	}
}

func TestPoolTrace(t *testing.T) {
	p := &Pool{Timeout: 10 * time.Second, Opts: Options{Trace: true}}
	res, err := p.Run(2, func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || !tr.Complete() {
		t.Fatal("pool trace missing or incomplete")
	}
	if s, r := countKind(tr, EvSend), countKind(tr, EvRecv); s != 10 || r != 10 {
		t.Fatalf("pool send/recv counts %d/%d, want 10/10", s, r)
	}
	// Same schema as the Engine: recv events carry peer, msg id, arrival.
	for _, evs := range tr.Ranks {
		for i := range evs {
			e := &evs[i]
			if e.Kind == EvRecv && (e.MsgID == 0 || e.Peer < 0) {
				t.Fatalf("pool recv missing linkage: %+v", e)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("pool trace JSON invalid")
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EvCompute: "compute", EvSend: "send", EvRecv: "recv",
		EvWait: "wait", EvElapse: "elapse", EvMark: "mark",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

// TestTracingPreservesDeterminism pins that enabling the tracer does not
// perturb the simulated event order: clocks must be bit-identical with
// tracing on and off.
func TestTracingPreservesDeterminism(t *testing.T) {
	plain := runPingPong(t)
	traced := tracedPingPong(t, 0)
	for i := range plain.Clocks {
		if plain.Clocks[i] != traced.Clocks[i] {
			t.Fatalf("tracing changed rank %d clock: %g vs %g",
				i, plain.Clocks[i], traced.Clocks[i])
		}
	}
}
