package runtime

import (
	"fmt"
	"math"
	"sort"
)

// This file analyzes the dependency structure of a traced run: the critical
// path (the longest chain of task → message → task dependencies, whose
// length is the makespan lower bound no schedule of the same DAG can beat)
// and the per-message slack that identifies which communication edges are
// actually rate-limiting. The analysis is exact for the discrete-event
// backend, whose clock only advances through recorded spans; on Pool traces
// it is an approximation subject to scheduler noise.

// PathStep is one element of the critical path, chronological. Kind "msg"
// denotes a network-latency hop from the Peer rank's send to this rank's
// resume (for Ctx.After / Ctx.SendAfter self-events this is the modeled
// task or put delay); the other kinds mirror EventKind strings.
type PathStep struct {
	Rank       int
	Kind       string
	Cat        Category
	Tag        int
	Peer       int
	MsgID      int64
	Start, Dur float64
}

// CriticalPath is the longest dependency chain of one traced run.
type CriticalPath struct {
	// Makespan is the run's latest rank clock.
	Makespan float64
	// Length is the total time along the chain — work spans plus message
	// latencies. It is a lower bound on the makespan of any schedule of
	// this dependency graph, and Length ≤ Makespan always holds (the
	// chain's spans are disjoint intervals of the run).
	Length float64
	// WorkByCat splits the chain's work spans (compute, send and recv
	// overheads, elapse) by category.
	WorkByCat [NumCategories]float64
	// LatencySeconds is the chain time spent in network latency (or
	// modeled GPU task/put delays) rather than rank-attributed work.
	LatencySeconds float64
	// MsgHops counts the message edges on the chain.
	MsgHops int
	Steps   []PathStep
}

// CriticalPath walks the trace backward from the event that determines the
// makespan: each span's predecessor is the previous span on the same rank
// (they are contiguous — the DES clock only advances through recorded
// spans), except that a wait span's predecessor is the send that produced
// the awaited message, reached across the network-latency edge. The
// resulting chain is the run's actual critical path.
func (r *Result) CriticalPath() (*CriticalPath, error) {
	t := r.Trace
	if t == nil {
		return nil, fmt.Errorf("runtime: run was not traced (set Options.Trace)")
	}
	if !t.Complete() {
		return nil, fmt.Errorf("runtime: trace dropped events (raise Options.TraceCap for critical-path analysis)")
	}
	// Index send events by message id.
	type loc struct{ rank, idx int }
	sends := map[int64]loc{}
	total := 0
	for rank, evs := range t.Ranks {
		total += len(evs)
		for i := range evs {
			if evs[i].Kind == EvSend && evs[i].MsgID != 0 {
				sends[evs[i].MsgID] = loc{rank, i}
			}
		}
	}
	// The chain ends at the last event of the rank that finishes last.
	rank, idx, end := -1, -1, math.Inf(-1)
	for rk, evs := range t.Ranks {
		if n := len(evs); n > 0 && evs[n-1].End() > end {
			rank, idx, end = rk, n-1, evs[n-1].End()
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("runtime: empty trace")
	}
	cp := &CriticalPath{Makespan: r.MaxClock()}
	var steps []PathStep
	for iter := 0; ; iter++ {
		if iter > total+1 {
			return nil, fmt.Errorf("runtime: critical-path walk did not terminate (malformed trace)")
		}
		e := &t.Ranks[rank][idx]
		if e.Kind == EvWait {
			s, ok := sends[e.MsgID]
			if !ok {
				// A wait on a message whose send was not traced (cannot
				// happen on a complete Engine trace): end the chain here.
				break
			}
			se := &t.Ranks[s.rank][s.idx]
			lat := e.End() - se.End()
			if lat < 0 {
				lat = 0
			}
			steps = append(steps, PathStep{
				Rank: rank, Kind: "msg", Cat: e.Cat, Tag: e.Tag, Peer: s.rank,
				MsgID: e.MsgID, Start: se.End(), Dur: lat,
			})
			cp.Length += lat
			cp.LatencySeconds += lat
			cp.MsgHops++
			rank, idx = s.rank, s.idx
			continue
		}
		if e.Kind == EvSweep {
			// Sweep annotations cover the per-task compute spans that
			// already advanced the clock; counting both would double the
			// chain. Skip the annotation and keep walking the real spans.
			if idx == 0 {
				break
			}
			idx--
			continue
		}
		if e.Dur > 0 || e.Kind == EvSend {
			steps = append(steps, PathStep{
				Rank: rank, Kind: e.Kind.String(), Cat: e.Cat, Tag: e.Tag,
				Peer: e.Peer, MsgID: e.MsgID, Start: e.Start, Dur: e.Dur,
			})
			cp.Length += e.Dur
			cp.WorkByCat[e.Cat] += e.Dur
		}
		if idx == 0 {
			break
		}
		idx--
	}
	// The walk collected steps newest-first; present them chronologically.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	cp.Steps = steps
	return cp, nil
}

// SweepStats summarizes the level-sweep annotations of a traced run — the
// scheduled execution path records one EvSweep per sweep with the task
// count in the tag (LevelSweepTag), and this is the analyzer-side view:
// how many sweeps ran, how much compute they covered, and how wide they
// were. A handler-path trace has no sweeps and yields the zero value.
type SweepStats struct {
	// Sweeps counts level-sweep spans over all ranks; Tasks sums their
	// decoded task counts.
	Sweeps, Tasks int
	// Seconds is the total time covered by sweep spans over all ranks.
	Seconds float64
	// MaxTasks is the widest single sweep — the available intra-rank
	// parallelism the pool backend's work-stealing can exploit.
	MaxTasks int
}

// MeanTasks returns the average tasks per sweep (0 when no sweeps ran).
func (s SweepStats) MeanTasks() float64 {
	if s.Sweeps == 0 {
		return 0
	}
	return float64(s.Tasks) / float64(s.Sweeps)
}

// LevelSweeps aggregates the run's level-sweep annotations; it fails only
// when the run was not traced at all.
func (r *Result) LevelSweeps() (SweepStats, error) {
	if r.Trace == nil {
		return SweepStats{}, fmt.Errorf("runtime: run was not traced (set Options.Trace)")
	}
	var s SweepStats
	for _, evs := range r.Trace.Ranks {
		for i := range evs {
			e := &evs[i]
			if e.Kind != EvSweep {
				continue
			}
			n, ok := LevelSweepTaskCount(e.Tag)
			if !ok {
				continue
			}
			s.Sweeps++
			s.Tasks += n
			s.Seconds += e.Dur
			if n > s.MaxTasks {
				s.MaxTasks = n
			}
		}
	}
	return s, nil
}

// Edge is one observed message dependency: sent by Src, consumed by Dst.
type Edge struct {
	MsgID    int64
	Src, Dst int
	Cat      Category
	Tag      int
	Bytes    int
	// SendEnd is when the sender finished injecting, Arrive when the
	// payload reached the receiver, Consume when the receiver started
	// processing it.
	SendEnd, Arrive, Consume float64
	// Slack is Consume − Arrive: how much later the message could have
	// arrived without delaying the receiver. Zero-slack edges are the
	// candidates for the next communication optimization.
	Slack float64
	// Wait is the receiver idle time this message ended (0 when the
	// receiver never blocked on it).
	Wait float64
}

// MessageEdges extracts every message dependency from the trace, in
// delivery order per receiving rank.
func (r *Result) MessageEdges() ([]Edge, error) {
	t := r.Trace
	if t == nil {
		return nil, fmt.Errorf("runtime: run was not traced (set Options.Trace)")
	}
	sendEnd := map[int64]float64{}
	for _, evs := range t.Ranks {
		for i := range evs {
			if evs[i].Kind == EvSend && evs[i].MsgID != 0 {
				sendEnd[evs[i].MsgID] = evs[i].End()
			}
		}
	}
	var edges []Edge
	for rank, evs := range t.Ranks {
		waits := map[int64]float64{}
		for i := range evs {
			e := &evs[i]
			switch e.Kind {
			case EvWait:
				waits[e.MsgID] += e.Dur
			case EvRecv:
				edges = append(edges, Edge{
					MsgID: e.MsgID, Src: e.Peer, Dst: rank,
					Cat: e.Cat, Tag: e.Tag, Bytes: e.Bytes,
					SendEnd: sendEnd[e.MsgID], Arrive: e.Arrive, Consume: e.Start,
					Slack: e.Start - e.Arrive, Wait: waits[e.MsgID],
				})
			}
		}
	}
	return edges, nil
}

// TopSlack returns the k edges with the least slack (ties broken toward
// larger transfers): the messages most likely to be rate-limiting.
func TopSlack(edges []Edge, k int) []Edge {
	out := append([]Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		return out[i].Bytes > out[j].Bytes
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TopWait returns the k edges that ended the longest receiver waits — where
// ranks actually sat idle, the Figs. 8–11 "recv-wait" story per message.
func TopWait(edges []Edge, k int) []Edge {
	out := append([]Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		return out[i].Bytes > out[j].Bytes
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
