package runtime

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// constNet charges fixed overhead o and latency per byte.
type constNet struct {
	o, alpha, beta float64
}

func (n constNet) Cost(_, _, bytes int) (float64, float64, float64) {
	return n.o, n.alpha + n.beta*float64(bytes), 0
}

// pingpong bounces a counter between ranks 0 and 1 `rounds` times.
type pingpong struct {
	rank, rounds int
	got          int
	peer         int
}

func (p *pingpong) Init(ctx *Ctx) {
	if p.rank == 0 {
		ctx.Send(Msg{Dst: p.peer, Tag: 1, Cat: CatXY, Bytes: 8, Data: 0})
	}
}

func (p *pingpong) OnMessage(ctx *Ctx, m Msg) {
	p.got++
	v := m.Data.(int)
	if v+1 < p.rounds*2 {
		ctx.Send(Msg{Dst: p.peer, Tag: 1, Cat: CatXY, Bytes: 8, Data: v + 1})
	}
}

func (p *pingpong) Done() bool { return p.got >= p.rounds }

func runPingPong(t *testing.T) *Result {
	t.Helper()
	e := NewEngine(2, constNet{o: 1e-6, alpha: 2e-6, beta: 1e-9})
	res, err := e.Run(func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnginePingPongTiming(t *testing.T) {
	res := runPingPong(t)
	// 10 messages total, each costing o + alpha + 8*beta serialized.
	per := 1e-6 + 2e-6 + 8e-9
	want := 10 * per
	if got := res.MaxClock(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("makespan %g, want %g", got, want)
	}
	// All attributed time must be XY.
	if res.MeanCat(CatFP) != 0 || res.MeanCat(CatZ) != 0 {
		t.Fatal("time attributed to wrong categories")
	}
}

func TestEngineDeterminism(t *testing.T) {
	a := runPingPong(t)
	b := runPingPong(t)
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			t.Fatalf("non-deterministic clocks: %v vs %v", a.Clocks, b.Clocks)
		}
	}
}

func TestEngineComputeAdvancesClock(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	ran := false
	res, err := e.Run(func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) {
			ctx.Compute(0.5, func() { ran = true })
			ctx.Elapse(CatZ, 0.25)
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compute closure not executed")
	}
	if res.Clocks[0] != 0.75 {
		t.Fatalf("clock %g", res.Clocks[0])
	}
	if res.Timers[0].ByCat[CatFP] != 0.5 || res.Timers[0].ByCat[CatZ] != 0.25 {
		t.Fatal("attribution wrong")
	}
	if res.Timers[0].Total() != 0.75 {
		t.Fatal("Total wrong")
	}
}

// initOnly runs a function in Init and is immediately done.
type initOnly struct{ fn func(*Ctx) }

func (h *initOnly) Init(ctx *Ctx)       { h.fn(ctx) }
func (h *initOnly) OnMessage(*Ctx, Msg) {}
func (h *initOnly) Done() bool          { return true }

// afterChain verifies Ctx.After delivers in time order.
type afterChain struct {
	seen []int
	n    int
}

func (h *afterChain) Init(ctx *Ctx) {
	ctx.After(0.3, 3, 3)
	ctx.After(0.1, 1, 1)
	ctx.After(0.2, 2, 2)
}

func (h *afterChain) OnMessage(ctx *Ctx, m Msg) {
	h.seen = append(h.seen, m.Tag)
	h.n++
}

func (h *afterChain) Done() bool { return h.n == 3 }

func TestEngineAfterOrdering(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	var captured *afterChain
	res, err := e.Run(func(int) Handler {
		captured = &afterChain{}
		return captured
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(captured.seen) != 3 || captured.seen[0] != 1 || captured.seen[1] != 2 || captured.seen[2] != 3 {
		t.Fatalf("delivery order %v", captured.seen)
	}
	if res.Clocks[0] < 0.3 {
		t.Fatalf("clock %g did not reach last event", res.Clocks[0])
	}
}

func TestEngineWaitAttribution(t *testing.T) {
	// Rank 1 computes for 1s, then messages rank 0, which has been idle:
	// rank 0's wait must be attributed to the message category (Z).
	e := NewEngine(2, ZeroNetwork{})
	res, err := e.Run(func(r int) Handler {
		if r == 1 {
			return &initOnly{fn: func(ctx *Ctx) {
				ctx.Compute(1.0, nil)
				ctx.Send(Msg{Dst: 0, Tag: 9, Cat: CatZ})
			}}
		}
		return &recvN{n: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if z := res.Timers[0].ByCat[CatZ]; z < 0.999 || z > 1.001 {
		t.Fatalf("rank 0 Z wait %g, want ~1", z)
	}
}

// recvN waits for n messages.
type recvN struct{ n, got int }

func (h *recvN) Init(*Ctx)           {}
func (h *recvN) OnMessage(*Ctx, Msg) { h.got++ }
func (h *recvN) Done() bool          { return h.got >= h.n }

func TestEngineDeadlockDetected(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	_, err := e.Run(func(int) Handler { return &recvN{n: 1} })
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine(2, ZeroNetwork{})
	e.MaxEvents = 10
	_, err := e.Run(func(r int) Handler {
		return &pingpong{rank: r, rounds: 1000, peer: 1 - r}
	})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestEngineMarks(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	res, err := e.Run(func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) {
			ctx.Mark("a")
			ctx.Compute(2, nil)
			ctx.Mark("b")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	span := res.MarkSpan("a", "b")
	if span[0] != 2 {
		t.Fatalf("span %v", span)
	}
}

func TestPoolPingPong(t *testing.T) {
	p := &Pool{Timeout: 10 * time.Second}
	res, err := p.Run(2, func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxClock() <= 0 {
		t.Fatal("no wall time recorded")
	}
}

func TestPoolParallelFanIn(t *testing.T) {
	// 8 workers send to rank 0; rank 0 counts them.
	const n = 9
	var sum atomic.Int64
	p := &Pool{Timeout: 10 * time.Second}
	_, err := p.Run(n, func(r int) Handler {
		if r == 0 {
			return &recvN{n: n - 1}
		}
		return &initOnly{fn: func(ctx *Ctx) {
			ctx.Compute(0, func() { sum.Add(int64(ctx.Rank())) })
			ctx.Send(Msg{Dst: 0, Tag: 1, Cat: CatXY})
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 36 {
		t.Fatalf("sum %d", sum.Load())
	}
}

func TestPoolTimeout(t *testing.T) {
	p := &Pool{Timeout: 200 * time.Millisecond}
	_, err := p.Run(1, func(int) Handler { return &recvN{n: 1} })
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestPoolPanicSurfaced(t *testing.T) {
	p := &Pool{Timeout: 5 * time.Second}
	_, err := p.Run(2, func(r int) Handler {
		if r == 1 {
			return &initOnly{fn: func(*Ctx) { panic("boom") }}
		}
		return &recvN{n: 1}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestPoolStrayMessageDetected(t *testing.T) {
	p := &Pool{Timeout: 5 * time.Second}
	_, err := p.Run(2, func(r int) Handler {
		if r == 1 {
			// Sends to rank 0, which expects nothing and exits immediately.
			return &initOnly{fn: func(ctx *Ctx) {
				time.Sleep(50 * time.Millisecond)
				ctx.Send(Msg{Dst: 0, Tag: 1, Cat: CatXY})
			}}
		}
		return &recvN{n: 0}
	})
	if err == nil || !strings.Contains(err.Error(), "stray") {
		t.Fatalf("expected stray message error, got %v", err)
	}
}

func TestPoolAfterPanics(t *testing.T) {
	p := &Pool{Timeout: 5 * time.Second}
	_, err := p.Run(1, func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) { ctx.After(1, 0, nil) }}
	})
	if err == nil || !strings.Contains(err.Error(), "Engine") {
		t.Fatalf("expected After panic, got %v", err)
	}
}

func TestVirtualFlag(t *testing.T) {
	e := NewEngine(1, ZeroNetwork{})
	virtual := false
	if _, err := e.Run(func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) { virtual = ctx.Virtual() }}
	}); err != nil {
		t.Fatal(err)
	}
	if !virtual {
		t.Fatal("Engine should report virtual time")
	}
	p := &Pool{Timeout: 5 * time.Second}
	if _, err := p.Run(1, func(int) Handler {
		return &initOnly{fn: func(ctx *Ctx) { virtual = ctx.Virtual() }}
	}); err != nil {
		t.Fatal(err)
	}
	if virtual {
		t.Fatal("Pool should report real time")
	}
}

func TestCategoryString(t *testing.T) {
	if CatFP.String() != "FP-Operation" || CatXY.String() != "XY-Comm" || CatZ.String() != "Z-Comm" {
		t.Fatal("category names wrong")
	}
}

func TestMessageCounters(t *testing.T) {
	e := NewEngine(2, constNet{o: 1e-6})
	res, err := e.Run(func(r int) Handler {
		return &pingpong{rank: r, rounds: 5, peer: 1 - r}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMsgs() != 10 {
		t.Fatalf("TotalMsgs = %d, want 10", res.TotalMsgs())
	}
	if res.TotalBytes() != 80 {
		t.Fatalf("TotalBytes = %d, want 80", res.TotalBytes())
	}
	if res.CatMsgs(CatXY) != 10 || res.CatMsgs(CatZ) != 0 {
		t.Fatal("per-category counts wrong")
	}
}

func TestPoolWaitAttribution(t *testing.T) {
	// Pins the attribution rule documented in the package comment: inbox
	// wait time — including the wait before a rank's first message — is
	// charged to the category of the message that ends the wait, matching
	// the Engine (see TestEngineWaitAttribution).
	p := &Pool{Timeout: 10 * time.Second}
	res, err := p.Run(2, func(r int) Handler {
		if r == 1 {
			return &initOnly{fn: func(ctx *Ctx) {
				time.Sleep(100 * time.Millisecond)
				ctx.Send(Msg{Dst: 0, Tag: 9, Cat: CatZ})
			}}
		}
		return &recvN{n: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if z := res.Timers[0].ByCat[CatZ]; z < 0.05 {
		t.Fatalf("rank 0 Z wait %g, want ≥0.05 (wait charged to the arriving message's category)", z)
	}
	if xy := res.Timers[0].ByCat[CatXY]; xy != 0 {
		t.Fatalf("rank 0 XY time %g, want 0 (no XY traffic ended a wait)", xy)
	}
	if fp := res.Timers[0].ByCat[CatFP]; fp > 0.01 {
		t.Fatalf("rank 0 FP time %g, want ~0", fp)
	}
}
