package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sptrsv/internal/fault"
)

// Options configures optional runtime instrumentation. Both backends accept
// the same Options, so a traced DES run and a traced goroutine run produce
// traces with an identical schema — only the clock differs (virtual versus
// wall seconds).
type Options struct {
	// Trace enables per-rank event recording (compute / send / recv / wait
	// / elapse / mark spans). Off by default: the hot paths stay untouched
	// when tracing is disabled.
	Trace bool
	// TraceCap bounds the number of retained events per rank; once full,
	// the per-rank ring drops its oldest events (counted in
	// Trace.Dropped). 0 means DefaultTraceCap.
	TraceCap int
	// Faults injects the described faults into the run (see fault.Plan).
	// nil — the default — injects nothing and leaves the hot paths
	// untouched. Under the Engine injection is bit-deterministic for a
	// fixed Plan.Seed; under the Pool it perturbs real wall time.
	Faults *fault.Plan
	// StallTimeout arms the Pool backend's stall watchdog: a rank blocked
	// in a receive for longer than this aborts the run with a
	// fault.StallError naming the stuck rank (and the expected peer when a
	// dropped message explains the stall). 0 disables the watchdog. The
	// Engine ignores it — virtual-time deadlocks are detected exactly at
	// quiescence.
	StallTimeout time.Duration
	// ElasticTag marks the run as an elastic-mode solve and names the
	// message tag of its staleness-deadline timer pops. Nonzero it changes
	// three behaviors: the Engine discards elastic-tagged events whose
	// destination reports them stale (ElasticTicker) and exempts the tag
	// from straggler inflation; the Pool implements Ctx.After for the tag
	// (a wall-clock timer) and skips the finished-rank stray-message check,
	// because a forced phase closure legitimately strands late traffic in
	// the inboxes of ranks that no longer need it. 0 — the default — keeps
	// the strict exactly-once-then-block contract.
	ElasticTag int
}

// DefaultTraceCap is the per-rank event capacity used when
// Options.TraceCap is 0.
const DefaultTraceCap = 1 << 16

// EventKind classifies one traced span.
type EventKind uint8

const (
	// EvCompute is a floating-point work span (Ctx.Compute / Ctx.ComputeT).
	EvCompute EventKind = iota
	// EvSend is the sender-side injection of a message: the network
	// model's send overhead under the Engine, a zero-duration stamp under
	// the Pool. Self-scheduled events (Ctx.After / Ctx.SendAfter) record a
	// zero-duration EvSend at schedule time so the dependency chain stays
	// connected.
	EvSend
	// EvRecv is the receiver-side consumption of a message (the modeled
	// recv overhead under the Engine; zero-duration under the Pool). One
	// EvRecv is recorded for every delivery, so message edges are complete
	// even when the receiver never blocked.
	EvRecv
	// EvWait is receiver idle time ended by a message arrival.
	EvWait
	// EvElapse is modeled non-FP overhead charged via Ctx.Elapse
	// (Engine only; the Pool's real overheads ride the wall clock).
	EvElapse
	// EvMark is an instantaneous phase mark (Ctx.Mark); Key holds the name.
	EvMark
	// EvFault is an injected fault (Options.Faults): Key names it ("drop",
	// "delay", "straggle", "crash"). Drops and crashes are zero-duration
	// stamps; delays and straggler extensions carry the injected extra
	// seconds in Dur, charged to CatFault.
	EvFault
	// EvSweep is a level-sweep annotation recorded by the scheduled
	// execution path (Ctx.Span): one span per sweep covering the per-task
	// compute spans it contains, with the task count encoded in the tag
	// (LevelSweepTag). It charges no time of its own — the member computes
	// already advanced the clock — so critical-path analysis skips it and
	// breakdowns report it as its own row rather than double-counting
	// compute.
	EvSweep
	numEventKinds
)

// NumEventKinds and NumCategories export the enum sizes for aggregate
// arrays (e.g. Breakdown.Seconds).
const (
	NumEventKinds = int(numEventKinds)
	NumCategories = int(numCategories)
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvWait:
		return "wait"
	case EvElapse:
		return "elapse"
	case EvMark:
		return "mark"
	case EvFault:
		return "fault"
	case EvSweep:
		return "sweep"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// TagLevelSweep is the base span tag of level-sweep annotations. A sweep
// over n tasks is tagged LevelSweepTag(n); the analyzer side decodes the
// count with LevelSweepTaskCount. The base value sits above every trsv
// message and compute tag, and the count rides the high bits, so sweep
// tags never collide with ordinary tags.
const TagLevelSweep = 0x80

// LevelSweepTag encodes a level sweep over n tasks as a span tag.
func LevelSweepTag(n int) int { return TagLevelSweep | n<<8 }

// LevelSweepTaskCount decodes a sweep tag back to its task count; ok is
// false when tag is not a level-sweep tag.
func LevelSweepTaskCount(tag int) (n int, ok bool) {
	if tag&0xFF != TagLevelSweep {
		return 0, false
	}
	return tag >> 8, true
}

// Event is one traced span on one rank. Times are in the backend's clock
// (virtual seconds under the Engine, wall seconds since run start under the
// Pool).
type Event struct {
	Kind EventKind
	Cat  Category
	// Tag is the message tag for send/recv/wait events and the caller's
	// span tag for ComputeT spans (0 for untagged computes).
	Tag int
	// Peer is the destination rank of a send and the source rank of a
	// recv/wait; -1 when the event has no peer.
	Peer  int
	Bytes int
	// MsgID links the EvSend of a message to its EvRecv/EvWait on the
	// destination rank; 0 when the event is not part of a message.
	MsgID int64
	// Start and Dur delimit the span.
	Start, Dur float64
	// Arrive is, for recv/wait events, when the payload became available.
	// Start − Arrive of an EvRecv is the message's slack: zero when the
	// receiver was blocked on it, positive when it sat in the queue.
	Arrive float64
	// Key is the mark name for EvMark events.
	Key string
}

// End returns the span's finishing time.
func (e *Event) End() float64 { return e.Start + e.Dur }

// Trace is the recorded event history of one run: one chronological slice
// per rank, plus how many events each rank's ring dropped (oldest first)
// when TraceCap was exceeded.
type Trace struct {
	Ranks   [][]Event
	Dropped []int
}

// Complete reports whether no rank dropped events — the precondition for
// exact critical-path analysis.
func (t *Trace) Complete() bool {
	for _, d := range t.Dropped {
		if d > 0 {
			return false
		}
	}
	return true
}

// Events returns the total retained event count.
func (t *Trace) Events() int {
	n := 0
	for _, evs := range t.Ranks {
		n += len(evs)
	}
	return n
}

// ---- recording ----

// ring is a bounded per-rank event buffer: it grows by appending until cap
// events are held, then overwrites the oldest.
type ring struct {
	buf     []Event
	cap     int
	head    int // index of the oldest event once the ring is full
	dropped int
}

func (r *ring) add(e Event) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

func (r *ring) events() []Event {
	if r.head == 0 {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// tracer holds the per-rank rings of one run. Each rank's ring is written
// only by that rank's execution (the Engine is single-threaded; under the
// Pool each rank goroutine touches only its own ring), so no locking is
// needed.
type tracer struct {
	rings []ring
}

func newTracer(n int, opts Options) *tracer {
	if !opts.Trace {
		return nil
	}
	cap := opts.TraceCap
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	tr := &tracer{rings: make([]ring, n)}
	for i := range tr.rings {
		tr.rings[i].cap = cap
	}
	return tr
}

func (tr *tracer) add(rank int, e Event) { tr.rings[rank].add(e) }

func (tr *tracer) snapshot() *Trace {
	t := &Trace{
		Ranks:   make([][]Event, len(tr.rings)),
		Dropped: make([]int, len(tr.rings)),
	}
	for i := range tr.rings {
		t.Ranks[i] = tr.rings[i].events()
		t.Dropped[i] = tr.rings[i].dropped
	}
	return t
}

// ---- breakdown metrics ----

// Breakdown aggregates a trace into the paper's Figs. 8/9-style splits:
// seconds per (event kind, category), averaged over participating ranks
// (ranks that recorded at least one event), plus total event counts.
type Breakdown struct {
	Participants int
	// Seconds[kind][cat] is the mean seconds per participating rank.
	Seconds [NumEventKinds][NumCategories]float64
	// Counts[kind][cat] is the total event count over all ranks.
	Counts [NumEventKinds][NumCategories]int
}

// KindSeconds sums one kind's mean seconds over categories.
func (b *Breakdown) KindSeconds(k EventKind) float64 {
	s := 0.0
	for _, v := range b.Seconds[k] {
		s += v
	}
	return s
}

// TraceBreakdown aggregates the run's trace; it fails when the run was not
// traced (enable Options.Trace on the backend).
func (r *Result) TraceBreakdown() (*Breakdown, error) {
	if r.Trace == nil {
		return nil, fmt.Errorf("runtime: run was not traced (set Options.Trace)")
	}
	b := &Breakdown{}
	for _, evs := range r.Trace.Ranks {
		if len(evs) == 0 {
			continue
		}
		b.Participants++
		for i := range evs {
			e := &evs[i]
			b.Seconds[e.Kind][e.Cat] += e.Dur
			b.Counts[e.Kind][e.Cat]++
		}
	}
	if b.Participants > 0 {
		inv := 1 / float64(b.Participants)
		for k := range b.Seconds {
			for c := range b.Seconds[k] {
				b.Seconds[k][c] *= inv
			}
		}
	}
	return b, nil
}

// ---- Chrome trace_event export ----

// chromeEvent is one entry of the Chrome trace_event JSON array
// (chrome://tracing and Perfetto both consume it).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// DroppedEventsError reports that a trace export was written but is
// incomplete: TraceCap made the per-rank rings overwrite their oldest
// events. The JSON emitted before the error is valid and viewable — callers
// that can live with a truncated trace check for this type and continue;
// callers that need a complete one re-run with a larger Options.TraceCap.
type DroppedEventsError struct {
	// Dropped is the total number of events lost across ranks.
	Dropped int
	// Ranks is how many ranks lost at least one event.
	Ranks int
}

func (e *DroppedEventsError) Error() string {
	return fmt.Sprintf("runtime: trace incomplete: %d events dropped on %d ranks (raise Options.TraceCap)",
		e.Dropped, e.Ranks)
}

// droppedError builds the DroppedEventsError for t, nil when complete.
func (t *Trace) droppedError() error {
	total, ranks := 0, 0
	for _, d := range t.Dropped {
		if d > 0 {
			total += d
			ranks++
		}
	}
	if total == 0 {
		return nil
	}
	return &DroppedEventsError{Dropped: total, Ranks: ranks}
}

// TraceSpan is one caller-supplied span stitched into a Chrome trace
// export alongside the per-rank runtime events. The serving layer uses it
// to place request-scoped service stages (queue wait, batch assembly,
// solve, refine, encode) on their own process row next to the solve's rank
// rows, so one file shows the request's whole journey. Note the clocks
// differ by construction: rank events run on the backend's clock (virtual
// seconds under the DES engine), service spans on the caller's — the
// stitched file juxtaposes them, it does not align them.
type TraceSpan struct {
	Name string
	// Cat is the Chrome category; empty means "service".
	Cat string
	// Pid and Tid choose the process/thread row. The rank events occupy
	// pid 0, so callers stitching service spans use a different pid.
	Pid, Tid int
	// ProcessName, when non-empty, emits a process_name metadata record
	// once per pid; ThreadName likewise per (pid, tid).
	ProcessName, ThreadName string
	// StartUs and DurUs delimit the span in microseconds.
	StartUs, DurUs float64
	Args           map[string]any
}

// appendSpans renders caller spans (with their one-time process/thread
// metadata) into a Chrome trace.
func appendSpans(out *chromeTrace, spans []TraceSpan) {
	seenPid := map[int]bool{}
	seenTid := map[[2]int]bool{}
	for i := range spans {
		sp := &spans[i]
		if sp.ProcessName != "" && !seenPid[sp.Pid] {
			seenPid[sp.Pid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: sp.Pid,
				Args: map[string]any{"name": sp.ProcessName},
			})
		}
		if key := [2]int{sp.Pid, sp.Tid}; sp.ThreadName != "" && !seenTid[key] {
			seenTid[key] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: sp.Pid, Tid: sp.Tid,
				Args: map[string]any{"name": sp.ThreadName},
			})
		}
		cat := sp.Cat
		if cat == "" {
			cat = "service"
		}
		dur := sp.DurUs
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: cat, Ph: "X", Ts: sp.StartUs, Dur: &dur,
			Pid: sp.Pid, Tid: sp.Tid, Args: sp.Args,
		})
	}
}

// WriteTraceSpans writes a Chrome trace holding only the given spans — the
// export for a request that has service-stage spans but whose solve was
// not traced.
func WriteTraceSpans(w io.Writer, spans []TraceSpan) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	appendSpans(&out, spans)
	return json.NewEncoder(w).Encode(out)
}

// WriteTrace emits the run's trace as Chrome trace_event JSON, one thread
// per rank, viewable in chrome://tracing or https://ui.perfetto.dev. It
// fails when the run was not traced. When the rings dropped events
// (TraceCap exceeded) the truncated trace is still written in full, and the
// returned error is a *DroppedEventsError — silent truncation would let a
// critical-path reading of the file miss the very spans that made the run
// long.
func (r *Result) WriteTrace(w io.Writer) error { return r.WriteTraceNamed(w, nil) }

// WriteTraceNamed is WriteTrace with a caller-supplied tag namer (e.g.
// trsv.TagName) used to label spans; nil falls back to numeric tags.
func (r *Result) WriteTraceNamed(w io.Writer, tagName func(int) string) error {
	return r.WriteTraceStitched(w, tagName, nil)
}

// WriteTraceStitched is WriteTraceNamed with extra caller spans stitched
// into the file (see TraceSpan). When extra is non-empty the rank rows get
// a process_name of their own so the two processes read apart in the
// viewer.
func (r *Result) WriteTraceStitched(w io.Writer, tagName func(int) string, extra []TraceSpan) error {
	if r.Trace == nil {
		return fmt.Errorf("runtime: run was not traced (set Options.Trace)")
	}
	name := func(e *Event) string {
		if e.Kind == EvMark {
			return e.Key
		}
		if e.Kind == EvFault {
			return "fault " + e.Key
		}
		if tagName != nil {
			if n := tagName(e.Tag); n != "" {
				return e.Kind.String() + " " + n
			}
		}
		if e.Tag != 0 {
			return fmt.Sprintf("%s tag%d", e.Kind, e.Tag)
		}
		return e.Kind.String()
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	appendSpans(&out, extra)
	if len(extra) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "ranks"},
		})
	}
	for rank, evs := range r.Trace.Ranks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		for i := range evs {
			e := &evs[i]
			ce := chromeEvent{
				Name: name(e),
				Cat:  e.Cat.String(),
				Ts:   e.Start * 1e6, // microseconds
				Pid:  0,
				Tid:  rank,
			}
			if e.Kind == EvMark {
				ce.Ph, ce.Scope = "i", "t"
			} else {
				dur := e.Dur * 1e6
				ce.Ph, ce.Dur = "X", &dur
				args := map[string]any{"kind": e.Kind.String(), "tag": e.Tag}
				if e.Peer >= 0 {
					args["peer"] = e.Peer
				}
				if e.Bytes > 0 {
					args["bytes"] = e.Bytes
				}
				if e.MsgID != 0 {
					args["msg"] = e.MsgID
					if e.Kind == EvRecv {
						args["slack_us"] = (e.Start - e.Arrive) * 1e6
					}
				}
				ce.Args = args
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return r.Trace.droppedError()
}
