package runtime

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeChrome unmarshals a Chrome trace export into generic events.
func decodeChrome(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	return out.TraceEvents
}

// TestWriteTraceStitched pins the stitched export: caller spans land on
// their own pid with process/thread metadata, rank events keep pid 0, and
// the plain WriteTraceNamed output is unchanged (no stray metadata) when no
// extra spans ride along.
func TestWriteTraceStitched(t *testing.T) {
	res := tracedPingPong(t, 0)
	extra := []TraceSpan{
		{Name: "queue-wait", Pid: 1, Tid: 0, ProcessName: "solve-service", ThreadName: "request r-1", StartUs: 0, DurUs: 12},
		{Name: "solve", Pid: 1, Tid: 0, StartUs: 12, DurUs: 40, Args: map[string]any{"batch_width": 3}},
	}
	var buf bytes.Buffer
	if err := res.WriteTraceStitched(&buf, nil, extra); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())

	var sawProcMeta, sawThreadMeta, sawSpan, sawRanksMeta, sawRankEvent bool
	for _, e := range evs {
		name, _ := e["name"].(string)
		pid := int(e["pid"].(float64))
		switch {
		case name == "process_name" && pid == 1:
			sawProcMeta = true
		case name == "thread_name" && pid == 1:
			sawThreadMeta = true
		case name == "process_name" && pid == 0:
			sawRanksMeta = true
		case name == "solve" && pid == 1:
			sawSpan = true
			if e["cat"] != "service" {
				t.Fatalf("service span category = %v, want service", e["cat"])
			}
		case pid == 0 && e["ph"] == "X":
			sawRankEvent = true
		}
	}
	for flag, what := range map[*bool]string{
		&sawProcMeta: "service process_name", &sawThreadMeta: "service thread_name",
		&sawSpan: "service span", &sawRanksMeta: "ranks process_name", &sawRankEvent: "rank event",
	} {
		if !*flag {
			t.Fatalf("stitched trace missing %s", what)
		}
	}

	// Nil extra must not grow the file with metadata the old format lacked.
	var plain bytes.Buffer
	if err := res.WriteTraceNamed(&plain, nil); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeChrome(t, plain.Bytes()) {
		if e["name"] == "process_name" {
			t.Fatal("plain export gained a process_name record")
		}
	}
}

// TestWriteTraceSpansOnly covers the no-runtime-trace path: a file of
// service spans alone must still be a valid Chrome trace.
func TestWriteTraceSpansOnly(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTraceSpans(&buf, []TraceSpan{
		{Name: "queue-wait", Pid: 1, ProcessName: "solve-service", StartUs: 0, DurUs: 5},
		{Name: "encode", Pid: 1, StartUs: 5, DurUs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())
	if len(evs) != 3 { // process_name + two spans
		t.Fatalf("got %d events, want 3", len(evs))
	}
}
