// Package symbolic computes the symbolic factorization of a structurally
// symmetric permuted matrix: the elimination tree, the fill pattern of the
// L factor, and the supernode partition the solvers operate on.
//
// The supernode partition follows the supernodal convention of the paper
// (§2.1): fundamental supernodes — runs of columns with nested patterns —
// optionally split at nested-dissection node boundaries (a supernode must
// never span two elimination-tree nodes, or the 3D grid mapping would tear
// it apart) and capped at a maximum width to expose block parallelism.
package symbolic

import (
	"fmt"
	"sort"

	"sptrsv/internal/sparse"
)

// Structure is the result of symbolic analysis.
type Structure struct {
	N      int
	Parent []int // column elimination tree; -1 at roots

	// Fill pattern of L in column form. Column j's rows are
	// RowInd[ColPtr[j]:ColPtr[j+1]], ascending, starting with j itself.
	ColPtr []int
	RowInd []int

	// Supernode partition.
	SnCount int
	ColToSn []int // length N
	SnBegin []int // length SnCount+1; supernode K holds cols [SnBegin[K], SnBegin[K+1])
}

// FillNNZ returns nnz(L) including the diagonal; by pattern symmetry
// nnz(LU) = 2*FillNNZ() - N.
func (s *Structure) FillNNZ() int { return len(s.RowInd) }

// SnCols returns the number of columns in supernode K.
func (s *Structure) SnCols(k int) int { return s.SnBegin[k+1] - s.SnBegin[k] }

// Options controls the supernode partition.
type Options struct {
	MaxSupernode int   // cap on supernode width; ≤0 means 48
	Boundaries   []int // column indices that must start a new supernode
}

// Analyze computes the elimination tree, fill pattern, and supernodes of
// the structurally symmetric matrix a (already permuted).
func Analyze(a *sparse.CSR, opt Options) (*Structure, error) {
	n := a.N
	maxSn := opt.MaxSupernode
	if maxSn <= 0 {
		maxSn = 48
	}
	s := &Structure{N: n, Parent: make([]int, n)}

	// Lower adjacency: for column c, original rows r > c.
	lowerPtr := make([]int, n+1)
	for r := 0; r < n; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			if c < r {
				lowerPtr[c+1]++
			}
		}
	}
	for c := 0; c < n; c++ {
		lowerPtr[c+1] += lowerPtr[c]
	}
	lowerInd := make([]int, lowerPtr[n])
	next := make([]int, n)
	copy(next, lowerPtr[:n])
	for r := 0; r < n; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			if c < r {
				lowerInd[next[c]] = r
				next[c]++
			}
		}
	}

	// Symbolic elimination: pattern(j) = {j} ∪ lowerAdj(j) ∪
	// ∪_{children c} (pattern(c) \ {c}); parent(j) = min pattern(j) > j.
	patterns := make([][]int, n)
	children := make([][]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var pat []int
		mark[j] = j
		for i := lowerPtr[j]; i < lowerPtr[j+1]; i++ {
			r := lowerInd[i]
			if mark[r] != j {
				mark[r] = j
				pat = append(pat, r)
			}
		}
		for _, c := range children[j] {
			for _, r := range patterns[c] {
				if r > j && mark[r] != j {
					mark[r] = j
					pat = append(pat, r)
				}
			}
			patterns[c] = patterns[c][:0] // children are merged exactly once
		}
		sort.Ints(pat)
		patterns[j] = pat
		if len(pat) > 0 {
			s.Parent[j] = pat[0]
			children[pat[0]] = append(children[pat[0]], j)
		} else {
			s.Parent[j] = -1
		}
	}

	// The merge above truncated children patterns; recompute storage by a
	// second pass would be wasteful, so instead retain full rows: redo with
	// retained patterns when needed. Simpler: rebuild patterns without
	// truncation below.
	return rebuild(a, s, lowerPtr, lowerInd, maxSn, opt.Boundaries)
}

// rebuild performs the symbolic elimination again, keeping every column's
// full pattern, and assembles the CSC arrays plus supernodes. Splitting the
// two passes keeps peak memory lower: the first pass only needed parents.
func rebuild(a *sparse.CSR, s *Structure, lowerPtr, lowerInd []int, maxSn int, boundaries []int) (*Structure, error) {
	n := s.N
	children := make([][]int, n)
	for j := 0; j < n; j++ {
		if p := s.Parent[j]; p >= 0 {
			children[p] = append(children[p], j)
		}
	}
	patterns := make([][]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	nnz := 0
	for j := 0; j < n; j++ {
		var pat []int
		mark[j] = j
		for i := lowerPtr[j]; i < lowerPtr[j+1]; i++ {
			r := lowerInd[i]
			if mark[r] != j {
				mark[r] = j
				pat = append(pat, r)
			}
		}
		for _, c := range children[j] {
			for _, r := range patterns[c] {
				if r > j && mark[r] != j {
					mark[r] = j
					pat = append(pat, r)
				}
			}
		}
		sort.Ints(pat)
		patterns[j] = pat
		nnz += len(pat) + 1
	}

	s.ColPtr = make([]int, n+1)
	s.RowInd = make([]int, 0, nnz)
	for j := 0; j < n; j++ {
		s.ColPtr[j] = len(s.RowInd)
		s.RowInd = append(s.RowInd, j)
		s.RowInd = append(s.RowInd, patterns[j]...)
	}
	s.ColPtr[n] = len(s.RowInd)

	if err := detectSupernodes(s, maxSn, boundaries); err != nil {
		return nil, err
	}
	return s, nil
}

// detectSupernodes partitions columns into fundamental supernodes split at
// boundaries and capped at maxSn columns.
func detectSupernodes(s *Structure, maxSn int, boundaries []int) error {
	n := s.N
	isBoundary := make([]bool, n+1)
	for _, b := range boundaries {
		if b < 0 || b > n {
			return fmt.Errorf("symbolic: boundary %d out of range", b)
		}
		isBoundary[b] = true
	}
	s.ColToSn = make([]int, n)
	s.SnBegin = []int{0}
	colLen := func(j int) int { return s.ColPtr[j+1] - s.ColPtr[j] }
	size := 0
	for j := 0; j < n; j++ {
		newSn := j == 0
		if !newSn {
			fundamental := s.Parent[j-1] == j && colLen(j-1) == colLen(j)+1
			if !fundamental || size >= maxSn || isBoundary[j] {
				newSn = true
			}
		}
		if newSn && j > 0 {
			s.SnBegin = append(s.SnBegin, j)
			size = 0
		}
		s.ColToSn[j] = len(s.SnBegin) - 1
		size++
	}
	s.SnBegin = append(s.SnBegin, n)
	s.SnCount = len(s.SnBegin) - 1
	return nil
}

// CheckStructure verifies the fill-pattern invariants the factorization
// relies on; tests call it.
func (s *Structure) CheckStructure() error {
	n := s.N
	for j := 0; j < n; j++ {
		rows := s.RowInd[s.ColPtr[j]:s.ColPtr[j+1]]
		if len(rows) == 0 || rows[0] != j {
			return fmt.Errorf("symbolic: column %d does not start with diagonal", j)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				return fmt.Errorf("symbolic: column %d rows not ascending", j)
			}
		}
		if len(rows) > 1 && rows[1] != s.Parent[j] {
			return fmt.Errorf("symbolic: column %d parent %d != first off-diag %d", j, s.Parent[j], rows[1])
		}
		if len(rows) == 1 && s.Parent[j] != -1 {
			return fmt.Errorf("symbolic: column %d should be a root", j)
		}
	}
	// Supernode nesting: within a supernode, pattern(j+1) = pattern(j)\{j}.
	for k := 0; k < s.SnCount; k++ {
		for j := s.SnBegin[k]; j < s.SnBegin[k+1]-1; j++ {
			a := s.RowInd[s.ColPtr[j]+1 : s.ColPtr[j+1]]
			b := s.RowInd[s.ColPtr[j+1]:s.ColPtr[j+2]]
			if len(a) != len(b) {
				return fmt.Errorf("symbolic: supernode %d columns %d,%d not nested", k, j, j+1)
			}
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("symbolic: supernode %d columns %d,%d pattern mismatch", k, j, j+1)
				}
			}
		}
	}
	return nil
}
