package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/gen"
	"sptrsv/internal/order"
	"sptrsv/internal/sparse"
)

// naiveFill computes the filled lower pattern by dense Gaussian elimination
// on the pattern — the ground truth for small matrices.
func naiveFill(a *sparse.CSR) [][]bool {
	n := a.N
	p := make([][]bool, n)
	for i := range p {
		p[i] = make([]bool, n)
		cols, _ := a.Row(i)
		for _, c := range cols {
			p[i][c] = true
		}
		p[i][i] = true
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if p[i][k] {
				for j := k + 1; j < n; j++ {
					if p[k][j] {
						p[i][j] = true
					}
				}
			}
		}
	}
	return p
}

func analyze(t *testing.T, a *sparse.CSR, opt Options) *Structure {
	t.Helper()
	s, err := Analyze(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFillMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := gen.RandomDD(rng, n, 0.15)
		s, err := Analyze(a, Options{})
		if err != nil {
			return false
		}
		truth := naiveFill(a)
		for j := 0; j < n; j++ {
			rows := s.RowInd[s.ColPtr[j]:s.ColPtr[j+1]]
			have := map[int]bool{}
			for _, r := range rows {
				have[r] = true
			}
			for r := j; r < n; r++ {
				if truth[r][j] != have[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParentMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := gen.RandomDD(rng, 50, 0.1)
	s := analyze(t, a, Options{})
	truth := naiveFill(a)
	for j := 0; j < a.N; j++ {
		want := -1
		for r := j + 1; r < a.N; r++ {
			if truth[r][j] {
				want = r
				break
			}
		}
		if s.Parent[j] != want {
			t.Fatalf("parent[%d] = %d, want %d", j, s.Parent[j], want)
		}
	}
}

func TestSupernodesCoverColumns(t *testing.T) {
	a := gen.S2D9pt(20, 20, 1)
	s := analyze(t, a, Options{MaxSupernode: 8})
	if s.SnBegin[0] != 0 || s.SnBegin[s.SnCount] != a.N {
		t.Fatal("supernodes do not tile the columns")
	}
	for k := 0; k < s.SnCount; k++ {
		if s.SnCols(k) <= 0 || s.SnCols(k) > 8 {
			t.Fatalf("supernode %d has width %d", k, s.SnCols(k))
		}
		for j := s.SnBegin[k]; j < s.SnBegin[k+1]; j++ {
			if s.ColToSn[j] != k {
				t.Fatalf("ColToSn[%d] = %d, want %d", j, s.ColToSn[j], k)
			}
		}
	}
}

func TestBoundariesRespected(t *testing.T) {
	a := gen.S2D9pt(16, 16, 2)
	tr := order.NestedDissection(a, 2)
	ap := a.Permute(tr.Perm)
	var bounds []int
	for _, nd := range tr.Nodes {
		bounds = append(bounds, nd.Begin, nd.End, nd.SubBegin)
	}
	s := analyze(t, ap, Options{Boundaries: bounds})
	for _, b := range bounds {
		if b == 0 || b == a.N {
			continue
		}
		if s.ColToSn[b] == s.ColToSn[b-1] {
			t.Fatalf("supernode spans boundary at column %d", b)
		}
	}
}

func TestDenseBlockBecomesWideSupernode(t *testing.T) {
	// An arrow-free dense trailing block should produce a supernode as wide
	// as the cap allows.
	b := sparse.NewBuilder(30)
	for i := 0; i < 30; i++ {
		b.Add(i, i, 10)
	}
	for i := 20; i < 30; i++ {
		for j := 20; j < 30; j++ {
			if i != j {
				b.Add(i, j, 0.1)
			}
		}
	}
	s := analyze(t, b.ToCSR(), Options{MaxSupernode: 48})
	last := s.SnCount - 1
	if s.SnCols(last) != 10 {
		t.Fatalf("trailing dense supernode width %d, want 10", s.SnCols(last))
	}
}

func TestFillNNZSymmetricIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := gen.RandomDD(rng, 60, 0.1)
	s := analyze(t, a, Options{})
	if s.FillNNZ() < a.NNZ()/2 {
		t.Fatalf("fill %d smaller than half of nnz(A) %d", s.FillNNZ(), a.NNZ())
	}
}

func TestEtreeParentAboveChild(t *testing.T) {
	a := gen.S2D9pt(12, 12, 3)
	s := analyze(t, a, Options{})
	for j := 0; j < a.N; j++ {
		if s.Parent[j] != -1 && s.Parent[j] <= j {
			t.Fatalf("parent[%d] = %d not above child", j, s.Parent[j])
		}
	}
}
