package sched

import (
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
	"sptrsv/internal/factor"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/order"
	"sptrsv/internal/snode"
	"sptrsv/internal/symbolic"
)

func buildPlan(t *testing.T, l grid.Layout, kind ctree.Kind) *dist.Plan {
	t.Helper()
	a := gen.S2D9pt(20, 20, 41)
	tr := order.NestedDissection(a, 3)
	ap := a.Permute(tr.Perm)
	s, err := symbolic.Analyze(ap, symbolic.Options{MaxSupernode: 8, Boundaries: grid.Boundaries(tr)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.Factorize(ap, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snode.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dist.New(m, tr, l, kind)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestScheduleMatchesPlan checks every dense template against the plan
// structure it compresses: slot numbering, counter templates, broadcast
// fan-outs, reduction parents, and GPU row counts must agree entry by
// entry with the map/tree forms the handler path reads.
func TestScheduleMatchesPlan(t *testing.T) {
	for _, tc := range []struct {
		l    grid.Layout
		kind ctree.Kind
	}{
		{grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary},
		{grid.Layout{Px: 2, Py: 3, Pz: 1}, ctree.Flat},
		{grid.Layout{Px: 1, Py: 1, Pz: 8}, ctree.Binary},
	} {
		p := buildPlan(t, tc.l, tc.kind)
		s, err := Of(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Grids) != len(p.Grids) {
			t.Fatalf("%+v: %d grids scheduled, plan has %d", tc.l, len(s.Grids), len(p.Grids))
		}
		for z, g := range s.Grids {
			gp := p.Grids[z]
			for slot, k := range gp.Sns {
				if int(g.SlotOf[k]) != slot {
					t.Fatalf("grid %d sn %d: slot %d, want %d", z, k, g.SlotOf[k], slot)
				}
				if int(g.Width[slot]) != p.M.SnWidth(k) {
					t.Fatalf("grid %d sn %d: width %d, want %d", z, k, g.Width[slot], p.M.SnWidth(k))
				}
				if int(g.Fmod[slot]) != len(gp.RowSns[k]) || int(g.Bmod[slot]) != len(gp.URowSns[k]) {
					t.Fatalf("grid %d sn %d: fmod/bmod template mismatch", z, k)
				}
			}
			for r2d, r := range g.Ranks {
				rd := gp.Ranks[r2d]
				for slot, k := range gp.Sns {
					if int(r.PendingL[slot]) != rd.PendingL[k] || int(r.PendingU[slot]) != rd.PendingU[k] {
						t.Fatalf("grid %d rank %d sn %d: pending template mismatch", z, r2d, k)
					}
					wantKids := gp.LBcast[k].Children(r2d)
					if !gp.LBcast[k].Contains(r2d) {
						wantKids = nil
					}
					if len(r.LBcastKids[slot]) != len(wantKids) {
						t.Fatalf("grid %d rank %d sn %d: %d L kids, want %d",
							z, r2d, k, len(r.LBcastKids[slot]), len(wantKids))
					}
					for i, c := range wantKids {
						if int(r.LBcastKids[slot][i]) != c {
							t.Fatalf("grid %d rank %d sn %d: L kid %d is %d, want %d",
								z, r2d, k, i, r.LBcastKids[slot][i], c)
						}
					}
					if r.MemberL[slot] != gp.LReduce[k].Contains(r2d) {
						t.Fatalf("grid %d rank %d sn %d: L membership mismatch", z, r2d, k)
					}
					if r.MemberL[slot] {
						if root := gp.LReduce[k].Root() == r2d; root != r.LRedRoot[slot] {
							t.Fatalf("grid %d rank %d sn %d: L root mismatch", z, r2d, k)
						}
						if !r.LRedRoot[slot] && int(r.LRedParent[slot]) != gp.LReduce[k].Parent(r2d) {
							t.Fatalf("grid %d rank %d sn %d: L parent mismatch", z, r2d, k)
						}
					}
				}
				// Every diagonal slot must be layered into some level.
				for _, ds := range r.DiagSlot {
					if r.LLevelOf[ds] < 0 || r.ULevelOf[ds] < 0 {
						t.Fatalf("grid %d rank %d: diag slot %d unlayered", z, r2d, ds)
					}
					if int(r.LLevelOf[ds]) >= r.LLevels || int(r.ULevelOf[ds]) >= r.ULevels {
						t.Fatalf("grid %d rank %d: diag slot %d level out of range", z, r2d, ds)
					}
				}
				if len(rd.MyDiagSns) != len(r.DiagSlot) {
					t.Fatalf("grid %d rank %d: %d diag slots, plan has %d",
						z, r2d, len(r.DiagSlot), len(rd.MyDiagSns))
				}
				if r.ArenaPerRHS < 0 || r.Panels < 0 {
					t.Fatalf("grid %d rank %d: negative arena bound", z, r2d)
				}
			}
		}
	}
}

// TestLevelMonotonicity: along any intra-rank L dependency chain the
// levels must strictly increase — a diagonal solve that consumes another
// local diagonal's block products sits at a deeper level.
func TestLevelMonotonicity(t *testing.T) {
	p := buildPlan(t, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary)
	s, err := Of(p)
	if err != nil {
		t.Fatal(err)
	}
	for z, g := range s.Grids {
		gp := p.Grids[z]
		for r2d, r := range g.Ranks {
			rd := gp.Ranks[r2d]
			for _, k := range rd.MyDiagSns {
				ks := g.SlotOf[k]
				for _, blk := range rd.ColL[k] {
					ts := g.SlotOf[blk.I]
					if ts < 0 || p.DiagRank2D(blk.I) != r2d {
						continue
					}
					if r.LLevelOf[ts] <= r.LLevelOf[ks] {
						t.Fatalf("grid %d rank %d: diag %d (level %d) feeds diag %d (level %d)",
							z, r2d, k, r.LLevelOf[ks], blk.I, r.LLevelOf[ts])
					}
				}
			}
		}
	}
}

// TestSendDstsMatchTrees checks each rank's per-phase destination sets
// against the plan's trees directly: every broadcast child and reduction
// parent across supernodes appears exactly once, ascending, and nothing
// else does.
func TestSendDstsMatchTrees(t *testing.T) {
	for _, tc := range []struct {
		l    grid.Layout
		kind ctree.Kind
	}{
		{grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary},
		{grid.Layout{Px: 3, Py: 2, Pz: 1}, ctree.Flat},
	} {
		p := buildPlan(t, tc.l, tc.kind)
		s, err := Of(p)
		if err != nil {
			t.Fatal(err)
		}
		for z, g := range s.Grids {
			gp := p.Grids[z]
			for r2d, r := range g.Ranks {
				wantL := map[int32]bool{}
				wantU := map[int32]bool{}
				for _, k := range gp.Sns {
					if lb := gp.LBcast[k]; lb.Contains(r2d) {
						for _, c := range lb.Children(r2d) {
							wantL[int32(c)] = true
						}
					}
					if ub := gp.UBcast[k]; ub.Contains(r2d) {
						for _, c := range ub.Children(r2d) {
							wantU[int32(c)] = true
						}
					}
					if lr := gp.LReduce[k]; lr.Contains(r2d) && lr.Root() != r2d {
						wantL[int32(lr.Parent(r2d))] = true
					}
					if ur := gp.UReduce[k]; ur.Contains(r2d) && ur.Root() != r2d {
						wantU[int32(ur.Parent(r2d))] = true
					}
				}
				check := func(phase string, got []int32, want map[int32]bool) {
					if len(got) != len(want) {
						t.Fatalf("%+v grid %d rank %d %s: %d destinations, want %d", tc.l, z, r2d, phase, len(got), len(want))
					}
					for i, d := range got {
						if !want[d] {
							t.Fatalf("%+v grid %d rank %d %s: destination %d not in the trees", tc.l, z, r2d, phase, d)
						}
						if i > 0 && got[i-1] >= d {
							t.Fatalf("%+v grid %d rank %d %s: destinations not strictly ascending: %v", tc.l, z, r2d, phase, got)
						}
					}
				}
				check("L", r.LSendDsts, wantL)
				check("U", r.USendDsts, wantU)
			}
		}
	}
}
