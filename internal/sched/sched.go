// Package sched derives a level/DAG execution schedule from a dist.Plan:
// for every rank, the dependency DAG over its supernode tasks (diag_y,
// diag_x, l_block, u_block) for both the L and the U sweep, topologically
// layered into levels, together with the dense per-rank structures the
// scheduled execution path in internal/trsv runs on — slot numbering,
// dependency-counter templates, precomputed broadcast fan-outs and
// reduction parents, and the arena capacity that makes the per-task hot
// path allocation-free.
//
// The schedule is derived once per plan and cached on it (Plan.
// CachedSchedule, the same sync.Once pattern as BuildBaseline), so
// concurrent solves share one immutable schedule. Nothing here depends on
// the right-hand-side count: panel capacities are recorded per rhs column
// and scaled by the executor.
//
// The level layering is the classic forward/backward level-set
// construction over the intra-rank dependency edges:
//
//	diag_y(K)      ← l_block(J→K) for every local block feeding K
//	l_block(K→I)   ← diag_y(K) when this rank solves the diagonal of K
//
// (and the mirror for the U sweep). Cross-rank dependencies — broadcast
// arrivals and reduction messages — enter as level-0 sources; the
// executor's dynamic wavefront refines this static layering at run time
// without ever reordering tasks, which is what keeps the scheduled path
// bit-identical to the handler path.
package sched

import (
	"sync"

	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
)

// Grid is the per-grid part of the schedule: the slot numbering shared by
// every rank of the grid, plus dense per-slot structural templates.
type Grid struct {
	// SlotOf maps a global supernode to its slot — its index in the
	// grid's ascending on-path supernode list — or -1 when off-path.
	// Slots ascend with global supernode order, so an ascending slot scan
	// visits supernodes in exactly the order sortedKeys visits map keys.
	SlotOf []int32
	// Sns is the inverse mapping: slot → global supernode, ascending.
	Sns []int
	// Width is the supernode width per slot.
	Width []int32
	// Fmod and Bmod are the GPU execution model's dependency-counter
	// templates per slot: the number of on-path supernodes feeding slot K
	// in the forward (L) and backward (U) sweep.
	Fmod, Bmod []int32

	// LDepth and UDepth are the grid-global dependency depths of the two
	// sweeps: the length of the longest supernode chain over the grid's
	// on-path structure, counting diagonal solves. Unlike the per-rank
	// LLevels/ULevels (which layer only intra-rank edges), these span
	// cross-rank dependencies too, so they are the level budget elastic
	// mode's staleness deadlines are measured against.
	LDepth, UDepth int

	// Ranks holds each 2D-local rank's schedule, indexed by row·Py+col.
	Ranks []*Rank
}

// StaleSet is a dense per-slot bitmap recording which supernodes consumed
// stale (forced, possibly zero) inputs during one elastic sweep. The
// elastic executor marks a slot when it closes the slot's dependencies
// before they were all satisfied; the refinement driver only needs the
// count, but the set keeps the marking idempotent per supernode.
type StaleSet struct {
	bits  []uint64
	count int
}

// NewStaleSet returns an empty set over n slots.
func NewStaleSet(n int) *StaleSet {
	return &StaleSet{bits: make([]uint64, (n+63)/64)}
}

// Set marks slot, reporting whether it was newly marked.
func (s *StaleSet) Set(slot int) bool {
	w, b := slot>>6, uint64(1)<<uint(slot&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.count++
	return true
}

// Has reports whether slot is marked.
func (s *StaleSet) Has(slot int) bool {
	return s.bits[slot>>6]&(uint64(1)<<uint(slot&63)) != 0
}

// Count returns the number of marked slots.
func (s *StaleSet) Count() int { return s.count }

// Reset clears the set for reuse.
func (s *StaleSet) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
}

// Rank is one rank's precomputed schedule.
type Rank struct {
	// PendingL and PendingU are the dense dependency-counter templates
	// per slot (the map-backed handler path clones RankData.PendingL /
	// PendingU instead). Zero entries for slots this rank never reduces,
	// matching the zero a map lookup of an absent key yields.
	PendingL, PendingU []int32
	// MemberL and MemberU report per slot whether this rank participates
	// in the L / U reduction of the slot — the supernodes whose partial
	// sums this rank accumulates, which is what sizes the arena.
	MemberL, MemberU []bool
	// DiagSlot lists the slots whose diagonal this rank solves,
	// ascending (the slot form of RankData.MyDiagSns).
	DiagSlot []int32

	// LBcastKids and UBcastKids are the precomputed 2D-rank fan-outs of
	// this rank in the per-supernode broadcast trees (Tree.Children
	// allocates on every call; the schedule pays that once per plan).
	// Empty for slots whose tree this rank is not part of.
	LBcastKids, UBcastKids [][]int32
	// LRedParent and URedParent are this rank's parents in the reduction
	// trees, -1 at the root or for non-members; LRedRoot / URedRoot mark
	// the root case.
	LRedParent, URedParent []int32
	LRedRoot, URedRoot     []bool
	// LSendDsts and USendDsts are the 2D-local ranks this rank ever sends
	// to during the L / U phase — the union over slots of broadcast
	// children and the reduction parent, ascending and deduplicated. They
	// bound the per-destination aggregation buffers (CommAggregated): a
	// rank coalescing its phase traffic needs at most one open buffer per
	// listed destination.
	LSendDsts, USendDsts []int32

	// LLevelOf and ULevelOf layer the diagonal tasks: the topological
	// level of diag_y(slot) / diag_x(slot) on this rank, -1 for slots
	// whose diagonal this rank does not solve. Block tasks sit between
	// the diagonal levels and are counted in the width statistics only.
	LLevelOf, ULevelOf []int32
	// LLevels and ULevels count the levels of each sweep; LWidthMax and
	// UWidthMax are the widest level in tasks — the intra-rank
	// parallelism a work-stealing executor can exploit.
	LLevels, ULevels     int
	LWidthMax, UWidthMax int
	// TasksL and TasksU count this rank's tasks per sweep (diagonal
	// solves plus block applies).
	TasksL, TasksU int

	// ArenaPerRHS is the panel storage the scheduled executor needs per
	// right-hand-side column for one solve (float64 count), and Panels
	// the matching panel-header count. Both are safe overestimates; the
	// executor falls back to the heap if a solve ever outgrows them.
	ArenaPerRHS int
	Panels      int

	// Pool is scratch storage owned by the executor (internal/trsv): a
	// free list of per-solve dense states for this rank. It lives on the
	// schedule so its lifetime is tied to the plan's.
	Pool sync.Pool
}

// Schedule is the full level/DAG schedule of one plan.
type Schedule struct {
	Grids []*Grid
}

// Stats summarizes the schedule for reports: totals over ranks.
type Stats struct {
	// Tasks is the total task count over all ranks and both sweeps.
	Tasks int
	// MaxLevels is the deepest per-rank level count over both sweeps —
	// the longest intra-rank dependency chain.
	MaxLevels int
	// MaxWidth is the widest per-rank level over both sweeps.
	MaxWidth int
}

// Stats computes the schedule's summary.
func (s *Schedule) Stats() Stats {
	var st Stats
	for _, g := range s.Grids {
		for _, r := range g.Ranks {
			st.Tasks += r.TasksL + r.TasksU
			for _, lv := range []int{r.LLevels, r.ULevels} {
				if lv > st.MaxLevels {
					st.MaxLevels = lv
				}
			}
			for _, w := range []int{r.LWidthMax, r.UWidthMax} {
				if w > st.MaxWidth {
					st.MaxWidth = w
				}
			}
		}
	}
	return st
}

// Of returns the plan's schedule, deriving it on first use and caching it
// on the plan.
func Of(p *dist.Plan) (*Schedule, error) {
	v, err := p.CachedSchedule(func(p *dist.Plan) (any, error) { return build(p) })
	if err != nil {
		return nil, err
	}
	return v.(*Schedule), nil
}

func build(p *dist.Plan) (*Schedule, error) {
	s := &Schedule{Grids: make([]*Grid, len(p.Grids))}
	for z, gp := range p.Grids {
		s.Grids[z] = buildGrid(p, gp)
	}
	return s, nil
}

func buildGrid(p *dist.Plan, gp *dist.GridPlan) *Grid {
	m := p.M
	n := len(gp.Sns)
	g := &Grid{
		SlotOf: make([]int32, m.SnCount),
		Sns:    gp.Sns,
		Width:  make([]int32, n),
		Fmod:   make([]int32, n),
		Bmod:   make([]int32, n),
	}
	for i := range g.SlotOf {
		g.SlotOf[i] = -1
	}
	for s, k := range gp.Sns {
		g.SlotOf[k] = int32(s)
		g.Width[s] = int32(m.SnWidth(k))
		g.Fmod[s] = int32(len(gp.RowSns[k]))
		g.Bmod[s] = int32(len(gp.URowSns[k]))
	}
	g.LDepth, g.UDepth = gridDepths(gp, g)
	g.Ranks = make([]*Rank, len(gp.Ranks))
	for r2d := range gp.Ranks {
		g.Ranks[r2d] = buildRank(p, gp, g, r2d)
	}
	return g
}

func buildRank(p *dist.Plan, gp *dist.GridPlan, g *Grid, r2d int) *Rank {
	n := len(gp.Sns)
	rd := gp.Ranks[r2d]
	r := &Rank{
		PendingL:   make([]int32, n),
		PendingU:   make([]int32, n),
		MemberL:    make([]bool, n),
		MemberU:    make([]bool, n),
		LBcastKids: make([][]int32, n),
		UBcastKids: make([][]int32, n),
		LRedParent: make([]int32, n),
		URedParent: make([]int32, n),
		LRedRoot:   make([]bool, n),
		URedRoot:   make([]bool, n),
		LLevelOf:   make([]int32, n),
		ULevelOf:   make([]int32, n),
	}
	for s := range r.LRedParent {
		r.LRedParent[s], r.URedParent[s] = -1, -1
		r.LLevelOf[s], r.ULevelOf[s] = -1, -1
	}
	for _, k := range rd.MyDiagSns {
		r.DiagSlot = append(r.DiagSlot, g.SlotOf[k])
	}
	kids := func(t *ctree.Tree) []int32 {
		if !t.Contains(r2d) {
			return nil
		}
		c := t.Children(r2d)
		if len(c) == 0 {
			return nil
		}
		out := make([]int32, len(c))
		for i, v := range c {
			out[i] = int32(v)
		}
		return out
	}
	for s, k := range gp.Sns {
		r.PendingL[s] = int32(rd.PendingL[k])
		r.PendingU[s] = int32(rd.PendingU[k])
		r.MemberL[s] = gp.LReduce[k].Contains(r2d)
		r.MemberU[s] = gp.UReduce[k].Contains(r2d)
		r.LBcastKids[s] = kids(gp.LBcast[k])
		r.UBcastKids[s] = kids(gp.UBcast[k])
		if r.MemberL[s] {
			if gp.LReduce[k].Root() == r2d {
				r.LRedRoot[s] = true
			} else {
				r.LRedParent[s] = int32(gp.LReduce[k].Parent(r2d))
			}
		}
		if r.MemberU[s] {
			if gp.UReduce[k].Root() == r2d {
				r.URedRoot[s] = true
			} else {
				r.URedParent[s] = int32(gp.UReduce[k].Parent(r2d))
			}
		}
	}

	r.LSendDsts = sendDsts(len(gp.Ranks), r.LBcastKids, r.LRedParent)
	r.USendDsts = sendDsts(len(gp.Ranks), r.UBcastKids, r.URedParent)

	levelSweep(p, gp, g, r2d, r, false)
	levelSweep(p, gp, g, r2d, r, true)
	r.ArenaPerRHS, r.Panels = arenaSize(p, gp, g, r)
	return r
}

// gridDepths computes the grid-global longest dependency chains of the L
// and U sweeps in supernode steps. Supernode order is a topological order
// of both structures (RowSns[K] lists only J < K, URowSns[K] only J > K),
// so a single ascending (resp. descending) pass suffices.
func gridDepths(gp *dist.GridPlan, g *Grid) (lDepth, uDepth int) {
	n := len(gp.Sns)
	if n == 0 {
		return 0, 0
	}
	lev := make([]int32, n)
	var maxL int32
	for s, k := range gp.Sns {
		for _, j := range gp.RowSns[k] {
			if t := g.SlotOf[j]; t >= 0 && lev[t]+1 > lev[s] {
				lev[s] = lev[t] + 1
			}
		}
		if lev[s] > maxL {
			maxL = lev[s]
		}
	}
	for i := range lev {
		lev[i] = 0
	}
	var maxU int32
	for s := n - 1; s >= 0; s-- {
		k := gp.Sns[s]
		for _, j := range gp.URowSns[k] {
			if t := g.SlotOf[j]; t >= 0 && lev[t]+1 > lev[s] {
				lev[s] = lev[t] + 1
			}
		}
		if lev[s] > maxU {
			maxU = lev[s]
		}
	}
	return int(maxL) + 1, int(maxU) + 1
}

// sendDsts collects the ascending, deduplicated union of every broadcast
// child and reduction parent across slots — one phase's complete
// destination set for a rank.
func sendDsts(nRanks int, bcastKids [][]int32, redParent []int32) []int32 {
	seen := make([]bool, nRanks)
	for _, kids := range bcastKids {
		for _, c := range kids {
			seen[c] = true
		}
	}
	for _, p := range redParent {
		if p >= 0 {
			seen[p] = true
		}
	}
	var out []int32
	for d, s := range seen {
		if s {
			out = append(out, int32(d))
		}
	}
	return out
}

// levelSweep layers one sweep's intra-rank task DAG into levels by a
// single topological pass (ascending supernodes for L, descending for U —
// block dependencies only ever point from lower to higher supernodes in L
// and the reverse in U, so supernode order is a topological order).
func levelSweep(p *dist.Plan, gp *dist.GridPlan, g *Grid, r2d int, r *Rank, uSweep bool) {
	n := len(gp.Sns)
	rd := gp.Ranks[r2d]
	// contrib[s] is 1 + the maximum level of a local block task feeding
	// diag(s) seen so far; 0 while only cross-rank sources feed it.
	contrib := make([]int32, n)
	width := make(map[int32]int, 16) // tasks per level
	tasks, maxLevel := 0, int32(0)
	visit := func(s int, k int) {
		myDiag := p.DiagRank2D(k) == r2d
		var diagLvl int32 = -1
		if myDiag {
			diagLvl = contrib[s]
			tasks++
			width[diagLvl]++
			if diagLvl > maxLevel {
				maxLevel = diagLvl
			}
			if uSweep {
				r.ULevelOf[s] = diagLvl
			} else {
				r.LLevelOf[s] = diagLvl
			}
		}
		// Block tasks of column k on this rank: their level follows the
		// local diagonal solve when there is one, else they are fired by
		// the broadcast arrival (a level-0 source).
		var blkLvl int32
		if myDiag {
			blkLvl = diagLvl + 1
		}
		apply := func(target int) {
			tasks++
			width[blkLvl]++
			if blkLvl > maxLevel {
				maxLevel = blkLvl
			}
			if t := g.SlotOf[target]; t >= 0 && blkLvl+1 > contrib[t] {
				contrib[t] = blkLvl + 1
			}
		}
		if uSweep {
			for _, ref := range rd.ColU[k] {
				apply(ref.I)
			}
		} else {
			for _, blk := range rd.ColL[k] {
				apply(blk.I)
			}
		}
	}
	if uSweep {
		for s := n - 1; s >= 0; s-- {
			visit(s, gp.Sns[s])
		}
	} else {
		for s := 0; s < n; s++ {
			visit(s, gp.Sns[s])
		}
	}
	levels := 0
	if tasks > 0 {
		levels = int(maxLevel) + 1
	}
	wmax := 0
	for _, w := range width {
		if w > wmax {
			wmax = w
		}
	}
	if uSweep {
		r.ULevels, r.UWidthMax, r.TasksU = levels, wmax, tasks
	} else {
		r.LLevels, r.LWidthMax, r.TasksL = levels, wmax, tasks
	}
}

// arenaSize bounds the panel storage one solve needs on this rank: the
// diagonal solutions y/x it produces, the partial sums it accumulates as
// a reduction member, the gathered solution slices of the baseline
// algorithm, and the clones the sparse-allreduce phase sends (one
// replicated set per Z level plus one working set). Returned per rhs
// column; the matching panel-header count comes second.
func arenaSize(p *dist.Plan, gp *dist.GridPlan, g *Grid, r *Rank) (floats, panels int) {
	zLevels := p.Map.L + 1
	for s := range gp.Sns {
		w := int(g.Width[s])
		diag := false
		for _, d := range r.DiagSlot {
			if int(d) == s {
				diag = true
				break
			}
		}
		if diag {
			// y(K), x(K), the baseline's gathered xl(K), and the
			// allreduce clones of y(K).
			floats += w * (3 + zLevels)
			panels += 3 + zLevels
		}
		if r.MemberL[s] {
			floats += w
			panels++
		}
		if r.MemberU[s] {
			floats += w
			panels++
		}
	}
	return floats, panels
}
