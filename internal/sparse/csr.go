package sparse

import "fmt"

// CSR is a square sparse matrix in compressed sparse row format. Column
// indices within each row are strictly increasing.
type CSR struct {
	N      int
	RowPtr []int // length N+1
	ColInd []int // length nnz
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColInd) }

// Row returns the column indices and values of row r as sub-slices; the
// caller must not modify the index slice.
func (m *CSR) Row(r int) ([]int, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColInd[lo:hi], m.Val[lo:hi]
}

// At returns the value at (r, c), or 0 if the entry is not stored.
// It is O(nnz(row)) and intended for tests and small matrices.
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	for i, cc := range cols {
		if cc == c {
			return vals[i]
		}
	}
	return 0
}

// MatVec computes y = A·x.
func (m *CSR) MatVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: MatVec dimension mismatch")
	}
	for r := 0; r < m.N; r++ {
		s := 0.0
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			s += m.Val[i] * x[m.ColInd[i]]
		}
		y[r] = s
	}
}

// MatPanel computes Y = A·X for column-major panels with nrhs columns.
func (m *CSR) MatPanel(x, y *Panel) {
	if x.Rows != m.N || y.Rows != m.N || x.Cols != y.Cols {
		panic("sparse: MatPanel dimension mismatch")
	}
	for j := 0; j < x.Cols; j++ {
		m.MatVec(x.Col(j), y.Col(j))
	}
}

// Transpose returns Aᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	n := m.N
	rowPtr := make([]int, n+1)
	for _, c := range m.ColInd {
		rowPtr[c+1]++
	}
	for r := 0; r < n; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	colInd := make([]int, len(m.ColInd))
	val := make([]float64, len(m.Val))
	next := make([]int, n)
	copy(next, rowPtr[:n])
	for r := 0; r < n; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.ColInd[i]
			p := next[c]
			colInd[p] = r
			val[p] = m.Val[i]
			next[c]++
		}
	}
	return &CSR{N: n, RowPtr: rowPtr, ColInd: colInd, Val: val}
}

// ToCSC converts to compressed sparse column format.
func (m *CSR) ToCSC() *CSC {
	t := m.Transpose()
	return &CSC{N: t.N, ColPtr: t.RowPtr, RowInd: t.ColInd, Val: t.Val}
}

// SymmetrizePattern returns a matrix with the pattern of A + Aᵀ and the
// values of A where A has entries (and 0 in positions only present in Aᵀ).
// The supernodal layer assumes a structurally symmetric matrix, matching the
// paper's assumption; generators that are already symmetric pass through
// with identical pattern.
func (m *CSR) SymmetrizePattern() *CSR {
	t := m.Transpose()
	b := NewBuilder(m.N)
	for r := 0; r < m.N; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			b.Add(r, c, vals[i])
		}
		tcols, _ := t.Row(r)
		for _, c := range tcols {
			b.Add(r, c, 0)
		}
	}
	return b.ToCSR()
}

// Permute returns the symmetric permutation of A in which entry (r, c)
// lands at (perm[r], perm[c]); perm[i] is the new index of original
// row/column i (a scatter permutation).
func (m *CSR) Permute(perm []int) *CSR {
	if len(perm) != m.N {
		panic("sparse: Permute length mismatch")
	}
	b := NewBuilder(m.N)
	for r := 0; r < m.N; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			b.Add(perm[r], perm[c], vals[i])
		}
	}
	return b.ToCSR()
}

// CheckValid verifies structural invariants; tests call it after assembly.
func (m *CSR) CheckValid() error {
	if len(m.RowPtr) != m.N+1 || m.RowPtr[0] != 0 || m.RowPtr[m.N] != len(m.ColInd) {
		return fmt.Errorf("sparse: bad RowPtr")
	}
	for r := 0; r < m.N; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative length", r)
		}
		for i := lo; i < hi; i++ {
			if m.ColInd[i] < 0 || m.ColInd[i] >= m.N {
				return fmt.Errorf("sparse: row %d has out-of-range column %d", r, m.ColInd[i])
			}
			if i > lo && m.ColInd[i] <= m.ColInd[i-1] {
				return fmt.Errorf("sparse: row %d columns not strictly increasing", r)
			}
		}
	}
	return nil
}
