package sparse

import "math"

// Panel is a dense rows×cols matrix stored column-major. It represents
// right-hand sides and solution vectors with one or more columns (the
// paper's nrhs parameter), and the dense supernode blocks reuse the layout.
type Panel struct {
	Rows, Cols int
	Data       []float64 // column-major, len Rows*Cols
}

// NewPanel allocates a zeroed rows×cols panel.
func NewPanel(rows, cols int) *Panel {
	return &Panel{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Col returns column j as a slice aliasing the panel storage.
func (p *Panel) Col(j int) []float64 {
	return p.Data[j*p.Rows : (j+1)*p.Rows]
}

// At returns the element at (i, j).
func (p *Panel) At(i, j int) float64 { return p.Data[j*p.Rows+i] }

// Set stores v at (i, j).
func (p *Panel) Set(i, j int, v float64) { p.Data[j*p.Rows+i] = v }

// Clone returns a deep copy.
func (p *Panel) Clone() *Panel {
	q := NewPanel(p.Rows, p.Cols)
	copy(q.Data, p.Data)
	return q
}

// Zero clears every element.
func (p *Panel) Zero() {
	for i := range p.Data {
		p.Data[i] = 0
	}
}

// AddFrom accumulates q into p elementwise.
func (p *Panel) AddFrom(q *Panel) {
	if p.Rows != q.Rows || p.Cols != q.Cols {
		panic("sparse: AddFrom shape mismatch")
	}
	for i, v := range q.Data {
		p.Data[i] += v
	}
}

// MaxAbsDiff returns max |p - q| over all elements.
func (p *Panel) MaxAbsDiff(q *Panel) float64 {
	if p.Rows != q.Rows || p.Cols != q.Cols {
		panic("sparse: MaxAbsDiff shape mismatch")
	}
	m := 0.0
	for i := range p.Data {
		if d := math.Abs(p.Data[i] - q.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// FindNonFinite scans the panel for the first NaN or Inf element in
// column-major order and returns its position and value. ok is false when
// every element is finite.
func (p *Panel) FindNonFinite() (row, col int, v float64, ok bool) {
	for i, x := range p.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return i % p.Rows, i / p.Rows, x, true
		}
	}
	return 0, 0, 0, false
}

// PermuteRows returns the panel with row i of the result taken from row
// old(i); perm maps original index to permuted index (scatter), matching
// CSR.Permute: result.Row(perm[i]) = p.Row(i).
func (p *Panel) PermuteRows(perm []int) *Panel {
	q := NewPanel(p.Rows, p.Cols)
	p.PermuteRowsInto(perm, q)
	return q
}

// PermuteRowsInto is PermuteRows writing into a caller-provided panel of
// the same shape, so repeated solves can reuse permutation buffers. The
// scatter writes every destination element, so dst need not be zeroed; dst
// must not alias p.
func (p *Panel) PermuteRowsInto(perm []int, dst *Panel) {
	if dst.Rows != p.Rows || dst.Cols != p.Cols {
		panic("sparse: PermuteRowsInto shape mismatch")
	}
	for j := 0; j < p.Cols; j++ {
		src, out := p.Col(j), dst.Col(j)
		for i := 0; i < p.Rows; i++ {
			out[perm[i]] = src[i]
		}
	}
}

// InversePerm returns the inverse permutation of perm.
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// VecNormInf returns the max-norm of v.
func VecNormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// ResidualInto computes the residual r = b − A·x into r (which must match
// b's shape and not alias x or b) and returns ‖r‖∞. Iterative refinement
// uses it: the returned norm decides convergence and r itself becomes the
// next correction's right-hand side. Like ResidualInf, a NaN anywhere makes
// the returned norm NaN so a corrupted solution cannot pass a threshold
// check; r is still fully written.
func ResidualInto(a *CSR, x, b, r *Panel) float64 {
	if r.Rows != b.Rows || r.Cols != b.Cols {
		panic("sparse: ResidualInto shape mismatch")
	}
	a.MatPanel(x, r)
	worst := 0.0
	for i := range r.Data {
		d := b.Data[i] - r.Data[i]
		r.Data[i] = d
		ad := math.Abs(d)
		if math.IsNaN(ad) {
			worst = math.NaN()
		} else if ad > worst {
			worst = ad
		}
	}
	return worst
}

// ResidualInf computes ‖A·x − b‖∞ column-wise and returns the largest value,
// the standard acceptance check in the integration tests. A NaN anywhere in
// the difference makes the result NaN (rather than being silently skipped by
// the max comparison), so corrupted solutions cannot pass a threshold check.
func ResidualInf(a *CSR, x, b *Panel) float64 {
	ax := NewPanel(x.Rows, x.Cols)
	a.MatPanel(x, ax)
	worst := 0.0
	for i := range ax.Data {
		d := math.Abs(ax.Data[i] - b.Data[i])
		if math.IsNaN(d) {
			return math.NaN()
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
