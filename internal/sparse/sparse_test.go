package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(rng *rand.Rand, n int, density float64) *CSR {
	b := NewBuilder(n)
	for r := 0; r < n; r++ {
		b.Add(r, r, float64(n)) // strong diagonal
		for c := 0; c < n; c++ {
			if c != r && rng.Float64() < density {
				b.Add(r, c, rng.NormFloat64())
			}
		}
	}
	return b.ToCSR()
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(1, 2, 1.5)
	b.Add(1, 2, 2.5)
	b.Add(0, 0, 1)
	m := b.ToCSR()
	if got := m.At(1, 2); got != 4.0 {
		t.Fatalf("duplicate sum: got %v, want 4", got)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz: got %d, want 2", m.NNZ())
	}
	if err := m.CheckValid(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range entry")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 30, 0.2)
	tt := m.Transpose().Transpose()
	if m.NNZ() != tt.NNZ() {
		t.Fatalf("nnz changed: %d vs %d", m.NNZ(), tt.NNZ())
	}
	for r := 0; r < m.N; r++ {
		for c := 0; c < m.N; c++ {
			if m.At(r, c) != tt.At(r, c) {
				t.Fatalf("(%d,%d): %v vs %v", r, c, m.At(r, c), tt.At(r, c))
			}
		}
	}
}

func TestTransposeMatVecAdjoint(t *testing.T) {
	// Property: ⟨Ax, y⟩ == ⟨x, Aᵀy⟩.
	rng := rand.New(rand.NewSource(2))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		m := randomCSR(r, n, 0.15)
		mt := m.Transpose()
		x := make([]float64, n)
		y := make([]float64, n)
		ax := make([]float64, n)
		aty := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		m.MatVec(x, ax)
		mt.MatVec(y, aty)
		var lhs, rhs float64
		for i := range x {
			lhs += ax[i] * y[i]
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 25, 0.2)
	back := m.ToCSC().ToCSR()
	for r := 0; r < m.N; r++ {
		for c := 0; c < m.N; c++ {
			if m.At(r, c) != back.At(r, c) {
				t.Fatalf("(%d,%d) mismatch after CSC round trip", r, c)
			}
		}
	}
}

func TestCSCColAccess(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1, 2)
	b.Add(3, 1, 5)
	b.Add(2, 2, 7)
	csc := b.ToCSR().ToCSC()
	rows, vals := csc.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 3 || vals[0] != 2 || vals[1] != 5 {
		t.Fatalf("column 1 = %v %v", rows, vals)
	}
}

func TestSymmetrizePattern(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.Add(2, 2, 1)
	b.Add(0, 2, 3) // only upper entry
	m := b.ToCSR().SymmetrizePattern()
	if m.At(0, 2) != 3 {
		t.Fatalf("original value lost: %v", m.At(0, 2))
	}
	// (2,0) must now be structurally present with value 0.
	cols, _ := m.Row(2)
	found := false
	for _, c := range cols {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("symmetrized pattern missing (2,0)")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		m := randomCSR(r, n, 0.25)
		perm := r.Perm(n)
		inv := InversePerm(perm)
		back := m.Permute(perm).Permute(inv)
		for row := 0; row < n; row++ {
			for c := 0; c < n; c++ {
				if m.At(row, c) != back.At(row, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteMatVecConsistency(t *testing.T) {
	// (PAPᵀ)(Px) == P(Ax)
	rng := rand.New(rand.NewSource(5))
	n := 30
	m := randomCSR(rng, n, 0.2)
	perm := rng.Perm(n)
	pm := m.Permute(perm)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ax := make([]float64, n)
	m.MatVec(x, ax)
	px := make([]float64, n)
	pax := make([]float64, n)
	for i := 0; i < n; i++ {
		px[perm[i]] = x[i]
		pax[perm[i]] = ax[i]
	}
	got := make([]float64, n)
	pm.MatVec(px, got)
	for i := range got {
		if math.Abs(got[i]-pax[i]) > 1e-10 {
			t.Fatalf("row %d: %v vs %v", i, got[i], pax[i])
		}
	}
}

func TestPanelBasics(t *testing.T) {
	p := NewPanel(3, 2)
	p.Set(2, 1, 7)
	if p.At(2, 1) != 7 || p.Col(1)[2] != 7 {
		t.Fatal("panel indexing broken")
	}
	q := p.Clone()
	q.Set(0, 0, 1)
	if p.At(0, 0) != 0 {
		t.Fatal("Clone aliases storage")
	}
	p.AddFrom(q)
	if p.At(0, 0) != 1 || p.At(2, 1) != 14 {
		t.Fatal("AddFrom wrong")
	}
	p.Zero()
	if VecNormInf(p.Data) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestPanelPermuteRows(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 3 + r.Intn(15)
		p := NewPanel(rows, 2)
		for i := range p.Data {
			p.Data[i] = r.NormFloat64()
		}
		perm := r.Perm(rows)
		back := p.PermuteRows(perm).PermuteRows(InversePerm(perm))
		return p.MaxAbsDiff(back) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualInf(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(1, 1, 3)
	a := b.ToCSR()
	x := NewPanel(2, 1)
	x.Set(0, 0, 1)
	x.Set(1, 0, 1)
	rhs := NewPanel(2, 1)
	rhs.Set(0, 0, 2)
	rhs.Set(1, 0, 4) // off by 1 in the second row
	if r := ResidualInf(a, x, rhs); math.Abs(r-1) > 1e-15 {
		t.Fatalf("residual = %v, want 1", r)
	}
}
