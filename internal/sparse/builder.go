// Package sparse provides the sparse-matrix kernels used throughout the
// SpTRSV reproduction: compressed sparse row/column storage, a coordinate
// builder, dense right-hand-side panels, and the small set of numeric
// operations (matvec, transpose, residual norms) the solvers and tests need.
//
// All matrices are square with float64 values. Indices are 0-based.
package sparse

import (
	"fmt"
	"sort"
)

// Entry is one coordinate-format nonzero.
type Entry struct {
	Row, Col int
	Val      float64
}

// Builder accumulates coordinate entries and assembles them into CSR form.
// Duplicate (row, col) entries are summed, which makes finite-element style
// assembly convenient for the matrix generators.
type Builder struct {
	n       int
	entries []Entry
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add appends the value v at (row, col). It panics on out-of-range indices:
// generator bugs should fail loudly, not produce a malformed matrix.
func (b *Builder) Add(row, col int, v float64) {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for n=%d", row, col, b.n))
	}
	b.entries = append(b.entries, Entry{row, col, v})
}

// Len reports the number of accumulated entries (before deduplication).
func (b *Builder) Len() int { return len(b.entries) }

// ToCSR assembles the accumulated entries into a CSR matrix, summing
// duplicates. Explicit zeros are kept: the symbolic machinery treats every
// stored entry as structurally nonzero.
func (b *Builder) ToCSR() *CSR {
	es := b.entries
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	rowPtr := make([]int, b.n+1)
	colInd := make([]int, 0, len(es))
	val := make([]float64, 0, len(es))
	for i := 0; i < len(es); {
		j := i + 1
		sum := es[i].Val
		for j < len(es) && es[j].Row == es[i].Row && es[j].Col == es[i].Col {
			sum += es[j].Val
			j++
		}
		colInd = append(colInd, es[i].Col)
		val = append(val, sum)
		rowPtr[es[i].Row+1]++
		i = j
	}
	for r := 0; r < b.n; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	return &CSR{N: b.n, RowPtr: rowPtr, ColInd: colInd, Val: val}
}
