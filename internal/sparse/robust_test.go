package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestFindNonFinite(t *testing.T) {
	p := NewPanel(4, 3)
	if _, _, _, ok := p.FindNonFinite(); ok {
		t.Fatal("zero panel reported non-finite")
	}
	p.Set(2, 1, math.NaN())
	row, col, v, ok := p.FindNonFinite()
	if !ok || row != 2 || col != 1 || !math.IsNaN(v) {
		t.Fatalf("FindNonFinite = (%d, %d, %v, %v), want (2, 1, NaN, true)", row, col, v, ok)
	}
	// Infinities are caught too, and the scan is column-major: an Inf in an
	// earlier column wins over the later NaN.
	p.Set(3, 0, math.Inf(-1))
	row, col, v, ok = p.FindNonFinite()
	if !ok || row != 3 || col != 0 || !math.IsInf(v, -1) {
		t.Fatalf("FindNonFinite = (%d, %d, %v, %v), want (3, 0, -Inf, true)", row, col, v, ok)
	}
	p.Set(3, 0, 1)
	p.Set(2, 1, 1)
	if _, _, _, ok := p.FindNonFinite(); ok {
		t.Fatal("repaired panel still reported non-finite")
	}
}

// TestResidualInfNaN pins satellite (d): a NaN anywhere in the computed
// residual must make ResidualInf return NaN, never a finite number a
// threshold check could silently accept.
func TestResidualInfNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 10, 0.2)
	x := NewPanel(10, 2)
	b := NewPanel(10, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	a.MatPanel(x, b) // exact: residual 0
	if r := ResidualInf(a, x, b); r != 0 {
		t.Fatalf("exact residual %g, want 0", r)
	}

	// NaN in the solution: the comparison d > worst is false for NaN, so a
	// naive max would skip it — the result must be NaN regardless.
	xb := x.Clone()
	xb.Set(5, 1, math.NaN())
	if r := ResidualInf(a, xb, b); !math.IsNaN(r) {
		t.Fatalf("NaN solution gave residual %g, want NaN", r)
	}

	// NaN in the RHS likewise.
	bb := b.Clone()
	bb.Set(0, 0, math.NaN())
	if r := ResidualInf(a, x, bb); !math.IsNaN(r) {
		t.Fatalf("NaN rhs gave residual %g, want NaN", r)
	}

	// Inf propagates through the max naturally.
	xi := x.Clone()
	xi.Set(3, 0, math.Inf(1))
	if r := ResidualInf(a, xi, b); !math.IsInf(r, 1) && !math.IsNaN(r) {
		t.Fatalf("Inf solution gave finite residual %g", r)
	}
}
