package sparse

// Dense kernels on column-major panels. These are the GEMM/TRSM building
// blocks of the supernodal solver; block sizes are small (supernode width ×
// nrhs), so simple triple loops are appropriate.

// GemmAdd computes C += A·B for column-major panels, where A is m×k, B is
// k×n, and C is m×n.
func GemmAdd(a, b, c *Panel) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic("sparse: GemmAdd shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	for j := 0; j < n; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for l := 0; l < k; l++ {
			blj := bj[l]
			if blj == 0 {
				continue
			}
			al := a.Col(l)
			for i := 0; i < m; i++ {
				cj[i] += al[i] * blj
			}
		}
	}
}

// GemmSub computes C -= A·B.
func GemmSub(a, b, c *Panel) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic("sparse: GemmSub shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	for j := 0; j < n; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for l := 0; l < k; l++ {
			blj := bj[l]
			if blj == 0 {
				continue
			}
			al := a.Col(l)
			for i := 0; i < m; i++ {
				cj[i] -= al[i] * blj
			}
		}
	}
}

// GemmFlops returns the floating-point operation count of one GemmAdd/Sub
// with the given shapes; the machine models consume it.
func GemmFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// InverseLowerUnit returns the dense inverse of a unit lower-triangular
// t×t panel (the strict lower part is read; the diagonal is taken as 1).
func InverseLowerUnit(t *Panel) *Panel {
	n := t.Rows
	if t.Cols != n {
		panic("sparse: InverseLowerUnit needs a square panel")
	}
	inv := NewPanel(n, n)
	for j := 0; j < n; j++ {
		col := inv.Col(j)
		col[j] = 1
		for i := j + 1; i < n; i++ {
			s := 0.0
			for k := j; k < i; k++ {
				s += t.At(i, k) * col[k]
			}
			col[i] = -s
		}
	}
	return inv
}

// InverseUpper returns the dense inverse of an upper-triangular t×t panel
// with nonzero diagonal.
func InverseUpper(t *Panel) *Panel {
	n := t.Rows
	if t.Cols != n {
		panic("sparse: InverseUpper needs a square panel")
	}
	inv := NewPanel(n, n)
	for j := n - 1; j >= 0; j-- {
		col := inv.Col(j)
		col[j] = 1 / t.At(j, j)
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += t.At(i, k) * col[k]
			}
			col[i] = -s / t.At(i, i)
		}
	}
	return inv
}
