package sparse

// CSC is a square sparse matrix in compressed sparse column format. Row
// indices within each column are strictly increasing.
type CSC struct {
	N      int
	ColPtr []int
	RowInd []int
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowInd) }

// Col returns the row indices and values of column c as sub-slices.
func (m *CSC) Col(c int) ([]int, []float64) {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	return m.RowInd[lo:hi], m.Val[lo:hi]
}

// ToCSR converts to compressed sparse row format.
func (m *CSC) ToCSR() *CSR {
	asCSR := &CSR{N: m.N, RowPtr: m.ColPtr, ColInd: m.RowInd, Val: m.Val}
	t := asCSR.Transpose()
	return t
}
