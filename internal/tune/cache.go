package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// CacheSchemaVersion is bumped whenever the entry schema or the meaning of
// the key changes; files written by an older schema are ignored wholesale
// (a cache miss, not an error) and overwritten by the next Put.
//
// Version 2 added the execution-engine fields (exec, level_chunk).
const CacheSchemaVersion = 2

// cacheFileName is the single JSON file a Cache keeps under its directory.
const cacheFileName = "sptrsv-tune.json"

// Entry is one tuned configuration as persisted in the cache. Algorithm
// and tree kinds are stored as their String() names so the file stays
// meaningful (and diffable) if the internal enum values move.
type Entry struct {
	Px         int     `json:"px"`
	Py         int     `json:"py"`
	Pz         int     `json:"pz"`
	Algorithm  string  `json:"algorithm"`
	Trees      string  `json:"trees"`
	Exec       string  `json:"exec"`                  // execution engine ("sched" or "handler"; empty = auto)
	LevelChunk int     `json:"level_chunk,omitempty"` // scheduled-sweep chunk override (0 = default)
	Makespan   float64 `json:"makespan"`              // DES makespan of the tuned config at tuning time
	Default    float64 `json:"default_makespan"`      // DES makespan of the naive default at tuning time
}

// Config reconstructs the core configuration the entry denotes on machine
// model m. It fails on unknown algorithm or tree names (e.g. a file edited
// by hand), which callers treat as a cache miss.
func (e Entry) Config(m *machine.Model) (core.Config, error) {
	algo, err := parseAlgorithm(e.Algorithm)
	if err != nil {
		return core.Config{}, err
	}
	kind, err := parseTrees(e.Trees)
	if err != nil {
		return core.Config{}, err
	}
	exec, err := parseExec(e.Exec)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Layout:     grid.Layout{Px: e.Px, Py: e.Py, Pz: e.Pz},
		Algorithm:  algo,
		Trees:      kind,
		Machine:    m,
		Exec:       exec,
		LevelChunk: e.LevelChunk,
	}, nil
}

func parseAlgorithm(s string) (trsv.Algorithm, error) {
	for _, a := range []trsv.Algorithm{trsv.Proposed3D, trsv.Baseline3D, trsv.GPUSingle, trsv.GPUMulti, trsv.Proposed3DNaiveAR} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("tune: unknown algorithm %q", s)
}

func parseExec(s string) (trsv.ExecMode, error) {
	switch s {
	case "", trsv.ExecAuto.String():
		return trsv.ExecAuto, nil
	case trsv.ExecSched.String():
		return trsv.ExecSched, nil
	case trsv.ExecHandler.String():
		return trsv.ExecHandler, nil
	}
	return 0, fmt.Errorf("tune: unknown execution mode %q", s)
}

func parseTrees(s string) (ctree.Kind, error) {
	switch s {
	case ctree.Flat.String():
		return ctree.Flat, nil
	case ctree.Binary.String():
		return ctree.Binary, nil
	case ctree.Auto.String():
		return ctree.Auto, nil
	}
	return 0, fmt.Errorf("tune: unknown tree kind %q", s)
}

// cacheFile is the on-disk JSON document.
type cacheFile struct {
	Version int              `json:"version"`
	Entries map[string]Entry `json:"entries"`
}

// Cache is a persistent tuned-config store: one JSON file under a
// caller-chosen directory, loaded once at Open and guarded by an RWMutex
// so concurrent AutoConfig calls can share one Cache. Puts write through
// to disk atomically (temp file + rename).
type Cache struct {
	path string
	mu   sync.RWMutex
	file cacheFile
}

// OpenCache loads (or initializes) the cache under dir, creating the
// directory if needed. A missing file is an empty cache; a corrupted file
// or one written by a different schema version is also treated as empty —
// a cache must never be able to break tuning — and is replaced on the
// next Put.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tune: cache dir: %w", err)
	}
	c := &Cache{
		path: filepath.Join(dir, cacheFileName),
		file: cacheFile{Version: CacheSchemaVersion, Entries: map[string]Entry{}},
	}
	raw, err := os.ReadFile(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("tune: cache read: %w", err)
	}
	var f cacheFile
	if json.Unmarshal(raw, &f) != nil || f.Version != CacheSchemaVersion || f.Entries == nil {
		return c, nil // corrupted or stale schema: start empty
	}
	c.file = f
	return c, nil
}

// Get returns the entry stored under key, if any.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.file.Entries[key]
	return e, ok
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.file.Entries)
}

// Put stores the entry under key and persists the whole cache atomically.
func (c *Cache) Put(key string, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Entries[key] = e
	raw, err := json.MarshalIndent(&c.file, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: cache encode: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("tune: cache write: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("tune: cache rename: %w", err)
	}
	return nil
}

// NRHSClass buckets a right-hand-side count for the cache key: the tuned
// choice differs between the GEMV regime (nrhs=1) and the GEMM regime
// (nrhs≫1, the paper's nrhs=50 runs), but not meaningfully inside them.
func NRHSClass(nrhs int) string {
	if nrhs <= 1 {
		return "single"
	}
	return "multi"
}

// Key derives the cache key for tuning sys on machine m with p ranks: the
// matrix fingerprint (n, nnz(LU), supernode count, recorded tree depth) ×
// machine name × rank budget × nrhs class. Two systems with the same
// fingerprint have structurally interchangeable tuned configs even if
// their numeric values differ.
func Key(sys *core.System, m *machine.Model, p, nrhs int) string {
	return fmt.Sprintf("%s | %s | p=%d | nrhs=%s",
		sys.Fingerprint(), m.Name, p, NRHSClass(nrhs))
}
