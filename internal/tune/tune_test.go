package tune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/machine"
)

// smallSystem factors one generated analog at small scale with a tree deep
// enough for Pz up to 16.
func smallSystem(t *testing.T, name string) *core.System {
	t.Helper()
	m := gen.Named(name, gen.Small)
	sys, err := core.Factorize(m.A, core.FactorOptions{TreeDepth: 4})
	if err != nil {
		t.Fatalf("factorize %s: %v", name, err)
	}
	return sys
}

// TestSpaceCandidatesValid is the property test of the space generator:
// for random System shapes, machine models, and rank budgets, every
// candidate Space emits passes core.NewSolver validation (the full
// constructor, not just the validator).
func TestSpaceCandidatesValid(t *testing.T) {
	prop := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 24 + rng.Intn(56)
		a := gen.RandomDD(rng, n, 0.05+0.15*rng.Float64())
		sys, err := core.Factorize(a, core.FactorOptions{TreeDepth: 1 + rng.Intn(3), MaxSupernode: 4 + rng.Intn(8)})
		if err != nil {
			t.Logf("factorize: %v", err)
			return false
		}
		m := machine.CoriHaswell()
		if seed%2 == 1 {
			m = machine.PerlmutterGPU()
		}
		p := 1 + rng.Intn(32)
		space := Space(sys, m, p)
		if len(space) == 0 {
			t.Logf("empty space for n=%d p=%d", n, p)
			return false
		}
		for _, cfg := range space {
			if cfg.Layout.Size() != p {
				t.Logf("candidate %s uses %d ranks, budget %d", candKey(cfg), cfg.Layout.Size(), p)
				return false
			}
			if _, err := core.NewSolver(sys, cfg); err != nil {
				t.Logf("candidate %s rejected by NewSolver: %v", candKey(cfg), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDeterminism: two AutoConfig runs on the same System pick the
// identical configuration and report identical makespans, despite the
// concurrent probe stage.
func TestRunDeterminism(t *testing.T) {
	sys := smallSystem(t, "s2d9pt")
	m := machine.CoriHaswell()
	r1, err := Run(sys, m, 16, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sys, m, 16, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if candKey(r1.Config) != candKey(r2.Config) {
		t.Fatalf("non-deterministic choice: %s vs %s", candKey(r1.Config), candKey(r2.Config))
	}
	if r1.Makespan != r2.Makespan || r1.DefaultMakespan != r2.DefaultMakespan {
		t.Fatalf("non-deterministic makespans: %g/%g vs %g/%g",
			r1.Makespan, r1.DefaultMakespan, r2.Makespan, r2.DefaultMakespan)
	}
}

// TestRunNearOptimal is the acceptance check: on every analog at small
// scale, the tuned config's DES makespan is within 10% of the
// exhaustive-sweep optimum and never slower than the fixed default
// {Proposed3D, Px≈Py, Pz=1, AutoTrees}.
func TestRunNearOptimal(t *testing.T) {
	const p = 16
	m := machine.CoriHaswell()
	for _, name := range gen.SuiteNames() {
		sys := smallSystem(t, name)
		res, err := Run(sys, m, p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan > res.DefaultMakespan*(1+1e-12) {
			t.Errorf("%s: tuned %g slower than default %g", name, res.Makespan, res.DefaultMakespan)
		}
		// Exhaustive sweep over the whole space with the same probe RHS.
		b := probeRHS(sys, 1)
		bestTime := math.Inf(1)
		bestKey := ""
		for _, cfg := range Space(sys, m, p) {
			tm, err := probe(sys, cfg, b)
			if err != nil {
				t.Fatalf("%s: exhaustive probe %s: %v", name, candKey(cfg), err)
			}
			if tm < bestTime {
				bestTime, bestKey = tm, candKey(cfg)
			}
		}
		if res.Makespan > 1.10*bestTime {
			t.Errorf("%s: tuned %s = %g exceeds 110%% of sweep optimum %s = %g",
				name, candKey(res.Config), res.Makespan, bestKey, bestTime)
		}
		t.Logf("%s: tuned %s %.4g s (default %.4g s, optimum %s %.4g s, %d/%d probed)",
			name, candKey(res.Config), res.Makespan, res.DefaultMakespan, bestKey, bestTime, res.Probes, res.SpaceSize)
	}
}

// TestRunGPUSpace: on a GPU machine model the space includes the GPU
// algorithms, and the tuned result is a runnable configuration.
func TestRunGPUSpace(t *testing.T) {
	sys := smallSystem(t, "s1mat")
	m := machine.PerlmutterGPU()
	space := Space(sys, m, 8)
	var gpuCands int
	for _, cfg := range space {
		if cfg.Machine.GPU != nil && (cfg.Algorithm.String() == "gpu-single" || cfg.Algorithm.String() == "gpu-multi") {
			gpuCands++
		}
	}
	if gpuCands == 0 {
		t.Fatalf("no GPU candidates in space of %d", len(space))
	}
	res, err := Run(sys, m, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewSolver(sys, res.Config); err != nil {
		t.Fatalf("tuned config not runnable: %v", err)
	}
}

// TestWarmCacheZeroProbes: a second Run with a warm cache performs zero
// probe solves and returns the same configuration, including through a
// from-disk reload.
func TestWarmCacheZeroProbes(t *testing.T) {
	sys := smallSystem(t, "ldoor")
	m := machine.CoriHaswell()
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(sys, m, 16, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache || cold.Probes == 0 {
		t.Fatalf("cold run should probe: fromCache=%v probes=%d", cold.FromCache, cold.Probes)
	}
	warm, err := Run(sys, m, 16, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache || warm.Probes != 0 {
		t.Fatalf("warm run not served from cache: fromCache=%v probes=%d", warm.FromCache, warm.Probes)
	}
	if candKey(warm.Config) != candKey(cold.Config) || warm.Makespan != cold.Makespan {
		t.Fatalf("warm config %s (%g) differs from cold %s (%g)",
			candKey(warm.Config), warm.Makespan, candKey(cold.Config), cold.Makespan)
	}
	// A fresh Cache handle over the same directory sees the entry too.
	reloaded, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(sys, m, 16, Options{Cache: reloaded})
	if err != nil {
		t.Fatal(err)
	}
	if !again.FromCache || candKey(again.Config) != candKey(cold.Config) {
		t.Fatalf("reloaded cache missed: fromCache=%v config=%s", again.FromCache, candKey(again.Config))
	}
}

// TestRunRejectsBadBudget covers the error paths.
func TestRunRejectsBadBudget(t *testing.T) {
	sys := smallSystem(t, "gaas")
	if _, err := Run(sys, machine.CoriHaswell(), 0, Options{}); err == nil {
		t.Fatal("p=0 accepted")
	}
}
