package tune

import (
	"fmt"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// Space enumerates the paper-legal candidate configurations for solving
// sys on machine m with exactly p ranks:
//
//   - Pz is a power of two dividing p, bounded by the separator tree's
//     binary top levels (2^TreeDepth);
//   - CPU algorithms (Proposed3D, Baseline3D) use the most square Px≈Py
//     split of the remaining p/Pz ranks, the paper's Fig. 4 rule. The
//     proposed algorithm sweeps the three tree kinds; the baseline has no
//     tree optimization (per-node-group flat trees), so it gets one entry;
//   - GPU candidates exist only when m has GPU parameters: GPUMulti with
//     Py=1 (the Alg. 5 restriction) over every tree kind, and GPUSingle
//     when the layout collapses to 1×1×p (Alg. 4);
//   - every shape is emitted under both execution engines (ExecSched,
//     ExecHandler). The two are bit-exact — identical modeled makespan —
//     so the engine axis is decided by the pre-score's handler dispatch
//     term and the probe stage's sched-first tie-break, not by the DES.
//
// Every emitted candidate passes core.ValidateConfig — the same validator
// core.NewSolver runs — so probing a candidate cannot fail on
// compatibility grounds.
func Space(sys *core.System, m *machine.Model, p int) []core.Config {
	var out []core.Config
	add := func(l grid.Layout, algo trsv.Algorithm, kind ctree.Kind) {
		for _, exec := range []trsv.ExecMode{trsv.ExecSched, trsv.ExecHandler} {
			cfg := core.Config{Layout: l, Algorithm: algo, Trees: kind, Machine: m, Exec: exec}
			if core.ValidateConfig(sys, cfg) == nil {
				out = append(out, cfg)
			}
		}
	}
	cpuKinds := []ctree.Kind{ctree.Flat, ctree.Binary, ctree.Auto}
	for pz := 1; pz <= p && pz <= sys.Tree.NumLeaves(); pz *= 2 {
		if p%pz != 0 {
			continue
		}
		px, py := grid.Square2D(p / pz)
		for _, kind := range cpuKinds {
			add(grid.Layout{Px: px, Py: py, Pz: pz}, trsv.Proposed3D, kind)
		}
		add(grid.Layout{Px: px, Py: py, Pz: pz}, trsv.Baseline3D, ctree.Flat)
		if m.GPU != nil {
			for _, kind := range cpuKinds {
				add(grid.Layout{Px: p / pz, Py: 1, Pz: pz}, trsv.GPUMulti, kind)
			}
			if p/pz == 1 {
				add(grid.Layout{Px: 1, Py: 1, Pz: pz}, trsv.GPUSingle, ctree.Flat)
			}
		}
	}
	return out
}

// DefaultConfig is the fixed configuration a caller without the tuner
// would reasonably pick: the proposed algorithm on the most square 2D grid
// with no replication and auto trees. Run always probes it, so the tuned
// choice can never be slower than this default.
func DefaultConfig(m *machine.Model, p int) core.Config {
	px, py := grid.Square2D(p)
	return core.Config{
		Layout:    grid.Layout{Px: px, Py: py, Pz: 1},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Auto,
		Machine:   m,
	}
}

// candKey is the deterministic identity of a candidate, used for sorting
// tie-breaks and duplicate suppression. The exec component is resolved, so
// a zero-valued (auto) config and an explicit sched config collide — they
// run the same engine.
func candKey(cfg core.Config) string {
	return fmt.Sprintf("%s/%dx%dx%d/%s/%s",
		cfg.Algorithm, cfg.Layout.Px, cfg.Layout.Py, cfg.Layout.Pz, cfg.Trees, cfg.Exec.Resolve())
}

// execRank orders execution engines for makespan tie-breaks: the scheduled
// engine first. Sched and handler produce bit-identical modeled makespans,
// so without this preference the lexicographic key ("handler" < "sched")
// would hand every tie to the slower-in-real-time engine.
func execRank(cfg core.Config) int {
	if cfg.Exec.Resolve() == trsv.ExecHandler {
		return 1
	}
	return 0
}
