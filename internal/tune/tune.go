// Package tune is the performance-model-driven autotuner: given a
// factored System, a machine model, and a rank budget P, it picks the
// best core.Config (algorithm × Px×Py×Pz × tree kind) instead of making
// the caller guess one.
//
// Every headline result in the paper comes from a hand-swept
// configuration space — Pz sweet spots around 16 on CPU, binary trees
// winning only at large Px·Py, baseline-3D sometimes losing to 2D, 2D GPU
// scaling dying at the node boundary. The deterministic discrete-event
// backend is exactly the cost model those sweeps interrogate, so the
// tuner searches it mechanically:
//
//  1. a search-space generator (Space) enumerates only paper-legal
//     candidates, filtered through core.ValidateConfig;
//  2. a cheap analytic pre-score (α·messages + β·bytes + flops from the
//     supernodal block structure, no solve) ranks them and keeps the
//     top-k;
//  3. the survivors are probed by real concurrent DES solves (the Solver
//     is concurrent-safe; one goroutine per candidate under a bounded
//     worker pool) and scored by virtual makespan with deterministic
//     tie-breaking.
//
// A persistent Cache keyed by matrix fingerprint × machine × P × nrhs
// class skips the whole search on re-tuning: a warm hit performs zero
// probe solves.
package tune

import (
	"fmt"
	"sort"
	"sync"

	"sptrsv/internal/core"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// Options controls one tuning run. The zero value asks for the defaults.
type Options struct {
	// NRHS is the right-hand-side count to tune for; 0 means 1.
	NRHS int
	// TopK is how many candidates survive the analytic pre-score into the
	// DES probe stage; 0 means 10. The naive default config is always
	// probed in addition, so the tuned choice can never lose to it.
	TopK int
	// Workers bounds the concurrent probe solves; 0 means 4.
	Workers int
	// Cache, when non-nil, is consulted before searching and updated
	// after. A warm hit returns immediately with zero probe solves.
	Cache *Cache
	// Mode, Staleness, RefineTol, and RefineMax are stamped onto the
	// returned configurations (chosen and default) so the caller deploys
	// the tuned choice in the solve mode it will actually run. Probes stay
	// strict: they run fault-free, where elastic execution is identical by
	// construction, so the mode cannot change the ranking.
	Mode      trsv.SolveMode
	Staleness int
	RefineTol float64
	RefineMax int
}

func (o Options) withDefaults() Options {
	if o.NRHS <= 0 {
		o.NRHS = 1
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// Scored is one probed candidate with both of its scores.
type Scored struct {
	Config   core.Config
	PreScore float64 // analytic stage-one estimate, seconds
	Makespan float64 // DES probe makespan, seconds
}

// Result is the outcome of one tuning run.
type Result struct {
	// Config is the chosen configuration and Makespan its DES makespan.
	Config   core.Config
	Makespan float64
	// Default is the fixed configuration the tuner guarantees not to lose
	// to ({Proposed3D, Px≈Py, Pz=1, AutoTrees}), with its makespan.
	Default         core.Config
	DefaultMakespan float64
	// Probes counts the DES probe solves performed: 0 on a warm cache
	// hit, len(Probed) otherwise.
	Probes int
	// FromCache reports whether the result was served from the cache.
	FromCache bool
	// SpaceSize is the number of legal candidates before pruning.
	SpaceSize int
	// Probed lists the probed candidates, best first (empty on a warm
	// cache hit).
	Probed []Scored
}

// stamp applies the caller's solve-mode knobs to a tuned configuration.
func (o Options) stamp(cfg core.Config) core.Config {
	cfg.Mode = o.Mode
	cfg.Staleness = o.Staleness
	cfg.RefineTol = o.RefineTol
	cfg.RefineMax = o.RefineMax
	return cfg
}

// Run tunes sys for machine m and rank budget p.
//
// Run is deterministic: two runs on the same inputs (cold cache) probe
// the same candidates and return the identical configuration — the DES is
// deterministic, candidate order is fixed, and makespan ties break on the
// candidate's lexicographic key.
func Run(sys *core.System, m *machine.Model, p int, opt Options) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("tune: rank budget p=%d must be positive", p)
	}
	opt = opt.withDefaults()
	key := Key(sys, m, p, opt.NRHS)

	if opt.Cache != nil {
		if e, ok := opt.Cache.Get(key); ok {
			if cfg, err := e.Config(m); err == nil && core.ValidateConfig(sys, cfg) == nil {
				mTuneRuns.With(m.Name, "hit").Inc()
				def := DefaultConfig(m, p)
				return &Result{
					Config: opt.stamp(cfg), Makespan: e.Makespan,
					Default: opt.stamp(def), DefaultMakespan: e.Default,
					FromCache: true,
				}, nil
			}
			// An undecodable or no-longer-valid entry is a miss; the
			// fresh result below overwrites it.
		}
	}

	space := Space(sys, m, p)
	if len(space) == 0 {
		return nil, fmt.Errorf("tune: no legal configuration for p=%d on %s", p, m.Name)
	}

	// Stage one: analytic pre-score, keep the top-k (plus the default).
	st := newSnStats(sys)
	scored := make([]Scored, len(space))
	for i, cfg := range space {
		scored[i] = Scored{Config: cfg, PreScore: preScore(sys, st, cfg, opt.NRHS)}
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].PreScore != scored[j].PreScore {
			return scored[i].PreScore < scored[j].PreScore
		}
		return candKey(scored[i].Config) < candKey(scored[j].Config)
	})
	if len(scored) > opt.TopK {
		scored = scored[:opt.TopK]
	}
	def := DefaultConfig(m, p)
	defIdx := -1
	for i := range scored {
		if candKey(scored[i].Config) == candKey(def) {
			defIdx = i
			break
		}
	}
	if defIdx < 0 {
		defIdx = len(scored)
		scored = append(scored, Scored{Config: def, PreScore: preScore(sys, st, def, opt.NRHS)})
	}

	// Stage two: concurrent DES probe solves on a bounded worker pool.
	b := probeRHS(sys, opt.NRHS)
	errs := make([]error, len(scored))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for i := range scored {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			scored[i].Makespan, errs[i] = probe(sys, scored[i].Config, b)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tune: probing %s: %w", candKey(scored[i].Config), err)
		}
	}

	// Makespan ties break toward the scheduled engine (identical modeled
	// cost, cheaper real execution), then lexicographically.
	better := func(a, b Scored) bool {
		if a.Makespan != b.Makespan {
			return a.Makespan < b.Makespan
		}
		if ra, rb := execRank(a.Config), execRank(b.Config); ra != rb {
			return ra < rb
		}
		return candKey(a.Config) < candKey(b.Config)
	}
	best := 0
	for i := 1; i < len(scored); i++ {
		if better(scored[i], scored[best]) {
			best = i
		}
	}
	mTuneRuns.With(m.Name, "miss").Inc()
	mTuneProbes.With(m.Name).Add(float64(len(scored)))
	res := &Result{
		Config: opt.stamp(scored[best].Config), Makespan: scored[best].Makespan,
		Default: opt.stamp(def), DefaultMakespan: scored[defIdx].Makespan,
		Probes: len(scored), SpaceSize: len(space),
	}
	res.Probed = append(res.Probed, scored...)
	sort.SliceStable(res.Probed, func(i, j int) bool {
		return better(res.Probed[i], res.Probed[j])
	})

	if opt.Cache != nil {
		e := Entry{
			Px: res.Config.Layout.Px, Py: res.Config.Layout.Py, Pz: res.Config.Layout.Pz,
			Algorithm: res.Config.Algorithm.String(), Trees: res.Config.Trees.String(),
			Exec: res.Config.Exec.Resolve().String(), LevelChunk: res.Config.LevelChunk,
			Makespan: res.Makespan, Default: res.DefaultMakespan,
		}
		if err := opt.Cache.Put(key, e); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// probeRHS builds the deterministic right-hand side all probes share (the
// same pattern the bench harnesses use). Probes only read it.
func probeRHS(sys *core.System, nrhs int) *sparse.Panel {
	b := sparse.NewPanel(sys.A.N, nrhs)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%7)/7
	}
	return b
}

// probe builds a solver for the candidate and runs one DES solve,
// returning the virtual makespan.
func probe(sys *core.System, cfg core.Config, b *sparse.Panel) (float64, error) {
	solver, err := core.NewSolver(sys, cfg)
	if err != nil {
		return 0, err
	}
	_, rep, err := solver.Solve(b)
	if err != nil {
		return 0, err
	}
	return rep.Time, nil
}
