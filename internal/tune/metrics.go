package tune

import "sptrsv/internal/metrics"

// Tuner metrics: cache effectiveness and probe effort per tuning run,
// labeled by machine model so mixed-fleet tuning is distinguishable.
var (
	mTuneRuns = metrics.Default().Counter("sptrsv_tune_runs",
		"Tuning runs, by machine and cache outcome (hit = zero probe solves).", "machine", "cache")
	mTuneProbes = metrics.Default().Counter("sptrsv_tune_probe_solves",
		"DES probe solves performed by the tuner.", "machine")
)
