package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sptrsv/internal/machine"
)

func testEntry() Entry {
	return Entry{
		Px: 4, Py: 4, Pz: 2,
		Algorithm: "proposed-3d", Trees: "auto",
		Makespan: 1.5e-4, Default: 2.0e-4,
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache claims a hit")
	}
	want := testEntry()
	if err := c.Put("k", want); err != nil {
		t.Fatal(err)
	}
	// Same handle.
	got, ok := c.Get("k")
	if !ok || got != want {
		t.Fatalf("get after put: ok=%v got=%+v", ok, got)
	}
	// Fresh handle over the same directory: persisted round trip.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get("k")
	if !ok || got != want {
		t.Fatalf("get after reload: ok=%v got=%+v", ok, got)
	}
	if c2.Len() != 1 {
		t.Fatalf("len=%d", c2.Len())
	}
	// Entry decodes back into a runnable config shape.
	cfg, err := got.Config(machine.CoriHaswell())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Layout.Px != 4 || cfg.Layout.Pz != 2 {
		t.Fatalf("decoded layout %+v", cfg.Layout)
	}
}

func TestCacheCorruptedFileStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, cacheFileName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("corrupted cache file must not fail Open: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("corrupted cache served %d entries", c.Len())
	}
	// The next Put replaces the corrupted file with a valid one.
	if err := c.Put("k", testEntry()); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("recovered cache lost the entry")
	}
}

func TestCacheStaleVersionIgnored(t *testing.T) {
	dir := t.TempDir()
	raw, err := json.Marshal(cacheFile{
		Version: CacheSchemaVersion + 1,
		Entries: map[string]Entry{"k": testEntry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cacheFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale-schema entry served")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			if i%2 == 0 {
				if err := c.Put(key, testEntry()); err != nil {
					t.Error(err)
				}
			} else {
				c.Get(key)
			}
		}(i)
	}
	wg.Wait()
}

func TestEntryConfigRejectsUnknownNames(t *testing.T) {
	e := testEntry()
	e.Algorithm = "warp-drive"
	if _, err := e.Config(machine.CoriHaswell()); err == nil {
		t.Fatal("unknown algorithm decoded")
	}
	e = testEntry()
	e.Trees = "baobab"
	if _, err := e.Config(machine.CoriHaswell()); err == nil {
		t.Fatal("unknown tree kind decoded")
	}
}

func TestNRHSClassAndKey(t *testing.T) {
	if NRHSClass(1) != "single" || NRHSClass(0) != "single" || NRHSClass(50) != "multi" {
		t.Fatal("nrhs classes wrong")
	}
}
