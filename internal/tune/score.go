package tune

import (
	"math"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/trsv"
)

// snStats caches per-supernode structural quantities of one System —
// everything the analytic pre-score needs, extracted once per Run and
// shared by all candidates. Flop counts are per right-hand side.
type snStats struct {
	width []int     // supernode widths
	nL    []int     // off-diagonal L block count in column K
	nU    []int     // off-diagonal U block count in row K
	flops []float64 // GEMV/GEMM + diagonal-apply flops of supernode K, nrhs=1
}

func newSnStats(sys *core.System) *snStats {
	m := sys.SN
	st := &snStats{
		width: make([]int, m.SnCount),
		nL:    make([]int, m.SnCount),
		nU:    make([]int, m.SnCount),
		flops: make([]float64, m.SnCount),
	}
	for k := 0; k < m.SnCount; k++ {
		w := m.SnWidth(k)
		st.width[k] = w
		st.nL[k] = len(m.LBlocks[k])
		st.nU[k] = len(m.UBlocks[k])
		// Two diagonal-inverse applies (L and U) plus the off-diagonal
		// GEMVs on both sides.
		f := 4 * float64(w) * float64(w)
		for _, blk := range m.LBlocks[k] {
			f += 2 * float64(len(blk.Rows)) * float64(w)
		}
		for _, blk := range m.UBlocks[k] {
			f += 2 * float64(w) * float64(len(blk.Cols))
		}
		st.flops[k] = f
	}
	return st
}

// handlerDispatch is the modeled per-event cost (seconds) of the
// per-message handler engine relative to the scheduled one; see the
// comment at its use in preScore.
const handlerDispatch = 150e-9

// hops returns the serialized hop count of a broadcast/reduction tree of
// the given kind over n participants: a flat root sends n−1 messages back
// to back; a binary tree pays its depth. Mirrors ctree's Auto threshold.
func hops(kind ctree.Kind, n int) float64 {
	if n <= 1 {
		return 0
	}
	if kind == ctree.Auto {
		kind = ctree.Flat
		if n > 16 {
			kind = ctree.Binary
		}
	}
	if kind == ctree.Flat {
		return float64(n - 1)
	}
	return math.Ceil(math.Log2(float64(n + 1)))
}

// preScore is the cheap analytic stage-one cost of a candidate: an
// α·messages + β·bytes + flops model evaluated per grid over the grid's
// leaf-to-root path, taking the maximum over grids and adding the
// inter-grid (Z) term. It exists only to rank candidates for pruning —
// the surviving top-k are re-ranked by real DES probe solves — so it
// models trends (replication cost, tree fan-out, GPU task overhead, the
// allreduce vs. level-by-level sync gap), not absolute times.
func preScore(sys *core.System, st *snStats, cfg core.Config, nrhs int) float64 {
	l := cfg.Layout
	m := cfg.Machine
	mapping, err := grid.NewMapping(sys.Tree, l.Pz)
	if err != nil {
		return math.Inf(1)
	}
	sn := sys.SN
	gridRanks := float64(l.GridSize())
	fNRHS := float64(nrhs)

	gpu := cfg.Algorithm == trsv.GPUSingle || cfg.Algorithm == trsv.GPUMulti
	handler := cfg.Exec.Resolve() == trsv.ExecHandler
	worst := 0.0
	for z := 0; z < l.Pz; z++ {
		var total float64
		for _, nd := range mapping.Path(z) {
			if nd.Begin == nd.End {
				continue
			}
			lo := sn.ColToSn[nd.Begin]
			hi := sn.ColToSn[nd.End-1] + 1
			for k := lo; k < hi; k++ {
				if handler {
					// Per-event engine overhead: map-keyed counters,
					// deferred-queue churn, and per-task panel allocation
					// that the scheduled engine's dense templates and
					// arena eliminate. This term only separates the two
					// engines in stage-one ranking — the DES charges both
					// identically.
					total += handlerDispatch * float64(st.nL[k]+st.nU[k]+2)
				}
				w := float64(st.width[k])
				bytes := 8 * w * fNRHS
				flops := st.flops[k] * fNRHS
				if gpu {
					// One thread-block task per supernode, its row work
					// split over the Px GPUs of the grid.
					g := m.GPU
					total += g.TaskTime(flops/float64(l.Px), 8*flops/(2*fNRHS))
					if cfg.Algorithm == trsv.GPUMulti && l.Px > 1 {
						// One-sided puts along the broadcast trees.
						put := g.PutAlphaIntra + bytes/g.PutBWIntra
						if l.Px > g.GPUsPerNode {
							put = g.PutAlphaInter + bytes/g.PutBWInter
						}
						nb := hops(cfg.Trees, min(l.Px, st.nL[k]+1)) +
							hops(cfg.Trees, min(l.Px, st.nU[k]+1))
						total += nb * put
					}
					continue
				}
				// CPU: roofline block work spread over the 2D grid plus the
				// serialized broadcast/reduction chain of the supernode.
				t := flops / m.CPUFlops
				if bt := 8 * flops / (2 * fNRHS) / m.CPUMemBW; bt > t {
					t = bt
				}
				t += m.BlockOverhead * float64(st.nL[k]+st.nU[k]+2)
				total += t / gridRanks
				msg := m.SendOverhead + m.RecvOverhead + m.AlphaIntra + m.BetaIntra*bytes
				nhops := hops(cfg.Trees, min(l.Px, st.nL[k]+1)) + // y(K) down the column
					hops(cfg.Trees, min(l.Py, st.nL[k]+1)) + // lsum(K) across the row
					hops(cfg.Trees, min(l.Px, st.nL[k]+1)) + // x(K) down the column
					hops(cfg.Trees, min(l.Py, st.nU[k]+1)) // usum(K) across the row
				total += nhops * msg
			}
		}
		if total > worst {
			worst = total
		}
	}

	// Inter-grid (Z) synchronization term.
	if l.Pz > 1 {
		logPz := math.Log2(float64(l.Pz))
		// Bytes of the replicated (above-leaf) part of the solution.
		anc := 0.0
		for _, nd := range mapping.Path(0) {
			if nd.Level < mapping.L {
				anc += float64(nd.End-nd.Begin) * 8 * fNRHS
			}
		}
		alpha, beta := m.AlphaInter, m.BetaInter
		switch cfg.Algorithm {
		case trsv.Baseline3D:
			// O(log Pz) level synchronizations, each a blocking exchange.
			worst += 2 * logPz * (alpha + m.SendOverhead + m.RecvOverhead + beta*anc)
		default:
			// One sparse allreduce: pairwise reduce + broadcast.
			worst += logPz * (alpha + m.SendOverhead + m.RecvOverhead + beta*anc)
		}
	}
	return worst
}
