// Package cliutil holds the small pieces every command in cmd/ shares:
// consistent error reporting with documented exit codes, Matrix Market
// input loading, and the algorithm/tree-kind flag vocabulary. Before this
// package each CLI had its own copies, and their failure behavior had
// drifted — notably, a missing input file exited with the same code as a
// usage error, so scripts could not tell "bad flags" from "bad file".
package cliutil

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"

	"sptrsv/internal/ctree"
	"sptrsv/internal/machine"
	"sptrsv/internal/mtx"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// Exit codes shared by all CLIs. Scripts (and scripts/check.sh) rely on
// the distinction: 1 is a usage or runtime failure, 2 specifically means
// an input file was missing or unreadable.
const (
	ExitFailure = 1
	ExitInput   = 2
)

// Fail prints "<cmd>: <err>" to stderr and exits with ExitFailure.
func Fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(ExitFailure)
}

// FailInput reports a missing or unreadable input file as
// "<cmd>: <path>: <detail>" and exits with ExitInput. Errors that already
// carry the path (mtx.ReadFile wraps parse errors as "path: line N: ...",
// the os layer as "open path: ...") are not double-prefixed, so every
// command emits the same file-first shape regardless of which layer
// produced the error.
func FailInput(cmd, path string, err error) {
	msg := err.Error()
	var pathErr *fs.PathError
	switch {
	case errors.As(err, &pathErr) && pathErr.Path == path:
		msg = fmt.Sprintf("%s: %s: %v", path, pathErr.Op, pathErr.Err)
	case !strings.HasPrefix(msg, path+":") && !strings.HasPrefix(msg, path+" "):
		msg = path + ": " + msg
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", cmd, msg)
	os.Exit(ExitInput)
}

// LoadMTX reads a Matrix Market file and symmetrizes its pattern (the
// solvers need a symmetric nonzero structure). Any failure — the file
// missing, unreadable, or malformed — exits through FailInput.
func LoadMTX(cmd, path string) *sparse.CSR {
	a, err := mtx.ReadFile(path)
	if err != nil {
		FailInput(cmd, path, err)
	}
	return a.SymmetrizePattern()
}

// ParseAlgorithm maps the shared -algo flag vocabulary to an Algorithm.
func ParseAlgorithm(name string) (trsv.Algorithm, error) {
	switch name {
	case "proposed":
		return trsv.Proposed3D, nil
	case "baseline":
		return trsv.Baseline3D, nil
	case "gpu-single":
		return trsv.GPUSingle, nil
	case "gpu-multi":
		return trsv.GPUMulti, nil
	case "naive-allreduce":
		return trsv.Proposed3DNaiveAR, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want proposed, baseline, gpu-single, gpu-multi, naive-allreduce)", name)
}

// ParseExec maps the shared -exec flag vocabulary to an execution mode.
func ParseExec(name string) (trsv.ExecMode, error) {
	switch name {
	case "auto":
		return trsv.ExecAuto, nil
	case "sched":
		return trsv.ExecSched, nil
	case "handler":
		return trsv.ExecHandler, nil
	}
	return 0, fmt.Errorf("unknown execution mode %q (want auto, sched, handler)", name)
}

// ParseComm maps the shared -comm flag vocabulary to a communication mode.
func ParseComm(name string) (trsv.CommMode, error) {
	switch name {
	case "auto":
		return trsv.CommAuto, nil
	case "packed":
		return trsv.CommPacked, nil
	case "dense":
		return trsv.CommDense, nil
	case "aggregated":
		return trsv.CommAggregated, nil
	}
	return 0, fmt.Errorf("unknown communication mode %q (want auto, packed, dense, aggregated)", name)
}

// ParseSolveMode maps the shared -mode flag vocabulary to a solve mode.
func ParseSolveMode(name string) (trsv.SolveMode, error) {
	switch name {
	case "auto":
		return trsv.ModeAuto, nil
	case "strict":
		return trsv.ModeStrict, nil
	case "elastic":
		return trsv.ModeElastic, nil
	}
	return 0, fmt.Errorf("unknown solve mode %q (want auto, strict, elastic)", name)
}

// ElasticFlags validates the shared elastic-mode flag group (-mode,
// -staleness, -refine-tol, -refine-max) as one unit: the mode name must
// parse, the numeric bounds must be non-negative, and elastic mode must
// come with a positive staleness bound (S ≤ 0 elastic silently degrades to
// strict, which is never what the flag user meant).
func ElasticFlags(mode string, staleness int, refineTol float64, refineMax int) (trsv.SolveMode, error) {
	m, err := ParseSolveMode(mode)
	if err != nil {
		return 0, err
	}
	if staleness < 0 {
		return 0, fmt.Errorf("-staleness must be non-negative, got %d", staleness)
	}
	if refineTol < 0 {
		return 0, fmt.Errorf("-refine-tol must be non-negative, got %g", refineTol)
	}
	if refineMax < 0 {
		return 0, fmt.Errorf("-refine-max must be non-negative, got %d", refineMax)
	}
	if m == trsv.ModeElastic && staleness == 0 {
		return 0, fmt.Errorf("-mode elastic requires -staleness > 0")
	}
	return m, nil
}

// ParseMachine maps the shared -machine flag vocabulary to a machine
// model, with the error listing the valid names (machine.ByName, the older
// form, panics instead — fine for harnesses, not for request paths).
func ParseMachine(name string) (*machine.Model, error) {
	m, ok := machine.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown machine %q (want %s)", name, strings.Join(machine.Names(), ", "))
	}
	return m, nil
}

// ParseTrees maps the shared -trees flag vocabulary to a tree kind.
func ParseTrees(name string) (ctree.Kind, error) {
	switch name {
	case "flat":
		return ctree.Flat, nil
	case "binary":
		return ctree.Binary, nil
	case "auto":
		return ctree.Auto, nil
	}
	return 0, fmt.Errorf("unknown tree kind %q (want flat, binary, auto)", name)
}
