package cliutil

import "testing"

func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]string{
		"proposed":        "proposed-3d",
		"baseline":        "baseline-3d",
		"gpu-single":      "gpu-single",
		"gpu-multi":       "gpu-multi",
		"naive-allreduce": "proposed-3d-naive-allreduce",
	} {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if a.String() != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %s", name, a, want)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseExec(t *testing.T) {
	for name, want := range map[string]string{
		"auto":    "auto",
		"sched":   "sched",
		"handler": "handler",
	} {
		m, err := ParseExec(name)
		if err != nil {
			t.Fatalf("ParseExec(%q): %v", name, err)
		}
		if m.String() != want {
			t.Fatalf("ParseExec(%q) = %v, want %s", name, m, want)
		}
	}
	if _, err := ParseExec("turbo"); err == nil {
		t.Fatal("unknown execution mode accepted")
	}
}

func TestParseTrees(t *testing.T) {
	for _, name := range []string{"flat", "binary", "auto"} {
		if _, err := ParseTrees(name); err != nil {
			t.Fatalf("ParseTrees(%q): %v", name, err)
		}
	}
	if _, err := ParseTrees("baobab"); err == nil {
		t.Fatal("unknown tree kind accepted")
	}
}
