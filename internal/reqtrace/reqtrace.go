// Package reqtrace is the request-scoped tracing layer of the solve
// service: per-request span timelines (queue wait, batch assembly, solve,
// refine, encode), a bounded in-memory store serving GET
// /debug/requests/{id}, a flight recorder retaining full traces of
// anomalous requests (GET /debug/flights), and a rolling-median slow-solve
// detector that triggers automatic capture. It sits between the HTTP
// serving layer (which creates a Ctx per request) and the runtime tracer
// (whose per-rank event traces a captured flight embeds), stitching both
// into one Chrome trace file per request.
//
// Everything here is bounded: the store and recorder are LRU with fixed
// entry caps, and the recorder additionally caps total retained runtime
// trace events, so a misbehaving workload cannot grow service memory
// through its own failures.
package reqtrace

import (
	"io"
	"sort"
	"sync"
	"time"

	"sptrsv/internal/runtime"
)

// Span is one stage of a request's journey through the service. Times are
// seconds relative to the request's start, so a record is meaningful
// without knowing the server's clock epoch.
type Span struct {
	Stage  string            `json:"stage"`
	StartS float64           `json:"start_s"`
	DurS   float64           `json:"dur_s"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Ctx accumulates one request's spans and attributes as it moves through
// the service. It is written from both the HTTP handler goroutine and the
// coalescer's flush goroutine, so all mutation is mutex-guarded.
type Ctx struct {
	ID     string
	Tenant string
	Start  time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]string
}

// New starts a request context. start anchors every span's relative time.
func New(id, tenant string, start time.Time) *Ctx {
	return &Ctx{ID: id, Tenant: tenant, Start: start}
}

// Span records one completed stage delimited by clock times.
func (c *Ctx) Span(stage string, start, end time.Time, attrs map[string]string) {
	sp := Span{
		Stage:  stage,
		StartS: start.Sub(c.Start).Seconds(),
		DurS:   end.Sub(start).Seconds(),
		Attrs:  attrs,
	}
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

// SetAttr attaches one request-level attribute (handle, config key, …).
func (c *Ctx) SetAttr(k, v string) {
	c.mu.Lock()
	if c.attrs == nil {
		c.attrs = map[string]string{}
	}
	c.attrs[k] = v
	c.mu.Unlock()
}

// Record is one completed request's summary: what the store serves as JSON
// and what a captured flight embeds. A Ctx can be finished more than once
// (the coalescer snapshots a flight at solve completion, the handler
// finishes the final record after encoding); each Finish returns an
// independent Record.
type Record struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Outcome string    `json:"outcome"` // ok | fault | shed | canceled
	Error   string    `json:"error,omitempty"`
	Start   time.Time `json:"start"`
	TotalS  float64   `json:"total_s"`

	BatchWidth   int `json:"batch_width,omitempty"`
	RefinePasses int `json:"refine_passes,omitempty"`

	// TraceEvents and TraceDropped summarize the per-request runtime trace
	// when the solve was traced (0/0 otherwise). The events themselves live
	// in the flight recorder, not here.
	TraceEvents  int `json:"trace_events,omitempty"`
	TraceDropped int `json:"trace_dropped,omitempty"`

	Spans []Span            `json:"spans"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Finish snapshots the context into a Record.
func (c *Ctx) Finish(outcome, errMsg string, end time.Time) *Record {
	c.mu.Lock()
	spans := append([]Span(nil), c.spans...)
	var attrs map[string]string
	if len(c.attrs) > 0 {
		attrs = make(map[string]string, len(c.attrs))
		for k, v := range c.attrs {
			attrs[k] = v
		}
	}
	c.mu.Unlock()
	return &Record{
		ID: c.ID, Tenant: c.Tenant, Outcome: outcome, Error: errMsg,
		Start: c.Start, TotalS: end.Sub(c.Start).Seconds(),
		Spans: spans, Attrs: attrs,
	}
}

// Store is the bounded request-record index behind GET /debug/requests: an
// insertion-ordered map evicting its oldest record past cap. Re-adding an
// ID (the handler finalizing a record the coalescer already stored)
// replaces the record in place and refreshes its position.
type Store struct {
	mu    sync.Mutex
	cap   int
	recs  map[string]*Record
	order []string // oldest first
}

// NewStore returns a store retaining at most cap records (cap <= 0 means 1).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = 1
	}
	return &Store{cap: cap, recs: make(map[string]*Record)}
}

// Add inserts or replaces r's record.
func (s *Store) Add(r *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[r.ID]; ok {
		s.removeOrderLocked(r.ID)
	}
	s.recs[r.ID] = r
	s.order = append(s.order, r.ID)
	for len(s.order) > s.cap {
		delete(s.recs, s.order[0])
		s.order = s.order[1:]
	}
}

func (s *Store) removeOrderLocked(id string) {
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Get returns the record for id.
func (s *Store) Get(id string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[id]
	return r, ok
}

// Recent returns up to n records, newest first.
func (s *Store) Recent(n int) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.order) {
		n = len(s.order)
	}
	out := make([]*Record, 0, n)
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, s.recs[s.order[i]])
	}
	return out
}

// Len returns the held record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// SlowTracker flags solve durations that blow past the rolling median — the
// flight recorder's "slow solve" trigger. One tracker guards one
// (handle, config) coalescer, so the median reflects that workload alone.
type SlowTracker struct {
	mu     sync.Mutex
	window []float64 // ring of the most recent durations
	n      int       // filled entries
	next   int       // ring write cursor
	factor float64
	minObs int
}

// slowMinObs is how many observations the tracker wants before it trusts
// its median enough to flag anything.
const slowMinObs = 8

// NewSlowTracker tracks a rolling window of windowSize durations and flags
// a sample exceeding factor × median. factor <= 0 disables flagging (the
// tracker still records, so Median stays meaningful).
func NewSlowTracker(windowSize int, factor float64) *SlowTracker {
	if windowSize <= 0 {
		windowSize = 64
	}
	return &SlowTracker{window: make([]float64, windowSize), factor: factor}
}

// Observe records one solve duration and reports whether it was slow
// relative to the median of the durations seen before it (comparing
// against the prior window keeps one huge outlier from hiding itself), and
// that median.
func (t *SlowTracker) Observe(d float64) (slow bool, median float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	median = t.medianLocked()
	slow = t.factor > 0 && t.n >= slowMinObs && median > 0 && d > t.factor*median
	t.window[t.next] = d
	t.next = (t.next + 1) % len(t.window)
	if t.n < len(t.window) {
		t.n++
	}
	return slow, median
}

func (t *SlowTracker) medianLocked() float64 {
	if t.n == 0 {
		return 0
	}
	tmp := make([]float64, t.n)
	copy(tmp, t.window[:t.n])
	sort.Float64s(tmp)
	return tmp[t.n/2]
}

// WriteChromeTrace writes rec's stitched Chrome trace: the service-stage
// spans on their own process row and, when res carries a runtime trace,
// the per-rank event rows next to them. tagName labels runtime span tags
// (pass trsv.TagName). The two rows run on different clocks (service spans
// on the server clock, rank events on the backend's — virtual seconds
// under DES); the file juxtaposes them, it does not align them. A
// *runtime.DroppedEventsError return means the file is valid but the rank
// rows are truncated.
func WriteChromeTrace(w io.Writer, rec *Record, res *runtime.Result, tagName func(int) string) error {
	spans := make([]runtime.TraceSpan, 0, len(rec.Spans))
	for i, sp := range rec.Spans {
		args := map[string]any{}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		args["request_id"] = rec.ID
		ts := runtime.TraceSpan{
			Name: sp.Stage, Pid: 1, Tid: 0,
			StartUs: sp.StartS * 1e6, DurUs: sp.DurS * 1e6,
			Args: args,
		}
		if i == 0 {
			ts.ProcessName = "solve-service"
			ts.ThreadName = "request " + rec.ID
		}
		spans = append(spans, ts)
	}
	if res != nil && res.Trace != nil {
		return res.WriteTraceStitched(w, tagName, spans)
	}
	return runtime.WriteTraceSpans(w, spans)
}
