package reqtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"sptrsv/internal/runtime"
)

func rec(id string) *Record { return &Record{ID: id} }

func TestCtxSpansAndFinish(t *testing.T) {
	t0 := time.Unix(100, 0)
	c := New("r-1", "acme", t0)
	c.SetAttr("handle", "m-abc")
	c.Span("queue-wait", t0, t0.Add(10*time.Millisecond), nil)
	c.Span("solve", t0.Add(10*time.Millisecond), t0.Add(30*time.Millisecond),
		map[string]string{"batch_width": "4"})
	r := c.Finish("ok", "", t0.Add(31*time.Millisecond))
	if r.ID != "r-1" || r.Tenant != "acme" || r.Outcome != "ok" {
		t.Fatalf("record header wrong: %+v", r)
	}
	if len(r.Spans) != 2 || r.Spans[1].Stage != "solve" {
		t.Fatalf("spans wrong: %+v", r.Spans)
	}
	if r.Spans[0].StartS != 0 || r.Spans[1].StartS != 0.01 {
		t.Fatalf("relative span starts wrong: %+v", r.Spans)
	}
	if r.TotalS != 0.031 {
		t.Fatalf("TotalS = %v", r.TotalS)
	}
	if r.Attrs["handle"] != "m-abc" {
		t.Fatalf("attrs lost: %v", r.Attrs)
	}
	// Finishing again (flight snapshot then final record) is independent.
	c.Span("encode", t0.Add(31*time.Millisecond), t0.Add(32*time.Millisecond), nil)
	r2 := c.Finish("ok", "", t0.Add(32*time.Millisecond))
	if len(r.Spans) != 2 || len(r2.Spans) != 3 {
		t.Fatal("Finish snapshots are not independent")
	}
}

func TestStoreBoundAndReplace(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(rec(fmt.Sprintf("r-%d", i)))
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d, cap 3", s.Len())
	}
	if _, ok := s.Get("r-1"); ok {
		t.Fatal("oldest record not evicted")
	}
	if _, ok := s.Get("r-4"); !ok {
		t.Fatal("newest record missing")
	}
	// Replacement refreshes position: r-2 re-added outlives r-3.
	s.Add(rec("r-2"))
	s.Add(rec("r-5"))
	if _, ok := s.Get("r-2"); !ok {
		t.Fatal("replaced record evicted despite refresh")
	}
	if _, ok := s.Get("r-3"); ok {
		t.Fatal("r-3 should have been evicted")
	}
	recent := s.Recent(2)
	if len(recent) != 2 || recent[0].ID != "r-5" || recent[1].ID != "r-2" {
		t.Fatalf("Recent order wrong: %v, %v", recent[0].ID, recent[1].ID)
	}
}

func TestRecorderEntryBound(t *testing.T) {
	r := NewRecorder(2, 0)
	for i := 0; i < 4; i++ {
		r.Capture(&Flight{Record: rec("f-" + strconv.Itoa(i)), Trigger: "fault"})
	}
	if r.Len() != 2 {
		t.Fatalf("recorder holds %d, cap 2", r.Len())
	}
	if _, ok := r.Get("f-3"); !ok {
		t.Fatal("newest flight missing")
	}
	if _, ok := r.Get("f-0"); ok {
		t.Fatal("oldest flight kept past cap")
	}
	list := r.List()
	if len(list) != 2 || list[0].Record.ID != "f-3" {
		t.Fatalf("List order wrong: %v", list[0].Record.ID)
	}
}

// fakeTraceResult fabricates a Result whose trace holds events-many events
// on one rank — enough for byte-budget tests without running an engine.
func fakeTraceResult(events, dropped int) *runtime.Result {
	evs := make([]runtime.Event, events)
	return &runtime.Result{Trace: &runtime.Trace{
		Ranks:   [][]runtime.Event{evs},
		Dropped: []int{dropped},
	}}
}

func TestRecorderEventBudget(t *testing.T) {
	r := NewRecorder(100, 1000)
	for i := 0; i < 5; i++ {
		r.Capture(&Flight{Record: rec("f-" + strconv.Itoa(i)), Trigger: "slow",
			Res: fakeTraceResult(300, 0)})
	}
	// 5×300 = 1500 events > 1000: the two oldest must be gone.
	if r.Len() != 3 || r.Events() != 900 {
		t.Fatalf("recorder holds %d flights / %d events, want 3 / 900", r.Len(), r.Events())
	}
	// One oversized flight is still kept, alone.
	r.Capture(&Flight{Record: rec("huge"), Trigger: "slow", Res: fakeTraceResult(5000, 0)})
	if _, ok := r.Get("huge"); !ok {
		t.Fatal("oversized flight rejected — worst incidents must be kept")
	}
	if r.Len() != 1 {
		t.Fatalf("oversized capture kept %d neighbors", r.Len())
	}
}

func TestSlowTracker(t *testing.T) {
	tr := NewSlowTracker(16, 4)
	// Below minObs nothing is flagged, even wild outliers.
	for i := 0; i < slowMinObs; i++ {
		if slow, _ := tr.Observe(100); slow {
			t.Fatal("flagged before the window warmed")
		}
	}
	if slow, med := tr.Observe(401); !slow || med != 100 {
		t.Fatalf("4x median not flagged (slow=%v median=%v)", slow, med)
	}
	if slow, _ := tr.Observe(150); slow {
		t.Fatal("1.5x median flagged")
	}
	// Disabled factor never flags.
	off := NewSlowTracker(16, 0)
	for i := 0; i < 20; i++ {
		off.Observe(1)
	}
	if slow, _ := off.Observe(1e9); slow {
		t.Fatal("disabled tracker flagged")
	}
}

func TestWriteChromeTraceStitchAndSpansOnly(t *testing.T) {
	r := &Record{ID: "r-7", Spans: []Span{
		{Stage: "queue-wait", StartS: 0, DurS: 0.01},
		{Stage: "solve", StartS: 0.01, DurS: 0.02, Attrs: map[string]string{"batch_width": "2"}},
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, nil, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var stages, meta int
	for _, e := range out.TraceEvents {
		switch e["ph"] {
		case "X":
			stages++
			if args, _ := e["args"].(map[string]any); args["request_id"] != "r-7" {
				t.Fatalf("span lacks request_id arg: %v", e)
			}
		case "M":
			meta++
		}
	}
	if stages != 2 || meta != 2 {
		t.Fatalf("got %d stages / %d metadata, want 2 / 2", stages, meta)
	}

	// With a runtime result the rank rows ride along on pid 0.
	buf.Reset()
	if err := WriteChromeTrace(&buf, r, fakeTraceResult(3, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var rankEvents int
	for _, e := range out.TraceEvents {
		if pid, _ := e["pid"].(float64); pid == 0 && e["ph"] == "X" {
			rankEvents++
		}
	}
	if rankEvents != 3 {
		t.Fatalf("stitched file carries %d rank events, want 3", rankEvents)
	}
}

// TestConcurrent hammers store, recorder, and tracker from many goroutines
// — run under -race.
func TestConcurrent(t *testing.T) {
	s := NewStore(64)
	r := NewRecorder(16, 10000)
	tr := NewSlowTracker(32, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				c := New(id, "t", time.Unix(0, 0))
				c.Span("solve", time.Unix(0, 0), time.Unix(0, int64(i)), nil)
				s.Add(c.Finish("ok", "", time.Unix(1, 0)))
				if i%7 == 0 {
					r.Capture(&Flight{Record: rec(id), Trigger: "slow", Res: fakeTraceResult(50, 0)})
				}
				tr.Observe(float64(i%10 + 1))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.Recent(10)
				r.List()
			}
		}
	}()
	wg.Wait()
	close(done)
	if s.Len() > 64 || r.Len() > 16 || r.Events() > 10000 {
		t.Fatalf("bounds violated: store=%d flights=%d events=%d", s.Len(), r.Len(), r.Events())
	}
}
