package reqtrace

import (
	"sync"

	"sptrsv/internal/runtime"
)

// Flight is one captured anomalous request: its summary record, what
// triggered the capture, and — when the solve was traced — the runtime
// result whose per-rank events the flight's Chrome export stitches in.
type Flight struct {
	Record  *Record
	Trigger string // slow | fault | refine | request
	// Res holds the solve's runtime result when tracing was armed for the
	// request; nil for an untraced capture (the first incident on a slot —
	// the recorder's re-arming makes the next incident a full trace).
	Res *runtime.Result
}

// Events returns the runtime trace event count the flight retains.
func (f *Flight) Events() int {
	if f.Res == nil || f.Res.Trace == nil {
		return 0
	}
	return f.Res.Trace.Events()
}

// Dropped returns how many runtime trace events the solve's rings dropped.
func (f *Flight) Dropped() int {
	if f.Res == nil || f.Res.Trace == nil {
		return 0
	}
	n := 0
	for _, d := range f.Res.Trace.Dropped {
		n += d
	}
	return n
}

// Recorder is the flight recorder's size-bounded LRU: at most maxFlights
// entries AND at most maxEvents total retained runtime trace events,
// whichever bites first — a run of heavily traced incidents evicts older
// flights faster than a run of span-only ones. Re-capturing an ID replaces
// the entry.
type Recorder struct {
	mu        sync.Mutex
	maxFly    int
	maxEvents int
	curEvents int
	flights   map[string]*Flight
	order     []string // oldest first
}

// NewRecorder bounds the recorder (maxFlights <= 0 means 1; maxEvents <= 0
// means unlimited events, entry cap only).
func NewRecorder(maxFlights, maxEvents int) *Recorder {
	if maxFlights <= 0 {
		maxFlights = 1
	}
	return &Recorder{maxFly: maxFlights, maxEvents: maxEvents, flights: make(map[string]*Flight)}
}

// Capture stores f, evicting the oldest flights until both bounds hold,
// and returns how many were evicted. A flight whose own trace exceeds
// maxEvents is still kept (alone) — refusing the very capture that blew
// the budget would hide the worst incidents.
func (r *Recorder) Capture(f *Flight) (evicted int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.flights[f.Record.ID]; ok {
		r.curEvents -= old.Events()
		r.removeOrderLocked(f.Record.ID)
	}
	r.flights[f.Record.ID] = f
	r.order = append(r.order, f.Record.ID)
	r.curEvents += f.Events()
	for len(r.order) > 1 &&
		(len(r.order) > r.maxFly || (r.maxEvents > 0 && r.curEvents > r.maxEvents)) {
		oldest := r.order[0]
		r.curEvents -= r.flights[oldest].Events()
		delete(r.flights, oldest)
		r.order = r.order[1:]
		evicted++
	}
	return evicted
}

func (r *Recorder) removeOrderLocked(id string) {
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// Get returns the flight captured for id.
func (r *Recorder) Get(id string) (*Flight, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.flights[id]
	return f, ok
}

// List returns all flights, newest first.
func (r *Recorder) List() []*Flight {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Flight, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.flights[r.order[i]])
	}
	return out
}

// Len returns the held flight count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Events returns the total retained runtime trace events.
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curEvents
}
