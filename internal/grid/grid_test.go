package grid

import (
	"testing"
	"testing/quick"

	"sptrsv/internal/gen"
	"sptrsv/internal/order"
)

func TestRankCoordsRoundTrip(t *testing.T) {
	check := func(px, py, pzExp uint8) bool {
		l := Layout{Px: int(px%4) + 1, Py: int(py%4) + 1, Pz: 1 << (pzExp % 4)}
		for r := 0; r < l.Size(); r++ {
			row, col, z := l.Coords(r)
			if l.Rank(row, col, z) != r {
				return false
			}
			if row < 0 || row >= l.Px || col < 0 || col >= l.Py || z < 0 || z >= l.Pz {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Layout{2, 3, 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Layout{2, 3, 3}).Validate(); err == nil {
		t.Fatal("Pz=3 should be rejected")
	}
	if err := (Layout{0, 1, 1}).Validate(); err == nil {
		t.Fatal("Px=0 should be rejected")
	}
}

func TestSquare2D(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 4: {2, 2}, 8: {4, 2}, 12: {4, 3}, 16: {4, 4}, 64: {8, 8},
		7: {7, 1},
	}
	for p, want := range cases {
		px, py := Square2D(p)
		if px*py != p || px != want[0] || py != want[1] {
			t.Fatalf("Square2D(%d) = (%d,%d), want %v", p, px, py, want)
		}
	}
}

func TestBlockCyclicOwners(t *testing.T) {
	l := Layout{Px: 2, Py: 3, Pz: 2}
	if l.OwnerRow(5) != 1 || l.OwnerCol(5) != 2 {
		t.Fatal("block-cyclic owner wrong")
	}
	if l.DiagRank(4, 1) != l.Rank(0, 1, 1) {
		t.Fatal("DiagRank wrong")
	}
	if l.BlockRank(5, 4, 0) != l.Rank(1, 1, 0) {
		t.Fatal("BlockRank wrong")
	}
}

func newTree(t *testing.T, depth int) *order.Tree {
	t.Helper()
	a := gen.S2D9pt(24, 24, 1)
	return order.NestedDissection(a, depth)
}

func TestMappingPaths(t *testing.T) {
	tr := newTree(t, 3)
	for _, pz := range []int{1, 2, 4, 8} {
		m, err := NewMapping(tr, pz)
		if err != nil {
			t.Fatal(err)
		}
		for z := 0; z < pz; z++ {
			path := m.Path(z)
			if len(path) != m.L+1 {
				t.Fatalf("pz=%d grid %d: path length %d", pz, z, len(path))
			}
			if path[0].Level != m.L || path[len(path)-1].Level != 0 {
				t.Fatal("path levels wrong")
			}
			if path[len(path)-1].HeapIndex != 0 {
				t.Fatal("path does not end at root")
			}
			// Ranges must be disjoint and ascending leaf→root.
			for i := 1; i < len(path); i++ {
				if path[i].Begin < path[i-1].End {
					t.Fatalf("path ranges overlap: %+v then %+v", path[i-1], path[i])
				}
			}
			// Owner grids: leaf owned by z itself, root by grid 0.
			if path[0].OwnerGrid != z || path[len(path)-1].OwnerGrid != 0 {
				t.Fatal("owner grids wrong")
			}
		}
	}
}

func TestMappingReplicationCounts(t *testing.T) {
	tr := newTree(t, 3)
	m, err := NewMapping(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Each heap node at level l must be shared by exactly 2^(3-l) grids.
	seen := map[int]map[int]bool{}
	for z := 0; z < 8; z++ {
		for _, nd := range m.Path(z) {
			if seen[nd.HeapIndex] == nil {
				seen[nd.HeapIndex] = map[int]bool{}
			}
			seen[nd.HeapIndex][z] = true
			if nd.GridCount != 1<<(3-nd.Level) {
				t.Fatalf("node %d level %d gridcount %d", nd.HeapIndex, nd.Level, nd.GridCount)
			}
		}
	}
	for idx, grids := range seen {
		lvl := order.Level(idx)
		if len(grids) != 1<<(3-lvl) {
			t.Fatalf("node %d observed on %d grids, want %d", idx, len(grids), 1<<(3-lvl))
		}
	}
}

func TestMappingLeafCoverage(t *testing.T) {
	// Union of all leaf ranges plus replicated ancestors (counted once)
	// must cover all columns exactly once.
	tr := newTree(t, 2)
	m, err := NewMapping(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]int, tr.N)
	for z := 0; z < 4; z++ {
		for _, nd := range m.Path(z) {
			if nd.OwnerGrid != z {
				continue // count each node once, at its owner grid
			}
			for c := nd.Begin; c < nd.End; c++ {
				covered[c]++
			}
		}
	}
	for c, n := range covered {
		if n != 1 {
			t.Fatalf("column %d covered %d times", c, n)
		}
	}
}

func TestMappingErrors(t *testing.T) {
	tr := newTree(t, 2)
	if _, err := NewMapping(tr, 3); err == nil {
		t.Fatal("pz=3 accepted")
	}
	if _, err := NewMapping(tr, 8); err == nil {
		t.Fatal("pz beyond tree depth accepted")
	}
}

func TestNodeOfColumn(t *testing.T) {
	tr := newTree(t, 2)
	m, _ := NewMapping(tr, 4)
	path := m.Path(2)
	for i, nd := range path {
		if got := m.NodeOfColumn(path, nd.Begin); got != i {
			t.Fatalf("NodeOfColumn(%d) = %d, want %d", nd.Begin, got, i)
		}
	}
	// A column on a sibling's subtree is not on this path.
	other := m.Path(0)[0]
	if m.NodeOfColumn(path, other.Begin) != -1 {
		t.Fatal("foreign column claimed on path")
	}
}
