// Package grid defines the 3D process layout of the paper: Pz replicated
// 2D grids of Px×Py ranks, the block-cyclic ownership of supernodal blocks
// within a 2D grid, and the mapping of elimination-tree nodes onto grids
// (each leaf node lives on one grid; ancestors are replicated on a
// contiguous power-of-two block of grids).
package grid

import (
	"fmt"

	"sptrsv/internal/order"
)

// Layout is a Px×Py×Pz process layout. Ranks are numbered grid-major:
// rank = z·Px·Py + row·Py + col, matching SuperLU_DIST's row-major 2D grid.
type Layout struct {
	Px, Py, Pz int
}

// Size returns the total number of ranks.
func (l Layout) Size() int { return l.Px * l.Py * l.Pz }

// GridSize returns the ranks per 2D grid.
func (l Layout) GridSize() int { return l.Px * l.Py }

// Rank converts (row, col, z) coordinates to a global rank.
func (l Layout) Rank(row, col, z int) int {
	return z*l.Px*l.Py + row*l.Py + col
}

// Coords converts a global rank to (row, col, z).
func (l Layout) Coords(rank int) (row, col, z int) {
	g := l.Px * l.Py
	z = rank / g
	r := rank % g
	return r / l.Py, r % l.Py, z
}

// OwnerRow returns the process row owning supernode-row i (block-cyclic).
func (l Layout) OwnerRow(i int) int { return i % l.Px }

// OwnerCol returns the process column owning supernode-column k.
func (l Layout) OwnerCol(k int) int { return k % l.Py }

// DiagRank returns the global rank of the diagonal process of supernode k
// on grid z — the owner of block (k, k).
func (l Layout) DiagRank(k, z int) int {
	return l.Rank(l.OwnerRow(k), l.OwnerCol(k), z)
}

// BlockRank returns the global rank owning block (i, k) on grid z.
func (l Layout) BlockRank(i, k, z int) int {
	return l.Rank(l.OwnerRow(i), l.OwnerCol(k), z)
}

// Validate checks the layout is usable.
func (l Layout) Validate() error {
	if l.Px < 1 || l.Py < 1 || l.Pz < 1 {
		return fmt.Errorf("grid: non-positive layout %dx%dx%d", l.Px, l.Py, l.Pz)
	}
	if l.Pz&(l.Pz-1) != 0 {
		return fmt.Errorf("grid: Pz=%d must be a power of two", l.Pz)
	}
	return nil
}

// Square2D returns (Px, Py) with Px·Py = p and Px ≈ Py (Px ≥ Py), the
// paper's rule for choosing 2D grid shapes in Fig. 4.
func Square2D(p int) (px, py int) {
	px = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			px = d
		}
	}
	return p / px, px
}

// PathNode describes one elimination-tree node on a grid's leaf-to-root
// path. Columns refer to the ND-permuted matrix.
type PathNode struct {
	Level      int // tree level: log2(Pz) for the leaf, 0 for the root
	HeapIndex  int // node index in the order.Tree heap
	Begin, End int // column range of the node's supernodes
	OwnerGrid  int // smallest grid index replicating this node
	GridCount  int // number of grids replicating this node: 2^(L-Level)
}

// Replicated reports whether the node lives on more than one grid.
func (p PathNode) Replicated() bool { return p.GridCount > 1 }

// Mapping binds an order.Tree to a Pz value, exposing each grid's path.
type Mapping struct {
	Tree *order.Tree
	L    int // log2(Pz)
	Pz   int
}

// NewMapping creates the node→grid mapping for pz grids. pz must be a
// power of two not exceeding the tree's leaf count.
func NewMapping(t *order.Tree, pz int) (*Mapping, error) {
	if pz < 1 || pz&(pz-1) != 0 {
		return nil, fmt.Errorf("grid: pz=%d must be a power of two", pz)
	}
	l := 0
	for 1<<l < pz {
		l++
	}
	if l > t.Depth {
		return nil, fmt.Errorf("grid: pz=%d exceeds tree capacity 2^%d", pz, t.Depth)
	}
	return &Mapping{Tree: t, L: l, Pz: pz}, nil
}

// Path returns grid z's nodes from leaf (level L) to root (level 0). The
// leaf node covers the entire subtree of the level-L tree node assigned to
// grid z; ancestors cover only their separators.
func (m *Mapping) Path(z int) []PathNode {
	if z < 0 || z >= m.Pz {
		panic(fmt.Sprintf("grid: path for grid %d of %d", z, m.Pz))
	}
	idx := (1 << m.L) - 1 + z // heap index of the level-L node
	nd := m.Tree.Nodes[idx]
	path := []PathNode{{
		Level:     m.L,
		HeapIndex: idx,
		Begin:     nd.SubBegin,
		End:       nd.End,
		OwnerGrid: z,
		GridCount: 1,
	}}
	for level := m.L - 1; level >= 0; level-- {
		idx = (idx - 1) / 2
		nd = m.Tree.Nodes[idx]
		span := 1 << (m.L - level)
		path = append(path, PathNode{
			Level:     level,
			HeapIndex: idx,
			Begin:     nd.Begin,
			End:       nd.End,
			OwnerGrid: (z / span) * span,
			GridCount: span,
		})
	}
	return path
}

// NodeOfColumn returns, for grid z, the index into Path(z) of the node
// containing permuted column c, or -1 if the column is not on the path.
func (m *Mapping) NodeOfColumn(path []PathNode, c int) int {
	for i, nd := range path {
		if c >= nd.Begin && c < nd.End {
			return i
		}
	}
	return -1
}

// Boundaries returns every recorded node-range endpoint; the symbolic
// layer uses them to keep supernodes from spanning tree nodes.
func Boundaries(t *order.Tree) []int {
	var out []int
	for _, nd := range t.Nodes {
		out = append(out, nd.SubBegin, nd.Begin, nd.End)
	}
	return out
}
