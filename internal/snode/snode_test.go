package snode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/factor"
	"sptrsv/internal/gen"
	"sptrsv/internal/order"
	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
)

func build(t *testing.T, a *sparse.CSR, opt symbolic.Options) (*factor.Factors, *Matrix) {
	t.Helper()
	s, err := symbolic.Analyze(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.Factorize(a, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, m
}

func randomPanel(rng *rand.Rand, rows, cols int) *sparse.Panel {
	p := sparse.NewPanel(rows, cols)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	return p
}

func TestBlockStructureInvariants(t *testing.T) {
	a := gen.S2D9pt(16, 16, 1)
	_, m := build(t, a, symbolic.Options{MaxSupernode: 6})
	for k := 0; k < m.SnCount; k++ {
		prevI := k
		for _, blk := range m.LBlocks[k] {
			if blk.I <= prevI {
				t.Fatalf("supernode %d: L block order broken at I=%d", k, blk.I)
			}
			prevI = blk.I
			for i, r := range blk.Rows {
				if m.ColToSn[r] != blk.I {
					t.Fatalf("L block (%d,%d) row %d outside supernode", blk.I, k, r)
				}
				if i > 0 && blk.Rows[i] <= blk.Rows[i-1] {
					t.Fatalf("L block rows not ascending")
				}
			}
			if blk.Val.Rows != len(blk.Rows) || blk.Val.Cols != m.SnWidth(k) {
				t.Fatalf("L block panel shape mismatch")
			}
		}
		prevJ := k
		for _, blk := range m.UBlocks[k] {
			if blk.J <= prevJ {
				t.Fatalf("supernode %d: U block order broken", k)
			}
			prevJ = blk.J
			if blk.Val.Rows != m.SnWidth(k) || blk.Val.Cols != len(blk.Cols) {
				t.Fatalf("U block panel shape mismatch")
			}
		}
	}
}

func TestUBlocksMirrorLBlocks(t *testing.T) {
	// Pattern symmetry: U(K,J) columns == L(J,K) rows.
	a := gen.S2D9pt(14, 14, 2)
	_, m := build(t, a, symbolic.Options{MaxSupernode: 8})
	for k := 0; k < m.SnCount; k++ {
		for _, ub := range m.UBlocks[k] {
			var lb *LBlock
			for i := range m.LBlocks[k] {
				if m.LBlocks[k][i].I == ub.J {
					lb = &m.LBlocks[k][i]
				}
			}
			if lb == nil {
				t.Fatalf("U block (%d,%d) has no mirrored L block", k, ub.J)
			}
			if len(lb.Rows) != len(ub.Cols) {
				t.Fatalf("mirror length mismatch")
			}
			for i := range lb.Rows {
				if lb.Rows[i] != ub.Cols[i] {
					t.Fatalf("mirror index mismatch")
				}
			}
		}
	}
}

func TestSolveMatchesScalarReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		a := gen.RandomDD(rng, n, 0.12)
		s, err := symbolic.Analyze(a, symbolic.Options{MaxSupernode: 1 + rng.Intn(10)})
		if err != nil {
			return false
		}
		f, err := factor.Factorize(a, s)
		if err != nil {
			return false
		}
		m, err := Build(f)
		if err != nil {
			return false
		}
		b := randomPanel(rng, n, 1+rng.Intn(3))
		want := f.SolveSerial(b)
		got := m.Solve(b)
		return got.MaxAbsDiff(want) < 1e-8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSuiteResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, mat := range gen.Suite(gen.Small) {
		if mat.A.N > 1500 {
			continue
		}
		tr := order.NestedDissection(mat.A, 2)
		ap := mat.A.Permute(tr.Perm)
		var bounds []int
		for _, nd := range tr.Nodes {
			bounds = append(bounds, nd.Begin, nd.End, nd.SubBegin)
		}
		_, m := build(t, ap, symbolic.Options{Boundaries: bounds})
		b := randomPanel(rng, mat.A.N, 2)
		x := m.Solve(b)
		if r := sparse.ResidualInf(ap, x, b); r > 1e-7 {
			t.Fatalf("%s: residual %g", mat.Name, r)
		}
	}
}

func TestSolveLThenUSeparately(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := gen.RandomDD(rng, 70, 0.1)
	f, m := build(t, a, symbolic.Options{MaxSupernode: 5})
	b := randomPanel(rng, a.N, 2)
	y := m.SolveL(b)
	// L·y must equal b.
	if r := sparse.ResidualInf(f.LowerCSR(), y, b); r > 1e-9 {
		t.Fatalf("L-solve residual %g", r)
	}
	x := m.SolveU(y)
	if r := sparse.ResidualInf(f.UpperCSR(), x, y); r > 1e-9 {
		t.Fatalf("U-solve residual %g", r)
	}
}

func TestDiagInversesShape(t *testing.T) {
	a := gen.S2D9pt(10, 10, 3)
	_, m := build(t, a, symbolic.Options{MaxSupernode: 7})
	for k := 0; k < m.SnCount; k++ {
		w := m.SnWidth(k)
		if m.LDiagInv[k].Rows != w || m.LDiagInv[k].Cols != w {
			t.Fatalf("LDiagInv %d shape", k)
		}
		if m.UDiagInv[k].Rows != w || m.UDiagInv[k].Cols != w {
			t.Fatalf("UDiagInv %d shape", k)
		}
	}
}

func TestDenseKernels(t *testing.T) {
	// GemmAdd/Sub and triangular inverses on a hand-checked example.
	aT := sparse.NewPanel(2, 2)
	aT.Set(0, 0, 1)
	aT.Set(1, 0, 2)
	aT.Set(1, 1, 1) // unit lower [[1,0],[2,1]]
	inv := sparse.InverseLowerUnit(aT)
	if inv.At(1, 0) != -2 || inv.At(0, 0) != 1 || inv.At(1, 1) != 1 {
		t.Fatalf("InverseLowerUnit wrong: %+v", inv.Data)
	}
	u := sparse.NewPanel(2, 2)
	u.Set(0, 0, 2)
	u.Set(0, 1, 4)
	u.Set(1, 1, 8)
	uinv := sparse.InverseUpper(u)
	// [[2,4],[0,8]]⁻¹ = [[0.5, -0.25], [0, 0.125]]
	if uinv.At(0, 0) != 0.5 || uinv.At(0, 1) != -0.25 || uinv.At(1, 1) != 0.125 {
		t.Fatalf("InverseUpper wrong: %+v", uinv.Data)
	}
	c := sparse.NewPanel(2, 2)
	sparse.GemmAdd(u, uinv, c)
	if c.At(0, 0) != 1 || c.At(1, 1) != 1 || c.At(0, 1) != 0 || c.At(1, 0) != 0 {
		t.Fatalf("U·U⁻¹ != I: %+v", c.Data)
	}
	sparse.GemmSub(u, uinv, c)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("GemmSub failed to cancel: %+v", c.Data)
		}
	}
}

func TestTriangularInversesRandomProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		l := sparse.NewPanel(n, n)
		u := sparse.NewPanel(n, n)
		for i := 0; i < n; i++ {
			l.Set(i, i, 1)
			u.Set(i, i, 1+rng.Float64())
			for j := 0; j < i; j++ {
				l.Set(i, j, rng.NormFloat64())
				u.Set(j, i, rng.NormFloat64())
			}
		}
		for name, pair := range map[string][2]*sparse.Panel{
			"l": {l, sparse.InverseLowerUnit(l)},
			"u": {u, sparse.InverseUpper(u)},
		} {
			prod := sparse.NewPanel(n, n)
			sparse.GemmAdd(pair[0], pair[1], prod)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if d := prod.At(i, j) - want; d > 1e-8 || d < -1e-8 {
						_ = name
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
