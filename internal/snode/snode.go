// Package snode packages LU factors into the supernodal block
// representation of the paper's §2.1: for each supernode K, a dense unit
// lower-triangular diagonal block L(K,K) and dense row-index blocks L(I,K)
// below it; for U, a dense upper-triangular U(K,K) and column-index blocks
// U(K,J) to its right, each nonzero column of full supernode height (the
// paper's equal-column-length assumption, which fundamental supernodes on a
// symmetric pattern satisfy exactly).
//
// Diagonal block inverses are precomputed, matching the paper's assumption
// that the significant solve-time FP operations are the GEMV/GEMM calls.
package snode

import (
	"fmt"

	"sptrsv/internal/factor"
	"sptrsv/internal/sparse"
)

// LBlock is one off-diagonal block L(I, K): Rows lists the global row
// indices (ascending, all within supernode I), and Val is the dense
// len(Rows) × width(K) panel.
type LBlock struct {
	I    int
	Rows []int
	Val  *sparse.Panel
}

// UBlock is one off-diagonal block U(K, J): Cols lists the global column
// indices (ascending, within supernode J), and Val is the dense
// width(K) × len(Cols) panel.
type UBlock struct {
	J    int
	Cols []int
	Val  *sparse.Panel
}

// Matrix is the supernodal form of the LU factors.
type Matrix struct {
	N       int
	SnCount int
	SnBegin []int // from symbolic.Structure
	ColToSn []int

	LDiagInv []*sparse.Panel // inverse of L(K,K), width×width
	UDiagInv []*sparse.Panel // inverse of U(K,K), width×width
	LBlocks  [][]LBlock      // per supernode K, ascending I
	UBlocks  [][]UBlock      // per supernode K, ascending J
}

// SnWidth returns the number of columns of supernode K.
func (m *Matrix) SnWidth(k int) int { return m.SnBegin[k+1] - m.SnBegin[k] }

// Build converts scalar LU factors into supernodal block form.
func Build(f *factor.Factors) (*Matrix, error) {
	s := f.S
	m := &Matrix{
		N:       f.N,
		SnCount: s.SnCount,
		SnBegin: s.SnBegin,
		ColToSn: s.ColToSn,
	}
	m.LDiagInv = make([]*sparse.Panel, m.SnCount)
	m.UDiagInv = make([]*sparse.Panel, m.SnCount)
	m.LBlocks = make([][]LBlock, m.SnCount)
	m.UBlocks = make([][]UBlock, m.SnCount)

	for k := 0; k < m.SnCount; k++ {
		if err := m.buildSupernode(f, k); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildSupernode fills the diagonal inverses and off-diagonal blocks of
// supernode K from the scalar factors.
func (m *Matrix) buildSupernode(f *factor.Factors, k int) error {
	s := f.S
	b, e := m.SnBegin[k], m.SnBegin[k+1]
	w := e - b

	// Shared off-diagonal row pattern = pattern of the first column minus
	// the in-supernode rows.
	first := s.RowInd[s.ColPtr[b]:s.ColPtr[b+1]]
	if len(first) < w {
		return fmt.Errorf("snode: supernode %d pattern shorter than width", k)
	}
	for c := 0; c < w; c++ {
		if first[c] != b+c {
			return fmt.Errorf("snode: supernode %d pattern does not begin with its own columns", k)
		}
	}
	shared := first[w:]

	// L diagonal block (unit lower triangular) and its inverse.
	ld := sparse.NewPanel(w, w)
	for c := 0; c < w; c++ {
		j := b + c
		lo := s.ColPtr[j]
		ld.Set(c, c, 1)
		for r := c + 1; r < w; r++ {
			ld.Set(r, c, f.LVal[lo+(r-c)])
		}
	}
	m.LDiagInv[k] = sparse.InverseLowerUnit(ld)

	// U diagonal block (upper triangular) and its inverse. U column j holds
	// its rows ascending and ends with the diagonal; in-supernode rows
	// b..j are the trailing j-b+1 entries.
	ud := sparse.NewPanel(w, w)
	for c := 0; c < w; c++ {
		j := b + c
		hi := f.UColPtr[j+1]
		for r := 0; r <= c; r++ {
			ud.Set(r, c, f.UVal[hi-1-(c-r)])
		}
	}
	m.UDiagInv[k] = sparse.InverseUpper(ud)

	// Off-diagonal L blocks: group shared rows by their supernode.
	for t := 0; t < len(shared); {
		i := m.ColToSn[shared[t]]
		u := t
		for u < len(shared) && m.ColToSn[shared[u]] == i {
			u++
		}
		rows := shared[t:u]
		val := sparse.NewPanel(len(rows), w)
		for c := 0; c < w; c++ {
			j := b + c
			lo := s.ColPtr[j]
			// Column j's rows are [j..e-1, shared...]; shared row t sits at
			// offset (e-j) + t.
			base := lo + (e - (b + c))
			for rr := t; rr < u; rr++ {
				val.Set(rr-t, c, f.LVal[base+rr])
			}
		}
		m.LBlocks[k] = append(m.LBlocks[k], LBlock{I: i, Rows: append([]int(nil), rows...), Val: val})
		t = u
	}

	// Off-diagonal U blocks mirror the L blocks: U(K, J) has the column
	// list that L(J, K) has as rows. Values come from the scalar U columns:
	// U(row, col) for row ∈ [b,e), col ∈ shared.
	for t := 0; t < len(shared); {
		j := m.ColToSn[shared[t]]
		u := t
		for u < len(shared) && m.ColToSn[shared[u]] == j {
			u++
		}
		cols := shared[t:u]
		val := sparse.NewPanel(w, len(cols))
		for cc, col := range cols {
			// U column `col` lists rows ascending; the rows in [b, e) form
			// a contiguous run found by binary search.
			lo, hi := f.UColPtr[col], f.UColPtr[col+1]
			p := lowerBound(f.URowInd[lo:hi], b) + lo
			for ; p < hi && f.URowInd[p] < e; p++ {
				val.Set(f.URowInd[p]-b, cc, f.UVal[p])
			}
		}
		m.UBlocks[k] = append(m.UBlocks[k], UBlock{J: j, Cols: append([]int(nil), cols...), Val: val})
		t = u
	}
	return nil
}

// lowerBound returns the first index in the ascending slice a with
// a[i] >= x, or len(a).
func lowerBound(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SolveL performs the serial supernodal forward solve L·y = b, the
// reference implementation of Eq. (1).
func (m *Matrix) SolveL(b *sparse.Panel) *sparse.Panel {
	nrhs := b.Cols
	y := b.Clone()
	for k := 0; k < m.SnCount; k++ {
		bk, ek := m.SnBegin[k], m.SnBegin[k+1]
		w := ek - bk
		// y(K) = inv(L(K,K)) · rhs(K)
		rhs := sparse.NewPanel(w, nrhs)
		for j := 0; j < nrhs; j++ {
			copy(rhs.Col(j), y.Col(j)[bk:ek])
		}
		yk := sparse.NewPanel(w, nrhs)
		sparse.GemmAdd(m.LDiagInv[k], rhs, yk)
		for j := 0; j < nrhs; j++ {
			copy(y.Col(j)[bk:ek], yk.Col(j))
		}
		// lsum updates: y(rows) -= L(I,K)·y(K)
		for _, blk := range m.LBlocks[k] {
			prod := sparse.NewPanel(len(blk.Rows), nrhs)
			sparse.GemmAdd(blk.Val, yk, prod)
			for j := 0; j < nrhs; j++ {
				col := y.Col(j)
				pc := prod.Col(j)
				for t, r := range blk.Rows {
					col[r] -= pc[t]
				}
			}
		}
	}
	return y
}

// SolveU performs the serial supernodal backward solve U·x = y, the
// reference implementation of Eq. (2).
func (m *Matrix) SolveU(y *sparse.Panel) *sparse.Panel {
	nrhs := y.Cols
	x := y.Clone()
	for k := m.SnCount - 1; k >= 0; k-- {
		bk, ek := m.SnBegin[k], m.SnBegin[k+1]
		w := ek - bk
		rhs := sparse.NewPanel(w, nrhs)
		for j := 0; j < nrhs; j++ {
			copy(rhs.Col(j), x.Col(j)[bk:ek])
		}
		// rhs(K) -= U(K,J)·x(J) over all blocks to the right.
		for _, blk := range m.UBlocks[k] {
			xj := sparse.NewPanel(len(blk.Cols), nrhs)
			for j := 0; j < nrhs; j++ {
				col := x.Col(j)
				xc := xj.Col(j)
				for t, c := range blk.Cols {
					xc[t] = col[c]
				}
			}
			sparse.GemmSub(blk.Val, xj, rhs)
		}
		xk := sparse.NewPanel(w, nrhs)
		sparse.GemmAdd(m.UDiagInv[k], rhs, xk)
		for j := 0; j < nrhs; j++ {
			copy(x.Col(j)[bk:ek], xk.Col(j))
		}
	}
	return x
}

// Solve runs the forward then backward solve: x = U⁻¹ L⁻¹ b.
func (m *Matrix) Solve(b *sparse.Panel) *sparse.Panel {
	return m.SolveU(m.SolveL(b))
}
