package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/ctree"
	"sptrsv/internal/factor"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/order"
	"sptrsv/internal/snode"
	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
)

func buildFactors(t *testing.T, a *sparse.CSR, depth, maxSn int) (*snode.Matrix, *order.Tree) {
	t.Helper()
	tr := order.NestedDissection(a, depth)
	ap := a.Permute(tr.Perm)
	s, err := symbolic.Analyze(ap, symbolic.Options{MaxSupernode: maxSn, Boundaries: grid.Boundaries(tr)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.Factorize(ap, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snode.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

func newPlan(t *testing.T, l grid.Layout, kind ctree.Kind) *Plan {
	t.Helper()
	m, tr := buildFactors(t, gen.S2D9pt(20, 20, 71), 3, 8)
	p, err := New(m, tr, l, kind)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPathSupernodesAscendingAndOnPath(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 2, Py: 3, Pz: 4}, ctree.Binary)
	for _, gp := range p.Grids {
		for i := 1; i < len(gp.Sns); i++ {
			if gp.Sns[i] <= gp.Sns[i-1] {
				t.Fatal("Sns not ascending")
			}
		}
		for _, k := range gp.Sns {
			if !gp.OnPath[k] || gp.NodeOf[k] < 0 {
				t.Fatal("OnPath/NodeOf inconsistent")
			}
		}
	}
}

func TestRowListsMirrorBlocks(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary)
	// RowLists[I] must contain exactly the K with a block (I, K).
	count := 0
	for k := 0; k < p.M.SnCount; k++ {
		for _, blk := range p.M.LBlocks[k] {
			found := false
			for _, kk := range p.RowLists[blk.I] {
				if kk == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("RowLists missing (%d,%d)", blk.I, k)
			}
			count++
		}
	}
	total := 0
	for _, l := range p.RowLists {
		total += len(l)
	}
	if total != count {
		t.Fatalf("RowLists has %d entries, blocks %d", total, count)
	}
}

func TestTreesCoverBlockOwners(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 3, Py: 2, Pz: 2}, ctree.Binary)
	l := p.Layout
	for _, gp := range p.Grids {
		for _, k := range gp.Sns {
			for _, blk := range p.M.LBlocks[k] {
				owner := p.Rank2D(blk.I%l.Px, k%l.Py)
				if !gp.LBcast[k].Contains(owner) {
					t.Fatalf("LBcast(%d) missing owner of block (%d,%d)", k, blk.I, k)
				}
			}
			for _, j := range gp.RowSns[k] {
				owner := p.Rank2D(k%l.Px, j%l.Py)
				if !gp.LReduce[k].Contains(owner) {
					t.Fatalf("LReduce(%d) missing owner of block (%d,%d)", k, k, j)
				}
			}
			if gp.LBcast[k].Root() != p.DiagRank2D(k) {
				t.Fatalf("LBcast(%d) not rooted at diagonal", k)
			}
			if gp.UReduce[k].Root() != p.DiagRank2D(k) {
				t.Fatalf("UReduce(%d) not rooted at diagonal", k)
			}
		}
	}
}

func TestRankDataPartitionsBlocks(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 2, Py: 3, Pz: 2}, ctree.Binary)
	for _, gp := range p.Grids {
		// Every grid block appears in exactly one rank's ColL.
		total := 0
		for _, rd := range gp.Ranks {
			for _, blks := range rd.ColL {
				total += len(blks)
			}
		}
		want := 0
		for _, k := range gp.Sns {
			want += len(p.M.LBlocks[k])
		}
		if total != want {
			t.Fatalf("grid %d: ColL holds %d blocks, want %d", gp.Z, total, want)
		}
		// MyDiagSns partitions the path supernodes.
		seen := map[int]bool{}
		for _, rd := range gp.Ranks {
			for _, k := range rd.MyDiagSns {
				if seen[k] {
					t.Fatalf("supernode %d owned twice", k)
				}
				seen[k] = true
			}
		}
		if len(seen) != len(gp.Sns) {
			t.Fatalf("grid %d: diag ownership covers %d of %d", gp.Z, len(seen), len(gp.Sns))
		}
	}
}

func TestPendingCountsMatchTreeStructure(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary)
	for _, gp := range p.Grids {
		for _, k := range gp.Sns {
			// Sum over ranks of PendingL[k] must equal total L blocks in
			// row k plus total reduce-tree edges (each child sends one
			// message, each message is one pending unit at its parent).
			sum := 0
			for _, rd := range gp.Ranks {
				sum += rd.PendingL[k]
			}
			blocks := len(gp.RowSns[k])
			edges := gp.LReduce[k].Size() - 1
			if sum != blocks+edges {
				t.Fatalf("grid %d sn %d: pending sum %d != blocks %d + edges %d", gp.Z, k, sum, blocks, edges)
			}
		}
	}
}

func TestRecvTotalsMatchSendTotals(t *testing.T) {
	// Across a grid, total expected receives must equal total messages the
	// trees will carry: every tree edge carries exactly one message per
	// solve phase.
	p := newPlan(t, grid.Layout{Px: 2, Py: 3, Pz: 2}, ctree.Binary)
	for _, gp := range p.Grids {
		lRecv, uRecv := 0, 0
		for _, rd := range gp.Ranks {
			lRecv += rd.LRecv
			uRecv += rd.URecv
		}
		lEdges, uEdges := 0, 0
		for _, k := range gp.Sns {
			lEdges += gp.LBcast[k].Size() - 1 + gp.LReduce[k].Size() - 1
			uEdges += gp.UBcast[k].Size() - 1 + gp.UReduce[k].Size() - 1
		}
		if lRecv != lEdges || uRecv != uEdges {
			t.Fatalf("grid %d: recv totals (%d,%d) != tree edges (%d,%d)", gp.Z, lRecv, uRecv, lEdges, uEdges)
		}
	}
}

func TestBaselineStructures(t *testing.T) {
	p := newPlan(t, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Flat)
	if err := p.BuildBaseline(); err != nil {
		t.Fatal(err)
	}
	if err := p.BuildBaseline(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, gp := range p.Grids {
		b := gp.Base
		if b == nil {
			t.Fatal("baseline not built")
		}
		if b.S != trailingZerosCapped(gp.Z, p.Map.L) {
			t.Fatalf("grid %d: S=%d", gp.Z, b.S)
		}
		for _, k := range gp.Sns {
			// Group trees must be ordered by node and cover every block owner.
			prev := -1
			memberCount := 0
			for _, gt := range b.LBcastGroups[k] {
				if gt.Node <= prev {
					t.Fatalf("group trees out of order for sn %d", k)
				}
				prev = gt.Node
				memberCount += gt.Tree.Size()
			}
			// Leaf supernodes have no gather columns.
			if gp.NodeOf[k] == 0 && len(b.GatherCols[k]) != 0 {
				t.Fatalf("leaf sn %d has gather cols %v", k, b.GatherCols[k])
			}
		}
	}
}

func TestSupernodeBoundaryViolationDetected(t *testing.T) {
	// Analyzing WITHOUT boundaries should produce supernodes that straddle
	// tree nodes, which New must reject.
	a := gen.S2D9pt(20, 20, 72)
	tr := order.NestedDissection(a, 3)
	ap := a.Permute(tr.Perm)
	s, err := symbolic.Analyze(ap, symbolic.Options{MaxSupernode: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.Factorize(ap, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snode.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, tr, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary); err == nil {
		t.Skip("supernodes happened to align; no violation to detect")
	}
}

func TestPlanRejectsBadLayouts(t *testing.T) {
	m, tr := buildFactors(t, gen.S2D9pt(12, 12, 73), 2, 8)
	if _, err := New(m, tr, grid.Layout{Px: 2, Py: 2, Pz: 3}, ctree.Binary); err == nil {
		t.Fatal("Pz=3 accepted")
	}
	if _, err := New(m, tr, grid.Layout{Px: 2, Py: 2, Pz: 8}, ctree.Binary); err == nil {
		t.Fatal("Pz beyond tree capacity accepted")
	}
	if _, err := New(m, tr, grid.Layout{Px: 0, Py: 2, Pz: 1}, ctree.Binary); err == nil {
		t.Fatal("Px=0 accepted")
	}
}

func TestGatherColsProperty(t *testing.T) {
	// Property: every gather column of a supernode corresponds to at least
	// one global block strictly below its node, and vice versa.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen.RandomDD(rng, 60+rng.Intn(80), 0.08)
		tr := order.NestedDissection(a, 2)
		ap := a.Permute(tr.Perm)
		s, err := symbolic.Analyze(ap, symbolic.Options{MaxSupernode: 6, Boundaries: grid.Boundaries(tr)})
		if err != nil {
			return false
		}
		f, err := factor.Factorize(ap, s)
		if err != nil {
			return false
		}
		m, err := snode.Build(f)
		if err != nil {
			return false
		}
		p, err := New(m, tr, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Flat)
		if err != nil {
			return false
		}
		if err := p.BuildBaseline(); err != nil {
			return false
		}
		for _, gp := range p.Grids {
			for _, k := range gp.Sns {
				ni := gp.NodeOf[k]
				want := map[int]bool{}
				for _, j := range p.RowLists[k] {
					if !p.withinNode(gp, j, ni) {
						want[j%p.Layout.Py] = true
					}
				}
				got := gp.Base.GatherCols[k]
				if len(got) != len(want) {
					return false
				}
				for _, c := range got {
					if !want[c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
