// Package dist builds the distribution plan that the solver algorithms
// execute: for every 2D grid z, the leaf-to-root path of elimination-tree
// nodes, the supernodes living on that path, block-cyclic ownership, the
// per-supernode broadcast and reduction communication trees, and the row
// lists the fmod/bmod dependency counters are derived from.
//
// Ownership convention (identical on every grid, which is what lets the
// inter-grid exchanges pair ranks with equal 2D coordinates): block (I, K)
// belongs to 2D rank (I mod Px, K mod Py); the subvectors b(K), y(K), x(K)
// live on the diagonal rank of K. Global rank = z·Px·Py + row·Py + col.
package dist

import (
	"fmt"
	"sync"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/order"
	"sptrsv/internal/snode"
)

// UBlockRef pairs a U block with its owning supernode row.
type UBlockRef struct {
	I   int
	Blk *snode.UBlock
}

// RankData holds one 2D-local rank's precomputed view of the grid:
// which subvectors it owns, which blocks it applies per column, and how
// many row contributions it owes. Built once per grid so that handler
// initialization is O(per-rank work), not O(grid work).
type RankData struct {
	MyDiagSns []int                   // supernodes whose diagonal rank is this one, ascending
	ColL      map[int][]*snode.LBlock // my L blocks by column supernode
	ColU      map[int][]UBlockRef     // my U blocks by column supernode
	LocalL    map[int]int             // #my L blocks per row supernode
	LocalU    map[int]int             // #my U blocks per row supernode

	// Initial dependency counters for the proposed algorithm: expected
	// contributions per row (local GEMVs plus reduction-tree children) and
	// total expected receives per phase. Handlers clone the maps.
	PendingL map[int]int
	PendingU map[int]int
	LRecv    int
	URecv    int
}

// GridPlan is the per-grid view of the distributed factors.
type GridPlan struct {
	Z    int
	Path []grid.PathNode

	// Sns lists the supernodes on this grid's path in ascending global
	// order. NodeOf maps a global supernode to its index in Path (-1 if
	// off-path). OnPath is the indicator form.
	Sns    []int
	NodeOf []int
	OnPath []bool

	// RowSns[K] lists, ascending, the path supernodes J < K with a nonzero
	// block L(K, J); by pattern symmetry it equally lists the J > K with a
	// nonzero U(K, J) when read from the U side (mirrored below).
	RowSns [][]int
	// URowSns[K] lists the path supernodes J > K with a nonzero U(K, J).
	URowSns [][]int

	// Communication trees over 2D-local ranks (row·Py + col), indexed by
	// global supernode; nil for off-path supernodes.
	LBcast  []*ctree.Tree // y(K) down the process column of K
	LReduce []*ctree.Tree // lsum(K) across the process row of K
	UBcast  []*ctree.Tree // x(K) down the process column of K
	UReduce []*ctree.Tree // usum(K) across the process row of K

	// Ranks holds each 2D-local rank's precomputed block lists and
	// ownership, indexed by row·Py+col.
	Ranks []*RankData

	// Base holds the baseline algorithm's per-node structures; nil until
	// Plan.BuildBaseline runs.
	Base *Baseline
}

// Plan is the full distribution of one factored matrix on one layout.
type Plan struct {
	M      *snode.Matrix
	Layout grid.Layout
	Map    *grid.Mapping
	Kind   ctree.Kind

	// RowLists[K] lists all global supernodes J < K with a block L(K, J):
	// the grid-independent transpose of the block structure.
	RowLists [][]int

	Grids []*GridPlan

	// baseOnce guards the lazy one-time construction of the baseline
	// structures — the plan's only post-New mutation, made safe for
	// concurrent solves by the once. baseErr caches the build outcome.
	baseOnce sync.Once
	baseErr  error

	// schedOnce guards the lazy one-time construction of the level/DAG
	// execution schedule (see internal/sched). The schedule lives here as
	// an opaque value so dist does not import its builder; CachedSchedule
	// hands the cast back to the caller.
	schedOnce sync.Once
	sched     any
	schedErr  error
}

// CachedSchedule returns the plan's execution schedule, building it with
// build on the first call — the same lazy sync.Once pattern as
// BuildBaseline, so concurrent solves share one immutable schedule. The
// value is opaque to dist; internal/sched owns its type and performs the
// cast.
func (p *Plan) CachedSchedule(build func(*Plan) (any, error)) (any, error) {
	p.schedOnce.Do(func() {
		p.sched, p.schedErr = build(p)
	})
	return p.sched, p.schedErr
}

// Rank2D converts 2D coordinates to the grid-local rank id used by trees.
func (p *Plan) Rank2D(row, col int) int { return row*p.Layout.Py + col }

// DiagRank2D returns the grid-local rank owning the diagonal block of K.
func (p *Plan) DiagRank2D(k int) int {
	return p.Rank2D(k%p.Layout.Px, k%p.Layout.Py)
}

// GlobalRank converts (grid z, 2D-local rank) to the global rank.
func (p *Plan) GlobalRank(z, r2d int) int { return z*p.Layout.GridSize() + r2d }

// New builds the plan for the supernodal factors m distributed on layout l
// with communication trees of the given kind. The order.Tree must be the
// one whose boundaries were fed into the symbolic analysis, so supernodes
// never straddle tree nodes.
func New(m *snode.Matrix, t *order.Tree, l grid.Layout, kind ctree.Kind) (*Plan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	mapping, err := grid.NewMapping(t, l.Pz)
	if err != nil {
		return nil, err
	}
	p := &Plan{M: m, Layout: l, Map: mapping, Kind: kind}

	// Grid-independent transpose of the L block structure.
	p.RowLists = make([][]int, m.SnCount)
	for k := 0; k < m.SnCount; k++ {
		for _, blk := range m.LBlocks[k] {
			p.RowLists[blk.I] = append(p.RowLists[blk.I], k)
		}
	}

	p.Grids = make([]*GridPlan, l.Pz)
	for z := 0; z < l.Pz; z++ {
		gp, err := p.buildGrid(z)
		if err != nil {
			return nil, err
		}
		p.Grids[z] = gp
	}
	return p, nil
}

// snRange returns the supernode index range [lo, hi) covering the column
// range [begin, end); it requires supernode boundaries to align with the
// node boundaries (guaranteed by the symbolic boundary option).
func (p *Plan) snRange(begin, end int) (int, int, error) {
	m := p.M
	if begin == end {
		return 0, 0, nil
	}
	lo := m.ColToSn[begin]
	hi := m.ColToSn[end-1] + 1
	if m.SnBegin[lo] != begin || m.SnBegin[hi] != end {
		return 0, 0, fmt.Errorf("dist: supernode straddles node boundary [%d,%d)", begin, end)
	}
	return lo, hi, nil
}

func (p *Plan) buildGrid(z int) (*GridPlan, error) {
	m := p.M
	gp := &GridPlan{
		Z:      z,
		Path:   p.Map.Path(z),
		NodeOf: make([]int, m.SnCount),
		OnPath: make([]bool, m.SnCount),
	}
	for i := range gp.NodeOf {
		gp.NodeOf[i] = -1
	}
	for ni, nd := range gp.Path {
		lo, hi, err := p.snRange(nd.Begin, nd.End)
		if err != nil {
			return nil, err
		}
		if nd.Begin == nd.End {
			continue
		}
		for k := lo; k < hi; k++ {
			gp.Sns = append(gp.Sns, k)
			gp.NodeOf[k] = ni
			gp.OnPath[k] = true
		}
	}
	// Path node ranges ascend leaf→root, so Sns is already ascending.

	gp.RowSns = make([][]int, m.SnCount)
	gp.URowSns = make([][]int, m.SnCount)
	for _, k := range gp.Sns {
		for _, j := range p.RowLists[k] {
			if gp.OnPath[j] {
				gp.RowSns[k] = append(gp.RowSns[k], j)
			}
		}
		for _, blk := range m.UBlocks[k] {
			if gp.OnPath[blk.J] {
				gp.URowSns[k] = append(gp.URowSns[k], blk.J)
			}
		}
	}

	if err := p.buildTrees(gp); err != nil {
		return nil, err
	}
	p.buildRankData(gp)
	return gp, nil
}

// buildRankData distributes the grid's blocks over the 2D ranks in one
// pass over the block structure.
func (p *Plan) buildRankData(gp *GridPlan) {
	m := p.M
	l := p.Layout
	gp.Ranks = make([]*RankData, l.GridSize())
	for r := range gp.Ranks {
		gp.Ranks[r] = &RankData{
			ColL:   map[int][]*snode.LBlock{},
			ColU:   map[int][]UBlockRef{},
			LocalL: map[int]int{},
			LocalU: map[int]int{},
		}
	}
	for r := range gp.Ranks {
		gp.Ranks[r].PendingL = map[int]int{}
		gp.Ranks[r].PendingU = map[int]int{}
	}
	for _, k := range gp.Sns {
		gp.Ranks[p.DiagRank2D(k)].MyDiagSns = append(gp.Ranks[p.DiagRank2D(k)].MyDiagSns, k)
		for bi := range m.LBlocks[k] {
			blk := &m.LBlocks[k][bi]
			r := gp.Ranks[p.Rank2D(blk.I%l.Px, k%l.Py)]
			r.ColL[k] = append(r.ColL[k], blk)
			if blk.I != k {
				r.LocalL[blk.I]++
			}
		}
		for bi := range m.UBlocks[k] {
			blk := &m.UBlocks[k][bi]
			if !gp.OnPath[blk.J] {
				continue
			}
			r := gp.Ranks[p.Rank2D(k%l.Px, blk.J%l.Py)]
			r.ColU[blk.J] = append(r.ColU[blk.J], UBlockRef{I: k, Blk: blk})
			r.LocalU[k]++
		}
	}
	// Dependency counters: one pass over tree members instead of one scan
	// of every supernode per rank.
	for _, k := range gp.Sns {
		for _, m := range gp.LReduce[k].Members() {
			rd := gp.Ranks[m]
			rd.PendingL[k] = rd.LocalL[k] + gp.LReduce[k].NumChildren(m)
			rd.LRecv += gp.LReduce[k].NumChildren(m)
		}
		for _, m := range gp.LBcast[k].Members() {
			if m != gp.LBcast[k].Root() {
				gp.Ranks[m].LRecv++
			}
		}
		for _, m := range gp.UReduce[k].Members() {
			rd := gp.Ranks[m]
			rd.PendingU[k] = rd.LocalU[k] + gp.UReduce[k].NumChildren(m)
			rd.URecv += gp.UReduce[k].NumChildren(m)
		}
		for _, m := range gp.UBcast[k].Members() {
			if m != gp.UBcast[k].Root() {
				gp.Ranks[m].URecv++
			}
		}
	}
}

// buildTrees constructs the four tree families for one grid.
func (p *Plan) buildTrees(gp *GridPlan) error {
	m := p.M
	l := p.Layout
	gp.LBcast = make([]*ctree.Tree, m.SnCount)
	gp.LReduce = make([]*ctree.Tree, m.SnCount)
	gp.UBcast = make([]*ctree.Tree, m.SnCount)
	gp.UReduce = make([]*ctree.Tree, m.SnCount)

	for _, k := range gp.Sns {
		diag := p.DiagRank2D(k)

		// L broadcast of y(K): owners of blocks L(I, K), I on path.
		members := []int{diag}
		seen := map[int]bool{diag: true}
		for _, blk := range m.LBlocks[k] {
			if !gp.OnPath[blk.I] {
				continue // cannot happen for on-path K; kept as a guard
			}
			r := p.Rank2D(blk.I%l.Px, k%l.Py)
			if !seen[r] {
				seen[r] = true
				members = append(members, r)
			}
		}
		tr, err := ctree.New(p.Kind, diag, members)
		if err != nil {
			return err
		}
		gp.LBcast[k] = tr

		// U broadcast of x(K): owners of blocks U(I, K) = mirrors L(K, ·)
		// read column-wise; participants are owners of U(I,K) with I < K,
		// i.e. ranks (I mod Px, K mod Py) for I in RowSns[K]... the rows I
		// with L(K, I) nonzero are exactly the rows with U(I, K) nonzero.
		members = []int{diag}
		seen = map[int]bool{diag: true}
		for _, i := range gp.RowSns[k] {
			r := p.Rank2D(i%l.Px, k%l.Py)
			if !seen[r] {
				seen[r] = true
				members = append(members, r)
			}
		}
		if tr, err = ctree.New(p.Kind, diag, members); err != nil {
			return err
		}
		gp.UBcast[k] = tr

		// L reduction of lsum(K): owners of blocks L(K, J), J on path.
		members = []int{diag}
		seen = map[int]bool{diag: true}
		for _, j := range gp.RowSns[k] {
			r := p.Rank2D(k%l.Px, j%l.Py)
			if !seen[r] {
				seen[r] = true
				members = append(members, r)
			}
		}
		if tr, err = ctree.New(p.Kind, diag, members); err != nil {
			return err
		}
		gp.LReduce[k] = tr

		// U reduction of usum(K): owners of blocks U(K, J), J > K on path.
		members = []int{diag}
		seen = map[int]bool{diag: true}
		for _, j := range gp.URowSns[k] {
			r := p.Rank2D(k%l.Px, j%l.Py)
			if !seen[r] {
				seen[r] = true
				members = append(members, r)
			}
		}
		if tr, err = ctree.New(p.Kind, diag, members); err != nil {
			return err
		}
		gp.UReduce[k] = tr
	}
	return nil
}

// OwnerGridOfSn returns the smallest grid replicating the node containing
// supernode k, given any grid plan that has k on its path.
func (gp *GridPlan) OwnerGridOfSn(k int) int {
	return gp.Path[gp.NodeOf[k]].OwnerGrid
}
