package dist

import (
	"sort"

	"sptrsv/internal/ctree"
)

// GroupTree is a communication tree restricted to one elimination-tree
// node: the baseline 3D algorithm builds a separate (flat) tree per
// (supernode, target node) pair — the "three broadcast and reduction trees
// per row and column" of the paper's Fig. 1(b) remark — where the proposed
// algorithm uses a single tree.
type GroupTree struct {
	Node int // path node index the tree's block rows/columns live in
	Tree *ctree.Tree
}

// BaselineRankData holds one rank's precomputed baseline counters: stage
// receive totals and per-row dependency counts. Handlers clone the maps
// and slices.
type BaselineRankData struct {
	LRemaining []int // expected L-phase receives per node stage 0..s
	URemaining []int // expected U-phase receives per node stage 0..s
	PendingL   map[int]int
	PendingU   map[int]int
}

// Baseline holds the per-grid structures only the baseline algorithm uses.
// All its trees are flat: the baseline predates the binary-tree latency
// optimization.
type Baseline struct {
	// S is this grid's highest processed node stage (the trailing zero
	// count of its index, capped at log2(Pz)).
	S int
	// Ranks holds the per-rank counters, indexed by 2D-local rank.
	Ranks []*BaselineRankData

	// LBcastGroups[K] holds one flat tree per path node containing rows of
	// blocks L(I,K); ordered by ascending node index.
	LBcastGroups [][]GroupTree
	// LReduceNode[K] is the flat reduction tree over ranks owning blocks
	// L(K,J) with J in K's own node (within-node contributions only; the
	// cross-node ones arrive through the pre-gather).
	LReduceNode []*ctree.Tree
	// UBcastGroups[K] holds one flat tree per path node containing rows of
	// blocks U(I,K), I < K.
	UBcastGroups [][]GroupTree
	// UReduceFlat[K] is the flat reduction tree over all ranks owning
	// blocks U(K,J), J on path.
	UReduceFlat []*ctree.Tree
	// GatherCols[K] lists the process columns holding cross-node lsum
	// contributions for row K: the distinct J mod Py over all global
	// supernodes J with a block L(K,J) lying strictly below K's node.
	GatherCols [][]int
}

// BuildBaseline populates the baseline structures for every grid. It is
// idempotent, safe for concurrent callers, and must run before the
// baseline algorithm (Solve does it); building once up front keeps the
// handlers strictly read-only over the plan, which concurrent solves and
// the goroutine backend require.
func (p *Plan) BuildBaseline() error {
	p.baseOnce.Do(func() {
		for _, gp := range p.Grids {
			b, err := p.buildBaselineGrid(gp)
			if err != nil {
				p.baseErr = err
				return
			}
			gp.Base = b
		}
	})
	return p.baseErr
}

// withinNode reports whether global supernode j lies inside the path node
// with index ni on this grid (node ranges are contiguous column ranges; the
// leaf node's range covers its whole subtree).
func (p *Plan) withinNode(gp *GridPlan, j, ni int) bool {
	nd := gp.Path[ni]
	c := p.M.SnBegin[j]
	return c >= nd.Begin && c < nd.End
}

func trailingZerosCapped(z, cap int) int {
	if z == 0 {
		return cap
	}
	s := 0
	for z&1 == 0 {
		s++
		z >>= 1
	}
	return s
}

func (p *Plan) buildBaselineGrid(gp *GridPlan) (*Baseline, error) {
	m := p.M
	l := p.Layout
	b := &Baseline{
		LBcastGroups: make([][]GroupTree, m.SnCount),
		LReduceNode:  make([]*ctree.Tree, m.SnCount),
		UBcastGroups: make([][]GroupTree, m.SnCount),
		UReduceFlat:  make([]*ctree.Tree, m.SnCount),
		GatherCols:   make([][]int, m.SnCount),
	}
	for _, k := range gp.Sns {
		diag := p.DiagRank2D(k)
		ni := gp.NodeOf[k]

		// L broadcast group trees: rows grouped by their path node.
		byNode := map[int][]int{}
		seen := map[[2]int]bool{}
		for _, blk := range m.LBlocks[k] {
			g := gp.NodeOf[blk.I]
			r := p.Rank2D(blk.I%l.Px, k%l.Py)
			if key := [2]int{g, r}; !seen[key] {
				seen[key] = true
				byNode[g] = append(byNode[g], r)
			}
		}
		var groups []int
		for g := range byNode {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		for _, g := range groups {
			members := byNode[g]
			if !containsInt(members, diag) {
				members = append([]int{diag}, members...)
			}
			tr, err := ctree.New(ctree.Flat, diag, members)
			if err != nil {
				return nil, err
			}
			b.LBcastGroups[k] = append(b.LBcastGroups[k], GroupTree{Node: g, Tree: tr})
		}

		// U broadcast group trees: rows I < K with U(I,K) ≠ 0, grouped.
		byNode = map[int][]int{}
		seen = map[[2]int]bool{}
		for _, i := range gp.RowSns[k] {
			g := gp.NodeOf[i]
			r := p.Rank2D(i%l.Px, k%l.Py)
			if key := [2]int{g, r}; !seen[key] {
				seen[key] = true
				byNode[g] = append(byNode[g], r)
			}
		}
		groups = groups[:0]
		for g := range byNode {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		for _, g := range groups {
			members := byNode[g]
			if !containsInt(members, diag) {
				members = append([]int{diag}, members...)
			}
			tr, err := ctree.New(ctree.Flat, diag, members)
			if err != nil {
				return nil, err
			}
			b.UBcastGroups[k] = append(b.UBcastGroups[k], GroupTree{Node: g, Tree: tr})
		}

		// Within-node L reduction tree.
		members := []int{diag}
		seenR := map[int]bool{diag: true}
		for _, j := range gp.RowSns[k] {
			if gp.NodeOf[j] != ni {
				continue
			}
			r := p.Rank2D(k%l.Px, j%l.Py)
			if !seenR[r] {
				seenR[r] = true
				members = append(members, r)
			}
		}
		tr, err := ctree.New(ctree.Flat, diag, members)
		if err != nil {
			return nil, err
		}
		b.LReduceNode[k] = tr

		// Flat U reduction tree over all path contributors.
		members = []int{diag}
		seenR = map[int]bool{diag: true}
		for _, j := range gp.URowSns[k] {
			r := p.Rank2D(k%l.Px, j%l.Py)
			if !seenR[r] {
				seenR[r] = true
				members = append(members, r)
			}
		}
		if tr, err = ctree.New(ctree.Flat, diag, members); err != nil {
			return nil, err
		}
		b.UReduceFlat[k] = tr

		// Gather columns: global row list entries strictly below K's node.
		colSet := map[int]bool{}
		for _, j := range p.RowLists[k] {
			if !p.withinNode(gp, j, ni) {
				colSet[j%l.Py] = true
			}
		}
		var cols []int
		for c := range colSet {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		b.GatherCols[k] = cols
	}
	p.buildBaselineRankData(gp, b)
	return b, nil
}

// buildBaselineRankData precomputes the per-rank stage counters in one
// pass over the grid's supernodes and tree members.
func (p *Plan) buildBaselineRankData(gp *GridPlan, b *Baseline) {
	l := p.Layout
	b.S = trailingZerosCapped(gp.Z, p.Map.L)
	s := b.S
	b.Ranks = make([]*BaselineRankData, l.GridSize())
	for r := range b.Ranks {
		b.Ranks[r] = &BaselineRankData{
			LRemaining: make([]int, s+1),
			URemaining: make([]int, s+1),
			PendingL:   map[int]int{},
			PendingU:   map[int]int{},
		}
	}
	for _, k := range gp.Sns {
		ni := gp.NodeOf[k]
		diag := p.DiagRank2D(k)
		if ni <= s {
			for _, gt := range b.LBcastGroups[k] {
				for _, m := range gt.Tree.Members() {
					if m != diag {
						b.Ranks[m].LRemaining[ni]++
					}
				}
			}
		}
		if ni > s {
			// Unprocessed ancestors: only the bundle re-broadcast receives
			// below apply.
			continue
		}
		withinByCol := map[int]int{}
		for _, j := range gp.RowSns[k] {
			if gp.NodeOf[j] == ni {
				withinByCol[j%l.Py]++
			}
		}
		t := b.LReduceNode[k]
		for _, m := range t.Members() {
			rd := b.Ranks[m]
			rd.PendingL[k] = withinByCol[m%l.Py] + t.NumChildren(m)
			rd.LRemaining[ni] += t.NumChildren(m)
		}
		gather := 0
		for _, c := range b.GatherCols[k] {
			if c != k%l.Py {
				gather++
			}
		}
		if gather > 0 {
			b.Ranks[diag].PendingL[k] += gather
			b.Ranks[diag].LRemaining[ni] += gather
		}
		for _, gt := range b.UBcastGroups[k] {
			for _, m := range gt.Tree.Members() {
				if m != diag {
					b.Ranks[m].URemaining[ni]++
				}
			}
		}
		tu := b.UReduceFlat[k]
		for _, m := range tu.Members() {
			rd := b.Ranks[m]
			rd.PendingU[k] = gp.Ranks[m].LocalU[k] + tu.NumChildren(m)
			rd.URemaining[ni] += tu.NumChildren(m)
		}
	}
	if gp.Z != 0 {
		for _, k := range gp.Sns {
			if gp.NodeOf[k] <= s {
				continue
			}
			diag := p.DiagRank2D(k)
			for _, gt := range b.UBcastGroups[k] {
				if gt.Node > s {
					continue
				}
				for _, m := range gt.Tree.Members() {
					if m != diag {
						b.Ranks[m].URemaining[s]++
					}
				}
			}
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
