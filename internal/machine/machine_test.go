package machine

import "testing"

func TestNetworkIntraVsInter(t *testing.T) {
	m := CoriHaswell()
	net := m.Net()
	_, latIntra, _ := net.Cost(0, 1, 1000)
	_, latInter, _ := net.Cost(0, 32, 1000)
	if latIntra >= latInter {
		t.Fatalf("intra-node latency %g should be below inter-node %g", latIntra, latInter)
	}
	// Same node boundary check: ranks 31 and 32 are on different nodes.
	_, a, _ := net.Cost(31, 32, 0)
	_, b, _ := net.Cost(32, 33, 0)
	if a != m.AlphaInter || b != m.AlphaIntra {
		t.Fatal("node boundary wrong")
	}
}

func TestGemmTimeMonotonic(t *testing.T) {
	m := CoriHaswell()
	small := m.GemmTime(10, 10, 1)
	big := m.GemmTime(100, 10, 1)
	multi := m.GemmTime(100, 10, 50)
	if small <= m.BlockOverhead {
		t.Fatal("GemmTime lost overhead")
	}
	if big <= small || multi <= big {
		t.Fatalf("GemmTime not monotonic: %g %g %g", small, big, multi)
	}
	// 50 RHS must cost far less than 50× one RHS (GEMM efficiency).
	if multi >= 50*big {
		t.Fatalf("no GEMM reuse: %g vs %g", multi, 50*big)
	}
}

func TestGemvMemoryBound(t *testing.T) {
	// With nrhs=1 the memory term dominates for any reasonable model.
	m := PerlmutterCPU()
	rows, k := 200, 40
	bytes := 8 * float64(rows*k+k+2*rows)
	want := bytes/m.CPUMemBW + m.BlockOverhead
	if got := m.GemmTime(rows, k, 1); got != want {
		t.Fatalf("GemvTime %g, want memory-bound %g", got, want)
	}
}

func TestGPUTaskTime(t *testing.T) {
	g := PerlmutterGPU().GPU
	tSmall := g.TaskTime(0, 0)
	if tSmall != g.TaskOverhead {
		t.Fatal("empty task should cost the overhead")
	}
	if g.TaskTime(1e6, 8e5) <= tSmall {
		t.Fatal("task time not increasing")
	}
}

func TestGPUPutBandwidthCliff(t *testing.T) {
	g := PerlmutterGPU().GPU
	intra := g.PutCost(0, 3, 1<<20)
	inter := g.PutCost(0, 4, 1<<20)
	if inter < 5*intra {
		t.Fatalf("inter-node put %g should be much slower than intra %g", inter, intra)
	}
}

func TestCrusherOverheadAbovePerlmutter(t *testing.T) {
	// The model encodes the paper's observation that Crusher GPU speedups
	// are lower: higher per-task overhead.
	if CrusherGPU().GPU.TaskOverhead <= PerlmutterGPU().GPU.TaskOverhead {
		t.Fatal("Crusher should model higher per-task overhead")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cori-haswell", "perlmutter-cpu", "perlmutter-gpu", "crusher-cpu", "crusher-gpu"} {
		if m := ByName(name); m.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name should panic")
		}
	}()
	ByName("nope")
}
