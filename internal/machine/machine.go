// Package machine provides analytic performance models of the three
// systems in the paper's evaluation — Cori Haswell, Perlmutter (A100), and
// Crusher (MI250X) — for the discrete-event backend.
//
// The models are deliberately simple: an α + β·bytes network with distinct
// intra-/inter-node links, a roofline (max of flop-rate and memory-bandwidth
// terms) for dense block operations, and a small set of GPU parameters (SM
// count, per-thread-block overhead, one-sided put costs with the NVLink vs.
// network bandwidth cliff). The figures the reproduction targets depend on
// crossovers between these terms, not on absolute accuracy; EXPERIMENTS.md
// records how the modeled shapes compare to the paper's.
package machine

import "sptrsv/internal/runtime"

// GPU holds the accelerator parameters used by the GPU execution model.
type GPU struct {
	SMs          int     // concurrently schedulable thread blocks (Alg. 5 limit)
	Flops        float64 // per-GPU peak FP64 flop/s
	MemBW        float64 // HBM bandwidth, bytes/s
	TaskOverhead float64 // per-thread-block schedule/spin overhead, s
	GPUsPerNode  int

	// One-sided (NVSHMEM-style) put costs between GPUs.
	PutAlphaIntra float64 // s, same node (NVLink)
	PutAlphaInter float64 // s, across nodes
	PutBWIntra    float64 // bytes/s, NVLink
	PutBWInter    float64 // bytes/s, inter-node fabric per GPU
}

// Model describes one machine for the simulator.
type Model struct {
	Name         string
	RanksPerNode int

	// MPI point-to-point parameters.
	SendOverhead float64 // sender CPU time per message
	RecvOverhead float64 // receiver CPU time per message
	AlphaIntra   float64 // latency, same node
	AlphaInter   float64 // latency, across nodes
	BetaIntra    float64 // s/byte, same node
	BetaInter    float64 // s/byte, across nodes

	// Per-rank CPU block-operation parameters.
	CPUFlops      float64 // flop/s
	CPUMemBW      float64 // bytes/s
	BlockOverhead float64 // per block operation, s

	GPU *GPU
}

// Network adapts the model's MPI parameters to the simulator. Ranks are
// mapped to nodes contiguously: node = rank / RanksPerNode.
type Network struct {
	m *Model
}

// Net returns the model's MPI network.
func (m *Model) Net() runtime.Network { return Network{m: m} }

// Cost implements runtime.Network.
func (n Network) Cost(src, dst, bytes int) (float64, float64, float64) {
	m := n.m
	if src/m.RanksPerNode == dst/m.RanksPerNode {
		return m.SendOverhead, m.AlphaIntra + m.BetaIntra*float64(bytes), m.RecvOverhead
	}
	return m.SendOverhead, m.AlphaInter + m.BetaInter*float64(bytes), m.RecvOverhead
}

// GemmTime models one CPU dense block operation C += A·B with A of shape
// rows×k and B of k×nrhs: a roofline over the flop and memory terms plus a
// fixed per-block overhead. With nrhs=1 it is the memory-bound GEMV of the
// paper's §2.1; at nrhs=50 the flop term grows and arithmetic intensity
// improves, matching the paper's GEMM discussion.
func (m *Model) GemmTime(rows, k, nrhs int) float64 {
	flops := 2 * float64(rows) * float64(k) * float64(nrhs)
	bytes := 8 * (float64(rows)*float64(k) + float64(k)*float64(nrhs) + 2*float64(rows)*float64(nrhs))
	t := flops / m.CPUFlops
	if bt := bytes / m.CPUMemBW; bt > t {
		t = bt
	}
	return t + m.BlockOverhead
}

// TaskTime models one GPU thread-block task executing the given flop and
// byte volume on a single SM's share of the GPU.
func (g *GPU) TaskTime(flops, bytes float64) float64 {
	perSMFlops := g.Flops / float64(g.SMs)
	perSMBW := g.MemBW / float64(g.SMs)
	t := flops / perSMFlops
	if bt := bytes / perSMBW; bt > t {
		t = bt
	}
	return t + g.TaskOverhead
}

// PutCost returns the one-sided put latency between two GPUs identified by
// global GPU index (node = gpu / GPUsPerNode).
func (g *GPU) PutCost(src, dst int, bytes int) float64 {
	if src/g.GPUsPerNode == dst/g.GPUsPerNode {
		return g.PutAlphaIntra + float64(bytes)/g.PutBWIntra
	}
	return g.PutAlphaInter + float64(bytes)/g.PutBWInter
}

// CoriHaswell models the Cray XC40 partition used for Figs. 4–8: 32-core
// Xeon E5-2698v3 dual-socket nodes (one MPI rank per core, as in the
// paper), Aries interconnect.
func CoriHaswell() *Model {
	return &Model{
		Name:          "cori-haswell",
		RanksPerNode:  32,
		SendOverhead:  1.0e-6,
		RecvOverhead:  1.8e-6,
		AlphaIntra:    1.2e-6,
		AlphaInter:    2.8e-6,
		BetaIntra:     1.0 / 3.0e9,
		BetaInter:     1.0 / 1.2e9, // per-rank share of the Aries NIC
		CPUFlops:      8.0e9,
		CPUMemBW:      4.0e9, // 128 GB/s node / 32 ranks
		BlockOverhead: 0.25e-6,
	}
}

// PerlmutterCPU models solve-on-CPU runs on Perlmutter GPU nodes (EPYC
// 7763): the CPU reference curves of Figs. 10–11.
func PerlmutterCPU() *Model {
	return &Model{
		Name:          "perlmutter-cpu",
		RanksPerNode:  64,
		SendOverhead:  0.5e-6,
		RecvOverhead:  0.6e-6,
		AlphaIntra:    0.9e-6,
		AlphaInter:    2.2e-6,
		BetaIntra:     1.0 / 4.0e9,
		BetaInter:     1.0 / 1.6e9,
		CPUFlops:      16.0e9,
		CPUMemBW:      3.2e9, // 204 GB/s node / 64 ranks
		BlockOverhead: 0.2e-6,
	}
}

// PerlmutterGPU models the A100 partition (Figs. 10–11): 4 GPUs per node,
// NVLink3 inside a node, Slingshot 11 (≈25 GB/s node, ≈12.5 GB/s per GPU
// direction under the paper's §4.2.2 discussion) across nodes.
func PerlmutterGPU() *Model {
	m := PerlmutterCPU()
	m.Name = "perlmutter-gpu"
	// One MPI rank per GPU: 4 ranks per node for the MPI (Z-comm) part.
	m.RanksPerNode = 4
	m.GPU = &GPU{
		SMs:           108,
		Flops:         9.7e12,
		MemBW:         1.55e12,
		TaskOverhead:  2.5e-6,
		GPUsPerNode:   4,
		PutAlphaIntra: 1.8e-6,
		PutAlphaInter: 3.5e-6,
		PutBWIntra:    250e9,
		PutBWInter:    12.5e9,
	}
	return m
}

// CrusherCPU models solve-on-CPU runs on Crusher nodes (EPYC 7A53): the
// CPU reference curves of Fig. 9.
func CrusherCPU() *Model {
	return &Model{
		Name:          "crusher-cpu",
		RanksPerNode:  64,
		SendOverhead:  0.5e-6,
		RecvOverhead:  0.6e-6,
		AlphaIntra:    1.0e-6,
		AlphaInter:    2.4e-6,
		BetaIntra:     1.0 / 4.0e9,
		BetaInter:     1.0 / 1.6e9,
		CPUFlops:      12.0e9,
		CPUMemBW:      3.2e9,
		BlockOverhead: 0.2e-6,
	}
}

// CrusherGPU models one MI250X Graphics Compute Die per rank (Fig. 9).
// Crusher runs use Px=Py=1 only (ROC-SHMEM lacks subcommunicator support,
// paper §3.4), so no put parameters are exercised; the higher per-task
// overhead reproduces the lower CPU→GPU speedups the paper observed on
// Crusher relative to Perlmutter.
func CrusherGPU() *Model {
	m := CrusherCPU()
	m.Name = "crusher-gpu"
	m.RanksPerNode = 8 // 8 GCDs per node
	m.GPU = &GPU{
		SMs:           110,
		Flops:         23.9e12,
		MemBW:         1.6e12,
		TaskOverhead:  7.0e-6,
		GPUsPerNode:   8,
		PutAlphaIntra: 2.5e-6,
		PutAlphaInter: 5.0e-6,
		PutBWIntra:    200e9,
		PutBWInter:    12.5e9,
	}
	return m
}

// Names lists the built-in model names Lookup accepts, in a stable order.
func Names() []string {
	return []string{"cori-haswell", "perlmutter-cpu", "perlmutter-gpu", "crusher-cpu", "crusher-gpu"}
}

// Lookup returns a model by its Name field; ok is false for unknown names.
// Request paths (the solve service, flag parsing) use Lookup so a bad name
// is an error to report, not a panic.
func Lookup(name string) (*Model, bool) {
	switch name {
	case "cori-haswell":
		return CoriHaswell(), true
	case "perlmutter-cpu":
		return PerlmutterCPU(), true
	case "perlmutter-gpu":
		return PerlmutterGPU(), true
	case "crusher-cpu":
		return CrusherCPU(), true
	case "crusher-gpu":
		return CrusherGPU(), true
	}
	return nil, false
}

// ByName returns a model by its Name field; experiment harnesses use it
// for flag parsing. It panics on unknown names (Lookup is the non-panicking
// form).
func ByName(name string) *Model {
	m, ok := Lookup(name)
	if !ok {
		panic("machine: unknown model " + name)
	}
	return m
}
