package server

import (
	"fmt"
	"math"
	"net/http"
	"reflect"
	goruntime "runtime"
	godebug "runtime/debug"

	"sptrsv/internal/reqtrace"
	simruntime "sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
	"sptrsv/internal/tune"
)

// ---- request store ----

// debugRecent bounds the listing at GET /debug/requests.
const debugRecent = 50

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	recs := s.store.Recent(debugRecent)
	writeJSON(w, http.StatusOK, map[string]any{
		"requests": recs, "count": len(recs), "stored": s.store.Len(),
	})
}

func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no record for that request ID (evicted or never solved here)", 0)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleDebugRequestTrace serves the request's Chrome trace: its service
// stage spans and, when the flight recorder captured the request with a
// runtime trace, the per-rank event rows stitched next to them. Load the
// file at chrome://tracing or https://ui.perfetto.dev.
func (s *Server) handleDebugRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no record for that request ID (evicted or never solved here)", 0)
		return
	}
	var res *simruntime.Result
	if f, ok := s.flights.Get(id); ok {
		res = f.Res
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
	reqtrace.WriteChromeTrace(w, rec, res, trsv.TagName)
}

// ---- flight recorder ----

// flightInfo is one row of the GET /debug/flights listing.
type flightInfo struct {
	ID           string  `json:"id"`
	Trigger      string  `json:"trigger"`
	Outcome      string  `json:"outcome"`
	Tenant       string  `json:"tenant"`
	TotalS       float64 `json:"total_s"`
	TraceEvents  int     `json:"trace_events"`
	TraceDropped int     `json:"trace_dropped"`
}

func (s *Server) handleDebugFlights(w http.ResponseWriter, r *http.Request) {
	flights := s.flights.List()
	infos := make([]flightInfo, len(flights))
	for i, f := range flights {
		infos[i] = flightInfo{
			ID: f.Record.ID, Trigger: f.Trigger, Outcome: f.Record.Outcome,
			Tenant: f.Record.Tenant, TotalS: f.Record.TotalS,
			TraceEvents: f.Events(), TraceDropped: f.Dropped(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"flights": infos, "count": len(infos), "retained_events": s.flights.Events(),
	})
}

// handleDebugFlight downloads one flight as a stitched Chrome trace.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, ok := s.flights.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no flight captured for that request ID", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "flight-"+id+".json"))
	reqtrace.WriteChromeTrace(w, f.Record, f.Res, trsv.TagName)
}

// ---- statusz ----

// handleStatusz is the one-stop operational snapshot: serving stats,
// uptime, build and schema versions, and Go runtime numbers.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.admit.isDraining() {
		status = "draining"
	}
	var mem goruntime.MemStats
	goruntime.ReadMemStats(&mem)
	build := map[string]any{"tune_cache_schema": tune.CacheSchemaVersion}
	if bi, ok := godebug.ReadBuildInfo(); ok {
		build["go"] = bi.GoVersion
		build["path"] = bi.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				build[kv.Key] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"uptime_s":    s.clock.Now().Sub(s.start).Seconds(),
		"queue_depth": s.admit.depth(),
		"handles":     s.handles.len(),
		"flights":     s.flights.Len(),
		"requests":    s.store.Len(),
		"stats":       sanitizeStats(s.Stats()),
		"build":       build,
		"runtime": map[string]any{
			"goroutines":     goruntime.NumGoroutine(),
			"gomaxprocs":     goruntime.GOMAXPROCS(0),
			"heap_alloc":     mem.HeapAlloc,
			"heap_objects":   mem.HeapObjects,
			"gc_cycles":      mem.NumGC,
			"gc_pause_ns":    mem.PauseTotalNs,
			"total_alloc":    mem.TotalAlloc,
			"stack_in_use":   mem.StackInuse,
			"next_gc_target": mem.NextGC,
		},
	})
}

// sanitizeStats maps Stats to JSON-safe fields: empty histograms yield NaN
// quantiles, which encoding/json rejects, so NaNs become nulls.
func sanitizeStats(st Stats) map[string]any {
	v := reflect.ValueOf(st)
	t := v.Type()
	out := make(map[string]any, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i).Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			out[t.Field(i).Name] = nil
			continue
		}
		out[t.Field(i).Name] = f
	}
	return out
}
