// Package server is the multi-tenant solve service: an HTTP/JSON API over
// the core solver stack with an upload-once/solve-many handle cache,
// bounded-queue admission control with per-tenant quotas, and a coalescer
// that merges concurrent single-RHS requests into multi-RHS panel solves
// (the paper's nrhs amortization, applied to serving).
//
// The request path is: admission (quota → bounded queue, shedding with
// 429 + Retry-After) → per-(handle, config) coalescer (flush on max-batch
// or max-wait) → one SolveBatch per flush over a sharded plan+solver cache
// keyed by matrix fingerprint × machine × grid × algorithm. All timing —
// queue waits, coalescing deadlines, quota refills — goes through an
// injected Clock, so every queueing decision is testable without sleeps.
//
// API (see DESIGN.md §12 and the README quickstart for curl examples):
//
//	POST   /v1/matrices            upload a Matrix Market body, or JSON
//	                               {"generate":{"name":"s2d9pt","scale":"small"}}
//	GET    /v1/matrices            list handles
//	GET    /v1/matrices/{id}       one handle
//	DELETE /v1/matrices/{id}       drop a handle
//	POST   /v1/matrices/{id}/solve solve {"b":[...]} against a handle
//	GET    /healthz                liveness + queue depth
//	GET    /metrics                OpenMetrics exposition of the registry
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"mime"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/metrics"
	"sptrsv/internal/mtx"
	"sptrsv/internal/reqtrace"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
	"sptrsv/internal/tune"
)

// maxBodyBytes bounds any request body (matrix uploads dominate).
const maxBodyBytes = 256 << 20

// maxLayoutRanks caps the total rank count a client-named layout may model
// (the paper's largest experiments use 2048 ranks; 4096 leaves headroom).
const maxLayoutRanks = 4096

// Options configures a Server. The zero value serves with sane defaults:
// DES backend, cori-haswell model, 4-rank default layout, 256-deep queue,
// 16-wide batches flushed after 2ms, quotas disabled.
type Options struct {
	// Machine is the default machine model (cori-haswell when nil).
	Machine *machine.Model
	// Ranks is the rank budget of the default (or autotuned) layout; 0
	// means 4.
	Ranks int
	// Backend runs the solves: nil means the deterministic DES simulator;
	// set trsv.PoolBackend for wall-clock goroutine execution.
	Backend trsv.Backend
	// Exec selects the execution engine for default configs.
	Exec trsv.ExecMode
	// Mode selects the default solve mode (strict when zero); requests can
	// override it per solve via config.mode. Elastic mode serves
	// degraded-but-refined answers under stragglers instead of stalling.
	Mode trsv.SolveMode
	// Staleness is elastic mode's default staleness bound S in dependency
	// levels; required > 0 when Mode is elastic.
	Staleness int
	// RefineTol is elastic mode's default acceptance threshold on the
	// refined residual (0 = core default).
	RefineTol float64
	// RefineMax caps elastic refinement passes (0 = core default).
	RefineMax int
	// Factor controls preprocessing of uploaded matrices.
	Factor core.FactorOptions

	// MaxQueue bounds admitted-but-not-solving requests; beyond it new
	// requests shed with 429. 0 means 256.
	MaxQueue int
	// MaxBatch flushes a coalescer batch at this width. 0 means 16.
	MaxBatch int
	// MaxWait flushes a non-full batch this long after its first request.
	// 0 means 2ms.
	MaxWait time.Duration
	// QuotaRate grants each tenant this many requests/second (token
	// bucket); <= 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the bucket capacity; 0 means max(8, 2×rate).
	QuotaBurst float64
	// MaxHandles bounds the handle cache (LRU eviction). 0 means 64.
	MaxHandles int

	// Tune autotunes the default config per handle (first solve pays the
	// probe search; the tuned-config cache makes it once per fingerprint).
	Tune bool
	// TuneCacheDir persists tuned configs across processes when Tune is
	// set ("" keeps the cache in-memory only).
	TuneCacheDir string

	// TraceCap bounds the per-rank runtime trace ring of traced solves
	// (X-Trace requests and flight-recorder captures). 0 means the runtime
	// default cap.
	TraceCap int
	// DebugRequests bounds the request-record store behind
	// GET /debug/requests. 0 means 512.
	DebugRequests int
	// FlightCap bounds how many anomalous requests the flight recorder
	// retains. 0 means 64; negative disables capture entirely.
	FlightCap int
	// FlightEvents additionally bounds the recorder's total retained runtime
	// trace events across all flights. 0 means 1<<20.
	FlightEvents int
	// SlowFactor triggers a flight capture when a flush's solve time exceeds
	// SlowFactor × the coalescer's rolling-median solve time. 0 means 8;
	// negative disables the slow trigger.
	SlowFactor float64
	// SlowWindow is the rolling median's window size. 0 means 64.
	SlowWindow int
	// RefineBlowup triggers a flight capture when an elastic solve needs
	// this many refinement passes or more. 0 means 8; negative disables.
	RefineBlowup int
	// Exemplars turns on OpenMetrics exemplar exposition on the registry:
	// latency histogram buckets carry the request ID of a recent landing.
	Exemplars bool

	// Clock injects time; nil means the real wall clock.
	Clock Clock
	// Registry receives the server metrics; nil means metrics.Default().
	Registry *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = machine.CoriHaswell()
	}
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QuotaBurst <= 0 {
		o.QuotaBurst = math.Max(8, 2*o.QuotaRate)
	}
	if o.MaxHandles <= 0 {
		o.MaxHandles = 64
	}
	if o.Clock == nil {
		o.Clock = RealClock()
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
	if o.DebugRequests <= 0 {
		o.DebugRequests = 512
	}
	if o.FlightCap == 0 {
		o.FlightCap = 64
	}
	if o.FlightEvents <= 0 {
		o.FlightEvents = 1 << 20
	}
	if o.SlowFactor == 0 {
		o.SlowFactor = 8
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 64
	}
	if o.RefineBlowup == 0 {
		o.RefineBlowup = 8
	}
	return o
}

// Server is the solve service. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	opts      Options
	clock     Clock
	metrics   *serverMetrics
	admit     *admitter
	handles   *handleCache
	tuneCache *tune.Cache
	mux       *http.ServeMux

	store   *reqtrace.Store    // completed-request records (/debug/requests)
	flights *reqtrace.Recorder // anomalous-request captures (/debug/flights)
	reqSeq  atomic.Uint64      // server-assigned request ID sequence
	start   time.Time          // serving start (statusz uptime)

	genIDs   sync.Map // generate-key → handle id (skip refactorization)
	defaults sync.Map // handle id → *defaultSlot
}

// defaultSlot resolves a handle's default configuration once.
type defaultSlot struct {
	once sync.Once
	cfg  core.Config
	err  error
}

// New builds a Server.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Exemplars {
		opts.Registry.SetExemplars(true)
	}
	s := &Server{
		opts:    opts,
		clock:   opts.Clock,
		metrics: newServerMetrics(opts.Registry),
		handles: newHandleCache(opts.MaxHandles),
		store:   reqtrace.NewStore(opts.DebugRequests),
		flights: reqtrace.NewRecorder(opts.FlightCap, opts.FlightEvents),
	}
	s.start = s.clock.Now()
	s.admit = newAdmitter(opts.MaxQueue, NewQuotaSet(opts.QuotaRate, opts.QuotaBurst), s.clock, s.metrics)
	if opts.Tune && opts.TuneCacheDir != "" {
		c, err := tune.OpenCache(opts.TuneCacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.tuneCache = c
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	s.mux.HandleFunc("GET /v1/matrices", s.handleList)
	s.mux.HandleFunc("GET /v1/matrices/{id}", s.handleGetMatrix)
	s.mux.HandleFunc("DELETE /v1/matrices/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/matrices/{id}/solve", s.handleSolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	s.mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugRequestTrace)
	s.mux.HandleFunc("GET /debug/flights", s.handleDebugFlights)
	s.mux.HandleFunc("GET /debug/flights/{id}", s.handleDebugFlight)
	s.mux.Handle("GET /metrics", metrics.Handler(opts.Registry))
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Handles returns the current handle count (for health and tests).
func (s *Server) Handles() int { return s.handles.len() }

// QueueDepth returns the current admitted-but-not-solving count.
func (s *Server) QueueDepth() int { return s.admit.depth() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.admit.isDraining() }

// Shutdown gracefully drains the service: admission stops (new requests
// get 503), every coalescer's pending batch flushes immediately, and the
// call blocks until the last in-flight request has its response ready or
// ctx expires. It does not touch any http.Server — callers stop accepting
// connections (http.Server.Shutdown) after Shutdown returns, so in-flight
// handlers can still write their responses.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admit.startDrain()
	for _, h := range s.handles.list() {
		h.drainAll()
	}
	return s.admit.awaitIdle(ctx)
}

// drainAll flushes every built coalescer of the handle.
func (h *Handle) drainAll() {
	h.mu.Lock()
	slots := make([]*solverSlot, 0, len(h.slots))
	for _, sl := range h.slots {
		slots = append(slots, sl)
	}
	h.mu.Unlock()
	for _, sl := range slots {
		if sl.coal != nil {
			sl.coal.drain()
		}
	}
}

// ---- wire types ----

type errorResponse struct {
	Error       string  `json:"error"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

type uploadRequest struct {
	Generate *struct {
		Name  string `json:"name"`
		Scale string `json:"scale"`
	} `json:"generate"`
	Options *struct {
		TreeDepth    int `json:"tree_depth"`
		MaxSupernode int `json:"max_supernode"`
	} `json:"options"`
}

type matrixInfo struct {
	Handle      string   `json:"handle"`
	Fingerprint string   `json:"fingerprint"`
	Name        string   `json:"name"`
	N           int      `json:"n"`
	NNZ         int      `json:"nnz"`
	Configs     []string `json:"configs,omitempty"`
	Reused      bool     `json:"reused,omitempty"`
}

type wireConfig struct {
	Algorithm string `json:"algorithm"`
	Px        int    `json:"px"`
	Py        int    `json:"py"`
	Pz        int    `json:"pz"`
	Trees     string `json:"trees"`
	Exec      string `json:"exec"`
	Machine   string `json:"machine"`
	// Per-request elastic opt-in. Pointers distinguish "absent — use the
	// server default" from an explicit zero.
	Mode      string   `json:"mode"`
	Staleness *int     `json:"staleness"`
	RefineTol *float64 `json:"refine_tol"`
	RefineMax *int     `json:"refine_max"`
}

type wireFault struct {
	Seed            int64   `json:"seed"`
	Jitter          float64 `json:"jitter"`
	CrashRank       *int    `json:"crash_rank"`
	CrashAt         float64 `json:"crash_at"`
	StragglerRank   *int    `json:"straggler_rank"`
	StragglerFactor float64 `json:"straggler_factor"`
}

type solveRequest struct {
	B      []float64   `json:"b"`
	Config *wireConfig `json:"config"`
	Fault  *wireFault  `json:"fault"`
}

type solveResponse struct {
	X          []float64 `json:"x"`
	Handle     string    `json:"handle"`
	Config     string    `json:"config"`
	Tenant     string    `json:"tenant"`
	BatchWidth int       `json:"batch_width"`
	PanelWidth int       `json:"panel_width"`
	QueueWaitS float64   `json:"queue_wait_s"`
	SolveS     float64   `json:"solve_s"`
	MakespanS  float64   `json:"makespan_s"`
	// Elastic-mode outcome, omitted for strict solves.
	RefinePasses    int     `json:"refine_passes,omitempty"`
	StaleSupernodes int     `json:"stale_supernodes,omitempty"`
	Residual        float64 `json:"residual,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	resp := errorResponse{Error: msg}
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if retryAfter%time.Second != 0 || secs == 0 {
			secs++ // Retry-After is integral seconds; round up
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		resp.RetryAfterS = retryAfter.Seconds()
	}
	writeJSON(w, code, resp)
}

// ---- upload path ----

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	now := s.clock.Now()
	fopt := s.opts.Factor

	var (
		a      *sparse.CSR
		name   string
		genKey string
	)
	// Clients commonly send parameters ("application/json; charset=utf-8");
	// dispatch on the media type alone, not the raw header.
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	if ct == "application/json" {
		var req uploadRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error(), 0)
			return
		}
		if req.Generate == nil {
			writeError(w, http.StatusBadRequest, `JSON uploads need a "generate" object (or POST a Matrix Market body)`, 0)
			return
		}
		if req.Options != nil {
			fopt.TreeDepth = req.Options.TreeDepth
			fopt.MaxSupernode = req.Options.MaxSupernode
		}
		if !validGenName(req.Generate.Name) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown matrix analog %q (want one of %v)", req.Generate.Name, gen.SuiteNames()), 0)
			return
		}
		genKey = fmt.Sprintf("%s|%s|%d|%d", req.Generate.Name, gen.ParseScale(req.Generate.Scale),
			fopt.TreeDepth, fopt.MaxSupernode)
		if id, ok := s.genIDs.Load(genKey); ok {
			if h, ok := s.handles.get(id.(string), now); ok {
				s.metrics.uploads.With("reused").Inc()
				writeJSON(w, http.StatusOK, s.matrixInfo(h, true))
				return
			}
		}
		m := gen.Named(req.Generate.Name, gen.ParseScale(req.Generate.Scale))
		a, name = m.A, m.Name
	} else {
		raw, err := mtx.Read(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "matrix market parse: "+err.Error(), 0)
			return
		}
		a, name = raw.SymmetrizePattern(), "upload"
	}

	sys, err := core.Factorize(a, fopt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "factorize: "+err.Error(), 0)
		return
	}
	h, reused, evicted := s.handles.put(sys, name, now)
	if genKey != "" {
		s.genIDs.Store(genKey, h.ID)
	}
	if reused {
		s.metrics.uploads.With("reused").Inc()
	} else {
		s.metrics.uploads.With("new").Inc()
	}
	for i := 0; i < evicted; i++ {
		s.metrics.uploads.With("evicted").Inc()
	}
	code := http.StatusCreated
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, s.matrixInfo(h, reused))
}

func validGenName(name string) bool {
	for _, n := range gen.SuiteNames() {
		if n == name {
			return true
		}
	}
	return false
}

func (s *Server) matrixInfo(h *Handle, reused bool) matrixInfo {
	return matrixInfo{
		Handle: h.ID, Fingerprint: h.Fingerprint, Name: h.Name,
		N: h.N, NNZ: h.NNZ, Configs: h.Configs(), Reused: reused,
	}
}

// ---- handle inspection ----

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	hs := s.handles.list()
	infos := make([]matrixInfo, len(hs))
	for i, h := range hs {
		infos[i] = s.matrixInfo(h, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"matrices": infos, "count": len(infos)})
}

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	h, ok := s.handles.get(r.PathValue("id"), s.clock.Now())
	if !ok {
		writeError(w, http.StatusNotFound, "no such handle", 0)
		return
	}
	writeJSON(w, http.StatusOK, s.matrixInfo(h, false))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.handles.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such handle", 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.admit.isDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status, "queue_depth": s.admit.depth(), "handles": s.handles.len(),
	})
}

// ---- solve path ----

// requestID returns the client's X-Request-ID when it is well-formed
// (1–64 chars of [A-Za-z0-9._:-]) or a server-assigned sequential ID.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
}

func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	t0 := s.clock.Now()
	reqID := s.requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	tc := reqtrace.New(reqID, tenant, t0)

	h, ok := s.handles.get(r.PathValue("id"), t0)
	if !ok {
		writeError(w, http.StatusNotFound, "no such handle", 0)
		return
	}
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.metrics.requests.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error(), 0)
		return
	}
	if len(req.B) != h.N {
		s.metrics.requests.With("invalid").Inc()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("rhs has %d entries, matrix has %d rows", len(req.B), h.N), 0)
		return
	}
	b := sparse.NewPanel(h.N, 1)
	copy(b.Col(0), req.B)
	if row, _, v, bad := b.FindNonFinite(); bad {
		s.metrics.requests.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("rhs entry %d is %v", row, v), 0)
		return
	}
	tc.SetAttr("handle", h.ID)
	tc.Span("decode", t0, s.clock.Now(), nil)

	// Admission comes before config resolution: resolving a config can run
	// the autotuner and solverFor builds a full distribution plan, so an
	// over-quota or shed client must be turned away before it can force
	// that work (and grow the per-handle slot map).
	verdict, retryAfter := s.admit.admit(tenant)
	if verdict != admitOK {
		s.finishShed(tc, verdict)
		switch verdict {
		case admitDraining:
			writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
		case admitQuota:
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over quota", tenant), retryAfter)
		case admitQueueFull:
			writeError(w, http.StatusTooManyRequests, "request queue full", s.opts.MaxWait)
		}
		return
	}
	enq := s.clock.Now()

	cfg, err := s.resolveConfig(h, req.Config)
	if err != nil {
		s.admit.release()
		s.metrics.requests.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	slot, key, err := s.solverFor(h, cfg)
	if err != nil {
		s.admit.release()
		s.metrics.requests.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tc.SetAttr("config", key)

	rq := &request{
		b: b, faults: faultPlan(req.Fault), enq: enq, done: make(chan result, 1),
		tc: tc, wantTrace: r.Header.Get("X-Trace") != "",
	}
	slot.coal.add(rq)

	select {
	case res := <-rq.done:
		if res.err != nil {
			// Everything the client controls — rhs shape and finiteness,
			// config validity — was vetted before the request reached a
			// coalescer, so a failure here is the solve itself (injected
			// fault or internal error): a server-side 500, never a 400.
			writeError(w, http.StatusInternalServerError, res.err.Error(), 0)
			s.finishRecord(tc, res, "fault", res.err.Error())
			return
		}
		encStart := s.clock.Now()
		writeJSON(w, http.StatusOK, solveResponse{
			X: res.x.Col(0), Handle: h.ID, Config: key, Tenant: tenant,
			BatchWidth: res.width, PanelWidth: res.panelWidth,
			QueueWaitS: res.queueWait, SolveS: res.solveTime, MakespanS: res.makespanS,
			RefinePasses: res.refinePasses, StaleSupernodes: res.staleSn, Residual: res.residual,
		})
		tc.Span("encode", encStart, s.clock.Now(), nil)
		s.finishRecord(tc, res, "ok", "")
	case <-r.Context().Done():
		// Client gone; the flush still completes and the coalescer settles
		// the admission accounting (the buffered done channel means the
		// abandoned send cannot block it). Nothing useful can be written —
		// but the record notes the abandonment for /debug/requests.
		s.metrics.requests.With("canceled").Inc()
		s.store.Add(tc.Finish("canceled", "client disconnected before the response", s.clock.Now()))
	}
}

// finishShed records a shed request: the latency histogram's shed outcome
// (so load shedding stays visible in the latency accounting) and a
// /debug/requests record naming the shed reason.
func (s *Server) finishShed(tc *reqtrace.Ctx, verdict admitVerdict) {
	now := s.clock.Now()
	total := now.Sub(tc.Start).Seconds()
	s.metrics.reqShed.ObserveExemplar(total, metrics.Exemplar{
		LabelKey: "request_id", LabelValue: tc.ID,
		Value: total, Ts: clockTs(now),
	})
	reason := map[admitVerdict]string{
		admitDraining:  "server draining",
		admitQuota:     "tenant over quota",
		admitQueueFull: "request queue full",
	}[verdict]
	s.store.Add(tc.Finish("shed", reason, now))
}

// finishRecord stores the request's final record, replacing any snapshot
// the coalescer's flight capture already stored for the same ID.
func (s *Server) finishRecord(tc *reqtrace.Ctx, res result, outcome, errMsg string) {
	rec := tc.Finish(outcome, errMsg, s.clock.Now())
	rec.BatchWidth = res.width
	rec.RefinePasses = res.refinePasses
	rec.TraceEvents = res.traceEvents
	rec.TraceDropped = res.traceDropped
	s.store.Add(rec)
}

// clockTs renders a clock time as a unix-seconds exemplar timestamp,
// clamping the pre-epoch instants a fake test clock can produce to 0
// (rendered as "no timestamp" in the exposition).
func clockTs(t time.Time) float64 {
	ts := float64(t.UnixNano()) / 1e9
	if ts < 0 {
		return 0
	}
	return ts
}

// faultPlan converts the wire chaos spec into a fault.Plan (nil when absent).
func faultPlan(wf *wireFault) *fault.Plan {
	if wf == nil {
		return nil
	}
	p := &fault.Plan{Seed: wf.Seed, Jitter: wf.Jitter}
	if wf.CrashRank != nil {
		p.Crash = map[int]float64{*wf.CrashRank: wf.CrashAt}
	}
	if wf.StragglerRank != nil {
		p.Straggler = map[int]float64{*wf.StragglerRank: wf.StragglerFactor}
	}
	return p
}

// resolveConfig maps the optional wire config onto a validated core.Config,
// falling back to the handle's default (fixed or autotuned) configuration.
func (s *Server) resolveConfig(h *Handle, wc *wireConfig) (core.Config, error) {
	if wc == nil {
		return s.defaultConfig(h)
	}
	cfg := core.Config{
		Machine: s.opts.Machine, Exec: s.opts.Exec,
		Mode: s.opts.Mode, Staleness: s.opts.Staleness,
		RefineTol: s.opts.RefineTol, RefineMax: s.opts.RefineMax,
	}
	var err error
	if wc.Algorithm != "" {
		if cfg.Algorithm, err = cliutil.ParseAlgorithm(wc.Algorithm); err != nil {
			return core.Config{}, err
		}
	}
	if wc.Trees != "" {
		if cfg.Trees, err = cliutil.ParseTrees(wc.Trees); err != nil {
			return core.Config{}, err
		}
	}
	if wc.Exec != "" {
		if cfg.Exec, err = cliutil.ParseExec(wc.Exec); err != nil {
			return core.Config{}, err
		}
	}
	if wc.Machine != "" {
		if cfg.Machine, err = cliutil.ParseMachine(wc.Machine); err != nil {
			return core.Config{}, err
		}
	}
	if wc.Mode != "" {
		if cfg.Mode, err = cliutil.ParseSolveMode(wc.Mode); err != nil {
			return core.Config{}, err
		}
	}
	if wc.Staleness != nil {
		cfg.Staleness = *wc.Staleness
	}
	if wc.RefineTol != nil {
		cfg.RefineTol = *wc.RefineTol
	}
	if wc.RefineMax != nil {
		cfg.RefineMax = *wc.RefineMax
	}
	if cfg.Mode.Resolve() == trsv.ModeElastic && cfg.Staleness <= 0 {
		return core.Config{}, fmt.Errorf("elastic mode requires staleness > 0, got %d", cfg.Staleness)
	}
	cfg.Layout = grid.Layout{Px: wc.Px, Py: wc.Py, Pz: wc.Pz}
	if cfg.Layout.Px == 0 && cfg.Layout.Py == 0 && cfg.Layout.Pz == 0 {
		px, py := grid.Square2D(s.opts.Ranks)
		cfg.Layout = grid.Layout{Px: px, Py: py, Pz: 1}
	}
	// Bound the modeled rank count before any plan is built: grid.Layout
	// itself accepts arbitrarily large grids, and plan size grows with the
	// layout, so an unchecked Px/Py/Pz is a memory amplification vector.
	// Each dimension is checked on its own so the product cannot overflow.
	if cfg.Layout.Px > maxLayoutRanks || cfg.Layout.Py > maxLayoutRanks ||
		cfg.Layout.Pz > maxLayoutRanks || cfg.Layout.Size() > maxLayoutRanks {
		return core.Config{}, fmt.Errorf("layout %dx%dx%d exceeds the server's %d-rank cap",
			cfg.Layout.Px, cfg.Layout.Py, cfg.Layout.Pz, maxLayoutRanks)
	}
	if err := core.ValidateConfig(h.sys, cfg); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// defaultConfig resolves (once per handle) the configuration solves use
// when the request names none: the fixed paper default, or the autotuned
// choice when Options.Tune is set — with the tuned-config cache making the
// search a once-per-fingerprint cost.
func (s *Server) defaultConfig(h *Handle) (core.Config, error) {
	v, _ := s.defaults.LoadOrStore(h.ID, &defaultSlot{})
	slot := v.(*defaultSlot)
	slot.once.Do(func() {
		if s.opts.Tune {
			res, err := tune.Run(h.sys, s.opts.Machine, s.opts.Ranks,
				tune.Options{Cache: s.tuneCache})
			if err == nil {
				slot.cfg = res.Config
				slot.cfg.Exec = s.opts.Exec
				slot.cfg.Mode = s.opts.Mode
				slot.cfg.Staleness = s.opts.Staleness
				slot.cfg.RefineTol = s.opts.RefineTol
				slot.cfg.RefineMax = s.opts.RefineMax
				return
			}
			slot.err = err
			return
		}
		px, py := grid.Square2D(s.opts.Ranks)
		slot.cfg = core.Config{
			Layout:    grid.Layout{Px: px, Py: py, Pz: 1},
			Algorithm: trsv.Proposed3D,
			Machine:   s.opts.Machine,
			Exec:      s.opts.Exec,
			Mode:      s.opts.Mode,
			Staleness: s.opts.Staleness,
			RefineTol: s.opts.RefineTol,
			RefineMax: s.opts.RefineMax,
		}
		slot.err = core.ValidateConfig(h.sys, slot.cfg)
	})
	return slot.cfg, slot.err
}

// solverFor returns the handle's built solver slot for cfg, building the
// plan + solver + coalescer exactly once per configuration key. The
// per-handle slot map is LRU-bounded at maxSlotsPerHandle.
func (s *Server) solverFor(h *Handle, cfg core.Config) (*solverSlot, string, error) {
	key := configKey(cfg)
	slot, slotEvicted := h.slot(key, s.clock.Now())
	if slotEvicted {
		s.metrics.solvers.With("evicted").Inc()
	}
	built := false
	slot.once.Do(func() {
		built = true
		cfg.Backend = s.opts.Backend
		slot.config = cfg
		slot.solver, slot.err = core.NewSolver(h.sys, cfg)
		if slot.err == nil {
			slot.coal = newCoalescer(s, slot.solver)
		}
	})
	if built {
		s.metrics.solvers.With("miss").Inc()
	} else {
		s.metrics.solvers.With("hit").Inc()
	}
	if slot.err != nil {
		return nil, key, slot.err
	}
	return slot, key, nil
}
