package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// handleShards is the shard count of the handle cache. Shards cut lock
// contention between concurrent uploads, solves, and scrapes; the count is
// a power of two so the shard index is a mask.
const handleShards = 16

// Handle is one uploaded (or generated) factored matrix: the upload-once
// half of the upload-once/solve-many API. It owns the factored System and
// a per-configuration cache of built solvers — plan, cached level
// schedule, and coalescer — so every symbolic and scheduling cost is paid
// once per (matrix fingerprint × machine × grid × algorithm) and then
// shared by every request that names the handle.
type Handle struct {
	ID          string // "m-" + content-hash digest; stable across uploads
	Fingerprint string // core fingerprint: n, nnz(LU), supernodes, depth
	Name        string // matrix name for generated analogs, "upload" else
	N, NNZ      int

	sys *core.System

	mu      sync.Mutex
	slots   map[string]*solverSlot
	lastUse time.Time
}

// solverSlot is the build-once cell for one configuration of a handle.
type solverSlot struct {
	once    sync.Once
	config  core.Config
	solver  *core.Solver
	coal    *coalescer
	err     error
	lastUse time.Time // guarded by the owning Handle's mu
}

// System exposes the factored system (read-only) for verification paths.
func (h *Handle) System() *core.System { return h.sys }

// Configs returns the cache keys of the solver configurations built so far.
func (h *Handle) Configs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make([]string, 0, len(h.slots))
	for k := range h.slots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// touch refreshes the handle's LRU clock.
func (h *Handle) touch(now time.Time) {
	h.mu.Lock()
	h.lastUse = now
	h.mu.Unlock()
}

// maxSlotsPerHandle bounds the per-handle solver-slot map. Each slot holds
// a built plan and schedule (O(nnz) memory), so a client streaming distinct
// configurations must displace old slots rather than grow the map without
// bound. In-flight solves holding an evicted slot finish normally — the
// eviction only unlinks it from the map.
const maxSlotsPerHandle = 32

// slot returns the (possibly new, not yet built) solver slot for key,
// refreshing its LRU position. When creating the slot would exceed
// maxSlotsPerHandle, the least-recently-used slot is evicted first.
func (h *Handle) slot(key string, now time.Time) (sl *solverSlot, evicted bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sl, ok := h.slots[key]
	if !ok {
		if len(h.slots) >= maxSlotsPerHandle {
			h.evictSlotLocked()
			evicted = true
		}
		sl = &solverSlot{}
		h.slots[key] = sl
	}
	sl.lastUse = now
	return sl, evicted
}

// evictSlotLocked removes the least-recently-used slot. Caller holds h.mu.
func (h *Handle) evictSlotLocked() {
	var victimKey string
	var victim *solverSlot
	for k, sl := range h.slots {
		if victim == nil || sl.lastUse.Before(victim.lastUse) {
			victimKey, victim = k, sl
		}
	}
	delete(h.slots, victimKey)
}

// ContentHash digests a matrix's full content — dimension, nonzero
// pattern, and numeric values — into a hex SHA-256. This, not the
// structural fingerprint, is what identifies a handle: two matrices with
// the same sparsity aggregates (or even the same pattern) but different
// values must not alias, or a solve against one would silently return the
// other's solution. The lossy core fingerprint stays the key of the
// plan/tune caches, where only structure matters.
func ContentHash(a *sparse.CSR) string {
	d := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.Write(buf[:])
	}
	word(uint64(a.N))
	for _, p := range a.RowPtr {
		word(uint64(p))
	}
	for _, c := range a.ColInd {
		word(uint64(c))
	}
	for _, v := range a.Val {
		word(math.Float64bits(v))
	}
	return hex.EncodeToString(d.Sum(nil))
}

// HandleID derives the public handle identifier from a matrix content
// hash: a short digest, so the same matrix uploaded twice (by anyone)
// lands on the same handle without the server storing the matrix bytes.
func HandleID(contentHash string) string {
	sum := sha256.Sum256([]byte(contentHash))
	return "m-" + hex.EncodeToString(sum[:])[:12]
}

// handleCache is the sharded, bounded handle store. Lookups touch only one
// shard; the LRU eviction scan (rare: only on insert beyond capacity)
// walks all shards.
type handleCache struct {
	max    int
	shards [handleShards]struct {
		sync.Mutex
		handles map[string]*Handle
	}

	mu    sync.Mutex // guards count across insert/evict/remove
	count int
}

func newHandleCache(max int) *handleCache {
	if max < 1 {
		max = 1
	}
	c := &handleCache{max: max}
	for i := range c.shards {
		c.shards[i].handles = map[string]*Handle{}
	}
	return c
}

// shardOf picks the shard for an id (FNV-1a over the id bytes).
func (c *handleCache) shardOf(id string) *struct {
	sync.Mutex
	handles map[string]*Handle
} {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &c.shards[h&(handleShards-1)]
}

// get looks up a handle, refreshing its LRU position.
func (c *handleCache) get(id string, now time.Time) (*Handle, bool) {
	sh := c.shardOf(id)
	sh.Lock()
	h, ok := sh.handles[id]
	sh.Unlock()
	if ok {
		h.touch(now)
	}
	return h, ok
}

// put inserts a factored system, deduplicating by content hash: a
// re-upload of a matrix the cache already holds (same pattern AND same
// values) returns the existing handle with reused=true and costs nothing
// beyond the factorization the caller already did. Inserting beyond
// capacity evicts the least-recently-used handle (evicted reports how
// many, for the metrics).
func (c *handleCache) put(sys *core.System, name string, now time.Time) (h *Handle, reused bool, evicted int) {
	id := HandleID(ContentHash(sys.A))
	sh := c.shardOf(id)
	sh.Lock()
	if h, ok := sh.handles[id]; ok {
		sh.Unlock()
		h.touch(now)
		return h, true, 0
	}
	h = &Handle{
		ID: id, Fingerprint: sys.Fingerprint(), Name: name,
		N: sys.A.N, NNZ: sys.A.NNZ(),
		sys: sys, slots: map[string]*solverSlot{}, lastUse: now,
	}
	sh.handles[id] = h
	sh.Unlock()

	c.mu.Lock()
	c.count++
	over := c.count - c.max
	c.mu.Unlock()
	for ; over > 0; over-- {
		if !c.evictLRU(id) {
			break
		}
		evicted++
	}
	return h, false, evicted
}

// evictLRU removes the least-recently-used handle, never the one named
// keep (the insert that triggered the eviction).
func (c *handleCache) evictLRU(keep string) bool {
	var victim *Handle
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		for _, h := range sh.handles {
			if h.ID == keep {
				continue
			}
			h.mu.Lock()
			use := h.lastUse
			h.mu.Unlock()
			if victim == nil || use.Before(victimUse(victim)) {
				victim = h
			}
		}
		sh.Unlock()
	}
	if victim == nil {
		return false
	}
	return c.remove(victim.ID)
}

func victimUse(h *Handle) time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastUse
}

// remove deletes a handle by id. In-flight solves holding the handle
// finish normally — removal only unlinks it from the cache.
func (c *handleCache) remove(id string) bool {
	sh := c.shardOf(id)
	sh.Lock()
	_, ok := sh.handles[id]
	delete(sh.handles, id)
	sh.Unlock()
	if ok {
		c.mu.Lock()
		c.count--
		c.mu.Unlock()
	}
	return ok
}

// list snapshots all handles, sorted by ID for a stable exposition.
func (c *handleCache) list() []*Handle {
	var hs []*Handle
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		for _, h := range sh.handles {
			hs = append(hs, h)
		}
		sh.Unlock()
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].ID < hs[j].ID })
	return hs
}

// len returns the current handle count.
func (c *handleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// configKey names one solver configuration the way the cache is keyed:
// matrix fingerprint is the handle; this adds machine × grid × algorithm
// (plus the execution knobs that change the built plan's schedule). The
// solve-mode segment keeps strict and elastic requests on separate slots —
// and therefore separate coalescers, so an elastic opt-in can never be
// batched into (or force staleness onto) a strict tenant's panel.
func configKey(cfg core.Config) string {
	mode := cfg.Mode.Resolve().String()
	if cfg.Mode.Resolve() == trsv.ModeElastic {
		mode = fmt.Sprintf("elastic:S=%d:tol=%g:max=%d", cfg.Staleness, cfg.RefineTol, cfg.RefineMax)
	}
	return fmt.Sprintf("%s|%dx%dx%d|%s|%s|%s|%s",
		cfg.Algorithm, cfg.Layout.Px, cfg.Layout.Py, cfg.Layout.Pz,
		cfg.Trees, cfg.Machine.Name, cfg.Exec.Resolve(), mode)
}
