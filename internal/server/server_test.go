package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/metrics"
	"sptrsv/internal/mtx"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// newHTTPServer builds a Server (fake clock, private registry unless the
// mod overrides) and mounts it on an httptest server.
func newHTTPServer(t *testing.T, mod func(*Options)) (*Server, *FakeClock, *httptest.Server) {
	t.Helper()
	fc := NewFakeClock()
	opts := Options{
		Ranks:    4,
		MaxBatch: 1, // flush each request immediately unless a test opts out
		MaxWait:  10 * time.Millisecond,
		Clock:    fc,
		Registry: metrics.NewRegistry(),
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, fc, ts
}

func postJSON(t *testing.T, url string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func uploadGenerated(t *testing.T, base, name, scale string) matrixInfo {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/matrices", map[string]any{
		"generate": map[string]string{"name": name, "scale": scale},
	}, nil)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, data)
	}
	var info matrixInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	return info
}

func TestUploadGenerateDedupAndInspect(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)

	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	if info.Handle == "" || info.N != 1024 || info.Reused {
		t.Fatalf("first upload: %+v", info)
	}
	again := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	if again.Handle != info.Handle || !again.Reused {
		t.Fatalf("re-upload did not reuse: %+v", again)
	}
	if s.Handles() != 1 {
		t.Fatalf("handle count = %d, want 1", s.Handles())
	}

	resp, data := get(t, ts.URL+"/v1/matrices/"+info.Handle)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET handle: %d: %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/v1/matrices")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), info.Handle) {
		t.Fatalf("list: %d: %s", resp.StatusCode, data)
	}

	resp, _ = get(t, ts.URL+"/v1/matrices/m-nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown handle: %d, want 404", resp.StatusCode)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestUploadMatrixMarketBody(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	var buf bytes.Buffer
	if err := mtx.Write(&buf, gen.S2D9pt(8, 8, 5)); err != nil {
		t.Fatalf("mtx.Write: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", &buf)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mtx upload: %d: %s", resp.StatusCode, data)
	}
	var info matrixInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.N != 64 || info.Name != "upload" {
		t.Fatalf("mtx upload info: %+v", info)
	}

	resp2, data2 := postJSONRaw(t, ts.URL+"/v1/matrices", "not a matrix", "text/plain")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d: %s", resp2.StatusCode, data2)
	}
}

func postJSONRaw(t *testing.T, url, body, ct string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, ct, strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// TestUploadSamePatternDifferentValues pins the fix for handle aliasing:
// uploading a second matrix with the same sparsity pattern (identical
// structural fingerprint) but different values must produce a fresh
// handle, not reuse the first one.
func TestUploadSamePatternDifferentValues(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)
	a := gen.S2D9pt(8, 8, 5)
	scaled := *a
	scaled.Val = append([]float64(nil), a.Val...)
	for i := range scaled.Val {
		scaled.Val[i] *= 3
	}

	upload := func(m *sparse.CSR) matrixInfo {
		var buf bytes.Buffer
		if err := mtx.Write(&buf, m); err != nil {
			t.Fatalf("mtx.Write: %v", err)
		}
		resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", &buf)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %d: %s", resp.StatusCode, data)
		}
		var info matrixInfo
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return info
	}
	first := upload(a)
	second := upload(&scaled)
	if first.Handle == second.Handle {
		t.Fatalf("different matrices share handle %s", first.Handle)
	}
	if second.Reused {
		t.Fatal("second upload reported reused")
	}
	if s.Handles() != 2 {
		t.Fatalf("handle count = %d, want 2", s.Handles())
	}

	// Each handle answers with its own matrix: x from the scaled system is
	// the unscaled solution divided by 3 (up to roundoff), never equal.
	b := make([]float64, first.N)
	for i := range b {
		b[i] = 1
	}
	solve := func(handle string) []float64 {
		resp, data := postJSON(t, ts.URL+"/v1/matrices/"+handle+"/solve", map[string]any{"b": b}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: %d: %s", handle, resp.StatusCode, data)
		}
		var sr solveResponse
		json.Unmarshal(data, &sr)
		return sr.X
	}
	x1, x2 := solve(first.Handle), solve(second.Handle)
	same := true
	for i := range x1 {
		if x1[i] != x2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("solves against distinct matrices returned identical solutions")
	}
}

// TestUploadJSONContentTypeWithCharset: "application/json; charset=utf-8"
// (many clients' default) must reach the JSON path, not the Matrix Market
// parser.
func TestUploadJSONContentTypeWithCharset(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	resp, data := postJSONRaw(t, ts.URL+"/v1/matrices",
		`{"generate":{"name":"s2d9pt","scale":"small"}}`, "application/json; charset=utf-8")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload with charset param: %d: %s", resp.StatusCode, data)
	}
	var info matrixInfo
	if err := json.Unmarshal(data, &info); err != nil || info.N != 1024 {
		t.Fatalf("upload response: %v %s", err, data)
	}
}

func TestSolveRoundtripBitIdentical(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")

	b := make([]float64, info.N)
	for i := range b {
		b[i] = 1 + float64(i%13)/7
	}
	resp, data := postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve",
		map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, data)
	}
	var sr solveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.BatchWidth != 1 || sr.Tenant != "default" {
		t.Fatalf("solve response meta: %+v", sr)
	}

	// Reference: the same default config solved directly through core.
	m := gen.Named("s2d9pt", gen.Small)
	sys, err := core.Factorize(m.A, core.FactorOptions{})
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	px, py := grid.Square2D(4)
	solver, err := core.NewSolver(sys, core.Config{
		Layout:    grid.Layout{Px: px, Py: py, Pz: 1},
		Algorithm: trsv.Proposed3D,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	bp := sparse.NewPanel(info.N, 1)
	copy(bp.Col(0), b)
	want, _, err := solver.Solve(bp)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	wc := want.Col(0)
	if len(sr.X) != len(wc) {
		t.Fatalf("x has %d entries, want %d", len(sr.X), len(wc))
	}
	for i := range wc {
		if sr.X[i] != wc[i] {
			t.Fatalf("x[%d] = %v over HTTP, %v direct", i, sr.X[i], wc[i])
		}
	}
}

func TestSolveValidation(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	resp, data := postJSON(t, solveURL, map[string]any{"b": []float64{1, 2, 3}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short rhs: %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSONRaw(t, solveURL, "{", "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d: %s", resp.StatusCode, data)
	}
	b := make([]float64, info.N)
	resp, data = postJSON(t, solveURL, map[string]any{
		"b": b, "config": map[string]any{"algorithm": "warp-drive"},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algorithm: %d: %s", resp.StatusCode, data)
	}
	// gpu-single on a CPU machine model is a config the validator rejects.
	resp, data = postJSON(t, solveURL, map[string]any{
		"b": b, "config": map[string]any{"algorithm": "gpu-single", "px": 1, "py": 1, "pz": 1},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/matrices/m-nope/solve", map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown handle solve: %d: %s", resp.StatusCode, data)
	}
}

func TestSolveNamedConfigUsesOwnSlot(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	for i := range b {
		b[i] = float64(i + 1)
	}
	resp, data := postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve", map[string]any{
		"b": b, "config": map[string]any{"algorithm": "baseline", "px": 2, "py": 2, "pz": 1, "trees": "binary"},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named-config solve: %d: %s", resp.StatusCode, data)
	}
	var sr solveResponse
	json.Unmarshal(data, &sr)
	if !strings.Contains(sr.Config, "2x2x1") {
		t.Fatalf("config key %q does not carry the grid", sr.Config)
	}
	// Default solve builds a second slot; both appear on the handle.
	postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve", map[string]any{"b": b}, nil)
	h, _ := s.handles.get(info.Handle, s.clock.Now())
	if got := len(h.Configs()); got != 2 {
		t.Fatalf("handle has %d configs (%v), want 2", got, h.Configs())
	}
	st := s.Stats()
	if st.SolverMisses != 2 {
		t.Fatalf("solver misses = %v, want 2", st.SolverMisses)
	}
}

func TestSolveQuota429(t *testing.T) {
	_, _, ts := newHTTPServer(t, func(o *Options) {
		o.QuotaRate = 0.5
		o.QuotaBurst = 1
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	resp, data := postJSON(t, solveURL, map[string]any{"b": b}, map[string]string{"X-Tenant": "acme"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, solveURL, map[string]any{"b": b}, map[string]string{"X-Tenant": "acme"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota solve: %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er errorResponse
	json.Unmarshal(data, &er)
	if er.RetryAfterS != 2 { // 1 token at 0.5/s
		t.Fatalf("retry_after_s = %v, want 2", er.RetryAfterS)
	}
	// Another tenant has its own bucket.
	resp, data = postJSON(t, solveURL, map[string]any{"b": b}, map[string]string{"X-Tenant": "other"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: %d: %s", resp.StatusCode, data)
	}
}

// TestShedRequestBuildsNoSolver pins admission-before-build: an over-quota
// request naming a never-seen configuration must be shed before any config
// resolution or plan construction, leaving no trace in the handle's slot
// map or the solver cache counters.
func TestShedRequestBuildsNoSolver(t *testing.T) {
	s, _, ts := newHTTPServer(t, func(o *Options) {
		o.QuotaRate = 0.001
		o.QuotaBurst = 1
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	resp, data := postJSON(t, solveURL, map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d: %s", resp.StatusCode, data)
	}
	// Over quota now; name a config whose slot does not exist yet.
	resp, data = postJSON(t, solveURL, map[string]any{
		"b": b, "config": map[string]any{"algorithm": "baseline", "px": 2, "py": 2, "pz": 1},
	}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota solve: %d: %s", resp.StatusCode, data)
	}
	h, _ := s.handles.get(info.Handle, s.clock.Now())
	if got := len(h.Configs()); got != 1 {
		t.Fatalf("shed request grew the slot map to %d configs (%v), want 1", got, h.Configs())
	}
	if st := s.Stats(); st.SolverMisses != 1 {
		t.Fatalf("solver misses = %v after shed request, want 1", st.SolverMisses)
	}
}

// TestInvalidConfigReleasesAdmission: a request rejected after admission
// (bad config) must return its queue and inflight slots, or rejected
// requests would clog the bounded queue.
func TestInvalidConfigReleasesAdmission(t *testing.T) {
	s, _, ts := newHTTPServer(t, func(o *Options) { o.MaxQueue = 1 })
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	for i := 0; i < 3; i++ { // more rejections than queue slots
		resp, data := postJSON(t, solveURL, map[string]any{
			"b": b, "config": map[string]any{"algorithm": "gpu-single", "px": 1, "py": 1, "pz": 1},
		}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("invalid config %d: %d: %s", i, resp.StatusCode, data)
		}
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after rejected requests, want 0", d)
	}
	// The released slots still admit a real solve.
	resp, data := postJSON(t, solveURL, map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after rejections: %d: %s", resp.StatusCode, data)
	}
}

// TestLayoutRankCap: a client cannot force an arbitrarily large plan build
// by naming a huge grid; oversized layouts are rejected before any plan
// construction, including products that would overflow.
func TestLayoutRankCap(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	for _, layout := range []map[string]any{
		{"px": 100000, "py": 1, "pz": 1},
		{"px": 3037000500, "py": 3037000500, "pz": 1}, // product overflows int64
		{"px": 65, "py": 64, "pz": 1},                 // 4160 > 4096 via the product
	} {
		cfg := map[string]any{"algorithm": "proposed"}
		for k, v := range layout {
			cfg[k] = v
		}
		resp, data := postJSON(t, solveURL, map[string]any{"b": b, "config": cfg}, nil)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "rank cap") {
			t.Fatalf("layout %v: %d: %s", layout, resp.StatusCode, data)
		}
	}
}

// TestInjectedFaultReturns500: a solve failing from injected chaos is a
// server-side failure (500), never a client error.
func TestInjectedFaultReturns500(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	resp, data := postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve", map[string]any{
		"b": b, "fault": map[string]any{"crash_rank": 1, "crash_at": 0},
	}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted solve: %d: %s", resp.StatusCode, data)
	}
}

// waitFor spins (yielding) until cond holds; it fails the test if the
// condition never becomes true. No timing assumption — just scheduling.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
		if i%10_000 == 9_999 {
			time.Sleep(time.Millisecond) // let blocked goroutines run under GOMAXPROCS=1
		}
	}
	t.Fatalf("condition never held: %s", what)
}

func TestQueueFullShedsAndShutdownDrains(t *testing.T) {
	s, _, ts := newHTTPServer(t, func(o *Options) {
		o.MaxQueue = 1
		o.MaxBatch = 8
		o.MaxWait = time.Hour // only drain can flush
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	// First request parks in the coalescer, holding the only queue slot.
	type reply struct {
		code int
		body []byte
	}
	first := make(chan reply, 1)
	go func() {
		resp, data := postJSON(t, solveURL, map[string]any{"b": b}, nil)
		first <- reply{resp.StatusCode, data}
	}()
	waitFor(t, "first request admitted", func() bool { return s.QueueDepth() == 1 })

	resp, data := postJSON(t, solveURL, map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full solve: %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}

	// Graceful shutdown: the parked request completes, not gets dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("parked request after drain: %d: %s", r.code, r.body)
	}

	resp, data = postJSON(t, solveURL, map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: %d: %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/healthz")
	if !strings.Contains(string(data), "draining") {
		t.Fatalf("healthz while draining: %s", data)
	}
	st := s.Stats()
	if st.ShedQueueFull != 1 || st.ShedDraining != 1 || st.OK != 1 {
		t.Fatalf("stats = %+v, want 1 queue_full, 1 draining, 1 ok", st)
	}
}

func TestHandleLRUEvictionAndDelete(t *testing.T) {
	s, _, ts := newHTTPServer(t, func(o *Options) { o.MaxHandles = 1 })
	a := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	bInfo := uploadGenerated(t, ts.URL, "gaas", "small")
	if s.Handles() != 1 {
		t.Fatalf("handle count = %d after eviction, want 1", s.Handles())
	}
	resp, _ := get(t, ts.URL+"/v1/matrices/"+a.Handle)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted handle still present: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/matrices/"+bInfo.Handle, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	if s.Handles() != 0 {
		t.Fatalf("handle count = %d after delete, want 0", s.Handles())
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("re-delete: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete: %d, want 404", resp2.StatusCode)
	}
}

func TestMetricsEndpointExposesServerFamilies(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve", map[string]any{"b": b}, nil)

	resp, data := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"sptrsv_server_batch_width", "sptrsv_server_queue_wait_seconds",
		"sptrsv_server_solve_seconds", "sptrsv_server_requests",
		"sptrsv_server_admission", "sptrsv_server_handle_uploads",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestServerStressRace is the -race stress group scripts/check.sh runs:
// concurrent solving clients × /metrics scrapes × handle churn, on the real
// clock so coalescer timers genuinely race max-batch flushes.
func TestServerStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s, _, ts := newHTTPServer(t, func(o *Options) {
		o.Clock = RealClock()
		o.MaxBatch = 4
		o.MaxWait = 200 * time.Microsecond
		o.MaxHandles = 2
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	for i := range b {
		b[i] = float64(i%17) + 0.5
	}
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	const clients, perClient = 6, 15
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient+64)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%3)
			retries := 0
			for i := 0; i < perClient; i++ {
				resp, data := postJSON(t, solveURL, map[string]any{"b": b},
					map[string]string{"X-Tenant": tenant})
				if resp.StatusCode == http.StatusNotFound && retries < 8 {
					// The churn goroutine can evict our handle between two
					// of our lookups (MaxHandles is 2). Real clients
					// re-upload — content-hash identity revives the same
					// handle — and retry the solve.
					retries++
					uploadGenerated(t, ts.URL, "s2d9pt", "small")
					i--
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d solve %d: %d: %s", c, i, resp.StatusCode, data)
					return
				}
			}
		}()
	}
	// Scraper: hammer /metrics and the handle list during the solves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			get(t, ts.URL+"/metrics")
			get(t, ts.URL+"/v1/matrices")
		}
	}()
	// Churn: upload/evict other handles concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			uploadGenerated(t, ts.URL, "gaas", "small")
			uploadGenerated(t, ts.URL, "s1mat", "small")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.OK != clients*perClient {
		t.Fatalf("ok = %v, want %d", st.OK, clients*perClient)
	}
}
