package server

import (
	"testing"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/gen"
)

// TestPutDistinguishesValuesWithSamePattern pins the handle-identity
// contract: two matrices with identical sparsity pattern (hence identical
// structural fingerprint) but different numeric values must get distinct
// handles — aliasing them would silently answer solves against the wrong
// matrix.
func TestPutDistinguishesValuesWithSamePattern(t *testing.T) {
	a := gen.S2D9pt(8, 8, 5)
	scaled := *a
	scaled.Val = append([]float64(nil), a.Val...)
	for i := range scaled.Val {
		scaled.Val[i] *= 2
	}

	sysA, err := core.Factorize(a, core.FactorOptions{TreeDepth: 2})
	if err != nil {
		t.Fatalf("Factorize a: %v", err)
	}
	sysB, err := core.Factorize(&scaled, core.FactorOptions{TreeDepth: 2})
	if err != nil {
		t.Fatalf("Factorize scaled: %v", err)
	}
	if sysA.Fingerprint() != sysB.Fingerprint() {
		t.Fatalf("test premise broken: structural fingerprints differ (%q vs %q)",
			sysA.Fingerprint(), sysB.Fingerprint())
	}
	if ContentHash(sysA.A) == ContentHash(sysB.A) {
		t.Fatal("ContentHash ignores numeric values")
	}

	c := newHandleCache(8)
	now := time.Unix(0, 0)
	hA, reused, _ := c.put(sysA, "a", now)
	if reused {
		t.Fatal("first put reported reused")
	}
	hB, reused, _ := c.put(sysB, "b", now)
	if reused {
		t.Fatal("different values deduplicated onto the first handle")
	}
	if hA.ID == hB.ID {
		t.Fatalf("handles alias: %s", hA.ID)
	}
	// A true re-upload (same content) still dedups.
	hA2, reused, _ := c.put(sysA, "a", now)
	if !reused || hA2.ID != hA.ID {
		t.Fatalf("identical re-upload not reused (reused=%v id=%s want %s)", reused, hA2.ID, hA.ID)
	}
}

// TestHandleSlotLRUBound pins the per-handle slot cap: streaming distinct
// configuration keys may never grow the slot map past maxSlotsPerHandle,
// and the displaced slot is the least recently used one.
func TestHandleSlotLRUBound(t *testing.T) {
	h := &Handle{slots: map[string]*solverSlot{}}
	base := time.Unix(0, 0)
	for i := 0; i < maxSlotsPerHandle; i++ {
		if _, evicted := h.slot(string(rune('a'+i%26))+string(rune('A'+i/26)), base.Add(time.Duration(i)*time.Second)); evicted {
			t.Fatalf("eviction while filling slot %d of %d", i, maxSlotsPerHandle)
		}
	}
	// Refresh the oldest key so the second-oldest becomes the LRU victim.
	oldest, second := "aA", "bA"
	h.slot(oldest, base.Add(time.Hour))

	sl, evicted := h.slot("zZ-new", base.Add(2*time.Hour))
	if !evicted {
		t.Fatal("insert beyond the cap did not evict")
	}
	if sl == nil || len(h.slots) != maxSlotsPerHandle {
		t.Fatalf("slot map has %d entries, want %d", len(h.slots), maxSlotsPerHandle)
	}
	if _, ok := h.slots[second]; ok {
		t.Fatalf("LRU slot %q survived the eviction", second)
	}
	if _, ok := h.slots[oldest]; !ok {
		t.Fatalf("recently refreshed slot %q was evicted", oldest)
	}
}
