package server

import (
	"errors"
	"math"
	"sync"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/sparse"
)

// request is one admitted single-RHS solve riding the coalescer. Its done
// channel (buffered, capacity 1) receives exactly one result; the HTTP
// handler may abandon it on client disconnect without leaking the flush
// goroutine.
type request struct {
	b      *sparse.Panel // n×1 right-hand side, already validated finite
	faults *fault.Plan   // optional per-request chaos injection
	enq    time.Time     // admission time (Clock time)
	done   chan result
}

// result is what a request gets back from its flush.
type result struct {
	x          *sparse.Panel // n×1 solution (nil on error)
	err        error
	width      int     // requests in the flush this request rode in
	queueWait  float64 // seconds from admission to solve start
	solveTime  float64 // seconds the batch solve took (shared by the flush)
	makespanS  float64 // modeled/wall makespan of this request's panel solve
	totalTime  float64 // seconds from admission to result ready
	panelWidth int     // columns of the panel this request was merged into

	// Elastic-mode outcome (zero under strict solves).
	refinePasses int
	staleSn      int
	residual     float64 // verified ‖b−Ax‖∞ when refinement ran
}

// coalescer batches concurrent single-RHS requests against one
// (handle, config) pair into multi-RHS panel solves: requests accumulate
// until the batch reaches the server's max-batch size or the oldest
// request has waited max-wait, then the whole batch flushes as one
// SolveBatch call. Clean requests are merged into a single panel of
// batch-width columns — the paper's nrhs amortization, one communication
// schedule for the whole panel — while requests carrying a fault plan get
// their own panel so the injected failure stays theirs alone
// (core.SolveBatchFaulted + BatchError split the outcomes back out).
type coalescer struct {
	s      *Server
	solver *core.Solver

	mu      sync.Mutex
	pending []*request
	timer   Timer
	gen     uint64 // flush generation; stale timer callbacks no-op
}

func newCoalescer(s *Server, solver *core.Solver) *coalescer {
	return &coalescer{s: s, solver: solver}
}

// add enqueues one admitted request, arming the max-wait timer on the
// first request of a batch and flushing immediately at max-batch.
func (c *coalescer) add(r *request) {
	c.mu.Lock()
	c.pending = append(c.pending, r)
	if len(c.pending) == 1 {
		gen := c.gen
		c.timer = c.s.clock.AfterFunc(c.s.opts.MaxWait, func() { c.timerFlush(gen) })
	}
	if len(c.pending) >= c.s.opts.MaxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.s.metrics.flushes.With("full").Inc()
		go c.run(batch)
		return
	}
	c.mu.Unlock()
}

// timerFlush is the max-wait flush path. gen guards against the race where
// the timer concurrently loses to a max-batch flush: a stale generation
// means this timer's batch already flushed and the pending requests (if
// any) belong to a newer batch with its own timer.
func (c *coalescer) timerFlush(gen uint64) {
	c.mu.Lock()
	if gen != c.gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.s.metrics.flushes.With("timer").Inc()
	go c.run(batch)
}

// drain flushes whatever is pending right now (shutdown path). It returns
// how many requests it flushed.
func (c *coalescer) drain() int {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return 0
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.s.metrics.flushes.With("drain").Inc()
	go c.run(batch)
	return len(batch)
}

// takeLocked claims the pending batch, bumps the generation, and disarms
// the timer. Caller holds c.mu.
func (c *coalescer) takeLocked() []*request {
	batch := c.pending
	c.pending = nil
	c.gen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// run executes one flushed batch: group requests into panels, solve them
// as one SolveBatch, split results (and errors) back out per request.
func (c *coalescer) run(batch []*request) {
	s := c.s
	start := s.clock.Now()
	s.admit.dequeue(len(batch))
	s.metrics.batchWidth.Observe(float64(len(batch)))

	// Group: clean requests merge into one multi-RHS panel; each faulted
	// request keeps a private panel so its injection cannot leak onto
	// neighbors.
	var clean []int
	panels := []*sparse.Panel{}
	plans := []*fault.Plan{}
	owners := [][]int{} // request indices per panel, in column order
	for i, r := range batch {
		if r.faults == nil {
			clean = append(clean, i)
			continue
		}
		panels = append(panels, r.b)
		plans = append(plans, r.faults)
		owners = append(owners, []int{i})
	}
	if len(clean) == 1 {
		panels = append(panels, batch[clean[0]].b)
		plans = append(plans, nil)
		owners = append(owners, []int{clean[0]})
	} else if len(clean) > 1 {
		n := batch[clean[0]].b.Rows
		merged := sparse.NewPanel(n, len(clean))
		for j, i := range clean {
			copy(merged.Col(j), batch[i].b.Col(0))
		}
		panels = append(panels, merged)
		plans = append(plans, nil)
		owners = append(owners, clean)
	}

	xs, reps, err := c.solver.SolveBatchFaulted(panels, plans)
	perPanel := make([]error, len(panels))
	if err != nil {
		var be *core.BatchError
		if errors.As(err, &be) && len(be.Errs) == len(panels) {
			copy(perPanel, be.Errs)
		} else {
			for i := range perPanel {
				perPanel[i] = err
			}
		}
	}

	end := s.clock.Now()
	solveDur := end.Sub(start).Seconds()
	for p, reqs := range owners {
		for j, i := range reqs {
			r := batch[i]
			res := result{
				width:      len(batch),
				panelWidth: len(reqs),
				queueWait:  start.Sub(r.enq).Seconds(),
				solveTime:  solveDur,
				totalTime:  end.Sub(r.enq).Seconds(),
			}
			if perPanel[p] != nil {
				res.err = perPanel[p]
				s.metrics.requests.With("fault").Inc()
			} else {
				if len(reqs) == 1 {
					res.x = xs[p]
				} else {
					x := sparse.NewPanel(r.b.Rows, 1)
					copy(x.Col(0), xs[p].Col(j))
					res.x = x
				}
				if reps[p] != nil {
					res.makespanS = reps[p].Time
					res.refinePasses = reps[p].RefinePasses
					res.staleSn = reps[p].StaleSupernodes
					// Strict reports carry NaN (unverified) — which
					// encoding/json cannot marshal — so only elastic solves'
					// verified residuals reach the wire.
					if !math.IsNaN(reps[p].Residual) {
						res.residual = reps[p].Residual
					}
				}
				s.metrics.requests.With("ok").Inc()
			}
			s.metrics.queueWait.Observe(res.queueWait)
			s.metrics.solveTime.Observe(res.solveTime)
			s.metrics.reqTime.Observe(res.totalTime)
			r.done <- res
			s.admit.finish()
		}
	}
}
