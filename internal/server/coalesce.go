package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/metrics"
	"sptrsv/internal/reqtrace"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// request is one admitted single-RHS solve riding the coalescer. Its done
// channel (buffered, capacity 1) receives exactly one result; the HTTP
// handler may abandon it on client disconnect without leaking the flush
// goroutine.
type request struct {
	b      *sparse.Panel // n×1 right-hand side, already validated finite
	faults *fault.Plan   // optional per-request chaos injection
	enq    time.Time     // admission time (Clock time)
	done   chan result

	tc        *reqtrace.Ctx // request trace context (nil in low-level tests)
	wantTrace bool          // client armed full runtime tracing (X-Trace)
}

// result is what a request gets back from its flush.
type result struct {
	x          *sparse.Panel // n×1 solution (nil on error)
	err        error
	width      int     // requests in the flush this request rode in
	queueWait  float64 // seconds from admission to solve start
	solveTime  float64 // seconds the batch solve took (shared by the flush)
	makespanS  float64 // modeled/wall makespan of this request's panel solve
	totalTime  float64 // seconds from admission to result ready
	panelWidth int     // columns of the panel this request was merged into

	// Elastic-mode outcome (zero under strict solves).
	refinePasses int
	staleSn      int
	residual     float64 // verified ‖b−Ax‖∞ when refinement ran

	// Runtime trace summary of this request's panel (0/0 untraced).
	traceEvents  int
	traceDropped int
}

// coalescer batches concurrent single-RHS requests against one
// (handle, config) pair into multi-RHS panel solves: requests accumulate
// until the batch reaches the server's max-batch size or the oldest
// request has waited max-wait, then the whole batch flushes as one
// SolveBatch call. Clean requests are merged into a single panel of
// batch-width columns — the paper's nrhs amortization, one communication
// schedule for the whole panel — while requests carrying a fault plan get
// their own panel so the injected failure stays theirs alone
// (core.SolveBatchFaulted + BatchError split the outcomes back out).
type coalescer struct {
	s      *Server
	solver *core.Solver

	// slowTrack holds this slot's rolling-median solve time; a flush
	// blowing past factor × median triggers a flight capture.
	slowTrack *reqtrace.SlowTracker
	// armNext, when set, arms full runtime tracing on the slot's next
	// flush: an incident detected on an untraced flush can't retroactively
	// produce a trace, so the recorder re-arms and the next anomaly (or
	// simply the next flush's capture) carries per-rank events.
	armNext atomic.Int32

	mu      sync.Mutex
	pending []*request
	timer   Timer
	gen     uint64 // flush generation; stale timer callbacks no-op
}

func newCoalescer(s *Server, solver *core.Solver) *coalescer {
	factor := s.opts.SlowFactor
	if factor < 0 {
		factor = 0 // negative disables the slow trigger
	}
	return &coalescer{s: s, solver: solver,
		slowTrack: reqtrace.NewSlowTracker(s.opts.SlowWindow, factor)}
}

// add enqueues one admitted request, arming the max-wait timer on the
// first request of a batch and flushing immediately at max-batch.
func (c *coalescer) add(r *request) {
	c.mu.Lock()
	c.pending = append(c.pending, r)
	if len(c.pending) == 1 {
		gen := c.gen
		c.timer = c.s.clock.AfterFunc(c.s.opts.MaxWait, func() { c.timerFlush(gen) })
	}
	if len(c.pending) >= c.s.opts.MaxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.s.metrics.flushes.With("full").Inc()
		go c.run(batch)
		return
	}
	c.mu.Unlock()
}

// timerFlush is the max-wait flush path. gen guards against the race where
// the timer concurrently loses to a max-batch flush: a stale generation
// means this timer's batch already flushed and the pending requests (if
// any) belong to a newer batch with its own timer.
func (c *coalescer) timerFlush(gen uint64) {
	c.mu.Lock()
	if gen != c.gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.s.metrics.flushes.With("timer").Inc()
	go c.run(batch)
}

// drain flushes whatever is pending right now (shutdown path). It returns
// how many requests it flushed.
func (c *coalescer) drain() int {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return 0
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.s.metrics.flushes.With("drain").Inc()
	go c.run(batch)
	return len(batch)
}

// takeLocked claims the pending batch, bumps the generation, and disarms
// the timer. Caller holds c.mu.
func (c *coalescer) takeLocked() []*request {
	batch := c.pending
	c.pending = nil
	c.gen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// run executes one flushed batch: group requests into panels, solve them
// as one SolveBatch, split results (and errors) back out per request.
func (c *coalescer) run(batch []*request) {
	s := c.s
	start := s.clock.Now()
	s.admit.dequeue(len(batch))
	s.metrics.batchWidth.Observe(float64(len(batch)))

	// Group: clean requests merge into one multi-RHS panel; each faulted
	// request keeps a private panel so its injection cannot leak onto
	// neighbors.
	var clean []int
	panels := []*sparse.Panel{}
	plans := []*fault.Plan{}
	owners := [][]int{} // request indices per panel, in column order
	for i, r := range batch {
		if r.faults == nil {
			clean = append(clean, i)
			continue
		}
		panels = append(panels, r.b)
		plans = append(plans, r.faults)
		owners = append(owners, []int{i})
	}
	if len(clean) == 1 {
		panels = append(panels, batch[clean[0]].b)
		plans = append(plans, nil)
		owners = append(owners, []int{clean[0]})
	} else if len(clean) > 1 {
		n := batch[clean[0]].b.Rows
		merged := sparse.NewPanel(n, len(clean))
		for j, i := range clean {
			copy(merged.Col(j), batch[i].b.Col(0))
		}
		panels = append(panels, merged)
		plans = append(plans, nil)
		owners = append(owners, clean)
	}

	assembled := s.clock.Now()

	// Per-panel solve specs: a panel runs with full runtime tracing when a
	// rider asked for it (X-Trace) or a prior incident on this slot armed
	// the next flush. Zero specs keep the hot path allocation-identical to
	// the untraced batch solve.
	armed := c.armNext.Swap(0) != 0
	specs := make([]core.SolveSpec, len(panels))
	for p := range specs {
		specs[p].Faults = plans[p]
		trace := armed
		for _, i := range owners[p] {
			if batch[i].wantTrace {
				trace = true
			}
		}
		if trace {
			specs[p].Trace = true
			specs[p].TraceCap = s.opts.TraceCap
		}
	}

	xs, reps, err := c.solver.SolveBatchWith(panels, specs)
	perPanel := make([]error, len(panels))
	if err != nil {
		var be *core.BatchError
		if errors.As(err, &be) && len(be.Errs) == len(panels) {
			copy(perPanel, be.Errs)
		} else {
			for i := range perPanel {
				perPanel[i] = err
			}
		}
	}

	end := s.clock.Now()
	solveDur := end.Sub(start).Seconds()
	slowFlush, _ := c.slowTrack.Observe(solveDur)
	for p, reqs := range owners {
		var raw *runtime.Result
		var tev, tdrop int
		if reps[p] != nil && reps[p].Raw != nil && reps[p].Raw.Trace != nil {
			raw = reps[p].Raw
			tev = raw.Trace.Events()
			for _, d := range raw.Trace.Dropped {
				tdrop += d
			}
			if tdrop > 0 {
				s.metrics.traceDrops.Add(float64(tdrop))
			}
		}
		var refineTime float64
		if reps[p] != nil {
			refineTime = reps[p].RefineTime
		}
		for j, i := range reqs {
			r := batch[i]
			res := result{
				width:        len(batch),
				panelWidth:   len(reqs),
				queueWait:    start.Sub(r.enq).Seconds(),
				solveTime:    solveDur,
				totalTime:    end.Sub(r.enq).Seconds(),
				traceEvents:  tev,
				traceDropped: tdrop,
			}
			outcome := "ok"
			if perPanel[p] != nil {
				outcome = "fault"
				res.err = perPanel[p]
				s.metrics.requests.With("fault").Inc()
			} else {
				if len(reqs) == 1 {
					res.x = xs[p]
				} else {
					x := sparse.NewPanel(r.b.Rows, 1)
					copy(x.Col(0), xs[p].Col(j))
					res.x = x
				}
				if reps[p] != nil {
					res.makespanS = reps[p].Time
					res.refinePasses = reps[p].RefinePasses
					res.staleSn = reps[p].StaleSupernodes
					// Strict reports carry NaN (unverified) — which
					// encoding/json cannot marshal — so only elastic solves'
					// verified residuals reach the wire.
					if !math.IsNaN(reps[p].Residual) {
						res.residual = reps[p].Residual
					}
				}
				s.metrics.requests.With("ok").Inc()
			}
			c.recordSpans(r, res, start, assembled, end, refineTime)
			s.observeOutcome(r, res, outcome, end)
			c.maybeCapture(r, res, outcome, slowFlush, raw, end)
			s.metrics.queueWait.Observe(res.queueWait)
			s.metrics.solveTime.Observe(res.solveTime)
			r.done <- res
			s.admit.finish()
		}
	}
}

// recordSpans writes the request's coalescer-side stage spans. The refine
// span's duration is the solver's modeled refinement seconds — a different
// clock than the wall-time stages, flagged by its clock attribute.
func (c *coalescer) recordSpans(r *request, res result, start, assembled, end time.Time, refineTime float64) {
	if r.tc == nil {
		return
	}
	r.tc.Span("queue-wait", r.enq, start, nil)
	r.tc.Span("batch-assembly", start, assembled, map[string]string{
		"batch_width": fmt.Sprintf("%d", res.width),
	})
	r.tc.Span("solve", assembled, end, map[string]string{
		"panel_width": fmt.Sprintf("%d", res.panelWidth),
		"makespan_s":  fmt.Sprintf("%g", res.makespanS),
	})
	if res.refinePasses > 0 {
		r.tc.Span("refine", end, end.Add(time.Duration(refineTime*float64(time.Second))),
			map[string]string{
				"passes": fmt.Sprintf("%d", res.refinePasses),
				"clock":  "modeled",
			})
	}
}

// observeOutcome lands the request in the outcome-labeled end-to-end
// latency histogram, carrying its request ID as an OpenMetrics exemplar.
func (s *Server) observeOutcome(r *request, res result, outcome string, end time.Time) {
	h := s.metrics.reqOK
	if outcome == "fault" {
		h = s.metrics.reqFault
	}
	if r.tc == nil {
		h.Observe(res.totalTime)
		return
	}
	h.ObserveExemplar(res.totalTime, metrics.Exemplar{
		LabelKey: "request_id", LabelValue: r.tc.ID,
		Value: res.totalTime, Ts: clockTs(end),
	})
}

// maybeCapture decides whether this request is an incident worth a flight:
// a solve fault beats a refinement blowup beats a slow flush beats a
// client-requested trace. The captured record also lands in the request
// store immediately, so a client that disconnects before its handler runs
// still leaves an inspectable record.
func (c *coalescer) maybeCapture(r *request, res result, outcome string, slowFlush bool, raw *runtime.Result, end time.Time) {
	s := c.s
	if r.tc == nil || s.opts.FlightCap < 0 {
		return
	}
	trigger := ""
	switch {
	case outcome == "fault":
		trigger = "fault"
	case s.opts.RefineBlowup > 0 && res.refinePasses >= s.opts.RefineBlowup:
		trigger = "refine"
	case slowFlush:
		trigger = "slow"
	case r.wantTrace:
		trigger = "request"
	}
	if trigger == "" {
		return
	}
	errMsg := ""
	if res.err != nil {
		errMsg = res.err.Error()
	}
	rec := r.tc.Finish(outcome, errMsg, end)
	rec.BatchWidth = res.width
	rec.RefinePasses = res.refinePasses
	rec.TraceEvents = res.traceEvents
	rec.TraceDropped = res.traceDropped
	s.flights.Capture(&reqtrace.Flight{Record: rec, Trigger: trigger, Res: raw})
	s.metrics.flights.With(trigger).Inc()
	s.store.Add(rec)
	if raw == nil {
		// The incident flush wasn't traced, so this flight has spans only.
		// Arm the slot: the next flush runs fully traced, and its capture
		// (if the anomaly repeats) carries per-rank events.
		c.armNext.Store(1)
	}
}
