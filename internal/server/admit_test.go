package server

import (
	"context"
	"testing"
	"time"

	"sptrsv/internal/metrics"
)

func newTestAdmitter(maxQueue int, quotas *QuotaSet) (*admitter, *FakeClock) {
	c := NewFakeClock()
	m := newServerMetrics(metrics.NewRegistry())
	return newAdmitter(maxQueue, quotas, c, m), c
}

func TestAdmitBoundedQueue(t *testing.T) {
	a, _ := newTestAdmitter(2, NewQuotaSet(0, 0))
	for i := 0; i < 2; i++ {
		if v, _ := a.admit("t"); v != admitOK {
			t.Fatalf("admit %d = %v, want admitOK", i, v)
		}
	}
	if v, _ := a.admit("t"); v != admitQueueFull {
		t.Fatalf("admit over capacity = %v, want admitQueueFull", v)
	}
	if a.depth() != 2 {
		t.Fatalf("depth = %d, want 2", a.depth())
	}
	// Dequeue frees queue slots (batch started solving) but not inflight.
	a.dequeue(2)
	if a.depth() != 0 {
		t.Fatalf("depth after dequeue = %d, want 0", a.depth())
	}
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatalf("admit after dequeue = %v, want admitOK", v)
	}
}

func TestAdmitQuotaShedsBeforeQueue(t *testing.T) {
	a, _ := newTestAdmitter(10, NewQuotaSet(1, 1))
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("first request should pass quota")
	}
	v, retry := a.admit("t")
	if v != admitQuota {
		t.Fatalf("second request = %v, want admitQuota", v)
	}
	if retry <= 0 {
		t.Fatalf("quota shed returned retryAfter %v, want > 0", retry)
	}
	// A quota shed must not consume queue capacity.
	if a.depth() != 1 {
		t.Fatalf("depth = %d after quota shed, want 1", a.depth())
	}
}

// TestAdmitQueueFullDoesNotChargeQuota pins the shed ordering: a request
// turned away for queue pressure must not consume the tenant's token —
// otherwise queue congestion silently starves the tenant's quota.
func TestAdmitQueueFullDoesNotChargeQuota(t *testing.T) {
	a, _ := newTestAdmitter(1, NewQuotaSet(0.001, 2)) // 2 tokens, ~no refill
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("first request should be admitted")
	}
	// Queue is now full; the shed must leave the remaining token alone.
	if v, _ := a.admit("t"); v != admitQueueFull {
		t.Fatal("second request should shed on queue capacity")
	}
	a.dequeue(1)
	// If the queue-full shed had charged a token, this would be admitQuota.
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("queue-full shed consumed the tenant's quota token")
	}
	a.dequeue(1)
	if v, _ := a.admit("t"); v != admitQuota {
		t.Fatal("bucket should be empty after two admitted requests")
	}
}

// TestAdmitReleaseReturnsSlots: release undoes one admission entirely —
// both the queue slot and the inflight count.
func TestAdmitReleaseReturnsSlots(t *testing.T) {
	a, _ := newTestAdmitter(1, NewQuotaSet(0, 0))
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("admit failed")
	}
	a.release()
	if a.depth() != 0 {
		t.Fatalf("depth = %d after release, want 0", a.depth())
	}
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("released slot not reusable")
	}
	a.release()
	a.startDrain()
	if err := a.awaitIdle(context.Background()); err != nil {
		t.Fatalf("awaitIdle after release: %v", err)
	}
}

func TestAdmitQuotaRefillViaClock(t *testing.T) {
	a, c := newTestAdmitter(10, NewQuotaSet(2, 1))
	a.admit("t")
	if v, _ := a.admit("t"); v != admitQuota {
		t.Fatal("bucket should be empty")
	}
	c.Advance(500 * time.Millisecond) // 2/s → one token
	if v, _ := a.admit("t"); v != admitOK {
		t.Fatal("advance did not refill the bucket")
	}
}

func TestDrainLifecycle(t *testing.T) {
	a, _ := newTestAdmitter(10, NewQuotaSet(0, 0))
	a.admit("t")
	a.admit("t")
	a.startDrain()
	if v, _ := a.admit("t"); v != admitDraining {
		t.Fatalf("admit while draining = %v, want admitDraining", v)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.awaitIdle(ctx); err == nil {
		t.Fatal("awaitIdle with inflight requests returned before idle")
	}

	a.dequeue(2)
	a.finish()
	a.finish()
	if err := a.awaitIdle(context.Background()); err != nil {
		t.Fatalf("awaitIdle after finish: %v", err)
	}
}

func TestDrainIdleImmediatelyWhenEmpty(t *testing.T) {
	a, _ := newTestAdmitter(10, NewQuotaSet(0, 0))
	a.startDrain()
	if err := a.awaitIdle(context.Background()); err != nil {
		t.Fatalf("awaitIdle on an idle admitter: %v", err)
	}
}
