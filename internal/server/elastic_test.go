package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sptrsv/internal/fault"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// TestSolveElasticOptInAndSlotIsolation pins the per-request elastic
// contract on a healthy server: a request that opts in via config.mode gets
// a refinement-verified answer that is bit-identical to the strict default
// (healthy elastic forces nothing), and the elastic slot never shares a
// solver or coalescer with the strict one.
func TestSolveElasticOptInAndSlotIsolation(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	for i := range b {
		b[i] = 1 + float64(i%13)/7
	}

	resp, data := postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve",
		map[string]any{"b": b}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strict solve: %d: %s", resp.StatusCode, data)
	}
	var strict solveResponse
	json.Unmarshal(data, &strict)

	resp, data = postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve",
		map[string]any{"b": b, "config": map[string]any{"mode": "elastic", "staleness": 8}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("elastic solve: %d: %s", resp.StatusCode, data)
	}
	var elastic solveResponse
	json.Unmarshal(data, &elastic)

	if !strings.Contains(elastic.Config, "elastic:S=8") {
		t.Fatalf("elastic config key %q does not carry the mode group", elastic.Config)
	}
	if elastic.Config == strict.Config {
		t.Fatalf("strict and elastic solves share config key %q", strict.Config)
	}
	h, _ := s.handles.get(info.Handle, s.clock.Now())
	if got := len(h.Configs()); got != 2 {
		t.Fatalf("handle has %d configs (%v), want separate strict and elastic slots", got, h.Configs())
	}
	// Healthy elastic == strict, bit for bit; the elastic response still
	// carries the refinement-verified residual.
	for i := range strict.X {
		if elastic.X[i] != strict.X[i] {
			t.Fatalf("x[%d] = %v elastic, %v strict — healthy elastic must be bit-identical", i, elastic.X[i], strict.X[i])
		}
	}
	if elastic.RefinePasses != 0 || elastic.StaleSupernodes != 0 {
		t.Fatalf("healthy elastic solve reports refine=%d stale=%d", elastic.RefinePasses, elastic.StaleSupernodes)
	}
	if !(elastic.Residual <= 1e-8) || elastic.Residual <= 0 {
		t.Fatalf("elastic response residual %g, want verified in (0, 1e-8]", elastic.Residual)
	}
	if strict.Residual != 0 {
		t.Fatalf("strict response carries residual %g, want omitted", strict.Residual)
	}
}

// TestSolveElasticValidation pins the request-level vocabulary: an unknown
// mode and an elastic request without a positive staleness bound are both
// client errors, not server faults.
func TestSolveElasticValidation(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	solveURL := ts.URL + "/v1/matrices/" + info.Handle + "/solve"
	b := make([]float64, info.N)

	resp, data := postJSON(t, solveURL, map[string]any{
		"b": b, "config": map[string]any{"mode": "psychic"},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, solveURL, map[string]any{
		"b": b, "config": map[string]any{"mode": "elastic", "staleness": 0},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("elastic without staleness: %d: %s", resp.StatusCode, data)
	}
}

// TestSolveElasticForcedRefinement serves through a backend with an
// injected network straggler: the elastic request must come back verified
// with the refinement stats populated, while the same server still answers
// strict requests (slowly, but correctly).
func TestSolveElasticForcedRefinement(t *testing.T) {
	_, _, ts := newHTTPServer(t, func(o *Options) {
		o.Backend = trsv.SimBackend{Opts: runtime.Options{
			Faults: &fault.Plan{Seed: 3, NetDelay: map[int]float64{0: 5e-3}},
		}}
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	b := make([]float64, info.N)
	for i := range b {
		b[i] = 1 + float64(i%13)/7
	}
	resp, data := postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve",
		map[string]any{"b": b, "config": map[string]any{"mode": "elastic", "staleness": 4}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("elastic solve under straggler: %d: %s", resp.StatusCode, data)
	}
	var sr solveResponse
	json.Unmarshal(data, &sr)
	if sr.StaleSupernodes == 0 || sr.RefinePasses == 0 {
		t.Fatalf("straggler forced nothing over HTTP (stale=%d refine=%d) — test is vacuous",
			sr.StaleSupernodes, sr.RefinePasses)
	}
	if !(sr.Residual <= 1e-8) || sr.Residual <= 0 {
		t.Fatalf("refined residual %g, want verified in (0, 1e-8]", sr.Residual)
	}
}
