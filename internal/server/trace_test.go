package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sptrsv/internal/reqtrace"
)

func solveBody(n int) map[string]any {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)/3
	}
	return map[string]any{"b": b}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	resp, _ := postJSON(t, url, solveBody(info.N), nil)
	if got := resp.Header.Get("X-Request-ID"); got != "r-000001" {
		t.Fatalf("assigned ID = %q, want r-000001", got)
	}
	resp, _ = postJSON(t, url, solveBody(info.N), map[string]string{"X-Request-ID": "my.req:42"})
	if got := resp.Header.Get("X-Request-ID"); got != "my.req:42" {
		t.Fatalf("client ID not echoed: %q", got)
	}
	// Malformed IDs (spaces, over-long) are replaced, not rejected.
	resp, _ = postJSON(t, url, solveBody(info.N), map[string]string{"X-Request-ID": "has space"})
	if got := resp.Header.Get("X-Request-ID"); got != "r-000002" {
		t.Fatalf("malformed ID not replaced: %q", got)
	}
}

func TestValidRequestID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc":                   true,
		"A-b_c.d:9":             true,
		"":                      false,
		"has space":             false,
		"ütf8":                  false,
		"semi;colon":            false,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
	} {
		if got := validRequestID(id); got != want {
			t.Errorf("validRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestDebugRequestEndToEnd is the tentpole acceptance path: a traced solve
// is retrievable by its request ID — spans at /debug/requests/{id}, a
// captured flight whose download stitches service spans to the per-rank
// runtime trace, and the latency bucket carrying the ID as an exemplar.
func TestDebugRequestEndToEnd(t *testing.T) {
	_, _, ts := newHTTPServer(t, func(o *Options) { o.Exemplars = true })
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	resp, data := postJSON(t, url, solveBody(info.N),
		map[string]string{"X-Request-ID": "probe-1", "X-Trace": "1", "X-Tenant": "acme"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, data)
	}

	// 1. The record: spans for every stage, attributes, outcome.
	resp, data = get(t, ts.URL+"/debug/requests/probe-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug record: %d: %s", resp.StatusCode, data)
	}
	var rec reqtrace.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record decode: %v", err)
	}
	if rec.Outcome != "ok" || rec.Tenant != "acme" {
		t.Fatalf("record = %+v", rec)
	}
	stages := map[string]bool{}
	for _, sp := range rec.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"decode", "queue-wait", "batch-assembly", "solve", "encode"} {
		if !stages[want] {
			t.Fatalf("record missing %q span; has %v", want, rec.Spans)
		}
	}
	if rec.Attrs["handle"] != info.Handle || rec.Attrs["config"] == "" {
		t.Fatalf("record attrs = %v", rec.Attrs)
	}
	if rec.TraceEvents == 0 {
		t.Fatal("X-Trace solve retained no runtime trace events")
	}

	// 2. The flight: X-Trace forces a request-trigger capture with the
	// runtime result attached; its download is a stitched Chrome trace.
	resp, data = get(t, ts.URL+"/debug/flights")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"probe-1"`) {
		t.Fatalf("flights listing: %d: %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/debug/flights/probe-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight download: %d", resp.StatusCode)
	}
	assertStitchedChromeTrace(t, data, true)

	// 3. The same stitched file from the request-store route.
	resp, data = get(t, ts.URL+"/debug/requests/probe-1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request trace: %d", resp.StatusCode)
	}
	assertStitchedChromeTrace(t, data, true)

	// 4. The exemplar: the ok-outcome latency bucket names the request.
	resp, data = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	found := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "sptrsv_server_request_seconds_bucket") &&
			strings.Contains(line, `outcome="ok"`) &&
			strings.Contains(line, `# {request_id="`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no request_id exemplar on the ok latency buckets:\n%s", data)
	}
}

// assertStitchedChromeTrace decodes a Chrome trace file and checks it has
// service-stage spans (pid 1) and, when wantRanks, rank events (pid 0).
func assertStitchedChromeTrace(t *testing.T, data []byte, wantRanks bool) {
	t.Helper()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("chrome trace decode: %v", err)
	}
	var service, ranks int
	for _, e := range out.TraceEvents {
		if e["ph"] != "X" {
			continue
		}
		switch e["pid"].(float64) {
		case 1:
			service++
		case 0:
			ranks++
		}
	}
	if service == 0 {
		t.Fatal("no service spans in trace file")
	}
	if wantRanks && ranks == 0 {
		t.Fatal("no rank events stitched into trace file")
	}
}

// TestShedRequestsStayInLatencyAccounting pins the satellite fix: a shed
// request lands in the outcome-labeled latency histogram and leaves a
// debug record, instead of vanishing.
func TestShedRequestsStayInLatencyAccounting(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	s.admit.startDrain()
	resp, _ := postJSON(t, url, solveBody(info.N), map[string]string{"X-Request-ID": "shed-me"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining solve: %d, want 503", resp.StatusCode)
	}
	if n := s.metrics.reqShed.Count(); n != 1 {
		t.Fatalf("shed latency observations = %d, want 1", n)
	}
	rec, ok := s.store.Get("shed-me")
	if !ok || rec.Outcome != "shed" {
		t.Fatalf("shed record = %+v (ok=%v)", rec, ok)
	}
}

// TestFlightCaptureOnFaultAndRearm drives the flight recorder's automatic
// path: a faulted solve captures a spans-only flight and arms the slot, so
// the next incident on the same slot carries a full runtime trace.
func TestFlightCaptureOnFaultAndRearm(t *testing.T) {
	s, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	fault := solveBody(info.N)
	fault["fault"] = map[string]any{"crash_rank": 1, "crash_at": 0}
	resp, data := postJSON(t, url, fault, map[string]string{"X-Request-ID": "boom-1"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted solve: %d: %s", resp.StatusCode, data)
	}
	f, ok := s.flights.Get("boom-1")
	if !ok || f.Trigger != "fault" {
		t.Fatalf("fault flight = %+v (ok=%v)", f, ok)
	}
	if f.Events() != 0 {
		t.Fatal("first incident was untraced; its flight should be spans-only")
	}

	// The incident armed the slot: the next faulted flush is fully traced.
	fault["fault"] = map[string]any{"crash_rank": 2, "crash_at": 0}
	resp, data = postJSON(t, url, fault, map[string]string{"X-Request-ID": "boom-2"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second faulted solve: %d: %s", resp.StatusCode, data)
	}
	f, ok = s.flights.Get("boom-2")
	if !ok || f.Trigger != "fault" {
		t.Fatalf("second fault flight = %+v (ok=%v)", f, ok)
	}
	if f.Events() == 0 {
		t.Fatal("re-armed slot did not trace the next incident")
	}
	resp, data = get(t, ts.URL+"/debug/flights/boom-2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight download: %d", resp.StatusCode)
	}
	assertStitchedChromeTrace(t, data, true)

	// The faulted record is retrievable and names the failure.
	rec, ok := s.store.Get("boom-2")
	if !ok || rec.Outcome != "fault" || rec.Error == "" {
		t.Fatalf("fault record = %+v (ok=%v)", rec, ok)
	}
}

func TestStatusz(t *testing.T) {
	_, _, ts := newHTTPServer(t, nil)
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	postJSON(t, ts.URL+"/v1/matrices/"+info.Handle+"/solve", solveBody(info.N), nil)

	resp, data := get(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d: %s", resp.StatusCode, data)
	}
	var st struct {
		Status  string         `json:"status"`
		Handles int            `json:"handles"`
		Stats   map[string]any `json:"stats"`
		Build   map[string]any `json:"build"`
		Runtime map[string]any `json:"runtime"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statusz decode: %v: %s", err, data)
	}
	if st.Status != "ok" || st.Handles != 1 {
		t.Fatalf("statusz = %+v", st)
	}
	if st.Stats["OK"] != 1.0 {
		t.Fatalf("statusz stats OK = %v, want 1", st.Stats["OK"])
	}
	if st.Build["tune_cache_schema"] == nil || st.Runtime["goroutines"] == nil {
		t.Fatalf("statusz missing build/runtime sections: %s", data)
	}
}

// TestConcurrentTrafficFlightsAndScrape races solve traffic (some traced,
// some faulted), flight captures, metric scrapes, and debug reads — the
// satellite -race test.
func TestConcurrentTrafficFlightsAndScrape(t *testing.T) {
	_, _, ts := newHTTPServer(t, func(o *Options) {
		o.Exemplars = true
		o.MaxBatch = 4
		// Real clock: with MaxBatch > 1 a tail batch narrower than the
		// flush width relies on the max-wait timer, which never fires on
		// the helper's fake clock — the workers would deadlock.
		o.Clock = RealClock()
	})
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				body := solveBody(info.N)
				hdr := map[string]string{"X-Request-ID": fmt.Sprintf("c%d-%d", w, i)}
				switch i % 3 {
				case 1:
					hdr["X-Trace"] = "1"
				case 2:
					body["fault"] = map[string]any{"crash_rank": 0, "crash_at": 0}
				}
				postJSON(t, url, body, hdr)
			}
		}(w)
	}
	// A bounded scrape loop races the readers against the traffic without
	// hot-spinning the HTTP server.
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for i := 0; i < 20; i++ {
			get(t, ts.URL+"/metrics")
			get(t, ts.URL+"/debug/flights")
			get(t, ts.URL+"/debug/requests")
			get(t, ts.URL+"/statusz")
		}
	}()
	wg.Wait()
	rg.Wait()

	// After the dust settles the exposition still parses strictly.
	_, data := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(data), "sptrsv_server_request_seconds_bucket") {
		t.Fatal("request latency histogram missing from exposition")
	}
}

// TestTraceOffNoFlights pins that with the recorder disabled nothing is
// captured and the solve path stays clean.
func TestTraceOffNoFlights(t *testing.T) {
	s, _, ts := newHTTPServer(t, func(o *Options) { o.FlightCap = -1 })
	info := uploadGenerated(t, ts.URL, "s2d9pt", "small")
	url := ts.URL + "/v1/matrices/" + info.Handle + "/solve"

	fault := solveBody(info.N)
	fault["fault"] = map[string]any{"crash_rank": 1, "crash_at": 0}
	postJSON(t, url, fault, nil)
	if s.flights.Len() != 0 {
		t.Fatalf("disabled recorder captured %d flights", s.flights.Len())
	}
}
