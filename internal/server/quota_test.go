package server

import (
	"testing"
	"time"
)

func TestQuotaBurstThenRefill(t *testing.T) {
	q := NewQuotaSet(2, 3) // 2 req/s, burst 3
	c := NewFakeClock()
	now := c.Now()

	for i := 0; i < 3; i++ {
		if ok, _ := q.Take("a", now); !ok {
			t.Fatalf("take %d within burst failed", i)
		}
	}
	ok, retry := q.Take("a", now)
	if ok {
		t.Fatal("4th take at the same instant passed an empty bucket")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retryAfter = %v, want %v (1 token at 2/s)", retry, want)
	}

	// Half a second refills exactly one token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.Take("a", now); !ok {
		t.Fatal("take after exact refill interval failed")
	}
	if ok, _ := q.Take("a", now); ok {
		t.Fatal("second take after one-token refill passed")
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	q := NewQuotaSet(1, 1)
	now := NewFakeClock().Now()
	if ok, _ := q.Take("a", now); !ok {
		t.Fatal("tenant a first take failed")
	}
	if ok, _ := q.Take("a", now); ok {
		t.Fatal("tenant a second take passed burst=1")
	}
	if ok, _ := q.Take("b", now); !ok {
		t.Fatal("tenant b should have its own full bucket")
	}
	if q.Tenants() != 2 {
		t.Fatalf("Tenants() = %d, want 2", q.Tenants())
	}
}

func TestQuotaDisabled(t *testing.T) {
	q := NewQuotaSet(0, 0)
	if q.Enabled() {
		t.Fatal("rate 0 should disable quotas")
	}
	now := NewFakeClock().Now()
	for i := 0; i < 1000; i++ {
		if ok, _ := q.Take("a", now); !ok {
			t.Fatal("disabled quota rejected a request")
		}
	}
}

func TestQuotaBurstCapsRefill(t *testing.T) {
	q := NewQuotaSet(10, 2)
	c := NewFakeClock()
	now := c.Now()
	q.Take("a", now) // create the bucket
	// A long idle period must not accumulate more than burst tokens.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.Take("a", now); !ok {
			t.Fatalf("take %d after refill failed", i)
		}
	}
	if ok, _ := q.Take("a", now); ok {
		t.Fatal("bucket exceeded burst capacity after idle refill")
	}
}
