package server

import (
	"context"
	"sync"
	"time"
)

// admitVerdict is the outcome of one admission decision.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	admitQueueFull
	admitQuota
	admitDraining
)

// outcome is the metric label for the verdict.
func (v admitVerdict) outcome() string {
	switch v {
	case admitOK:
		return "admitted"
	case admitQueueFull:
		return "queue_full"
	case admitQuota:
		return "quota"
	case admitDraining:
		return "draining"
	}
	return "unknown"
}

// admitter implements the bounded request queue and its backpressure
// contract: at most maxQueue requests may be admitted-but-not-yet-solving
// at once; beyond that new requests are shed immediately (429) instead of
// growing an unbounded queue. It also tracks total in-flight requests
// (queued + solving) so shutdown can drain to idle.
type admitter struct {
	maxQueue int
	quotas   *QuotaSet
	clock    Clock
	m        *serverMetrics

	mu       sync.Mutex
	queued   int
	inflight int
	draining bool
	idle     chan struct{} // closed when draining and inflight reaches 0
}

func newAdmitter(maxQueue int, quotas *QuotaSet, clock Clock, m *serverMetrics) *admitter {
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &admitter{maxQueue: maxQueue, quotas: quotas, clock: clock, m: m,
		idle: make(chan struct{})}
}

// admit decides one request: queue capacity first — a request shed for
// queue pressure never charges the tenant's token bucket, so queue
// congestion cannot starve a tenant's quota — then the quota take. A
// quota shed likewise never occupies a queue slot. On admitOK the request
// occupies one queue slot (released by dequeue when its batch starts
// solving) and one inflight slot (released by finish when its response is
// ready).
func (a *admitter) admit(tenant string) (v admitVerdict, retryAfter time.Duration) {
	now := a.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case a.draining:
		v = admitDraining
	default:
		if a.queued >= a.maxQueue {
			v = admitQueueFull
			break
		}
		if ok, wait := a.quotas.Take(tenant, now); !ok {
			v, retryAfter = admitQuota, wait
			break
		}
		v = admitOK
		a.queued++
		a.inflight++
		a.m.queueDepth.Set(float64(a.queued))
		a.m.inflight.Set(float64(a.inflight))
	}
	a.m.admission.With(v.outcome()).Inc()
	return v, retryAfter
}

// release undoes one admitOK whose request never reached a coalescer
// (post-admission validation or plan build failed): the queue slot and the
// inflight slot are both returned without a batch ever forming.
func (a *admitter) release() {
	a.dequeue(1)
	a.finish()
}

// dequeue releases n queue slots — its batch left the queue for a solve.
func (a *admitter) dequeue(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queued -= n
	if a.queued < 0 { // accounting bug guard; never block admission forever
		a.queued = 0
	}
	a.m.queueDepth.Set(float64(a.queued))
}

// finish releases one inflight slot and, when draining, signals idleness
// after the last one.
func (a *admitter) finish() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	if a.inflight < 0 {
		a.inflight = 0
	}
	a.m.inflight.Set(float64(a.inflight))
	if a.draining && a.inflight == 0 {
		select {
		case <-a.idle:
		default:
			close(a.idle)
		}
	}
}

// startDrain stops admitting new requests. Idempotent.
func (a *admitter) startDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	if a.inflight == 0 {
		close(a.idle)
	}
}

// awaitIdle blocks until every in-flight request has been answered (only
// meaningful after startDrain) or ctx expires.
func (a *admitter) awaitIdle(ctx context.Context) error {
	select {
	case <-a.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether startDrain has been called.
func (a *admitter) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// depth returns the current queue occupancy (for tests and health output).
func (a *admitter) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}
