// Package loadgen drives a solve service with closed-loop concurrent
// clients and reports client-observed latency and throughput. It exists
// for the SLO report (`figures -only slo`) and the serving smoke test in
// scripts/check.sh: the server's own histograms say what the service
// thinks happened; loadgen says what a client would have seen, and the
// achieved batch width it reads off the solve responses is the direct
// evidence that concurrent single-RHS requests coalesced into multi-RHS
// panel solves.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one load run against a running solve service.
type Options struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Handle is the matrix handle to solve against (upload first).
	Handle string
	// N is the right-hand-side length (the handle's matrix dimension).
	N int
	// Clients is the closed-loop concurrency: this many goroutines each
	// issue requests back-to-back. Coalescing width is bounded above by
	// Clients — a closed loop can never have more requests in flight.
	Clients int
	// Requests is the total request budget across all clients.
	Requests int
	// Tenants spreads requests over this many X-Tenant values
	// (tenant-0 … tenant-k); 0 or 1 sends everything as one tenant.
	Tenants int
	// RequestIDs tags every request with an X-Request-ID ("lg-<client>-<i>")
	// and reports the IDs sitting at the latency quantiles, so a slow
	// quantile can be chased straight into the server's /debug/requests.
	RequestIDs bool
	// Client overrides the HTTP client (http.DefaultClient when nil).
	Client *http.Client
}

// Result summarizes one load run. Latencies are client-observed seconds
// (request sent → response read), exact quantiles over every OK request.
type Result struct {
	Sent, OK int
	Shed     int // 429 responses (quota or queue full)
	Rejected int // any other non-200 (400s, 503s)
	Failed   int // transport errors

	DurationS  float64 // wall time of the whole run
	Throughput float64 // OK responses per second

	LatencyMeanS float64
	LatencyP50S  float64
	LatencyP95S  float64
	LatencyP99S  float64
	LatencyMaxS  float64

	// Exemplar request IDs: the X-Request-ID of the OK request sitting at
	// each latency quantile (empty unless Options.RequestIDs was set) —
	// paste one into GET /debug/requests/{id} to see where its time went.
	LatencyP50ID string
	LatencyP95ID string
	LatencyP99ID string
	LatencyMaxID string

	// MeanBatchWidth averages the batch_width field of the OK responses —
	// how many requests each solve actually carried.
	MeanBatchWidth float64
	// ShedRate is Shed / Sent.
	ShedRate float64
}

// solveReply is the slice of the server's solve response loadgen reads.
type solveReply struct {
	BatchWidth int `json:"batch_width"`
}

// Run executes the load and blocks until every request has completed.
func Run(o Options) (Result, error) {
	if o.Clients < 1 {
		o.Clients = 1
	}
	if o.Requests < 1 {
		o.Requests = o.Clients
	}
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := o.BaseURL + "/v1/matrices/" + o.Handle + "/solve"

	// One request body per client, reused: distinct values per client so
	// coalesced panels carry genuinely different columns.
	bodies := make([][]byte, o.Clients)
	for c := range bodies {
		b := make([]float64, o.N)
		for i := range b {
			b[i] = 1 + float64((i*7+c*13)%23)/11
		}
		raw, err := json.Marshal(map[string]any{"b": b})
		if err != nil {
			return Result{}, err
		}
		bodies[c] = raw
	}

	type sample struct {
		lat float64
		id  string
	}
	type tally struct {
		ok, shed, rejected, failed int
		widthSum                   int
		lats                       []sample
	}
	tallies := make([]tally, o.Clients)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ty := &tallies[c]
			for {
				i := next.Add(1)
				if i > int64(o.Requests) {
					return
				}
				req, err := http.NewRequest("POST", url, bytes.NewReader(bodies[c]))
				if err != nil {
					ty.failed++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if o.Tenants > 1 {
					req.Header.Set("X-Tenant", fmt.Sprintf("tenant-%d", c%o.Tenants))
				}
				reqID := ""
				if o.RequestIDs {
					reqID = fmt.Sprintf("lg-%d-%d", c, i)
					req.Header.Set("X-Request-ID", reqID)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					ty.failed++
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0).Seconds()
				switch {
				case err != nil:
					ty.failed++
				case resp.StatusCode == http.StatusOK:
					var sr solveReply
					if json.Unmarshal(data, &sr) == nil {
						ty.widthSum += sr.BatchWidth
					}
					ty.ok++
					ty.lats = append(ty.lats, sample{lat: lat, id: reqID})
				case resp.StatusCode == http.StatusTooManyRequests:
					ty.shed++
				default:
					ty.rejected++
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start).Seconds()

	res := Result{DurationS: dur}
	var lats []sample
	widthSum := 0
	for i := range tallies {
		t := &tallies[i]
		res.OK += t.ok
		res.Shed += t.shed
		res.Rejected += t.rejected
		res.Failed += t.failed
		widthSum += t.widthSum
		lats = append(lats, t.lats...)
	}
	res.Sent = res.OK + res.Shed + res.Rejected + res.Failed
	if dur > 0 {
		res.Throughput = float64(res.OK) / dur
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	if res.OK > 0 {
		res.MeanBatchWidth = float64(widthSum) / float64(res.OK)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i].lat < lats[j].lat })
		sum := 0.0
		for _, l := range lats {
			sum += l.lat
		}
		res.LatencyMeanS = sum / float64(len(lats))
		p50, p95, p99 := quantile(lats, 0.50), quantile(lats, 0.95), quantile(lats, 0.99)
		res.LatencyP50S, res.LatencyP50ID = p50.lat, p50.id
		res.LatencyP95S, res.LatencyP95ID = p95.lat, p95.id
		res.LatencyP99S, res.LatencyP99ID = p99.lat, p99.id
		last := lats[len(lats)-1]
		res.LatencyMaxS, res.LatencyMaxID = last.lat, last.id
	} else {
		res.LatencyP50S = math.NaN()
		res.LatencyP95S = math.NaN()
		res.LatencyP99S = math.NaN()
		res.LatencyMaxS = math.NaN()
	}
	return res, nil
}

// quantile reads an exact quantile sample from a sorted run (nearest-rank).
func quantile[T any](sorted []T, q float64) T {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
