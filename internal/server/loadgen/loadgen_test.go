package loadgen

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sptrsv/internal/metrics"
	"sptrsv/internal/server"
)

func TestRunAgainstLiveServer(t *testing.T) {
	s, err := server.New(server.Options{
		Ranks:    4,
		MaxBatch: 8,
		MaxWait:  200 * time.Microsecond,
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/matrices", "application/json",
		strings.NewReader(`{"generate":{"name":"s2d9pt","scale":"small"}}`))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var info struct {
		Handle string `json:"handle"`
		N      int    `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode upload: %v", err)
	}
	resp.Body.Close()

	res, err := Run(Options{
		BaseURL: ts.URL, Handle: info.Handle, N: info.N,
		Clients: 4, Requests: 24, Tenants: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sent != 24 {
		t.Fatalf("sent = %d, want 24", res.Sent)
	}
	if res.OK != 24 || res.Failed != 0 || res.Rejected != 0 || res.Shed != 0 {
		t.Fatalf("outcomes: %+v", res)
	}
	if res.MeanBatchWidth < 1 {
		t.Fatalf("mean batch width = %v, want >= 1", res.MeanBatchWidth)
	}
	if math.IsNaN(res.LatencyP50S) || res.LatencyP99S < res.LatencyP50S || res.LatencyMaxS < res.LatencyP99S {
		t.Fatalf("latency ordering: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	// The server's own accounting must agree with the client's.
	if st := s.Stats(); st.OK != 24 {
		t.Fatalf("server stats OK = %v, want 24", st.OK)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Fatalf("p50 = %v, want 5", q)
	}
	if q := quantile(sorted, 0.99); q != 10 {
		t.Fatalf("p99 = %v, want 10", q)
	}
	if q := quantile(sorted, 0.01); q != 1 {
		t.Fatalf("p1 = %v, want 1", q)
	}
	if q := quantile([]float64{42}, 0.99); q != 42 {
		t.Fatalf("single-sample p99 = %v, want 42", q)
	}
}
