package server

import "sptrsv/internal/metrics"

// latencyBuckets is the one bucket layout every server latency histogram
// shares — queue wait, solve time, and end-to-end request time — so the SLO
// report can attribute a p99 to queuing versus compute without bucket-shape
// artifacts: a quantile estimated from one histogram is directly comparable
// to the same quantile from another.
var latencyBuckets = metrics.DefBuckets

// widthBuckets spans the coalescing widths a flush can reach.
var widthBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// serverMetrics holds one Server's metric handles. Families are registered
// on the Server's registry (metrics.Default() in production, a fresh
// registry in benchmarks and tests), and the fixed-label children are
// resolved once here so the request path never does a label lookup.
type serverMetrics struct {
	queueDepth *metrics.Gauge
	inflight   *metrics.Gauge

	queueWait *metrics.Histogram // admission → solve start, per request
	solveTime *metrics.Histogram // solve start → solve done, per request

	// End-to-end latency split by outcome so SLO math can separate
	// shed-rate from slow-rate: shed requests are fast 429s that would
	// otherwise drag the quantiles down (or, unobserved, vanish entirely).
	reqOK    *metrics.Histogram // admission → response ready, served solves
	reqFault *metrics.Histogram // admission → error ready, failed solves
	reqShed  *metrics.Histogram // arrival → 429 written, shed requests

	batchWidth *metrics.Histogram // requests per coalesced flush

	admission  metrics.CounterVec // outcome: admitted|queue_full|quota|draining
	requests   metrics.CounterVec // status: ok|fault|invalid|canceled
	flushes    metrics.CounterVec // reason: full|timer|drain
	solvers    metrics.CounterVec // outcome: hit|miss (solver/plan cache)
	uploads    metrics.CounterVec // outcome: new|reused|evicted
	flights    metrics.CounterVec // trigger: slow|fault|refine|request
	traceDrops *metrics.Counter   // runtime trace ring drops across all solves
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	m := &serverMetrics{
		admission: r.Counter("sptrsv_server_admission",
			"Admission decisions: admitted, queue_full (bounded queue at capacity), quota (tenant token bucket empty), draining (shutdown in progress).", "outcome"),
		requests: r.Counter("sptrsv_server_requests",
			"Solve requests by status: ok, fault (injected or runtime solve failure), invalid (malformed before admission, or a bad config rejected just after — the admission slots are released). canceled counts clients that disconnected while waiting — their solve still completes and is also counted by its outcome.", "status"),
		flushes: r.Counter("sptrsv_server_coalesce_flushes",
			"Coalescer flushes by trigger: full (max-batch reached), timer (max-wait expired), drain (shutdown flush).", "reason"),
		solvers: r.Counter("sptrsv_server_solver_cache",
			"Solver/plan cache lookups per solve request: hit reuses a built plan+schedule, miss pays the symbolic cost once, evicted counts LRU displacements from a handle's bounded slot map.", "outcome"),
		uploads: r.Counter("sptrsv_server_handle_uploads",
			"Matrix uploads: new (factored and cached), reused (identical matrix content already held), evicted (LRU handle displaced by a new upload).", "outcome"),
		flights: r.Counter("sptrsv_server_flight_captures",
			"Flight-recorder captures by trigger: slow (latency blew past the rolling median), fault (solve failed), refine (refinement-pass blowup), request (client armed tracing with X-Trace).", "trigger"),
	}
	m.traceDrops = r.Counter("sptrsv_server_trace_dropped_events",
		"Runtime trace ring events dropped across all traced solves — a rising count means raise the trace cap (-trace-cap).").With()
	m.queueDepth = r.Gauge("sptrsv_server_queue_depth",
		"Requests admitted but not yet solving (the bounded queue's occupancy).").With()
	m.inflight = r.Gauge("sptrsv_server_inflight_requests",
		"Requests admitted and not yet responded to (queued + solving).").With()
	m.queueWait = r.Histogram("sptrsv_server_queue_wait_seconds",
		"Per-request wait from admission to solve start. Shares its bucket layout with sptrsv_server_solve_seconds so p99s attribute cleanly.",
		latencyBuckets).With()
	m.solveTime = r.Histogram("sptrsv_server_solve_seconds",
		"Per-request solve duration (the coalesced batch solve the request rode in). Shares its bucket layout with sptrsv_server_queue_wait_seconds.",
		latencyBuckets).With()
	reqTime := r.Histogram("sptrsv_server_request_seconds",
		"Per-request end-to-end latency by outcome: ok (admission to response), fault (admission to error), shed (arrival to 429) — no request leaves the latency accounting.",
		latencyBuckets, "outcome")
	m.reqOK = reqTime.With("ok")
	m.reqFault = reqTime.With("fault")
	m.reqShed = reqTime.With("shed")
	m.batchWidth = r.Histogram("sptrsv_server_batch_width",
		"Coalesced requests per flush — the achieved multi-RHS width.",
		widthBuckets).With()
	return m
}

// Stats is a point-in-time summary of one Server's serving metrics, read
// straight from its histograms and counters — what the SLO report and the
// drain-time summary print.
type Stats struct {
	Admitted, ShedQueueFull, ShedQuota, ShedDraining float64
	OK, Faulted, Invalid, Canceled                   float64
	Flushes, MeanBatchWidth                          float64
	QueueWaitP50, QueueWaitP99                       float64
	SolveP50, SolveP99                               float64
	RequestP50, RequestP99                           float64
	SolverHits, SolverMisses                         float64
	Flights, TraceDropped                            float64
}

// Stats reads the current values. Quantiles are the fixed-bucket estimates
// of metrics.Histogram.Quantile (NaN with no observations).
func (s *Server) Stats() Stats {
	m := s.metrics
	st := Stats{
		Admitted:      m.admission.With("admitted").Value(),
		ShedQueueFull: m.admission.With("queue_full").Value(),
		ShedQuota:     m.admission.With("quota").Value(),
		ShedDraining:  m.admission.With("draining").Value(),
		OK:            m.requests.With("ok").Value(),
		Faulted:       m.requests.With("fault").Value(),
		Invalid:       m.requests.With("invalid").Value(),
		Canceled:      m.requests.With("canceled").Value(),
		QueueWaitP50:  m.queueWait.Quantile(0.50),
		QueueWaitP99:  m.queueWait.Quantile(0.99),
		SolveP50:      m.solveTime.Quantile(0.50),
		SolveP99:      m.solveTime.Quantile(0.99),
		RequestP50:    m.reqOK.Quantile(0.50),
		RequestP99:    m.reqOK.Quantile(0.99),
		SolverHits:    m.solvers.With("hit").Value(),
		SolverMisses:  m.solvers.With("miss").Value(),
		TraceDropped:  m.traceDrops.Value(),
	}
	for _, trigger := range []string{"slow", "fault", "refine", "request"} {
		st.Flights += m.flights.With(trigger).Value()
	}
	if n := m.batchWidth.Count(); n > 0 {
		st.Flushes = float64(n)
		st.MeanBatchWidth = m.batchWidth.Sum() / float64(n)
	}
	return st
}
