package server

import (
	"testing"
	"time"
)

func TestFakeClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewFakeClock()
	var order []string
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, "c") })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, "a") })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, "b") })

	c.Advance(15 * time.Millisecond)
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("after 15ms got %v, want [a]", order)
	}
	c.Advance(15 * time.Millisecond)
	if got := len(order); got != 3 {
		t.Fatalf("after 30ms fired %d timers (%v), want 3", got, order)
	}
	if order[1] != "b" || order[2] != "c" {
		t.Fatalf("fire order %v, want [a b c]", order)
	}
}

func TestFakeClockNowReadsDeadlineDuringCallback(t *testing.T) {
	c := NewFakeClock()
	start := c.Now()
	var at time.Time
	c.AfterFunc(7*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Second)
	if want := start.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw Now()=%v, want deadline %v", at, want)
	}
	if want := start.Add(time.Second); !c.Now().Equal(want) {
		t.Fatalf("after Advance Now()=%v, want %v", c.Now(), want)
	}
}

func TestFakeClockStop(t *testing.T) {
	c := NewFakeClock()
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestFakeClockNestedTimersFireInSameAdvance(t *testing.T) {
	c := NewFakeClock()
	var order []string
	c.AfterFunc(10*time.Millisecond, func() {
		order = append(order, "outer")
		c.AfterFunc(5*time.Millisecond, func() { order = append(order, "inner") })
	})
	c.Advance(20 * time.Millisecond)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("got %v, want [outer inner]", order)
	}
}

func TestFakeClockEqualDeadlinesFireInCreationOrder(t *testing.T) {
	c := NewFakeClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order %v, want creation order", order)
		}
	}
}
