package server

import (
	"sync"
	"time"
)

// tokenBucket is a standard lazily refilled token bucket: capacity burst,
// refill rate tokens/second, fractional tokens carried exactly. All time
// comes in through the caller's Clock reading, so the arithmetic is
// deterministic under the fake clock.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// take attempts to remove one token at time now. On failure it returns the
// duration until one token will be available — the Retry-After the caller
// surfaces.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		// Unrefilled bucket: once empty it stays empty; report a long but
		// finite backoff rather than dividing by zero.
		return false, time.Hour
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// QuotaSet enforces a per-tenant request-rate quota: each tenant (the
// X-Tenant header; missing means the shared "default" tenant) gets its own
// token bucket created on first use. A zero or negative rate disables
// quota enforcement entirely — every take succeeds.
type QuotaSet struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// NewQuotaSet builds a quota set granting each tenant rate requests/second
// with the given burst capacity (burst < 1 is raised to 1: a quota that can
// never pass a request is a misconfiguration, not a policy).
func NewQuotaSet(rate, burst float64) *QuotaSet {
	if burst < 1 {
		burst = 1
	}
	return &QuotaSet{rate: rate, burst: burst, buckets: map[string]*tokenBucket{}}
}

// Enabled reports whether the quota actually limits anything.
func (q *QuotaSet) Enabled() bool { return q != nil && q.rate > 0 }

// Take charges one request to tenant at time now. ok is always true when
// quotas are disabled; otherwise a failed take returns how long the tenant
// must wait for its next token.
func (q *QuotaSet) Take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if !q.Enabled() {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{rate: q.rate, burst: q.burst, tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	return b.take(now)
}

// Tenants returns how many distinct tenants have been seen.
func (q *QuotaSet) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
