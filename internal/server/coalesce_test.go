package server

import (
	"testing"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/metrics"
	"sptrsv/internal/sparse"
)

// newTestServer builds a Server on a fake clock and a private registry,
// with one handle factored and its default-config solver slot built.
func newTestServer(t *testing.T, mod func(*Options)) (*Server, *FakeClock, *Handle, *solverSlot) {
	t.Helper()
	fc := NewFakeClock()
	opts := Options{
		Ranks:    4,
		MaxQueue: 64,
		MaxBatch: 4,
		MaxWait:  10 * time.Millisecond,
		Clock:    fc,
		Registry: metrics.NewRegistry(),
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, err := core.Factorize(gen.S2D9pt(24, 24, 31), core.FactorOptions{TreeDepth: 3, MaxSupernode: 8})
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	h, _, _ := s.handles.put(sys, "test", fc.Now())
	cfg, err := s.defaultConfig(h)
	if err != nil {
		t.Fatalf("defaultConfig: %v", err)
	}
	slot, _, err := s.solverFor(h, cfg)
	if err != nil {
		t.Fatalf("solverFor: %v", err)
	}
	return s, fc, h, slot
}

// rhs builds a deterministic n×1 right-hand side, distinct per seed.
func rhs(n int, seed int) *sparse.Panel {
	b := sparse.NewPanel(n, 1)
	col := b.Col(0)
	for i := range col {
		col[i] = 1 + float64((i*7+seed*13)%11) - 0.25*float64(seed)
	}
	return b
}

// submit admits one request (failing the test on shed) and hands it to the
// slot's coalescer.
func submit(t *testing.T, s *Server, slot *solverSlot, b *sparse.Panel, plan *fault.Plan) *request {
	t.Helper()
	if v, _ := s.admit.admit("test"); v != admitOK {
		t.Fatalf("admit = %v, want admitOK", v)
	}
	r := &request{b: b, faults: plan, enq: s.clock.Now(), done: make(chan result, 1)}
	slot.coal.add(r)
	return r
}

func TestCoalesceTimerFlushMergesRequests(t *testing.T) {
	s, fc, h, slot := newTestServer(t, nil)
	n := h.N

	reqs := make([]*request, 3)
	for i := range reqs {
		reqs[i] = submit(t, s, slot, rhs(n, i), nil)
	}
	if got := s.admit.depth(); got != 3 {
		t.Fatalf("queue depth = %d before flush, want 3", got)
	}

	// Nothing may flush before max-wait: the batch is still accumulating.
	fc.Advance(9 * time.Millisecond)
	select {
	case <-reqs[0].done:
		t.Fatal("request completed before the max-wait deadline")
	default:
	}

	fc.Advance(time.Millisecond) // reaches the 10ms deadline → flush
	for i, r := range reqs {
		res := <-r.done
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if res.width != 3 || res.panelWidth != 3 {
			t.Fatalf("request %d rode width=%d panel=%d, want 3/3", i, res.width, res.panelWidth)
		}
		// The coalesced answer must be bit-identical to a direct solve.
		want, _, err := slot.solver.Solve(rhs(n, i))
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		wc, gc := want.Col(0), res.x.Col(0)
		for row := range wc {
			if wc[row] != gc[row] {
				t.Fatalf("request %d row %d: coalesced %v != direct %v", i, row, gc[row], wc[row])
			}
		}
	}

	if got := s.admit.depth(); got != 0 {
		t.Fatalf("queue depth = %d after flush, want 0", got)
	}
	st := s.Stats()
	if st.MeanBatchWidth != 3 {
		t.Fatalf("mean batch width = %v, want 3", st.MeanBatchWidth)
	}
	if st.OK != 3 {
		t.Fatalf("ok requests = %v, want 3", st.OK)
	}
	if s.metrics.flushes.With("timer").Value() != 1 {
		t.Fatal("expected exactly one timer flush")
	}
}

func TestCoalesceMaxBatchFlushesWithoutClock(t *testing.T) {
	s, _, h, slot := newTestServer(t, func(o *Options) { o.MaxBatch = 4 })
	reqs := make([]*request, 4)
	for i := range reqs {
		reqs[i] = submit(t, s, slot, rhs(h.N, i), nil)
	}
	// The 4th add reached max-batch; the flush needs no clock advance.
	for i, r := range reqs {
		res := <-r.done
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if res.width != 4 {
			t.Fatalf("request %d width = %d, want 4", i, res.width)
		}
	}
	if s.metrics.flushes.With("full").Value() != 1 {
		t.Fatal("expected exactly one full flush")
	}
}

func TestCoalesceFaultIsolation(t *testing.T) {
	s, fc, h, slot := newTestServer(t, nil)
	n := h.N

	crash := &fault.Plan{Seed: 7, Crash: map[int]float64{1: 0}}
	clean0 := submit(t, s, slot, rhs(n, 0), nil)
	faulted := submit(t, s, slot, rhs(n, 1), crash)
	clean1 := submit(t, s, slot, rhs(n, 2), nil)
	fc.Advance(10 * time.Millisecond)

	res := <-faulted.done
	if res.err == nil {
		t.Fatal("faulted request returned no error")
	}
	if !fault.IsFault(res.err) {
		t.Fatalf("faulted request error %v is not a fault", res.err)
	}
	if res.panelWidth != 1 {
		t.Fatalf("faulted request rode a %d-wide panel, want its own", res.panelWidth)
	}

	for i, r := range []*request{clean0, clean1} {
		seed := []int{0, 2}[i]
		res := <-r.done
		if res.err != nil {
			t.Fatalf("clean request %d: %v", i, res.err)
		}
		if res.panelWidth != 2 {
			t.Fatalf("clean request %d panelWidth = %d, want 2 (merged)", i, res.panelWidth)
		}
		want, _, err := slot.solver.Solve(rhs(n, seed))
		if err != nil {
			t.Fatalf("reference solve: %v", err)
		}
		wc, gc := want.Col(0), res.x.Col(0)
		for row := range wc {
			if wc[row] != gc[row] {
				t.Fatalf("clean request %d row %d: %v != %v", i, row, gc[row], wc[row])
			}
		}
	}

	st := s.Stats()
	if st.OK != 2 || st.Faulted != 1 {
		t.Fatalf("stats ok=%v fault=%v, want 2/1", st.OK, st.Faulted)
	}
	// The solver must stay healthy for the next batch.
	if _, _, err := slot.solver.Solve(rhs(n, 9)); err != nil {
		t.Fatalf("solver unhealthy after faulted batch: %v", err)
	}
}

func TestCoalesceDrainFlushesPending(t *testing.T) {
	s, _, h, slot := newTestServer(t, nil)
	r := submit(t, s, slot, rhs(h.N, 0), nil)
	if n := slot.coal.drain(); n != 1 {
		t.Fatalf("drain flushed %d requests, want 1", n)
	}
	res := <-r.done
	if res.err != nil {
		t.Fatalf("drained request: %v", res.err)
	}
	if res.width != 1 {
		t.Fatalf("drained request width = %d, want 1", res.width)
	}
	if s.metrics.flushes.With("drain").Value() != 1 {
		t.Fatal("expected one drain flush")
	}
}

func TestCoalesceStaleTimerIsHarmless(t *testing.T) {
	s, fc, h, slot := newTestServer(t, func(o *Options) { o.MaxBatch = 2 })
	// Fill to max-batch: flush happens immediately, but the max-wait timer
	// for this generation is still scheduled on the fake clock.
	a := submit(t, s, slot, rhs(h.N, 0), nil)
	b := submit(t, s, slot, rhs(h.N, 1), nil)
	<-a.done
	<-b.done
	// Enqueue a fresh request, then fire the stale timer's deadline: only
	// the new generation's own timer may flush it.
	c := submit(t, s, slot, rhs(h.N, 2), nil)
	fc.Advance(10 * time.Millisecond)
	res := <-c.done
	if res.err != nil {
		t.Fatalf("request after stale timer: %v", res.err)
	}
	if res.width != 1 {
		t.Fatalf("width = %d, want 1", res.width)
	}
}
