package server

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the two time operations the serving path performs —
// reading the current time and scheduling a callback — so the queue,
// coalescer, and quota logic run identically under the real wall clock and
// under the test clock. Nothing in this package calls time.Now or
// time.Sleep directly; every duration the server measures or waits on goes
// through a Clock, which is what makes the admission and coalescing tests
// deterministic without a single sleep.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run once, d from now, on its own goroutine
	// (real clock) or during the Advance that reaches its deadline (fake
	// clock).
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the callback; it reports false when the callback has
	// already fired or been stopped.
	Stop() bool
}

// realClock is the production Clock: thin wrappers over package time.
type realClock struct{}

// RealClock returns the wall-clock Clock cmd/serve runs under.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// FakeClock is a manually advanced Clock for tests: Now returns a fixed
// instant until Advance moves it, and AfterFunc callbacks fire
// synchronously inside the Advance call that reaches their deadline, in
// deadline order. Tests therefore control exactly when a coalescer's
// max-wait flush or a token bucket refill happens.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers []*fakeTimer
}

// NewFakeClock returns a FakeClock starting at a fixed, arbitrary epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

type fakeTimer struct {
	clock    *FakeClock
	deadline time.Time
	seq      int // creation order tiebreak for equal deadlines
	f        func()
	stopped  bool
	fired    bool
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock. A non-positive d fires on the next Advance
// (even Advance(0)), never synchronously inside AfterFunc itself — matching
// the real clock's "callback runs later" contract closely enough for the
// coalescer.
func (c *FakeClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, deadline: c.now.Add(d), seq: c.seq, f: f}
	c.seq++
	c.timers = append(c.timers, t)
	return t
}

// Stop implements Timer.
func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves the clock forward by d, firing every pending callback whose
// deadline falls inside the window, in deadline order, with Now() reading
// the callback's own deadline while it runs. Callbacks run on the caller's
// goroutine with no clock lock held, so they may schedule further timers
// (which fire in the same Advance if they fall inside the window).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	end := c.now.Add(d)
	for {
		t := c.nextDueLocked(end)
		if t == nil {
			break
		}
		t.fired = true
		if t.deadline.After(c.now) {
			c.now = t.deadline
		}
		f := t.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
	if end.After(c.now) {
		c.now = end
	}
	c.mu.Unlock()
}

// nextDueLocked pops the earliest unfired, unstopped timer due by end, also
// compacting fired/stopped timers out of the slice.
func (c *FakeClock) nextDueLocked(end time.Time) *fakeTimer {
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			live = append(live, t)
		}
	}
	c.timers = live
	sort.SliceStable(c.timers, func(i, j int) bool {
		if !c.timers[i].deadline.Equal(c.timers[j].deadline) {
			return c.timers[i].deadline.Before(c.timers[j].deadline)
		}
		return c.timers[i].seq < c.timers[j].seq
	})
	if len(c.timers) == 0 || c.timers[0].deadline.After(end) {
		return nil
	}
	return c.timers[0]
}
