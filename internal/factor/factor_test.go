package factor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/gen"
	"sptrsv/internal/order"
	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
)

func factorize(t *testing.T, a *sparse.CSR) *Factors {
	t.Helper()
	s, err := symbolic.Analyze(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(a, s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randomPanel(rng *rand.Rand, rows, cols int) *sparse.Panel {
	p := sparse.NewPanel(rows, cols)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	return p
}

func TestLUProductMatchesA(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := gen.RandomDD(rng, n, 0.2)
		s, err := symbolic.Analyze(a, symbolic.Options{})
		if err != nil {
			return false
		}
		f, err := Factorize(a, s)
		if err != nil {
			return false
		}
		l, u := f.LowerCSR(), f.UpperCSR()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				lu := 0.0
				for k := 0; k <= min(r, c); k++ {
					lu += l.At(r, k) * u.At(k, c)
				}
				if d := lu - a.At(r, c); d > 1e-8 || d < -1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSerialResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range gen.Suite(gen.Small) {
		if m.A.N > 2000 {
			continue // keep the unit test quick; integration tests cover large
		}
		f := factorize(t, m.A)
		b := randomPanel(rng, m.A.N, 3)
		x := f.SolveSerial(b)
		if r := sparse.ResidualInf(m.A, x, b); r > 1e-8 {
			t.Fatalf("%s: residual %g", m.Name, r)
		}
	}
}

func TestSolveSerialWithOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := gen.S2D9pt(20, 20, 9)
	tr := order.NestedDissection(a, 3)
	ap := a.Permute(tr.Perm)
	f := factorize(t, ap)
	b := randomPanel(rng, a.N, 2)
	bp := b.PermuteRows(tr.Perm)
	xp := f.SolveSerial(bp)
	x := xp.PermuteRows(sparse.InversePerm(tr.Perm))
	if r := sparse.ResidualInf(a, x, b); r > 1e-8 {
		t.Fatalf("residual %g after ordering round-trip", r)
	}
}

func TestUnitLowerDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := gen.RandomDD(rng, 40, 0.15)
	f := factorize(t, a)
	for j := 0; j < a.N; j++ {
		if f.LVal[f.S.ColPtr[j]] != 1 {
			t.Fatalf("L diagonal at column %d is %v", j, f.LVal[f.S.ColPtr[j]])
		}
	}
}

func TestUDiagonalLast(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := gen.RandomDD(rng, 40, 0.15)
	f := factorize(t, a)
	for j := 0; j < a.N; j++ {
		hi := f.UColPtr[j+1]
		if f.URowInd[hi-1] != j {
			t.Fatalf("U column %d does not end with diagonal", j)
		}
		for q := f.UColPtr[j] + 1; q < hi; q++ {
			if f.URowInd[q] <= f.URowInd[q-1] {
				t.Fatalf("U column %d rows not ascending", j)
			}
		}
	}
}

func TestZeroPivotRejected(t *testing.T) {
	// A singular matrix (duplicate rows) must produce an error, not NaNs.
	b := sparse.NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1)
	a := b.ToCSR()
	s, err := symbolic.Analyze(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Factorize(a, s); err == nil {
		t.Fatal("expected error on singular matrix")
	}
}

func TestMultiRHSConsistency(t *testing.T) {
	// Solving a 3-column panel must equal three single-column solves.
	rng := rand.New(rand.NewSource(25))
	a := gen.RandomDD(rng, 60, 0.1)
	f := factorize(t, a)
	b := randomPanel(rng, a.N, 3)
	x := f.SolveSerial(b)
	for c := 0; c < 3; c++ {
		single := sparse.NewPanel(a.N, 1)
		copy(single.Col(0), b.Col(c))
		xs := f.SolveSerial(single)
		for i := 0; i < a.N; i++ {
			if x.At(i, c) != xs.At(i, 0) {
				t.Fatalf("column %d row %d: %v vs %v", c, i, x.At(i, c), xs.At(i, 0))
			}
		}
	}
}
