// Package factor computes the numeric LU factorization A = L·U on the fill
// pattern produced by internal/symbolic. It plays the role SuperLU_DIST's
// numeric factorization plays for the paper: the SpTRSV algorithms consume
// its factors; the factorization itself is not a measured quantity.
//
// L is unit lower triangular, U is upper triangular. No pivoting is
// performed — every generator in internal/gen emits strictly diagonally
// dominant matrices, for which LU without pivoting is backward stable.
package factor

import (
	"fmt"
	"math"

	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
)

// Factors holds the numeric LU factors on the symbolic fill pattern.
type Factors struct {
	N int
	S *symbolic.Structure

	// LVal aligns with S.RowInd: column j of L is rows
	// S.RowInd[S.ColPtr[j]:S.ColPtr[j+1]] with these values; the leading
	// diagonal entry stores 1.
	LVal []float64

	// U in column form: column j's rows are URowInd[UColPtr[j]:UColPtr[j+1]],
	// ascending and ending with the diagonal j.
	UColPtr []int
	URowInd []int
	UVal    []float64
}

// Factorize runs the left-looking column LU. It fails if a pivot becomes
// zero or non-finite, which for the intended matrix class indicates a bug
// rather than a hard numerical problem.
func Factorize(a *sparse.CSR, s *symbolic.Structure) (*Factors, error) {
	n := a.N
	if n != s.N {
		return nil, fmt.Errorf("factor: dimension mismatch %d vs %d", n, s.N)
	}
	f := &Factors{N: n, S: s, LVal: make([]float64, len(s.RowInd))}

	// Upper pattern per column j = {k < j : j ∈ pattern(k)} ∪ {j}: the
	// transpose of the L pattern restricted to the strict upper triangle.
	f.UColPtr = make([]int, n+1)
	for j := 0; j < n; j++ {
		rows := s.RowInd[s.ColPtr[j]:s.ColPtr[j+1]]
		for _, r := range rows {
			f.UColPtr[r+1]++ // L entry (r, j) mirrors U entry (j, r) in column r
		}
	}
	for j := 0; j < n; j++ {
		f.UColPtr[j+1] += f.UColPtr[j]
	}
	f.URowInd = make([]int, f.UColPtr[n])
	f.UVal = make([]float64, f.UColPtr[n])
	nextU := make([]int, n)
	copy(nextU, f.UColPtr[:n])
	for k := 0; k < n; k++ {
		rows := s.RowInd[s.ColPtr[k]:s.ColPtr[k+1]]
		for _, r := range rows {
			// L pattern entry (r, k) mirrors U entry (k, r).
			f.URowInd[nextU[r]] = k
			nextU[r]++
		}
	}

	acsc := a.ToCSC()
	work := make([]float64, n)
	for j := 0; j < n; j++ {
		// Scatter A(:, j).
		rows, vals := acsc.Col(j)
		for i, r := range rows {
			work[r] = vals[i]
		}
		// Eliminate with columns k < j in ascending order.
		uStart, uEnd := f.UColPtr[j], f.UColPtr[j+1]
		for p := uStart; p < uEnd-1; p++ { // last entry is the diagonal
			k := f.URowInd[p]
			ukj := work[k]
			f.UVal[p] = ukj
			if ukj == 0 {
				continue
			}
			lo, hi := s.ColPtr[k], s.ColPtr[k+1]
			for q := lo + 1; q < hi; q++ { // skip unit diagonal
				work[s.RowInd[q]] -= ukj * f.LVal[q]
			}
		}
		// Diagonal pivot and L column.
		piv := work[j]
		f.UVal[uEnd-1] = piv
		if piv == 0 || math.IsNaN(piv) || math.IsInf(piv, 0) {
			return nil, fmt.Errorf("factor: bad pivot %v at column %d", piv, j)
		}
		lo, hi := s.ColPtr[j], s.ColPtr[j+1]
		f.LVal[lo] = 1
		for q := lo + 1; q < hi; q++ {
			f.LVal[q] = work[s.RowInd[q]] / piv
		}
		// Gather/clear touched entries.
		for p := uStart; p < uEnd; p++ {
			work[f.URowInd[p]] = 0
		}
		for q := lo; q < hi; q++ {
			work[s.RowInd[q]] = 0
		}
	}
	return f, nil
}

// LowerCSR returns L as a CSR matrix (including the unit diagonal); tests
// and the serial reference solver use it.
func (f *Factors) LowerCSR() *sparse.CSR {
	b := sparse.NewBuilder(f.N)
	for j := 0; j < f.N; j++ {
		lo, hi := f.S.ColPtr[j], f.S.ColPtr[j+1]
		for q := lo; q < hi; q++ {
			b.Add(f.S.RowInd[q], j, f.LVal[q])
		}
	}
	return b.ToCSR()
}

// UpperCSR returns U as a CSR matrix.
func (f *Factors) UpperCSR() *sparse.CSR {
	b := sparse.NewBuilder(f.N)
	for j := 0; j < f.N; j++ {
		lo, hi := f.UColPtr[j], f.UColPtr[j+1]
		for q := lo; q < hi; q++ {
			b.Add(f.URowInd[q], j, f.UVal[q])
		}
	}
	return b.ToCSR()
}

// SolveSerial solves A·x = b by scalar forward/backward substitution on the
// factors — the ground-truth reference every distributed algorithm is
// checked against.
func (f *Factors) SolveSerial(b *sparse.Panel) *sparse.Panel {
	x := b.Clone()
	s := f.S
	for col := 0; col < x.Cols; col++ {
		v := x.Col(col)
		// Forward: L·y = b (unit diagonal).
		for j := 0; j < f.N; j++ {
			yj := v[j]
			if yj == 0 {
				continue
			}
			lo, hi := s.ColPtr[j], s.ColPtr[j+1]
			for q := lo + 1; q < hi; q++ {
				v[s.RowInd[q]] -= f.LVal[q] * yj
			}
		}
		// Backward: U·x = y.
		for j := f.N - 1; j >= 0; j-- {
			lo, hi := f.UColPtr[j], f.UColPtr[j+1]
			v[j] /= f.UVal[hi-1]
			xj := v[j]
			if xj == 0 {
				continue
			}
			for q := lo; q < hi-1; q++ {
				v[f.URowInd[q]] -= f.UVal[q] * xj
			}
		}
	}
	return x
}
