// Package mtx reads and writes Matrix Market coordinate files — the format
// the paper's SuiteSparse test matrices ship in — so users with access to
// the original matrices (nlpkkt80, ldoor, …) can run the solver on them
// directly instead of the generated analogs.
//
// Supported: `matrix coordinate real|integer general|symmetric`. Symmetric
// files are expanded to full storage on read, matching the solver's
// structurally-symmetric expectation.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sptrsv/internal/sparse"
)

// Read parses a Matrix Market stream into a CSR matrix. The matrix must be
// square. Parse errors report the 1-based line number of the offending
// line.
func Read(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	scan := func() bool {
		if !sc.Scan() {
			return false
		}
		lineNo++
		return true
	}

	if !scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mtx: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: only coordinate format supported, got %q", header[2])
	}
	switch header[3] {
	case "real", "integer":
	default:
		return nil, fmt.Errorf("mtx: unsupported field %q", header[3])
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("mtx: unsupported symmetry %q", header[4])
	}

	// Skip comments; read the size line. Exactly three integer fields —
	// fmt.Sscan would silently accept trailing garbage ("2 2 1 extra"),
	// which almost always means a malformed or mislabeled file.
	rows, cols, nnz := 0, 0, -1
	for scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("mtx: line %d: size line %q needs exactly 3 fields (rows cols nnz), got %d", lineNo, line, len(f))
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad row count %q", lineNo, f[0])
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad column count %q", lineNo, f[1])
		}
		if nnz, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad entry count %q", lineNo, f[2])
		}
		if nnz < 0 {
			return nil, fmt.Errorf("mtx: line %d: negative entry count %d", lineNo, nnz)
		}
		break
	}
	if nnz < 0 {
		return nil, fmt.Errorf("mtx: missing size line")
	}
	if rows != cols {
		return nil, fmt.Errorf("mtx: matrix is %dx%d, need square", rows, cols)
	}
	if rows <= 0 {
		return nil, fmt.Errorf("mtx: invalid matrix dimension %d", rows)
	}

	b := sparse.NewBuilder(rows)
	read := 0
	for read < nnz && scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 || len(f) > 3 {
			return nil, fmt.Errorf("mtx: line %d: entry %q needs 2 or 3 fields (row col [value]), got %d", lineNo, line, len(f))
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad row index %q", lineNo, f[0])
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad column index %q", lineNo, f[1])
		}
		v := 1.0
		if len(f) == 3 {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("mtx: line %d: bad value %q", lineNo, f[2])
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: line %d: entry (%d,%d) outside %dx%d matrix", lineNo, i, j, rows, cols)
		}
		b.Add(i-1, j-1, v)
		if symmetric && i != j {
			b.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
	}
	return b.ToCSR(), nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Write emits a in `coordinate real general` form.
func Write(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", a.N, a.N, a.NNZ())
	for r := 0; r < a.N; r++ {
		cols, vals := a.Row(r)
		for i, c := range cols {
			fmt.Fprintf(bw, "%d %d %.17g\n", r+1, c+1, vals[i])
		}
	}
	return bw.Flush()
}

// WriteFile writes a to path in Matrix Market form.
func WriteFile(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
