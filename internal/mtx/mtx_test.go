package mtx

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"sptrsv/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen.RandomDD(rng, 10+rng.Intn(40), 0.15)
		var sb strings.Builder
		if err := Write(&sb, a); err != nil {
			return false
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if back.N != a.N || back.NNZ() != a.NNZ() {
			return false
		}
		for r := 0; r < a.N; r++ {
			for c := 0; c < a.N; c++ {
				if a.At(r, c) != back.At(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
3 1 -1.5
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5 after expansion", a.NNZ())
	}
	if a.At(0, 2) != -1.5 || a.At(2, 0) != -1.5 {
		t.Fatal("mirror entry missing")
	}
}

func TestPatternOnlyEntries(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1\n2 2\n"
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("default values wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"bad header":         "hello\n1 1 1\n",
		"array format":       "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex":            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"rectangular":        "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n",
		"out of range":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"truncated":          "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"bad value":          "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 x\n",
		"size trailing junk": "%%MatrixMarket matrix coordinate real general\n2 2 1 extra\n1 1 1\n",
		"size short":         "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1\n",
		"negative nnz":       "%%MatrixMarket matrix coordinate real general\n2 2 -1\n",
		"zero dimension":     "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"non-numeric size":   "%%MatrixMarket matrix coordinate real general\n2 two 1\n1 1 1\n",
		"entry junk":         "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1 junk\n",
		"zero index":         "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"missing size":       "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

// TestReadErrorLineNumbers pins that parse errors name the offending line —
// the difference between a fixable report and a useless one on a
// multi-gigabyte SuiteSparse download.
func TestReadErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name, in, wantLine string
	}{
		{
			"size line",
			"%%MatrixMarket matrix coordinate real general\n% c\n2 2 1 extra\n1 1 1\n",
			"line 3",
		},
		{
			"entry line",
			"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1\n9 1 1\n",
			"line 4",
		},
		{
			"entry after comment",
			"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n% c\n2 2 1 junk\n",
			"line 5",
		},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Fatalf("%s: error %q does not name %s", tc.name, err, tc.wantLine)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	a := gen.S2D9pt(6, 6, 1)
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("file round trip changed nnz")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
