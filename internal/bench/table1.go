package bench

import "fmt"

// Table1Row is one matrix of the paper's Table 1, for the generated
// analogs: size, nonzeros in the LU factors, and density = nnz(LU)/n².
type Table1Row struct {
	Name        string
	PaperName   string
	Description string
	N           int
	NNZLU       int
	Density     float64
}

// Table1 generates and factors the analog suite, reporting the paper's
// Table 1 columns.
func Table1(cfg Config) []Table1Row {
	l := newLab(cfg)
	var rows []Table1Row
	for _, m := range suiteNames() {
		sys := l.system(m)
		mat := l.systems[m]
		_ = mat
		nnz := sys.NNZFactors()
		rows = append(rows, Table1Row{
			Name:        m,
			PaperName:   paperName(m),
			Description: description(m),
			N:           sys.A.N,
			NNZLU:       nnz,
			Density:     float64(nnz) / (float64(sys.A.N) * float64(sys.A.N)),
		})
	}
	if cfg.Out != nil {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Name, r.PaperName, fmt.Sprint(r.N), fmt.Sprint(r.NNZLU),
				fmt.Sprintf("%.3g%%", 100*r.Density), r.Description,
			})
		}
		fmt.Fprintln(cfg.Out, "Table 1 analog: test matrices (generated; see DESIGN.md for substitutions)")
		table(cfg.Out, []string{"analog", "stands for", "n", "nnz(LU)", "density", "domain"}, cells)
	}
	return rows
}

func suiteNames() []string {
	return []string{"nlpkkt", "gaas", "s1mat", "s2d9pt", "ldoor", "dielfilter"}
}

func paperName(name string) string {
	switch name {
	case "nlpkkt":
		return "nlpkkt80"
	case "gaas":
		return "Ga19As19H42"
	case "s1mat":
		return "s1_mat_0_253872"
	case "s2d9pt":
		return "s2D9pt2048"
	case "ldoor":
		return "ldoor"
	case "dielfilter":
		return "dielFilterV3real"
	}
	return name
}

func description(name string) string {
	switch name {
	case "nlpkkt":
		return "Optimization"
	case "gaas":
		return "Chemistry"
	case "s1mat":
		return "Fusion"
	case "s2d9pt":
		return "Poisson"
	case "ldoor":
		return "Structural"
	case "dielfilter":
		return "Wave"
	}
	return ""
}
