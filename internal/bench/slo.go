package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"sptrsv/internal/metrics"
	"sptrsv/internal/server"
	"sptrsv/internal/server/loadgen"
)

// SLOPoint is one concurrency level of the serving SLO report: what a
// closed-loop client population saw (latency quantiles, throughput, shed
// rate) next to what the server measured about itself (achieved batch
// width, queue-wait vs solve-time split).
type SLOPoint struct {
	Clients  int
	Sent, OK int
	Shed     int

	ThroughputRPS float64
	LatencyP50S   float64
	LatencyP99S   float64

	// LatencyP50ID / LatencyP99ID are the X-Request-IDs of the requests
	// sitting at those quantiles — latency exemplars. While the server is
	// still up, GET /debug/requests/{id} shows exactly where that request's
	// time went (queue wait vs batch assembly vs solve vs encode).
	LatencyP50ID string
	LatencyP99ID string

	// MeanBatchWidth is the achieved coalescing width: requests per panel
	// solve, averaged over flushes. > 1 means single-RHS requests really
	// merged into multi-RHS solves.
	MeanBatchWidth float64
	// QueueWaitP99S / SolveP99S split the server-side p99 into time spent
	// queued (admission → solve start) and time spent solving. The two
	// histograms share one bucket layout, so the comparison is exact.
	QueueWaitP99S float64
	SolveP99S     float64
	ShedRate      float64
}

// SLO runs the serving SLO report: one in-process solve service per
// concurrency level (fresh metrics, so every level's histograms stand
// alone), a closed-loop loadgen population against it, and a table of
// client-observed SLOs next to the server's own accounting.
//
// The shape the tentpole claims: as concurrency grows, MeanBatchWidth
// climbs above 1 — concurrent single-RHS requests ride shared multi-RHS
// panel solves — and per-request throughput grows faster than p99 degrades,
// because a width-w batch costs far less than w sequential solves (the
// paper's nrhs amortization, recast as a serving property).
func SLO(cfg Config) []SLOPoint {
	matrix := "s2d9pt"
	levels := []int{1, 2, 4, 8, 16}
	perClient := 30
	if cfg.Quick {
		levels = []int{1, 4}
		perClient = 8
	}

	var pts []SLOPoint
	for _, clients := range levels {
		cfg.logf("slo %s clients=%d", matrix, clients)
		pt, err := sloLevel(cfg, matrix, clients, clients*perClient)
		if err != nil {
			fmt.Fprintf(cfg.Out, "slo: clients=%d: %v\n", clients, err)
			continue
		}
		pts = append(pts, pt)
	}

	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Serving SLOs: closed-loop clients against the solve service (DES backend, wall-clock serving)")
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				fmt.Sprint(pt.Clients), fmt.Sprint(pt.Sent), fmt.Sprint(pt.OK), fmt.Sprint(pt.Shed),
				fmt.Sprintf("%.0f", pt.ThroughputRPS),
				fmt.Sprintf("%.3g", pt.LatencyP50S*1e3),
				fmt.Sprintf("%.3g", pt.LatencyP99S*1e3),
				fmt.Sprintf("%.2f", pt.MeanBatchWidth),
				fmt.Sprintf("%.3g", pt.QueueWaitP99S*1e3),
				fmt.Sprintf("%.3g", pt.SolveP99S*1e3),
				fmt.Sprintf("%.1f%%", pt.ShedRate*100),
				pt.LatencyP99ID,
			})
		}
		table(cfg.Out, []string{"clients", "sent", "ok", "shed", "req/s",
			"p50 [ms]", "p99 [ms]", "batch width", "queue p99 [ms]", "solve p99 [ms]", "shed rate", "p99 exemplar"}, cells)
	}
	return pts
}

// sloLevel measures one concurrency level on a fresh server.
func sloLevel(cfg Config, matrix string, clients, requests int) (SLOPoint, error) {
	srv, err := server.New(server.Options{
		Ranks:    4,
		MaxBatch: 16,
		MaxWait:  500 * time.Microsecond,
		MaxQueue: 256,
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		return SLOPoint{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	scale := cfg.Scale
	resp, err := http.Post(ts.URL+"/v1/matrices", "application/json",
		strings.NewReader(fmt.Sprintf(`{"generate":{"name":%q,"scale":%q}}`, matrix, scale)))
	if err != nil {
		return SLOPoint{}, err
	}
	var info struct {
		Handle string `json:"handle"`
		N      int    `json:"n"`
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		return SLOPoint{}, err
	}
	if info.Handle == "" {
		return SLOPoint{}, fmt.Errorf("upload returned no handle")
	}

	res, err := loadgen.Run(loadgen.Options{
		BaseURL: ts.URL, Handle: info.Handle, N: info.N,
		Clients: clients, Requests: requests,
		RequestIDs: true,
	})
	if err != nil {
		return SLOPoint{}, err
	}
	st := srv.Stats()
	return SLOPoint{
		Clients: clients, Sent: res.Sent, OK: res.OK, Shed: res.Shed,
		ThroughputRPS:  res.Throughput,
		LatencyP50S:    res.LatencyP50S,
		LatencyP99S:    res.LatencyP99S,
		LatencyP50ID:   res.LatencyP50ID,
		LatencyP99ID:   res.LatencyP99ID,
		MeanBatchWidth: st.MeanBatchWidth,
		QueueWaitP99S:  st.QueueWaitP99,
		SolveP99S:      st.SolveP99,
		ShedRate:       res.ShedRate,
	}, nil
}
