package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// Fig11Point is one configuration of the paper's Fig. 11: the proposed 3D
// algorithm with Px×1×Pz layouts on the Perlmutter model, CPU vs GPU (the
// GPU uses the NVSHMEM multi-GPU model when Px > 1), 1 RHS.
type Fig11Point struct {
	Matrix  string
	Device  string // "cpu" or "gpu"
	Px, Pz  int
	Seconds float64
}

func fig11Matrices() []string { return []string{"s1mat", "nlpkkt", "gaas", "dielfilter"} }

// fig11Configs returns the (Px, Pz) sweep of Fig. 11: the 2D GPU curve
// (Pz=1, Px up to 8 — which crosses the node boundary at Px=8 and stops
// scaling) and the 3D curves (Px ≤ 4 to stay inside one node, Pz up to 64,
// giving up to 256 GPUs).
func fig11Configs(quick bool) [][2]int {
	if quick {
		return [][2]int{{1, 1}, {2, 1}, {2, 4}, {1, 4}}
	}
	var out [][2]int
	for _, px := range []int{1, 2, 4, 8} {
		out = append(out, [2]int{px, 1})
	}
	for _, pz := range []int{2, 4, 8, 16, 32, 64} {
		for _, px := range []int{1, 2, 4} {
			out = append(out, [2]int{px, pz})
		}
	}
	return out
}

// Fig11 runs the Perlmutter multi-GPU scaling sweep.
func Fig11(cfg Config) []Fig11Point {
	l := newLab(cfg)
	cpuModel, gpuModel := machine.PerlmutterCPU(), machine.PerlmutterGPU()
	var pts []Fig11Point
	for _, m := range fig11Matrices() {
		for _, c := range fig11Configs(cfg.Quick) {
			px, pz := c[0], c[1]
			layout := grid.Layout{Px: px, Py: 1, Pz: pz}
			cfg.logf("fig11 %s Px=%d Pz=%d", m, px, pz)
			cpu := l.run(m, runCfg{layout: layout, algo: trsv.Proposed3D, trees: ctree.Auto, model: cpuModel, nrhs: 1})
			pts = append(pts, Fig11Point{Matrix: m, Device: "cpu", Px: px, Pz: pz, Seconds: cpu.Time})
			algo := trsv.GPUMulti
			if px == 1 {
				algo = trsv.GPUSingle
			}
			gpu := l.run(m, runCfg{layout: layout, algo: algo, trees: ctree.Binary, model: gpuModel, nrhs: 1})
			pts = append(pts, Fig11Point{Matrix: m, Device: "gpu", Px: px, Pz: pz, Seconds: gpu.Time})
		}
	}
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Fig. 11 analog: proposed 3D SpTRSV with Px×1×Pz on the Perlmutter model [ms]")
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				pt.Matrix, pt.Device, fmt.Sprint(pt.Px), fmt.Sprint(pt.Pz),
				fmt.Sprint(pt.Px * pt.Pz), fmt.Sprintf("%.4g", pt.Seconds*1e3),
			})
		}
		table(cfg.Out, []string{"matrix", "device", "Px", "Pz", "GPUs", "time"}, cells)
	}
	return pts
}

// TwoDGPUScalingLimit returns, for each matrix, the GPU count at which the
// 2D GPU curve (Pz=1) achieved its best time — the paper's observation
// that 2D GPU SpTRSV stops scaling at 4–8 GPUs (the node boundary).
func TwoDGPUScalingLimit(pts []Fig11Point) map[string]int {
	best := map[string]Fig11Point{}
	for _, pt := range pts {
		if pt.Device != "gpu" || pt.Pz != 1 {
			continue
		}
		if b, ok := best[pt.Matrix]; !ok || pt.Seconds < b.Seconds {
			best[pt.Matrix] = pt
		}
	}
	out := map[string]int{}
	for m, pt := range best {
		out[m] = pt.Px
	}
	return out
}
