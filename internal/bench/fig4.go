package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// Fig4Point is one point of the paper's Fig. 4: SpTRSV time on Cori
// Haswell for one matrix, total rank count P, replication factor Pz, and
// algorithm ("baseline" = baseline 3D with flat trees, "new" = proposed 3D
// with binary trees). Pz=1 gives the two 2D reference algorithms.
type Fig4Point struct {
	Matrix  string
	P, Pz   int
	Algo    string
	Seconds float64
}

// fig4Matrices are the four matrices of Fig. 4.
func fig4Matrices() []string { return []string{"s2d9pt", "nlpkkt", "ldoor", "dielfilter"} }

// fig4Ranks returns the P sweep (the paper: 128…2048).
func fig4Ranks(quick bool) []int {
	if quick {
		return []int{32, 64}
	}
	return []int{128, 256, 512, 1024, 2048}
}

func fig4PzLimit(quick bool) int {
	if quick {
		return 4
	}
	return 32
}

// Fig4 runs the Cori CPU strong-scaling sweep of both 3D algorithms.
func Fig4(cfg Config) []Fig4Point {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	var pts []Fig4Point
	for _, m := range fig4Matrices() {
		for _, p := range fig4Ranks(cfg.Quick) {
			for _, pz := range pzSweep(p, fig4PzLimit(cfg.Quick)) {
				px, py := grid.Square2D(p / pz)
				layout := grid.Layout{Px: px, Py: py, Pz: pz}
				cfg.logf("fig4 %s P=%d Pz=%d", m, p, pz)
				base := l.run(m, runCfg{layout: layout, algo: trsv.Baseline3D, trees: ctree.Flat, model: model, nrhs: 1})
				pts = append(pts, Fig4Point{Matrix: m, P: p, Pz: pz, Algo: "baseline", Seconds: base.Time})
				neu := l.run(m, runCfg{layout: layout, algo: trsv.Proposed3D, trees: ctree.Binary, model: model, nrhs: 1})
				pts = append(pts, Fig4Point{Matrix: m, P: p, Pz: pz, Algo: "new", Seconds: neu.Time})
			}
		}
	}
	if cfg.Out != nil {
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				pt.Matrix, fmt.Sprint(pt.P), fmt.Sprint(pt.Pz), pt.Algo,
				fmt.Sprintf("%.4g", pt.Seconds),
			})
		}
		fmt.Fprintln(cfg.Out, "Fig. 4 analog: SpTRSV time [s] on the Cori Haswell model")
		table(cfg.Out, []string{"matrix", "P", "Pz", "algorithm", "time"}, cells)
		fig4Summary(cfg, pts)
	}
	return pts
}

// Fig4Speedups extracts the paper's headline comparisons: best new-3D time
// vs best baseline-3D time per matrix, and vs the 2D (Pz=1) variants.
type Fig4Speedups struct {
	Matrix         string
	VsBaseline3D   float64 // max over (P): baseline(P, best Pz) / new(P, best Pz)
	Vs2DOptimized  float64 // max over P: new(P, Pz=1) / new(P, best Pz)
	Baseline3DLost bool    // baseline 3D slower than the 2D tree solver somewhere
}

// Speedups computes the Fig. 4 headline ratios from the points.
func Speedups(pts []Fig4Point) []Fig4Speedups {
	type key struct {
		m    string
		p    int
		algo string
	}
	best := map[key]float64{}
	pz1 := map[key]float64{}
	for _, pt := range pts {
		k := key{pt.Matrix, pt.P, pt.Algo}
		if b, ok := best[k]; !ok || pt.Seconds < b {
			best[k] = pt.Seconds
		}
		if pt.Pz == 1 {
			pz1[k] = pt.Seconds
		}
	}
	byMatrix := map[string]*Fig4Speedups{}
	var order []string
	for _, pt := range pts {
		if byMatrix[pt.Matrix] == nil {
			byMatrix[pt.Matrix] = &Fig4Speedups{Matrix: pt.Matrix}
			order = append(order, pt.Matrix)
		}
	}
	for _, pt := range pts {
		if pt.Algo != "new" {
			continue
		}
		s := byMatrix[pt.Matrix]
		kNew := key{pt.Matrix, pt.P, "new"}
		kBase := key{pt.Matrix, pt.P, "baseline"}
		if bb, ok := best[kBase]; ok {
			if r := bb / best[kNew]; r > s.VsBaseline3D {
				s.VsBaseline3D = r
			}
		}
		if t1, ok := pz1[kNew]; ok {
			if r := t1 / best[kNew]; r > s.Vs2DOptimized {
				s.Vs2DOptimized = r
			}
		}
		if bb, ok := best[kBase]; ok {
			if t1, ok2 := pz1[kNew]; ok2 && bb > t1 {
				s.Baseline3DLost = true
			}
		}
	}
	out := make([]Fig4Speedups, 0, len(order))
	for _, m := range order {
		out = append(out, *byMatrix[m])
	}
	return out
}

func fig4Summary(cfg Config, pts []Fig4Point) {
	fmt.Fprintln(cfg.Out, "\nFig. 4 headline ratios (paper: ≤3.45x vs baseline 3D, ≤2.2x vs 2D-optimized):")
	var cells [][]string
	for _, s := range Speedups(pts) {
		cells = append(cells, []string{
			s.Matrix,
			fmt.Sprintf("%.2fx", s.VsBaseline3D),
			fmt.Sprintf("%.2fx", s.Vs2DOptimized),
			fmt.Sprint(s.Baseline3DLost),
		})
	}
	table(cfg.Out, []string{"matrix", "new vs baseline-3D", "new vs 2D-tree", "baseline-3D worse than 2D-tree"}, cells)
}
