package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// LoadBalancePoint is one bar group of the paper's Figs. 7–8: per-rank L-
// and U-solve time statistics (mean, min, max over ranks, Z-comm excluded)
// for one (matrix, P, Pz, algorithm).
type LoadBalancePoint struct {
	Matrix            string
	P, Pz             int
	Algo              string
	LMean, LMin, LMax float64
	UMean, UMin, UMax float64
}

// loadBalanceRanks returns the P values of Figs. 7–8.
func loadBalanceRanks(quick bool) []int {
	if quick {
		return []int{64}
	}
	return []int{128, 1024}
}

// LoadBalance runs the Fig. 7 (s2d9pt) / Fig. 8 (nlpkkt) protocol.
func LoadBalance(cfg Config, matrix string) []LoadBalancePoint {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	var pts []LoadBalancePoint
	for _, p := range loadBalanceRanks(cfg.Quick) {
		for _, pz := range pzSweep(p, fig4PzLimit(cfg.Quick)) {
			px, py := grid.Square2D(p / pz)
			layout := grid.Layout{Px: px, Py: py, Pz: pz}
			cfg.logf("loadbalance %s P=%d Pz=%d", matrix, p, pz)
			for _, algo := range []struct {
				name  string
				a     trsv.Algorithm
				trees ctree.Kind
			}{
				{"baseline", trsv.Baseline3D, ctree.Flat},
				{"new", trsv.Proposed3D, ctree.Auto},
			} {
				rep := l.run(matrix, runCfg{layout: layout, algo: algo.a, trees: algo.trees, model: model, nrhs: 1})
				lm, ll, lh := stats(rep.LSpan)
				um, ul, uh := stats(rep.USpan)
				pts = append(pts, LoadBalancePoint{
					Matrix: matrix, P: p, Pz: pz, Algo: algo.name,
					LMean: lm, LMin: ll, LMax: lh,
					UMean: um, UMin: ul, UMax: uh,
				})
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "Figs. 7/8 analog: per-rank L/U solve time [ms] mean (min–max) for %s on the Cori model\n", matrix)
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				fmt.Sprint(pt.P), fmt.Sprint(pt.Pz), pt.Algo,
				fmt.Sprintf("%.3g (%.3g–%.3g)", pt.LMean*1e3, pt.LMin*1e3, pt.LMax*1e3),
				fmt.Sprintf("%.3g (%.3g–%.3g)", pt.UMean*1e3, pt.UMin*1e3, pt.UMax*1e3),
			})
		}
		table(cfg.Out, []string{"P", "Pz", "algorithm", "L-solve", "U-solve"}, cells)
	}
	return pts
}

// Imbalance returns (max-min)/mean for the L phase of a point — the metric
// behind the paper's observation that the baseline becomes imbalanced at
// large Pz on nlpkkt while the proposed algorithm stays balanced.
func (p LoadBalancePoint) Imbalance() float64 {
	if p.LMean == 0 {
		return 0
	}
	return (p.LMax - p.LMin) / p.LMean
}
