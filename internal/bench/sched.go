package bench

import (
	"fmt"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// SchedPoint is one configuration of the scheduled-vs-handler comparison:
// the same solve run under both execution engines, with the modeled
// quantities (which must agree bit-for-bit — the engines are bit-exact)
// and the steady-state allocations per solve (where the scheduled engine's
// arena and dense counter templates win).
type SchedPoint struct {
	Figure, Matrix, Algorithm, Layout, Machine string

	// HandlerSeconds/SchedSeconds are median modeled makespans; Match
	// reports whether makespan and message totals agreed exactly.
	HandlerSeconds, SchedSeconds float64
	Messages                     int
	Match                        bool

	// HandlerAllocs/SchedAllocs are steady-state allocs per solve;
	// AllocsDelta = 1 − sched/handler (positive = scheduled is leaner).
	HandlerAllocs, SchedAllocs float64
}

// AllocsDelta returns the fractional allocs/op reduction of the scheduled
// engine over the handler oracle (0 when the oracle made no allocations).
func (p SchedPoint) AllocsDelta() float64 {
	if p.HandlerAllocs == 0 {
		return 0
	}
	return 1 - p.SchedAllocs/p.HandlerAllocs
}

// SchedComparison runs the summary's fixed point set under both execution
// engines and renders the before/after table, then appends the critical
// path and level-sweep profile of one traced scheduled solve. This is the
// artifact behind results/sched.txt: identical modeled columns prove the
// refactor changed the execution engine and not the algorithm, and the
// allocs/op column is the scheduled engine's measured win.
func SchedComparison(cfg Config) []SchedPoint {
	l := newLab(cfg)
	var pts []SchedPoint
	for _, pt := range summaryPoints() {
		if pt.rc.exec.Resolve() == trsv.ExecHandler {
			continue // both engines are driven below; skip the oracle twins
		}
		cfg.logf("sched-vs-handler %s %s %s", pt.figure, pt.matrix, pt.rc.algo)
		measure := func(exec trsv.ExecMode) (secs float64, msgs int, allocs float64) {
			rc := pt.rc
			rc.exec = exec
			var ss []float64
			allocs = testing.AllocsPerRun(summaryRepeats, func() {
				rep := l.run(pt.matrix, rc)
				ss = append(ss, rep.Time)
				msgs = 0
				for _, t := range rep.Raw.Timers {
					for _, c := range t.MsgsSent {
						msgs += c
					}
				}
			})
			return median(ss), msgs, allocs
		}
		hs, hm, ha := measure(trsv.ExecHandler)
		ss, sm, sa := measure(trsv.ExecSched)
		pts = append(pts, SchedPoint{
			Figure: pt.figure, Matrix: pt.matrix, Algorithm: pt.rc.algo.String(),
			Layout:         fmt.Sprintf("%dx%dx%d", pt.rc.layout.Px, pt.rc.layout.Py, pt.rc.layout.Pz),
			Machine:        pt.rc.model.Name,
			HandlerSeconds: hs, SchedSeconds: ss, Messages: sm,
			Match:         hs == ss && hm == sm,
			HandlerAllocs: ha, SchedAllocs: sa,
		})
	}

	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "scheduled engine vs handler oracle (modeled columns must match bit-for-bit)")
		var cells [][]string
		for _, p := range pts {
			match := "yes"
			if !p.Match {
				match = "DIFF"
			}
			cells = append(cells, []string{
				p.Figure, p.Matrix, p.Algorithm, p.Layout, p.Machine,
				fmt.Sprintf("%.6g", p.HandlerSeconds*1e3),
				fmt.Sprintf("%.6g", p.SchedSeconds*1e3),
				fmt.Sprint(p.Messages),
				match,
				fmt.Sprintf("%.0f", p.HandlerAllocs),
				fmt.Sprintf("%.0f", p.SchedAllocs),
				fmt.Sprintf("%+.1f%%", -100*p.AllocsDelta()),
			})
		}
		table(cfg.Out, []string{"figure", "matrix", "algorithm", "layout", "machine",
			"handler ms", "sched ms", "msgs", "match", "handler allocs", "sched allocs", "Δallocs"}, cells)
		schedProfile(cfg, l)
	}
	return pts
}

// schedProfile traces one scheduled solve and prints its level-sweep
// profile and critical path — the analyzer view of what the level
// schedule did to the execution shape.
func schedProfile(cfg Config, l *lab) {
	rc := runCfg{
		layout: grid.Layout{Px: 4, Py: 4, Pz: 4},
		algo:   trsv.Proposed3D, trees: ctree.Binary,
		model: machine.CoriHaswell(), nrhs: 1,
		backend: trsv.SimBackend{Opts: runtime.Options{Trace: true}},
	}
	rep := l.run("s2d9pt", rc)
	fmt.Fprintf(cfg.Out, "\ntraced scheduled solve: s2d9pt proposed-3d 4x4x4 binary on cori-haswell\n")
	if ss, err := rep.Raw.LevelSweeps(); err == nil {
		fmt.Fprintf(cfg.Out, "level sweeps: %d sweeps covering %d tasks, mean %.1f tasks/sweep, widest %d\n",
			ss.Sweeps, ss.Tasks, ss.MeanTasks(), ss.MaxTasks)
	}
	cp, err := rep.Raw.CriticalPath()
	if err != nil {
		fmt.Fprintf(cfg.Out, "critical path unavailable: %v\n", err)
		return
	}
	fmt.Fprintf(cfg.Out, "critical path: %.6g s = %.0f%% of the %.6g s makespan (%d steps, %d message hops, %.4g s latency)\n",
		cp.Length, 100*cp.Length/cp.Makespan, cp.Makespan, len(cp.Steps), cp.MsgHops, cp.LatencySeconds)
	for c := runtime.Category(0); int(c) < runtime.NumCategories; c++ {
		if w := cp.WorkByCat[c]; w > 0 {
			fmt.Fprintf(cfg.Out, "  work on chain (%s): %.4g s\n", c, w)
		}
	}
}
