package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// SummarySchema versions the BENCH_SPTRSV.json layout. Bump it whenever a
// field changes meaning; readers refuse to compare across schema versions
// rather than silently comparing incompatible quantities.
//
// Schema 2: Bytes counts the packed sparse wire format (per-entry headers,
// index+value payloads, trailing-zero-column suppression) instead of the
// flat dense panel model of schema 1 — the two byte columns are not
// comparable.
const SummarySchema = 2

// summaryRepeats is how many measured solves back each record. The
// discrete-event backend is deterministic, so the median over repeats
// equals any single run — the repeats exist so allocs/op is a steady-state
// number (pools warm) and so the pipeline keeps working if a wall-clock
// backend is ever added.
const summaryRepeats = 3

// SummaryRecord is one benchmark point of the machine-readable summary:
// a (figure, matrix, algorithm, layout, machine) configuration with its
// modeled makespan, total message traffic, and steady-state allocations
// per solve.
type SummaryRecord struct {
	ID        string `json:"id"`
	Figure    string `json:"figure"`
	Matrix    string `json:"matrix"`
	Algorithm string `json:"algorithm"`
	Layout    string `json:"layout"`
	Trees     string `json:"trees"`
	Machine   string `json:"machine"`
	NRHS      int    `json:"nrhs"`
	// Exec is the execution engine the record ran under ("sched" or
	// "handler"; empty in summaries written before the engine existed,
	// which ran the handler path). Handler records carry an "/exec=handler"
	// ID suffix so the scheduled default keeps the historical IDs.
	Exec string `json:"exec,omitempty"`
	// Seconds is the median modeled makespan over summaryRepeats solves.
	Seconds float64 `json:"seconds"`
	// Messages and Bytes are totals over all ranks and categories for one
	// solve — bit-identical across runs on the discrete-event backend.
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
	// AllocsPerOp is the average heap allocations per solve once the
	// solver's buffer and state pools are warm. Tracked to catch
	// accidental per-solve allocation creep; regressions warn, not fail.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Summary is the whole BENCH_SPTRSV.json document.
type Summary struct {
	Schema  int             `json:"schema"`
	Scale   string          `json:"scale"`
	Records []SummaryRecord `json:"records"`
}

// summaryPoint names one configuration of the summary's fixed point set.
type summaryPoint struct {
	figure string
	matrix string
	rc     runCfg
}

// summaryPoints is the fixed benchmark set behind BENCH_SPTRSV.json: a
// compact slice through the paper's figures — Fig. 4's CPU strong-scaling
// comparison (both 3D algorithms, replicated and unreplicated), one GPU
// point from each of Figs. 9/10, and the naive-allreduce ablation. Small
// enough to run in CI, broad enough that a regression in any algorithm's
// kernel or communication path moves at least one record.
//
// Every point runs the default scheduled engine under its historical ID.
// A subset is duplicated under the handler oracle (ID suffix
// "/exec=handler") so the summary pins both engines: the oracle records
// keep the handler path honest, and the sched-vs-oracle allocs/op gap is
// the scheduled engine's measured win (see SchedComparison).
func summaryPoints() []summaryPoint {
	cori := machine.CoriHaswell()
	var pts []summaryPoint
	for _, m := range []string{"s2d9pt", "nlpkkt"} {
		for _, pz := range []int{1, 4} {
			px, py := grid.Square2D(64 / pz)
			layout := grid.Layout{Px: px, Py: py, Pz: pz}
			pts = append(pts,
				summaryPoint{"fig4", m, runCfg{layout: layout, algo: trsv.Baseline3D, trees: ctree.Flat, model: cori, nrhs: 1}},
				summaryPoint{"fig4", m, runCfg{layout: layout, algo: trsv.Proposed3D, trees: ctree.Binary, model: cori, nrhs: 1}})
		}
	}
	gpuLayout := grid.Layout{Px: 1, Py: 1, Pz: 4}
	pts = append(pts,
		summaryPoint{"fig9", "s1mat", runCfg{layout: gpuLayout, algo: trsv.GPUSingle, trees: ctree.Auto, model: machine.CrusherGPU(), nrhs: 1}},
		summaryPoint{"fig10", "s2d9pt", runCfg{layout: gpuLayout, algo: trsv.GPUSingle, trees: ctree.Auto, model: machine.PerlmutterGPU(), nrhs: 1}},
		summaryPoint{"ablation", "s2d9pt", runCfg{layout: grid.Layout{Px: 4, Py: 4, Pz: 4}, algo: trsv.Proposed3DNaiveAR, trees: ctree.Binary, model: cori, nrhs: 1}})
	// Handler-oracle twins: the s2d9pt fig4 points plus both GPU points.
	n := len(pts)
	for i := 0; i < n; i++ {
		pt := pts[i]
		if pt.matrix != "s2d9pt" && pt.figure != "fig9" {
			continue
		}
		pt.rc.exec = trsv.ExecHandler
		pts = append(pts, pt)
	}
	return pts
}

// BuildSummary runs the fixed point set at cfg.Scale and returns the
// machine-readable summary. Quick is ignored: the point set is already
// CI-sized, and shrinking it would change record IDs and break baseline
// comparison.
func BuildSummary(cfg Config) *Summary {
	l := newLab(cfg)
	sum := &Summary{Schema: SummarySchema, Scale: l.cfg.Scale.String()}
	for _, pt := range summaryPoints() {
		rc := pt.rc
		cfg.logf("summary %s %s %s %dx%dx%d", pt.figure, pt.matrix, rc.algo,
			rc.layout.Px, rc.layout.Py, rc.layout.Pz)
		var secs []float64
		var msgs, bytes int
		// AllocsPerRun calls the function once extra to warm up, which
		// absorbs factorization and solver construction; the measured
		// repeats see only steady-state per-solve allocations.
		allocs := testing.AllocsPerRun(summaryRepeats, func() {
			rep := l.run(pt.matrix, rc)
			secs = append(secs, rep.Time)
			msgs, bytes = 0, 0
			for _, t := range rep.Raw.Timers {
				for _, c := range t.MsgsSent {
					msgs += c
				}
				for _, c := range t.BytesSent {
					bytes += c
				}
			}
		})
		id := fmt.Sprintf("%s/%s/%s/%dx%dx%d/%s/%s/nrhs=%d",
			pt.figure, pt.matrix, rc.algo, rc.layout.Px, rc.layout.Py, rc.layout.Pz,
			rc.trees, rc.model.Name, rc.nrhs)
		if rc.exec.Resolve() == trsv.ExecHandler {
			id += "/exec=handler"
		}
		sum.Records = append(sum.Records, SummaryRecord{
			ID:          id,
			Figure:      pt.figure,
			Matrix:      pt.matrix,
			Algorithm:   rc.algo.String(),
			Layout:      fmt.Sprintf("%dx%dx%d", rc.layout.Px, rc.layout.Py, rc.layout.Pz),
			Trees:       rc.trees.String(),
			Machine:     rc.model.Name,
			NRHS:        rc.nrhs,
			Exec:        rc.exec.Resolve().String(),
			Seconds:     median(secs),
			Messages:    msgs,
			Bytes:       bytes,
			AllocsPerOp: allocs,
		})
	}
	return sum
}

// WriteJSON writes the summary as indented JSON with a trailing newline —
// the exact bytes committed as BENCH_SPTRSV.json.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSummary loads a committed summary. A missing or unreadable file
// comes back as the os.Open error (callers map it to their input-error
// exit code); a parseable file with the wrong schema version is rejected
// here because comparing across schemas would be silently wrong.
func ReadSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: not a benchmark summary: %v", path, err)
	}
	if s.Schema != SummarySchema {
		return nil, fmt.Errorf("%s: schema %d, this binary understands %d (regenerate with -only bench)",
			path, s.Schema, SummarySchema)
	}
	return &s, nil
}

// Regression is one difference between a current summary and the
// baseline. Fatal regressions fail the gate: latency above the tolerance,
// any message-count increase, bytes above the byte tolerance, or a
// baseline record the current build no longer produces. Everything else
// (allocs creep, records new in the current build) is a warning.
type Regression struct {
	ID     string
	Detail string
	Fatal  bool
}

func (r Regression) String() string {
	sev := "warn"
	if r.Fatal {
		sev = "FAIL"
	}
	return fmt.Sprintf("%s  %s: %s", sev, r.ID, r.Detail)
}

// CompareSummaries checks cur against base and returns every regression,
// fatal ones first. latencyTol is the fractional slowdown allowed per
// record (0.05 = 5%); bytesTol is the fractional byte growth allowed
// (0 = any increase fails — bytes are deterministic on the simulation
// backend, so growth is a real accounting or packing change); message
// counts allow none — the paper's headline claim is fewer messages, so
// even one more is a regression. It is an error (not a regression) to
// compare summaries of different scales.
func CompareSummaries(cur, base *Summary, latencyTol, bytesTol float64) ([]Regression, error) {
	if cur.Scale != base.Scale {
		return nil, fmt.Errorf("scale mismatch: current %q vs baseline %q", cur.Scale, base.Scale)
	}
	byID := make(map[string]SummaryRecord, len(cur.Records))
	for _, r := range cur.Records {
		byID[r.ID] = r
	}
	var regs []Regression
	add := func(id string, fatal bool, format string, args ...any) {
		regs = append(regs, Regression{ID: id, Fatal: fatal, Detail: fmt.Sprintf(format, args...)})
	}
	for _, b := range base.Records {
		c, ok := byID[b.ID]
		if !ok {
			add(b.ID, true, "record in baseline but not produced by this build")
			continue
		}
		delete(byID, b.ID)
		if b.Seconds > 0 && c.Seconds > b.Seconds*(1+latencyTol) {
			add(b.ID, true, "latency %.6g s vs baseline %.6g s (+%.1f%%, tolerance %.1f%%)",
				c.Seconds, b.Seconds, 100*(c.Seconds/b.Seconds-1), 100*latencyTol)
		}
		if c.Messages > b.Messages {
			add(b.ID, true, "messages %d vs baseline %d (+%d)", c.Messages, b.Messages, c.Messages-b.Messages)
		}
		if float64(c.Bytes) > float64(b.Bytes)*(1+bytesTol) {
			add(b.ID, true, "bytes %d vs baseline %d (+%d, tolerance %.1f%%)",
				c.Bytes, b.Bytes, c.Bytes-b.Bytes, 100*bytesTol)
		}
		// Allocation counts jitter by a handful of allocs run to run (GC
		// timing, map growth); only a >1% rise is worth a warning.
		if c.AllocsPerOp > b.AllocsPerOp*1.01 {
			add(b.ID, false, "allocs/op %.0f vs baseline %.0f (+%.1f%%)",
				c.AllocsPerOp, b.AllocsPerOp, 100*(c.AllocsPerOp/b.AllocsPerOp-1))
		}
	}
	for _, id := range sortedKeysStr(byID) {
		add(id, false, "record not in baseline (refresh with -only bench)")
	}
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].Fatal && !regs[j].Fatal })
	return regs, nil
}

// median returns the median of v (0 for empty input).
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
