package bench

import (
	"strings"
	"testing"

	"sptrsv/internal/gen"
)

// TestSchedComparison is the engine refactor's acceptance check: on every
// summary point the scheduled engine reproduces the handler oracle's
// modeled makespan and message totals exactly, and on the GPU fig9 point
// (and the fig4 CPU points) it cuts steady-state allocs/op by more
// than 10%.
func TestSchedComparison(t *testing.T) {
	var out strings.Builder
	pts := SchedComparison(Config{Scale: gen.Small, Out: &out})
	if len(pts) == 0 {
		t.Fatal("no comparison points")
	}
	var fig9Checked, fig4Leaner bool
	for _, p := range pts {
		if !p.Match {
			t.Errorf("%s/%s/%s %s: modeled quantities differ between engines (handler %.9g s, sched %.9g s)",
				p.Figure, p.Matrix, p.Algorithm, p.Layout, p.HandlerSeconds, p.SchedSeconds)
		}
		if p.Figure == "fig9" {
			fig9Checked = true
			if p.AllocsDelta() < 0.10 {
				t.Errorf("fig9 %s/%s: sched saves only %.1f%% allocs/op (handler %.0f, sched %.0f), want >10%%",
					p.Matrix, p.Layout, 100*p.AllocsDelta(), p.HandlerAllocs, p.SchedAllocs)
			}
		}
		if p.Figure == "fig4" && p.AllocsDelta() > 0.10 {
			fig4Leaner = true
		}
	}
	if !fig9Checked {
		t.Error("no fig9 point in the comparison")
	}
	if !fig4Leaner {
		t.Error("no fig4 CPU point shows a >10% allocs/op reduction")
	}
	if !strings.Contains(out.String(), "level sweeps") {
		t.Error("profile output missing the level-sweep line")
	}
}
