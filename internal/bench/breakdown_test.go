package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestBreakdownDetailQuick(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg()
	cfg.Out = &buf
	rows := BreakdownDetail(cfg)
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12 (3 matrices x 4 algorithms)", len(rows))
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algo] = true
		if r.Makespan <= 0 {
			t.Fatalf("%s/%s: non-positive makespan %g", r.Matrix, r.Algo, r.Makespan)
		}
		if r.CritPath <= 0 || r.CritPath > r.Makespan*(1+1e-12) {
			t.Fatalf("%s/%s: critical path %g outside (0, makespan=%g]",
				r.Matrix, r.Algo, r.CritPath, r.Makespan)
		}
		// CPU algorithms model FP work as compute seconds; the GPU models
		// charge task cost through scheduled delays instead, so only the
		// total split needs to be non-empty there.
		if strings.HasSuffix(r.Algo, "-3d") && r.Compute <= 0 {
			t.Fatalf("%s/%s: no compute time on a real solve", r.Matrix, r.Algo)
		}
		if r.Compute+r.Send+r.Recv+r.Elapse+r.WaitXY+r.WaitZ <= 0 {
			t.Fatalf("%s/%s: empty breakdown row", r.Matrix, r.Algo)
		}
		if r.MsgHops < 0 {
			t.Fatalf("%s/%s: negative hop count", r.Matrix, r.Algo)
		}
	}
	for _, want := range []string{"baseline-3d", "proposed-3d", "gpu-single", "gpu-multi"} {
		if !algos[want] {
			t.Fatalf("missing algorithm %q in breakdown rows", want)
		}
	}
	out := buf.String()
	for _, col := range []string{"compute", "waitXY", "waitZ", "cp/T"} {
		if !strings.Contains(out, col) {
			t.Fatalf("rendered table missing column %q:\n%s", col, out)
		}
	}
}
