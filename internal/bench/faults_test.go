package bench

import (
	"strings"
	"testing"
)

func TestFaultSweepQuick(t *testing.T) {
	pts := FaultSweep(quickCfg())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	byAlgo := map[string][]FaultPoint{}
	for _, pt := range pts {
		if pt.Seconds <= 0 {
			t.Fatalf("nonpositive time: %+v", pt)
		}
		// Benign faults only slow runs down: degradation ≥ 1 up to noise
		// (the DES is exact, so the only slack needed is float rounding).
		if pt.Degradation < 1-1e-9 {
			t.Fatalf("fault sped up the solve: %+v", pt)
		}
		byAlgo[pt.Algo] = append(byAlgo[pt.Algo], pt)
	}
	if len(byAlgo) != 2 {
		t.Fatalf("expected both algorithms, got %v", len(byAlgo))
	}
	for algo, rows := range byAlgo {
		// Rows arrive in plan order: healthy, straggler x2, x4, x8, jitter…
		if rows[0].Fault != "healthy" || rows[0].Degradation != 1 {
			t.Fatalf("%s: first row not the healthy reference: %+v", algo, rows[0])
		}
		var stragglers []FaultPoint
		for _, r := range rows {
			if strings.HasPrefix(r.Fault, "straggler") {
				stragglers = append(stragglers, r)
			}
		}
		if len(stragglers) != 3 {
			t.Fatalf("%s: expected 3 straggler points, got %d", algo, len(stragglers))
		}
		// A worsening straggler cannot make the solve faster.
		for i := 1; i < len(stragglers); i++ {
			if stragglers[i].Degradation < stragglers[i-1].Degradation-1e-9 {
				t.Fatalf("%s: degradation not monotone: %+v then %+v",
					algo, stragglers[i-1], stragglers[i])
			}
		}
		// The straggling rank does real work in these layouts, so a factor-8
		// slowdown must visibly stretch the makespan.
		if last := stragglers[len(stragglers)-1]; last.Degradation < 1.05 {
			t.Fatalf("%s: straggler x8 degradation %g suspiciously small", algo, last.Degradation)
		}
	}
}
