package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sptrsv/internal/gen"
)

func smallSummary(t *testing.T) *Summary {
	t.Helper()
	return BuildSummary(Config{Scale: gen.Small})
}

// TestSummaryDeterminism: the summary's modeled quantities come from the
// discrete-event backend, so two builds must agree exactly — this is what
// makes the >0%-message-count regression gate usable at all. AllocsPerOp
// is excluded: it measures the Go heap, not the model.
func TestSummaryDeterminism(t *testing.T) {
	a, b := smallSummary(t), smallSummary(t)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.ID != rb.ID {
			t.Fatalf("record %d: id %q vs %q", i, ra.ID, rb.ID)
		}
		if ra.Seconds != rb.Seconds || ra.Messages != rb.Messages || ra.Bytes != rb.Bytes {
			t.Errorf("%s: (%v s, %d msgs, %d B) vs (%v s, %d msgs, %d B)",
				ra.ID, ra.Seconds, ra.Messages, ra.Bytes, rb.Seconds, rb.Messages, rb.Bytes)
		}
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	sum := smallSummary(t)
	path := filepath.Join(t.TempDir(), "BENCH_SPTRSV.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, got) {
		t.Fatalf("round trip changed the summary:\nwrote %+v\nread  %+v", sum, got)
	}
}

func TestReadSummaryRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "scale": "small"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSummary(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSummary(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestCompareSummaries(t *testing.T) {
	base := &Summary{Schema: SummarySchema, Scale: "small", Records: []SummaryRecord{
		{ID: "a", Seconds: 1.0, Messages: 100, Bytes: 1000, AllocsPerOp: 50},
		{ID: "b", Seconds: 2.0, Messages: 200, Bytes: 2000, AllocsPerOp: 60},
		{ID: "gone", Seconds: 3.0, Messages: 300, Bytes: 3000, AllocsPerOp: 70},
	}}
	cur := &Summary{Schema: SummarySchema, Scale: "small", Records: []SummaryRecord{
		// a: 10% slower (fatal at 5% tolerance), one extra message (fatal),
		// more bytes (fatal at 0% tolerance), >1% more allocs (warn).
		{ID: "a", Seconds: 1.1, Messages: 101, Bytes: 1100, AllocsPerOp: 52},
		// b: faster and leaner — improvements are silent.
		{ID: "b", Seconds: 1.5, Messages: 150, Bytes: 1500, AllocsPerOp: 55},
		// new: not in the baseline (warn).
		{ID: "new", Seconds: 1.0, Messages: 10, Bytes: 100, AllocsPerOp: 5},
	}}
	regs, err := CompareSummaries(cur, base, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	fatal, warn := 0, 0
	for _, r := range regs {
		if r.Fatal {
			fatal++
		} else {
			warn++
		}
		if r.ID == "b" {
			t.Errorf("improvement flagged: %v", r)
		}
	}
	// a: latency + messages + bytes fatal; "gone" missing fatal. a: allocs
	// warn; "new" unknown-record warn.
	if fatal != 4 || warn != 2 {
		t.Fatalf("fatal=%d warn=%d, want 4 and 2; regressions: %v", fatal, warn, regs)
	}
	for i := 1; i < len(regs); i++ {
		if regs[i].Fatal && !regs[i-1].Fatal {
			t.Fatal("fatal regressions must sort first")
		}
	}
	// Within tolerance: 4% slower, equal messages → clean.
	okCur := &Summary{Schema: SummarySchema, Scale: "small", Records: []SummaryRecord{
		{ID: "a", Seconds: 1.04, Messages: 100, Bytes: 1000, AllocsPerOp: 50},
		{ID: "b", Seconds: 2.0, Messages: 200, Bytes: 2000, AllocsPerOp: 60},
		{ID: "gone", Seconds: 3.0, Messages: 300, Bytes: 3000, AllocsPerOp: 70},
	}}
	if regs, err := CompareSummaries(okCur, base, 0.05, 0); err != nil || len(regs) != 0 {
		t.Fatalf("clean comparison reported %v, %v", regs, err)
	}
	// A nonzero byte tolerance admits growth inside it.
	tolCur := &Summary{Schema: SummarySchema, Scale: "small", Records: []SummaryRecord{
		{ID: "a", Seconds: 1.0, Messages: 100, Bytes: 1040, AllocsPerOp: 50},
		{ID: "b", Seconds: 2.0, Messages: 200, Bytes: 2000, AllocsPerOp: 60},
		{ID: "gone", Seconds: 3.0, Messages: 300, Bytes: 3000, AllocsPerOp: 70},
	}}
	if regs, err := CompareSummaries(tolCur, base, 0.05, 0.05); err != nil || len(regs) != 0 {
		t.Fatalf("bytes within tolerance reported %v, %v", regs, err)
	}
	if regs, err := CompareSummaries(tolCur, base, 0.05, 0.01); err != nil || len(regs) != 1 || !regs[0].Fatal {
		t.Fatalf("bytes beyond tolerance must be one fatal regression, got %v, %v", regs, err)
	}
	if _, err := CompareSummaries(&Summary{Schema: SummarySchema, Scale: "medium"}, base, 0.05, 0); err == nil {
		t.Fatal("scale mismatch must be an error")
	}
}
