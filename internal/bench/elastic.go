package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// ElasticPoint is one entry of the elasticity sweep: an algorithm run under
// a network straggler (every message one rank sends is delivered late) in
// strict mode or in elastic mode at some staleness bound, with the total
// modeled time — for elastic runs, including every iterative-refinement
// pass — and the refinement outcome.
type ElasticPoint struct {
	Matrix string
	Algo   string
	P, Pz  int
	// DelayMS is the injected per-message delivery delay in milliseconds
	// (0 for the healthy reference rows).
	DelayMS float64
	// Mode is "strict" or "elastic S=<n>".
	Mode string
	// Seconds is the end-to-end modeled time: the elastic rows fold in all
	// refinement passes, so strict and elastic compare at equal rigor —
	// both end in a verified solution.
	Seconds float64
	// VsStrict is Seconds / the strict Seconds of the same (algo, delay)
	// point: < 1 means elastic finished its verified solution sooner.
	VsStrict float64
	// RefinePasses, StaleSupernodes, Residual describe the elastic
	// refinement (zeros and the machine-precision residual under strict).
	RefinePasses    int
	StaleSupernodes int
	Residual        float64
}

// elasticDelays is the straggler severity axis in seconds: the smallest
// point is absorbed by the staleness slack (zero forcing, elastic == strict)
// while the largest makes every strict algorithm serialize on tens of late
// hops — the paper's degraded-node regime.
func elasticDelays(quick bool) []float64 {
	if quick {
		return []float64{20e-3}
	}
	return []float64{2e-3, 10e-3, 20e-3}
}

// elasticStaleness is the staleness-bound axis in dependency levels.
func elasticStaleness(quick bool) []int {
	if quick {
		return []int{4}
	}
	return []int{4, 16}
}

// ElasticSweep measures the elastic stale-synchronous mode against strict
// execution under network stragglers on the fig4 CPU points (both 3D
// algorithms, Cori model): straggler severity × staleness bound. Strict
// execution waits out every delayed delivery, so its makespan grows
// linearly with the injected delay; an elastic rank instead forces progress
// once it falls S levels behind, finishes on its deadline schedule
// independent of the delay, and pays for the stale reads with iterative
// refinement passes until the true residual meets the tolerance. Every
// point ends residual-verified (lab.run panics otherwise), so the sweep is
// also the end-to-end proof of the "verified solution or typed fault"
// contract under elasticity.
func ElasticSweep(cfg Config) []ElasticPoint {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	matrix := "s2d9pt"
	p, pz := 64, 4
	if cfg.Quick {
		p, pz = 16, 2
	}
	px, py := grid.Square2D(p / pz)
	layout := grid.Layout{Px: px, Py: py, Pz: pz}

	algos := []struct {
		name  string
		algo  trsv.Algorithm
		trees ctree.Kind
	}{
		{"proposed-3d", trsv.Proposed3D, ctree.Binary},
		{"baseline-3d", trsv.Baseline3D, ctree.Flat},
	}

	var pts []ElasticPoint
	for _, a := range algos {
		for _, d := range append([]float64{0}, elasticDelays(cfg.Quick)...) {
			var plan *fault.Plan
			if d > 0 {
				plan = &fault.Plan{Seed: 1, NetDelay: map[int]float64{0: d}}
			}
			back := trsv.SimBackend{Opts: runtime.Options{Faults: plan}}

			cfg.logf("elastic %s %s P=%d Pz=%d delay=%gms strict", matrix, a.name, p, pz, d*1e3)
			strict := l.run(matrix, runCfg{
				layout: layout, algo: a.algo, trees: a.trees, model: model, nrhs: 1,
				backend: back, mode: trsv.ModeStrict,
			})
			pts = append(pts, ElasticPoint{
				Matrix: matrix, Algo: a.name, P: p, Pz: pz, DelayMS: d * 1e3,
				Mode: "strict", Seconds: strict.Time, VsStrict: 1,
			})
			for _, s := range elasticStaleness(cfg.Quick) {
				cfg.logf("elastic %s %s P=%d Pz=%d delay=%gms S=%d", matrix, a.name, p, pz, d*1e3, s)
				el := l.run(matrix, runCfg{
					layout: layout, algo: a.algo, trees: a.trees, model: model, nrhs: 1,
					backend: back, mode: trsv.ModeElastic, staleness: s,
				})
				pts = append(pts, ElasticPoint{
					Matrix: matrix, Algo: a.name, P: p, Pz: pz, DelayMS: d * 1e3,
					Mode: fmt.Sprintf("elastic S=%d", s), Seconds: el.Time,
					VsStrict:     el.Time / strict.Time,
					RefinePasses: el.RefinePasses, StaleSupernodes: el.StaleSupernodes,
					Residual: el.Residual,
				})
			}
		}
	}

	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Elasticity sweep: strict vs elastic under network stragglers (Cori model, DES backend)")
		fmt.Fprintln(cfg.Out, "every row ends in a residual-verified solution; elastic times include all refinement passes")
		var cells [][]string
		for _, pt := range pts {
			res := "-"
			if pt.RefinePasses > 0 {
				res = fmt.Sprintf("%.3g", pt.Residual)
			}
			cells = append(cells, []string{
				pt.Matrix, pt.Algo, fmt.Sprint(pt.P), fmt.Sprint(pt.Pz),
				fmt.Sprintf("%g", pt.DelayMS), pt.Mode,
				fmt.Sprintf("%.4g", pt.Seconds*1e3),
				fmt.Sprintf("%.3f", pt.VsStrict),
				fmt.Sprint(pt.RefinePasses), fmt.Sprint(pt.StaleSupernodes), res,
			})
		}
		table(cfg.Out, []string{"matrix", "algorithm", "P", "Pz", "delay [ms]", "mode",
			"time [ms]", "vs strict", "refine", "stale sn", "refined residual"}, cells)
	}
	return pts
}
