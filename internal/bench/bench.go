// Package bench regenerates every table and figure of the paper's
// evaluation (Table 1, Figs. 4–11) on the discrete-event backend. Each
// experiment returns typed rows — tests assert on the shapes the paper
// claims — and renders an aligned text table.
//
// Absolute times are modeled, not measured on the original systems; the
// quantities that must match the paper are the shapes: who wins, by
// roughly what factor, and where scaling stops. EXPERIMENTS.md records the
// comparison.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// Config controls the experiment sweeps.
type Config struct {
	Scale gen.Scale
	// Quick shrinks every sweep (fewer ranks, fewer points) so the whole
	// set runs in seconds; used by unit tests and testing.B benchmarks.
	Quick bool
	// Verbose echoes progress lines to Out while sweeping.
	Verbose bool
	Out     io.Writer
	// Mode, Staleness, RefineTol, and RefineMax select the solve mode every
	// experiment point runs in (strict when zero). Fault-free sweeps are
	// bit-identical across modes, so regenerating a figure under
	// Mode=elastic is a cheap end-to-end check that elasticity is overhead-
	// free when healthy. Points that set their own mode (the elasticity
	// sweep) ignore these.
	Mode      trsv.SolveMode
	Staleness int
	RefineTol float64
	RefineMax int
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose && c.Out != nil {
		fmt.Fprintf(c.Out, "# "+format+"\n", args...)
	}
}

// treeDepth is the recorded ND depth: supports Pz ≤ 64 everywhere.
const treeDepth = 6

// lab caches factored systems and right-hand sides across experiments —
// factorization dominates setup time, exactly as the paper notes about its
// own runs.
type lab struct {
	cfg     Config
	systems map[string]*core.System
	rhs     map[string]*sparse.Panel
	solvers map[string]*core.Solver
}

func newLab(cfg Config) *lab {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	return &lab{
		cfg:     cfg,
		systems: map[string]*core.System{},
		rhs:     map[string]*sparse.Panel{},
		solvers: map[string]*core.Solver{},
	}
}

func (l *lab) system(name string) *core.System {
	if s, ok := l.systems[name]; ok {
		return s
	}
	m := gen.Named(name, l.cfg.Scale)
	l.cfg.logf("factorizing %s (n=%d, nnz=%d)", name, m.A.N, m.A.NNZ())
	sys, err := core.Factorize(m.A, core.FactorOptions{TreeDepth: treeDepth})
	if err != nil {
		panic(fmt.Sprintf("bench: factorize %s: %v", name, err))
	}
	l.systems[name] = sys
	return sys
}

// b returns a deterministic right-hand side for the matrix with nrhs
// columns (in the original ordering).
func (l *lab) b(name string, nrhs int) *sparse.Panel {
	key := fmt.Sprintf("%s/%d", name, nrhs)
	if p, ok := l.rhs[key]; ok {
		return p
	}
	sys := l.system(name)
	p := sparse.NewPanel(sys.A.N, nrhs)
	for i := range p.Data {
		p.Data[i] = 1 + float64(i%7)/7
	}
	l.rhs[key] = p
	return p
}

// runCfg describes one solve configuration.
type runCfg struct {
	layout  grid.Layout
	algo    trsv.Algorithm
	trees   ctree.Kind
	model   *machine.Model
	nrhs    int
	backend trsv.Backend
	// exec selects the execution engine; the zero value (auto) resolves to
	// the scheduled engine, matching core.Config.
	exec trsv.ExecMode
	// comm selects the wire format; the zero value (auto) resolves to the
	// packed sparse format, matching core.Config.
	comm trsv.CommMode
	// mode (with staleness/refineTol/refineMax) selects strict or elastic
	// execution; auto inherits the lab Config's mode group.
	mode                 trsv.SolveMode
	staleness, refineMax int
	refineTol            float64
}

// run solves once and returns the report, verifying the residual: every
// benchmark point is also a correctness check. Solvers (and the plans they
// hold) are cached across calls: distribution plans are reusable and
// read-only during solves.
func (l *lab) run(name string, rc runCfg) *core.Report {
	sys := l.system(name)
	if rc.backend == nil {
		rc.backend = trsv.SimBackend{}
	}
	if rc.mode == trsv.ModeAuto {
		rc.mode, rc.staleness = l.cfg.Mode, l.cfg.Staleness
		rc.refineTol, rc.refineMax = l.cfg.RefineTol, l.cfg.RefineMax
	}
	// The backend is part of the key: a traced and an untraced solver for
	// the same configuration must not share a cache slot.
	key := fmt.Sprintf("%s/%+v/%v/%v/%s/%d/%+v/%v/%v/%v-%d-%g-%d", name, rc.layout, rc.algo, rc.trees, rc.model.Name, rc.nrhs, rc.backend, rc.exec, rc.comm,
		rc.mode, rc.staleness, rc.refineTol, rc.refineMax)
	solver := l.solvers[key]
	if solver == nil {
		var err error
		solver, err = core.NewSolver(sys, core.Config{
			Layout:    rc.layout,
			Algorithm: rc.algo,
			Trees:     rc.trees,
			Machine:   rc.model,
			Backend:   rc.backend,
			Exec:      rc.exec,
			Comm:      rc.comm,
			Mode:      rc.mode,
			Staleness: rc.staleness,
			RefineTol: rc.refineTol,
			RefineMax: rc.refineMax,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: solver %s %+v: %v", name, rc.layout, err))
		}
		l.solvers[key] = solver
	}
	b := l.b(name, rc.nrhs)
	x, rep, err := solver.Solve(b)
	if err != nil {
		panic(fmt.Sprintf("bench: solve %s %+v: %v", name, rc.layout, err))
	}
	if r := solver.Residual(x, b); math.IsNaN(r) || r > 1e-6 {
		panic(fmt.Sprintf("bench: %s %+v residual %g", name, rc.layout, r))
	}
	return rep
}

// table renders rows as an aligned table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// stats returns mean, min, max of v, skipping NaN entries (phase spans are
// NaN on ranks that never reached the phase — see Result.MarkSpan). All-NaN
// or empty input yields zeros.
func stats(v []float64) (mean, lo, hi float64) {
	n := 0
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if n == 0 {
			lo, hi = x, x
		}
		n++
		mean += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return mean / float64(n), lo, hi
}

// pzSweep returns the power-of-two Pz values ≤ limit that divide p.
func pzSweep(p, limit int) []int {
	var out []int
	for pz := 1; pz <= limit && pz <= p; pz *= 2 {
		if p%pz == 0 {
			out = append(out, pz)
		}
	}
	return out
}

// sortedKeysStr returns sorted map keys (helper for deterministic output).
func sortedKeysStr[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
