package bench

import (
	"fmt"

	"sptrsv/internal/machine"
	"sptrsv/internal/tune"
)

// AutotuneRow is one matrix × machine point of the autotune harness: the
// configuration the tuner chose, its DES makespan, the makespan of the
// fixed default {Proposed3D, Px≈Py, Pz=1, AutoTrees}, and the search
// effort spent.
type AutotuneRow struct {
	Matrix  string
	Machine string
	P       int
	Chosen  string  // "algo PxxPyxPz trees"
	Tuned   float64 // s, DES makespan of the chosen config
	Default float64 // s, DES makespan of the naive default
	Speedup float64 // Default / Tuned
	Probes  int     // DES probe solves spent
	Space   int     // legal candidates before pruning
}

// Autotune runs the tuner for the six analogs on the paper's three
// systems (Cori Haswell CPU, Perlmutter GPU, Crusher GPU) and tabulates
// tuned-vs-default makespans — the self-configuration the paper's
// hand-swept figures imply. Rank budgets follow the harness scale: CPU
// budgets are grid-sized, GPU budgets stay in the Fig. 9–11 range.
func Autotune(cfg Config) []AutotuneRow {
	l := newLab(cfg)
	type point struct {
		model *machine.Model
		p     int
	}
	points := []point{
		{machine.CoriHaswell(), 64},
		{machine.PerlmutterGPU(), 16},
		{machine.CrusherGPU(), 16},
	}
	if cfg.Quick {
		points = []point{
			{machine.CoriHaswell(), 16},
			{machine.PerlmutterGPU(), 8},
			{machine.CrusherGPU(), 8},
		}
	}

	var rows []AutotuneRow
	for _, name := range suiteNames() {
		sys := l.system(name)
		for _, pt := range points {
			l.cfg.logf("autotune %s on %s p=%d", name, pt.model.Name, pt.p)
			res, err := tune.Run(sys, pt.model, pt.p, tune.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: autotune %s on %s: %v", name, pt.model.Name, err))
			}
			rows = append(rows, AutotuneRow{
				Matrix:  name,
				Machine: pt.model.Name,
				P:       pt.p,
				Chosen: fmt.Sprintf("%s %dx%dx%d %s", res.Config.Algorithm,
					res.Config.Layout.Px, res.Config.Layout.Py, res.Config.Layout.Pz, res.Config.Trees),
				Tuned:   res.Makespan,
				Default: res.DefaultMakespan,
				Speedup: res.DefaultMakespan / res.Makespan,
				Probes:  res.Probes,
				Space:   res.SpaceSize,
			})
		}
	}

	if cfg.Out != nil {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Matrix, r.Machine, fmt.Sprint(r.P), r.Chosen,
				fmt.Sprintf("%.4g", r.Tuned*1e3), fmt.Sprintf("%.4g", r.Default*1e3),
				fmt.Sprintf("%.2fx", r.Speedup),
				fmt.Sprintf("%d/%d", r.Probes, r.Space),
			})
		}
		fmt.Fprintln(cfg.Out, "Autotune: tuned config vs fixed default {proposed-3d, Px≈Py, Pz=1, auto trees} (DES makespans)")
		table(cfg.Out, []string{"matrix", "machine", "P", "chosen config", "tuned ms", "default ms", "speedup", "probed"}, cells)
	}
	return rows
}
