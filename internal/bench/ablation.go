package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// AblationPoint is one configuration of the design-choice ablations: the
// proposed algorithm with one optimization replaced by its strawman.
type AblationPoint struct {
	Matrix  string
	P, Pz   int
	Variant string
	Seconds float64
	ZMsgs   int // inter-grid messages sent
	XYMsgs  int // intra-grid messages sent
}

// Ablation isolates the paper's three communication optimizations on the
// Cori model:
//
//	full        — proposed 3D, sparse allreduce, auto trees (§3.1+3.2+3.3)
//	naive-ar    — sparse allreduce replaced by the per-node strawman (§3.2)
//	flat-trees  — auto trees replaced by flat trees (§3.3)
//	binary-trees— forced binary trees (the paper's choice at scale)
//	baseline    — the full baseline 3D algorithm for reference
func Ablation(cfg Config) []AblationPoint {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	matrices := []string{"s2d9pt", "nlpkkt"}
	ranks := []int{256}
	pzs := []int{8, 32}
	if cfg.Quick {
		matrices = matrices[:1]
		ranks = []int{64}
		pzs = []int{4}
	}
	variants := []struct {
		name  string
		algo  trsv.Algorithm
		trees ctree.Kind
	}{
		{"full", trsv.Proposed3D, ctree.Auto},
		{"naive-ar", trsv.Proposed3DNaiveAR, ctree.Auto},
		{"flat-trees", trsv.Proposed3D, ctree.Flat},
		{"binary-trees", trsv.Proposed3D, ctree.Binary},
		{"baseline", trsv.Baseline3D, ctree.Flat},
	}
	var pts []AblationPoint
	for _, m := range matrices {
		for _, p := range ranks {
			for _, pz := range pzs {
				if p%pz != 0 {
					continue
				}
				px, py := grid.Square2D(p / pz)
				layout := grid.Layout{Px: px, Py: py, Pz: pz}
				for _, v := range variants {
					cfg.logf("ablation %s P=%d Pz=%d %s", m, p, pz, v.name)
					rep := l.run(m, runCfg{layout: layout, algo: v.algo, trees: v.trees, model: model, nrhs: 1})
					pts = append(pts, AblationPoint{
						Matrix: m, P: p, Pz: pz, Variant: v.name,
						Seconds: rep.Time,
						ZMsgs:   rep.Raw.CatMsgs(runtime.CatZ),
						XYMsgs:  rep.Raw.CatMsgs(runtime.CatXY),
					})
				}
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Ablation: proposed 3D with one optimization removed at a time (Cori model)")
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				pt.Matrix, fmt.Sprint(pt.P), fmt.Sprint(pt.Pz), pt.Variant,
				fmt.Sprintf("%.4g", pt.Seconds*1e3),
				fmt.Sprint(pt.ZMsgs), fmt.Sprint(pt.XYMsgs),
			})
		}
		table(cfg.Out, []string{"matrix", "P", "Pz", "variant", "time [ms]", "Z msgs", "XY msgs"}, cells)
	}
	return pts
}
