package bench

import (
	"fmt"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// GPUPoint is one configuration of the paper's Figs. 9–10: the proposed 3D
// algorithm at 1×1×Pz on a GPU system, CPU vs GPU solves, 1 and 50 RHS,
// reporting total, L-solve, U-solve, and inter-grid (Z) time.
type GPUPoint struct {
	Matrix  string
	Machine string // "crusher" or "perlmutter"
	Device  string // "cpu" or "gpu"
	Pz      int
	NRHS    int
	Total   float64
	LSolve  float64 // mean over ranks
	USolve  float64
	ZComm   float64
}

func fig9Matrices() []string  { return []string{"s1mat", "s2d9pt", "ldoor"} }
func fig10Matrices() []string { return []string{"s1mat", "s2d9pt", "nlpkkt", "dielfilter"} }

func gpuPzSweep(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

func gpuNRHS(quick bool) []int {
	if quick {
		return []int{1}
	}
	return []int{1, 50}
}

// GPUScaling runs the Figs. 9/10 protocol on the named machine
// ("crusher" or "perlmutter").
func GPUScaling(cfg Config, machineName string) []GPUPoint {
	l := newLab(cfg)
	var cpuModel, gpuModel *machine.Model
	var matrices []string
	switch machineName {
	case "crusher":
		cpuModel, gpuModel = machine.CrusherCPU(), machine.CrusherGPU()
		matrices = fig9Matrices()
	case "perlmutter":
		cpuModel, gpuModel = machine.PerlmutterCPU(), machine.PerlmutterGPU()
		matrices = fig10Matrices()
	default:
		panic("bench: unknown GPU machine " + machineName)
	}
	var pts []GPUPoint
	for _, m := range matrices {
		for _, nrhs := range gpuNRHS(cfg.Quick) {
			for _, pz := range gpuPzSweep(cfg.Quick) {
				layout := grid.Layout{Px: 1, Py: 1, Pz: pz}
				cfg.logf("gpu %s %s Pz=%d nrhs=%d", machineName, m, pz, nrhs)
				cpu := l.run(m, runCfg{layout: layout, algo: trsv.Proposed3D, trees: ctree.Auto, model: cpuModel, nrhs: nrhs})
				pts = append(pts, gpuPoint(m, machineName, "cpu", pz, nrhs, cpu))
				gpu := l.run(m, runCfg{layout: layout, algo: trsv.GPUSingle, trees: ctree.Auto, model: gpuModel, nrhs: nrhs})
				pts = append(pts, gpuPoint(m, machineName, "gpu", pz, nrhs, gpu))
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "Figs. 9/10 analog: proposed 3D SpTRSV at 1×1×Pz on the %s model [ms]\n", machineName)
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				pt.Matrix, pt.Device, fmt.Sprint(pt.Pz), fmt.Sprint(pt.NRHS),
				fmt.Sprintf("%.4g", pt.Total*1e3),
				fmt.Sprintf("%.4g", pt.LSolve*1e3),
				fmt.Sprintf("%.4g", pt.USolve*1e3),
				fmt.Sprintf("%.4g", pt.ZComm*1e3),
			})
		}
		table(cfg.Out, []string{"matrix", "device", "Pz", "nrhs", "total", "L-solve", "U-solve", "Z-comm"}, cells)
		gpuSummary(cfg, pts)
	}
	return pts
}

func gpuPoint(m, mach, dev string, pz, nrhs int, rep *core.Report) GPUPoint {
	lm, _, _ := stats(rep.LSpan)
	um, _, _ := stats(rep.USpan)
	zm, _, _ := stats(rep.ZSpan)
	return GPUPoint{
		Matrix: m, Machine: mach, Device: dev, Pz: pz, NRHS: nrhs,
		Total: rep.Time, LSolve: lm, USolve: um, ZComm: zm,
	}
}

// CPUGPUSpeedups extracts, per matrix and nrhs, the best CPU/GPU ratio over
// the Pz sweep — the headline numbers of §4.2.1.
func CPUGPUSpeedups(pts []GPUPoint) map[string]float64 {
	best := map[string]map[string]float64{} // key → device → best time
	for _, pt := range pts {
		key := fmt.Sprintf("%s/nrhs=%d", pt.Matrix, pt.NRHS)
		if best[key] == nil {
			best[key] = map[string]float64{}
		}
		if t, ok := best[key][pt.Device]; !ok || pt.Total < t {
			best[key][pt.Device] = pt.Total
		}
	}
	out := map[string]float64{}
	for key, m := range best {
		if m["gpu"] > 0 {
			out[key] = m["cpu"] / m["gpu"]
		}
	}
	return out
}

func gpuSummary(cfg Config, pts []GPUPoint) {
	sp := CPUGPUSpeedups(pts)
	fmt.Fprintln(cfg.Out, "\nCPU→GPU speedups (best over Pz; paper: ≤2.9x Crusher, ≤6.5x Perlmutter):")
	var cells [][]string
	for _, k := range sortedKeysStr(sp) {
		cells = append(cells, []string{k, fmt.Sprintf("%.2fx", sp[k])})
	}
	table(cfg.Out, []string{"matrix/nrhs", "cpu/gpu"}, cells)
}
