package bench

import (
	"fmt"

	"sptrsv/internal/trsv"
)

// CommPoint is one configuration of the wire-format comparison: the same
// solve run under the dense reference model, the packed sparse format, and
// the aggregated mode, with per-mode message and byte totals. The packed
// column must keep the dense message count exactly (packing changes
// payload representation, not the communication pattern); aggregation
// trades messages for larger coalesced payloads.
type CommPoint struct {
	Figure, Matrix, Algorithm, Layout, Machine string

	DenseMsgs, PackedMsgs, AggMsgs    int
	DenseBytes, PackedBytes, AggBytes int
}

// PackedSaving returns the fractional byte reduction of the packed format
// over the dense reference (0 when dense moved no bytes).
func (p CommPoint) PackedSaving() float64 {
	if p.DenseBytes == 0 {
		return 0
	}
	return 1 - float64(p.PackedBytes)/float64(p.DenseBytes)
}

// CommComparison runs the summary's fixed point set under the three wire
// formats and renders the comparison table — the artifact behind the
// fig4/fig9 byte-reduction numbers in EXPERIMENTS.md. Solutions are
// residual-checked on every run by the lab, so each cell is also a
// correctness point for its wire format.
func CommComparison(cfg Config) []CommPoint {
	l := newLab(cfg)
	var pts []CommPoint
	for _, pt := range summaryPoints() {
		if pt.rc.exec.Resolve() == trsv.ExecHandler {
			continue // wire format is engine-independent; skip the oracle twins
		}
		cfg.logf("comm %s %s %s", pt.figure, pt.matrix, pt.rc.algo)
		measure := func(comm trsv.CommMode) (msgs, bytes int) {
			rc := pt.rc
			rc.comm = comm
			rep := l.run(pt.matrix, rc)
			for _, t := range rep.Raw.Timers {
				for _, c := range t.MsgsSent {
					msgs += c
				}
				for _, c := range t.BytesSent {
					bytes += c
				}
			}
			return msgs, bytes
		}
		dm, db := measure(trsv.CommDense)
		pm, pb := measure(trsv.CommPacked)
		am, ab := measure(trsv.CommAggregated)
		pts = append(pts, CommPoint{
			Figure: pt.figure, Matrix: pt.matrix, Algorithm: pt.rc.algo.String(),
			Layout:    fmt.Sprintf("%dx%dx%d", pt.rc.layout.Px, pt.rc.layout.Py, pt.rc.layout.Pz),
			Machine:   pt.rc.model.Name,
			DenseMsgs: dm, PackedMsgs: pm, AggMsgs: am,
			DenseBytes: db, PackedBytes: pb, AggBytes: ab,
		})
	}

	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "wire-format comparison (packed must keep the dense message count; aggregated may trade messages for coalesced payloads)")
		var cells [][]string
		for _, p := range pts {
			cells = append(cells, []string{
				p.Figure, p.Matrix, p.Algorithm, p.Layout, p.Machine,
				fmt.Sprint(p.DenseMsgs), fmt.Sprint(p.PackedMsgs), fmt.Sprint(p.AggMsgs),
				fmt.Sprint(p.DenseBytes), fmt.Sprint(p.PackedBytes), fmt.Sprint(p.AggBytes),
				fmt.Sprintf("%.1f%%", 100*p.PackedSaving()),
			})
		}
		table(cfg.Out, []string{"figure", "matrix", "algorithm", "layout", "machine",
			"dense msgs", "packed msgs", "agg msgs", "dense B", "packed B", "agg B", "packed ΔB"}, cells)
	}
	return pts
}
