package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/trsv"
)

// BreakdownPoint is one bar of the paper's Figs. 5–6: per-rank mean time in
// inter-grid communication (Z-Comm), intra-grid communication (XY-Comm),
// and floating-point block operations (FP-Operation) for one
// (matrix, P, Pz, algorithm) configuration on the Cori model.
type BreakdownPoint struct {
	Matrix  string
	P, Pz   int
	Algo    string
	ZComm   float64
	XYComm  float64
	FPOps   float64
	Seconds float64 // makespan for reference
}

// Breakdown runs the Fig. 5 (s2D9pt2048 analog) or Fig. 6 (nlpkkt80
// analog) sweep, depending on the matrix argument.
func Breakdown(cfg Config, matrix string) []BreakdownPoint {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	var pts []BreakdownPoint
	for _, p := range fig4Ranks(cfg.Quick) {
		for _, pz := range pzSweep(p, fig4PzLimit(cfg.Quick)) {
			px, py := grid.Square2D(p / pz)
			layout := grid.Layout{Px: px, Py: py, Pz: pz}
			cfg.logf("breakdown %s P=%d Pz=%d", matrix, p, pz)
			for _, algo := range []struct {
				name  string
				a     trsv.Algorithm
				trees ctree.Kind
			}{
				{"baseline", trsv.Baseline3D, ctree.Flat},
				{"new", trsv.Proposed3D, ctree.Auto},
			} {
				rep := l.run(matrix, runCfg{layout: layout, algo: algo.a, trees: algo.trees, model: model, nrhs: 1})
				pts = append(pts, BreakdownPoint{
					Matrix: matrix, P: p, Pz: pz, Algo: algo.name,
					ZComm: rep.MeanZ, XYComm: rep.MeanXY, FPOps: rep.MeanFP,
					Seconds: rep.Time,
				})
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "Figs. 5/6 analog: time breakdown [ms, mean over ranks] for %s on the Cori model\n", matrix)
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				fmt.Sprint(pt.P), fmt.Sprint(pt.Pz), pt.Algo,
				fmt.Sprintf("%.4g", pt.ZComm*1e3),
				fmt.Sprintf("%.4g", pt.XYComm*1e3),
				fmt.Sprintf("%.4g", pt.FPOps*1e3),
				fmt.Sprintf("%.4g", pt.Seconds*1e3),
			})
		}
		table(cfg.Out, []string{"P", "Pz", "algorithm", "Z-Comm", "XY-Comm", "FP-Operation", "total"}, cells)
	}
	return pts
}
