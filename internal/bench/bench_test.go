package bench

import (
	"bytes"
	"strings"
	"testing"

	"sptrsv/internal/gen"
)

// quickCfg runs every experiment at smoke-test size; the assertions below
// check the paper's qualitative claims, not absolute numbers.
func quickCfg() Config {
	return Config{Scale: gen.Small, Quick: true}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg()
	cfg.Out = &buf
	rows := Table1(cfg)
	if len(rows) != 6 {
		t.Fatalf("expected 6 matrices, got %d", len(rows))
	}
	var gaas, s2d Table1Row
	for _, r := range rows {
		if r.NNZLU <= 0 || r.Density <= 0 || r.Density > 1 {
			t.Fatalf("bad row %+v", r)
		}
		switch r.Name {
		case "gaas":
			gaas = r
		case "s2d9pt":
			s2d = r
		}
	}
	// The chemistry analog must be by far the densest and the 2D Poisson
	// analog among the sparsest, mirroring the paper's Table 1 ordering.
	if gaas.Density < 5*s2d.Density {
		t.Fatalf("density ordering broken: gaas %g vs s2d9pt %g", gaas.Density, s2d.Density)
	}
	if !strings.Contains(buf.String(), "Ga19As19H42") {
		t.Fatal("table output missing paper names")
	}
}

func TestFig4Quick(t *testing.T) {
	pts := Fig4(quickCfg())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Every (matrix, P, Pz) pair must appear for both algorithms with
	// positive times.
	seen := map[string]int{}
	for _, pt := range pts {
		if pt.Seconds <= 0 {
			t.Fatalf("nonpositive time: %+v", pt)
		}
		seen[pt.Matrix]++
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 matrices, got %v", seen)
	}
	sp := Speedups(pts)
	if len(sp) != 4 {
		t.Fatalf("speedups for %d matrices", len(sp))
	}
	for _, s := range sp {
		// The proposed algorithm must never lose badly to the baseline at
		// the best-Pz comparison (the paper: it wins 1.13–3.45x).
		if s.VsBaseline3D < 0.9 {
			t.Fatalf("%s: proposed much slower than baseline (%.2fx)", s.Matrix, s.VsBaseline3D)
		}
	}
}

func TestFig4ReplicationHelps(t *testing.T) {
	// On the 2D-PDE matrix, some Pz > 1 must beat Pz = 1 at fixed P — the
	// core communication-avoiding claim.
	pts := Fig4(quickCfg())
	best := map[int]float64{}  // P → best time over Pz>1 (new)
	base1 := map[int]float64{} // P → Pz=1 time (new)
	for _, pt := range pts {
		if pt.Matrix != "s2d9pt" || pt.Algo != "new" {
			continue
		}
		if pt.Pz == 1 {
			base1[pt.P] = pt.Seconds
		} else if b, ok := best[pt.P]; !ok || pt.Seconds < b {
			best[pt.P] = pt.Seconds
		}
	}
	helped := false
	for p, t1 := range base1 {
		if b, ok := best[p]; ok && b < t1 {
			helped = true
		}
	}
	if !helped {
		t.Fatal("replication (Pz>1) never beat Pz=1 on s2d9pt")
	}
}

func TestBreakdownQuick(t *testing.T) {
	pts := Breakdown(quickCfg(), "s2d9pt")
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.Pz == 1 && pt.ZComm != 0 {
			t.Fatalf("Pz=1 has Z time: %+v", pt)
		}
		if pt.Pz > 1 && pt.ZComm <= 0 {
			t.Fatalf("Pz>1 missing Z time: %+v", pt)
		}
		if pt.XYComm <= 0 || pt.FPOps <= 0 {
			t.Fatalf("empty breakdown: %+v", pt)
		}
	}
	// Baseline mean XY-comm must exceed the proposed algorithm's at the
	// largest Pz (Fig. 5's visual claim).
	var baseXY, newXY float64
	maxPz := 0
	for _, pt := range pts {
		if pt.Pz > maxPz {
			maxPz = pt.Pz
		}
	}
	for _, pt := range pts {
		if pt.Pz != maxPz {
			continue
		}
		if pt.Algo == "baseline" {
			baseXY += pt.XYComm
		} else {
			newXY += pt.XYComm
		}
	}
	if baseXY < newXY {
		t.Fatalf("baseline XY (%g) not above proposed (%g) at Pz=%d", baseXY, newXY, maxPz)
	}
}

func TestLoadBalanceQuick(t *testing.T) {
	pts := LoadBalance(quickCfg(), "nlpkkt")
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.LMax < pt.LMean || pt.LMean < pt.LMin || pt.LMin < 0 {
			t.Fatalf("inconsistent L stats: %+v", pt)
		}
		if pt.UMax < pt.UMean || pt.UMean < pt.UMin {
			t.Fatalf("inconsistent U stats: %+v", pt)
		}
		if pt.Imbalance() < 0 {
			t.Fatal("negative imbalance")
		}
	}
}

func TestGPUScalingQuick(t *testing.T) {
	for _, mach := range []string{"crusher", "perlmutter"} {
		pts := GPUScaling(quickCfg(), mach)
		if len(pts) == 0 {
			t.Fatalf("%s: no points", mach)
		}
		sp := CPUGPUSpeedups(pts)
		anyWin := false
		for k, v := range sp {
			// At smoke-test matrix sizes the GPU's per-task overhead can
			// eat the win on the smallest matrices (especially under the
			// high-overhead Crusher model), so the quick check only
			// requires sane ratios and at least one GPU win; the
			// medium-scale sweep in EXPERIMENTS.md carries the paper's
			// 1.6–6.5x comparison.
			if v < 0.3 {
				t.Fatalf("%s %s: GPU implausibly slow (%.2fx)", mach, k, v)
			}
			if v > 1 {
				anyWin = true
			}
		}
		if mach == "perlmutter" && !anyWin {
			t.Fatal("perlmutter: GPU never beat CPU")
		}
	}
}

func TestFig11Quick(t *testing.T) {
	pts := Fig11(quickCfg())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	lim := TwoDGPUScalingLimit(pts)
	if len(lim) == 0 {
		t.Fatal("no 2D scaling limits")
	}
	for _, pt := range pts {
		if pt.Seconds <= 0 {
			t.Fatalf("nonpositive time %+v", pt)
		}
	}
}

func TestPzSweep(t *testing.T) {
	got := pzSweep(128, 32)
	want := []int{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("pzSweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pzSweep = %v", got)
		}
	}
	if s := pzSweep(4, 32); len(s) != 3 {
		t.Fatalf("pzSweep(4) = %v", s)
	}
}

func TestStats(t *testing.T) {
	mean, lo, hi := stats([]float64{1, 2, 3})
	if mean != 2 || lo != 1 || hi != 3 {
		t.Fatalf("stats wrong: %g %g %g", mean, lo, hi)
	}
	if m, _, _ := stats(nil); m != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestAutotuneQuick(t *testing.T) {
	rows := Autotune(quickCfg())
	if len(rows) != 6*3 {
		t.Fatalf("expected 18 rows (6 matrices x 3 machines), got %d", len(rows))
	}
	for _, r := range rows {
		if r.Tuned <= 0 || r.Default <= 0 {
			t.Fatalf("nonpositive makespan: %+v", r)
		}
		// The tuner must never do worse than the fixed default — it always
		// probes the default alongside the pre-score's top-k.
		if r.Tuned > r.Default*(1+1e-12) {
			t.Fatalf("%s on %s: tuned %g slower than default %g", r.Matrix, r.Machine, r.Tuned, r.Default)
		}
		if r.Probes <= 0 || r.Space < r.Probes {
			t.Fatalf("implausible search effort: %+v", r)
		}
	}
}

func TestAblationQuick(t *testing.T) {
	pts := Ablation(quickCfg())
	byVariant := map[string]AblationPoint{}
	for _, pt := range pts {
		if pt.Seconds <= 0 {
			t.Fatalf("nonpositive time %+v", pt)
		}
		byVariant[pt.Variant] = pt
	}
	full, naive := byVariant["full"], byVariant["naive-ar"]
	if naive.ZMsgs <= full.ZMsgs {
		t.Fatalf("naive allreduce Z msgs %d not above sparse %d", naive.ZMsgs, full.ZMsgs)
	}
	base := byVariant["baseline"]
	if base.XYMsgs <= full.XYMsgs {
		t.Fatalf("baseline XY msgs %d not above proposed %d", base.XYMsgs, full.XYMsgs)
	}
}
