package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// FaultPoint is one entry of the fault-resilience sweep: an algorithm run
// under a benign injected fault (a straggler rank or link jitter), with the
// makespan degradation relative to the same configuration's healthy run.
type FaultPoint struct {
	Matrix  string
	Algo    string
	P, Pz   int
	Fault   string  // "healthy", "straggler x4", "jitter 10us", ...
	Seconds float64 // injected makespan
	// Degradation is Seconds / healthy Seconds for the same configuration
	// (1 for the healthy row itself).
	Degradation float64
}

// FaultSweep measures how the proposed and baseline 3D algorithms absorb
// benign faults on the Cori model: one straggling rank at increasing
// slowdown factors, and uniform per-message latency jitter. Every point is
// still residual-verified (lab.run), so the sweep doubles as a soak test of
// the injection path: faults may slow the solve but must never corrupt it.
//
// The interesting shape is the degradation column: a straggler on the
// critical path stretches the makespan by up to its slowdown factor, while
// jitter small against the healthy makespan barely registers. Determinism
// of the DES makes every number exactly reproducible.
func FaultSweep(cfg Config) []FaultPoint {
	l := newLab(cfg)
	model := machine.CoriHaswell()
	matrix := "s2d9pt"
	p, pz := 64, 4
	if cfg.Quick {
		p, pz = 16, 2
	}
	px, py := grid.Square2D(p / pz)
	layout := grid.Layout{Px: px, Py: py, Pz: pz}

	type plan struct {
		name string
		p    *fault.Plan
	}
	plans := []plan{{"healthy", nil}}
	for _, f := range []float64{2, 4, 8} {
		plans = append(plans, plan{
			fmt.Sprintf("straggler x%g", f),
			&fault.Plan{Seed: 1, Straggler: map[int]float64{0: f}},
		})
	}
	for _, j := range []float64{1e-6, 1e-5} {
		plans = append(plans, plan{
			fmt.Sprintf("jitter %gus", j*1e6),
			&fault.Plan{Seed: 1, Jitter: j},
		})
	}

	algos := []struct {
		name string
		algo trsv.Algorithm
	}{
		{"proposed-3d", trsv.Proposed3D},
		{"baseline-3d", trsv.Baseline3D},
	}

	var pts []FaultPoint
	for _, a := range algos {
		healthy := 0.0
		for _, pl := range plans {
			cfg.logf("faults %s %s P=%d Pz=%d %s", matrix, a.name, p, pz, pl.name)
			rep := l.run(matrix, runCfg{
				layout: layout, algo: a.algo, trees: ctree.Binary, model: model, nrhs: 1,
				backend: trsv.SimBackend{Opts: runtime.Options{Faults: pl.p}},
			})
			if pl.name == "healthy" {
				healthy = rep.Time
			}
			pts = append(pts, FaultPoint{
				Matrix: matrix, Algo: a.name, P: p, Pz: pz, Fault: pl.name,
				Seconds: rep.Time, Degradation: rep.Time / healthy,
			})
		}
	}

	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Fault sweep: makespan under benign injected faults (Cori model, DES backend)")
		var cells [][]string
		for _, pt := range pts {
			cells = append(cells, []string{
				pt.Matrix, pt.Algo, fmt.Sprint(pt.P), fmt.Sprint(pt.Pz), pt.Fault,
				fmt.Sprintf("%.4g", pt.Seconds*1e3),
				fmt.Sprintf("%.3f", pt.Degradation),
			})
		}
		table(cfg.Out, []string{"matrix", "algorithm", "P", "Pz", "fault", "time [ms]", "degradation"}, cells)
	}
	return pts
}
