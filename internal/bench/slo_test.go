package bench

import (
	"bytes"
	"strings"
	"testing"

	"sptrsv/internal/gen"
)

func TestSLOQuick(t *testing.T) {
	var out bytes.Buffer
	pts := SLO(Config{Scale: gen.Small, Quick: true, Out: &out})
	if len(pts) != 2 {
		t.Fatalf("got %d levels, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.OK != pt.Sent || pt.Shed != 0 {
			t.Fatalf("level %d lost requests: %+v", pt.Clients, pt)
		}
		if pt.MeanBatchWidth < 1 {
			t.Fatalf("level %d batch width %v < 1", pt.Clients, pt.MeanBatchWidth)
		}
		if pt.ThroughputRPS <= 0 {
			t.Fatalf("level %d throughput %v", pt.Clients, pt.ThroughputRPS)
		}
	}
	// More clients must not shrink the achieved batch width below the
	// single-client floor of exactly 1.
	if pts[0].Clients != 1 || pts[0].MeanBatchWidth != 1 {
		t.Fatalf("single client width = %v, want exactly 1", pts[0].MeanBatchWidth)
	}
	if !strings.Contains(out.String(), "batch width") {
		t.Fatalf("report table missing batch width column:\n%s", out.String())
	}
}
