package bench

import (
	"fmt"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/trsv"
)

// BreakdownDetail runs every solver algorithm with event tracing on and
// reports the paper's Figs. 8/9-style per-category splits — where each
// rank's time actually went (compute, send/recv overhead, waiting on XY
// versus Z traffic) — plus the critical-path length of each run and its
// share of the makespan. It is the trace-derived refinement of the coarse
// Breakdown (Figs. 5–6) tables: the same question answered from recorded
// spans instead of aggregate timers, with the dependency-chain bound on
// top.
func BreakdownDetail(cfg Config) []BreakdownDetailRow {
	l := newLab(cfg)
	matrices := []string{"s2d9pt", "nlpkkt", "ldoor"}
	type setup struct {
		name  string
		algo  trsv.Algorithm
		trees ctree.Kind
		lay   grid.Layout
		model *machine.Model
	}
	setups := []setup{
		{"baseline-3d", trsv.Baseline3D, ctree.Flat, grid.Layout{Px: 2, Py: 2, Pz: 4}, machine.CoriHaswell()},
		{"proposed-3d", trsv.Proposed3D, ctree.Auto, grid.Layout{Px: 2, Py: 2, Pz: 4}, machine.CoriHaswell()},
		{"gpu-single", trsv.GPUSingle, ctree.Auto, grid.Layout{Px: 1, Py: 1, Pz: 4}, machine.PerlmutterGPU()},
		{"gpu-multi", trsv.GPUMulti, ctree.Auto, grid.Layout{Px: 4, Py: 1, Pz: 4}, machine.PerlmutterGPU()},
	}
	traced := trsv.SimBackend{Opts: runtime.Options{Trace: true}}
	var rows []BreakdownDetailRow
	for _, m := range matrices {
		for _, s := range setups {
			cfg.logf("breakdown %s / %s", m, s.name)
			rep := l.run(m, runCfg{
				layout: s.lay, algo: s.algo, trees: s.trees,
				model: s.model, nrhs: 1, backend: traced,
			})
			bd, err := rep.Raw.TraceBreakdown()
			if err != nil {
				panic(fmt.Sprintf("bench: breakdown %s/%s: %v", m, s.name, err))
			}
			cp, err := rep.Raw.CriticalPath()
			if err != nil {
				panic(fmt.Sprintf("bench: critical path %s/%s: %v", m, s.name, err))
			}
			rows = append(rows, BreakdownDetailRow{
				Matrix:   m,
				Algo:     s.name,
				Layout:   s.lay,
				Makespan: rep.Time,
				Compute:  bd.KindSeconds(runtime.EvCompute),
				Send:     bd.KindSeconds(runtime.EvSend),
				Recv:     bd.KindSeconds(runtime.EvRecv),
				Elapse:   bd.KindSeconds(runtime.EvElapse),
				WaitXY:   bd.Seconds[runtime.EvWait][runtime.CatXY],
				WaitZ:    bd.Seconds[runtime.EvWait][runtime.CatZ],
				CritPath: cp.Length,
				MsgHops:  cp.MsgHops,
			})
		}
	}
	if cfg.Out != nil {
		renderBreakdownDetail(cfg, rows)
	}
	return rows
}

// BreakdownDetailRow is one (matrix, algorithm) line of the trace-derived
// breakdown. All times are seconds: Makespan is the run's virtual time;
// Compute/Send/Recv/Elapse/WaitXY/WaitZ are means over participating
// ranks; CritPath is the length of the longest dependency chain (a lower
// bound on any schedule of the run's task graph) and MsgHops the number of
// message edges on it.
type BreakdownDetailRow struct {
	Matrix   string
	Algo     string
	Layout   grid.Layout
	Makespan float64
	Compute  float64
	Send     float64
	Recv     float64
	Elapse   float64
	WaitXY   float64
	WaitZ    float64
	CritPath float64
	MsgHops  int
}

func renderBreakdownDetail(cfg Config, rows []BreakdownDetailRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Matrix, r.Algo,
			fmt.Sprintf("%dx%dx%d", r.Layout.Px, r.Layout.Py, r.Layout.Pz),
			fmt.Sprintf("%.3g", r.Makespan),
			fmt.Sprintf("%.3g", r.Compute),
			fmt.Sprintf("%.3g", r.Send),
			fmt.Sprintf("%.3g", r.Recv),
			fmt.Sprintf("%.3g", r.Elapse),
			fmt.Sprintf("%.3g", r.WaitXY),
			fmt.Sprintf("%.3g", r.WaitZ),
			fmt.Sprintf("%.3g", r.CritPath),
			fmt.Sprintf("%.0f%%", 100*r.CritPath/r.Makespan),
			fmt.Sprintf("%d", r.MsgHops),
		})
	}
	fmt.Fprintln(cfg.Out, "Trace-derived per-rank breakdown (mean seconds over participating ranks)")
	fmt.Fprintln(cfg.Out, "and critical-path length per run (cp, cp/T, message hops on the chain).")
	table(cfg.Out, []string{
		"matrix", "algo", "PxPyPz", "T", "compute", "send", "recv",
		"elapse", "waitXY", "waitZ", "cp", "cp/T", "hops",
	}, cells)
}
