// Package gen produces the synthetic test matrices used by the reproduction.
//
// The paper evaluates on six matrices (its Table 1): four from SuiteSparse
// (nlpkkt80, Ga19As19H42, ldoor, dielFilterV3real) and two private ones
// (s1_mat_0_253872, s2D9pt2048). None are available offline, so each gets a
// generated analog that matches the trait the evaluation actually depends
// on: the fill character of its nested-dissection LU factors — 2D-PDE
// (O(√n) separators), 3D-PDE (O(n^{2/3}) separators), shell/extruded
// structures in between, or near-dense fill. DESIGN.md §2 records the
// substitutions.
//
// Every generated matrix has a symmetric nonzero pattern (the paper's
// assumption) and is strictly diagonally dominant, so the no-pivoting LU in
// internal/factor is numerically safe.
package gen

import (
	"math/rand"

	"sptrsv/internal/sparse"
)

// Matrix couples a generated matrix with its provenance for reports.
type Matrix struct {
	Name        string // analog name, e.g. "s2D9pt"
	PaperName   string // matrix it stands in for, e.g. "s2D9pt2048"
	Description string // application domain, mirroring the paper's Table 1
	A           *sparse.CSR
}

// stencilValue returns a reproducible off-diagonal value in [-1, 0) ∪ (0, 1].
func stencilValue(rng *rand.Rand) float64 {
	v := rng.Float64()*2 - 1
	if v == 0 {
		return 0.5
	}
	return v
}

// finishDiagonallyDominant symmetrizes values and sets each diagonal to
// (sum of |off-diagonal|) + 1, guaranteeing strict diagonal dominance.
func finishDiagonallyDominant(b *sparse.Builder) *sparse.CSR {
	m := b.ToCSR()
	// Symmetrize values: a_ij := (a_ij + a_ji)/2 on the symmetric pattern.
	t := m.Transpose()
	out := sparse.NewBuilder(m.N)
	for r := 0; r < m.N; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if c == r {
				continue
			}
			out.Add(r, c, (vals[i]+t.At(r, c))/2)
		}
	}
	sym := out.ToCSR()
	final := sparse.NewBuilder(m.N)
	for r := 0; r < m.N; r++ {
		cols, vals := sym.Row(r)
		rowAbs := 0.0
		for i, c := range cols {
			final.Add(r, c, vals[i])
			if c != r {
				if vals[i] < 0 {
					rowAbs -= vals[i]
				} else {
					rowAbs += vals[i]
				}
			}
		}
		final.Add(r, r, rowAbs+1)
	}
	return final.ToCSR()
}

// grid3DIndex linearizes (x, y, z) on an nx×ny×nz grid.
func grid3DIndex(x, y, z, nx, ny int) int { return (z*ny+y)*nx + x }

// S2D9pt generates a 2D 9-point stencil matrix on an nx×ny grid: the analog
// of the paper's s2D9pt2048 (finite-difference Poisson, 2D fill character).
func S2D9pt(nx, ny int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	b := sparse.NewBuilder(n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := y*nx + x
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= nx || yy < 0 || yy >= ny || (dx == 0 && dy == 0) {
						continue
					}
					b.Add(i, yy*nx+xx, stencilValue(rng))
				}
			}
		}
	}
	return finishDiagonallyDominant(b)
}

// Stencil3D generates a 3D stencil matrix on an nx×ny×nz grid. reach selects
// the stencil: 1 → 27-point (all neighbors in the unit cube), 2 → 7-point
// plus second axis neighbors (13-point).
func Stencil3D(nx, ny, nz, reach int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	b := sparse.NewBuilder(n)
	add := func(i, x, y, z int) {
		if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
			return
		}
		j := grid3DIndex(x, y, z, nx, ny)
		if j != i {
			b.Add(i, j, stencilValue(rng))
		}
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := grid3DIndex(x, y, z, nx, ny)
				if reach == 1 {
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								add(i, x+dx, y+dy, z+dz)
							}
						}
					}
				} else {
					for d := 1; d <= reach; d++ {
						add(i, x+d, y, z)
						add(i, x-d, y, z)
						add(i, x, y+d, z)
						add(i, x, y-d, z)
						add(i, x, y, z+d)
						add(i, x, y, z-d)
					}
				}
			}
		}
	}
	return finishDiagonallyDominant(b)
}

// NLPKKTLike generates the analog of nlpkkt80 (a KKT system from 3D
// PDE-constrained optimization): two pointwise-coupled fields on a 3D
// 7-point grid. The 3D-PDE fill growth — the trait the paper's Fig. 6/8
// discussion hinges on — is preserved.
func NLPKKTLike(nx int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	nGrid := nx * nx * nx
	n := 2 * nGrid
	b := sparse.NewBuilder(n)
	add := func(i, x, y, z, field int) {
		if x < 0 || x >= nx || y < 0 || y >= nx || z < 0 || z >= nx {
			return
		}
		j := grid3DIndex(x, y, z, nx, nx) + field*nGrid
		if j != i {
			b.Add(i, j, stencilValue(rng))
		}
	}
	for f := 0; f < 2; f++ {
		for z := 0; z < nx; z++ {
			for y := 0; y < nx; y++ {
				for x := 0; x < nx; x++ {
					i := grid3DIndex(x, y, z, nx, nx) + f*nGrid
					add(i, x+1, y, z, f)
					add(i, x-1, y, z, f)
					add(i, x, y+1, z, f)
					add(i, x, y-1, z, f)
					add(i, x, y, z+1, f)
					add(i, x, y, z-1, f)
					// KKT coupling between the primal and dual fields.
					add(i, x, y, z, 1-f)
					add(i, x+1, y, z, 1-f)
					add(i, x-1, y, z, 1-f)
				}
			}
		}
	}
	return finishDiagonallyDominant(b)
}

// LdoorLike generates the analog of ldoor (structural shell): a thin
// nx×ny×nz slab (nz small) of hexahedral elements with 3 dof per node and
// full 3×3 coupling between neighboring nodes. The thin third dimension
// gives the near-2D separator growth that makes ldoor scale well in the
// paper's Fig. 4.
func LdoorLike(nx, ny, nz int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	nodes := nx * ny * nz
	n := 3 * nodes
	b := sparse.NewBuilder(n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := grid3DIndex(x, y, z, nx, ny)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
								continue
							}
							j := grid3DIndex(xx, yy, zz, nx, ny)
							for di := 0; di < 3; di++ {
								for dj := 0; dj < 3; dj++ {
									if i == j && di == dj {
										continue
									}
									b.Add(3*i+di, 3*j+dj, stencilValue(rng))
								}
							}
						}
					}
				}
			}
		}
	}
	return finishDiagonallyDominant(b)
}

// DielFilterLike generates the analog of dielFilterV3real (3D finite-element
// Maxwell discretization): a 13-point 3D stencil (axis neighbors at distance
// 1 and 2) on a cube, preserving the 3D fill character with a wider band
// than a plain 7-point Laplacian.
func DielFilterLike(nx int, seed int64) *sparse.CSR {
	return Stencil3D(nx, nx, nx, 2, seed)
}

// GaAsLike generates the analog of Ga19As19H42 (quantum chemistry, 9% LU
// density): a ring lattice with random long-range chords. The small graph
// diameter forces near-dense fill under any ordering, reproducing the
// hard-to-scale regime of the paper's Fig. 11.
func GaAsLike(n, chordsPerVertex int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= 2; d++ {
			j := (i + d) % n
			b.Add(i, j, stencilValue(rng))
			b.Add(j, i, stencilValue(rng))
		}
		for c := 0; c < chordsPerVertex; c++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := stencilValue(rng)
			b.Add(i, j, v)
			b.Add(j, i, v)
		}
	}
	return finishDiagonallyDominant(b)
}

// S1MatLike generates the analog of s1_mat_0_253872 (fusion plasma): a 2D
// nx×nx grid of nb×nb dense blocks with 5-point block stencil — the
// block-structured, extruded-2D character of tokamak field-line meshes.
func S1MatLike(nx, nb int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * nx * nb
	b := sparse.NewBuilder(n)
	addBlock := func(bi, bj int) {
		for di := 0; di < nb; di++ {
			for dj := 0; dj < nb; dj++ {
				if bi == bj && di == dj {
					continue
				}
				b.Add(bi*nb+di, bj*nb+dj, stencilValue(rng))
			}
		}
	}
	for y := 0; y < nx; y++ {
		for x := 0; x < nx; x++ {
			i := y*nx + x
			addBlock(i, i)
			if x+1 < nx {
				addBlock(i, i+1)
				addBlock(i+1, i)
			}
			if y+1 < nx {
				addBlock(i, i+nx)
				addBlock(i+nx, i)
			}
		}
	}
	return finishDiagonallyDominant(b)
}

// RandomDD generates a random strictly diagonally dominant matrix with a
// symmetric pattern, used by property-based tests across the repository.
func RandomDD(rng *rand.Rand, n int, density float64) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for r := 0; r < n; r++ {
		b.Add(r, r, 0)
		for c := r + 1; c < n; c++ {
			if rng.Float64() < density {
				b.Add(r, c, stencilValue(rng))
				b.Add(c, r, stencilValue(rng))
			}
		}
	}
	return finishDiagonallyDominant(b)
}
