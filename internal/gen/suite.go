package gen

// Scale selects the size of the generated analogs. Tests and `go test
// -bench` use Small; cmd/figures defaults to Medium; Large approaches the
// largest problems this environment can factor in reasonable time (the
// paper's originals, at n up to 4.2M with billions of LU nonzeros, need a
// supercomputer even to hold).
type Scale int

const (
	Small Scale = iota
	Medium
	Large
)

// ParseScale maps a flag string to a Scale; unknown strings map to Medium.
func ParseScale(s string) Scale {
	switch s {
	case "small":
		return Small
	case "large":
		return Large
	default:
		return Medium
	}
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Large:
		return "large"
	default:
		return "medium"
	}
}

// Named generates a single analog by name at the given scale. Valid names
// are s2d9pt, nlpkkt, ldoor, dielfilter, gaas, and s1mat; it panics on
// anything else so misconfigured experiments fail immediately.
func Named(name string, scale Scale) Matrix {
	switch name {
	case "s2d9pt":
		nx := map[Scale]int{Small: 32, Medium: 128, Large: 384}[scale]
		return Matrix{
			Name: "s2d9pt", PaperName: "s2D9pt2048", Description: "Poisson",
			A: S2D9pt(nx, nx, 101),
		}
	case "nlpkkt":
		nx := map[Scale]int{Small: 7, Medium: 14, Large: 24}[scale]
		return Matrix{
			Name: "nlpkkt", PaperName: "nlpkkt80", Description: "Optimization",
			A: NLPKKTLike(nx, 102),
		}
	case "ldoor":
		nx := map[Scale]int{Small: 10, Medium: 24, Large: 48}[scale]
		return Matrix{
			Name: "ldoor", PaperName: "ldoor", Description: "Structural",
			A: LdoorLike(nx, nx/2+1, 3, 103),
		}
	case "dielfilter":
		nx := map[Scale]int{Small: 8, Medium: 14, Large: 22}[scale]
		return Matrix{
			Name: "dielfilter", PaperName: "dielFilterV3real", Description: "Wave",
			A: DielFilterLike(nx, 104),
		}
	case "gaas":
		n := map[Scale]int{Small: 300, Medium: 1200, Large: 2500}[scale]
		return Matrix{
			Name: "gaas", PaperName: "Ga19As19H42", Description: "Chemistry",
			A: GaAsLike(n, 4, 105),
		}
	case "s1mat":
		nx := map[Scale]int{Small: 8, Medium: 24, Large: 48}[scale]
		return Matrix{
			Name: "s1mat", PaperName: "s1_mat_0_253872", Description: "Fusion",
			A: S1MatLike(nx, 8, 106),
		}
	}
	panic("gen: unknown matrix name " + name)
}

// SuiteNames lists the analogs in the paper's Table 1 order.
func SuiteNames() []string {
	return []string{"nlpkkt", "gaas", "s1mat", "s2d9pt", "ldoor", "dielfilter"}
}

// Suite generates the full Table 1 analog set at the given scale.
func Suite(scale Scale) []Matrix {
	names := SuiteNames()
	ms := make([]Matrix, len(names))
	for i, name := range names {
		ms[i] = Named(name, scale)
	}
	return ms
}
