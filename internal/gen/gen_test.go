package gen

import (
	"math"
	"math/rand"
	"testing"

	"sptrsv/internal/sparse"
)

// requireWellFormed checks the invariants every generator promises: valid
// CSR structure, symmetric pattern, strict diagonal dominance.
func requireWellFormed(t *testing.T, name string, a *sparse.CSR) {
	t.Helper()
	if err := a.CheckValid(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	at := a.Transpose()
	for r := 0; r < a.N; r++ {
		cols, vals := a.Row(r)
		diag, off := 0.0, 0.0
		hasDiag := false
		for i, c := range cols {
			if c == r {
				diag = vals[i]
				hasDiag = true
			} else {
				off += math.Abs(vals[i])
			}
		}
		if !hasDiag {
			t.Fatalf("%s: row %d missing diagonal", name, r)
		}
		if diag <= off {
			t.Fatalf("%s: row %d not diagonally dominant (%v <= %v)", name, r, diag, off)
		}
	}
	// Pattern symmetry via transpose comparison.
	for r := 0; r < a.N; r++ {
		cols, _ := a.Row(r)
		tcols, _ := at.Row(r)
		if len(cols) != len(tcols) {
			t.Fatalf("%s: row %d asymmetric pattern", name, r)
		}
		for i := range cols {
			if cols[i] != tcols[i] {
				t.Fatalf("%s: row %d asymmetric pattern at %d", name, r, i)
			}
		}
	}
}

func TestSuiteWellFormed(t *testing.T) {
	for _, m := range Suite(Small) {
		requireWellFormed(t, m.Name, m.A)
		if m.A.N < 100 {
			t.Fatalf("%s: suspiciously small n=%d", m.Name, m.A.N)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := S2D9pt(16, 16, 7)
	b := S2D9pt(16, 16, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different pattern")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("same seed produced different values")
		}
	}
	c := S2D9pt(16, 16, 8)
	same := true
	for i := range a.Val {
		if i < len(c.Val) && a.Val[i] != c.Val[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical values")
	}
}

func TestS2D9ptStencilShape(t *testing.T) {
	a := S2D9pt(5, 5, 1)
	// Interior point (2,2) = index 12 must have 8 neighbors + diagonal.
	cols, _ := a.Row(12)
	if len(cols) != 9 {
		t.Fatalf("interior row has %d entries, want 9", len(cols))
	}
	// Corner (0,0) has 3 neighbors + diagonal.
	cols, _ = a.Row(0)
	if len(cols) != 4 {
		t.Fatalf("corner row has %d entries, want 4", len(cols))
	}
}

func TestStencil3DReach2(t *testing.T) {
	a := Stencil3D(5, 5, 5, 2, 1)
	// Center point has 12 axis neighbors + diagonal = 13.
	center := grid3DIndex(2, 2, 2, 5, 5)
	cols, _ := a.Row(center)
	if len(cols) != 13 {
		t.Fatalf("center row has %d entries, want 13", len(cols))
	}
}

func TestNLPKKTCoupling(t *testing.T) {
	a := NLPKKTLike(4, 1)
	if a.N != 2*64 {
		t.Fatalf("n = %d, want 128", a.N)
	}
	// Field-0 vertex must couple to its field-1 twin.
	if a.At(0, 64) == 0 {
		t.Fatal("missing KKT cross-field coupling")
	}
	requireWellFormed(t, "nlpkkt", a)
}

func TestLdoorBlockDofs(t *testing.T) {
	a := LdoorLike(4, 3, 2, 1)
	if a.N != 4*3*2*3 {
		t.Fatalf("n = %d", a.N)
	}
	// dof 0 and dof 1 of the same node are coupled.
	if a.At(0, 1) == 0 {
		t.Fatal("missing intra-node dof coupling")
	}
}

func TestS1MatBlockStructure(t *testing.T) {
	a := S1MatLike(3, 4, 1)
	if a.N != 36 {
		t.Fatalf("n = %d, want 36", a.N)
	}
	// Dense diagonal block: entries (0,1)...(0,3) all present.
	for c := 1; c < 4; c++ {
		cols, _ := a.Row(0)
		found := false
		for _, cc := range cols {
			if cc == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("diagonal block entry (0,%d) missing", c)
		}
	}
}

func TestGaAsSmallDiameter(t *testing.T) {
	a := GaAsLike(200, 3, 1)
	requireWellFormed(t, "gaas", a)
	// BFS from vertex 0: diameter should be small thanks to chords.
	dist := make([]int, a.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	maxd := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, _ := a.Row(v)
		for _, c := range cols {
			if dist[c] < 0 {
				dist[c] = dist[v] + 1
				if dist[c] > maxd {
					maxd = dist[c]
				}
				queue = append(queue, c)
			}
		}
	}
	for _, d := range dist {
		if d < 0 {
			t.Fatal("graph not connected")
		}
	}
	if maxd > 12 {
		t.Fatalf("diameter %d too large for a small-world analog", maxd)
	}
}

func TestRandomDDWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(60)
		a := RandomDD(rng, n, 0.1)
		requireWellFormed(t, "randomdd", a)
	}
}

func TestParseScaleRoundTrip(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Large} {
		if ParseScale(s.String()) != s {
			t.Fatalf("round trip failed for %v", s)
		}
	}
	if ParseScale("bogus") != Medium {
		t.Fatal("unknown scale should default to Medium")
	}
}

func TestNamedPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Named("nope", Small)
}
