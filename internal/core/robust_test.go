package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func robustSolver(t *testing.T, sys *System) *Solver {
	t.Helper()
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveRejectsNonFiniteRHS(t *testing.T) {
	sys := testSystem(t)
	s := robustSolver(t, sys)
	b := sparse.NewPanel(sys.A.N, 2)
	b.Set(17, 1, math.Inf(1))
	_, _, err := s.Solve(b)
	var ne *fault.NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("expected NumericalError, got %v", err)
	}
	if ne.Stage != "rhs" || ne.Row != 17 || ne.Col != 1 || !math.IsInf(ne.Value, 1) {
		t.Fatalf("wrong attribution: %+v", ne)
	}
	if ne.Sn != -1 || ne.Rank != -1 {
		t.Fatalf("rhs-stage error should not name a supernode/rank: %+v", ne)
	}
	if !fault.IsFault(err) {
		t.Fatal("NumericalError not classified as fault")
	}
}

// TestSolverReusableAfterNumericalFault pins satellite (c) at the core
// layer: failing solves draw buffers from the pool and must return them
// unpoisoned.
func TestSolverReusableAfterNumericalFault(t *testing.T) {
	sys := testSystem(t)
	s := robustSolver(t, sys)
	rng := rand.New(rand.NewSource(41))
	good := sparse.NewPanel(sys.A.N, 2)
	for i := range good.Data {
		good.Data[i] = rng.NormFloat64()
	}
	// Reference solution before any fault.
	x0, _, err := s.Solve(good)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		bad := good.Clone()
		bad.Data[trial*7] = math.NaN()
		if _, _, err := s.Solve(bad); err == nil {
			t.Fatalf("trial %d: NaN RHS accepted", trial)
		}
		x, _, err := s.Solve(good)
		if err != nil {
			t.Fatalf("trial %d: clean solve after fault: %v", trial, err)
		}
		if r := s.Residual(x, good); r > 1e-7 {
			t.Fatalf("trial %d: residual %g after fault", trial, r)
		}
		for i := range x.Data {
			if x.Data[i] != x0.Data[i] {
				t.Fatalf("trial %d: solution differs bitwise after fault — pooled buffer leaked state", trial)
			}
		}
	}
}

func TestSolveBatchErrorMapping(t *testing.T) {
	sys := testSystem(t)
	s := robustSolver(t, sys)
	rng := rand.New(rand.NewSource(43))
	bs := make([]*sparse.Panel, 3)
	for i := range bs {
		bs[i] = sparse.NewPanel(sys.A.N, 1)
		for j := range bs[i].Data {
			bs[i].Data[j] = rng.NormFloat64()
		}
	}
	bs[1].Data[5] = math.NaN()

	xs, reps, err := s.SolveBatch(bs)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BatchError, got %v", err)
	}
	if len(be.Errs) != 3 || be.Failed() != 1 {
		t.Fatalf("BatchError shape: %d errs, %d failed", len(be.Errs), be.Failed())
	}
	if be.Errs[0] != nil || be.Errs[2] != nil {
		t.Fatalf("healthy panels marked failed: %v", be.Errs)
	}
	if be.Errs[1] == nil {
		t.Fatal("poisoned panel not marked failed")
	}
	// errors.As must reach the underlying typed fault through the batch.
	var ne *fault.NumericalError
	if !errors.As(err, &ne) || ne.Stage != "rhs" {
		t.Fatalf("BatchError does not unwrap to the panel fault: %v", err)
	}
	if !fault.IsFault(err) {
		t.Fatal("BatchError with fault panels not classified as fault")
	}
	// Per-panel isolation: siblings of the failed panel completed.
	for _, i := range []int{0, 2} {
		if xs[i] == nil || reps[i] == nil {
			t.Fatalf("panel %d lost to sibling failure", i)
		}
		if r := s.Residual(xs[i], bs[i]); r > 1e-7 {
			t.Fatalf("panel %d residual %g", i, r)
		}
	}
	if xs[1] != nil || reps[1] != nil {
		t.Fatal("failed panel produced a solution/report")
	}
}

// TestSolveBatchFaultedPartialFailure pins the coalescer's failure
// contract: in one SolveBatch, a panel carrying an injected fault plan
// (a rank crash from internal/fault) fails with its typed error while the
// sibling panels solve normally and bit-identically to a clean solver.
func TestSolveBatchFaultedPartialFailure(t *testing.T) {
	sys := testSystem(t)
	s := robustSolver(t, sys)
	rng := rand.New(rand.NewSource(47))
	bs := make([]*sparse.Panel, 4)
	for i := range bs {
		bs[i] = sparse.NewPanel(sys.A.N, 1)
		for j := range bs[i].Data {
			bs[i].Data[j] = rng.NormFloat64()
		}
	}
	// Reference solutions from plain solves before any injection.
	refs := make([]*sparse.Panel, len(bs))
	for i, b := range bs {
		x, _, err := s.Solve(b)
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		refs[i] = x
	}

	plans := make([]*fault.Plan, len(bs))
	plans[2] = &fault.Plan{Crash: map[int]float64{1: 0}}
	xs, reps, err := s.SolveBatchFaulted(bs, plans)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BatchError, got %v", err)
	}
	if be.Failed() != 1 || be.Errs[2] == nil {
		t.Fatalf("exactly panel 2 should fail: %v", be.Errs)
	}
	var ce *fault.CrashError
	if !errors.As(be.Errs[2], &ce) || ce.Rank != 1 {
		t.Fatalf("panel 2 should carry the injected CrashError, got %v", be.Errs[2])
	}
	if xs[2] != nil || reps[2] != nil {
		t.Fatal("crashed panel produced a solution/report")
	}
	for _, i := range []int{0, 1, 3} {
		if be.Errs[i] != nil || xs[i] == nil {
			t.Fatalf("healthy panel %d lost to injected sibling fault: %v", i, be.Errs[i])
		}
		for j := range xs[i].Data {
			if xs[i].Data[j] != refs[i].Data[j] {
				t.Fatalf("panel %d solution differs bitwise from the clean solve", i)
			}
		}
	}
	// Length-mismatched plans are a usage error, not a partial run.
	if _, _, err := s.SolveBatchFaulted(bs, plans[:2]); err == nil {
		t.Fatal("mismatched plans length accepted")
	}
	// And the solver stays healthy for the next plain batch.
	xs2, _, err := s.SolveBatch(bs)
	if err != nil {
		t.Fatalf("clean batch after faulted batch: %v", err)
	}
	for i := range xs2 {
		if r := s.Residual(xs2[i], bs[i]); r > 1e-7 {
			t.Fatalf("panel %d residual %g after faulted batch", i, r)
		}
	}
}

// TestSolveFaultPlanThroughConfig checks the Config.Faults plumbing: a
// crash plan on the default simulation backend surfaces as a CrashError
// from Solve.
func TestSolveFaultPlanThroughConfig(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
		Faults:    &fault.Plan{Crash: map[int]float64{3: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}
	_, _, err = s.Solve(b)
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CrashError through Config.Faults, got %v", err)
	}
	if ce.Rank != 3 {
		t.Fatalf("crash blames rank %d, want 3", ce.Rank)
	}
}
