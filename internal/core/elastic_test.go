package core

import (
	"math"
	"strings"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// TestElasticReportAndMetrics pins the observability contract of an elastic
// solve end to end: under a straggler that forces stale reads, the report
// carries the refinement outcome (passes, stale supernodes, verified
// residual), a strict solve of the same plan carries none of it, and the
// three elastic metric families move on the default registry.
func TestElasticReportAndMetrics(t *testing.T) {
	sys := testSystem(t)
	base := Config{
		Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.Proposed3D,
		Trees: ctree.Binary, Machine: machine.CoriHaswell(),
		Faults: &fault.Plan{Seed: 3, NetDelay: map[int]float64{0: 5e-3}},
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%5)/5
	}

	// Strict reference: the report must not claim any elastic activity, and
	// Residual stays NaN — strict solves do not self-verify.
	ss, err := NewSolver(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	_, srep, err := ss.Solve(b)
	if err != nil {
		t.Fatalf("strict: %v", err)
	}
	if srep.RefinePasses != 0 || srep.StaleSupernodes != 0 || srep.ForcedTicks != 0 {
		t.Fatalf("strict report claims elastic activity: %+v", srep)
	}
	if !math.IsNaN(srep.Residual) {
		t.Fatalf("strict report residual %g, want NaN (unverified)", srep.Residual)
	}

	cfg := base
	cfg.Mode = trsv.ModeElastic
	cfg.Staleness = 4
	es, err := NewSolver(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := scrapeSeries(t)
	x, rep, err := es.Solve(b)
	if err != nil {
		t.Fatalf("elastic: %v", err)
	}
	if rep.StaleSupernodes == 0 || rep.RefinePasses == 0 {
		t.Fatalf("straggler forced nothing (stale=%d refine=%d) — test is vacuous",
			rep.StaleSupernodes, rep.RefinePasses)
	}
	if !(rep.Residual <= 1e-8) {
		t.Fatalf("refined residual %g above default tolerance", rep.Residual)
	}
	if r := es.Residual(x, b); !(r <= 1e-8) {
		t.Fatalf("independently recomputed residual %g disagrees with report %g", r, rep.Residual)
	}

	after := scrapeSeries(t)
	delta := seriesDelta(after, before)
	for _, want := range []string{"sptrsv_refine_passes", "sptrsv_trsv_stale_supernodes"} {
		found := false
		for k := range delta {
			if strings.HasPrefix(k, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s series moved during a forced elastic solve", want)
		}
	}
	// The residual gauge is deterministic across runs (same Set value), so a
	// repeat run's delta is legitimately zero — check the published value.
	found := false
	for k, v := range after {
		if strings.HasPrefix(k, "sptrsv_core_refined_residual") {
			found = true
			if v != rep.Residual {
				t.Errorf("gauge %s = %g, report says %g", k, v, rep.Residual)
			}
		}
	}
	if !found {
		t.Errorf("no sptrsv_core_refined_residual series published")
	}
}
