package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/metrics"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// scrapeSeries renders the default registry and returns every series line
// as key (name + labelset, including _bucket/_count/_total suffixes) →
// value, parsed back from the exposition text.
func scrapeSeries(t *testing.T) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.Default().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// seriesDelta subtracts the counter snapshot before a solve from the one
// after it: the exact amounts one solve published.
func seriesDelta(after, before map[string]float64) map[string]float64 {
	d := map[string]float64{}
	for k, v := range after {
		if dv := v - before[k]; dv != 0 {
			d[k] = dv
		}
	}
	return d
}

// TestMetricsConcurrentSolvesAndScrapes races concurrent solves against
// /metrics scrapes: the registry must stay consistent (every response a
// complete, parseable exposition) while publishers hammer it. Run under
// -race by scripts/check.sh.
func TestMetricsConcurrentSolvesAndScrapes(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}
	srv := httptest.NewServer(metrics.Handler(metrics.Default()))
	defer srv.Close()

	const solvers, solvesEach, scrapes = 4, 8, 16
	var wg sync.WaitGroup
	errc := make(chan error, solvers+1)
	for g := 0; g < solvers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solvesEach; i++ {
				if _, _, err := s.Solve(b); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(srv.URL)
			if err != nil {
				errc <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK || !bytes.HasSuffix(body, []byte("# EOF\n")) {
				errc <- fmt.Errorf("scrape %d: status %d, terminated=%v",
					i, resp.StatusCode, bytes.HasSuffix(body, []byte("# EOF\n")))
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMetricsDeterministicAcrossRuns is the acceptance check for the
// publish-at-run-boundary design: two solves of the same system on the
// deterministic discrete-event backend must publish bit-identical
// increments for every integral family (runs, messages, bytes, waits,
// kernel phase ops, allreduce rounds, histogram bucket counts). Float-sum
// families (seconds) are only required to move; their increments are sums
// recomputed per run, and counter accumulation may round differently.
func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 4},
		Algorithm: trsv.Proposed3D,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%5)/5
	}
	solve := func() map[string]float64 {
		before := scrapeSeries(t)
		if _, _, err := s.Solve(b); err != nil {
			t.Fatal(err)
		}
		return seriesDelta(scrapeSeries(t), before)
	}
	solve() // warm the buffer pool: the first solve is a one-off "miss"
	d1 := solve()
	d2 := solve()

	integral := func(k string) bool {
		switch {
		// The buffer pool is sync.Pool-backed: the GC may evict between
		// any two solves, so hit/miss is a property of the Go heap, not
		// of the deterministic model.
		case strings.HasPrefix(k, "sptrsv_core_solve_buffers"):
			return false
		case strings.Contains(k, "_seconds"):
			return strings.HasSuffix(strings.SplitN(k, "{", 2)[0], "_bucket") ||
				strings.HasSuffix(strings.SplitN(k, "{", 2)[0], "_count")
		default:
			return true
		}
	}
	for k, v := range d1 {
		if !integral(k) {
			continue
		}
		if d2[k] != v {
			t.Errorf("series %s: first solve +%v, second solve +%v", k, v, d2[k])
		}
	}
	for k := range d2 {
		if integral(k) {
			if _, ok := d1[k]; !ok {
				t.Errorf("series %s moved only on the second solve (+%v)", k, d2[k])
			}
		}
	}
	// Spot-check the families the instrumentation promises to move.
	for _, want := range []string{
		"sptrsv_runtime_runs_total",
		"sptrsv_runtime_messages_sent_total",
		"sptrsv_trsv_solves_total",
		"sptrsv_trsv_phase_ops_total",
		"sptrsv_core_solve_seconds_count",
	} {
		found := false
		for k := range d1 {
			if strings.HasPrefix(k, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s series moved during a solve", want)
		}
	}
}
