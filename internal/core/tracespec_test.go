package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func traceTestSolver(t *testing.T) (*Solver, *sparse.Panel) {
	t.Helper()
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	rng := rand.New(rand.NewSource(3))
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return s, b
}

// TestSolveWithTraceDeterminism pins the msgID-safety contract the serving
// layer's per-request arming relies on: arming a trace on one solve leaves
// the DES virtual clock bit-identical, populates Report.Raw.Trace for that
// solve only, and leaves the shared Solver untraced for the next caller.
func TestSolveWithTraceDeterminism(t *testing.T) {
	s, b := traceTestSolver(t)
	_, plain, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Raw.Trace != nil {
		t.Fatal("untraced solve recorded a trace")
	}
	_, traced, err := s.SolveWith(b, SolveSpec{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Raw.Trace == nil {
		t.Fatal("SolveWith{Trace: true} recorded no trace")
	}
	if !traced.Raw.Trace.Complete() {
		t.Fatalf("default cap dropped events: %v", traced.Raw.Trace.Dropped)
	}
	if traced.Time != plain.Time {
		t.Fatalf("tracing perturbed the virtual clock: %v != %v", traced.Time, plain.Time)
	}
	_, after, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if after.Raw.Trace != nil {
		t.Fatal("per-request arming leaked into the shared solver")
	}
	if after.Time != plain.Time {
		t.Fatalf("solve no longer deterministic after traced call: %v != %v", after.Time, plain.Time)
	}
}

// TestSolveWithTraceCap pins that the per-call cap reaches the ring: a tiny
// cap drops events but still returns a usable (truncated) trace.
func TestSolveWithTraceCap(t *testing.T) {
	s, b := traceTestSolver(t)
	_, rep, err := s.SolveWith(b, SolveSpec{Trace: true, TraceCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Raw.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Complete() {
		t.Fatal("cap 4 dropped nothing — cap not plumbed through")
	}
	for rank, evs := range tr.Ranks {
		if len(evs) > 4 {
			t.Fatalf("rank %d retained %d events, cap 4", rank, len(evs))
		}
	}
}

// TestSolveBatchWithMixedSpecs drives the serving coalescer's exact shape:
// one flush mixing a plain panel, a traced panel, and a poisoned panel.
// Tracing and faults must stay with their own panel.
func TestSolveBatchWithMixedSpecs(t *testing.T) {
	s, b := traceTestSolver(t)
	crash := &fault.Plan{Crash: map[int]float64{0: 0}}
	bs := []*sparse.Panel{b, b, b}
	specs := []SolveSpec{{}, {Trace: true}, {Faults: crash}}
	xs, reps, err := s.SolveBatchWith(bs, specs)
	var be *BatchError
	if !errors.As(err, &be) || be.Failed() != 1 {
		t.Fatalf("want exactly the poisoned panel to fail, got %v", err)
	}
	if be.Errs[0] != nil || be.Errs[1] != nil || be.Errs[2] == nil {
		t.Fatalf("fault leaked across panels: %v", be.Errs)
	}
	if xs[0] == nil || xs[1] == nil {
		t.Fatal("healthy panels returned no solution")
	}
	if reps[0].Raw.Trace != nil {
		t.Fatal("plain panel gained a trace")
	}
	if reps[1].Raw.Trace == nil {
		t.Fatal("traced panel has no trace")
	}
	if reps[1].Time != reps[0].Time {
		t.Fatalf("traced panel clock diverged: %v != %v", reps[1].Time, reps[0].Time)
	}
}

// TestSolveWithZeroSpecAllocNeutral pins the acceptance criterion that a
// zero SolveSpec adds nothing to the solve hot path: allocations per op
// match plain Solve exactly.
func TestSolveWithZeroSpecAllocNeutral(t *testing.T) {
	s, b := traceTestSolver(t)
	// Warm the buffer pool and metric children so steady state is measured.
	if _, _, err := s.Solve(b); err != nil {
		t.Fatal(err)
	}
	plain := testing.AllocsPerRun(10, func() {
		if _, _, err := s.Solve(b); err != nil {
			t.Fatal(err)
		}
	})
	spec := testing.AllocsPerRun(10, func() {
		if _, _, err := s.SolveWith(b, SolveSpec{}); err != nil {
			t.Fatal(err)
		}
	})
	if math.Abs(spec-plain) > 0.5 {
		t.Fatalf("zero-spec SolveWith allocates %.1f/op vs Solve's %.1f/op", spec, plain)
	}
}

// BenchmarkSolveSpecOff is the allocs/op pin in benchmark form: run with
// -benchmem to read the trace-off serving hot path's allocation count.
func BenchmarkSolveSpecOff(bench *testing.B) {
	sys, err := Factorize(gen.S2D9pt(24, 24, 31), FactorOptions{TreeDepth: 3, MaxSupernode: 8})
	if err != nil {
		bench.Fatal(err)
	}
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		bench.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}
	bench.ReportAllocs()
	bench.ResetTimer()
	for i := 0; i < bench.N; i++ {
		if _, _, err := s.SolveWith(b, SolveSpec{}); err != nil {
			bench.Fatal(err)
		}
	}
}
