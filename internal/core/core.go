// Package core is the high-level API of the reproduction: it runs the full
// preprocessing pipeline (ordering → symbolic analysis → numeric LU →
// supernodal packaging) and exposes a Solver that executes any of the
// paper's distributed SpTRSV algorithms on a chosen machine model and
// backend. The root package sptrsv re-exports this API.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
	"sptrsv/internal/factor"
	"sptrsv/internal/fault"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/order"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sched"
	"sptrsv/internal/snode"
	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
	"sptrsv/internal/trsv"
)

// FactorOptions controls preprocessing.
type FactorOptions struct {
	// TreeDepth is the number of recorded nested-dissection levels; the
	// resulting System supports Pz up to 2^TreeDepth. 0 means 6 (Pz ≤ 64).
	TreeDepth int
	// MaxSupernode caps supernode width; 0 means the symbolic default.
	MaxSupernode int
}

// System holds a factored matrix ready to be distributed and solved.
type System struct {
	A     *sparse.CSR // original matrix
	APerm *sparse.CSR // nested-dissection permuted matrix
	Perm  []int       // old index → new index
	Tree  *order.Tree
	S     *symbolic.Structure
	F     *factor.Factors
	SN    *snode.Matrix
}

// Factorize orders, analyzes, and LU-factors a (which must have symmetric
// nonzero pattern and admit LU without pivoting, e.g. be diagonally
// dominant), returning a reusable System.
func Factorize(a *sparse.CSR, opt FactorOptions) (*System, error) {
	depth := opt.TreeDepth
	if depth == 0 {
		depth = 6
	}
	tree := order.NestedDissection(a, depth)
	ap := a.Permute(tree.Perm)
	s, err := symbolic.Analyze(ap, symbolic.Options{
		MaxSupernode: opt.MaxSupernode,
		Boundaries:   grid.Boundaries(tree),
	})
	if err != nil {
		return nil, fmt.Errorf("core: symbolic analysis: %w", err)
	}
	f, err := factor.Factorize(ap, s)
	if err != nil {
		return nil, fmt.Errorf("core: numeric factorization: %w", err)
	}
	sn, err := snode.Build(f)
	if err != nil {
		return nil, fmt.Errorf("core: supernodal packaging: %w", err)
	}
	return &System{A: a, APerm: ap, Perm: tree.Perm, Tree: tree, S: s, F: f, SN: sn}, nil
}

// NNZFactors returns nnz(L)+nnz(U) counting the diagonal once, the
// quantity the paper's Table 1 reports.
func (s *System) NNZFactors() int { return 2*s.S.FillNNZ() - s.S.N }

// Config selects how a Solver runs.
type Config struct {
	Layout    grid.Layout    // Px × Py × Pz process layout
	Algorithm trsv.Algorithm // Proposed3D, Baseline3D, GPUSingle, GPUMulti
	Trees     ctree.Kind     // intra-grid communication trees (CPU algorithms)
	Machine   *machine.Model // performance model for the simulation backend
	Backend   trsv.Backend   // nil means the discrete-event simulator
	// Trace enables per-rank event tracing on the default simulation
	// backend (Report.Raw.Trace, runtime.Result.WriteTrace). Ignored when
	// Backend is non-nil — set the backend's own Options instead.
	Trace bool
	// TraceCap bounds the retained events per rank when Trace is set
	// (0 means runtime.DefaultTraceCap). Like Trace it applies to the
	// default simulation backend only.
	TraceCap int
	// Faults injects deterministic faults (stragglers, jitter, drops,
	// crashes — see fault.Plan) into solves on the default simulation
	// backend. Like Trace, it is ignored when Backend is non-nil: set the
	// backend's own Options instead.
	Faults *fault.Plan
	// Exec selects the execution engine: trsv.ExecSched (the default,
	// level-scheduled sweeps over the precomputed plan schedule) or
	// trsv.ExecHandler (the original per-message handler path, kept as the
	// bit-exact oracle).
	Exec trsv.ExecMode
	// LevelChunk overrides the scheduled executor's cache-blocking chunk
	// size; 0 means the built-in default. Ignored under ExecHandler.
	LevelChunk int
	// Comm selects the wire format of inter-rank subvector traffic:
	// trsv.CommPacked (the default, index+value sparse packing),
	// trsv.CommDense (the full-dense reference model), or
	// trsv.CommAggregated (packed plus per-destination coalescing in the
	// proposed algorithm's 2D phases).
	Comm trsv.CommMode
	// Mode selects the blocking discipline: trsv.ModeStrict (the default
	// — every cross-rank dependency blocks until it arrives) or
	// trsv.ModeElastic (dependency waits are bounded by Staleness; ranks
	// past the deadline proceed with stale inputs and the solve is
	// finished by iterative refinement, see RefineTol/RefineMax).
	Mode trsv.SolveMode
	// Staleness is elastic mode's staleness bound S in dependency
	// levels. S ≤ 0 disables forcing, making an elastic solve
	// bit-identical to the strict one. Ignored under ModeStrict.
	Staleness int
	// RefineTol is the elastic-mode acceptance threshold on the true
	// residual ‖b − A·x‖∞: after an elastic solve the Solver verifies the
	// residual and runs iterative refinement passes until it is ≤
	// RefineTol. 0 means 1e-8. Ignored under ModeStrict.
	RefineTol float64
	// RefineMax caps the number of refinement passes an elastic solve
	// may run before giving up with a typed fault.NumericalError. 0 means
	// 48 — headroom for the measured worst-case per-pass contraction
	// (~0.6× under heavy forcing) to carry an O(1) forced-solve error
	// below the default RefineTol; forced passes are cheap (their makespan
	// is the staleness deadline, not the straggler's lateness), so a
	// generous cap trades bounded extra modeled time for far fewer
	// spurious non-convergence faults. Ignored under ModeStrict.
	RefineMax int
}

// elastic reports whether cfg asks for stale-synchronous execution (elastic
// mode with a positive staleness bound — S ≤ 0 elastic is strict by
// construction and skips the verification pass too).
func (c Config) elastic() bool {
	return c.Mode.Resolve() == trsv.ModeElastic && c.Staleness > 0
}

// refineTol resolves the zero-value default acceptance threshold.
func (c Config) refineTol() float64 {
	if c.RefineTol == 0 {
		return 1e-8
	}
	return c.RefineTol
}

// refineMax resolves the zero-value default pass cap.
func (c Config) refineMax() int {
	if c.RefineMax == 0 {
		return 48
	}
	return c.RefineMax
}

// Solver executes distributed triangular solves for one System and Config.
// A Solver is an immutable plan plus a pool of per-solve buffers: after
// NewSolver nothing in it is written by a solve, so Solve and SolveBatch
// are safe for concurrent use from multiple goroutines.
type Solver struct {
	sys  *System
	cfg  Config
	plan *dist.Plan
	inv  []int

	// bufs recycles the permuted-RHS and permuted-solution panels between
	// solves so repeated solves do not reallocate them.
	bufs sync.Pool
}

// solveBuffers holds one solve's rank-private permutation panels. fresh
// marks a pair straight from the pool's New — a pool miss for the metrics.
type solveBuffers struct {
	bp, xp *sparse.Panel
	fresh  bool
}

// ValidateConfig checks that cfg is a runnable algorithm × layout ×
// machine combination for sys, without building the distribution plan.
// NewSolver calls it first, and the autotuner's search-space generator
// filters candidates through it, so the compatibility rules live in one
// place.
func ValidateConfig(sys *System, cfg Config) error {
	if cfg.Machine == nil {
		return fmt.Errorf("core: Config.Machine is required")
	}
	if err := cfg.Layout.Validate(); err != nil {
		return err
	}
	if max := sys.Tree.NumLeaves(); cfg.Layout.Pz > max {
		return fmt.Errorf("core: Pz=%d exceeds the separator tree's capacity 2^%d (refactorize with a larger FactorOptions.TreeDepth)",
			cfg.Layout.Pz, sys.Tree.Depth)
	}
	switch cfg.Algorithm {
	case trsv.Proposed3D, trsv.Baseline3D, trsv.Proposed3DNaiveAR:
		// CPU algorithms run under every machine model.
	case trsv.GPUSingle:
		if cfg.Machine.GPU == nil {
			return fmt.Errorf("core: algorithm %v needs a GPU machine model, %s is CPU-only", cfg.Algorithm, cfg.Machine.Name)
		}
		if cfg.Layout.Px != 1 || cfg.Layout.Py != 1 {
			return fmt.Errorf("core: algorithm %v requires Px=Py=1 (Alg. 4 collapses each grid to one GPU), got %dx%d",
				cfg.Algorithm, cfg.Layout.Px, cfg.Layout.Py)
		}
	case trsv.GPUMulti:
		if cfg.Machine.GPU == nil {
			return fmt.Errorf("core: algorithm %v needs a GPU machine model, %s is CPU-only", cfg.Algorithm, cfg.Machine.Name)
		}
		if cfg.Layout.Py != 1 {
			return fmt.Errorf("core: algorithm %v requires Py=1 (the Alg. 5 model covers Py=1 layouts only), got Py=%d",
				cfg.Algorithm, cfg.Layout.Py)
		}
	default:
		return fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}
	if !cfg.Exec.Valid() {
		return fmt.Errorf("core: unknown execution mode %v", cfg.Exec)
	}
	if !cfg.Comm.Valid() {
		return fmt.Errorf("core: unknown communication mode %v", cfg.Comm)
	}
	if cfg.LevelChunk < 0 {
		return fmt.Errorf("core: Config.LevelChunk must be non-negative, got %d", cfg.LevelChunk)
	}
	if cfg.TraceCap < 0 {
		return fmt.Errorf("core: Config.TraceCap must be non-negative, got %d", cfg.TraceCap)
	}
	if !cfg.Mode.Valid() {
		return fmt.Errorf("core: unknown solve mode %v", cfg.Mode)
	}
	if cfg.Staleness < 0 {
		return fmt.Errorf("core: Config.Staleness must be non-negative, got %d", cfg.Staleness)
	}
	if cfg.RefineTol < 0 {
		return fmt.Errorf("core: Config.RefineTol must be non-negative, got %g", cfg.RefineTol)
	}
	if cfg.RefineMax < 0 {
		return fmt.Errorf("core: Config.RefineMax must be non-negative, got %d", cfg.RefineMax)
	}
	if cfg.elastic() && cfg.Backend != nil {
		switch cfg.Backend.(type) {
		case trsv.SimBackend, trsv.PoolBackend:
			// The built-in backends implement the staleness-deadline tick
			// protocol.
		default:
			return fmt.Errorf("core: elastic mode requires the sim or pool backend, not %T", cfg.Backend)
		}
	}
	return nil
}

// NewSolver validates the configuration and builds the distribution plan.
func NewSolver(sys *System, cfg Config) (*Solver, error) {
	if err := ValidateConfig(sys, cfg); err != nil {
		return nil, err
	}
	if cfg.Backend == nil {
		cfg.Backend = trsv.SimBackend{Opts: runtime.Options{
			Trace: cfg.Trace, TraceCap: cfg.TraceCap, Faults: cfg.Faults,
		}}
	}
	plan, err := dist.New(sys.SN, sys.Tree, cfg.Layout, cfg.Trees)
	if err != nil {
		return nil, err
	}
	if cfg.Algorithm == trsv.Baseline3D {
		if err := plan.BuildBaseline(); err != nil {
			return nil, err
		}
	}
	if cfg.Exec.Resolve() == trsv.ExecSched || cfg.elastic() {
		// Build (and cache on the plan) the level schedule now, so a
		// schedule-construction failure surfaces at solver construction
		// rather than on the first solve. Elastic mode needs it under
		// either executor: the staleness deadlines are derived from the
		// schedule's dependency depths.
		if _, err := sched.Of(plan); err != nil {
			return nil, err
		}
	}
	s := &Solver{sys: sys, cfg: cfg, plan: plan, inv: sparse.InversePerm(sys.Perm)}
	s.bufs.New = func() any { return &solveBuffers{fresh: true} }
	return s, nil
}

// Plan exposes the distribution plan (read-only) for experiment harnesses.
func (s *Solver) Plan() *dist.Plan { return s.plan }

// Report summarizes one solve.
type Report struct {
	// Time is the solve makespan: virtual seconds under the simulator,
	// wall-clock seconds under the goroutine pool. Under elastic mode it
	// is the total across the initial solve and every refinement pass,
	// so it compares directly against a strict solve of the same system.
	Time float64
	// MeanFP, MeanXY, MeanZ are per-rank means of the breakdown
	// categories (the paper's Figs. 5–6), from the initial solve.
	MeanFP, MeanXY, MeanZ float64
	// LSpan, USpan, ZSpan are per-rank phase durations (Figs. 7–10),
	// from the initial solve.
	LSpan, USpan, ZSpan []float64
	// RefinePasses is the number of iterative-refinement passes an
	// elastic solve ran after the initial solve; 0 under strict mode or
	// when the elastic solution already met RefineTol.
	RefinePasses int
	// RefineTime is the modeled/wall seconds the refinement passes alone
	// took (already included in Time); 0 when no pass ran.
	RefineTime float64
	// StaleSupernodes counts supernode solves (across ranks, sweeps, and
	// refinement passes) that consumed stale or missing inputs because a
	// staleness deadline forced their dependencies closed; 0 under
	// strict mode and on healthy elastic runs.
	StaleSupernodes int
	// ForcedTicks counts staleness-deadline ticks that fired with their
	// phase still open and forced it closed; 0 under strict mode.
	ForcedTicks int
	// Residual is the verified ‖b − A·x‖∞ of the returned solution when
	// the solve ran elastically (the refinement loop computes it); NaN
	// under strict mode, where the solver does not verify.
	Residual float64
	// Raw gives access to all per-rank clocks and timers of the initial
	// solve.
	Raw *runtime.Result
}

// Solve computes x with A·x = b, where b and x are in the original (
// unpermuted) row ordering. b may have multiple columns (nrhs > 1).
//
// Solve never lets a failing solve take the process down: handler panics,
// stalls, injected faults, and non-finite numbers all come back as typed
// fault.* errors (fault.IsFault distinguishes them from usage errors such
// as a wrong-shaped RHS). A non-finite RHS is rejected up front and a
// non-finite solution on exit is reported as a fault.NumericalError naming
// the first offending entry. After any error the Solver remains valid: the
// pooled per-solve state is reclaimed and the next Solve starts clean.
//
// Solve is safe to call concurrently from multiple goroutines: every solve
// draws its own buffers and execution state from pools, and the shared
// plan is read-only.
func (s *Solver) Solve(b *sparse.Panel) (*sparse.Panel, *Report, error) {
	return s.solveOn(b, s.cfg.Backend)
}

// SolveSpec bundles the per-call overrides of one solve against a shared
// Solver: an optional fault plan and optional per-solve event tracing. The
// zero value is a plain Solve — SolveWith then uses the configured backend
// as-is, copying nothing, so serving traffic pays no overhead when neither
// override is in play (the alloc-neutrality benchmark pins this).
type SolveSpec struct {
	// Faults layers a per-call fault plan onto the configured backend
	// (see SolveFaulted).
	Faults *fault.Plan
	// Trace arms per-rank event tracing for this solve only:
	// Report.Raw.Trace is populated as if Config.Trace were set while the
	// Solver's own backend stays untraced. The runtime allocates message
	// IDs independently of the DES event order, so arming a trace does not
	// perturb virtual time — a traced and an untraced solve of the same
	// system return bit-identical clocks.
	Trace bool
	// TraceCap bounds retained events per rank when Trace is set
	// (0 means runtime.DefaultTraceCap).
	TraceCap int
}

// SolveWith is Solve with per-call overrides (see SolveSpec). Both
// overrides require the built-in sim or pool backend; custom backends are
// rejected because core cannot know how to thread options into them.
func (s *Solver) SolveWith(b *sparse.Panel, spec SolveSpec) (*sparse.Panel, *Report, error) {
	back, err := s.specBackend(spec)
	if err != nil {
		return nil, nil, err
	}
	return s.solveOn(b, back)
}

// SolveFaulted is Solve with a per-call fault plan layered onto the
// configured backend: this one solve runs with plan injected (see
// fault.Plan) while the Solver itself stays clean, so a chaos harness or a
// serving path can poison exactly one request against a shared Solver. A
// nil plan is plain Solve.
func (s *Solver) SolveFaulted(b *sparse.Panel, plan *fault.Plan) (*sparse.Panel, *Report, error) {
	return s.SolveWith(b, SolveSpec{Faults: plan})
}

// specBackend derives the backend one SolveWith call runs on: the
// configured backend itself for a zero spec, a value copy carrying the
// overrides otherwise.
func (s *Solver) specBackend(spec SolveSpec) (trsv.Backend, error) {
	back := s.cfg.Backend
	if spec.Faults != nil {
		var err error
		if back, err = faultedBackend(back, spec.Faults); err != nil {
			return nil, err
		}
	}
	if spec.Trace {
		ta, ok := back.(trsv.TraceArmer)
		if !ok {
			return nil, fmt.Errorf("core: per-solve tracing requires the sim or pool backend, not %T", back)
		}
		back = ta.WithTrace(spec.TraceCap)
	}
	return back, nil
}

// faultedBackend derives a copy of b carrying plan (replacing any plan the
// backend already carries).
func faultedBackend(b trsv.Backend, plan *fault.Plan) (trsv.Backend, error) {
	switch back := b.(type) {
	case trsv.SimBackend:
		back.Opts.Faults = plan
		return back, nil
	case trsv.PoolBackend:
		back.Pool.Opts.Faults = plan
		return back, nil
	}
	return nil, fmt.Errorf("core: per-solve fault plans require the sim or pool backend, not %T", b)
}

func (s *Solver) solveOn(b *sparse.Panel, back trsv.Backend) (*sparse.Panel, *Report, error) {
	if b.Rows != s.sys.A.N {
		return nil, nil, fmt.Errorf("core: rhs has %d rows, matrix has %d", b.Rows, s.sys.A.N)
	}
	if row, col, v, ok := b.FindNonFinite(); ok {
		return nil, nil, &fault.NumericalError{
			Stage: "rhs", Row: row, Col: col, Value: v, Sn: -1, Rank: -1,
		}
	}
	sb := s.bufs.Get().(*solveBuffers)
	switch {
	case sb.fresh:
		mBufPool.With("miss").Inc()
		sb.fresh = false
	case sb.bp.Rows != b.Rows || sb.bp.Cols != b.Cols:
		mBufPool.With("resize").Inc()
	default:
		mBufPool.With("hit").Inc()
	}
	if sb.bp == nil || sb.bp.Rows != b.Rows || sb.bp.Cols != b.Cols {
		sb.bp = sparse.NewPanel(b.Rows, b.Cols)
		sb.xp = sparse.NewPanel(b.Rows, b.Cols)
	}
	b.PermuteRowsInto(s.sys.Perm, sb.bp)
	opts := trsv.SolveOpts{
		Exec: s.cfg.Exec, LevelChunk: s.cfg.LevelChunk, Comm: s.cfg.Comm,
		Mode: s.cfg.Mode, Staleness: s.cfg.Staleness,
	}
	var stats trsv.ElasticStats
	if s.cfg.elastic() {
		opts.Elastic = &stats
	}
	res, err := trsv.SolveIntoOpts(s.plan, s.cfg.Machine, s.cfg.Algorithm, back, sb.bp, sb.xp, opts)
	if err != nil {
		s.bufs.Put(sb)
		// A traced solve that died with a typed fault still yields its
		// partial runtime result; hand it back as a Raw-only Report so a
		// flight recorder can keep the events leading up to the failure.
		// Callers keep the err-first convention — every other Report field
		// is unset.
		if res != nil {
			return nil, &Report{Residual: math.NaN(), Raw: res}, err
		}
		return nil, nil, err
	}
	if nerr := s.checkFinite(sb.xp); nerr != nil {
		s.bufs.Put(sb)
		return nil, nil, nerr
	}
	x := sb.xp.PermuteRows(s.inv)
	rep := &Report{
		Time:     res.MaxClock(),
		MeanFP:   res.MeanCat(runtime.CatFP),
		MeanXY:   res.MeanCat(runtime.CatXY),
		MeanZ:    res.MeanCat(runtime.CatZ),
		Residual: math.NaN(),
		Raw:      res,
	}
	rep.LSpan, rep.ZSpan, rep.USpan = phaseSpans(res)
	rep.StaleSupernodes = stats.StaleSupernodes
	rep.ForcedTicks = stats.ForcedTicks
	if s.cfg.elastic() {
		if err := s.refine(b, x, sb, back, opts, rep); err != nil {
			s.bufs.Put(sb)
			return nil, nil, err
		}
	}
	s.bufs.Put(sb)
	mSolveSeconds.With(s.cfg.Algorithm.String(), backendName(s.cfg.Backend),
		s.cfg.Machine.Name, s.sys.Fingerprint()).Observe(rep.Time)
	return x, rep, nil
}

// checkFinite scans a permuted-ordering solution panel for NaN/Inf and, on a
// hit, attributes the bad entry to the supernode whose diagonal solve
// produced it and the in-grid rank that ran that solve.
func (s *Solver) checkFinite(xp *sparse.Panel) error {
	rp, col, v, ok := xp.FindNonFinite()
	if !ok {
		return nil
	}
	k := sort.SearchInts(s.sys.SN.SnBegin, rp+1) - 1
	return &fault.NumericalError{
		Stage: "solution", Row: s.inv[rp], Col: col, Value: v,
		Sn: k, Rank: s.plan.DiagRank2D(k),
	}
}

// refine verifies and, if needed, iteratively refines an elastic solution in
// place: it computes the true residual r = b − A·x in the original ordering
// and, while r exceeds RefineTol, re-solves the system with r as the
// right-hand side (still elastically, so a straggler cannot re-inflate the
// pass) and applies the correction, up to RefineMax passes. Convergence is
// guaranteed, not just hoped for: the error a forced pass re-injects is
// proportional to its right-hand side and propagates only through the
// forced (strictly sub-diagonal) couplings, so the per-pass error operator
// is nilpotent — each pass contracts the residual geometrically (measured
// ~0.6× under heavy forcing) and terminates exactly within the stale
// subgraph's depth. On success rep carries the pass count, the accumulated
// stale/forced tallies, the verified residual, and the total modeled time;
// on failure the returned error is a typed *fault.NumericalError with Stage
// "refinement", preserving the verified-solution-or-typed-fault contract.
func (s *Solver) refine(b, x *sparse.Panel, sb *solveBuffers, back trsv.Backend, opts trsv.SolveOpts, rep *Report) error {
	tol, maxPasses := s.cfg.refineTol(), s.cfg.refineMax()
	r := sparse.NewPanel(b.Rows, b.Cols)
	rinf := sparse.ResidualInto(s.sys.A, x, b, r)
	passes := 0
	for rinf > tol && passes < maxPasses && !math.IsNaN(rinf) {
		passes++
		var stats trsv.ElasticStats
		opts.Elastic = &stats
		r.PermuteRowsInto(s.sys.Perm, sb.bp)
		res, err := trsv.SolveIntoOpts(s.plan, s.cfg.Machine, s.cfg.Algorithm, back, sb.bp, sb.xp, opts)
		if err != nil {
			return err
		}
		if nerr := s.checkFinite(sb.xp); nerr != nil {
			return nerr
		}
		rep.Time += res.MaxClock()
		rep.RefineTime += res.MaxClock()
		rep.StaleSupernodes += stats.StaleSupernodes
		rep.ForcedTicks += stats.ForcedTicks
		d := sb.xp.PermuteRows(s.inv)
		x.AddFrom(d)
		rinf = sparse.ResidualInto(s.sys.A, x, b, r)
	}
	rep.RefinePasses = passes
	rep.Residual = rinf
	labels := []string{s.cfg.Algorithm.String(), s.cfg.Machine.Name, s.sys.Fingerprint()}
	mRefinePasses.With(labels...).Add(float64(passes))
	mRefinedResidual.With(labels...).Set(rinf)
	if !(rinf <= tol) { // NaN also fails
		return &fault.NumericalError{
			Stage: "refinement", Residual: rinf, Tol: tol, Passes: passes,
			Row: -1, Sn: -1, Rank: -1,
		}
	}
	return nil
}

// phaseSpans converts the per-rank phase marks into durations. It mirrors
// runtime.Result.MarkSpan semantics: a rank missing a mark (a grid that
// never reaches a phase) or with out-of-order marks contributes NaN — the
// span does not exist on that rank, and aggregators must skip it rather
// than dilute means with fake zeros.
func phaseSpans(res *runtime.Result) (l, z, u []float64) {
	l = make([]float64, len(res.Timers))
	for i := range res.Timers {
		l[i] = math.NaN()
		if marks := res.Timers[i].Marks; marks != nil {
			if v, ok := marks[trsv.MarkLDone]; ok {
				l[i] = v
			}
		}
	}
	z = res.MarkSpan(trsv.MarkLDone, trsv.MarkZDone)
	u = res.MarkSpan(trsv.MarkZDone, trsv.MarkUDone)
	return l, z, u
}

// BatchError reports which panels of a SolveBatch failed. Errs is indexed
// like the input batch: Errs[i] is nil exactly when panel i solved
// successfully. It unwraps to the per-panel errors, so errors.As reaches
// the underlying fault.* types.
type BatchError struct {
	Errs []error
}

// Failed returns the number of failed panels.
func (e *BatchError) Failed() int {
	n := 0
	for _, err := range e.Errs {
		if err != nil {
			n++
		}
	}
	return n
}

func (e *BatchError) Error() string {
	var first error
	for _, err := range e.Errs {
		if err != nil {
			first = err
			break
		}
	}
	return fmt.Sprintf("core: %d of %d batch panels failed; first: %v", e.Failed(), len(e.Errs), first)
}

// Unwrap exposes the non-nil per-panel errors to errors.Is / errors.As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, len(e.Errs))
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// SolveBatch solves one independent system per panel in bs, running the
// solves concurrently (each on its own backend run), and returns the
// solutions and reports in matching order.
//
// Failures are isolated per panel: a panel whose solve fails gets a nil
// xs[i] (and a nil reps[i] — unless the solve was traced and died with a
// typed fault, which leaves a Raw-only report carrying the salvaged
// partial trace) while the other panels complete normally. When any
// panel failed, the returned error is a *BatchError whose Errs slice maps
// each panel to its error (nil for successes), so callers can retry or
// report exactly the failed panels.
func (s *Solver) SolveBatch(bs []*sparse.Panel) ([]*sparse.Panel, []*Report, error) {
	return s.SolveBatchFaulted(bs, nil)
}

// SolveBatchFaulted is SolveBatch with an optional per-panel fault plan:
// panel i runs under plans[i] (nil entries inject nothing), so a batch can
// mix healthy panels with deliberately poisoned ones and the BatchError
// fan-out isolates the failures — the property the serving coalescer and
// the chaos tests rely on. plans may be nil (no injection anywhere) or
// must match bs in length.
func (s *Solver) SolveBatchFaulted(bs []*sparse.Panel, plans []*fault.Plan) ([]*sparse.Panel, []*Report, error) {
	if plans == nil {
		return s.SolveBatchWith(bs, nil)
	}
	if len(plans) != len(bs) {
		return nil, nil, fmt.Errorf("core: %d fault plans for %d panels", len(plans), len(bs))
	}
	specs := make([]SolveSpec, len(bs))
	for i, p := range plans {
		specs[i].Faults = p
	}
	return s.SolveBatchWith(bs, specs)
}

// SolveBatchWith is SolveBatch with an optional per-panel SolveSpec: panel
// i runs under specs[i] (zero entries override nothing), so one flush can
// mix plain panels, poisoned panels, and panels traced on behalf of a
// specific request. specs may be nil (no overrides anywhere) or must match
// bs in length.
func (s *Solver) SolveBatchWith(bs []*sparse.Panel, specs []SolveSpec) ([]*sparse.Panel, []*Report, error) {
	if specs != nil && len(specs) != len(bs) {
		return nil, nil, fmt.Errorf("core: %d solve specs for %d panels", len(specs), len(bs))
	}
	xs := make([]*sparse.Panel, len(bs))
	reps := make([]*Report, len(bs))
	errs := make([]error, len(bs))
	failed := false
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *sparse.Panel) {
			defer wg.Done()
			var spec SolveSpec
			if specs != nil {
				spec = specs[i]
			}
			xs[i], reps[i], errs[i] = s.SolveWith(b, spec)
		}(i, b)
	}
	wg.Wait()
	bad := 0
	for _, err := range errs {
		if err != nil {
			bad++
		}
	}
	failed = bad > 0
	mBatchPanels.With("ok").Add(float64(len(bs) - bad))
	mBatchPanels.With("error").Add(float64(bad))
	if failed {
		return xs, reps, &BatchError{Errs: errs}
	}
	return xs, reps, nil
}

// Residual returns ‖A·x − b‖∞ in the original ordering. The value is also
// exported as a gauge, so a scrape of a serving process shows the accuracy
// of its most recent checked solve.
func (s *Solver) Residual(x, b *sparse.Panel) float64 {
	r := sparse.ResidualInf(s.sys.A, x, b)
	mResidual.With(s.cfg.Algorithm.String(), s.cfg.Machine.Name, s.sys.Fingerprint()).Set(r)
	return r
}
