package core

import (
	"math/rand"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Factorize(gen.S2D9pt(24, 24, 31), FactorOptions{TreeDepth: 3, MaxSupernode: 8})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFactorizeBasics(t *testing.T) {
	sys := testSystem(t)
	if sys.SN.N != 576 || sys.Tree.Depth != 3 {
		t.Fatalf("system malformed: n=%d depth=%d", sys.SN.N, sys.Tree.Depth)
	}
	if sys.NNZFactors() <= sys.A.NNZ() {
		t.Fatalf("factor nnz %d should exceed nnz(A) %d", sys.NNZFactors(), sys.A.NNZ())
	}
}

func TestSolveOriginalOrdering(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(7))
	for _, algo := range []trsv.Algorithm{trsv.Proposed3D, trsv.Baseline3D} {
		s, err := NewSolver(sys, Config{
			Layout:    grid.Layout{Px: 2, Py: 2, Pz: 4},
			Algorithm: algo,
			Trees:     ctree.Binary,
			Machine:   machine.CoriHaswell(),
		})
		if err != nil {
			t.Fatal(err)
		}
		b := sparse.NewPanel(sys.A.N, 2)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		x, rep, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		// The residual is checked against the ORIGINAL matrix: the solver
		// must round-trip the permutation correctly.
		if r := s.Residual(x, b); r > 1e-7 {
			t.Fatalf("%v: residual %g", algo, r)
		}
		if rep.Time <= 0 {
			t.Fatalf("%v: nonpositive time", algo)
		}
		if len(rep.LSpan) != 16 {
			t.Fatalf("%v: LSpan length %d", algo, len(rep.LSpan))
		}
	}
}

func TestReportBreakdownConsistency(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = 1
	}
	_, rep, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanFP <= 0 || rep.MeanXY <= 0 || rep.MeanZ <= 0 {
		t.Fatalf("breakdown has empty categories: %+v", rep)
	}
	// Per rank: phase spans must sum to (approximately) the finish clock.
	for i, c := range rep.Raw.Clocks {
		sum := rep.LSpan[i] + rep.ZSpan[i] + rep.USpan[i]
		if sum > c+1e-12 {
			t.Fatalf("rank %d spans %g exceed clock %g", i, sum, c)
		}
	}
}

func TestNewSolverValidation(t *testing.T) {
	sys := testSystem(t)
	if _, err := NewSolver(sys, Config{Layout: grid.Layout{Px: 1, Py: 1, Pz: 1}}); err == nil {
		t.Fatal("missing machine accepted")
	}
	if _, err := NewSolver(sys, Config{
		Layout:  grid.Layout{Px: 1, Py: 1, Pz: 3},
		Machine: machine.CoriHaswell(),
	}); err == nil {
		t.Fatal("non-power-of-two Pz accepted")
	}
	if _, err := NewSolver(sys, Config{
		Layout:  grid.Layout{Px: 1, Py: 1, Pz: 16},
		Machine: machine.CoriHaswell(),
	}); err == nil {
		t.Fatal("Pz beyond tree depth accepted")
	}
}

func TestValidateConfigAlgorithmRules(t *testing.T) {
	sys := testSystem(t)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"gpu-multi Py=2 rejected", Config{
			Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.GPUMulti,
			Machine: machine.PerlmutterGPU(),
		}, false},
		{"gpu-multi Py=1 accepted", Config{
			Layout: grid.Layout{Px: 2, Py: 1, Pz: 2}, Algorithm: trsv.GPUMulti,
			Machine: machine.PerlmutterGPU(),
		}, true},
		{"gpu-single Px=2 rejected", Config{
			Layout: grid.Layout{Px: 2, Py: 1, Pz: 2}, Algorithm: trsv.GPUSingle,
			Machine: machine.PerlmutterGPU(),
		}, false},
		{"gpu-single on CPU-only model rejected", Config{
			Layout: grid.Layout{Px: 1, Py: 1, Pz: 4}, Algorithm: trsv.GPUSingle,
			Machine: machine.CoriHaswell(),
		}, false},
		{"gpu-multi on CPU-only model rejected", Config{
			Layout: grid.Layout{Px: 2, Py: 1, Pz: 2}, Algorithm: trsv.GPUMulti,
			Machine: machine.CrusherCPU(),
		}, false},
		{"cpu algorithm on GPU model accepted", Config{
			Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.Proposed3D,
			Machine: machine.PerlmutterGPU(),
		}, true},
		{"unknown algorithm rejected", Config{
			Layout: grid.Layout{Px: 1, Py: 1, Pz: 1}, Algorithm: trsv.Algorithm(99),
			Machine: machine.CoriHaswell(),
		}, false},
	}
	for _, tc := range cases {
		err := ValidateConfig(sys, tc.cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
		// NewSolver must agree with the standalone validator.
		if _, err := NewSolver(sys, tc.cfg); (err == nil) != tc.ok {
			t.Errorf("%s: NewSolver disagrees with ValidateConfig (err=%v)", tc.name, err)
		}
	}
}

func TestGPUSolveThroughCore(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 1, Py: 1, Pz: 8},
		Algorithm: trsv.GPUSingle,
		Machine:   machine.PerlmutterGPU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x, _, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Residual(x, b); r > 1e-7 {
		t.Fatalf("gpu residual %g", r)
	}
}
