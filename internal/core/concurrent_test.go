package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sptrsv/internal/ctree"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func randomPanels(n, rows, cols int, seed int64) []*sparse.Panel {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*sparse.Panel, n)
	for i := range out {
		out[i] = sparse.NewPanel(rows, cols)
		for j := range out[i].Data {
			out[i].Data[j] = rng.NormFloat64()
		}
	}
	return out
}

func samePanel(a, b *sparse.Panel) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestConcurrentSharedSolverSim runs 8 simultaneous Solve calls against one
// shared Solver on the DES backend and requires each result — solution bits
// and virtual makespan — to match a sequential reference solve exactly:
// concurrency must not perturb the simulated event order.
func TestConcurrentSharedSolverSim(t *testing.T) {
	sys := testSystem(t)
	cases := []struct {
		algo   trsv.Algorithm
		layout grid.Layout
		mach   *machine.Model
	}{
		{trsv.Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 2}, machine.CoriHaswell()},
		{trsv.Baseline3D, grid.Layout{Px: 2, Py: 2, Pz: 2}, machine.CoriHaswell()},
		{trsv.GPUSingle, grid.Layout{Px: 1, Py: 1, Pz: 8}, machine.PerlmutterGPU()},
	}
	for _, tc := range cases {
		s, err := NewSolver(sys, Config{
			Layout:    tc.layout,
			Algorithm: tc.algo,
			Trees:     ctree.Binary,
			Machine:   tc.mach,
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 8
		bs := randomPanels(n, sys.A.N, 1, 11)

		refX := make([]*sparse.Panel, n)
		refT := make([]float64, n)
		for i := range bs {
			x, rep, err := s.Solve(bs[i])
			if err != nil {
				t.Fatalf("%v: reference solve %d: %v", tc.algo, i, err)
			}
			refX[i], refT[i] = x, rep.Time
		}

		xs := make([]*sparse.Panel, n)
		reps := make([]*Report, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := range bs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				xs[i], reps[i], errs[i] = s.Solve(bs[i])
			}(i)
		}
		wg.Wait()

		for i := range bs {
			if errs[i] != nil {
				t.Fatalf("%v: concurrent solve %d: %v", tc.algo, i, errs[i])
			}
			if r := s.Residual(xs[i], bs[i]); r > 1e-7 {
				t.Fatalf("%v: concurrent solve %d residual %g", tc.algo, i, r)
			}
			if !samePanel(xs[i], refX[i]) {
				t.Fatalf("%v: concurrent solve %d solution differs from sequential reference", tc.algo, i)
			}
			if reps[i].Time != refT[i] {
				t.Fatalf("%v: concurrent solve %d virtual time %g, sequential reference %g",
					tc.algo, i, reps[i].Time, refT[i])
			}
		}
	}
}

// TestConcurrentSharedSolverPool runs 8 simultaneous Solve calls against
// one shared Solver on the goroutine-pool backend. Wall-clock times and
// floating-point summation orders vary across pool runs, so the check is
// the residual of each solution.
func TestConcurrentSharedSolverPool(t *testing.T) {
	sys := testSystem(t)
	for _, algo := range []trsv.Algorithm{trsv.Proposed3D, trsv.Baseline3D} {
		s, err := NewSolver(sys, Config{
			Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
			Algorithm: algo,
			Trees:     ctree.Binary,
			Machine:   machine.CoriHaswell(),
			Backend:   trsv.PoolBackend{Pool: runtime.Pool{Timeout: 60 * time.Second}},
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 8
		bs := randomPanels(n, sys.A.N, 2, 13)
		xs := make([]*sparse.Panel, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := range bs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				xs[i], _, errs[i] = s.Solve(bs[i])
			}(i)
		}
		wg.Wait()
		for i := range bs {
			if errs[i] != nil {
				t.Fatalf("%v: concurrent pool solve %d: %v", algo, i, errs[i])
			}
			if r := s.Residual(xs[i], bs[i]); r > 1e-7 {
				t.Fatalf("%v: concurrent pool solve %d residual %g", algo, i, r)
			}
		}
	}
}

// TestRepeatedSolveDeterminism pins the acceptance criterion that DES
// results stay bit-identical across repeated solves of the same RHS on one
// Solver — pooled state must leave no residue between solves.
func TestRepeatedSolveDeterminism(t *testing.T) {
	sys := testSystem(t)
	for _, algo := range []trsv.Algorithm{trsv.Proposed3D, trsv.Baseline3D} {
		s, err := NewSolver(sys, Config{
			Layout:    grid.Layout{Px: 2, Py: 2, Pz: 4},
			Algorithm: algo,
			Trees:     ctree.Binary,
			Machine:   machine.CoriHaswell(),
		})
		if err != nil {
			t.Fatal(err)
		}
		b := randomPanels(1, sys.A.N, 2, 17)[0]
		x0, rep0, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			x, rep, err := s.Solve(b)
			if err != nil {
				t.Fatalf("%v: repeat %d: %v", algo, trial, err)
			}
			if !samePanel(x, x0) {
				t.Fatalf("%v: repeat %d solution differs bitwise", algo, trial)
			}
			if rep.Time != rep0.Time {
				t.Fatalf("%v: repeat %d time %g != %g", algo, trial, rep.Time, rep0.Time)
			}
			for r := range rep.Raw.Clocks {
				if rep.Raw.Clocks[r] != rep0.Raw.Clocks[r] {
					t.Fatalf("%v: repeat %d rank %d clock %g != %g",
						algo, trial, r, rep.Raw.Clocks[r], rep0.Raw.Clocks[r])
				}
			}
		}
	}
}

// TestSolveBatch checks the parallel multi-RHS entry point on both
// backends.
func TestSolveBatch(t *testing.T) {
	sys := testSystem(t)
	backends := map[string]trsv.Backend{
		"sim":  trsv.SimBackend{},
		"pool": trsv.PoolBackend{Pool: runtime.Pool{Timeout: 60 * time.Second}},
	}
	for name, back := range backends {
		s, err := NewSolver(sys, Config{
			Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
			Algorithm: trsv.Proposed3D,
			Trees:     ctree.Binary,
			Machine:   machine.CoriHaswell(),
			Backend:   back,
		})
		if err != nil {
			t.Fatal(err)
		}
		bs := randomPanels(6, sys.A.N, 1, 19)
		xs, reps, err := s.SolveBatch(bs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(xs) != len(bs) || len(reps) != len(bs) {
			t.Fatalf("%s: batch result lengths %d/%d", name, len(xs), len(reps))
		}
		for i := range bs {
			if r := s.Residual(xs[i], bs[i]); r > 1e-7 {
				t.Fatalf("%s: batch solve %d residual %g", name, i, r)
			}
			if reps[i] == nil || reps[i].Time <= 0 {
				t.Fatalf("%s: batch solve %d has no report", name, i)
			}
		}
	}
}

// TestSolveBatchError propagates the first failure without losing the
// successful entries.
func TestSolveBatchError(t *testing.T) {
	sys := testSystem(t)
	s, err := NewSolver(sys, Config{
		Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
		Algorithm: trsv.Proposed3D,
		Trees:     ctree.Binary,
		Machine:   machine.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	good := randomPanels(1, sys.A.N, 1, 23)[0]
	bad := sparse.NewPanel(3, 1) // wrong row count
	xs, _, err := s.SolveBatch([]*sparse.Panel{good, bad})
	if err == nil {
		t.Fatal("batch with malformed RHS succeeded")
	}
	if xs[0] == nil {
		t.Fatal("successful batch entry lost on sibling failure")
	}
	if xs[1] != nil {
		t.Fatal("failed batch entry produced a solution")
	}
}

// TestPhaseSpans pins the span computation against ranks with missing or
// out-of-order marks: such spans must come back NaN — "the rank never had
// this phase" — not a fake 0 or a negative number (mirroring
// runtime.Result.MarkSpan semantics).
func TestPhaseSpans(t *testing.T) {
	res := &runtime.Result{
		Clocks: []float64{6, 2, 0, 5},
		Timers: []runtime.Timers{
			{Marks: map[string]float64{trsv.MarkLDone: 1, trsv.MarkZDone: 3, trsv.MarkUDone: 6}},
			{Marks: map[string]float64{trsv.MarkLDone: 2}}, // never reached Z or U
			{}, // no marks at all
			{Marks: map[string]float64{trsv.MarkZDone: 1, trsv.MarkLDone: 4, trsv.MarkUDone: 5}}, // out of order
		},
	}
	l, z, u := phaseSpans(res)
	nan := math.NaN()
	wantL := []float64{1, 2, nan, 4}
	wantZ := []float64{2, nan, nan, nan}
	wantU := []float64{3, nan, nan, 4}
	eq := func(got, want float64) bool {
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	for i := range wantL {
		if !eq(l[i], wantL[i]) || !eq(z[i], wantZ[i]) || !eq(u[i], wantU[i]) {
			t.Fatalf("rank %d spans L=%g Z=%g U=%g, want L=%g Z=%g U=%g",
				i, l[i], z[i], u[i], wantL[i], wantZ[i], wantU[i])
		}
		if l[i] < 0 || z[i] < 0 || u[i] < 0 {
			t.Fatalf("rank %d has negative span", i)
		}
	}
}

// TestConcurrentTracedSolves runs simultaneous traced solves on one shared
// Solver under both backends; together with -race in scripts/check.sh this
// pins that the tracer's per-rank rings are written without data races and
// every concurrent solve gets its own complete trace.
func TestConcurrentTracedSolves(t *testing.T) {
	sys := testSystem(t)
	backends := map[string]trsv.Backend{
		"sim": trsv.SimBackend{Opts: runtime.Options{Trace: true}},
		"pool": trsv.PoolBackend{Pool: runtime.Pool{
			Timeout: 60 * time.Second,
			Opts:    runtime.Options{Trace: true},
		}},
	}
	for name, back := range backends {
		s, err := NewSolver(sys, Config{
			Layout:    grid.Layout{Px: 2, Py: 2, Pz: 2},
			Algorithm: trsv.Proposed3D,
			Trees:     ctree.Binary,
			Machine:   machine.CoriHaswell(),
			Backend:   back,
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 6
		bs := randomPanels(n, sys.A.N, 1, 29)
		reps := make([]*Report, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := range bs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, reps[i], errs[i] = s.Solve(bs[i])
			}(i)
		}
		wg.Wait()
		for i := range bs {
			if errs[i] != nil {
				t.Fatalf("%s: traced solve %d: %v", name, i, errs[i])
			}
			tr := reps[i].Raw.Trace
			if tr == nil || tr.Events() == 0 {
				t.Fatalf("%s: traced solve %d produced no trace", name, i)
			}
			if !tr.Complete() {
				t.Fatalf("%s: traced solve %d dropped events", name, i)
			}
		}
	}
}
