package core

import (
	"fmt"

	"sptrsv/internal/metrics"
	"sptrsv/internal/trsv"
)

// Core-layer metrics: one histogram observation per solve, published after
// the result is in hand, plus buffer-pool and batch accounting. Labels
// follow the tuner's cache-key vocabulary — algorithm, backend, machine
// name, matrix fingerprint — so a scrape distinguishes workloads the same
// way the autotuner does.
var (
	mSolveSeconds = metrics.Default().Histogram("sptrsv_core_solve_seconds",
		"Solve makespan per completed solve: virtual seconds under the des backend, wall seconds under pool.",
		nil, "algorithm", "backend", "machine", "matrix")
	mResidual = metrics.Default().Gauge("sptrsv_core_residual",
		"Most recent ‖A·x − b‖∞ computed by Solver.Residual.", "algorithm", "machine", "matrix")
	mBatchPanels = metrics.Default().Counter("sptrsv_core_batch_panels",
		"SolveBatch panels by outcome.", "status")
	mBufPool = metrics.Default().Counter("sptrsv_core_solve_buffers",
		"Per-solve permutation-buffer pool traffic: hit (recycled, right shape), resize (recycled, reallocated), miss (newly allocated).", "outcome")
	mRefinePasses = metrics.Default().Counter("sptrsv_refine_passes",
		"Iterative-refinement passes run after elastic solves; zero-pass elastic solves (already within tolerance) add nothing.",
		"algorithm", "machine", "matrix")
	mRefinedResidual = metrics.Default().Gauge("sptrsv_core_refined_residual",
		"Verified ‖b − A·x‖∞ of the most recent elastic solve after refinement.",
		"algorithm", "machine", "matrix")
)

// Fingerprint identifies the factored matrix for metric labels and bench
// records: dimension, factor fill, supernode count, and recorded tree
// depth — the same structural identity the tuner's cache key uses.
func (s *System) Fingerprint() string {
	return fmt.Sprintf("n=%d nnzlu=%d sn=%d depth=%d",
		s.A.N, s.NNZFactors(), s.SN.SnCount, s.Tree.Depth)
}

// backendName names the configured backend for the backend label.
func backendName(b trsv.Backend) string {
	switch b.(type) {
	case trsv.SimBackend:
		return "des"
	case trsv.PoolBackend:
		return "pool"
	}
	return "custom"
}
