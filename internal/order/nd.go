// Package order computes fill-reducing nested-dissection orderings and the
// binary separator tree that the 3D SpTRSV process layout is built on.
//
// The paper uses METIS nested dissection and assumes the top log2(Pz)
// levels of the elimination tree form a binary subtree. This package plays
// the METIS role: it recursively bisects the adjacency graph with BFS
// vertex separators, records a *complete* binary tree of the top maxDepth
// levels (empty nodes allowed, so the Pz→subtree mapping is always total),
// and keeps dissecting below the recorded levels purely to reduce fill.
package order

import (
	"fmt"

	"sptrsv/internal/sparse"
)

// Node is one node of the separator tree in heap order (root = 0, children
// of i are 2i+1 and 2i+2). Column indices refer to the permuted matrix.
//
// A node's separator columns occupy [Begin, End). Its entire subtree —
// both children plus the separator — occupies the contiguous range
// [SubBegin, End), a consequence of the post-order numbering (left subtree,
// right subtree, separator).
type Node struct {
	Begin, End int // separator columns (leaf nodes: the whole bucket)
	SubBegin   int // start of the subtree's contiguous column range
}

// Cols returns the number of separator columns owned by the node.
func (nd Node) Cols() int { return nd.End - nd.Begin }

// Tree is a nested-dissection separator tree over a permuted matrix.
type Tree struct {
	Depth int    // recorded levels; leaves live at level Depth
	N     int    // matrix dimension
	Perm  []int  // old index -> new index (scatter)
	Nodes []Node // complete binary tree, len 2^(Depth+1)-1, heap order
}

// NumLeaves returns 2^Depth, the maximum Pz this tree supports.
func (t *Tree) NumLeaves() int { return 1 << t.Depth }

// LeafIndex returns the heap index of leaf z at the deepest level.
func (t *Tree) LeafIndex(z int) int { return (1 << t.Depth) - 1 + z }

// Ancestors returns the heap indices on the path from node i (exclusive)
// up to the root (inclusive), bottom-up.
func (t *Tree) Ancestors(i int) []int {
	var out []int
	for i > 0 {
		i = (i - 1) / 2
		out = append(out, i)
	}
	return out
}

// Level returns the level of heap node i (root = 0).
func Level(i int) int {
	l := 0
	for i > 0 {
		i = (i - 1) / 2
		l++
	}
	return l
}

// minLeaf is the subset size below which recursion stops: dissecting tiny
// pieces no longer reduces fill and only fragments supernodes.
const minLeaf = 24

// NestedDissection orders the symmetric pattern of a and records the top
// maxDepth separator levels. maxDepth must satisfy 0 ≤ maxDepth ≤ 20.
func NestedDissection(a *sparse.CSR, maxDepth int) *Tree {
	if maxDepth < 0 || maxDepth > 20 {
		panic(fmt.Sprintf("order: bad maxDepth %d", maxDepth))
	}
	n := a.N
	t := &Tree{
		Depth: maxDepth,
		N:     n,
		Perm:  make([]int, n),
		Nodes: make([]Node, (1<<(maxDepth+1))-1),
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	d := &dissector{a: a, t: t}
	d.recurse(all, 0, 0, 0)
	if d.next != n {
		panic("order: ordering did not cover all columns")
	}
	return t
}

type dissector struct {
	a    *sparse.CSR
	t    *Tree
	next int // next new index to assign
}

// recurse orders the vertex subset. heapIdx is the tree node receiving the
// separator when depth ≤ t.Depth; below the recorded depth heapIdx is -1
// and the recursion only refines the ordering.
func (d *dissector) recurse(verts []int, depth, heapIdx, _ int) {
	recorded := heapIdx >= 0 && depth <= d.t.Depth
	atRecordedLeaf := recorded && depth == d.t.Depth
	subBegin := d.next

	switch {
	case atRecordedLeaf:
		// The node owns its whole remaining subtree; keep dissecting
		// below purely for fill, without recording nodes.
		d.orderForFill(verts)
		d.t.Nodes[heapIdx] = Node{Begin: subBegin, End: d.next, SubBegin: subBegin}
	case recorded:
		left, right, sep := d.split(verts)
		d.recurse(left, depth+1, 2*heapIdx+1, 0)
		d.recurse(right, depth+1, 2*heapIdx+2, 0)
		sepBegin := d.next
		d.assign(sep)
		d.t.Nodes[heapIdx] = Node{Begin: sepBegin, End: d.next, SubBegin: subBegin}
	default:
		d.orderForFill(verts)
	}
}

// orderForFill recursively bisects without recording tree nodes.
func (d *dissector) orderForFill(verts []int) {
	if len(verts) <= minLeaf {
		d.assign(verts)
		return
	}
	left, right, sep := d.split(verts)
	d.orderForFill(left)
	d.orderForFill(right)
	d.assign(sep)
}

// assign gives the vertices the next consecutive new indices.
func (d *dissector) assign(verts []int) {
	for _, v := range verts {
		d.t.Perm[v] = d.next
		d.next++
	}
}

// split partitions verts into (left, right, separator) such that no edge of
// the subgraph runs between left and right. It BFS-orders the subset
// (restarting across components), cuts at the midpoint, and moves every
// first-half vertex with a second-half neighbor into the separator.
func (d *dissector) split(verts []int) (left, right, sep []int) {
	if len(verts) <= 2 {
		return nil, nil, verts
	}
	in := make(map[int]int, len(verts)) // vertex -> position in bfs order, -1 if pending
	for _, v := range verts {
		in[v] = -1
	}
	bfs := make([]int, 0, len(verts))
	for _, start := range verts {
		if in[start] >= 0 {
			continue
		}
		in[start] = len(bfs)
		bfs = append(bfs, start)
		for q := len(bfs) - 1; q < len(bfs); q++ {
			cols, _ := d.a.Row(bfs[q])
			for _, c := range cols {
				if pos, ok := in[c]; ok && pos < 0 {
					in[c] = len(bfs)
					bfs = append(bfs, c)
				}
			}
		}
	}
	half := len(bfs) / 2
	inFirst := func(v int) bool { return in[v] < half }
	for _, v := range bfs[:half] {
		cols, _ := d.a.Row(v)
		boundary := false
		for _, c := range cols {
			if _, ok := in[c]; ok && !inFirst(c) {
				boundary = true
				break
			}
		}
		if boundary {
			sep = append(sep, v)
		} else {
			left = append(left, v)
		}
	}
	right = append(right, bfs[half:]...)
	return left, right, sep
}

// CheckTree validates structural invariants of the tree against the
// permuted pattern; tests and the distribution layer call it.
func (t *Tree) CheckTree(aPerm *sparse.CSR) error {
	if len(t.Nodes) != (1<<(t.Depth+1))-1 {
		return fmt.Errorf("order: node count %d for depth %d", len(t.Nodes), t.Depth)
	}
	root := t.Nodes[0]
	if root.SubBegin != 0 || root.End != t.N {
		return fmt.Errorf("order: root range [%d,%d) does not cover n=%d", root.SubBegin, root.End, t.N)
	}
	for i, nd := range t.Nodes {
		if nd.Begin > nd.End || nd.SubBegin > nd.Begin {
			return fmt.Errorf("order: node %d malformed range %+v", i, nd)
		}
		if Level(i) < t.Depth {
			l, r := t.Nodes[2*i+1], t.Nodes[2*i+2]
			if l.SubBegin != nd.SubBegin || r.SubBegin != l.End || nd.Begin != r.End {
				return fmt.Errorf("order: node %d children ranges do not tile %+v %+v %+v", i, nd, l, r)
			}
		}
	}
	// Separator property: no entry of the permuted matrix may connect the
	// left and right subtree ranges of any recorded node.
	for i := range t.Nodes {
		if Level(i) >= t.Depth {
			continue
		}
		l, r := t.Nodes[2*i+1], t.Nodes[2*i+2]
		for row := l.SubBegin; row < l.End; row++ {
			cols, _ := aPerm.Row(row)
			for _, c := range cols {
				if c >= r.SubBegin && c < r.End {
					return fmt.Errorf("order: edge (%d,%d) crosses separator of node %d", row, c, i)
				}
			}
		}
	}
	return nil
}
