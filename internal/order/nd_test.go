package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptrsv/internal/gen"
	"sptrsv/internal/sparse"
)

func TestPermIsPermutation(t *testing.T) {
	a := gen.S2D9pt(20, 20, 1)
	tr := NestedDissection(a, 3)
	seen := make([]bool, a.N)
	for _, p := range tr.Perm {
		if p < 0 || p >= a.N || seen[p] {
			t.Fatalf("perm not a permutation at %d", p)
		}
		seen[p] = true
	}
}

func TestTreeInvariantsGrid(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3, 4} {
		a := gen.S2D9pt(24, 24, 2)
		tr := NestedDissection(a, depth)
		if err := tr.CheckTree(a.Permute(tr.Perm)); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if tr.NumLeaves() != 1<<depth {
			t.Fatalf("depth %d: leaves %d", depth, tr.NumLeaves())
		}
	}
}

func TestTreeInvariantsSuite(t *testing.T) {
	for _, m := range gen.Suite(gen.Small) {
		tr := NestedDissection(m.A, 3)
		if err := tr.CheckTree(m.A.Permute(tr.Perm)); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestTreeInvariantsRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		a := gen.RandomDD(rng, n, 0.08)
		depth := rng.Intn(4)
		tr := NestedDissection(a, depth)
		return tr.CheckTree(a.Permute(tr.Perm)) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorBalanced(t *testing.T) {
	a := gen.S2D9pt(32, 32, 3)
	tr := NestedDissection(a, 1)
	l, r := tr.Nodes[1], tr.Nodes[2]
	ln, rn := l.End-l.SubBegin, r.End-r.SubBegin
	if ln < a.N/4 || rn < a.N/4 {
		t.Fatalf("unbalanced split: %d vs %d of %d", ln, rn, a.N)
	}
	sep := tr.Nodes[0].Cols()
	if sep > a.N/4 {
		t.Fatalf("separator too large: %d of %d", sep, a.N)
	}
}

func TestSeparatorSizeScales2D(t *testing.T) {
	// For a 2D grid the top separator should be O(√n), not O(n).
	a := gen.S2D9pt(48, 48, 4)
	tr := NestedDissection(a, 1)
	if sep := tr.Nodes[0].Cols(); sep > 8*48 {
		t.Fatalf("2D separator %d too large for 48×48 grid", sep)
	}
}

func TestAncestorsAndLevel(t *testing.T) {
	a := gen.S2D9pt(16, 16, 5)
	tr := NestedDissection(a, 3)
	anc := tr.Ancestors(tr.LeafIndex(5)) // leaf 5 at depth 3 → heap 12
	want := []int{5, 2, 0}
	if len(anc) != len(want) {
		t.Fatalf("ancestors = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("ancestors = %v, want %v", anc, want)
		}
	}
	if Level(0) != 0 || Level(2) != 1 || Level(12) != 3 {
		t.Fatal("Level wrong")
	}
}

func TestDepthZeroSingleNode(t *testing.T) {
	a := gen.S2D9pt(10, 10, 6)
	tr := NestedDissection(a, 0)
	if len(tr.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(tr.Nodes))
	}
	nd := tr.Nodes[0]
	if nd.SubBegin != 0 || nd.Begin != 0 || nd.End != a.N {
		t.Fatalf("root node %+v", nd)
	}
}

func TestFillReductionVsNatural(t *testing.T) {
	// ND ordering should produce less fill than the natural ordering on a
	// 2D grid; a sanity check that the ordering is doing real work. Fill
	// is estimated via symbolic elimination on the permuted pattern.
	a := gen.S2D9pt(24, 24, 7)
	tr := NestedDissection(a, 3)
	natural := symbolicFillCount(a)
	nd := symbolicFillCount(a.Permute(tr.Perm))
	if nd >= natural {
		t.Fatalf("ND fill %d not better than natural %d", nd, natural)
	}
}

// symbolicFillCount runs a simple symbolic elimination and returns nnz(L).
func symbolicFillCount(a *sparse.CSR) int {
	n := a.N
	// rows[j] = current pattern of column j below diagonal, as a set.
	cols := make([]map[int]bool, n)
	for j := 0; j < n; j++ {
		cols[j] = map[int]bool{}
	}
	for r := 0; r < n; r++ {
		cs, _ := a.Row(r)
		for _, c := range cs {
			if r > c {
				cols[c][r] = true
			}
		}
	}
	total := n
	for j := 0; j < n; j++ {
		total += len(cols[j])
		// Propagate to the parent (minimum row index in the column).
		min := -1
		for r := range cols[j] {
			if min < 0 || r < min {
				min = r
			}
		}
		if min >= 0 {
			for r := range cols[j] {
				if r != min {
					cols[min][r] = true
				}
			}
		}
	}
	return total
}
