// Elastic chaos sweep: the same fault plans as the strict harness, plus the
// network-straggler plan elasticity exists for, run in elastic mode. The
// contract tightens rather than loosens — every success must carry a
// refinement-verified residual, crashes must still be diagnosed, and the
// DES runs must stay bit-deterministic even while deadlines force progress.
package fault_test

import (
	"math/rand"
	"testing"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

// elasticChaosConfigs is the strict chaos matrix switched to elastic mode at
// a staleness bound tight enough that the straggler plans actually force
// stale reads (the chaos system is ~30 levels deep).
func elasticChaosConfigs() []chaosConfig {
	out := chaosConfigs()
	for i := range out {
		out[i].cfg.Mode = trsv.ModeElastic
		out[i].cfg.Staleness = 8
	}
	return out
}

// elasticChaosPlans extends the strict plan sweep with a network straggler:
// every message rank 0 sends is delivered `delay` late. Under strict mode
// that plan serializes the receivers on each late hop; under elastic mode
// the receivers hit their staleness deadlines, force progress, and
// refinement repairs the stale reads.
func elasticChaosPlans(seed int64, jitter, delay float64) map[string]*fault.Plan {
	plans := chaosPlans(seed, jitter)
	plans["net-delay"] = &fault.Plan{Seed: seed, NetDelay: map[int]float64{0: delay}}
	return plans
}

// checkElasticOutcome layers the elastic contract on top of checkOutcome: a
// successful elastic solve is not merely residual-checked after the fact —
// the refinement loop must itself have verified it against the (default)
// tolerance, and the report must say so.
func checkElasticOutcome(t *testing.T, s *core.Solver, b, x *sparse.Panel, rep *core.Report, err error) {
	t.Helper()
	checkOutcome(t, s, b, x, err)
	if err == nil && !(rep.Residual <= 1e-8) {
		t.Fatalf("elastic success but reported refined residual %g above default tolerance", rep.Residual)
	}
}

func TestChaosElasticSimBackend(t *testing.T) {
	sys := chaosSystem(t)
	for _, cc := range elasticChaosConfigs() {
		for _, seed := range []int64{1, 2, 3} {
			for name, plan := range elasticChaosPlans(seed, 1e-4, 5e-3) {
				cfg := cc.cfg
				cfg.Faults = plan
				s, err := core.NewSolver(sys, cfg)
				if err != nil {
					t.Fatalf("%s/%s: %v", cc.name, name, err)
				}
				b := chaosRHS(sys, seed)
				x, rep, err := s.Solve(b)
				if rep != nil {
					t.Logf("%s/%s/seed=%d: err=%v stale=%d refine=%d",
						cc.name, name, seed, err, rep.StaleSupernodes, rep.RefinePasses)
				}
				checkElasticOutcome(t, s, b, x, rep, err)
				// Everything short of losing state must now succeed: the
				// straggler plans are exactly what elasticity absorbs.
				if name != "drop" && name != "crash" && err != nil {
					t.Fatalf("%s/%s/seed=%d: recoverable plan failed under elastic: %v", cc.name, name, seed, err)
				}
				// A dead rank loses state no refinement pass can rebuild.
				if name == "crash" && err == nil {
					t.Fatalf("%s/%s/seed=%d: crash plan reported success", cc.name, name, seed)
				}
				// Dropped messages may go either way: a deadline can force
				// past the hole and refinement repair it (success), or the
				// strict prelude of the run can still diagnose the loss
				// (typed fault). checkElasticOutcome already accepted both.
			}
		}
	}
}

// TestChaosElasticDeterminism pins that forcing does not break the DES
// guarantee: two same-seed elastic runs under a straggler severe enough to
// trigger stale reads produce bit-identical solutions, clocks, and tallies.
func TestChaosElasticDeterminism(t *testing.T) {
	sys := chaosSystem(t)
	for _, cc := range elasticChaosConfigs() {
		cfg := cc.cfg
		cfg.Faults = &fault.Plan{Seed: 7, Jitter: 1e-4, NetDelay: map[int]float64{0: 5e-3}}
		s, err := core.NewSolver(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := chaosRHS(sys, 7)
		xa, repA, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		xb, repB, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		if repA.StaleSupernodes == 0 {
			t.Fatalf("%s: straggler plan forced nothing — determinism test is vacuous", cc.name)
		}
		if repA.StaleSupernodes != repB.StaleSupernodes || repA.RefinePasses != repB.RefinePasses {
			t.Fatalf("%s: stale=%d/%d refine=%d/%d across same-seed runs",
				cc.name, repA.StaleSupernodes, repB.StaleSupernodes, repA.RefinePasses, repB.RefinePasses)
		}
		for i := range repA.Raw.Clocks {
			if repA.Raw.Clocks[i] != repB.Raw.Clocks[i] {
				t.Fatalf("%s: rank %d clock %g vs %g — forced elastic run not bit-deterministic",
					cc.name, i, repA.Raw.Clocks[i], repB.Raw.Clocks[i])
			}
		}
		for i := range xa.Data {
			if xa.Data[i] != xb.Data[i] {
				t.Fatalf("%s: x[%d] %g vs %g — refined solution not bit-deterministic",
					cc.name, i, xa.Data[i], xb.Data[i])
			}
		}
	}
}

func TestChaosElasticPoolBackend(t *testing.T) {
	sys := chaosSystem(t)
	const stall = 250 * time.Millisecond
	for _, cc := range elasticChaosConfigs() {
		if !cc.cpu {
			continue // GPU algorithms are simulation-only
		}
		// The pool backend sleeps injected delays in wall time, so keep the
		// straggler small; jitter matches the strict pool sweep.
		for name, plan := range elasticChaosPlans(1, 0.002, 0.002) {
			cfg := cc.cfg
			cfg.Backend = trsv.PoolBackend{Pool: runtime.Pool{
				Timeout: 30 * time.Second,
				Opts:    runtime.Options{Faults: plan, StallTimeout: stall},
			}}
			s, err := core.NewSolver(sys, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", cc.name, name, err)
			}
			b := chaosRHS(sys, 1)
			x, rep, err := s.Solve(b)
			if rep != nil {
				t.Logf("%s/%s: err=%v stale=%d refine=%d", cc.name, name, err, rep.StaleSupernodes, rep.RefinePasses)
			}
			checkElasticOutcome(t, s, b, x, rep, err)
			if name != "drop" && name != "crash" && err != nil {
				t.Fatalf("%s/%s: recoverable plan failed on elastic pool: %v", cc.name, name, err)
			}
			if name == "crash" && err == nil {
				t.Fatalf("%s/%s: crash plan reported success on elastic pool", cc.name, name)
			}
		}
	}
}

// TestElasticRefinementContract is the property test over random straggler
// plans: for random ranks and delay magnitudes spanning decades, an elastic
// solve either returns a solution whose refinement loop verified the
// residual against the tolerance, or a typed fault — across all four
// algorithms on the DES, and the CPU algorithms on the pool.
func TestElasticRefinementContract(t *testing.T) {
	sys := chaosSystem(t)
	rng := rand.New(rand.NewSource(41))
	for _, cc := range elasticChaosConfigs() {
		p := cc.cfg.Layout.Size()
		for trial := 0; trial < 4; trial++ {
			rank := rng.Intn(p)
			delay := 1e-4 * pow10(rng.Intn(3)) * (1 + rng.Float64()) // 1e-4 .. 2e-2 virtual s
			plan := &fault.Plan{Seed: int64(trial + 1), NetDelay: map[int]float64{rank: delay}}

			cfg := cc.cfg
			cfg.Faults = plan
			s, err := core.NewSolver(sys, cfg)
			if err != nil {
				t.Fatalf("%s: %v", cc.name, err)
			}
			b := chaosRHS(sys, int64(trial))
			x, rep, err := s.Solve(b)
			t.Logf("%s: rank=%d delay=%.2gms err=%v stale=%d refine=%d",
				cc.name, rank, delay*1e3, err, rep.StaleSupernodes, rep.RefinePasses)
			checkElasticOutcome(t, s, b, x, rep, err)
			if err != nil {
				t.Fatalf("%s: straggler rank=%d delay=%g must be recoverable: %v", cc.name, rank, delay, err)
			}

			if !cc.cpu {
				continue
			}
			// Same plan through the goroutine pool (real wall-clock delays,
			// so scale the virtual delay down to keep the test fast).
			pcfg := cc.cfg
			pcfg.Faults = &fault.Plan{Seed: int64(trial + 1), NetDelay: map[int]float64{rank: delay / 10}}
			pcfg.Backend = trsv.PoolBackend{Pool: runtime.Pool{
				Timeout: 30 * time.Second,
				Opts:    runtime.Options{Faults: pcfg.Faults, StallTimeout: 250 * time.Millisecond},
			}}
			ps, err := core.NewSolver(sys, pcfg)
			if err != nil {
				t.Fatalf("%s/pool: %v", cc.name, err)
			}
			px, prep, err := ps.Solve(b)
			if prep != nil {
				t.Logf("%s/pool: err=%v stale=%d refine=%d", cc.name, err, prep.StaleSupernodes, prep.RefinePasses)
			}
			checkElasticOutcome(t, ps, b, px, prep, err)
			if err != nil {
				t.Fatalf("%s/pool: straggler must be recoverable: %v", cc.name, err)
			}
		}
	}
}

func pow10(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}
