package fault

import (
	"errors"
	"fmt"
	"time"
)

// Error is the marker interface of the typed fault taxonomy. Every failure
// the solver can hit at run time — stalls, crashes, recovered panics,
// protocol violations, non-finite numbers — implements it, so callers can
// separate "the solve failed in a diagnosed way" from plain usage errors
// (bad shapes, invalid configs) with IsFault.
type Error interface {
	error
	faultError()
}

// IsFault reports whether err is (or wraps) a typed fault error.
func IsFault(err error) bool {
	var fe Error
	return errors.As(err, &fe)
}

// StallError reports a rank that stopped making progress: under the Pool
// backend the stall watchdog fired (Waited ≥ Deadline with the rank blocked
// in a receive); under the DES Engine the event queue drained while the
// rank still expected messages (Virtual is true — a virtual-time deadlock
// has no waiting duration).
type StallError struct {
	Rank int // the stuck rank
	Peer int // expected sender, -1 when unknown
	Tag  int // expected message tag, -1 when unknown
	// Waited is how long the rank had been blocked when the watchdog
	// fired; Deadline is the configured runtime.Options.StallTimeout.
	// Both are zero for virtual-time deadlocks.
	Waited   time.Duration
	Deadline time.Duration
	// State is the handler's self-description of what it was waiting for
	// (see runtime.WaitStater), "" when the handler offers none.
	State string
	// Done and Total are the stuck rank's solve progress — supernode
	// diagonal solves completed across both sweeps versus the rank's total
	// (see runtime.Progresser) — distinguishing a true deadlock (progress
	// frozen near zero) from slow-but-live progress. Both are zero when
	// the handler reports none.
	Done, Total int
	// Virtual distinguishes a DES quiescence deadlock from a Pool
	// watchdog abort.
	Virtual bool
}

func (e *StallError) faultError() {}

func (e *StallError) Error() string {
	expect := ""
	if e.Peer >= 0 {
		expect = fmt.Sprintf(" (expected tag %d from rank %d)", e.Tag, e.Peer)
	}
	state := ""
	if e.State != "" {
		state = "; state: " + e.State
	}
	prog := ""
	if e.Total > 0 {
		prog = fmt.Sprintf("; progress %d/%d supernode solves", e.Done, e.Total)
	}
	if e.Virtual {
		return fmt.Sprintf("fault: deadlock — rank %d expects more messages at quiescence%s%s%s",
			e.Rank, expect, state, prog)
	}
	return fmt.Sprintf("fault: stall — rank %d made no progress for %v (watchdog deadline %v)%s%s%s",
		e.Rank, e.Waited.Round(time.Millisecond), e.Deadline, expect, state, prog)
}

// CrashError reports that an injected rank crash prevented the solve from
// completing.
type CrashError struct {
	Rank int
	At   float64 // seconds since run start (virtual or wall)
}

func (e *CrashError) faultError() {}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: rank %d crashed at t=%.3gs (injected)", e.Rank, e.At)
}

// PanicError is a panic recovered inside a rank body, carrying the rank,
// the original panic value, and the stack captured at the recovery point.
type PanicError struct {
	Rank  int
	Value any
	Stack []byte
}

func (e *PanicError) faultError() {}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: rank %d panicked: %v", e.Rank, e.Value)
}

// ProtocolError reports a violated runtime or algorithm invariant — an
// unexpected tag, a message for an out-of-range rank, a capability the
// backend lacks. These are raised as panics at the violation site (so the
// stack points there) and converted by the rank recover into the solve's
// error return.
type ProtocolError struct {
	Rank  int    // offending rank, -1 when filled in by recovery
	Tag   int    // offending message tag, 0 when not message-related
	Phase string // algorithm phase ("L-solve", "allreduce", ...), "" when unknown
	Msg   string
}

func (e *ProtocolError) faultError() {}

func (e *ProtocolError) Error() string {
	s := fmt.Sprintf("fault: protocol violation — rank %d: %s", e.Rank, e.Msg)
	switch {
	case e.Tag > 0 && e.Phase != "":
		s += fmt.Sprintf(" (tag %d, phase %s)", e.Tag, e.Phase)
	case e.Tag > 0:
		s += fmt.Sprintf(" (tag %d)", e.Tag)
	case e.Phase != "":
		s += fmt.Sprintf(" (phase %s)", e.Phase)
	}
	return s
}

// NumericalError reports a failure of the solver's numerical guards: a
// non-finite value in the right-hand side before the solve (Stage "rhs")
// or in the solution on exit (Stage "solution"), or an elastic-mode solve
// whose iterative refinement could not pull the residual below the
// configured tolerance within the pass budget (Stage "refinement").
type NumericalError struct {
	Stage    string  // "rhs", "solution", or "refinement"
	Row, Col int     // first offending entry (row in the caller's ordering)
	Value    float64 // the offending value (NaN or ±Inf)
	// Sn is the supernode whose diagonal solve produced the row and Rank
	// the in-grid diagonal rank that computed it; both are -1 for the RHS
	// stage, where the bad value came from the caller.
	Sn   int
	Rank int
	// Refinement-stage diagnostics: the final residual inf-norm after
	// Passes refinement passes against tolerance Tol.
	Residual, Tol float64
	Passes        int
}

func (e *NumericalError) faultError() {}

func (e *NumericalError) Error() string {
	if e.Stage == "refinement" {
		return fmt.Sprintf("fault: refinement did not converge — residual %.3g > tol %.3g after %d passes",
			e.Residual, e.Tol, e.Passes)
	}
	s := fmt.Sprintf("fault: non-finite value %v in %s at row %d, column %d",
		e.Value, e.Stage, e.Row, e.Col)
	if e.Sn >= 0 {
		s += fmt.Sprintf(" (supernode %d, diag rank %d)", e.Sn, e.Rank)
	}
	return s
}

// FromPanic converts a value recovered from a rank-body panic into a typed
// fault error. Already-typed fault errors pass through unchanged (a
// ProtocolError raised without a rank gets it filled in); anything else
// becomes a PanicError carrying the stack.
func FromPanic(rank int, rec any, stack []byte) error {
	if fe, ok := rec.(Error); ok {
		if pe, ok := fe.(*ProtocolError); ok && pe.Rank < 0 {
			pe.Rank = rank
		}
		return fe
	}
	return &PanicError{Rank: rank, Value: rec, Stack: stack}
}
