// Chaos harness: sweeps fault plans × seeds × algorithms × backends and
// asserts the solver's robustness contract — a solve under injected faults
// either returns a residual-verified solution or a typed fault error; it
// never crashes the process and never hangs past the watchdog.
package fault_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func chaosSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.Factorize(gen.S2D9pt(24, 24, 31), core.FactorOptions{TreeDepth: 3, MaxSupernode: 8})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func chaosRHS(sys *core.System, seed int64) *sparse.Panel {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewPanel(sys.A.N, 1)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return b
}

type chaosConfig struct {
	name string
	cfg  core.Config
	cpu  bool // runnable on the goroutine pool backend
}

func chaosConfigs() []chaosConfig {
	base := []chaosConfig{
		{"proposed-3d", core.Config{
			Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.Proposed3D,
			Trees: ctree.Binary, Machine: machine.CoriHaswell(),
		}, true},
		{"baseline-3d", core.Config{
			Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.Baseline3D,
			Trees: ctree.Binary, Machine: machine.CoriHaswell(),
		}, true},
		{"gpu-single", core.Config{
			Layout: grid.Layout{Px: 1, Py: 1, Pz: 4}, Algorithm: trsv.GPUSingle,
			Machine: machine.PerlmutterGPU(),
		}, false},
		{"gpu-multi", core.Config{
			Layout: grid.Layout{Px: 2, Py: 1, Pz: 2}, Algorithm: trsv.GPUMulti,
			Machine: machine.PerlmutterGPU(),
		}, false},
	}
	// Sweep both execution engines: the zero value resolves to the
	// scheduled engine, and the handler oracle must stay equally robust
	// under the same fault plans.
	out := make([]chaosConfig, 0, 2*len(base))
	for _, cc := range base {
		out = append(out, cc)
		h := cc
		h.name += "/handler"
		h.cfg.Exec = trsv.ExecHandler
		out = append(out, h)
	}
	return out
}

// chaosPlans returns the fault plans of the sweep, parameterized by seed.
// The jitter magnitude differs per backend: virtual seconds on the DES are
// commensurate with modeled network latencies; wall seconds on the pool
// must stay small to keep the test fast.
func chaosPlans(seed int64, jitter float64) map[string]*fault.Plan {
	return map[string]*fault.Plan{
		"healthy":   nil,
		"straggler": {Seed: seed, Straggler: map[int]float64{0: 3}},
		"jitter":    {Seed: seed, Jitter: jitter},
		"drop":      {Seed: seed, Drops: []fault.DropRule{{Src: fault.Wildcard, Dst: fault.Wildcard, Tag: fault.Wildcard, Count: 1}}},
		"crash":     {Seed: seed, Crash: map[int]float64{1: 0}},
	}
}

// checkOutcome enforces the chaos contract on one solve result.
func checkOutcome(t *testing.T, s *core.Solver, b, x *sparse.Panel, err error) {
	t.Helper()
	if err == nil {
		if r := s.Residual(x, b); !(r <= 1e-6) {
			t.Fatalf("fault-free outcome but residual %g", r)
		}
		return
	}
	if !fault.IsFault(err) {
		t.Fatalf("failure is not a typed fault error: %v", err)
	}
}

func TestChaosSimBackend(t *testing.T) {
	sys := chaosSystem(t)
	for _, cc := range chaosConfigs() {
		for _, seed := range []int64{1, 2, 3} {
			for name, plan := range chaosPlans(seed, 1e-4) {
				cfg := cc.cfg
				cfg.Faults = plan
				s, err := core.NewSolver(sys, cfg)
				if err != nil {
					t.Fatalf("%s/%s: %v", cc.name, name, err)
				}
				b := chaosRHS(sys, seed)
				x, _, err := s.Solve(b)
				t.Logf("%s/%s/seed=%d: err=%v", cc.name, name, seed, err)
				checkOutcome(t, s, b, x, err)
				// Benign perturbations must not break the solve.
				if (name == "healthy" || name == "straggler" || name == "jitter") && err != nil {
					t.Fatalf("%s/%s/seed=%d: benign plan failed: %v", cc.name, name, seed, err)
				}
				// Lost messages and dead ranks must be diagnosed, not
				// silently absorbed.
				if (name == "drop" || name == "crash") && err == nil {
					t.Fatalf("%s/%s/seed=%d: %s plan reported success", cc.name, name, seed, name)
				}
			}
		}
	}
}

// TestChaosDeterminism pins the DES guarantee: two runs of one fault plan
// produce bit-identical per-rank clocks, because every PRNG draw happens in
// global event order on the single simulation thread.
func TestChaosDeterminism(t *testing.T) {
	sys := chaosSystem(t)
	for _, cc := range chaosConfigs() {
		plan := &fault.Plan{Seed: 7, Jitter: 1e-4, Straggler: map[int]float64{0: 2}}
		cfg := cc.cfg
		cfg.Faults = plan
		s, err := core.NewSolver(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := chaosRHS(sys, 7)
		_, repA, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		_, repB, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		for i := range repA.Raw.Clocks {
			if repA.Raw.Clocks[i] != repB.Raw.Clocks[i] {
				t.Fatalf("%s: rank %d clock %g vs %g — injected run not bit-deterministic",
					cc.name, i, repA.Raw.Clocks[i], repB.Raw.Clocks[i])
			}
		}
	}
}

func TestChaosPoolBackend(t *testing.T) {
	sys := chaosSystem(t)
	const stall = 250 * time.Millisecond
	for _, cc := range chaosConfigs() {
		if !cc.cpu {
			continue // GPU algorithms are simulation-only
		}
		for name, plan := range chaosPlans(1, 0.002) {
			cfg := cc.cfg
			cfg.Backend = trsv.PoolBackend{Pool: runtime.Pool{
				Timeout: 30 * time.Second,
				Opts:    runtime.Options{Faults: plan, StallTimeout: stall},
			}}
			s, err := core.NewSolver(sys, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", cc.name, name, err)
			}
			b := chaosRHS(sys, 1)
			start := time.Now()
			x, _, err := s.Solve(b)
			elapsed := time.Since(start)
			t.Logf("%s/%s: err=%v (%v)", cc.name, name, err, elapsed)
			checkOutcome(t, s, b, x, err)
			if (name == "healthy" || name == "straggler" || name == "jitter") && err != nil {
				t.Fatalf("%s/%s: benign plan failed on pool: %v", cc.name, name, err)
			}
			if (name == "drop" || name == "crash") && err == nil {
				t.Fatalf("%s/%s: %s plan reported success on pool", cc.name, name, name)
			}
			// The watchdog, not the coarse pool timeout, must catch stalls:
			// even the deadlocking plans resolve within a small multiple of
			// the stall deadline.
			if elapsed > 20*stall {
				t.Fatalf("%s/%s: solve took %v, watchdog (deadline %v) should have fired sooner",
					cc.name, name, elapsed, stall)
			}
		}
	}
}

// TestChaosSolverReusableAfterFault pins satellite (c): a Solver that just
// returned a fault error must produce a clean, residual-verified solution
// on the next call — pooled per-solve state cannot stay poisoned.
func TestChaosSolverReusableAfterFault(t *testing.T) {
	sys := chaosSystem(t)
	// Backend faults only live in the backend, so build one solver with a
	// crashing backend, fail a solve, then solve cleanly on a fresh solver
	// sharing the same system; and separately exercise the same-solver path
	// through a poisoned RHS (which exercises the buffer pool directly).
	cfg := core.Config{
		Layout: grid.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: trsv.Proposed3D,
		Trees: ctree.Binary, Machine: machine.CoriHaswell(),
	}
	s, err := core.NewSolver(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := chaosRHS(sys, 5)

	// 1. Fail with a poisoned RHS (NaN) — uses and returns pooled buffers.
	bad := b.Clone()
	bad.Data[37] = math.NaN()
	if _, _, err := s.Solve(bad); err == nil || !fault.IsFault(err) {
		t.Fatalf("poisoned RHS not rejected as fault: %v", err)
	}

	// 2. The same solver must now solve cleanly.
	x, _, err := s.Solve(b)
	if err != nil {
		t.Fatalf("solve after fault failed: %v", err)
	}
	if r := s.Residual(x, b); r > 1e-6 {
		t.Fatalf("residual %g after recovering from fault", r)
	}

	// 3. Fail with an injected crash, then solve cleanly again: the solver
	// alternates fault plans via distinct solvers over one shared system.
	cfgCrash := cfg
	cfgCrash.Faults = &fault.Plan{Crash: map[int]float64{0: 0}}
	sc, err := core.NewSolver(sys, cfgCrash)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Solve(b); err == nil || !fault.IsFault(err) {
		t.Fatalf("crash plan did not fail: %v", err)
	}
	x, _, err = s.Solve(b)
	if err != nil {
		t.Fatalf("clean solver affected by crashed sibling: %v", err)
	}
	if r := s.Residual(x, b); r > 1e-6 {
		t.Fatalf("residual %g on shared-system re-solve", r)
	}
}
