// Package fault provides deterministic, seeded fault injection for the
// message runtime, plus the typed error taxonomy every solver failure is
// reported through.
//
// A Plan describes the faults to inject — per-rank straggler slowdowns,
// per-message latency jitter (which also reorders deliveries), message
// drops, and rank crashes. Both runtime backends accept a Plan via
// runtime.Options{Faults: ...}: the discrete-event Engine injects in
// virtual time, bit-deterministically for a fixed Seed (every PRNG draw
// happens in global event order), and the goroutine Pool injects in wall
// time. Injection is strictly a test/chaos facility: a nil Plan leaves the
// hot paths untouched.
//
// The error types (StallError, CrashError, PanicError, ProtocolError,
// NumericalError) are what the solver returns instead of crashing the
// process; IsFault distinguishes them from ordinary usage errors.
package fault

import (
	"math/rand"
	"sync"
)

// Wildcard matches any rank or tag in a DropRule.
const Wildcard = -1

// DropRule selects messages to silently discard (after the sender has paid
// its injection cost — the receiver simply never sees the payload, like a
// lost packet on an unreliable fabric).
type DropRule struct {
	// Src, Dst, Tag restrict the rule; Wildcard (-1) matches anything.
	Src, Dst, Tag int
	// After skips the first After matching messages before dropping starts.
	After int
	// Count bounds how many messages the rule drops; 0 means every match.
	Count int
}

// Plan describes the faults injected into one run. The zero value injects
// nothing; a Plan is read-only once handed to a backend and may be shared
// by concurrent runs (each run draws its own Injector from it).
type Plan struct {
	// Seed drives every random draw (jitter). Two DES runs of the same
	// Plan produce bit-identical clocks.
	Seed int64
	// Straggler maps rank → slowdown factor (> 1): the rank's compute and
	// modeled overheads take factor× as long, the extra time charged to
	// runtime.CatFault. Factors ≤ 1 are ignored.
	Straggler map[int]float64
	// NetDelay maps rank → extra seconds (virtual under the Engine, wall
	// under the Pool) added to the delivery of every message the rank
	// sends: a network straggler — degraded NIC, congested switch port,
	// flaky link — whose compute keeps pace but whose messages arrive
	// late. Unlike Straggler, the rank's own clock is untouched, so
	// strict solves serialize on the late arrivals level after level
	// while elastic solves can proceed past them. Values ≤ 0 are ignored.
	NetDelay map[int]float64
	// Jitter adds a uniform extra latency in [0, Jitter) seconds to every
	// message, drawn from Seed. Messages on one link can overtake each
	// other — the reordering the deferral protocol must absorb.
	Jitter float64
	// Drops lists messages to discard.
	Drops []DropRule
	// Crash maps rank → time (seconds since run start; virtual under the
	// Engine, wall under the Pool) after which the rank stops executing,
	// modeling a node death. In-flight messages it already sent still
	// deliver; everything addressed to it afterwards is lost.
	Crash map[int]float64
}

// Dropped records one message discarded by a DropRule.
type Dropped struct {
	Src, Dst, Tag int
	Time          float64
}

// Injector is the per-run instantiation of a Plan: it owns the PRNG and
// the drop bookkeeping, so repeated runs of one Plan are independent and
// identically seeded. All methods are safe on a nil receiver (returning
// "no fault"), letting backends call through unconditionally, and safe for
// concurrent use (the Pool's rank goroutines share one Injector).
type Injector struct {
	mu      sync.Mutex
	plan    *Plan
	rng     *rand.Rand
	matched []int
	dropped []Dropped
}

// NewInjector instantiates p for one run; a nil plan yields a nil
// (inactive) Injector.
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{
		plan:    p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		matched: make([]int, len(p.Drops)),
	}
}

// Active reports whether any fault can fire.
func (in *Injector) Active() bool { return in != nil }

// StragglerFactor returns the slowdown factor for rank (1 when healthy).
func (in *Injector) StragglerFactor(rank int) float64 {
	if in == nil {
		return 1
	}
	if f, ok := in.plan.Straggler[rank]; ok && f > 1 {
		return f
	}
	return 1
}

// NetDelay returns the injected per-message delivery delay for messages
// sent by src (0 when src is not a network straggler).
func (in *Injector) NetDelay(src int) float64 {
	if in == nil {
		return 0
	}
	if d, ok := in.plan.NetDelay[src]; ok && d > 0 {
		return d
	}
	return 0
}

// Delay returns the next jitter draw in seconds (0 when jitter is off).
func (in *Injector) Delay() float64 {
	if in == nil || in.plan.Jitter <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() * in.plan.Jitter
}

// Drop reports whether the (src, dst, tag) message sent at time now should
// be discarded, recording it for SuspectFor when so. The first rule that
// matches and is within its After/Count window wins.
func (in *Injector) Drop(src, dst, tag int, now float64) bool {
	if in == nil || len(in.plan.Drops) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.plan.Drops {
		r := &in.plan.Drops[i]
		if !match(r.Src, src) || !match(r.Dst, dst) || !match(r.Tag, tag) {
			continue
		}
		in.matched[i]++
		n := in.matched[i]
		if n <= r.After {
			continue
		}
		if r.Count > 0 && n > r.After+r.Count {
			continue
		}
		in.dropped = append(in.dropped, Dropped{Src: src, Dst: dst, Tag: tag, Time: now})
		return true
	}
	return false
}

func match(rule, v int) bool { return rule == Wildcard || rule == v }

// CrashTime returns the injected crash time for rank, if any.
func (in *Injector) CrashTime(rank int) (float64, bool) {
	if in == nil {
		return 0, false
	}
	t, ok := in.plan.Crash[rank]
	return t, ok
}

// Dropped returns a copy of the messages discarded so far.
func (in *Injector) Dropped() []Dropped {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Dropped(nil), in.dropped...)
}

// SuspectFor returns the peer and tag of the first dropped message that
// was destined to rank — the most likely explanation for why the rank is
// stalled. ok is false when no dropped message targeted rank.
func (in *Injector) SuspectFor(rank int) (peer, tag int, ok bool) {
	if in == nil {
		return -1, -1, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, d := range in.dropped {
		if d.Dst == rank {
			return d.Src, d.Tag, true
		}
	}
	return -1, -1, false
}
