package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Active() {
		t.Fatal("nil injector claims active")
	}
	if f := in.StragglerFactor(3); f != 1 {
		t.Fatalf("straggler factor %g", f)
	}
	if d := in.Delay(); d != 0 {
		t.Fatalf("delay %g", d)
	}
	if in.Drop(0, 1, 2, 0) {
		t.Fatal("nil injector dropped a message")
	}
	if _, ok := in.CrashTime(0); ok {
		t.Fatal("nil injector has a crash time")
	}
	if got := in.Dropped(); got != nil {
		t.Fatalf("nil injector recorded drops: %v", got)
	}
	if _, _, ok := in.SuspectFor(0); ok {
		t.Fatal("nil injector has a suspect")
	}
	if NewInjector(nil) != nil {
		t.Fatal("NewInjector(nil) should be nil")
	}
}

func TestStragglerFactor(t *testing.T) {
	in := NewInjector(&Plan{Straggler: map[int]float64{0: 4, 1: 0.5}})
	if f := in.StragglerFactor(0); f != 4 {
		t.Fatalf("rank 0 factor %g, want 4", f)
	}
	// Factors ≤ 1 (speedups) are ignored: injection only slows ranks down.
	if f := in.StragglerFactor(1); f != 1 {
		t.Fatalf("rank 1 factor %g, want 1", f)
	}
	if f := in.StragglerFactor(2); f != 1 {
		t.Fatalf("unlisted rank factor %g, want 1", f)
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	const jitter = 1e-3
	a := NewInjector(&Plan{Seed: 42, Jitter: jitter})
	b := NewInjector(&Plan{Seed: 42, Jitter: jitter})
	for i := 0; i < 100; i++ {
		da, db := a.Delay(), b.Delay()
		if da != db {
			t.Fatalf("draw %d: %g != %g (same seed must give identical draws)", i, da, db)
		}
		if da < 0 || da >= jitter {
			t.Fatalf("draw %d: %g outside [0, %g)", i, da, jitter)
		}
	}
	c := NewInjector(&Plan{Seed: 43, Jitter: jitter})
	if a.Delay() == c.Delay() {
		t.Fatal("different seeds gave the same first draw (suspicious)")
	}
}

func TestDropRuleMatching(t *testing.T) {
	in := NewInjector(&Plan{Drops: []DropRule{{Src: 1, Dst: 2, Tag: 7}}})
	if in.Drop(0, 2, 7, 0) || in.Drop(1, 0, 7, 0) || in.Drop(1, 2, 8, 0) {
		t.Fatal("non-matching message dropped")
	}
	if !in.Drop(1, 2, 7, 0.5) {
		t.Fatal("matching message not dropped")
	}
	ds := in.Dropped()
	if len(ds) != 1 || ds[0] != (Dropped{Src: 1, Dst: 2, Tag: 7, Time: 0.5}) {
		t.Fatalf("dropped record %+v", ds)
	}
}

func TestDropWildcards(t *testing.T) {
	in := NewInjector(&Plan{Drops: []DropRule{{Src: Wildcard, Dst: 3, Tag: Wildcard}}})
	if !in.Drop(0, 3, 1, 0) || !in.Drop(9, 3, 99, 0) {
		t.Fatal("wildcard rule missed a match")
	}
	if in.Drop(0, 4, 1, 0) {
		t.Fatal("wildcard rule matched wrong destination")
	}
}

func TestDropAfterAndCount(t *testing.T) {
	in := NewInjector(&Plan{Drops: []DropRule{
		{Src: Wildcard, Dst: Wildcard, Tag: 5, After: 2, Count: 2},
	}})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, in.Drop(0, 1, 5, float64(i)))
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d: dropped=%v, want %v (After=2 Count=2)", i, got[i], want[i])
		}
	}
	if n := len(in.Dropped()); n != 2 {
		t.Fatalf("recorded %d drops, want 2", n)
	}
}

func TestDropCountZeroMeansUnlimited(t *testing.T) {
	in := NewInjector(&Plan{Drops: []DropRule{{Src: Wildcard, Dst: Wildcard, Tag: Wildcard}}})
	for i := 0; i < 10; i++ {
		if !in.Drop(0, 1, i, 0) {
			t.Fatalf("message %d not dropped by unlimited rule", i)
		}
	}
}

func TestSuspectFor(t *testing.T) {
	in := NewInjector(&Plan{Drops: []DropRule{{Src: Wildcard, Dst: Wildcard, Tag: Wildcard}}})
	in.Drop(4, 2, 11, 0)
	in.Drop(5, 2, 12, 1)
	peer, tag, ok := in.SuspectFor(2)
	if !ok || peer != 4 || tag != 11 {
		t.Fatalf("suspect = (%d, %d, %v), want first drop (4, 11, true)", peer, tag, ok)
	}
	if _, _, ok := in.SuspectFor(3); ok {
		t.Fatal("rank with no lost messages has a suspect")
	}
}

func TestCrashTime(t *testing.T) {
	in := NewInjector(&Plan{Crash: map[int]float64{2: 1.5}})
	if tc, ok := in.CrashTime(2); !ok || tc != 1.5 {
		t.Fatalf("CrashTime(2) = (%g, %v)", tc, ok)
	}
	if _, ok := in.CrashTime(0); ok {
		t.Fatal("unlisted rank has a crash time")
	}
}

func TestIsFaultAndErrorStrings(t *testing.T) {
	cases := []struct {
		err  error
		want []string
	}{
		{&StallError{Rank: 3, Peer: 1, Tag: 7, Virtual: true, State: "phase=0"},
			[]string{"deadlock", "rank 3", "tag 7", "rank 1", "phase=0"}},
		{&StallError{Rank: 2, Peer: -1, Waited: 300 * time.Millisecond, Deadline: 250 * time.Millisecond},
			[]string{"stall", "rank 2", "300ms", "250ms"}},
		{&CrashError{Rank: 1, At: 0.5}, []string{"crashed", "rank 1", "0.5"}},
		{&PanicError{Rank: 0, Value: "boom"}, []string{"panicked", "rank 0", "boom"}},
		{&ProtocolError{Rank: 4, Tag: 9, Phase: "U-solve", Msg: "bad"},
			[]string{"protocol violation", "rank 4", "tag 9", "U-solve"}},
		{&NumericalError{Stage: "solution", Row: 10, Col: 1, Value: math.NaN(), Sn: 3, Rank: 2},
			[]string{"non-finite", "solution", "row 10", "supernode 3", "diag rank 2"}},
		{&NumericalError{Stage: "rhs", Row: 0, Col: 0, Value: math.Inf(1), Sn: -1, Rank: -1},
			[]string{"non-finite", "rhs", "+Inf"}},
	}
	for _, tc := range cases {
		if !IsFault(tc.err) {
			t.Errorf("IsFault(%T) = false", tc.err)
		}
		msg := tc.err.Error()
		for _, w := range tc.want {
			if !strings.Contains(msg, w) {
				t.Errorf("%T message %q missing %q", tc.err, msg, w)
			}
		}
	}
	if IsFault(errors.New("plain")) {
		t.Error("plain error classified as fault")
	}
	if IsFault(nil) {
		t.Error("nil classified as fault")
	}
	// Wrapped faults are still recognized.
	if !IsFault(fmt.Errorf("outer: %w", &CrashError{Rank: 0})) {
		t.Error("wrapped fault not recognized")
	}
}

func TestFromPanic(t *testing.T) {
	// Arbitrary panic values become PanicError with the rank and stack.
	err := FromPanic(3, "boom", []byte("stack"))
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Rank != 3 || pe.Value != "boom" || string(pe.Stack) != "stack" {
		t.Fatalf("FromPanic wrapped wrong: %#v", err)
	}
	// Typed fault errors pass through unchanged.
	orig := &CrashError{Rank: 1, At: 2}
	if got := FromPanic(5, orig, nil); got != error(orig) {
		t.Fatalf("typed fault did not pass through: %v", got)
	}
	// A ProtocolError raised without a rank gets it filled in.
	proto := &ProtocolError{Rank: -1, Msg: "x"}
	if got := FromPanic(7, proto, nil); got != error(proto) || proto.Rank != 7 {
		t.Fatalf("ProtocolError rank not filled: %v (rank %d)", got, proto.Rank)
	}
	// A ProtocolError that already names a rank keeps it.
	proto2 := &ProtocolError{Rank: 2, Msg: "y"}
	FromPanic(7, proto2, nil)
	if proto2.Rank != 2 {
		t.Fatalf("ProtocolError rank overwritten: %d", proto2.Rank)
	}
}

func TestInjectorsIndependentPerRun(t *testing.T) {
	p := &Plan{Seed: 9, Jitter: 1, Drops: []DropRule{{Src: Wildcard, Dst: Wildcard, Tag: Wildcard, Count: 1}}}
	a, b := NewInjector(p), NewInjector(p)
	if a.Delay() != b.Delay() {
		t.Fatal("two injectors from one plan diverged on the first draw")
	}
	a.Drop(0, 1, 2, 0)
	// a has exhausted the rule; b must still have its budget.
	if !b.Drop(0, 1, 2, 0) {
		t.Fatal("drop bookkeeping leaked between injectors")
	}
}
