package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/fault"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// The GPU execution model. One rank is one GPU. A supernode column is one
// thread-block task (Algs. 4 and 5); at most SMs tasks run concurrently
// (the NVSHMEM scheduling limit the paper works around with the SOLVE/WAIT
// dual-kernel design — the WAIT kernel is the tagGPUPut delivery here).
// Task duration is the roofline time of its block operations on one SM's
// share of the GPU plus a per-block overhead; dependency tracking (fmod /
// bmod and the spin-wait flags) is exact, so the simulated schedule is a
// list schedule of the real DAG, and the handlers perform the real numeric
// work as tasks execute.
//
// These handlers require the simulation backend: GPU hardware is modeled,
// not present.

// gpuTask describes one queued thread-block task.
type gpuTask struct {
	k    int
	put  *sparse.Panel // received subvector for off-diagonal tasks; nil at diagonal tasks
	isU  bool
	diag bool
}

// flopsBytesL returns the modeled volume of an L task for column k: the
// diagonal GEMM (diagonal tasks only) plus this rank's off-diagonal GEMVs.
func flopsBytesL(r *rankCore, k int, diag bool) (flops, bytes, diagFlops float64) {
	w := float64(r.snWidth(k))
	n := float64(r.st.nrhs)
	if diag {
		diagFlops = 2 * w * w * n
		flops += diagFlops
		bytes += 8 * (w*w + 2*w*n)
	}
	for _, blk := range r.colL[k] {
		rows := float64(len(blk.Rows))
		flops += 2 * rows * w * n
		bytes += 8 * (rows*w + w*n + 2*rows*n)
	}
	return flops, bytes, diagFlops
}

// flopsBytesU mirrors flopsBytesL for U tasks.
func flopsBytesU(r *rankCore, k int, diag bool) (flops, bytes, diagFlops float64) {
	w := float64(r.snWidth(k))
	n := float64(r.st.nrhs)
	if diag {
		diagFlops = 2 * w * w * n
		flops += diagFlops
		bytes += 8 * (w*w + 2*w*n)
	}
	for _, ref := range r.colU[k] {
		rows := float64(ref.Blk.Val.Rows)
		cols := float64(len(ref.Blk.Cols))
		flops += 2 * rows * cols * n
		bytes += 8 * (rows*cols + cols*n + 2*rows*n)
	}
	return flops, bytes, diagFlops
}

// ---- Single GPU per grid (Alg. 4): Px = Py = 1 ----

type gpuSingleRank struct {
	rankCore
	gpu *machine.GPU
	ar  *arHelper
}

// NewGPUSingle returns the handler factory for the single-GPU-per-grid
// variant of the proposed 3D algorithm under the default execution mode.
func NewGPUSingle(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newGPUSingle(p, model, b, x, SolveOpts{})
}

func newGPUSingle(p *dist.Plan, model *machine.Model, b, x *sparse.Panel, opts SolveOpts) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &gpuSingleRank{gpu: model.GPU}
		h.rankCore.init(p, model, rank, b, x, opts)
		return h
	}
}

func (h *gpuSingleRank) Done() bool { return h.st.phase == 3 }

func (h *gpuSingleRank) Init(ctx *runtime.Ctx) {
	if !ctx.Virtual() {
		panic(&fault.ProtocolError{Rank: h.rank, Phase: "init",
			Msg: "GPU algorithms require the simulation backend (Engine)"})
	}
	h.ar = newARHelper(&h.rankCore)
	st := h.st
	st.smFree = h.gpu.SMs
	st.tasksLeft = len(h.gp.Sns)
	if h.sr != nil {
		// The schedule's Fmod/Bmod templates are exactly these per-column
		// dependency counts; refill by copy.
		st.dense = true
		st.dfmod = append(st.dfmod[:0], h.sg.Fmod...)
		st.dbmod = append(st.dbmod[:0], h.sg.Bmod...)
	} else {
		for _, k := range h.gp.Sns {
			st.fmod[k] = len(h.gp.RowSns[k])
			st.bmod[k] = len(h.gp.URowSns[k])
		}
	}
	for _, k := range h.gp.Sns {
		if h.fmodOf(k) == 0 {
			st.readyTasks = append(st.readyTasks, gpuTask{k: k, diag: true})
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
	h.armElastic(ctx)
}

func (h *gpuSingleRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	h.dispatch(ctx, m, h)
	h.armElastic(ctx)
}

// forceStale implements elasticForcer. The single-GPU variant's L and U
// phases are purely local task DAGs — they cannot stall on a peer, so
// their deadline ticks are no-ops. Only the inter-grid allreduce can be
// left behind by a straggler grid, and its forced closure proceeds with
// the partial sums on hand.
func (h *gpuSingleRank) forceStale(ctx *runtime.Ctx, phase int) {
	if phase >= 1 && h.st.phase == 1 {
		h.markStaleAR()
		h.ar.force(ctx)
		h.finishAR(ctx)
	}
}

func (h *gpuSingleRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagGPUEvent:
		return true
	case tagARReduce:
		return h.st.phase == 1 && h.ar.acceptsReduce(m.Data.(*vecBundle).Step)
	case tagARBcast:
		return h.st.phase == 1 && h.ar.acceptsBcast()
	}
	panic(&fault.ProtocolError{Rank: h.rank, Tag: m.Tag, Phase: proposedPhase(h.st.phase),
		Msg: fmt.Sprintf("gpu handler received unexpected tag %d from rank %d", m.Tag, m.Src)})
}

// DeadOnArrival implements runtime.DeadLetterer (see new3dRank): allreduce
// bundles below the monotone phase/step gate park forever. GPU self-events
// are always live.
func (h *gpuSingleRank) DeadOnArrival(m runtime.Msg) bool {
	st := h.st
	if st == nil {
		return true
	}
	switch m.Tag {
	case tagARReduce:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadReduce(m.Data.(*vecBundle).Step))
	case tagARBcast:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadBcast())
	}
	return false
}

func (h *gpuSingleRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagGPUEvent:
		h.onTaskDone(ctx, m.Data.(gpuTask))
	case tagARReduce:
		if h.ar.onReduce(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagARBcast:
		if h.ar.onBcast(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	}
}

// startTasks launches ready tasks onto free SM slots: the real numeric
// work runs now (dependencies are satisfied), the completion event fires
// after the modeled duration. On the scheduled path each launch batch is
// one level sweep — the tasks launched together are mutually independent
// (all had their counters at zero) — annotated as a single trace span.
func (h *gpuSingleRank) startTasks(ctx *runtime.Ctx) {
	st := h.st
	launched, start := 0, ctx.Now()
	for st.smFree > 0 && len(st.readyTasks) > 0 {
		launched++
		t := st.readyTasks[0]
		st.readyTasks[0] = gpuTask{} // drop the panel reference: release() can't reach popped slots
		st.readyTasks = st.readyTasks[1:]
		st.smFree--
		var dur float64
		if !t.isU {
			flops, bytes, _ := flopsBytesL(&h.rankCore, t.k, true)
			dur = h.gpu.TaskTime(flops, bytes)
			ctx.ComputeT(TagGPUTaskL, 0, func() {
				keep := h.gp.OwnerGridOfSn(t.k) == h.z
				yk, _ := h.diagSolveY(t.k, h.rhsFor(t.k, keep))
				st.y[t.k] = yk
				for _, blk := range h.colL[t.k] {
					h.applyLBlock(blk, t.k, yk)
				}
			})
		} else {
			flops, bytes, _ := flopsBytesU(&h.rankCore, t.k, true)
			dur = h.gpu.TaskTime(flops, bytes)
			ctx.ComputeT(TagGPUTaskU, 0, func() {
				xk, _ := h.diagSolveX(t.k)
				st.xl[t.k] = xk
				if h.gp.OwnerGridOfSn(t.k) == h.z {
					h.writeX(t.k, xk)
				}
				for _, ref := range h.colU[t.k] {
					h.applyUBlock(ref, t.k, xk)
				}
			})
		}
		ctx.After(dur, tagGPUEvent, t)
	}
	if st.sched && launched > 0 {
		st.counts.sweeps++
		st.counts.sweepTasks += launched
		ctx.Span(runtime.LevelSweepTag(launched), start, ctx.Now()-start)
	}
}

func (h *gpuSingleRank) onTaskDone(ctx *runtime.Ctx, t gpuTask) {
	st := h.st
	st.smFree++
	st.tasksLeft--
	if !t.isU {
		for _, blk := range h.colL[t.k] {
			if h.decFmod(blk.I) == 0 {
				st.readyTasks = append(st.readyTasks, gpuTask{k: blk.I, diag: true})
			}
		}
	} else {
		for _, ref := range h.colU[t.k] {
			if h.decBmod(ref.I) == 0 {
				st.readyTasks = append(st.readyTasks, gpuTask{k: ref.I, diag: true, isU: true})
			}
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
}

func (h *gpuSingleRank) maybeFinishPhase(ctx *runtime.Ctx) {
	st := h.st
	if st.tasksLeft != 0 {
		return
	}
	switch st.phase {
	case 0:
		ctx.Mark(MarkLDone)
		st.phase = 1
		st.tasksLeft = -1 // sentinel until the U phase reloads it
		if h.ar.begin(ctx) {
			h.finishAR(ctx)
		}
	case 2:
		ctx.Mark(MarkUDone)
		st.phase = 3
	}
}

func (h *gpuSingleRank) finishAR(ctx *runtime.Ctx) {
	ctx.Mark(MarkZDone)
	st := h.st
	st.phase = 2
	st.tasksLeft = len(h.gp.Sns)
	for _, k := range h.gp.Sns {
		if h.bmodOf(k) == 0 {
			st.readyTasks = append(st.readyTasks, gpuTask{k: k, diag: true, isU: true})
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
}

// ---- NVSHMEM multi-GPU (Alg. 5): Px × 1 × Pz ----

type gpuMultiRank struct {
	rankCore
	gpu *machine.GPU
	ar  *arHelper
}

// NewGPUMulti returns the handler factory for the NVSHMEM-based multi-GPU
// variant (Py=1 layouts, as in the paper's Fig. 11) under the default
// execution mode.
func NewGPUMulti(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newGPUMulti(p, model, b, x, SolveOpts{})
}

func newGPUMulti(p *dist.Plan, model *machine.Model, b, x *sparse.Panel, opts SolveOpts) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &gpuMultiRank{gpu: model.GPU}
		h.rankCore.init(p, model, rank, b, x, opts)
		return h
	}
}

func (h *gpuMultiRank) Done() bool { return h.st.phase == 3 }

// taskCountL returns the number of L tasks this rank executes: one per
// owned diagonal plus one per broadcast-tree membership (the off-diagonal
// SOLVE blocks of Alg. 5).
func (h *gpuMultiRank) taskCountL() int {
	n := 0
	for _, k := range h.gp.Sns {
		if h.p.DiagRank2D(k) == h.r2d {
			n++
		} else if h.gp.LBcast[k].Contains(h.r2d) {
			n++
		}
	}
	return n
}

func (h *gpuMultiRank) taskCountU() int {
	n := 0
	for _, k := range h.gp.Sns {
		if h.p.DiagRank2D(k) == h.r2d {
			n++
		} else if h.gp.UBcast[k].Contains(h.r2d) {
			n++
		}
	}
	return n
}

func (h *gpuMultiRank) Init(ctx *runtime.Ctx) {
	if !ctx.Virtual() {
		panic(&fault.ProtocolError{Rank: h.rank, Phase: "init",
			Msg: "GPU algorithms require the simulation backend (Engine)"})
	}
	h.ar = newARHelper(&h.rankCore)
	st := h.st
	st.smFree = h.gpu.SMs
	st.tasksLeft = h.taskCountL()
	// With Py=1 every block of row K lives on rank K mod Px, so the fmod
	// counters are purely local (no reduction phase — the reason the paper
	// prefers Py=1 on GPUs).
	for _, k := range h.gp.Sns {
		if k%h.p.Layout.Px == h.row {
			st.fmod[k] = h.localL[k]
			st.bmod[k] = h.localU[k]
		}
	}
	for _, k := range h.myDiagSns {
		if st.fmod[k] == 0 {
			st.readyTasks = append(st.readyTasks, gpuTask{k: k, diag: true})
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
	if h.el != nil && st.putSeenL == nil {
		st.putSeenL = map[int]bool{}
		st.putSeenU = map[int]bool{}
		st.putForcedL = map[int]bool{}
		st.putForcedU = map[int]bool{}
	}
	h.armElastic(ctx)
}

func (h *gpuMultiRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	h.dispatch(ctx, m, h)
	h.armElastic(ctx)
}

// forceStale implements elasticForcer. The multi-GPU variant's only
// cross-rank dependencies are the one-sided puts and the allreduce: a
// forcing deadline synthesizes a zero-valued put task for every expected
// put that has not arrived (marking the owned rows it feeds stale), after
// which the local task DAG drains the phase through the normal completion
// events; the allreduce closes like the other variants.
func (h *gpuMultiRank) forceStale(ctx *runtime.Ctx, phase int) {
	if h.st.phase == 0 {
		h.forcePuts(ctx, false)
	}
	if phase >= 1 && h.st.phase == 1 {
		h.markStaleAR()
		h.ar.force(ctx)
		h.finishAR(ctx)
	}
	if phase >= 2 && h.st.phase == 2 {
		h.forcePuts(ctx, true)
	}
}

// forcePuts queues a zero-valued put task for every broadcast-tree
// membership of this rank whose put has not been received or synthesized
// yet. A late real put superseded by a synthesized one is dropped in
// process, keeping the phase task count exact. gp.Sns ascends, so the
// synthesis order is deterministic.
func (h *gpuMultiRank) forcePuts(ctx *runtime.Ctx, isU bool) {
	st := h.st
	seen, forced := st.putSeenL, st.putForcedL
	if isU {
		seen, forced = st.putSeenU, st.putForcedU
	}
	added := false
	for _, k := range h.gp.Sns {
		if h.p.DiagRank2D(k) == h.r2d {
			continue
		}
		tree := h.gp.LBcast[k]
		if isU {
			tree = h.gp.UBcast[k]
		}
		if !tree.Contains(h.r2d) || seen[k] || forced[k] {
			continue
		}
		forced[k] = true
		// The zero subvector feeds this rank's blocks of column k: every
		// owned diagonal row those blocks contribute to is now stale.
		if !isU {
			for _, blk := range h.colL[k] {
				if h.p.DiagRank2D(blk.I) == h.r2d {
					h.markStaleL(blk.I)
				}
			}
		} else {
			for _, ref := range h.colU[k] {
				if h.p.DiagRank2D(ref.I) == h.r2d {
					h.markStaleU(ref.I)
				}
			}
		}
		st.readyTasks = append(st.readyTasks, gpuTask{k: k, put: h.newPanel(h.snWidth(k)), isU: isU})
		added = true
	}
	if added {
		h.startTasks(ctx)
	}
}

func (h *gpuMultiRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagGPUEvent:
		return true
	case tagGPUPut:
		d := m.Data.(*gpuPut)
		return (d.isU && h.st.phase == 2) || (!d.isU && h.st.phase == 0)
	case tagARReduce:
		return h.st.phase == 1 && h.ar.acceptsReduce(m.Data.(*vecBundle).Step)
	case tagARBcast:
		return h.st.phase == 1 && h.ar.acceptsBcast()
	}
	panic(&fault.ProtocolError{Rank: h.rank, Tag: m.Tag, Phase: proposedPhase(h.st.phase),
		Msg: fmt.Sprintf("gpu handler received unexpected tag %d from rank %d", m.Tag, m.Src)})
}

// DeadOnArrival implements runtime.DeadLetterer (see new3dRank): one-sided
// puts for a forcibly closed sweep and allreduce bundles below the monotone
// phase/step gate park forever. GPU self-events are always live.
func (h *gpuMultiRank) DeadOnArrival(m runtime.Msg) bool {
	st := h.st
	if st == nil {
		return true
	}
	switch m.Tag {
	case tagGPUPut:
		if m.Data.(*gpuPut).isU {
			return st.phase > 2
		}
		return st.phase > 0
	case tagARReduce:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadReduce(m.Data.(*vecBundle).Step))
	case tagARBcast:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadBcast())
	}
	return false
}

// gpuPut is a one-sided delivery of a solved subvector (the ready_y / flag
// pair of Alg. 5), shipped in wire form like every other subvector message.
type gpuPut struct {
	K   int
	W   wirePanel
	isU bool
}

func (h *gpuMultiRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagGPUEvent:
		h.onTaskDone(ctx, m.Data.(gpuTask))
	case tagGPUPut:
		d := m.Data.(*gpuPut)
		if h.el != nil {
			seen, forced := h.st.putSeenL, h.st.putForcedL
			if d.isU {
				seen, forced = h.st.putSeenU, h.st.putForcedU
			}
			if forced[d.K] {
				// A staleness deadline already synthesized this put as a
				// zero panel and the task count charged it; drop the late
				// real delivery.
				return
			}
			seen[d.K] = true
		}
		h.st.readyTasks = append(h.st.readyTasks, gpuTask{k: d.K, put: h.unpackPanel(&d.W), isU: d.isU})
		h.startTasks(ctx)
	case tagARReduce:
		if h.ar.onReduce(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagARBcast:
		if h.ar.onBcast(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	}
}

// forwardPuts sends v to this rank's children in the tree, with one-sided
// put latency (NVLink inside a node, fabric across nodes), after an
// initial in-task delay. On the scheduled path the children come from the
// schedule's precomputed per-slot lists (same ranks, same order). The
// multi-GPU variant keeps its map dependency counters — its fmod/bmod
// templates are local-block counts, not the schedule's row counts.
func (h *gpuMultiRank) forwardPuts(ctx *runtime.Ctx, k int, v *sparse.Panel, isU bool, delay float64) {
	w, bytes := h.packSend(v)
	put := func(child int) {
		dst := h.p.GlobalRank(h.z, child)
		cost := h.gpu.PutCost(h.rank, dst, bytes)
		ctx.SendAfter(delay+cost, runtime.Msg{
			Dst: dst, Tag: tagGPUPut, Cat: runtime.CatXY,
			Data: &gpuPut{K: k, W: w, isU: isU}, Bytes: bytes,
		})
	}
	if h.sr != nil {
		kids := h.sr.LBcastKids
		if isU {
			kids = h.sr.UBcastKids
		}
		for _, child := range kids[h.slot(k)] {
			put(int(child))
		}
		return
	}
	tree := h.gp.LBcast[k]
	if isU {
		tree = h.gp.UBcast[k]
	}
	for _, child := range tree.Children(h.r2d) {
		put(child)
	}
}

func (h *gpuMultiRank) startTasks(ctx *runtime.Ctx) {
	st := h.st
	launched, start := 0, ctx.Now()
	for st.smFree > 0 && len(st.readyTasks) > 0 {
		launched++
		t := st.readyTasks[0]
		st.readyTasks[0] = gpuTask{} // drop the panel reference: release() can't reach popped slots
		st.readyTasks = st.readyTasks[1:]
		st.smFree--
		diag := t.put == nil
		var dur float64
		if !t.isU {
			flops, bytes, diagFlops := flopsBytesL(&h.rankCore, t.k, diag)
			dur = h.gpu.TaskTime(flops, bytes)
			var yk *sparse.Panel
			ctx.ComputeT(TagGPUTaskL, 0, func() {
				if diag {
					keep := h.gp.OwnerGridOfSn(t.k) == h.z
					yk, _ = h.diagSolveY(t.k, h.rhsFor(t.k, keep))
					st.y[t.k] = yk
				} else {
					yk = t.put
				}
				for _, blk := range h.colL[t.k] {
					h.applyLBlock(blk, t.k, yk)
				}
			})
			delay := 0.0
			if diag {
				delay = diagFlops / (h.gpu.Flops / float64(h.gpu.SMs))
			}
			h.forwardPuts(ctx, t.k, yk, false, delay)
		} else {
			flops, bytes, diagFlops := flopsBytesU(&h.rankCore, t.k, diag)
			dur = h.gpu.TaskTime(flops, bytes)
			var xk *sparse.Panel
			ctx.ComputeT(TagGPUTaskU, 0, func() {
				if diag {
					xk, _ = h.diagSolveX(t.k)
					st.xl[t.k] = xk
					if h.gp.OwnerGridOfSn(t.k) == h.z {
						h.writeX(t.k, xk)
					}
				} else {
					xk = t.put
				}
				for _, ref := range h.colU[t.k] {
					h.applyUBlock(ref, t.k, xk)
				}
			})
			delay := 0.0
			if diag {
				delay = diagFlops / (h.gpu.Flops / float64(h.gpu.SMs))
			}
			h.forwardPuts(ctx, t.k, xk, true, delay)
		}
		ctx.After(dur, tagGPUEvent, t)
	}
	if st.sched && launched > 0 {
		st.counts.sweeps++
		st.counts.sweepTasks += launched
		ctx.Span(runtime.LevelSweepTag(launched), start, ctx.Now()-start)
	}
}

func (h *gpuMultiRank) onTaskDone(ctx *runtime.Ctx, t gpuTask) {
	st := h.st
	st.smFree++
	st.tasksLeft--
	if !t.isU {
		for _, blk := range h.colL[t.k] {
			st.fmod[blk.I]--
			if st.fmod[blk.I] == 0 && h.p.DiagRank2D(blk.I) == h.r2d {
				st.readyTasks = append(st.readyTasks, gpuTask{k: blk.I, diag: true})
			}
		}
	} else {
		for _, ref := range h.colU[t.k] {
			st.bmod[ref.I]--
			if st.bmod[ref.I] == 0 && h.p.DiagRank2D(ref.I) == h.r2d {
				st.readyTasks = append(st.readyTasks, gpuTask{k: ref.I, diag: true, isU: true})
			}
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
}

func (h *gpuMultiRank) maybeFinishPhase(ctx *runtime.Ctx) {
	st := h.st
	if st.tasksLeft != 0 {
		return
	}
	switch st.phase {
	case 0:
		ctx.Mark(MarkLDone)
		st.phase = 1
		st.tasksLeft = -1
		if h.ar.begin(ctx) {
			h.finishAR(ctx)
		}
	case 2:
		ctx.Mark(MarkUDone)
		st.phase = 3
	}
}

func (h *gpuMultiRank) finishAR(ctx *runtime.Ctx) {
	ctx.Mark(MarkZDone)
	st := h.st
	st.phase = 2
	st.tasksLeft = h.taskCountU()
	for _, k := range h.myDiagSns {
		if st.bmod[k] == 0 {
			st.readyTasks = append(st.readyTasks, gpuTask{k: k, diag: true, isU: true})
		}
	}
	h.startTasks(ctx)
	h.maybeFinishPhase(ctx)
}
