package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/fault"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// new3dRank implements the proposed 3D SpTRSV (Alg. 1) for one rank:
//
//	phase L:  message-driven 2D L-solve of L^z over the grid's whole path,
//	          with RHS zeroing for replicated nodes (lines 4–10);
//	phase AR: sparse allreduce of the partial y subvectors (Alg. 2);
//	phase U:  message-driven 2D U-solve of U^z (replicated computation).
//
// With Pz=1 phases AR is skipped and the handler is exactly the 2D solver
// with the plan's communication-tree kind (flat = classic 2D, binary =
// Liu et al. CSC '18).
type new3dRank struct {
	rankCore

	// Allreduce state: ar is the paper's sparse allreduce (Alg. 2); when
	// naive is set, nar runs the per-node strawman instead (ablation).
	ar    *arHelper
	nar   *naiveAR
	naive bool
}

// NewProposed3D returns the handler factory for the proposed algorithm
// under the default execution mode.
func NewProposed3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newProposed3D(p, model, b, x, SolveOpts{}, false)
}

// NewProposed3DNaiveAR is the proposed algorithm with the inter-grid
// exchange replaced by the per-node strawman allreduce — the ablation of
// the paper's §3.2 optimization.
func NewProposed3DNaiveAR(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newProposed3D(p, model, b, x, SolveOpts{}, true)
}

func newProposed3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel, opts SolveOpts, naive bool) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &new3dRank{naive: naive}
		h.rankCore.init(p, model, rank, b, x, opts)
		return h
	}
}

func (h *new3dRank) Done() bool { return h.st.phase == 3 }

func (h *new3dRank) Init(ctx *runtime.Ctx) {
	rd := h.gp.Ranks[h.r2d]
	st := h.st
	if h.sr != nil {
		// The schedule carries this rank's counter templates as flat
		// slot-indexed slices; refill by copy instead of rebuilding the
		// working maps entry by entry.
		st.dense = true
		st.dpendL = append(st.dpendL[:0], h.sr.PendingL...)
		st.dpendU = append(st.dpendU[:0], h.sr.PendingU...)
	} else {
		copyCounts(st.pendingL, rd.PendingL)
		copyCounts(st.pendingU, rd.PendingU)
	}
	st.lRecvLeft = rd.LRecv
	st.uRecvLeft = rd.URecv
	h.ar = newARHelper(&h.rankCore)

	// Kick off: diagonal supernodes with no pending contributions.
	for _, k := range h.myDiagSns {
		if h.pendingLOf(k) == 0 {
			st.enqueueY(k)
		}
	}
	h.drainReadyY(ctx, h)
	h.maybeFinishL(ctx)
}

func (h *new3dRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	h.dispatch(ctx, m, h)
}

// accepts reports whether the message can be processed in the current
// phase; inter-grid and U messages arriving early are buffered.
func (h *new3dRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagYBcast, tagLReduce:
		return h.st.phase == 0
	case tagARReduce:
		return h.st.phase == 1 && h.ar.acceptsReduce(m.Data.(*vecBundle).Step)
	case tagARBcast:
		return h.st.phase == 1 && h.ar.acceptsBcast()
	case tagNaiveARUp:
		return h.st.phase == 1 && h.nar != nil && h.nar.accepts(m)
	case tagXBcast, tagUReduce:
		return h.st.phase == 2
	}
	panic(&fault.ProtocolError{Rank: h.rank, Tag: m.Tag, Phase: proposedPhase(h.st.phase),
		Msg: fmt.Sprintf("received unexpected tag %d from rank %d", m.Tag, m.Src)})
}

func (h *new3dRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagYBcast:
		d := m.Data.(*yMsg)
		h.st.lRecvLeft--
		h.onY(ctx, d.K, d.Y)
		h.drainReadyY(ctx, h)
		h.maybeFinishL(ctx)
	case tagLReduce:
		d := m.Data.(*sumMsg)
		h.st.lRecvLeft--
		h.getLsum(d.K).AddFrom(d.S)
		h.lContribution(ctx, d.K, h.gp.LReduce[d.K])
		h.drainReadyY(ctx, h)
		h.maybeFinishL(ctx)
	case tagARReduce:
		if h.ar.onReduce(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagARBcast:
		if h.ar.onBcast(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagNaiveARUp:
		if h.nar.onMsg(ctx, m) {
			h.finishAR(ctx)
		}
	case tagXBcast:
		d := m.Data.(*yMsg)
		h.st.uRecvLeft--
		h.onX(ctx, d.K, d.Y)
		h.drainReadyX(ctx, h)
		h.maybeFinishU(ctx)
	case tagUReduce:
		d := m.Data.(*sumMsg)
		h.st.uRecvLeft--
		h.getUsum(d.K).AddFrom(d.S)
		h.uContribution(ctx, d.K, h.gp.UReduce[d.K])
		h.drainReadyX(ctx, h)
		h.maybeFinishU(ctx)
	}
}

// ---- L phase ----

// onY handles a received (or locally computed) y(K): forward along the
// broadcast tree and apply my column-K blocks. On the scheduled path the
// broadcast children come precomputed from the schedule (the same ranks
// in the same order the tree walk yields, without materializing a slice
// per call).
func (h *new3dRank) onY(ctx *runtime.Ctx, k int, yk *sparse.Panel) {
	if h.sr != nil {
		for _, child := range h.sr.LBcastKids[h.slot(k)] {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, int(child)), Tag: tagYBcast, Cat: runtime.CatXY,
				Data: &yMsg{K: k, Y: yk}, Bytes: panelBytes(yk),
			})
		}
	} else {
		for _, child := range h.gp.LBcast[k].Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagYBcast, Cat: runtime.CatXY,
				Data: &yMsg{K: k, Y: yk}, Bytes: panelBytes(yk),
			})
		}
	}
	for _, blk := range h.colL[k] {
		secs := h.applyLBlock(blk, k, yk)
		ctx.ComputeT(TagApplyL, secs, nil)
		h.lContribution(ctx, blk.I, h.gp.LReduce[blk.I])
	}
}

// keepB implements diagSolver: the proposed algorithm keeps b(K) only on
// the grid that owns K's path node (Alg. 1 lines 4–10).
func (h *new3dRank) keepB(k int) bool { return h.gp.OwnerGridOfSn(k) == h.z }

// solveY performs one L-phase diagonal solve and its follow-ups
// (diagSolver, driven by the shared ready-queue drain).
func (h *new3dRank) solveY(ctx *runtime.Ctx, k int) {
	yk, secs := h.solveYPanel(k, h.keepB(k))
	ctx.ComputeT(TagDiagSolveL, secs, nil)
	h.st.y[k] = yk
	h.onY(ctx, k, yk)
}

func (h *new3dRank) maybeFinishL(ctx *runtime.Ctx) {
	st := h.st
	if st.phase != 0 || st.lRecvLeft != 0 || len(st.readyY) != 0 {
		return
	}
	ctx.Mark(MarkLDone)
	st.phase = 1
	if h.naive {
		h.nar = newNaiveAR(&h.rankCore)
		if h.nar.begin(ctx) {
			h.finishAR(ctx)
		}
		return
	}
	if h.ar.begin(ctx) {
		h.finishAR(ctx)
	}
}

func (h *new3dRank) finishAR(ctx *runtime.Ctx) {
	ctx.Mark(MarkZDone)
	st := h.st
	st.phase = 2
	for _, k := range h.myDiagSns {
		if h.pendingUOf(k) == 0 {
			st.enqueueX(k)
		}
	}
	h.drainReadyX(ctx, h)
	h.maybeFinishU(ctx)
}

// ---- U phase ----

func (h *new3dRank) onX(ctx *runtime.Ctx, k int, xk *sparse.Panel) {
	if h.sr != nil {
		for _, child := range h.sr.UBcastKids[h.slot(k)] {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, int(child)), Tag: tagXBcast, Cat: runtime.CatXY,
				Data: &yMsg{K: k, Y: xk}, Bytes: panelBytes(xk),
			})
		}
	} else {
		for _, child := range h.gp.UBcast[k].Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
				Data: &yMsg{K: k, Y: xk}, Bytes: panelBytes(xk),
			})
		}
	}
	for _, ref := range h.colU[k] {
		secs := h.applyUBlock(ref, k, xk)
		ctx.ComputeT(TagApplyU, secs, nil)
		h.uContribution(ctx, ref.I, h.gp.UReduce[ref.I])
	}
}

// solveX performs one U-phase diagonal solve and its follow-ups.
func (h *new3dRank) solveX(ctx *runtime.Ctx, k int) {
	xk, secs := h.solveXPanel(k)
	ctx.ComputeT(TagDiagSolveU, secs, nil)
	h.st.xl[k] = xk
	if h.gp.OwnerGridOfSn(k) == h.z {
		h.writeX(k, xk)
	}
	h.onX(ctx, k, xk)
}

func (h *new3dRank) maybeFinishU(ctx *runtime.Ctx) {
	st := h.st
	if st.phase != 2 || st.uRecvLeft != 0 || len(st.readyX) != 0 {
		return
	}
	ctx.Mark(MarkUDone)
	st.phase = 3
}
