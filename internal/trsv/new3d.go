package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/fault"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// new3dRank implements the proposed 3D SpTRSV (Alg. 1) for one rank:
//
//	phase L:  message-driven 2D L-solve of L^z over the grid's whole path,
//	          with RHS zeroing for replicated nodes (lines 4–10);
//	phase AR: sparse allreduce of the partial y subvectors (Alg. 2);
//	phase U:  message-driven 2D U-solve of U^z (replicated computation).
//
// With Pz=1 phases AR is skipped and the handler is exactly the 2D solver
// with the plan's communication-tree kind (flat = classic 2D, binary =
// Liu et al. CSC '18).
type new3dRank struct {
	rankCore

	// Allreduce state: ar is the paper's sparse allreduce (Alg. 2); when
	// naive is set, nar runs the per-node strawman instead (ablation).
	ar    *arHelper
	nar   *naiveAR
	naive bool
}

// NewProposed3D returns the handler factory for the proposed algorithm
// under the default execution mode.
func NewProposed3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newProposed3D(p, model, b, x, SolveOpts{}, false)
}

// NewProposed3DNaiveAR is the proposed algorithm with the inter-grid
// exchange replaced by the per-node strawman allreduce — the ablation of
// the paper's §3.2 optimization.
func NewProposed3DNaiveAR(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newProposed3D(p, model, b, x, SolveOpts{}, true)
}

func newProposed3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel, opts SolveOpts, naive bool) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &new3dRank{naive: naive}
		h.rankCore.init(p, model, rank, b, x, opts)
		return h
	}
}

func (h *new3dRank) Done() bool { return h.st.phase == 3 }

func (h *new3dRank) Init(ctx *runtime.Ctx) {
	rd := h.gp.Ranks[h.r2d]
	st := h.st
	if h.sr != nil {
		// The schedule carries this rank's counter templates as flat
		// slot-indexed slices; refill by copy instead of rebuilding the
		// working maps entry by entry.
		st.dense = true
		st.dpendL = append(st.dpendL[:0], h.sr.PendingL...)
		st.dpendU = append(st.dpendU[:0], h.sr.PendingU...)
	} else {
		copyCounts(st.pendingL, rd.PendingL)
		copyCounts(st.pendingU, rd.PendingU)
	}
	st.lRecvLeft = rd.LRecv
	st.uRecvLeft = rd.URecv
	h.ar = newARHelper(&h.rankCore)
	if h.comm == CommAggregated {
		st.aggOn = true
		if len(st.aggBufs) < len(h.gp.Ranks) {
			st.aggBufs = make([]aggBuf, len(h.gp.Ranks))
		}
		if h.sr != nil {
			// The schedule's destination sets bound how many buffers one
			// phase can open; size the flush order once instead of growing.
			if n := max(len(h.sr.LSendDsts), len(h.sr.USendDsts)); cap(st.aggOrder) < n {
				st.aggOrder = make([]int32, 0, n)
			}
		}
	}

	// Kick off: diagonal supernodes with no pending contributions.
	for _, k := range h.myDiagSns {
		if h.pendingLOf(k) == 0 {
			st.enqueueY(k)
		}
	}
	h.drainReadyY(ctx, h)
	h.maybeFinishL(ctx)
	if h.st.aggOn {
		h.flushAgg(ctx)
	}
	h.armElastic(ctx)
}

func (h *new3dRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	h.dispatch(ctx, m, h)
	// One packed message per destination per activation: everything this
	// activation buffered goes out now, so the handler never returns with
	// unsent traffic.
	if h.st.aggOn {
		h.flushAgg(ctx)
	}
	h.armElastic(ctx)
}

// accepts reports whether the message can be processed in the current
// phase; inter-grid and U messages arriving early are buffered.
func (h *new3dRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagYBcast, tagLReduce:
		return h.st.phase == 0
	case tagARReduce:
		return h.st.phase == 1 && h.ar.acceptsReduce(m.Data.(*vecBundle).Step)
	case tagARBcast:
		return h.st.phase == 1 && h.ar.acceptsBcast()
	case tagNaiveARUp:
		return h.st.phase == 1 && h.nar != nil && h.nar.accepts(m)
	case tagXBcast, tagUReduce:
		return h.st.phase == 2
	case tagAgg:
		return h.st.phase == m.Data.(*aggMsg).Phase
	}
	panic(&fault.ProtocolError{Rank: h.rank, Tag: m.Tag, Phase: proposedPhase(h.st.phase),
		Msg: fmt.Sprintf("received unexpected tag %d from rank %d", m.Tag, m.Src)})
}

// DeadOnArrival implements runtime.DeadLetterer: accepts' gates are
// monotone (the phase and the allreduce step only advance), so a message
// that arrives below the current gate parks forever and must not charge
// wait time. Naive-allreduce traffic is conservatively never dead.
func (h *new3dRank) DeadOnArrival(m runtime.Msg) bool {
	st := h.st
	if st == nil {
		return true
	}
	switch m.Tag {
	case tagYBcast, tagLReduce:
		return st.phase > 0
	case tagARReduce:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadReduce(m.Data.(*vecBundle).Step))
	case tagARBcast:
		return st.phase > 1 || (st.phase == 1 && h.ar.deadBcast())
	case tagXBcast, tagUReduce:
		return st.phase > 2
	case tagAgg:
		return st.phase > m.Data.(*aggMsg).Phase
	}
	return false
}

func (h *new3dRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagYBcast:
		d := m.Data.(*yMsg)
		h.st.lRecvLeft--
		h.onY(ctx, d.K, h.unpackPanel(&d.W))
		h.drainReadyY(ctx, h)
		h.maybeFinishL(ctx)
	case tagLReduce:
		d := m.Data.(*sumMsg)
		h.st.lRecvLeft--
		addWire(h.getLsum(d.K), &d.W)
		h.lContribution(ctx, d.K, h.gp.LReduce[d.K])
		h.drainReadyY(ctx, h)
		h.maybeFinishL(ctx)
	case tagAgg:
		h.onAgg(ctx, m.Data.(*aggMsg))
	case tagARReduce:
		if h.ar.onReduce(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagARBcast:
		if h.ar.onBcast(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagNaiveARUp:
		if h.nar.onMsg(ctx, m) {
			h.finishAR(ctx)
		}
	case tagXBcast:
		d := m.Data.(*yMsg)
		h.st.uRecvLeft--
		h.onX(ctx, d.K, h.unpackPanel(&d.W))
		h.drainReadyX(ctx, h)
		h.maybeFinishU(ctx)
	case tagUReduce:
		d := m.Data.(*sumMsg)
		h.st.uRecvLeft--
		addWire(h.getUsum(d.K), &d.W)
		h.uContribution(ctx, d.K, h.gp.UReduce[d.K])
		h.drainReadyX(ctx, h)
		h.maybeFinishU(ctx)
	}
}

// onAgg processes a coalesced message: each entry is exactly one singleton
// receive (broadcast hop or reduction contribution) of the message's
// phase, applied in the sender's emission order; the ready-queue drain and
// the phase check run once after the batch.
func (h *new3dRank) onAgg(ctx *runtime.Ctx, d *aggMsg) {
	uPhase := d.Phase == 2
	for i, k := range d.Ks {
		w := &d.Ws[i]
		if !uPhase {
			h.st.lRecvLeft--
			if d.Kinds[i] == aggKindBcast {
				h.onY(ctx, k, h.unpackPanel(w))
			} else {
				addWire(h.getLsum(k), w)
				h.lContribution(ctx, k, h.gp.LReduce[k])
			}
		} else {
			h.st.uRecvLeft--
			if d.Kinds[i] == aggKindBcast {
				h.onX(ctx, k, h.unpackPanel(w))
			} else {
				addWire(h.getUsum(k), w)
				h.uContribution(ctx, k, h.gp.UReduce[k])
			}
		}
	}
	if !uPhase {
		h.drainReadyY(ctx, h)
		h.maybeFinishL(ctx)
	} else {
		h.drainReadyX(ctx, h)
		h.maybeFinishU(ctx)
	}
}

// ---- L phase ----

// onY handles a received (or locally computed) y(K): forward along the
// broadcast tree and apply my column-K blocks. On the scheduled path the
// broadcast children come precomputed from the schedule (the same ranks
// in the same order the tree walk yields, without materializing a slice
// per call).
func (h *new3dRank) onY(ctx *runtime.Ctx, k int, yk *sparse.Panel) {
	h.bcast(ctx, k, yk, tagYBcast)
	for _, blk := range h.colL[k] {
		secs := h.applyLBlock(blk, k, yk)
		ctx.ComputeT(TagApplyL, secs, nil)
		h.lContribution(ctx, blk.I, h.gp.LReduce[blk.I])
	}
}

// bcast forwards a solved subvector down the supernode's broadcast tree,
// packing it once and reusing the wire form for every child. On the
// scheduled path the children come precomputed from the schedule (the same
// ranks in the same order the tree walk yields); under CommAggregated the
// hops are buffered per destination instead of sent individually.
func (h *new3dRank) bcast(ctx *runtime.Ctx, k int, v *sparse.Panel, tag int) {
	var w wirePanel
	var bytes int
	packed := false
	send := func(child int) {
		if !packed {
			w, bytes = h.packSend(v)
			packed = true
		}
		if h.st.aggOn {
			h.aggAdd(child, aggKindBcast, k, w)
			return
		}
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(h.z, child), Tag: tag, Cat: runtime.CatXY,
			Data: &yMsg{K: k, W: w}, Bytes: bytes,
		})
	}
	if h.sr != nil {
		kids := h.sr.LBcastKids
		if tag == tagXBcast {
			kids = h.sr.UBcastKids
		}
		for _, child := range kids[h.slot(k)] {
			send(int(child))
		}
	} else {
		tree := h.gp.LBcast[k]
		if tag == tagXBcast {
			tree = h.gp.UBcast[k]
		}
		for _, child := range tree.Children(h.r2d) {
			send(child)
		}
	}
}

// keepB implements diagSolver: the proposed algorithm keeps b(K) only on
// the grid that owns K's path node (Alg. 1 lines 4–10).
func (h *new3dRank) keepB(k int) bool { return h.gp.OwnerGridOfSn(k) == h.z }

// solveY performs one L-phase diagonal solve and its follow-ups
// (diagSolver, driven by the shared ready-queue drain).
func (h *new3dRank) solveY(ctx *runtime.Ctx, k int) {
	yk, secs := h.solveYPanel(k, h.keepB(k))
	ctx.ComputeT(TagDiagSolveL, secs, nil)
	h.st.y[k] = yk
	h.onY(ctx, k, yk)
}

func (h *new3dRank) maybeFinishL(ctx *runtime.Ctx) {
	st := h.st
	if st.phase != 0 || st.lRecvLeft != 0 || len(st.readyY) != 0 {
		return
	}
	ctx.Mark(MarkLDone)
	st.phase = 1
	if h.naive {
		h.nar = newNaiveAR(&h.rankCore)
		if h.nar.begin(ctx) {
			h.finishAR(ctx)
		}
		return
	}
	if h.ar.begin(ctx) {
		h.finishAR(ctx)
	}
}

func (h *new3dRank) finishAR(ctx *runtime.Ctx) {
	ctx.Mark(MarkZDone)
	st := h.st
	st.phase = 2
	for _, k := range h.myDiagSns {
		if h.pendingUOf(k) == 0 {
			st.enqueueX(k)
		}
	}
	h.drainReadyX(ctx, h)
	h.maybeFinishU(ctx)
}

// ---- U phase ----

func (h *new3dRank) onX(ctx *runtime.Ctx, k int, xk *sparse.Panel) {
	h.bcast(ctx, k, xk, tagXBcast)
	for _, ref := range h.colU[k] {
		secs := h.applyUBlock(ref, k, xk)
		ctx.ComputeT(TagApplyU, secs, nil)
		h.uContribution(ctx, ref.I, h.gp.UReduce[ref.I])
	}
}

// solveX performs one U-phase diagonal solve and its follow-ups.
func (h *new3dRank) solveX(ctx *runtime.Ctx, k int) {
	xk, secs := h.solveXPanel(k)
	ctx.ComputeT(TagDiagSolveU, secs, nil)
	h.st.xl[k] = xk
	if h.gp.OwnerGridOfSn(k) == h.z {
		h.writeX(k, xk)
	}
	h.onX(ctx, k, xk)
}

func (h *new3dRank) maybeFinishU(ctx *runtime.Ctx) {
	st := h.st
	if st.phase != 2 || st.uRecvLeft != 0 || len(st.readyX) != 0 {
		return
	}
	ctx.Mark(MarkUDone)
	st.phase = 3
}

// ---- elastic forcing ----

// forceStale implements elasticForcer: close every phase up to and
// including the tick's phase that is still open, proceeding with whatever
// inputs are on hand. Each closure runs the normal phase-transition
// machinery (so forced diagonal solves still broadcast, the allreduce
// still sends its bundles, and the phase markers still fire), and every
// row solved without all its contributions is recorded stale.
func (h *new3dRank) forceStale(ctx *runtime.Ctx, phase int) {
	if h.st.phase == 0 {
		h.forceL(ctx)
	}
	// Each closure can admit messages that arrived ahead of their phase;
	// consume them before declaring the next phase's inputs missing.
	h.drainDeferred(ctx, h)
	if phase >= 1 && h.st.phase == 1 {
		h.markStaleAR()
		if h.naive {
			h.nar.force(ctx)
		} else {
			h.ar.force(ctx)
		}
		h.finishAR(ctx)
		h.drainDeferred(ctx, h)
	}
	if phase >= 2 && h.st.phase == 2 {
		h.forceU(ctx)
	}
	if h.st.aggOn {
		h.flushAgg(ctx)
	}
}

// forceL closes the L phase: every unsolved diagonal row of this rank is
// solved with its current (incomplete) partial sums — missing
// contributions read as zero — and the outstanding receive budget is
// dropped. myDiagSns ascends, so the forced solve order is deterministic.
func (h *new3dRank) forceL(ctx *runtime.Ctx) {
	st := h.st
	for _, k := range h.myDiagSns {
		if st.y[k] == nil {
			h.markStaleL(k)
			h.zeroPendingL(k)
			st.enqueueY(k)
		}
	}
	st.lRecvLeft = 0
	h.drainReadyY(ctx, h)
	h.maybeFinishL(ctx)
}

// forceU mirrors forceL for the U phase.
func (h *new3dRank) forceU(ctx *runtime.Ctx) {
	st := h.st
	for _, k := range h.myDiagSns {
		if st.xl[k] == nil {
			h.markStaleU(k)
			h.zeroPendingU(k)
			st.enqueueX(k)
		}
	}
	st.uRecvLeft = 0
	h.drainReadyX(ctx, h)
	h.maybeFinishU(ctx)
}
