package trsv

import (
	"fmt"
	"maps"

	"sptrsv/internal/dist"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// new3dRank implements the proposed 3D SpTRSV (Alg. 1) for one rank:
//
//	phase L:  message-driven 2D L-solve of L^z over the grid's whole path,
//	          with RHS zeroing for replicated nodes (lines 4–10);
//	phase AR: sparse allreduce of the partial y subvectors (Alg. 2);
//	phase U:  message-driven 2D U-solve of U^z (replicated computation).
//
// With Pz=1 phases AR is skipped and the handler is exactly the 2D solver
// with the plan's communication-tree kind (flat = classic 2D, binary =
// Liu et al. CSC '18).
type new3dRank struct {
	rankBase

	phase int // 0=L, 1=AR, 2=U, 3=done

	// L-phase dependency state.
	pendingL  map[int]int
	lRecvLeft int
	readyY    []int // diagonal rows ready to solve

	// Allreduce state: ar is the paper's sparse allreduce (Alg. 2); when
	// naive is set, nar runs the per-node strawman instead (ablation).
	ar    *arHelper
	nar   *naiveAR
	naive bool

	// U-phase dependency state.
	pendingU  map[int]int
	uRecvLeft int
	readyX    []int

	deferred []runtime.Msg
}

// NewProposed3D returns the handler factory for the proposed algorithm.
func NewProposed3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &new3dRank{}
		h.rankBase.init(p, model, rank, b, x)
		return h
	}
}

// NewProposed3DNaiveAR is the proposed algorithm with the inter-grid
// exchange replaced by the per-node strawman allreduce — the ablation of
// the paper's §3.2 optimization.
func NewProposed3DNaiveAR(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return func(rank int) runtime.Handler {
		h := &new3dRank{naive: true}
		h.rankBase.init(p, model, rank, b, x)
		return h
	}
}

func (h *new3dRank) Done() bool { return h.phase == 3 }

func (h *new3dRank) Init(ctx *runtime.Ctx) {
	rd := h.gp.Ranks[h.r2d]
	h.pendingL = maps.Clone(rd.PendingL)
	h.pendingU = maps.Clone(rd.PendingU)
	h.lRecvLeft = rd.LRecv
	h.uRecvLeft = rd.URecv
	h.ar = newARHelper(&h.rankBase)

	// Kick off: diagonal supernodes with no pending contributions.
	for _, k := range h.myDiagSns {
		if h.pendingL[k] == 0 {
			h.readyY = append(h.readyY, k)
		}
	}
	h.drainReadyY(ctx)
	h.maybeFinishL(ctx)
}

func (h *new3dRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	if !h.accepts(m) {
		h.deferred = append(h.deferred, m)
		return
	}
	h.process(ctx, m)
	h.drainDeferred(ctx)
}

// accepts reports whether the message can be processed in the current
// phase; inter-grid and U messages arriving early are buffered.
func (h *new3dRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagYBcast, tagLReduce:
		return h.phase == 0
	case tagARReduce:
		return h.phase == 1 && h.ar.acceptsReduce(m.Data.(*vecBundle).Step)
	case tagARBcast:
		return h.phase == 1 && h.ar.acceptsBcast()
	case tagNaiveARUp:
		return h.phase == 1 && h.nar != nil && h.nar.accepts(m)
	case tagXBcast, tagUReduce:
		return h.phase == 2
	}
	panic(fmt.Sprintf("trsv: rank %d unexpected tag %d", h.rank, m.Tag))
}

func (h *new3dRank) drainDeferred(ctx *runtime.Ctx) {
	for {
		progressed := false
		for i := 0; i < len(h.deferred); i++ {
			if h.accepts(h.deferred[i]) {
				m := h.deferred[i]
				h.deferred = append(h.deferred[:i], h.deferred[i+1:]...)
				h.process(ctx, m)
				progressed = true
				break
			}
		}
		if !progressed {
			return
		}
	}
}

func (h *new3dRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagYBcast:
		d := m.Data.(*yMsg)
		h.lRecvLeft--
		h.onY(ctx, d.K, d.Y)
		h.drainReadyY(ctx)
		h.maybeFinishL(ctx)
	case tagLReduce:
		d := m.Data.(*sumMsg)
		h.lRecvLeft--
		h.getLsum(d.K).AddFrom(d.S)
		h.rowContribution(ctx, d.K)
		h.drainReadyY(ctx)
		h.maybeFinishL(ctx)
	case tagARReduce:
		if h.ar.onReduce(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagARBcast:
		if h.ar.onBcast(ctx, m.Data.(*vecBundle)) {
			h.finishAR(ctx)
		}
	case tagNaiveARUp:
		if h.nar.onMsg(ctx, m) {
			h.finishAR(ctx)
		}
	case tagXBcast:
		d := m.Data.(*yMsg)
		h.uRecvLeft--
		h.onX(ctx, d.K, d.Y)
		h.drainReadyX(ctx)
		h.maybeFinishU(ctx)
	case tagUReduce:
		d := m.Data.(*sumMsg)
		h.uRecvLeft--
		h.getUsum(d.K).AddFrom(d.S)
		h.uRowContribution(ctx, d.K)
		h.drainReadyX(ctx)
		h.maybeFinishU(ctx)
	}
}

// ---- L phase ----

// onY handles a received (or locally computed) y(K): forward along the
// broadcast tree and apply my column-K blocks.
func (h *new3dRank) onY(ctx *runtime.Ctx, k int, yk *sparse.Panel) {
	for _, child := range h.gp.LBcast[k].Children(h.r2d) {
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(h.z, child), Tag: tagYBcast, Cat: runtime.CatXY,
			Data: &yMsg{K: k, Y: yk}, Bytes: panelBytes(yk),
		})
	}
	for _, blk := range h.colL[k] {
		secs := h.applyLBlock(blk, k, yk)
		ctx.Compute(secs, nil)
		h.rowContribution(ctx, blk.I)
	}
}

// rowContribution records one lsum contribution for row K (a local GEMV or
// a reduction-tree child message) and fires the follow-up action when the
// row is complete.
func (h *new3dRank) rowContribution(ctx *runtime.Ctx, k int) {
	h.pendingL[k]--
	if h.pendingL[k] != 0 {
		return
	}
	tree := h.gp.LReduce[k]
	if tree.Root() == h.r2d {
		h.readyY = append(h.readyY, k)
		return
	}
	parent := tree.Parent(h.r2d)
	s := h.getLsum(k)
	ctx.Send(runtime.Msg{
		Dst: h.p.GlobalRank(h.z, parent), Tag: tagLReduce, Cat: runtime.CatXY,
		Data: &sumMsg{K: k, S: s}, Bytes: panelBytes(s),
	})
	delete(h.lsum, k) // ownership transferred
}

// drainReadyY solves diagonal rows whose dependencies are met; solving one
// row can locally unlock further rows, so loop until quiet.
func (h *new3dRank) drainReadyY(ctx *runtime.Ctx) {
	for len(h.readyY) > 0 {
		k := h.readyY[0]
		h.readyY = h.readyY[1:]
		keep := h.gp.OwnerGridOfSn(k) == h.z
		yk, secs := h.diagSolveY(k, h.rhsFor(k, keep))
		ctx.Compute(secs, nil)
		h.y[k] = yk
		h.onY(ctx, k, yk)
	}
}

func (h *new3dRank) maybeFinishL(ctx *runtime.Ctx) {
	if h.phase != 0 || h.lRecvLeft != 0 || len(h.readyY) != 0 {
		return
	}
	ctx.Mark(MarkLDone)
	h.phase = 1
	if h.naive {
		h.nar = newNaiveAR(&h.rankBase)
		if h.nar.begin(ctx) {
			h.finishAR(ctx)
		}
		return
	}
	if h.ar.begin(ctx) {
		h.finishAR(ctx)
	}
}

func (h *new3dRank) finishAR(ctx *runtime.Ctx) {
	ctx.Mark(MarkZDone)
	h.phase = 2
	for _, k := range h.myDiagSns {
		if h.pendingU[k] == 0 {
			h.readyX = append(h.readyX, k)
		}
	}
	h.drainReadyX(ctx)
	h.maybeFinishU(ctx)
}

// ---- U phase ----

func (h *new3dRank) onX(ctx *runtime.Ctx, k int, xk *sparse.Panel) {
	for _, child := range h.gp.UBcast[k].Children(h.r2d) {
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
			Data: &yMsg{K: k, Y: xk}, Bytes: panelBytes(xk),
		})
	}
	for _, ref := range h.colU[k] {
		secs := h.applyUBlock(ref, k, xk)
		ctx.Compute(secs, nil)
		h.uRowContribution(ctx, ref.I)
	}
}

func (h *new3dRank) uRowContribution(ctx *runtime.Ctx, k int) {
	h.pendingU[k]--
	if h.pendingU[k] != 0 {
		return
	}
	tree := h.gp.UReduce[k]
	if tree.Root() == h.r2d {
		h.readyX = append(h.readyX, k)
		return
	}
	parent := tree.Parent(h.r2d)
	s := h.getUsum(k)
	ctx.Send(runtime.Msg{
		Dst: h.p.GlobalRank(h.z, parent), Tag: tagUReduce, Cat: runtime.CatXY,
		Data: &sumMsg{K: k, S: s}, Bytes: panelBytes(s),
	})
	delete(h.usum, k)
}

func (h *new3dRank) drainReadyX(ctx *runtime.Ctx) {
	for len(h.readyX) > 0 {
		k := h.readyX[0]
		h.readyX = h.readyX[1:]
		xk, secs := h.diagSolveX(k)
		ctx.Compute(secs, nil)
		h.xl[k] = xk
		if h.gp.OwnerGridOfSn(k) == h.z {
			h.writeX(k, xk)
		}
		h.onX(ctx, k, xk)
	}
}

func (h *new3dRank) maybeFinishU(ctx *runtime.Ctx) {
	if h.phase != 2 || h.uRecvLeft != 0 || len(h.readyX) != 0 {
		return
	}
	ctx.Mark(MarkUDone)
	h.phase = 3
}
