// Package trsv implements the distributed sparse triangular solve
// algorithms of the paper on top of the message runtime:
//
//   - the proposed 3D SpTRSV (Alg. 1): one 2D L-solve over the whole
//     leaf-to-root path per grid, one inter-grid sparse allreduce (Alg. 2),
//     one 2D U-solve — with flat or binary communication trees (Alg. 3);
//   - the baseline 3D SpTRSV (Sao et al., ICS '19): level-by-level node
//     processing with O(log Pz) inter-grid exchanges and per-node-group
//     flat trees;
//   - GPU execution models for both the single-GPU-per-grid kernels
//     (Alg. 4) and the NVSHMEM multi-GPU kernels (Alg. 5).
//
// With Pz=1 the proposed algorithm reduces to the communication-optimized
// 2D solver of Liu et al. (CSC '18) and the baseline reduces to the classic
// 2D solver — the paper's two 2D reference points.
package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/snode"
	"sptrsv/internal/sparse"
)

// Message tags. Allreduce and Z-exchange tags carry the step in the payload.
const (
	tagYBcast      = iota + 1 // L-phase: y(K) down a broadcast tree
	tagLReduce                // L-phase: partial lsum(K) up a reduction tree
	tagARReduce               // sparse allreduce: reduce step (Alg. 2)
	tagARBcast                // sparse allreduce: broadcast step
	tagXBcast                 // U-phase: x(K) down a broadcast tree
	tagUReduce                // U-phase: partial usum(K) up a reduction tree
	tagZGatherL               // baseline: inter-grid lsum merge
	tagZBcastU                // baseline: inter-grid x broadcast
	tagGPUEvent               // GPU model: task completion self-event
	tagGPUPut                 // GPU model: one-sided put delivery
	tagNaiveARUp              // naive allreduce ablation: partial y to the owner grid
	tagNaiveARDown            // naive allreduce ablation: complete y back to a replica
)

// yMsg carries a solved subvector (y or x) for one supernode. The panel is
// immutable after sending; receivers only read it.
type yMsg struct {
	K int
	Y *sparse.Panel
}

// sumMsg carries an aggregated partial sum for one supernode row. The
// receiver takes ownership and accumulates into it or from it.
type sumMsg struct {
	K int
	S *sparse.Panel
}

// vecBundle carries subvectors for many supernodes at once (the packed
// buffers of the sparse allreduce and the baseline Z exchanges).
type vecBundle struct {
	Step int
	Ks   []int
	Vs   []*sparse.Panel
}

func (b *vecBundle) bytes() int {
	n := 16
	for _, v := range b.Vs {
		if v != nil {
			n += 8 * v.Rows * v.Cols
		}
	}
	return n
}

// Backend selects how handlers execute.
type Backend interface {
	Run(n int, net runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error)
}

// SimBackend runs on the discrete-event engine (virtual time).
type SimBackend struct{}

// Run implements Backend.
func (SimBackend) Run(n int, net runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error) {
	return runtime.NewEngine(n, net).Run(f)
}

// PoolBackend runs on real goroutines (wall-clock time).
type PoolBackend struct{ Pool runtime.Pool }

// Run implements Backend.
func (p PoolBackend) Run(n int, _ runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error) {
	return p.Pool.Run(n, f)
}

// Marks used for the per-phase load-balance figures.
const (
	MarkLDone = "L_done"
	MarkZDone = "Z_done"
	MarkUDone = "U_done"
)

// panelBytes is the modeled wire size of one supernode subvector message.
func panelBytes(p *sparse.Panel) int { return 8*p.Rows*p.Cols + 16 }

// rankBase holds the per-rank geometry and block lists shared by the CPU
// algorithms.
type rankBase struct {
	p     *dist.Plan
	model *machine.Model
	gp    *dist.GridPlan
	nrhs  int

	rank, z, row, col, r2d int

	// b is the global RHS panel (read-only); x the global output panel
	// (each supernode written by exactly one rank).
	b, x *sparse.Panel

	// Per-supernode numeric state, keyed by global supernode index.
	lsum map[int]*sparse.Panel
	usum map[int]*sparse.Panel
	y    map[int]*sparse.Panel // subvectors at their diagonal rank
	xl   map[int]*sparse.Panel // solved x at the diagonal rank

	// Precomputed read-only views shared with the plan.
	colL      map[int][]*snode.LBlock  // my blocks in column K (L)
	colU      map[int][]dist.UBlockRef // my blocks in column K (U): U(I, K)
	localL    map[int]int              // #my blocks in row K (L)
	localU    map[int]int              // #my blocks in row K (U)
	myDiagSns []int                    // supernodes whose diagonal rank is me
}

func (r *rankBase) init(p *dist.Plan, model *machine.Model, rank int, b, x *sparse.Panel) {
	r.p = p
	r.model = model
	r.rank = rank
	r.nrhs = b.Cols
	g := p.Layout.GridSize()
	r.z = rank / g
	r.r2d = rank % g
	r.row = r.r2d / p.Layout.Py
	r.col = r.r2d % p.Layout.Py
	r.gp = p.Grids[r.z]
	r.b, r.x = b, x

	r.lsum = make(map[int]*sparse.Panel)
	r.usum = make(map[int]*sparse.Panel)
	r.y = make(map[int]*sparse.Panel)
	r.xl = make(map[int]*sparse.Panel)

	rd := r.gp.Ranks[r.r2d]
	r.colL = rd.ColL
	r.colU = rd.ColU
	r.localL = rd.LocalL
	r.localU = rd.LocalU
	r.myDiagSns = rd.MyDiagSns
}

// snWidth returns the width of supernode k.
func (r *rankBase) snWidth(k int) int { return r.p.M.SnWidth(k) }

// getLsum returns (allocating if needed) the lsum accumulator for row k.
func (r *rankBase) getLsum(k int) *sparse.Panel {
	s := r.lsum[k]
	if s == nil {
		s = sparse.NewPanel(r.snWidth(k), r.nrhs)
		r.lsum[k] = s
	}
	return s
}

// getUsum returns the usum accumulator for row k.
func (r *rankBase) getUsum(k int) *sparse.Panel {
	s := r.usum[k]
	if s == nil {
		s = sparse.NewPanel(r.snWidth(k), r.nrhs)
		r.usum[k] = s
	}
	return s
}

// rhsFor builds the diagonal rank's local copy of b(K), honoring the
// proposed algorithm's zeroing rule (Alg. 1 lines 4–10): when replicate is
// false the subvector is zero unless this grid owns the node.
func (r *rankBase) rhsFor(k int, keep bool) *sparse.Panel {
	w := r.snWidth(k)
	out := sparse.NewPanel(w, r.nrhs)
	if keep {
		lo := r.p.M.SnBegin[k]
		for j := 0; j < r.nrhs; j++ {
			copy(out.Col(j), r.b.Col(j)[lo:lo+w])
		}
	}
	return out
}

// applyLBlock computes prod = L(I,K)·y(K) and accumulates it into lsum(I),
// returning the modeled FP seconds of the operation.
func (r *rankBase) applyLBlock(blk *snode.LBlock, k int, yk *sparse.Panel) float64 {
	w := r.snWidth(k)
	prod := sparse.NewPanel(len(blk.Rows), r.nrhs)
	sparse.GemmAdd(blk.Val, yk, prod)
	dst := r.getLsum(blk.I)
	base := r.p.M.SnBegin[blk.I]
	for j := 0; j < r.nrhs; j++ {
		dc := dst.Col(j)
		pc := prod.Col(j)
		for t, row := range blk.Rows {
			dc[row-base] += pc[t]
		}
	}
	return r.model.GemmTime(len(blk.Rows), w, r.nrhs)
}

// applyUBlock accumulates U(I,K)·x(K) into usum(I) and returns the modeled
// FP seconds.
func (r *rankBase) applyUBlock(ref dist.UBlockRef, k int, xk *sparse.Panel) float64 {
	blk := ref.Blk
	base := r.p.M.SnBegin[k]
	sub := sparse.NewPanel(len(blk.Cols), r.nrhs)
	for j := 0; j < r.nrhs; j++ {
		sc := sub.Col(j)
		xc := xk.Col(j)
		for t, c := range blk.Cols {
			sc[t] = xc[c-base]
		}
	}
	sparse.GemmAdd(blk.Val, sub, r.getUsum(ref.I))
	return r.model.GemmTime(blk.Val.Rows, len(blk.Cols), r.nrhs)
}

// diagSolveY computes y(K) = inv(L(K,K))·(rhs − lsum(K)); rhs is consumed.
func (r *rankBase) diagSolveY(k int, rhs *sparse.Panel) (*sparse.Panel, float64) {
	if s := r.lsum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	w := r.snWidth(k)
	yk := sparse.NewPanel(w, r.nrhs)
	sparse.GemmAdd(r.p.M.LDiagInv[k], rhs, yk)
	return yk, r.model.GemmTime(w, w, r.nrhs)
}

// diagSolveX computes x(K) = inv(U(K,K))·(y(K) − usum(K)).
func (r *rankBase) diagSolveX(k int) (*sparse.Panel, float64) {
	yk := r.y[k]
	if yk == nil {
		panic(fmt.Sprintf("trsv: rank %d solving x(%d) without y", r.rank, k))
	}
	rhs := yk.Clone()
	if s := r.usum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	w := r.snWidth(k)
	xk := sparse.NewPanel(w, r.nrhs)
	sparse.GemmAdd(r.p.M.UDiagInv[k], rhs, xk)
	return xk, r.model.GemmTime(w, w, r.nrhs)
}

// writeX stores x(K) into the global output panel.
func (r *rankBase) writeX(k int, xk *sparse.Panel) {
	lo := r.p.M.SnBegin[k]
	for j := 0; j < r.nrhs; j++ {
		copy(r.x.Col(j)[lo:lo+xk.Rows], xk.Col(j))
	}
}

// trailingZeros returns the number of trailing zero bits of z, capped at
// cap (grid 0 behaves as having cap trailing zeros).
func trailingZeros(z, cap int) int {
	if z == 0 {
		return cap
	}
	s := 0
	for z&1 == 0 {
		s++
		z >>= 1
	}
	return s
}
