// Package trsv implements the distributed sparse triangular solve
// algorithms of the paper on top of the message runtime:
//
//   - the proposed 3D SpTRSV (Alg. 1): one 2D L-solve over the whole
//     leaf-to-root path per grid, one inter-grid sparse allreduce (Alg. 2),
//     one 2D U-solve — with flat or binary communication trees (Alg. 3);
//   - the baseline 3D SpTRSV (Sao et al., ICS '19): level-by-level node
//     processing with O(log Pz) inter-grid exchanges and per-node-group
//     flat trees;
//   - GPU execution models for both the single-GPU-per-grid kernels
//     (Alg. 4) and the NVSHMEM multi-GPU kernels (Alg. 5).
//
// With Pz=1 the proposed algorithm reduces to the communication-optimized
// 2D solver of Liu et al. (CSC '18) and the baseline reduces to the classic
// 2D solver — the paper's two 2D reference points.
//
// The package is split into a plan layer and an execution layer. The plan
// layer (dist.Plan plus the per-rank geometry cached in rankCore) is
// immutable once a solver is built, so any number of solves may run against
// it concurrently. The execution layer is the per-solve mutable state —
// dependency counters, partial-sum panels, ready queues, deferred
// messages — grouped in solveState and recycled through a sync.Pool so that
// repeated solves reach a steady state with minimal allocation.
package trsv

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
	"sptrsv/internal/fault"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sched"
	"sptrsv/internal/snode"
	"sptrsv/internal/sparse"
)

// Message tags. Allreduce and Z-exchange tags carry the step in the payload.
const (
	tagYBcast      = iota + 1 // L-phase: y(K) down a broadcast tree
	tagLReduce                // L-phase: partial lsum(K) up a reduction tree
	tagARReduce               // sparse allreduce: reduce step (Alg. 2)
	tagARBcast                // sparse allreduce: broadcast step
	tagXBcast                 // U-phase: x(K) down a broadcast tree
	tagUReduce                // U-phase: partial usum(K) up a reduction tree
	tagZGatherL               // baseline: inter-grid lsum merge
	tagZBcastU                // baseline: inter-grid x broadcast
	tagGPUEvent               // GPU model: task completion self-event
	tagGPUPut                 // GPU model: one-sided put delivery
	tagNaiveARUp              // naive allreduce ablation: partial y to the owner grid
	tagNaiveARDown            // naive allreduce ablation: complete y back to a replica
	tagAgg                    // CommAggregated: coalesced per-destination 2D traffic
	tagElastic                // elastic mode: self-addressed staleness-deadline tick
)

// Compute span tags: labels for Ctx.ComputeT spans in the event trace (see
// runtime.Options.Trace). They share the tag namespace with the message
// tags above, so they start well clear of the message range.
const (
	TagDiagSolveL = 0x40 + iota // L-phase diagonal solve y(K)
	TagApplyL                   // L-phase off-diagonal block apply L(I,K)·y(K)
	TagDiagSolveU               // U-phase diagonal solve x(K)
	TagApplyU                   // U-phase off-diagonal block apply U(I,K)·x(K)
	TagARMerge                  // sparse-allreduce partial-sum merge
	TagGPUTaskL                 // GPU model: one L-phase task
	TagGPUTaskU                 // GPU model: one U-phase task
)

// TagName labels message and compute tags for trace export
// (runtime.Result.WriteTraceNamed). Unknown tags yield "" so the exporter
// falls back to numeric labels.
func TagName(tag int) string {
	if n, ok := runtime.LevelSweepTaskCount(tag); ok {
		return fmt.Sprintf("level-sweep(%d)", n)
	}
	switch tag {
	case tagYBcast:
		return "y-bcast"
	case tagLReduce:
		return "l-reduce"
	case tagARReduce:
		return "ar-reduce"
	case tagARBcast:
		return "ar-bcast"
	case tagXBcast:
		return "x-bcast"
	case tagUReduce:
		return "u-reduce"
	case tagZGatherL:
		return "z-gather-l"
	case tagZBcastU:
		return "z-bcast-u"
	case tagGPUEvent:
		return "gpu-event"
	case tagGPUPut:
		return "gpu-put"
	case tagNaiveARUp:
		return "naive-ar-up"
	case tagNaiveARDown:
		return "naive-ar-down"
	case tagAgg:
		return "agg"
	case tagElastic:
		return "elastic-tick"
	case TagDiagSolveL:
		return "diag-solve-L"
	case TagApplyL:
		return "apply-L"
	case TagDiagSolveU:
		return "diag-solve-U"
	case TagApplyU:
		return "apply-U"
	case TagARMerge:
		return "ar-merge"
	case TagGPUTaskL:
		return "gpu-task-L"
	case TagGPUTaskU:
		return "gpu-task-U"
	}
	return ""
}

// yMsg carries a solved subvector (y or x) for one supernode in wire form.
// The packed values are immutable after sending; receivers only read them.
type yMsg struct {
	K int
	W wirePanel
}

// sumMsg carries a packed partial sum for one supernode row. The receiver
// accumulates the wire entries into its own accumulator.
type sumMsg struct {
	K int
	W wirePanel
}

// vecBundle carries packed subvectors for many supernodes at once (the
// bundled buffers of the sparse allreduce and the baseline Z exchanges).
type vecBundle struct {
	Step int
	Ks   []int
	Ws   []wirePanel
}

// bytes models the bundle's wire size: one message envelope plus the full
// per-entry header and payload of every packed panel (see wire.go for the
// byte model).
func (b *vecBundle) bytes() int {
	n := wireEnvBytes
	for i := range b.Ws {
		n += b.Ws[i].wireBytes()
	}
	return n
}

// Backend selects how handlers execute.
type Backend interface {
	Run(n int, net runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error)
}

// SimBackend runs on the discrete-event engine (virtual time). Opts is
// forwarded to the engine (e.g. to enable event tracing).
type SimBackend struct{ Opts runtime.Options }

// Run implements Backend.
func (s SimBackend) Run(n int, net runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error) {
	e := runtime.NewEngine(n, net)
	e.Opts = s.Opts
	return e.Run(f)
}

// PoolBackend runs on real goroutines (wall-clock time). Tracing is enabled
// via Pool.Opts.
type PoolBackend struct{ Pool runtime.Pool }

// Run implements Backend.
func (p PoolBackend) Run(n int, _ runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error) {
	return p.Pool.Run(n, f)
}

// TraceArmer is implemented by the built-in backends: WithTrace returns a
// copy of the backend with per-rank event tracing armed at the given ring
// capacity (0 keeps runtime.DefaultTraceCap), the receiver's own options
// untouched. The serving layer uses it to arm tracing for exactly one
// request's solve against a shared solver; because the backends are
// values, the armed copy shares no mutable state with the original, and
// because the runtime allocates message IDs independently of the DES event
// order, an armed solve's virtual clock is bit-identical to an untraced
// one.
type TraceArmer interface{ WithTrace(cap int) Backend }

// WithTrace implements TraceArmer.
func (s SimBackend) WithTrace(cap int) Backend {
	s.Opts.Trace = true
	if cap > 0 {
		s.Opts.TraceCap = cap
	}
	return s
}

// WithTrace implements TraceArmer.
func (p PoolBackend) WithTrace(cap int) Backend {
	p.Pool.Opts.Trace = true
	if cap > 0 {
		p.Pool.Opts.TraceCap = cap
	}
	return p
}

// Marks used for the per-phase load-balance figures.
const (
	MarkLDone = "L_done"
	MarkZDone = "Z_done"
	MarkUDone = "U_done"
)

// packSend packs a panel for a singleton message and returns the wire form
// with its modeled message size (wire.go's one-entry-message model).
func (c *rankCore) packSend(p *sparse.Panel) (wirePanel, int) {
	w := packPanel(p, c.comm)
	return w, singleBytes(&w)
}

// ---- execution layer ----

// solveState is the per-solve mutable state of one rank handler: everything
// a solve writes to, for every algorithm family. States are recycled
// through statePool — maps keep their bucket storage and slices their
// backing arrays between solves, which is what makes repeated solves on one
// Solver nearly allocation-free in steady state. A state is owned by
// exactly one handler for the duration of one solve; release returns it.
type solveState struct {
	// b is the global RHS panel (read-only during the solve); x the global
	// output panel (each supernode written by exactly one rank).
	b, x *sparse.Panel
	nrhs int

	phase int

	// Per-supernode numeric state, keyed by global supernode index.
	lsum map[int]*sparse.Panel
	usum map[int]*sparse.Panel
	y    map[int]*sparse.Panel // subvectors at their diagonal rank
	xl   map[int]*sparse.Panel // solved x at the diagonal rank

	// Dependency tracking: working copies of the plan's read-only counter
	// templates, plus the ready queues of solvable diagonal rows.
	pendingL, pendingU   map[int]int
	lRecvLeft, uRecvLeft int
	readyY, readyX       []int
	xQueued              map[int]bool // enqueueX dedup guard

	// Messages that arrived ahead of the phase that can process them.
	deferred []runtime.Msg

	// Per-destination aggregation state (CommAggregated on the proposed
	// algorithm): aggOn enables buffering, aggBufs is indexed by 2D-local
	// destination rank, aggOrder lists destinations with pending entries in
	// first-touch order — the deterministic flush order.
	aggOn    bool
	aggBufs  []aggBuf
	aggOrder []int32

	// Baseline-3D stage state.
	lStage, uStage int
	lAwaitMerge    bool
	lRemaining     []int
	uRemaining     []int

	// GPU task state.
	fmod, bmod        map[int]int
	readyTasks        []gpuTask
	smFree, tasksLeft int

	// Scheduled-execution state. sched marks a state bound to a plan
	// schedule: working panels come from the arena and the ready-queue
	// drains run as level sweeps. dense additionally switches the
	// dependency counters to the flat slot-indexed copies of the schedule
	// templates below (algorithms whose counter templates live on the
	// schedule); counter keys without a slot fall back to the maps, whose
	// absent-key-reads-zero semantics the dense slices replicate exactly.
	sched, dense   bool
	arena          arena
	dpendL, dpendU []int32
	dfmod, dbmod   []int32
	// preY and preX hold diagonal solutions precomputed in parallel by a
	// level sweep on the pool backend, consumed by the serial send pass.
	preY, preX map[int]*sparse.Panel
	// owner is the pool this state returns to on release: the global
	// statePool for handler-path states, the per-rank schedule pool for
	// scheduled states (their arena capacity is plan-specific).
	owner *sync.Pool

	// Elastic-mode per-solve state (zero / nil on strict solves).
	// elArmed marks phases whose staleness-deadline tick has been armed;
	// staleL/staleU record (by schedule slot) the supernode rows whose L-
	// and U-solves consumed stale or missing inputs after a forced phase
	// closure. putSeen/putForced track multi-GPU one-sided puts: puts
	// already received versus puts synthesized as zero panels at a forcing
	// deadline (a late real put superseded by a synthesized one is
	// dropped, keeping the task count exact).
	elArmed                [3]bool
	staleL, staleU         *sched.StaleSet
	putSeenL, putSeenU     map[int]bool
	putForcedL, putForcedU map[int]bool

	// scratch backs the short-lived block products of scratchPanel.
	scratch sparse.Panel

	// counts tallies kernel and exchange activity for the metrics registry;
	// summed across ranks and published by SolveInto.
	counts solveCounts
}

func newSolveState() *solveState {
	return &solveState{
		lsum:     map[int]*sparse.Panel{},
		usum:     map[int]*sparse.Panel{},
		y:        map[int]*sparse.Panel{},
		xl:       map[int]*sparse.Panel{},
		pendingL: map[int]int{},
		pendingU: map[int]int{},
		xQueued:  map[int]bool{},
		fmod:     map[int]int{},
		bmod:     map[int]int{},
		preY:     map[int]*sparse.Panel{},
		preX:     map[int]*sparse.Panel{},
	}
}

var statePool = sync.Pool{New: func() any { return newSolveState() }}

// acquireState takes a recycled (already reset) state from the pool and
// binds it to one solve's global panels.
func acquireState(b, x *sparse.Panel) *solveState {
	st := statePool.Get().(*solveState)
	st.owner = &statePool
	st.b, st.x, st.nrhs = b, x, b.Cols
	return st
}

// release drops every reference the solve accumulated — panels travel
// between ranks, so a stale reference would pin another solve's memory —
// and returns the state to the pool.
func (st *solveState) release() {
	clear(st.lsum)
	clear(st.usum)
	clear(st.y)
	clear(st.xl)
	clear(st.pendingL)
	clear(st.pendingU)
	clear(st.xQueued)
	clear(st.fmod)
	clear(st.bmod)
	// Clear the full capacity, not just the length: drainDeferred's
	// compaction and the GPU ready-queue pops reslice these, so stale
	// elements (holding Data panels) can sit in the backing array beyond
	// len and would otherwise stay pinned while the state waits in the
	// pool.
	clear(st.deferred[:cap(st.deferred)])
	st.deferred = st.deferred[:0]
	clear(st.readyTasks[:cap(st.readyTasks)]) // gpuTask.put holds panels
	st.readyTasks = st.readyTasks[:0]
	for i := range st.aggBufs {
		st.aggBufs[i] = aggBuf{}
	}
	st.aggOrder = st.aggOrder[:0]
	st.aggOn = false
	st.readyY, st.readyX = st.readyY[:0], st.readyX[:0]
	st.lRemaining, st.uRemaining = st.lRemaining[:0], st.uRemaining[:0]
	clear(st.preY)
	clear(st.preX)
	st.dpendL, st.dpendU = st.dpendL[:0], st.dpendU[:0]
	st.dfmod, st.dbmod = st.dfmod[:0], st.dbmod[:0]
	st.sched, st.dense = false, false
	st.b, st.x = nil, nil
	st.nrhs, st.phase = 0, 0
	st.lRecvLeft, st.uRecvLeft = 0, 0
	st.lStage, st.uStage, st.lAwaitMerge = 0, 0, false
	st.smFree, st.tasksLeft = 0, 0
	st.elArmed = [3]bool{}
	st.staleL, st.staleU = nil, nil
	if st.putSeenL != nil {
		clear(st.putSeenL)
		clear(st.putSeenU)
		clear(st.putForcedL)
		clear(st.putForcedU)
	}
	st.counts = solveCounts{}
	st.owner.Put(st)
}

// enqueueY queues a diagonal row for the L-phase solve.
func (st *solveState) enqueueY(k int) { st.readyY = append(st.readyY, k) }

// enqueueX queues a diagonal row for the U-phase solve exactly once: both
// the phase-start seeding and the dependency counters can discover the same
// ready row.
func (st *solveState) enqueueX(k int) {
	if st.xQueued[k] {
		return
	}
	st.xQueued[k] = true
	st.readyX = append(st.readyX, k)
}

// scratchPanel returns a zeroed rows×cols panel backed by the state's
// reusable scratch buffer. It is valid only until the next scratchPanel
// call and must never escape the current handler step (be sent in a message
// or stored in a map) — callers copy out anything they keep.
func (st *solveState) scratchPanel(rows, cols int) *sparse.Panel {
	n := rows * cols
	if cap(st.scratch.Data) < n {
		st.scratch.Data = make([]float64, n)
	}
	st.scratch.Data = st.scratch.Data[:n]
	clear(st.scratch.Data)
	st.scratch.Rows, st.scratch.Cols = rows, cols
	return &st.scratch
}

// copyCounts refills dst from the plan's read-only counter template,
// reusing dst's bucket storage.
func copyCounts(dst, src map[int]int) {
	clear(dst)
	for k, v := range src {
		dst[k] = v
	}
}

// arena is the bump allocator behind the scheduled path's working panels
// (y/x subvectors, partial-sum accumulators, allreduce clones). One
// reservation per solve — sized by the schedule's per-rank bound — turns
// the O(supernodes) panel allocations of a solve into two slice reuses.
// Allocations beyond the reservation fall back to the heap, so the bound
// is a performance hint, never a correctness constraint. Panels handed out
// stay valid until the next reserve, matching the solve lifetime of the
// owning state.
type arena struct {
	data   []float64
	panels []sparse.Panel
	nd, np int
}

// reserve readies the arena for one solve needing at most the given floats
// and panel headers, growing the backing storage only when the demand
// exceeds every earlier solve's.
func (a *arena) reserve(floats, panels int) {
	if cap(a.data) < floats {
		a.data = make([]float64, floats)
	}
	if cap(a.panels) < panels {
		a.panels = make([]sparse.Panel, panels)
	}
	a.nd, a.np = 0, 0
}

// alloc returns a zeroed rows×cols panel from the reservation, or from the
// heap once the reservation is exhausted.
func (a *arena) alloc(rows, cols int) *sparse.Panel {
	n := rows * cols
	if a.np >= cap(a.panels) || a.nd+n > cap(a.data) {
		return sparse.NewPanel(rows, cols)
	}
	p := &a.panels[a.np]
	a.np++
	d := a.data[a.nd : a.nd+n : a.nd+n]
	a.nd += n
	clear(d)
	p.Rows, p.Cols, p.Data = rows, cols, d
	return p
}

// ---- shared rank scaffolding ----

// rankOps is the per-algorithm surface the shared scaffolding drives:
// message admission (phase gating) and processing.
type rankOps interface {
	accepts(m runtime.Msg) bool
	process(ctx *runtime.Ctx, m runtime.Msg)
}

// diagSolver is implemented by the CPU handlers that drive the shared
// ready-queue drains: solveY/solveX perform one diagonal solve plus its
// follow-up broadcasts and block applications. keepB reports the
// algorithm's RHS rule for supernode K (the proposed algorithm zeroes
// b(K) on grids that do not own K's node; the baseline always keeps it),
// which is what the parallel level-sweep precompute needs to reproduce a
// solveY's numerics off the handler goroutine.
type diagSolver interface {
	solveY(ctx *runtime.Ctx, k int)
	solveX(ctx *runtime.Ctx, k int)
	keepB(k int) bool
}

// rankCore holds one rank's read-only view of the plan — geometry, block
// lists, communication trees — plus the per-solve execution state and the
// state-machine scaffolding every algorithm shares: message deferral,
// ready-queue draining, and reduction-tree row contributions. The plan side
// is shared across concurrent solves and never written after NewSolver.
type rankCore struct {
	p     *dist.Plan
	model *machine.Model
	gp    *dist.GridPlan

	rank, z, row, col, r2d int

	// Precomputed read-only views shared with the plan.
	colL      map[int][]*snode.LBlock  // my blocks in column K (L)
	colU      map[int][]dist.UBlockRef // my blocks in column K (U): U(I, K)
	localL    map[int]int              // #my blocks in row K (L)
	localU    map[int]int              // #my blocks in row K (U)
	myDiagSns []int                    // supernodes whose diagonal rank is me

	// Scheduled execution (nil / zero on the handler path): this rank's
	// slice of the plan's level/DAG schedule and the work-stealing chunk
	// size for pool-backend level sweeps.
	sg    *sched.Grid
	sr    *sched.Rank
	chunk int

	// comm is the resolved wire-format mode of this solve (packPanel's
	// policy input); read-only after init.
	comm CommMode

	// el is the elastic-mode configuration (nil on strict solves): the
	// staleness bound, the grid schedule the forcing deadlines and stale
	// bookkeeping are derived from, and the lazily computed per-phase
	// deadlines. See elastic.go.
	el *elastic

	// st is this solve's mutable state, acquired in init and handed back to
	// the pool by releaseState once the run has quiesced.
	st *solveState
}

// defaultLevelChunk is the work-stealing chunk size of pool-backend level
// sweeps when SolveOpts.LevelChunk is zero: sweeps narrower than two
// chunks run serially.
const defaultLevelChunk = 8

// maxSweepWorkers caps the goroutines one rank's level sweep spawns — the
// pool already runs one goroutine per rank, so per-rank parallelism only
// pays on wide levels with idle cores.
const maxSweepWorkers = 4

func (c *rankCore) init(p *dist.Plan, model *machine.Model, rank int, b, x *sparse.Panel, opts SolveOpts) {
	c.p = p
	c.model = model
	c.rank = rank
	g := p.Layout.GridSize()
	c.z = rank / g
	c.r2d = rank % g
	c.row = c.r2d / p.Layout.Py
	c.col = c.r2d % p.Layout.Py
	c.gp = p.Grids[c.z]

	rd := c.gp.Ranks[c.r2d]
	c.colL = rd.ColL
	c.colU = rd.ColU
	c.localL = rd.LocalL
	c.localU = rd.LocalU
	c.myDiagSns = rd.MyDiagSns
	c.comm = opts.Comm.Resolve()

	if opts.Exec.Resolve() == ExecSched {
		s, err := sched.Of(p)
		if err != nil {
			// Unreachable from SolveIntoOpts, which derives the schedule
			// (with an error return) before constructing the factories.
			panic(&fault.ProtocolError{Rank: rank, Phase: "plan",
				Msg: fmt.Sprintf("schedule build failed: %v", err)})
		}
		c.sg = s.Grids[c.z]
		c.sr = c.sg.Ranks[c.r2d]
		c.chunk = opts.LevelChunk
		if c.chunk <= 0 {
			c.chunk = defaultLevelChunk
		}
	}

	if opts.Mode.Resolve() == ModeElastic && opts.Staleness > 0 {
		s, err := sched.Of(p)
		if err != nil {
			// Unreachable from SolveIntoOpts, which derives the schedule
			// before constructing the factories in elastic mode.
			panic(&fault.ProtocolError{Rank: rank, Phase: "plan",
				Msg: fmt.Sprintf("schedule build failed: %v", err)})
		}
		c.el = &elastic{staleness: opts.Staleness, sg: s.Grids[c.z]}
	}

	if c.sr != nil {
		// Scheduled states live in the schedule's per-rank pool: their
		// arena reservation is plan-specific, so tying their lifetime to
		// the plan keeps the reservation exact across solves.
		var st *solveState
		if v := c.sr.Pool.Get(); v != nil {
			st = v.(*solveState)
		} else {
			st = newSolveState()
		}
		st.owner = &c.sr.Pool
		st.b, st.x, st.nrhs = b, x, b.Cols
		st.sched = true
		st.arena.reserve(c.sr.ArenaPerRHS*st.nrhs, c.sr.Panels)
		c.st = st
		return
	}
	c.st = acquireState(b, x)
}

// slot maps a supernode to its schedule slot (scheduled path only); -1
// off-path.
func (c *rankCore) slot(k int) int32 { return c.sg.SlotOf[k] }

// releaseState returns the per-solve state to the pool. Solve calls it
// after the backend run has fully completed, so no handler code can still
// be touching the state.
func (c *rankCore) releaseState() {
	if c.st != nil {
		c.st.release()
		c.st = nil
	}
}

// proposedPhase names the proposed algorithm's phases (shared by the GPU
// variants) for diagnostics.
func proposedPhase(p int) string {
	switch p {
	case 0:
		return "L-solve"
	case 1:
		return "allreduce"
	case 2:
		return "U-solve"
	case 3:
		return "done"
	}
	return fmt.Sprintf("phase-%d", p)
}

// baselinePhase names the baseline algorithm's phases for diagnostics.
func baselinePhase(p int) string {
	switch p {
	case 0:
		return "L-solve"
	case 1:
		return "Z-exchange"
	case 2:
		return "U-solve"
	case 3:
		return "done"
	}
	return fmt.Sprintf("phase-%d", p)
}

// WaitState implements runtime.WaitStater: when a solve stalls or
// deadlocks, the diagnostics embed this snapshot of the rank's progress —
// phase, outstanding receive counters, queued work — so the error says what
// the algorithm was waiting for, not just that it waited.
func (c *rankCore) WaitState() string {
	st := c.st
	if st == nil {
		return "state released"
	}
	return fmt.Sprintf("phase=%d lRecvLeft=%d uRecvLeft=%d readyY=%d readyX=%d deferred=%d",
		st.phase, st.lRecvLeft, st.uRecvLeft, len(st.readyY), len(st.readyX), len(st.deferred))
}

// dispatch implements the deferral protocol shared by every handler:
// process the message if the current phase admits it, otherwise buffer it;
// then drain whatever buffered messages the processing unlocked.
//
// Elastic-mode deadline ticks are intercepted before the admission check:
// a live tick (its phase not yet closed) forces the phase with whatever
// inputs are on hand, then re-offers the deferred messages the phase
// transitions unlocked. Stale ticks are dropped (the DES engine already
// filters them via TickLive; the pool delivers all timers).
func (c *rankCore) dispatch(ctx *runtime.Ctx, m runtime.Msg, ops rankOps) {
	if m.Tag == tagElastic {
		ph, _ := m.Data.(int)
		st := c.st
		if c.el != nil && st.phase < 3 && st.phase <= ph {
			st.counts.forcedTicks++
			if f, ok := ops.(elasticForcer); ok {
				f.forceStale(ctx, ph)
				c.drainDeferred(ctx, ops)
			}
		}
		return
	}
	if !ops.accepts(m) {
		c.st.deferred = append(c.st.deferred, m)
		return
	}
	ops.process(ctx, m)
	c.drainDeferred(ctx, ops)
}

// drainDeferred re-offers buffered messages until none is acceptable;
// processing one message can unlock others (e.g. a phase transition).
//
// Each round is a single in-place, order-preserving compaction pass:
// acceptable messages are processed as the scan reaches them, the rest
// slide down to fill the gaps, and the vacated tail is zeroed so no stale
// Msg (whose Data holds panels) lingers in the backing array beyond len.
// A round that processed anything may have unlocked earlier survivors, so
// rounds repeat until one processes nothing — O(rounds·n) instead of the
// restart-from-zero scan's O(n²) per unlocked message.
//
// dispatch is the only appender to st.deferred and process never calls
// back into dispatch, so the slice does not grow mid-pass.
func (c *rankCore) drainDeferred(ctx *runtime.Ctx, ops rankOps) {
	for {
		d := c.st.deferred
		w := 0
		for r := 0; r < len(d); r++ {
			m := d[r]
			if ops.accepts(m) {
				ops.process(ctx, m)
				continue
			}
			d[w] = m
			w++
		}
		progressed := w < len(d)
		clear(d[w:len(d)])
		c.st.deferred = d[:w]
		if !progressed {
			return
		}
	}
}

// drainReadyY solves queued L-phase diagonal rows; solving one row can
// locally unlock further rows, so it loops until the queue is quiet.
//
// On the scheduled path the queue is consumed in level sweeps: everything
// ready now is one wave (a level of the dynamic wavefront — the static
// schedule's levels refined by actual message arrivals), tasks a wave
// unlocks form the next. Tasks still run in exactly the FIFO order of the
// handler path's one-at-a-time pops — a wave is a relabeling of that
// order, not a reordering — which is what keeps send order, DES clocks,
// and floating-point accumulation bit-identical. Each wave is recorded as
// one trace span (Ctx.Span, no time charge), and on the pool backend a
// wide wave's independent diagonal solves are precomputed on worker
// goroutines before the serial send pass.
func (c *rankCore) drainReadyY(ctx *runtime.Ctx, s diagSolver) {
	st := c.st
	if !st.sched {
		for len(st.readyY) > 0 {
			k := st.readyY[0]
			st.readyY = st.readyY[1:]
			s.solveY(ctx, k)
		}
		return
	}
	for len(st.readyY) > 0 {
		n := len(st.readyY)
		start := ctx.Now()
		c.precomputeWave(ctx, s, st.readyY[:n], false)
		for i := 0; i < n; i++ {
			s.solveY(ctx, st.readyY[i])
		}
		st.readyY = st.readyY[n:]
		st.counts.sweeps++
		st.counts.sweepTasks += n
		ctx.Span(runtime.LevelSweepTag(n), start, ctx.Now()-start)
	}
}

// drainReadyX mirrors drainReadyY for the U phase.
func (c *rankCore) drainReadyX(ctx *runtime.Ctx, s diagSolver) {
	st := c.st
	if !st.sched {
		for len(st.readyX) > 0 {
			k := st.readyX[0]
			st.readyX = st.readyX[1:]
			s.solveX(ctx, k)
		}
		return
	}
	for len(st.readyX) > 0 {
		n := len(st.readyX)
		start := ctx.Now()
		c.precomputeWave(ctx, s, st.readyX[:n], true)
		for i := 0; i < n; i++ {
			s.solveX(ctx, st.readyX[i])
		}
		st.readyX = st.readyX[n:]
		st.counts.sweeps++
		st.counts.sweepTasks += n
		ctx.Span(runtime.LevelSweepTag(n), start, ctx.Now()-start)
	}
}

// precomputeWave runs a wave's diagonal-solve numerics on worker
// goroutines, chunked work-stealing style (workers grab fixed-size chunks
// off a shared counter). Pool backend only: the DES backend's clock
// charges are serial by construction, and there the sweep is pure
// bookkeeping anyway. Safe because every supernode in the wave has all
// its contributions in (its pending counter hit zero), the inputs (b,
// diagonal inverses, accumulated partial sums) are no longer written, and
// each task writes only its own result slot; the arithmetic per task is
// instruction-identical to the serial kernel, so the solution stays
// bit-exact regardless of worker interleaving. The serial pass that
// follows consumes the results in wave order, so message order is
// untouched.
func (c *rankCore) precomputeWave(ctx *runtime.Ctx, s diagSolver, wave []int, uPhase bool) {
	chunk := c.chunk
	if ctx.Virtual() || len(wave) < 2*chunk || goruntime.GOMAXPROCS(0) < 2 {
		return
	}
	res := make([]*sparse.Panel, len(wave))
	nchunks := (len(wave) + chunk - 1) / chunk
	workers := goruntime.GOMAXPROCS(0)
	if workers > nchunks {
		workers = nchunks
	}
	if workers > maxSweepWorkers {
		workers = maxSweepWorkers
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []float64 // per-worker rhs scratch
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				hi := min((ci+1)*chunk, len(wave))
				for i := ci * chunk; i < hi; i++ {
					if uPhase {
						res[i] = c.precomputeX(wave[i], &buf)
					} else {
						res[i] = c.precomputeY(wave[i], s.keepB(wave[i]), &buf)
					}
				}
			}
		}()
	}
	wg.Wait()
	pre := c.st.preY
	if uPhase {
		pre = c.st.preX
	}
	for i, k := range wave {
		if res[i] != nil {
			pre[k] = res[i]
		}
	}
}

// precomputeY replicates diagSolveY's arithmetic off the handler
// goroutine: rhs per the algorithm's keep rule, minus lsum(K), times the
// diagonal inverse. It allocates from the heap, not the arena (bump
// allocation is single-threaded), and leaves the kernel tallies to the
// consuming solveYPanel so counters stay single-writer.
func (c *rankCore) precomputeY(k int, keep bool, buf *[]float64) *sparse.Panel {
	w := c.snWidth(k)
	n := c.st.nrhs
	if cap(*buf) < w*n {
		*buf = make([]float64, w*n)
	}
	rhs := &sparse.Panel{Rows: w, Cols: n, Data: (*buf)[:w*n]}
	clear(rhs.Data)
	if keep {
		lo := c.p.M.SnBegin[k]
		for j := 0; j < n; j++ {
			copy(rhs.Col(j), c.st.b.Col(j)[lo:lo+w])
		}
	}
	if s := c.st.lsum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	yk := sparse.NewPanel(w, n)
	sparse.GemmAdd(c.p.M.LDiagInv[k], rhs, yk)
	return yk
}

// precomputeX mirrors precomputeY for diagSolveX. A missing y(K) returns
// nil so the serial path raises its usual protocol diagnostic.
func (c *rankCore) precomputeX(k int, buf *[]float64) *sparse.Panel {
	yk := c.st.y[k]
	if yk == nil {
		return nil
	}
	w := c.snWidth(k)
	n := c.st.nrhs
	if cap(*buf) < w*n {
		*buf = make([]float64, w*n)
	}
	rhs := &sparse.Panel{Rows: w, Cols: n, Data: (*buf)[:w*n]}
	copy(rhs.Data, yk.Data)
	if s := c.st.usum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	xk := sparse.NewPanel(w, n)
	sparse.GemmAdd(c.p.M.UDiagInv[k], rhs, xk)
	return xk
}

// solveYPanel produces y(K) with the modeled seconds of its diagonal
// solve: from the wave precompute when one is stashed (same numerics,
// already run), else through the shared serial kernel.
func (c *rankCore) solveYPanel(k int, keep bool) (*sparse.Panel, float64) {
	if len(c.st.preY) > 0 {
		if yk := c.st.preY[k]; yk != nil {
			delete(c.st.preY, k)
			c.st.counts.diagY++
			w := c.snWidth(k)
			return yk, c.model.GemmTime(w, w, c.st.nrhs)
		}
	}
	return c.diagSolveY(k, c.rhsFor(k, keep))
}

// solveXPanel mirrors solveYPanel for the U phase.
func (c *rankCore) solveXPanel(k int) (*sparse.Panel, float64) {
	if len(c.st.preX) > 0 {
		if xk := c.st.preX[k]; xk != nil {
			delete(c.st.preX, k)
			c.st.counts.diagX++
			w := c.snWidth(k)
			return xk, c.model.GemmTime(w, w, c.st.nrhs)
		}
	}
	return c.diagSolveX(k)
}

// ---- dependency-counter accessors ----
//
// The scheduled path keeps its counters in flat slot-indexed slices copied
// from the schedule templates (dense == true); the handler path, and
// scheduled algorithms whose counter templates do not live on the schedule
// (baseline, multi-GPU), stay on the maps. Keys without a schedule slot
// always fall back to the maps, and a dense decrement of an untouched slot
// reaching −1 matches the map's absent-key-decrement semantics exactly.

// decPendingL decrements row K's outstanding L-contribution count and
// returns the new value.
func (c *rankCore) decPendingL(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dpendL[s]--
			return int(c.st.dpendL[s])
		}
	}
	c.st.pendingL[k]--
	return c.st.pendingL[k]
}

// decPendingU mirrors decPendingL for the U phase.
func (c *rankCore) decPendingU(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dpendU[s]--
			return int(c.st.dpendU[s])
		}
	}
	c.st.pendingU[k]--
	return c.st.pendingU[k]
}

// pendingLOf reads row K's outstanding L-contribution count.
func (c *rankCore) pendingLOf(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			return int(c.st.dpendL[s])
		}
	}
	return c.st.pendingL[k]
}

// pendingUOf mirrors pendingLOf for the U phase.
func (c *rankCore) pendingUOf(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			return int(c.st.dpendU[s])
		}
	}
	return c.st.pendingU[k]
}

// decFmod decrements the GPU model's forward-dependency counter for row K
// and returns the new value.
func (c *rankCore) decFmod(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dfmod[s]--
			return int(c.st.dfmod[s])
		}
	}
	c.st.fmod[k]--
	return c.st.fmod[k]
}

// decBmod mirrors decFmod for the backward (U) counters.
func (c *rankCore) decBmod(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dbmod[s]--
			return int(c.st.dbmod[s])
		}
	}
	c.st.bmod[k]--
	return c.st.bmod[k]
}

// fmodOf reads row K's forward-dependency counter.
func (c *rankCore) fmodOf(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			return int(c.st.dfmod[s])
		}
	}
	return c.st.fmod[k]
}

// bmodOf mirrors fmodOf for the backward counters.
func (c *rankCore) bmodOf(k int) int {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			return int(c.st.dbmod[s])
		}
	}
	return c.st.bmod[k]
}

// lContribution records one lsum contribution for row K (a local GEMV or a
// reduction-tree child message) under the given reduction tree and fires
// the follow-up when the row completes: enqueue the diagonal solve at the
// tree root, forward the partial sum to the parent elsewhere.
func (c *rankCore) lContribution(ctx *runtime.Ctx, k int, tree *ctree.Tree) {
	st := c.st
	if c.decPendingL(k) != 0 {
		return
	}
	if tree.Root() == c.r2d {
		st.enqueueY(k)
		return
	}
	s := c.getLsum(k)
	w, bytes := c.packSend(s)
	parent := tree.Parent(c.r2d)
	if st.aggOn {
		c.aggAdd(parent, aggKindReduce, k, w)
	} else {
		ctx.Send(runtime.Msg{
			Dst: c.p.GlobalRank(c.z, parent), Tag: tagLReduce, Cat: runtime.CatXY,
			Data: &sumMsg{K: k, W: w}, Bytes: bytes,
		})
	}
	delete(st.lsum, k) // ownership transferred
}

// uContribution mirrors lContribution for usum rows.
func (c *rankCore) uContribution(ctx *runtime.Ctx, k int, tree *ctree.Tree) {
	st := c.st
	if c.decPendingU(k) != 0 {
		return
	}
	if tree.Root() == c.r2d {
		st.enqueueX(k)
		return
	}
	s := c.getUsum(k)
	w, bytes := c.packSend(s)
	parent := tree.Parent(c.r2d)
	if st.aggOn {
		c.aggAdd(parent, aggKindReduce, k, w)
	} else {
		ctx.Send(runtime.Msg{
			Dst: c.p.GlobalRank(c.z, parent), Tag: tagUReduce, Cat: runtime.CatXY,
			Data: &sumMsg{K: k, W: w}, Bytes: bytes,
		})
	}
	delete(st.usum, k)
}

// ---- shared numeric kernels ----

// snWidth returns the width of supernode k.
func (c *rankCore) snWidth(k int) int { return c.p.M.SnWidth(k) }

// newPanel returns a zeroed rows×nrhs working panel: from the solve's
// arena reservation on the scheduled path, from the heap on the handler
// path. Either way the panel outlives the handler step (it may be stored
// in a per-supernode map or sent to a peer) and stays valid until the
// owning state is released.
func (c *rankCore) newPanel(rows int) *sparse.Panel {
	if c.st.sched {
		return c.st.arena.alloc(rows, c.st.nrhs)
	}
	return sparse.NewPanel(rows, c.st.nrhs)
}

// clonePanel copies a panel into solve-local storage (arena-backed on the
// scheduled path) — the allreduce helpers use it where they must detach a
// subvector from a panel other ranks may still read.
func (c *rankCore) clonePanel(p *sparse.Panel) *sparse.Panel {
	if !c.st.sched {
		return p.Clone()
	}
	out := c.st.arena.alloc(p.Rows, p.Cols)
	copy(out.Data, p.Data)
	return out
}

// getLsum returns (allocating if needed) the lsum accumulator for row k.
func (c *rankCore) getLsum(k int) *sparse.Panel {
	s := c.st.lsum[k]
	if s == nil {
		s = c.newPanel(c.snWidth(k))
		c.st.lsum[k] = s
	}
	return s
}

// getUsum returns the usum accumulator for row k.
func (c *rankCore) getUsum(k int) *sparse.Panel {
	s := c.st.usum[k]
	if s == nil {
		s = c.newPanel(c.snWidth(k))
		c.st.usum[k] = s
	}
	return s
}

// rhsFor builds the diagonal rank's local copy of b(K) in the scratch
// panel, honoring the proposed algorithm's zeroing rule (Alg. 1 lines
// 4–10): when keep is false the subvector is zero unless this grid owns the
// node. The result is consumed by diagSolveY before the next scratch use.
func (c *rankCore) rhsFor(k int, keep bool) *sparse.Panel {
	w := c.snWidth(k)
	out := c.st.scratchPanel(w, c.st.nrhs)
	if keep {
		lo := c.p.M.SnBegin[k]
		for j := 0; j < c.st.nrhs; j++ {
			copy(out.Col(j), c.st.b.Col(j)[lo:lo+w])
		}
	}
	return out
}

// applyLBlock computes prod = L(I,K)·y(K) and accumulates it into lsum(I),
// returning the modeled FP seconds of the operation.
func (c *rankCore) applyLBlock(blk *snode.LBlock, k int, yk *sparse.Panel) float64 {
	c.st.counts.lBlocks++
	w := c.snWidth(k)
	prod := c.st.scratchPanel(len(blk.Rows), c.st.nrhs)
	sparse.GemmAdd(blk.Val, yk, prod)
	dst := c.getLsum(blk.I)
	base := c.p.M.SnBegin[blk.I]
	for j := 0; j < c.st.nrhs; j++ {
		dc := dst.Col(j)
		pc := prod.Col(j)
		for t, row := range blk.Rows {
			dc[row-base] += pc[t]
		}
	}
	return c.model.GemmTime(len(blk.Rows), w, c.st.nrhs)
}

// applyUBlock accumulates U(I,K)·x(K) into usum(I) and returns the modeled
// FP seconds.
func (c *rankCore) applyUBlock(ref dist.UBlockRef, k int, xk *sparse.Panel) float64 {
	c.st.counts.uBlocks++
	blk := ref.Blk
	base := c.p.M.SnBegin[k]
	sub := c.st.scratchPanel(len(blk.Cols), c.st.nrhs)
	for j := 0; j < c.st.nrhs; j++ {
		sc := sub.Col(j)
		xc := xk.Col(j)
		for t, col := range blk.Cols {
			sc[t] = xc[col-base]
		}
	}
	sparse.GemmAdd(blk.Val, sub, c.getUsum(ref.I))
	return c.model.GemmTime(blk.Val.Rows, len(blk.Cols), c.st.nrhs)
}

// diagSolveY computes y(K) = inv(L(K,K))·(rhs − lsum(K)); rhs is consumed.
func (c *rankCore) diagSolveY(k int, rhs *sparse.Panel) (*sparse.Panel, float64) {
	c.st.counts.diagY++
	if s := c.st.lsum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	w := c.snWidth(k)
	yk := c.newPanel(w)
	sparse.GemmAdd(c.p.M.LDiagInv[k], rhs, yk)
	return yk, c.model.GemmTime(w, w, c.st.nrhs)
}

// diagSolveX computes x(K) = inv(U(K,K))·(y(K) − usum(K)).
func (c *rankCore) diagSolveX(k int) (*sparse.Panel, float64) {
	c.st.counts.diagX++
	yk := c.st.y[k]
	if yk == nil {
		panic(&fault.ProtocolError{Rank: c.rank, Phase: "U-solve",
			Msg: fmt.Sprintf("solving x(%d) without y(%d)", k, k)})
	}
	w := c.snWidth(k)
	rhs := c.st.scratchPanel(w, c.st.nrhs)
	copy(rhs.Data, yk.Data)
	if s := c.st.usum[k]; s != nil {
		for i, v := range s.Data {
			rhs.Data[i] -= v
		}
	}
	xk := c.newPanel(w)
	sparse.GemmAdd(c.p.M.UDiagInv[k], rhs, xk)
	return xk, c.model.GemmTime(w, w, c.st.nrhs)
}

// writeX stores x(K) into the global output panel.
func (c *rankCore) writeX(k int, xk *sparse.Panel) {
	lo := c.p.M.SnBegin[k]
	for j := 0; j < c.st.nrhs; j++ {
		copy(c.st.x.Col(j)[lo:lo+xk.Rows], xk.Col(j))
	}
}

// trailingZeros returns the number of trailing zero bits of z, capped at
// cap (grid 0 behaves as having cap trailing zeros).
func trailingZeros(z, cap int) int {
	if z == 0 {
		return cap
	}
	s := 0
	for z&1 == 0 {
		s++
		z >>= 1
	}
	return s
}
