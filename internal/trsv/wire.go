package trsv

import (
	"fmt"
	"math"

	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// The sparse wire format. Every inter-rank solution/partial-sum message
// ships its panels as wirePanel entries instead of raw dense panels, so
// the modeled byte counts (and the simulated network charges derived from
// them) reflect what a packed MPI exchange would actually move — the
// SpComm3D direction of ROADMAP item 3.
//
// The byte model is explicit and uniform:
//
//	message  = wireEnvBytes                      (dst/tag/count envelope)
//	         + Σ per entry: wireHdrBytes         (k, rows, cols, effcols)
//	                      + 4·len(RowIdx)        (packed row indices)
//	                      + 8·len(Vals)          (float64 payload)
//
// A bundle of N panels therefore never models fewer bytes than N singleton
// messages minus the real aggregation savings ((N−1) envelopes): the
// per-entry header is charged per panel, not per message — the accounting
// bug this layer replaced charged one flat header per bundle.

const (
	// wireEnvBytes is the fixed per-message envelope (source, tag, entry
	// count — the MPI envelope analog).
	wireEnvBytes = 16
	// wireHdrBytes is the per-entry header: supernode index plus the
	// (rows, cols, effcols, nz) dimensions needed to unpack it.
	wireHdrBytes = 16
	// wireIdxBytes is the cost of one packed row index.
	wireIdxBytes = 4
)

// wirePanel is one supernode subvector in wire form. Three representations
// share the struct:
//
//   - dense:     RowIdx == nil, Vals holds Rows×EffCols values column-major
//     (EffCols < Cols drops trailing all-zero RHS columns — the
//     zero-run suppression);
//   - indexed:   RowIdx lists the nonzero rows ascending and Vals holds
//     len(RowIdx)×EffCols values column-major (Vals[j·nz+i] is
//     row RowIdx[i] of column j);
//   - empty:     EffCols == 0, no indices, no values.
//
// "Nonzero" means the IEEE-754 bit pattern is nonzero: −0.0 ships as a
// value, +0.0 is suppressed, so unpacking reconstructs every shipped row
// bit-for-bit. In the full-density dense case Vals aliases the source
// panel's storage — sending a wirePanel transfers read access exactly like
// sending the panel itself did.
type wirePanel struct {
	Rows, Cols int
	EffCols    int
	RowIdx     []int32
	Vals       []float64
}

// wireBytes is the modeled wire size of the entry, header included.
func (w *wirePanel) wireBytes() int {
	return wireHdrBytes + wireIdxBytes*len(w.RowIdx) + 8*len(w.Vals)
}

// singleBytes is the modeled size of a message carrying exactly one entry
// (identical to a one-entry bundle, keeping singletons and bundles on one
// scale).
func singleBytes(w *wirePanel) int { return wireEnvBytes + w.wireBytes() }

// packPanel converts a panel to wire form. Dense mode reproduces the
// pre-packing wire model (full dense shipment); packed mode suppresses
// trailing all-zero columns, then chooses between the dense and the
// indexed representation by modeled size. The input panel must not be
// written while the wire form is in flight (Vals may alias it).
func packPanel(p *sparse.Panel, mode CommMode) wirePanel {
	if mode.Resolve() == CommDense {
		return wirePanel{Rows: p.Rows, Cols: p.Cols, EffCols: p.Cols, Vals: p.Data}
	}
	eff := p.Cols
	for eff > 0 && allZero(p.Col(eff-1)) {
		eff--
	}
	if eff == 0 {
		return wirePanel{Rows: p.Rows, Cols: p.Cols}
	}
	// Rows that are zero across every effective column can be indexed away
	// when the index overhead beats the dense payload.
	nz := 0
	for r := 0; r < p.Rows; r++ {
		if rowNonZero(p, r, eff) {
			nz++
		}
	}
	denseSize := 8 * p.Rows * eff
	idxSize := wireIdxBytes*nz + 8*nz*eff
	if nz == p.Rows || idxSize >= denseSize {
		if eff == p.Cols {
			return wirePanel{Rows: p.Rows, Cols: p.Cols, EffCols: eff, Vals: p.Data}
		}
		return wirePanel{Rows: p.Rows, Cols: p.Cols, EffCols: eff, Vals: p.Data[:p.Rows*eff]}
	}
	idx := make([]int32, 0, nz)
	for r := 0; r < p.Rows; r++ {
		if rowNonZero(p, r, eff) {
			idx = append(idx, int32(r))
		}
	}
	vals := make([]float64, nz*eff)
	for j := 0; j < eff; j++ {
		col := p.Col(j)
		out := vals[j*nz : (j+1)*nz]
		for i, r := range idx {
			out[i] = col[r]
		}
	}
	return wirePanel{Rows: p.Rows, Cols: p.Cols, EffCols: eff, RowIdx: idx, Vals: vals}
}

// allZero reports whether every element of v has a zero bit pattern.
func allZero(v []float64) bool {
	for _, x := range v {
		if math.Float64bits(x) != 0 {
			return false
		}
	}
	return true
}

// rowNonZero reports whether row r has a nonzero bit pattern in any of the
// first eff columns.
func rowNonZero(p *sparse.Panel, r, eff int) bool {
	for j := 0; j < eff; j++ {
		if math.Float64bits(p.Data[j*p.Rows+r]) != 0 {
			return true
		}
	}
	return false
}

// unpackPanel reconstructs the full Rows×Cols panel from wire form. The
// full-density dense case aliases Vals (zero copy — the receiver gets read
// access to the sender's panel, exactly the pre-packing semantics); every
// other representation scatters into a fresh zeroed panel (arena-backed on
// the scheduled path). Reconstruction is bit-exact: suppressed entries
// were +0.0 by bit pattern, and a zeroed panel holds +0.0.
func (c *rankCore) unpackPanel(w *wirePanel) *sparse.Panel {
	if w.RowIdx == nil && w.EffCols == w.Cols {
		return &sparse.Panel{Rows: w.Rows, Cols: w.Cols, Data: w.Vals}
	}
	p := c.newPanelCols(w.Rows, w.Cols)
	scatterWire(p, w)
	return p
}

// scatterWire writes the wire entries into p (which must be zeroed at the
// target positions).
func scatterWire(p *sparse.Panel, w *wirePanel) {
	if w.RowIdx == nil {
		copy(p.Data, w.Vals)
		return
	}
	nz := len(w.RowIdx)
	for j := 0; j < w.EffCols; j++ {
		col := p.Col(j)
		vals := w.Vals[j*nz : (j+1)*nz]
		for i, r := range w.RowIdx {
			col[r] = vals[i]
		}
	}
}

// addWire accumulates the wire entries into dst (dst.Rows×dst.Cols must
// match the entry's logical shape). Suppressed entries are +0.0 and are
// skipped — see DESIGN.md §13 for the one IEEE corner (a −0.0 accumulator
// kept where a dense add would have produced +0.0) this can differ in.
func addWire(dst *sparse.Panel, w *wirePanel) {
	if dst.Rows != w.Rows || dst.Cols != w.Cols {
		panic(fmt.Sprintf("trsv: addWire shape mismatch: dst %dx%d, wire %dx%d",
			dst.Rows, dst.Cols, w.Rows, w.Cols))
	}
	if w.RowIdx == nil {
		for i, v := range w.Vals {
			dst.Data[i] += v
		}
		return
	}
	nz := len(w.RowIdx)
	for j := 0; j < w.EffCols; j++ {
		col := dst.Col(j)
		vals := w.Vals[j*nz : (j+1)*nz]
		for i, r := range w.RowIdx {
			col[r] += vals[i]
		}
	}
}

// newPanelCols is newPanel with an explicit column count (unpacking may
// run before st.nrhs panels of the solve's width exist; the shapes always
// agree in practice, but the wire header is authoritative).
func (c *rankCore) newPanelCols(rows, cols int) *sparse.Panel {
	if c.st.sched {
		return c.st.arena.alloc(rows, cols)
	}
	return sparse.NewPanel(rows, cols)
}

// ---- communication modes ----

// CommMode selects the wire format and message shaping of a solve's
// inter-rank traffic.
type CommMode int

const (
	// CommAuto picks the default mode (currently CommPacked).
	CommAuto CommMode = iota
	// CommPacked ships index+value packed panels with trailing-zero-column
	// suppression: bit-exact reconstruction, fewer modeled bytes, identical
	// message counts.
	CommPacked
	// CommDense ships every panel fully dense — the pre-packing wire model,
	// kept selectable as the byte-accounting reference.
	CommDense
	// CommAggregated is CommPacked plus per-destination coalescing in the
	// proposed algorithm's 2D phases: all broadcast fan-outs and reduction
	// contributions one rank emits to the same destination within one
	// handler activation ride a single packed message. Fewer, larger
	// messages; solutions agree with CommPacked up to floating-point
	// summation order. Algorithms without the proposed 2D phases (baseline,
	// GPU) run it as CommPacked.
	CommAggregated
)

func (m CommMode) String() string {
	switch m {
	case CommAuto:
		return "auto"
	case CommPacked:
		return "packed"
	case CommDense:
		return "dense"
	case CommAggregated:
		return "aggregated"
	}
	return fmt.Sprintf("CommMode(%d)", int(m))
}

// Resolve maps CommAuto to the concrete default mode.
func (m CommMode) Resolve() CommMode {
	if m == CommAuto {
		return CommPacked
	}
	return m
}

// Valid reports whether m is a known mode.
func (m CommMode) Valid() bool {
	switch m {
	case CommAuto, CommPacked, CommDense, CommAggregated:
		return true
	}
	return false
}

// ---- per-destination aggregation ----

// Entry kinds of an aggregated message, in the vocabulary of the proposed
// algorithm's 2D phases.
const (
	aggKindBcast  = byte(0) // a y/x broadcast hop (the yMsg analog)
	aggKindReduce = byte(1) // a partial-sum reduction hop (the sumMsg analog)
)

// aggMsg coalesces one sender's same-phase traffic to one destination:
// broadcast hops and reduction contributions interleaved in send order.
// Phase gates admission exactly like the singleton tags it replaces.
type aggMsg struct {
	Phase int
	Ks    []int
	Kinds []byte
	Ws    []wirePanel
}

func (b *aggMsg) bytes() int {
	n := wireEnvBytes
	for i := range b.Ws {
		n += b.Ws[i].wireBytes()
	}
	return n
}

// aggBuf accumulates one destination's pending entries between flushes.
type aggBuf struct {
	phase int
	ks    []int
	kinds []byte
	ws    []wirePanel
}

// aggAdd buffers one entry for 2D-local destination dst2d, stamping the
// buffer with the phase of its first entry (a flush can run after the
// phase advanced).
func (c *rankCore) aggAdd(dst2d int, kind byte, k int, w wirePanel) {
	st := c.st
	b := &st.aggBufs[dst2d]
	if len(b.ks) == 0 {
		b.phase = st.phase
		st.aggOrder = append(st.aggOrder, int32(dst2d))
	}
	b.ks = append(b.ks, k)
	b.kinds = append(b.kinds, kind)
	b.ws = append(b.ws, w)
}

// flushAgg emits every pending aggregation buffer, one packed message per
// destination in first-touch order, and resets the buffers for the next
// activation. The buffered slices are handed to the message; the buffer
// starts fresh so in-flight messages are never mutated.
func (c *rankCore) flushAgg(ctx *runtime.Ctx) {
	st := c.st
	for _, dst2d := range st.aggOrder {
		b := &st.aggBufs[dst2d]
		m := &aggMsg{Phase: b.phase, Ks: b.ks, Kinds: b.kinds, Ws: b.ws}
		b.ks, b.kinds, b.ws = nil, nil, nil
		ctx.Send(runtime.Msg{
			Dst: c.p.GlobalRank(c.z, int(dst2d)), Tag: tagAgg, Cat: runtime.CatXY,
			Data: m, Bytes: m.bytes(),
		})
	}
	st.aggOrder = st.aggOrder[:0]
}
