package trsv

import (
	"fmt"

	"sptrsv/internal/fault"
	"sptrsv/internal/runtime"
)

// arHelper runs the sparse allreduce of Alg. 2 for one rank: a pairwise
// reduce of partial y subvectors toward the smallest grid replicating each
// node, then the mirrored pairwise broadcast. Each rank exchanges with the
// rank holding its own 2D coordinates on the partner grid, so every rank
// sends/receives O(log Pz) packed messages.
//
// Shared by the CPU and GPU variants of the proposed algorithm; the
// exchanges ride MPI (the paper implements SparseAllReduce with MPI even in
// the GPU code path).
type arHelper struct {
	r        *rankCore
	levels   int // log2(Pz)
	trailing int // trailing zeros of z (grid 0: levels)
	step     int // next reduce step to receive
	done     bool
}

func newARHelper(r *rankCore) *arHelper {
	a := &arHelper{r: r, levels: r.p.Map.L}
	a.trailing = trailingZeros(r.z, a.levels)
	return a
}

// begin starts the allreduce after the L phase; it returns true when the
// allreduce is already complete (Pz=1 or nothing to exchange and z=0 sends
// synchronously). Partial y panels owned by this rank for replicated nodes
// are cloned first: the originals may still be read by L-phase broadcast
// receivers on other ranks.
func (a *arHelper) begin(ctx *runtime.Ctx) bool {
	r := a.r
	if r.p.Layout.Pz == 1 {
		a.done = true
		return true
	}
	for _, k := range r.myDiagSns {
		if r.gp.Path[r.gp.NodeOf[k]].Replicated() {
			r.st.y[k] = r.clonePanel(r.st.y[k])
		}
	}
	a.advance(ctx)
	return a.done
}

// acceptsReduce reports whether a reduce bundle for the given step can be
// processed now.
func (a *arHelper) acceptsReduce(step int) bool {
	return !a.done && step == a.step && a.step < min(a.trailing, a.levels)
}

// acceptsBcast reports whether the broadcast bundle can be processed now.
func (a *arHelper) acceptsBcast() bool {
	return !a.done && a.step >= min(a.trailing, a.levels)
}

// deadReduce reports that a reduce bundle can never be accepted anymore:
// the allreduce finished (possibly forced), or the bundle's step already
// passed — steps only advance. Elastic dead-letter classification.
func (a *arHelper) deadReduce(step int) bool { return a.done || step < a.step }

// deadBcast mirrors deadReduce for broadcast bundles.
func (a *arHelper) deadBcast() bool { return a.done }

// onReduce accumulates a partner's partial subvectors; returns true when
// the whole allreduce has finished for this rank.
func (a *arHelper) onReduce(ctx *runtime.Ctx, b *vecBundle) bool {
	r := a.r
	r.st.counts.arReduce++
	// The merge rides the Z-comm recv in the timing model (zero modeled
	// seconds), but a tagged span makes it visible in traces.
	ctx.ComputeT(TagARMerge, 0, func() {
		for i, k := range b.Ks {
			yk := r.st.y[k]
			if yk == nil {
				panic(&fault.ProtocolError{Rank: r.rank, Phase: "allreduce",
					Msg: fmt.Sprintf("allreduce merge for unsolved y(%d)", k)})
			}
			addWire(yk, &b.Ws[i])
		}
	})
	a.step++
	a.advance(ctx)
	return a.done
}

// onBcast installs the complete subvectors and forwards them downward;
// returns true (the broadcast receipt always completes the allreduce).
func (a *arHelper) onBcast(ctx *runtime.Ctx, b *vecBundle) bool {
	r := a.r
	r.st.counts.arBcast++
	for i, k := range b.Ks {
		r.st.y[k] = r.unpackPanel(&b.Ws[i])
	}
	a.sendBcasts(ctx, a.trailing-1)
	a.done = true
	return true
}

// advance executes the rank's schedule: after all expected reduce receives,
// either forward the reduce buffer up (z≠0) and await the broadcast, or
// start the downward broadcasts (z=0).
func (a *arHelper) advance(ctx *runtime.Ctx) {
	r := a.r
	s := min(a.trailing, a.levels)
	if a.step < s {
		return // waiting for the next reduce bundle
	}
	if r.z != 0 {
		partner := r.z - (1 << s)
		b := a.bundle(s, a.levels-s-1, true)
		ctx.Send(runtime.Msg{
			Dst: r.p.GlobalRank(partner, r.r2d), Tag: tagARReduce, Cat: runtime.CatZ,
			Data: b, Bytes: b.bytes(),
		})
		return // await tagARBcast
	}
	a.sendBcasts(ctx, a.levels-1)
	a.done = true
}

// bundle packs this rank's owned y subvectors for nodes at tree level ≤
// maxLevel. clone detaches the wire payload from the live panel (reduce
// sends: the sender's own y(K) keeps accumulating partner contributions
// while the bundle is in flight).
func (a *arHelper) bundle(step, maxLevel int, clone bool) *vecBundle {
	r := a.r
	b := &vecBundle{Step: step}
	for _, k := range r.myDiagSns {
		if r.gp.Path[r.gp.NodeOf[k]].Level <= maxLevel {
			v := r.st.y[k]
			if clone {
				v = r.clonePanel(v)
			}
			b.Ks = append(b.Ks, k)
			b.Ws = append(b.Ws, packPanel(v, r.comm))
		}
	}
	return b
}

// force closes the allreduce at a staleness deadline with whatever partial
// sums have arrived. Outstanding reduce steps are skipped (their partner
// contributions read as zero); a rank that had not yet forwarded its
// reduce buffer upward still does so (the partner may still be inside the
// phase and can use the partial bundle), and the downward broadcasts are
// emitted from the current — possibly incomplete — values so the wire
// protocol stays uniform. Receivers that already self-closed defer the
// late bundles harmlessly.
func (a *arHelper) force(ctx *runtime.Ctx) {
	if a.done {
		return
	}
	s := min(a.trailing, a.levels)
	if a.step < s {
		a.step = s
		a.advance(ctx) // z≠0: send the partial up-bundle; z=0: broadcast + done
	}
	if !a.done {
		// Awaiting (or never getting) the downward broadcast: proceed with
		// the local partials and feed our own broadcast subtree.
		a.sendBcasts(ctx, a.trailing-1)
		a.done = true
	}
}

// sendBcasts emits the broadcast-phase bundles for steps from..0.
func (a *arHelper) sendBcasts(ctx *runtime.Ctx, from int) {
	r := a.r
	for l := from; l >= 0; l-- {
		partner := r.z + (1 << l)
		b := a.bundle(l, a.levels-l-1, false)
		ctx.Send(runtime.Msg{
			Dst: r.p.GlobalRank(partner, r.r2d), Tag: tagARBcast, Cat: runtime.CatZ,
			Data: b, Bytes: b.bytes(),
		})
	}
}

// naiveAR is the strawman inter-grid reduction the paper's §3.2 argues
// against: one MPI_Allreduce-style collective per replicated
// elimination-tree node, executed sequentially from the lowest shared
// level to the root. Each collective is a recursive-doubling butterfly
// over the node's replication set in which *every* rank of the
// participating grids exchanges at every step, whether or not it owns
// data — the latency and synchronization cost the packed sparse allreduce
// (Alg. 2) eliminates.
type naiveAR struct {
	r    *rankCore
	node int // current path node index being reduced (1..L)
	step int // current butterfly step within the node
	done bool
}

func newNaiveAR(r *rankCore) *naiveAR {
	return &naiveAR{r: r, node: 1}
}

// span returns the replication width of path node ni.
func (a *naiveAR) span(ni int) int { return a.r.gp.Path[ni].GridCount }

// steps returns log2(span) for path node ni.
func (a *naiveAR) steps(ni int) int {
	n, s := a.span(ni), 0
	for 1<<s < n {
		s++
	}
	return s
}

// begin clones the mutable panels and starts the first collective.
func (a *naiveAR) begin(ctx *runtime.Ctx) bool {
	r := a.r
	if r.p.Layout.Pz == 1 || len(r.gp.Path) <= 1 {
		a.done = true
		return true
	}
	for _, k := range r.myDiagSns {
		if r.gp.Path[r.gp.NodeOf[k]].Replicated() {
			r.st.y[k] = r.clonePanel(r.st.y[k])
		}
	}
	a.sendStep(ctx)
	return a.done
}

// partner returns the butterfly partner grid for the current step.
func (a *naiveAR) partner() int {
	return a.r.z ^ (1 << a.step)
}

// bundle packs this rank's owned subvectors of the current node.
func (a *naiveAR) bundle() *vecBundle {
	r := a.r
	b := &vecBundle{Step: a.node<<8 | a.step}
	for _, k := range r.myDiagSns {
		if r.gp.NodeOf[k] == a.node {
			b.Ks = append(b.Ks, k)
			b.Ws = append(b.Ws, packPanel(r.clonePanel(r.st.y[k]), r.comm))
		}
	}
	return b
}

// sendStep emits this rank's half of the current exchange.
func (a *naiveAR) sendStep(ctx *runtime.Ctx) {
	r := a.r
	b := a.bundle()
	ctx.Send(runtime.Msg{
		Dst: r.p.GlobalRank(a.partner(), r.r2d), Tag: tagNaiveARUp, Cat: runtime.CatZ,
		Data: b, Bytes: b.bytes(),
	})
}

// accepts admits only the exchange for the current (node, step).
func (a *naiveAR) accepts(m runtime.Msg) bool {
	if a.done || m.Tag != tagNaiveARUp {
		return false
	}
	return m.Data.(*vecBundle).Step == a.node<<8|a.step
}

// onMsg combines the partner's partials and advances the schedule; returns
// true when the whole reduction has finished.
func (a *naiveAR) onMsg(ctx *runtime.Ctx, m runtime.Msg) bool {
	r := a.r
	r.st.counts.naiveRounds++
	d := m.Data.(*vecBundle)
	ctx.ComputeT(TagARMerge, 0, func() {
		for i, k := range d.Ks {
			addWire(r.st.y[k], &d.Ws[i])
		}
	})
	a.step++
	if a.step >= a.steps(a.node) {
		a.node++
		a.step = 0
		if a.node >= len(r.gp.Path) {
			a.done = true
			return true
		}
	}
	a.sendStep(ctx)
	return false
}

// force skips every remaining exchange of the strawman reduction at a
// staleness deadline: each skipped step treats the partner's bundle as
// zero but still emits this rank's half of the next exchange, so partners
// that are still inside the phase receive everything the protocol owes
// them.
func (a *naiveAR) force(ctx *runtime.Ctx) {
	r := a.r
	for !a.done {
		a.step++
		if a.step >= a.steps(a.node) {
			a.node++
			a.step = 0
			if a.node >= len(r.gp.Path) {
				a.done = true
				return
			}
		}
		a.sendStep(ctx)
	}
}
