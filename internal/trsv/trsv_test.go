package trsv

import (
	"math/rand"
	"testing"
	"time"

	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
	"sptrsv/internal/factor"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/order"
	"sptrsv/internal/runtime"
	"sptrsv/internal/snode"
	"sptrsv/internal/sparse"
	"sptrsv/internal/symbolic"
)

// pipeline turns a matrix into a ready-to-solve plan plus the serial
// reference solver, mirroring what internal/core does for users.
type pipeline struct {
	aPerm *sparse.CSR
	tree  *order.Tree
	m     *snode.Matrix
}

func buildPipeline(t *testing.T, a *sparse.CSR, depth, maxSn int) *pipeline {
	t.Helper()
	tr := order.NestedDissection(a, depth)
	ap := a.Permute(tr.Perm)
	s, err := symbolic.Analyze(ap, symbolic.Options{MaxSupernode: maxSn, Boundaries: grid.Boundaries(tr)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.Factorize(ap, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := snode.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{aPerm: ap, tree: tr, m: m}
}

func (pl *pipeline) plan(t *testing.T, l grid.Layout, kind ctree.Kind) *dist.Plan {
	t.Helper()
	p, err := dist.New(pl.m, pl.tree, l, kind)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randPanel(rng *rand.Rand, rows, cols int) *sparse.Panel {
	p := sparse.NewPanel(rows, cols)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	return p
}

// checkSolve runs one algorithm on one layout and compares against the
// serial supernodal reference.
func checkSolve(t *testing.T, pl *pipeline, l grid.Layout, kind ctree.Kind, algo Algorithm, back Backend, model *machine.Model, nrhs int, seed int64) *runtime.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := randPanel(rng, pl.m.N, nrhs)
	want := pl.m.Solve(b)
	p := pl.plan(t, l, kind)
	x, res, err := Solve(p, model, algo, back, b)
	if err != nil {
		t.Fatalf("%v %+v: %v", algo, l, err)
	}
	if d := x.MaxAbsDiff(want); d > 1e-8 {
		t.Fatalf("%v %+v kind=%v nrhs=%d: max diff %g", algo, l, kind, nrhs, d)
	}
	if r := sparse.ResidualInf(pl.aPerm, x, b); r > 1e-7 {
		t.Fatalf("%v %+v: residual %g", algo, l, r)
	}
	return res
}

var cpuLayouts = []grid.Layout{
	{Px: 1, Py: 1, Pz: 1},
	{Px: 2, Py: 1, Pz: 1},
	{Px: 2, Py: 3, Pz: 1},
	{Px: 3, Py: 2, Pz: 2},
	{Px: 1, Py: 1, Pz: 4},
	{Px: 2, Py: 2, Pz: 4},
	{Px: 4, Py: 1, Pz: 2},
	{Px: 2, Py: 2, Pz: 8},
}

func TestProposed3DAllLayouts(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 11), 3, 8)
	model := machine.CoriHaswell()
	for _, l := range cpuLayouts {
		for _, kind := range []ctree.Kind{ctree.Flat, ctree.Binary} {
			for _, nrhs := range []int{1, 3} {
				checkSolve(t, pl, l, kind, Proposed3D, SimBackend{}, model, nrhs, 42)
			}
		}
	}
}

func TestBaseline3DAllLayouts(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 12), 3, 8)
	model := machine.CoriHaswell()
	for _, l := range cpuLayouts {
		for _, nrhs := range []int{1, 2} {
			checkSolve(t, pl, l, ctree.Flat, Baseline3D, SimBackend{}, model, nrhs, 43)
		}
	}
}

func TestAlgorithmsOnSuiteMatrices(t *testing.T) {
	model := machine.CoriHaswell()
	for _, m := range gen.Suite(gen.Small) {
		if m.A.N > 1200 {
			continue
		}
		pl := buildPipeline(t, m.A, 2, 16)
		l := grid.Layout{Px: 2, Py: 2, Pz: 4}
		checkSolve(t, pl, l, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 44)
		checkSolve(t, pl, l, ctree.Flat, Baseline3D, SimBackend{}, model, 1, 45)
	}
}

func TestProposed3DPoolBackend(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 13), 2, 8)
	model := machine.CoriHaswell()
	back := PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}
	for _, l := range []grid.Layout{{Px: 2, Py: 2, Pz: 1}, {Px: 2, Py: 2, Pz: 4}, {Px: 1, Py: 3, Pz: 2}} {
		checkSolve(t, pl, l, ctree.Binary, Proposed3D, back, model, 2, 46)
	}
}

func TestBaseline3DPoolBackend(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 14), 2, 8)
	model := machine.CoriHaswell()
	back := PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}
	for _, l := range []grid.Layout{{Px: 2, Py: 2, Pz: 1}, {Px: 2, Py: 2, Pz: 4}} {
		checkSolve(t, pl, l, ctree.Flat, Baseline3D, back, model, 1, 47)
	}
}

func TestGPUSingleAllPz(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 15), 3, 8)
	model := machine.PerlmutterGPU()
	for _, pz := range []int{1, 2, 4, 8} {
		for _, nrhs := range []int{1, 5} {
			checkSolve(t, pl, grid.Layout{Px: 1, Py: 1, Pz: pz}, ctree.Binary, GPUSingle, SimBackend{}, model, nrhs, 48)
		}
	}
}

func TestGPUMultiLayouts(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 16), 3, 8)
	model := machine.PerlmutterGPU()
	for _, l := range []grid.Layout{
		{Px: 2, Py: 1, Pz: 1},
		{Px: 4, Py: 1, Pz: 1},
		{Px: 2, Py: 1, Pz: 4},
		{Px: 4, Py: 1, Pz: 8},
	} {
		checkSolve(t, pl, l, ctree.Binary, GPUMulti, SimBackend{}, model, 1, 49)
	}
}

func TestGPURejectsBadConfigs(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(10, 10, 17), 1, 8)
	model := machine.PerlmutterGPU()
	b := sparse.NewPanel(pl.m.N, 1)
	if _, _, err := Solve(pl.plan(t, grid.Layout{Px: 2, Py: 2, Pz: 1}, ctree.Binary), model, GPUSingle, SimBackend{}, b); err == nil {
		t.Fatal("gpu-single with Px*Py>1 accepted")
	}
	if _, _, err := Solve(pl.plan(t, grid.Layout{Px: 2, Py: 2, Pz: 1}, ctree.Binary), model, GPUMulti, SimBackend{}, b); err == nil {
		t.Fatal("gpu-multi with Py>1 accepted")
	}
	if _, _, err := Solve(pl.plan(t, grid.Layout{Px: 1, Py: 1, Pz: 1}, ctree.Binary), machine.CoriHaswell(), GPUSingle, SimBackend{}, b); err == nil {
		t.Fatal("gpu algorithm on CPU-only model accepted")
	}
}

func TestDeterministicVirtualTimes(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 18), 2, 8)
	model := machine.CoriHaswell()
	l := grid.Layout{Px: 2, Py: 2, Pz: 4}
	r1 := checkSolve(t, pl, l, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 50)
	r2 := checkSolve(t, pl, l, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 50)
	for i := range r1.Clocks {
		if r1.Clocks[i] != r2.Clocks[i] {
			t.Fatalf("non-deterministic DES clocks at rank %d", i)
		}
	}
}

func TestMarksPresent(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 19), 2, 8)
	model := machine.CoriHaswell()
	res := checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 51)
	for r, tm := range res.Timers {
		for _, mark := range []string{MarkLDone, MarkZDone, MarkUDone} {
			if _, ok := tm.Marks[mark]; !ok {
				t.Fatalf("rank %d missing mark %s", r, mark)
			}
		}
		if !(tm.Marks[MarkLDone] <= tm.Marks[MarkZDone] && tm.Marks[MarkZDone] <= tm.Marks[MarkUDone]) {
			t.Fatalf("rank %d marks out of order", r)
		}
	}
}

func TestZCommOnlyWithPzGreaterOne(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 20), 2, 8)
	model := machine.CoriHaswell()
	res1 := checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 1}, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 52)
	if res1.MeanCat(runtime.CatZ) != 0 {
		t.Fatal("Pz=1 run charged Z-comm time")
	}
	res4 := checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 53)
	if res4.MeanCat(runtime.CatZ) <= 0 {
		t.Fatal("Pz=4 run has no Z-comm time")
	}
}

func TestBinaryTreesReduceLatencyAtWideGrids(t *testing.T) {
	// With a wide process grid, the binary trees must beat flat trees on
	// simulated time — the claim of §3.3. (At tiny scales flat can win;
	// the paper's gains are at hundreds-of-ranks scale, checked by Fig. 4.)
	pl := buildPipeline(t, gen.S2D9pt(48, 48, 21), 1, 8)
	model := machine.CoriHaswell()
	l := grid.Layout{Px: 8, Py: 8, Pz: 1}
	rng := rand.New(rand.NewSource(54))
	b := randPanel(rng, pl.m.N, 1)
	solve := func(kind ctree.Kind) float64 {
		x, res, err := Solve(pl.plan(t, l, kind), model, Proposed3D, SimBackend{}, b)
		if err != nil {
			t.Fatal(err)
		}
		if r := sparse.ResidualInf(pl.aPerm, x, b); r > 1e-7 {
			t.Fatalf("residual %g", r)
		}
		return res.MaxClock()
	}
	flat := solve(ctree.Flat)
	binary := solve(ctree.Binary)
	if binary >= flat {
		t.Fatalf("binary trees (%g s) not faster than flat (%g s) on 8x8 grid", binary, flat)
	}
}

func TestRandomMatricesRandomLayouts(t *testing.T) {
	model := machine.CoriHaswell()
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 80 + rng.Intn(200)
		a := gen.RandomDD(rng, n, 0.06)
		pl := buildPipeline(t, a, 2, 1+rng.Intn(12))
		l := grid.Layout{Px: 1 + rng.Intn(3), Py: 1 + rng.Intn(3), Pz: 1 << rng.Intn(3)}
		kind := ctree.Kind(rng.Intn(2))
		checkSolve(t, pl, l, kind, Proposed3D, SimBackend{}, model, 1+rng.Intn(3), int64(trial))
		checkSolve(t, pl, l, ctree.Flat, Baseline3D, SimBackend{}, model, 1, int64(trial))
	}
}

func TestNaiveAllreduceCorrectness(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 22), 3, 8)
	model := machine.CoriHaswell()
	for _, l := range []grid.Layout{
		{Px: 1, Py: 1, Pz: 4},
		{Px: 2, Py: 2, Pz: 4},
		{Px: 2, Py: 2, Pz: 8},
		{Px: 2, Py: 2, Pz: 1},
	} {
		checkSolve(t, pl, l, ctree.Binary, Proposed3DNaiveAR, SimBackend{}, model, 2, 60)
	}
}

func TestNaiveAllreduceCostsMoreMessages(t *testing.T) {
	// The ablation claim of §3.2: the per-node strawman sends more Z
	// messages than the packed sparse allreduce.
	pl := buildPipeline(t, gen.S2D9pt(24, 24, 23), 3, 8)
	model := machine.CoriHaswell()
	l := grid.Layout{Px: 2, Py: 2, Pz: 8}
	rng := rand.New(rand.NewSource(61))
	b := randPanel(rng, pl.m.N, 1)
	_, sparseRes, err := Solve(pl.plan(t, l, ctree.Binary), model, Proposed3D, SimBackend{}, b)
	if err != nil {
		t.Fatal(err)
	}
	_, naiveRes, err := Solve(pl.plan(t, l, ctree.Binary), model, Proposed3DNaiveAR, SimBackend{}, b)
	if err != nil {
		t.Fatal(err)
	}
	sparseZ := sparseRes.CatMsgs(runtime.CatZ)
	naiveZ := naiveRes.CatMsgs(runtime.CatZ)
	if naiveZ <= sparseZ {
		t.Fatalf("naive allreduce sent %d Z messages, sparse %d — expected more", naiveZ, sparseZ)
	}
}

func TestMessageCountsBaselineVsProposed(t *testing.T) {
	// The baseline's per-node-group trees must produce more intra-grid
	// messages than the proposed single-tree scheme (Fig. 1 remark).
	pl := buildPipeline(t, gen.S2D9pt(24, 24, 24), 3, 8)
	model := machine.CoriHaswell()
	l := grid.Layout{Px: 2, Py: 2, Pz: 8}
	rng := rand.New(rand.NewSource(62))
	b := randPanel(rng, pl.m.N, 1)
	_, newRes, err := Solve(pl.plan(t, l, ctree.Flat), model, Proposed3D, SimBackend{}, b)
	if err != nil {
		t.Fatal(err)
	}
	_, baseRes, err := Solve(pl.plan(t, l, ctree.Flat), model, Baseline3D, SimBackend{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.CatMsgs(runtime.CatXY) <= newRes.CatMsgs(runtime.CatXY) {
		t.Fatalf("baseline XY messages %d not above proposed %d",
			baseRes.CatMsgs(runtime.CatXY), newRes.CatMsgs(runtime.CatXY))
	}
}

// jitterNet delivers messages with deterministic pseudo-random latencies,
// scrambling arrival order to stress the handlers' phase-deferral logic:
// any correct message-driven algorithm must tolerate arbitrary reordering.
type jitterNet struct{ salt uint64 }

func (j jitterNet) Cost(src, dst, bytes int) (float64, float64, float64) {
	h := j.salt*0x9e3779b97f4a7c15 + uint64(src)*0x517cc1b727220a95 + uint64(dst)*0x2545f4914f6cdd1d + uint64(bytes)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	lat := 1e-6 + float64(h%1000)*1e-6 // 1µs … 1ms
	return 0.5e-6, lat, 0.5e-6
}

func TestAlgorithmsUnderMessageReordering(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(18, 18, 25), 3, 8)
	rng := rand.New(rand.NewSource(63))
	b := randPanel(rng, pl.m.N, 2)
	want := pl.m.Solve(b)
	for _, algo := range []Algorithm{Proposed3D, Baseline3D, Proposed3DNaiveAR} {
		for _, l := range []grid.Layout{{Px: 2, Py: 2, Pz: 4}, {Px: 3, Py: 2, Pz: 8}, {Px: 1, Py: 1, Pz: 8}} {
			for salt := uint64(0); salt < 5; salt++ {
				p := pl.plan(t, l, ctree.Binary)
				if algo == Baseline3D {
					p = pl.plan(t, l, ctree.Flat)
				}
				x := sparse.NewPanel(b.Rows, b.Cols)
				var factory func(int) runtime.Handler
				switch algo {
				case Proposed3D:
					factory = NewProposed3D(p, machine.CoriHaswell(), b, x)
				case Proposed3DNaiveAR:
					factory = NewProposed3DNaiveAR(p, machine.CoriHaswell(), b, x)
				case Baseline3D:
					factory = NewBaseline3D(p, machine.CoriHaswell(), b, x)
				}
				if _, err := runtime.NewEngine(l.Size(), jitterNet{salt: salt}).Run(factory); err != nil {
					t.Fatalf("%v %+v salt=%d: %v", algo, l, salt, err)
				}
				if d := x.MaxAbsDiff(want); d > 1e-8 {
					t.Fatalf("%v %+v salt=%d: diff %g", algo, l, salt, d)
				}
			}
		}
	}
}

func TestGPUUnderMessageReordering(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 26), 3, 8)
	rng := rand.New(rand.NewSource(64))
	b := randPanel(rng, pl.m.N, 1)
	want := pl.m.Solve(b)
	model := machine.PerlmutterGPU()
	for salt := uint64(0); salt < 4; salt++ {
		for _, tc := range []struct {
			l    grid.Layout
			algo Algorithm
		}{
			{grid.Layout{Px: 1, Py: 1, Pz: 8}, GPUSingle},
			{grid.Layout{Px: 4, Py: 1, Pz: 4}, GPUMulti},
		} {
			p := pl.plan(t, tc.l, ctree.Binary)
			x := sparse.NewPanel(b.Rows, b.Cols)
			var factory func(int) runtime.Handler
			if tc.algo == GPUSingle {
				factory = NewGPUSingle(p, model, b, x)
			} else {
				factory = NewGPUMulti(p, model, b, x)
			}
			if _, err := runtime.NewEngine(tc.l.Size(), jitterNet{salt: salt}).Run(factory); err != nil {
				t.Fatalf("%v salt=%d: %v", tc.algo, salt, err)
			}
			if d := x.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("%v salt=%d: diff %g", tc.algo, salt, d)
			}
		}
	}
}

func TestDeepReplicationPz64(t *testing.T) {
	// The full tree depth the figure harness uses: Pz=64 means 6 levels of
	// replication and 63 distinct replication sets in the allreduce.
	pl := buildPipeline(t, gen.S2D9pt(40, 40, 27), 6, 8)
	model := machine.CoriHaswell()
	checkSolve(t, pl, grid.Layout{Px: 1, Py: 1, Pz: 64}, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 65)
	checkSolve(t, pl, grid.Layout{Px: 2, Py: 1, Pz: 64}, ctree.Auto, Proposed3D, SimBackend{}, model, 1, 66)
	checkSolve(t, pl, grid.Layout{Px: 1, Py: 1, Pz: 64}, ctree.Flat, Baseline3D, SimBackend{}, model, 1, 67)
}

func TestManyRightHandSides(t *testing.T) {
	// The paper's 50-RHS protocol, through every algorithm family.
	pl := buildPipeline(t, gen.S2D9pt(14, 14, 28), 2, 8)
	cori := machine.CoriHaswell()
	perl := machine.PerlmutterGPU()
	checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, Proposed3D, SimBackend{}, cori, 50, 68)
	checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Flat, Baseline3D, SimBackend{}, cori, 50, 69)
	checkSolve(t, pl, grid.Layout{Px: 1, Py: 1, Pz: 4}, ctree.Binary, GPUSingle, SimBackend{}, perl, 50, 70)
	checkSolve(t, pl, grid.Layout{Px: 2, Py: 1, Pz: 2}, ctree.Binary, GPUMulti, SimBackend{}, perl, 50, 71)
}

func TestGPUMultiRHSFasterPerRHS(t *testing.T) {
	// GEMM efficiency: 50 RHS must cost far less than 50× one RHS on the
	// GPU model (the paper's Figs. 9–10 motivation).
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 29), 2, 16)
	model := machine.PerlmutterGPU()
	l := grid.Layout{Px: 1, Py: 1, Pz: 4}
	rng := rand.New(rand.NewSource(72))
	t1 := func(nrhs int) float64 {
		b := randPanel(rng, pl.m.N, nrhs)
		_, res, err := Solve(pl.plan(t, l, ctree.Binary), model, GPUSingle, SimBackend{}, b)
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxClock()
	}
	one := t1(1)
	fifty := t1(50)
	if fifty >= 25*one {
		t.Fatalf("50 RHS cost %g vs 1 RHS %g: no GEMM batching benefit", fifty, one)
	}
}

func TestDisconnectedMatrixEmptySeparators(t *testing.T) {
	// A block-diagonal matrix: nested dissection finds empty separators,
	// so some elimination-tree nodes own zero supernodes. Every algorithm
	// must handle empty replicated nodes (no solves, empty allreduce
	// bundles, empty baseline stages).
	b := sparse.NewBuilder(160)
	rng := rand.New(rand.NewSource(73))
	for blk := 0; blk < 4; blk++ {
		base := blk * 40
		for i := 0; i < 40; i++ {
			b.Add(base+i, base+i, 50)
			if i+1 < 40 {
				v := rng.NormFloat64()
				b.Add(base+i, base+i+1, v)
				b.Add(base+i+1, base+i, v)
			}
		}
	}
	a := b.ToCSR()
	pl := buildPipeline(t, a, 3, 8)
	model := machine.CoriHaswell()
	for _, algo := range []Algorithm{Proposed3D, Baseline3D, Proposed3DNaiveAR} {
		for _, l := range []grid.Layout{{Px: 2, Py: 2, Pz: 4}, {Px: 1, Py: 1, Pz: 8}} {
			kind := ctree.Binary
			if algo == Baseline3D {
				kind = ctree.Flat
			}
			checkSolve(t, pl, l, kind, algo, SimBackend{}, model, 2, 74)
		}
	}
	checkSolve(t, pl, grid.Layout{Px: 1, Py: 1, Pz: 4}, ctree.Binary, GPUSingle, SimBackend{}, machine.PerlmutterGPU(), 1, 75)
}

func TestSingleSupernodeMatrix(t *testing.T) {
	// A tiny dense matrix collapses to very few supernodes; all layouts
	// must still terminate correctly even when most ranks own nothing.
	b := sparse.NewBuilder(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				b.Add(i, j, 10)
			} else {
				b.Add(i, j, 0.5)
			}
		}
	}
	pl := buildPipeline(t, b.ToCSR(), 0, 48)
	model := machine.CoriHaswell()
	for _, l := range []grid.Layout{{Px: 1, Py: 1, Pz: 1}, {Px: 4, Py: 4, Pz: 1}} {
		checkSolve(t, pl, l, ctree.Binary, Proposed3D, SimBackend{}, model, 1, 76)
		checkSolve(t, pl, l, ctree.Flat, Baseline3D, SimBackend{}, model, 1, 77)
	}
}
