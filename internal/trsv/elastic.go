package trsv

// Elastic stale-synchronous execution: instead of blocking indefinitely on
// every cross-rank dependency (strict mode), each rank arms one deadline
// tick per algorithm phase. The tick's deadline is the phase's dependency
// depth plus the staleness bound S, in level quanta, measured from run
// start — i.e. a rank tolerates its inputs running up to S dependency
// levels behind the modeled healthy schedule. A tick that fires while its
// phase is still open forces the phase closed: outstanding dependency
// counters are zeroed, unsolved diagonal rows are solved with whatever
// partial sums are on hand (missing contributions read as zero — the
// "last-received, initially zero" value), the forced rows are recorded in
// the per-sweep stale sets, and the normal phase-transition machinery runs.
// Late real messages find their phase closed and park in the deferral
// buffer, never re-entering the numerics, so a same-seed elastic DES run
// is bit-deterministic.
//
// Every rank self-closes at its own deadline, so no forced closure can
// starve a peer: liveness never depends on a post-deadline message. The
// forced sends the closures do emit (diagonal-solve broadcasts, allreduce
// bundles) keep the wire protocol uniform and feed any peer still inside
// the phase.
//
// The solve result may therefore be inexact — callers (core.Solver) read
// ElasticStats and run iterative refinement until the true residual meets
// tolerance, preserving the verified-solution-or-typed-fault contract.

import (
	"sptrsv/internal/runtime"
	"sptrsv/internal/sched"
)

// elasticSlack scales the modeled per-level quantum on the DES backend: it
// absorbs the modeling error between the quantum's average-cost estimate
// and real per-level critical paths, so healthy runs finish phases well
// before their deadlines and forcing only triggers on genuinely late
// dependencies.
const elasticSlack = 2.0

// poolTickQuantum is the wall-clock per-level quantum (seconds) on the pool
// backend, where no machine model prices a level. Deep chains get
// proportionally longer deadlines, and the watchdog (when armed) still
// bounds any single wait.
const poolTickQuantum = 2e-3

// elastic is a rank's read-only elastic-mode configuration plus its lazily
// computed phase deadlines. One per rank handler, built in rankCore.init
// only when the solve requested elastic mode with a positive staleness
// bound.
type elastic struct {
	staleness int
	sg        *sched.Grid // this grid's schedule: depths + slot mapping

	// deadlines are the absolute per-phase forcing times (seconds since
	// run start, virtual or wall): index 0 closes the L phase, 1 the
	// inter-grid exchange (allreduce / Z), 2 the U phase. Computed on
	// first arm because the quantum depends on the backend (Ctx.Virtual).
	ready     bool
	deadlines [3]float64
}

// elasticForcer is implemented by every algorithm handler: forceStale
// closes every phase up to and including the tick's phase that is still
// open, with stale inputs.
type elasticForcer interface {
	forceStale(ctx *runtime.Ctx, phase int)
}

// prepare computes the per-phase deadlines. The per-level quantum on the
// DES backend is throughput-aware: a rank's cost for one dependency level
// is its share of the level's supernodes, each paying fan-out send and
// fan-in receive overheads plus a couple of panel kernels, on top of one
// network hop — all times elasticSlack so healthy runs finish well inside
// their deadlines. The pool backend uses a fixed wall quantum. Deadlines
// are cumulative: a phase's budget is its grid-global dependency depth
// plus the staleness bound, in quanta, on top of the previous phase's
// deadline.
func (el *elastic) prepare(ctx *runtime.Ctx, c *rankCore) {
	var q float64
	if ctx.Virtual() {
		w, n := 1, len(el.sg.Sns)
		if n > 0 {
			total := 0
			for _, k := range el.sg.Sns {
				total += c.snWidth(k)
			}
			w = max(1, total/n)
		}
		depth := max(1, el.sg.LDepth)
		ranks2d := max(1, c.p.Layout.Px*c.p.Layout.Py)
		perRank := float64(n) / float64(depth) / float64(ranks2d)
		if perRank < 1 {
			perRank = 1
		}
		fan := float64(c.p.Layout.Px + c.p.Layout.Py - 1)
		bytes := wireEnvBytes + wireHdrBytes + w*c.st.nrhs*8
		so, lat, ro := c.model.Net().Cost(0, c.p.Layout.Size()-1, bytes)
		q = elasticSlack * (perRank*(fan*(so+ro)+3*c.model.GemmTime(w, w, c.st.nrhs)) + lat)
	} else {
		q = poolTickQuantum
	}
	s := float64(el.staleness)
	arLevels := 0.0
	if c.p.Layout.Pz > 1 {
		// Reduce plus broadcast rounds of the inter-grid exchange.
		arLevels = float64(2*c.p.Map.L + 1)
	}
	dL := (float64(el.sg.LDepth) + s) * q
	dAR := dL + (arLevels+s)*q
	dU := dAR + (float64(el.sg.UDepth)+s)*q
	el.deadlines = [3]float64{dL, dAR, dU}
	el.ready = true
}

// armElastic arms the current phase's staleness-deadline tick, once per
// phase. Handlers call it at the end of Init and of every OnMessage, so
// each phase transition arms the next deadline exactly once; a no-op in
// strict mode and once the solve is done. The tick is a self-addressed
// timer (Ctx.After) carrying the phase index; the runtime exempts it from
// straggler inflation — a slowed rank's deadline is an absolute timeout,
// not a slowed-down one.
func (c *rankCore) armElastic(ctx *runtime.Ctx) {
	el := c.el
	if el == nil {
		return
	}
	st := c.st
	ph := st.phase
	if ph < 0 || ph >= 3 || st.elArmed[ph] {
		return
	}
	if !el.ready {
		el.prepare(ctx, c)
	}
	st.elArmed[ph] = true
	ctx.After(max(0, el.deadlines[ph]-ctx.Now()), tagElastic, ph)
}

// TickLive implements runtime.ElasticTicker: the DES engine discards a
// deadline tick without delivering it (and without charging the wait that
// would drag the rank's clock to the deadline) when the tick's phase has
// already closed.
func (c *rankCore) TickLive(data any) bool {
	st := c.st
	if c.el == nil || st == nil || st.phase >= 3 {
		return false
	}
	ph, ok := data.(int)
	return ok && st.phase <= ph
}

// Progress implements runtime.Progresser: supernode diagonal solves
// completed across both sweeps versus this rank's total, embedded in stall
// diagnostics to separate deadlock from slow progress.
func (c *rankCore) Progress() (done, total int) {
	st := c.st
	if st == nil {
		return 0, 0
	}
	return st.counts.diagY + st.counts.diagX, 2 * len(c.myDiagSns)
}

// markStaleL records that supernode k's L-solve (y(k)) consumed stale or
// missing inputs; idempotent per sweep.
func (c *rankCore) markStaleL(k int) {
	if c.el == nil {
		return
	}
	st := c.st
	if st.staleL == nil {
		st.staleL = sched.NewStaleSet(len(c.gp.Sns))
	}
	if s := c.el.sg.SlotOf[k]; s >= 0 && st.staleL.Set(int(s)) {
		st.counts.staleRows++
	}
}

// markStaleU mirrors markStaleL for the U sweep (x(k)).
func (c *rankCore) markStaleU(k int) {
	if c.el == nil {
		return
	}
	st := c.st
	if st.staleU == nil {
		st.staleU = sched.NewStaleSet(len(c.gp.Sns))
	}
	if s := c.el.sg.SlotOf[k]; s >= 0 && st.staleU.Set(int(s)) {
		st.counts.staleRows++
	}
}

// markStaleAR marks every replicated diagonal row of this rank stale in
// the L sweep: a forced inter-grid exchange may have merged incomplete
// partial sums into any of them.
func (c *rankCore) markStaleAR() {
	for _, k := range c.myDiagSns {
		if c.gp.Path[c.gp.NodeOf[k]].Replicated() {
			c.markStaleL(k)
		}
	}
}

// zeroPendingL clears row k's outstanding L-contribution counter (dense
// slot or map) so a forced enqueue cannot be re-triggered by the normal
// counter machinery; late decrements never reach the counters because
// post-closure messages stay deferred.
func (c *rankCore) zeroPendingL(k int) {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dpendL[s] = 0
			return
		}
	}
	c.st.pendingL[k] = 0
}

// zeroPendingU mirrors zeroPendingL for the U phase.
func (c *rankCore) zeroPendingU(k int) {
	if c.st.dense {
		if s := c.sg.SlotOf[k]; s >= 0 {
			c.st.dpendU[s] = 0
			return
		}
	}
	c.st.pendingU[k] = 0
}
