package trsv

import (
	"math/rand"
	"testing"

	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// elasticCase is one algorithm × layout point of the elastic test sweep —
// the same four algorithm families the chaos harness covers.
type elasticCase struct {
	name  string
	algo  Algorithm
	l     grid.Layout
	kind  ctree.Kind
	model *machine.Model
}

func elasticCases() []elasticCase {
	return []elasticCase{
		{"proposed-3d", Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary, machine.CoriHaswell()},
		{"baseline-3d", Baseline3D, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary, machine.CoriHaswell()},
		{"gpu-single", GPUSingle, grid.Layout{Px: 1, Py: 1, Pz: 4}, ctree.Auto, machine.PerlmutterGPU()},
		{"gpu-multi", GPUMulti, grid.Layout{Px: 2, Py: 1, Pz: 2}, ctree.Auto, machine.PerlmutterGPU()},
	}
}

// elasticSolve runs one DES solve in the given mode and returns the solution
// panel and the per-rank clocks.
func elasticSolve(t *testing.T, pl *pipeline, ec elasticCase, b *sparse.Panel, opts SolveOpts, plan *fault.Plan) (*sparse.Panel, []float64) {
	t.Helper()
	p := pl.plan(t, ec.l, ec.kind)
	x := sparse.NewPanel(b.Rows, b.Cols)
	back := SimBackend{Opts: runtime.Options{Faults: plan}}
	res, err := SolveIntoOpts(p, ec.model, ec.algo, back, b, x, opts)
	if err != nil {
		t.Fatalf("%s mode=%v S=%d: %v", ec.name, opts.Mode, opts.Staleness, err)
	}
	return x, res.Clocks
}

// TestElasticS0BitIdenticalToStrict pins the degenerate end of the staleness
// axis: an elastic solve with S=0 takes the strict code path by construction
// (no ticks are ever armed), so its solution bytes and per-rank clocks must
// equal the strict run's exactly — not approximately.
func TestElasticS0BitIdenticalToStrict(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 15), 3, 8)
	rng := rand.New(rand.NewSource(11))
	b := randPanel(rng, pl.m.N, 1)
	for _, ec := range elasticCases() {
		xs, cs := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeStrict}, nil)
		xe, ce := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeElastic, Staleness: 0}, nil)
		for i, v := range xs.Data {
			if xe.Data[i] != v {
				t.Fatalf("%s: x[%d] strict %g vs elastic S=0 %g", ec.name, i, v, xe.Data[i])
			}
		}
		for i, v := range cs {
			if ce[i] != v {
				t.Fatalf("%s: rank %d clock strict %g vs elastic S=0 %g", ec.name, i, v, ce[i])
			}
		}
	}
}

// TestElasticHealthyMatchesStrict pins the stronger fault-free property: a
// genuinely armed elastic run (S>0, ticks flying) on a healthy system never
// reaches a deadline before the dependency arrives, so it forces nothing and
// its solution and clocks still match strict bit-for-bit. Elasticity is
// free when nothing is wrong.
func TestElasticHealthyMatchesStrict(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 15), 3, 8)
	rng := rand.New(rand.NewSource(12))
	b := randPanel(rng, pl.m.N, 1)
	for _, ec := range elasticCases() {
		xs, cs := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeStrict}, nil)
		for _, s := range []int{4, 16} {
			var stats ElasticStats
			xe, ce := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeElastic, Staleness: s, Elastic: &stats}, nil)
			if stats.StaleSupernodes != 0 || stats.ForcedTicks != 0 {
				t.Fatalf("%s S=%d: healthy run forced (stale=%d ticks=%d)",
					ec.name, s, stats.StaleSupernodes, stats.ForcedTicks)
			}
			for i, v := range xs.Data {
				if xe.Data[i] != v {
					t.Fatalf("%s S=%d: x[%d] strict %g vs elastic %g", ec.name, s, i, v, xe.Data[i])
				}
			}
			for i, v := range cs {
				if ce[i] != v {
					t.Fatalf("%s S=%d: rank %d clock strict %g vs elastic %g", ec.name, s, i, v, ce[i])
				}
			}
		}
	}
}

// TestElasticDESDeterministic pins the DES guarantee under forcing: two
// same-seed elastic runs under a network straggler severe enough to trigger
// stale reads produce bit-identical solutions, clocks, and stale tallies.
func TestElasticDESDeterministic(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 15), 3, 8)
	rng := rand.New(rand.NewSource(13))
	b := randPanel(rng, pl.m.N, 1)
	for _, ec := range elasticCases() {
		plan := &fault.Plan{Seed: 9, NetDelay: map[int]float64{0: 5e-3}, Jitter: 1e-5}
		var sa, sb ElasticStats
		xa, ca := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeElastic, Staleness: 4, Elastic: &sa}, plan)
		xb, cb := elasticSolve(t, pl, ec, b, SolveOpts{Mode: ModeElastic, Staleness: 4, Elastic: &sb}, plan)
		if sa != sb {
			t.Fatalf("%s: stale stats differ across same-seed runs: %+v vs %+v", ec.name, sa, sb)
		}
		for i, v := range xa.Data {
			if xb.Data[i] != v {
				t.Fatalf("%s: x[%d] %g vs %g across same-seed elastic runs", ec.name, i, v, xb.Data[i])
			}
		}
		for i, v := range ca {
			if cb[i] != v {
				t.Fatalf("%s: rank %d clock %g vs %g across same-seed elastic runs", ec.name, i, v, cb[i])
			}
		}
		t.Logf("%s: stale=%d forced-ticks=%d", ec.name, sa.StaleSupernodes, sa.ForcedTicks)
	}
}
