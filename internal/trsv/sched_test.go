package trsv

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"sptrsv/internal/ctree"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sched"
	"sptrsv/internal/sparse"
)

// The scheduled execution path's correctness bar (ISSUE: level/DAG
// scheduling): bit-exact agreement with the serial reference and with the
// per-message handler path — same solution bits, same DES clocks, same
// message counts — on every algorithm and backend. The handler path stays
// selectable as the oracle; these tests are the comparison.

// schedCase is one (matrix, layout, algorithm) point of the property test.
type schedCase struct {
	name  string
	algo  Algorithm
	l     grid.Layout
	kind  ctree.Kind
	model *machine.Model
	nrhs  int
}

func schedMatrices(t *testing.T) map[string]*pipeline {
	t.Helper()
	return map[string]*pipeline{
		"s2d":    buildPipeline(t, gen.S2D9pt(20, 20, 31), 3, 8),
		"rand":   buildPipeline(t, gen.RandomDD(rand.New(rand.NewSource(200)), 240, 0.06), 2, 10),
		"s2d-xl": buildPipeline(t, gen.S2D9pt(26, 26, 32), 2, 12),
	}
}

func schedCases() []schedCase {
	cori := machine.CoriHaswell()
	perl := machine.PerlmutterGPU()
	return []schedCase{
		{"proposed", Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, cori, 2},
		{"proposed-2d", Proposed3D, grid.Layout{Px: 2, Py: 3, Pz: 1}, ctree.Flat, cori, 1},
		{"naive-ar", Proposed3DNaiveAR, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, cori, 1},
		{"baseline", Baseline3D, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Flat, cori, 2},
		{"gpu-single", GPUSingle, grid.Layout{Px: 1, Py: 1, Pz: 4}, ctree.Binary, perl, 3},
		{"gpu-multi", GPUMulti, grid.Layout{Px: 2, Py: 1, Pz: 2}, ctree.Binary, perl, 1},
	}
}

// solveMode runs one solve in the given mode and returns the solution and
// run result.
func solveMode(t *testing.T, pl *pipeline, tc schedCase, b *sparse.Panel, back Backend, opts SolveOpts) (*sparse.Panel, *runtime.Result) {
	t.Helper()
	p := pl.plan(t, tc.l, tc.kind)
	x := sparse.NewPanel(b.Rows, b.Cols)
	res, err := SolveIntoOpts(p, tc.model, tc.algo, back, b, x, opts)
	if err != nil {
		t.Fatalf("%s %v: %v", tc.name, opts.Exec, err)
	}
	return x, res
}

// TestSchedMatchesHandlerBitExact is the central property: on the DES
// backend the scheduled path must reproduce the handler path bit for bit —
// solutions (==, not within tolerance), per-rank clocks, and total message
// counts — across all four algorithm families and several matrices.
func TestSchedMatchesHandlerBitExact(t *testing.T) {
	mats := schedMatrices(t)
	for mname, pl := range mats {
		for _, tc := range schedCases() {
			rng := rand.New(rand.NewSource(300))
			b := randPanel(rng, pl.m.N, tc.nrhs)
			want := pl.m.Solve(b)
			xh, rh := solveMode(t, pl, tc, b, SimBackend{}, SolveOpts{Exec: ExecHandler})
			xs, rs := solveMode(t, pl, tc, b, SimBackend{}, SolveOpts{Exec: ExecSched})
			for i, v := range xh.Data {
				if xs.Data[i] != v {
					t.Fatalf("%s/%s: scheduled solution differs from handler at %d: %g vs %g",
						mname, tc.name, i, xs.Data[i], v)
				}
			}
			if d := xs.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("%s/%s: scheduled path off serial reference by %g", mname, tc.name, d)
			}
			for i := range rh.Clocks {
				if rs.Clocks[i] != rh.Clocks[i] {
					t.Fatalf("%s/%s: DES clock differs at rank %d: %g vs %g",
						mname, tc.name, i, rs.Clocks[i], rh.Clocks[i])
				}
			}
			if rs.TotalMsgs() != rh.TotalMsgs() {
				t.Fatalf("%s/%s: message count differs: sched %d, handler %d",
					mname, tc.name, rs.TotalMsgs(), rh.TotalMsgs())
			}
		}
	}
}

// TestSchedPoolBitExact repeats the bit-exactness bar on the real-goroutine
// backend with LevelChunk=1 so any wave of two or more tasks exercises the
// parallel precompute: worker interleaving must not change a single bit of
// the solution. Bitwise comparison against the handler path is only
// well-defined where message delivery order is fixed — on the pool that
// order is wall-clock-dependent and already makes two handler runs differ
// in the last bits — so the bitwise leg runs on a single-rank layout
// (pure local cascade, the widest waves and heaviest precompute use) and
// the multi-rank legs hold both modes to the serial-reference tolerance.
func TestSchedPoolBitExact(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(18, 18, 33), 2, 8)
	back := PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}
	rng := rand.New(rand.NewSource(301))
	b := randPanel(rng, pl.m.N, 2)

	serial := schedCase{"serial", Proposed3D, grid.Layout{Px: 1, Py: 1, Pz: 1}, ctree.Binary, machine.CoriHaswell(), 2}
	xh, _ := solveMode(t, pl, serial, b, back, SolveOpts{Exec: ExecHandler})
	for trial := 0; trial < 3; trial++ {
		xs, _ := solveMode(t, pl, serial, b, back, SolveOpts{Exec: ExecSched, LevelChunk: 1})
		for i, v := range xh.Data {
			if xs.Data[i] != v {
				t.Fatalf("trial %d: pool scheduled solution differs from handler at %d", trial, i)
			}
		}
	}

	for _, tc := range schedCases() {
		if tc.algo == GPUSingle || tc.algo == GPUMulti {
			continue // simulation-only
		}
		bb := randPanel(rng, pl.m.N, tc.nrhs)
		ww := pl.m.Solve(bb)
		for _, opts := range []SolveOpts{{Exec: ExecHandler}, {Exec: ExecSched, LevelChunk: 1}} {
			x, _ := solveMode(t, pl, tc, bb, back, opts)
			if d := x.MaxAbsDiff(ww); d > 1e-8 {
				t.Fatalf("%s %v: pool diff %g", tc.name, opts.Exec, d)
			}
		}
	}
}

// TestSchedSweepSpansTraced checks the analyzer contract: a traced
// scheduled run carries level-sweep annotations (one span per sweep, task
// count in the tag), a handler run carries none, and the sweep totals
// cover every diagonal solve the run performed.
func TestSchedSweepSpansTraced(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 34), 3, 8)
	tc := schedCase{"proposed", Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary, machine.CoriHaswell(), 1}
	rng := rand.New(rand.NewSource(302))
	b := randPanel(rng, pl.m.N, tc.nrhs)
	back := SimBackend{Opts: runtime.Options{Trace: true}}
	_, rs := solveMode(t, pl, tc, b, back, SolveOpts{Exec: ExecSched})
	_, rh := solveMode(t, pl, tc, b, back, SolveOpts{Exec: ExecHandler})
	ss, err := rs.LevelSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sweeps == 0 || ss.Tasks == 0 {
		t.Fatalf("scheduled run recorded no level sweeps: %+v", ss)
	}
	if ss.MaxTasks < 1 || ss.MeanTasks() <= 0 {
		t.Fatalf("degenerate sweep stats: %+v", ss)
	}
	sh, err := rh.LevelSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Sweeps != 0 {
		t.Fatalf("handler run recorded %d level sweeps, want 0", sh.Sweeps)
	}
	// Sweeps cover exactly the ready-queue diagonal solves (every solveY
	// and solveX runs inside some sweep on the scheduled path).
	cp, err := rs.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Length ≤ Makespan up to summation rounding (the chain re-sums spans
	// the clock accumulated in a different order).
	if cp.Length <= 0 || cp.Length > cp.Makespan*(1+1e-12) {
		t.Fatalf("critical path inconsistent under sweeps: length %g makespan %g", cp.Length, cp.Makespan)
	}
}

// TestSchedConcurrentSolves runs many scheduled solves of one plan
// concurrently (the -race work-stealing stress of scripts/check.sh): the
// schedule is shared immutable state, per-solve states come from the
// plan's pool, and level sweeps spawn workers — none of which may race.
func TestSchedConcurrentSolves(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 35), 2, 8)
	model := machine.CoriHaswell()
	p := pl.plan(t, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary)
	rng := rand.New(rand.NewSource(303))
	b := randPanel(rng, pl.m.N, 2)
	want := pl.m.Solve(b)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	diffs := make([]float64, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			back := Backend(SimBackend{})
			opts := SolveOpts{Exec: ExecSched}
			if i%2 == 1 {
				back = PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}
				opts.LevelChunk = 1
			}
			x := sparse.NewPanel(b.Rows, b.Cols)
			_, err := SolveIntoOpts(p, model, Proposed3D, back, b, x, opts)
			errs[i] = err
			if err == nil {
				diffs[i] = x.MaxAbsDiff(want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent solve %d: %v", i, err)
		}
		if diffs[i] > 1e-8 {
			t.Fatalf("concurrent solve %d: diff %g", i, diffs[i])
		}
	}
}

// TestSchedStatsSane sanity-checks the derived schedule itself on a few
// plans: every grid supernode has a slot, slots ascend with supernode
// index, level counts cover the diagonal tasks, and the cached schedule is
// returned for repeated calls.
func TestSchedStatsSane(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 36), 3, 8)
	p := pl.plan(t, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Binary)
	s1, err := sched.Of(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.Of(p)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("schedule not cached on the plan")
	}
	st := s1.Stats()
	if st.Tasks == 0 || st.MaxLevels == 0 || st.MaxWidth == 0 {
		t.Fatalf("degenerate schedule stats: %+v", st)
	}
	for z, g := range s1.Grids {
		prev := -1
		for _, k := range g.Sns {
			s := int(g.SlotOf[k])
			if s != prev+1 {
				t.Fatalf("grid %d: slot of sn %d is %d, want %d", z, k, s, prev+1)
			}
			prev = s
		}
	}
}

// TestSchedRejectsBadOpts checks the options validation surface.
func TestSchedRejectsBadOpts(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(10, 10, 37), 1, 8)
	p := pl.plan(t, grid.Layout{Px: 1, Py: 1, Pz: 1}, ctree.Binary)
	b := sparse.NewPanel(pl.m.N, 1)
	x := sparse.NewPanel(pl.m.N, 1)
	if _, err := SolveIntoOpts(p, machine.CoriHaswell(), Proposed3D, SimBackend{}, b, x, SolveOpts{Exec: ExecMode(99)}); err == nil {
		t.Fatal("unknown exec mode accepted")
	}
}
