package trsv

import (
	"testing"

	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// fakeOps is a scriptable rankOps: messages whose Tag is in the ready set
// are accepted; processing a message can unlock further tags.
type fakeOps struct {
	ready     map[int]bool
	unlocks   map[int][]int // tag → tags processing it makes acceptable
	processed []int
}

func (f *fakeOps) accepts(m runtime.Msg) bool { return f.ready[m.Tag] }
func (f *fakeOps) process(_ *runtime.Ctx, m runtime.Msg) {
	f.processed = append(f.processed, m.Tag)
	for _, u := range f.unlocks[m.Tag] {
		f.ready[u] = true
	}
}

// TestDrainDeferredChains: a chain where each processed message unlocks an
// earlier survivor must fully drain across rounds, preserving the retained
// queue's relative order at every step.
func TestDrainDeferredChains(t *testing.T) {
	c := &rankCore{st: newSolveState()}
	// Queue 5,4,3,2,1; only 1 starts acceptable and each k unlocks k+1, so
	// round one processes just 1, round two just 2, and so on — the worst
	// case for restart-from-zero scans, five rounds here.
	for tag := 5; tag >= 1; tag-- {
		c.st.deferred = append(c.st.deferred, runtime.Msg{Tag: tag})
	}
	ops := &fakeOps{
		ready:   map[int]bool{1: true},
		unlocks: map[int][]int{1: {2}, 2: {3}, 3: {4}, 4: {5}},
	}
	c.drainDeferred(nil, ops)
	if len(c.st.deferred) != 0 {
		t.Fatalf("queue not drained: %d left", len(c.st.deferred))
	}
	want := []int{1, 2, 3, 4, 5}
	if len(ops.processed) != len(want) {
		t.Fatalf("processed %v, want %v", ops.processed, want)
	}
	for i, tag := range want {
		if ops.processed[i] != tag {
			t.Fatalf("processed %v, want %v", ops.processed, want)
		}
	}
}

// TestDrainDeferredZeroesVacatedTail: compaction must clear the backing
// array beyond the new length — a stale runtime.Msg there pins its Data
// panel while the state waits in the pool (the retention bug this rewrite
// fixed kept a duplicate of the last survivor alive past len).
func TestDrainDeferredZeroesVacatedTail(t *testing.T) {
	c := &rankCore{st: newSolveState()}
	panel := sparse.NewPanel(4, 1)
	for tag := 1; tag <= 6; tag++ {
		c.st.deferred = append(c.st.deferred, runtime.Msg{Tag: tag, Data: &yMsg{K: tag, W: packPanel(panel, CommDense)}})
	}
	// Accept the even tags: three survivors compact to the front, three
	// slots beyond len must be zeroed.
	ops := &fakeOps{ready: map[int]bool{2: true, 4: true, 6: true}}
	c.drainDeferred(nil, ops)
	d := c.st.deferred
	if len(d) != 3 {
		t.Fatalf("want 3 survivors, got %d", len(d))
	}
	for i, wantTag := range []int{1, 3, 5} {
		if d[i].Tag != wantTag {
			t.Fatalf("survivor %d has tag %d, want %d (order not preserved)", i, d[i].Tag, wantTag)
		}
	}
	tail := d[len(d):cap(d)]
	for i := range tail {
		if tail[i].Data != nil || tail[i].Tag != 0 {
			t.Fatalf("stale message retained at backing slot len+%d: %+v", i, tail[i])
		}
	}
}

// TestReleaseClearsBackingArrays: release must clear deferred and
// readyTasks to capacity, not length — pops and compaction reslice both,
// leaving panel-holding elements beyond len.
func TestReleaseClearsBackingArrays(t *testing.T) {
	st := newSolveState()
	st.owner = &statePool
	panel := sparse.NewPanel(4, 1)
	for i := 0; i < 4; i++ {
		st.deferred = append(st.deferred, runtime.Msg{Tag: 1, Data: &yMsg{K: i, W: packPanel(panel, CommDense)}})
		st.readyTasks = append(st.readyTasks, gpuTask{k: i, put: panel})
	}
	// Simulate a compaction/pop reslice: live prefix shrinks, stale
	// elements remain in the backing arrays beyond len.
	st.deferred = st.deferred[:1]
	st.readyTasks = st.readyTasks[:2]
	defCap, taskCap := st.deferred[:cap(st.deferred)], st.readyTasks[:cap(st.readyTasks)]
	st.release()
	for i := range defCap {
		if defCap[i].Data != nil {
			t.Fatalf("release left deferred slot %d holding %+v", i, defCap[i])
		}
	}
	for i := range taskCap {
		if taskCap[i].put != nil {
			t.Fatalf("release left readyTasks slot %d holding a panel", i)
		}
	}
}

// BenchmarkDrainDeferred measures a deferred-heavy drain: n buffered
// messages released in waves, each round unlocking the next wave — the
// load shape of a phase transition arriving after a long out-of-phase
// backlog.
func BenchmarkDrainDeferred(b *testing.B) {
	const n = 4096
	const waves = 8
	c := &rankCore{st: newSolveState()}
	msgs := make([]runtime.Msg, n)
	for i := range msgs {
		msgs[i] = runtime.Msg{Tag: 1 + i%waves}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.st.deferred = append(c.st.deferred[:0], msgs...)
		ops := &fakeOps{ready: map[int]bool{1: true}, unlocks: map[int][]int{}}
		for w := 1; w < waves; w++ {
			ops.unlocks[w] = []int{w + 1}
		}
		c.drainDeferred(nil, ops)
		if len(c.st.deferred) != 0 {
			b.Fatal("not drained")
		}
	}
}
