package trsv

import (
	"fmt"
	"maps"
	"sort"

	"sptrsv/internal/dist"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// base3dRank implements the baseline 3D SpTRSV (Sao et al., ICS '19) for
// one rank. Grid z (with s trailing zero bits) processes path nodes
// 0 (leaf) through s, one at a time:
//
//	L-solve, node i: pre-gathered cross-node lsum + message-driven 2D solve
//	  with one flat broadcast tree per (column, row-node) pair and a flat
//	  within-node reduction; then a pairwise inter-grid merge of leftover
//	  lsum rows with grid z+2^i (the per-level synchronization the proposed
//	  algorithm eliminates);
//	U-solve: the mirror image, top-down, with pairwise x broadcasts.
//
// With Pz=1 this is the classic 2D solver with flat communication.
type base3dRank struct {
	rankBase

	phase int // 0=L, 1=await U bundle (z≠0), 2=U, 3=done
	s     int // trailing zeros of z, capped at L = log2(Pz)

	// groupMsg payloads carry the broadcast group (target node index).
	lStage      int
	lAwaitMerge bool
	lRemaining  []int
	pendingL    map[int]int
	readyY      []int

	uStage     int
	uRemaining []int
	pendingU   map[int]int
	readyX     []int
	xQueued    map[int]bool // guards against double-queueing a row

	deferred []runtime.Msg
}

// groupMsg is a y/x broadcast restricted to one row-node group.
type groupMsg struct {
	K, G int
	V    *sparse.Panel
}

// NewBaseline3D returns the handler factory for the baseline algorithm.
// dist.Plan.BuildBaseline must have run (Solve does it).
func NewBaseline3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	if err := p.BuildBaseline(); err != nil {
		panic(err)
	}
	return func(rank int) runtime.Handler {
		h := &base3dRank{}
		h.rankBase.init(p, model, rank, b, x)
		return h
	}
}

func (h *base3dRank) Done() bool { return h.phase == 3 }

func (h *base3dRank) base() *dist.Baseline { return h.gp.Base }

func (h *base3dRank) Init(ctx *runtime.Ctx) {
	bb := h.base()
	h.s = bb.S
	rd := bb.Ranks[h.r2d]
	h.pendingL = maps.Clone(rd.PendingL)
	h.pendingU = maps.Clone(rd.PendingU)
	h.xQueued = make(map[int]bool)
	h.lRemaining = append([]int(nil), rd.LRemaining...)
	h.uRemaining = append([]int(nil), rd.URemaining...)

	// Kick off the leaf node.
	for _, k := range h.myDiagSns {
		if h.gp.NodeOf[k] == 0 && h.pendingL[k] == 0 {
			h.readyY = append(h.readyY, k)
		}
	}
	h.drainReadyY(ctx)
	h.advanceL(ctx)
	h.drainDeferred(ctx)
}

func (h *base3dRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	if !h.accepts(m) {
		h.deferred = append(h.deferred, m)
		return
	}
	h.process(ctx, m)
	h.drainDeferred(ctx)
}

func (h *base3dRank) accepts(m runtime.Msg) bool {
	switch m.Tag {
	case tagYBcast:
		return h.phase == 0 && !h.lAwaitMerge && h.gp.NodeOf[m.Data.(*groupMsg).K] == h.lStage
	case tagLReduce:
		return h.phase == 0 && !h.lAwaitMerge && h.gp.NodeOf[m.Data.(*sumMsg).K] == h.lStage
	case tagZGatherL:
		return h.phase == 0 && h.lAwaitMerge && m.Data.(*vecBundle).Step == h.lStage
	case tagZBcastU:
		return h.phase == 1
	case tagXBcast, tagUReduce:
		return h.phase == 2
	}
	panic(fmt.Sprintf("trsv: baseline rank %d unexpected tag %d", h.rank, m.Tag))
}

func (h *base3dRank) drainDeferred(ctx *runtime.Ctx) {
	for {
		progressed := false
		for i := 0; i < len(h.deferred); i++ {
			if h.accepts(h.deferred[i]) {
				m := h.deferred[i]
				h.deferred = append(h.deferred[:i], h.deferred[i+1:]...)
				h.process(ctx, m)
				progressed = true
				break
			}
		}
		if !progressed {
			return
		}
	}
}

func (h *base3dRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	switch m.Tag {
	case tagYBcast:
		d := m.Data.(*groupMsg)
		h.lRemaining[h.lStage]--
		h.applyYGroup(ctx, d.K, d.G, d.V)
		h.drainReadyY(ctx)
		h.advanceL(ctx)
	case tagLReduce:
		d := m.Data.(*sumMsg)
		h.lRemaining[h.lStage]--
		h.getLsum(d.K).AddFrom(d.S)
		h.lRowContribution(ctx, d.K)
		h.drainReadyY(ctx)
		h.advanceL(ctx)
	case tagZGatherL:
		d := m.Data.(*vecBundle)
		for i, k := range d.Ks {
			h.getLsum(k).AddFrom(d.Vs[i])
		}
		h.lAwaitMerge = false
		h.lStage++
		h.sendGathers(ctx)
		for _, k := range h.myDiagSns {
			if h.gp.NodeOf[k] == h.lStage && h.pendingL[k] == 0 {
				h.readyY = append(h.readyY, k)
			}
		}
		h.drainReadyY(ctx)
		h.advanceL(ctx)
	case tagZBcastU:
		d := m.Data.(*vecBundle)
		h.phase = 2
		h.uStage = h.s
		for i, k := range d.Ks {
			h.xl[k] = d.Vs[i]
		}
		for i, k := range d.Ks {
			h.rebroadcastX(ctx, k, d.Vs[i])
		}
		h.startU(ctx)
	case tagXBcast:
		d := m.Data.(*groupMsg)
		stage := h.gp.NodeOf[d.K]
		if stage > h.s {
			stage = h.s // re-broadcasts are charged to stage s
		}
		h.uRemaining[stage]--
		h.applyXGroup(ctx, d.K, d.G, d.V)
		h.drainReadyX(ctx)
		h.advanceU(ctx)
	case tagUReduce:
		d := m.Data.(*sumMsg)
		h.uRemaining[h.gp.NodeOf[d.K]]--
		h.getUsum(d.K).AddFrom(d.S)
		h.uRowContribution(ctx, d.K)
		h.drainReadyX(ctx)
		h.advanceU(ctx)
	}
}

// ---- L phase ----

// applyYGroup applies my column-K blocks whose rows live in node group g.
func (h *base3dRank) applyYGroup(ctx *runtime.Ctx, k, g int, yk *sparse.Panel) {
	for _, blk := range h.colL[k] {
		if h.gp.NodeOf[blk.I] != g {
			continue
		}
		ctx.Compute(h.applyLBlock(blk, k, yk), nil)
		if g == h.gp.NodeOf[k] {
			h.lRowContribution(ctx, blk.I)
		}
	}
}

func (h *base3dRank) lRowContribution(ctx *runtime.Ctx, k int) {
	h.pendingL[k]--
	if h.pendingL[k] != 0 {
		return
	}
	t := h.base().LReduceNode[k]
	if t.Root() == h.r2d {
		h.readyY = append(h.readyY, k)
		return
	}
	s := h.getLsum(k)
	ctx.Send(runtime.Msg{
		Dst: h.p.GlobalRank(h.z, t.Parent(h.r2d)), Tag: tagLReduce, Cat: runtime.CatXY,
		Data: &sumMsg{K: k, S: s}, Bytes: panelBytes(s),
	})
	delete(h.lsum, k)
}

func (h *base3dRank) drainReadyY(ctx *runtime.Ctx) {
	for len(h.readyY) > 0 {
		k := h.readyY[0]
		h.readyY = h.readyY[1:]
		yk, secs := h.diagSolveY(k, h.rhsFor(k, true))
		ctx.Compute(secs, nil)
		delete(h.lsum, k)
		h.y[k] = yk
		// One broadcast per row-node group (the baseline's extra messages).
		for _, gt := range h.base().LBcastGroups[k] {
			for _, child := range gt.Tree.Children(h.r2d) {
				ctx.Send(runtime.Msg{
					Dst: h.p.GlobalRank(h.z, child), Tag: tagYBcast, Cat: runtime.CatXY,
					Data: &groupMsg{K: k, G: gt.Node, V: yk}, Bytes: panelBytes(yk),
				})
			}
		}
		// Apply my own blocks across all groups.
		for _, blk := range h.colL[k] {
			ctx.Compute(h.applyLBlock(blk, k, yk), nil)
			if h.gp.NodeOf[blk.I] == h.gp.NodeOf[k] {
				h.lRowContribution(ctx, blk.I)
			}
		}
	}
}

// sendGathers forwards my accumulated cross-node lsum rows for the new
// current node to their diagonal ranks.
func (h *base3dRank) sendGathers(ctx *runtime.Ctx) {
	for _, k := range h.gp.Sns {
		if h.gp.NodeOf[k] != h.lStage || k%h.p.Layout.Px != h.row {
			continue
		}
		diagCol := k % h.p.Layout.Py
		if h.col == diagCol || !containsCol(h.base().GatherCols[k], h.col) {
			continue
		}
		s := h.getLsum(k)
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(h.z, h.p.DiagRank2D(k)), Tag: tagLReduce, Cat: runtime.CatXY,
			Data: &sumMsg{K: k, S: s}, Bytes: panelBytes(s),
		})
		delete(h.lsum, k)
	}
}

func containsCol(cols []int, c int) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// advanceL moves through node stages once the current stage has quiesced.
func (h *base3dRank) advanceL(ctx *runtime.Ctx) {
	for h.phase == 0 && !h.lAwaitMerge && h.lRemaining[h.lStage] == 0 && len(h.readyY) == 0 {
		if h.lStage < h.s {
			h.lAwaitMerge = true
			return
		}
		h.finishL(ctx)
		return
	}
}

func (h *base3dRank) finishL(ctx *runtime.Ctx) {
	ctx.Mark(MarkLDone)
	if h.z != 0 {
		// Ship every leftover lsum row (all in unprocessed ancestor
		// nodes) to my partner on the continuing grid.
		partner := h.z - (1 << h.s)
		b := &vecBundle{Step: h.s}
		for _, k := range sortedKeys(h.lsum) {
			b.Ks = append(b.Ks, k)
			b.Vs = append(b.Vs, h.lsum[k])
		}
		h.lsum = make(map[int]*sparse.Panel)
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(partner, h.r2d), Tag: tagZGatherL, Cat: runtime.CatZ,
			Data: b, Bytes: b.bytes(),
		})
		h.phase = 1 // await the U bundle
		return
	}
	ctx.Mark(MarkZDone)
	h.phase = 2
	h.uStage = h.s
	h.startU(ctx)
}

// ---- U phase ----

// queueX enqueues a diagonal row for solving exactly once: both the
// phase-start seeding and the dependency counters can discover the same
// ready row.
func (h *base3dRank) queueX(k int) {
	if !h.xQueued[k] {
		h.xQueued[k] = true
		h.readyX = append(h.readyX, k)
	}
}

func (h *base3dRank) startU(ctx *runtime.Ctx) {
	if h.z != 0 {
		ctx.Mark(MarkZDone)
	}
	for _, k := range h.myDiagSns {
		if h.gp.NodeOf[k] <= h.s && h.pendingU[k] == 0 {
			h.queueX(k)
		}
	}
	h.drainReadyX(ctx)
	h.advanceU(ctx)
}

// rebroadcastX forwards a bundle-received x(K) (K in an unprocessed node)
// down my grid's group trees and applies my own blocks.
func (h *base3dRank) rebroadcastX(ctx *runtime.Ctx, k int, xk *sparse.Panel) {
	for _, gt := range h.base().UBcastGroups[k] {
		if gt.Node > h.s {
			continue
		}
		for _, child := range gt.Tree.Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
				Data: &groupMsg{K: k, G: gt.Node, V: xk}, Bytes: panelBytes(xk),
			})
		}
	}
	for _, ref := range h.colU[k] {
		if h.gp.NodeOf[ref.I] > h.s {
			continue
		}
		ctx.Compute(h.applyUBlock(ref, k, xk), nil)
		h.uRowContribution(ctx, ref.I)
	}
}

func (h *base3dRank) applyXGroup(ctx *runtime.Ctx, k, g int, xk *sparse.Panel) {
	for _, ref := range h.colU[k] {
		if h.gp.NodeOf[ref.I] != g {
			continue
		}
		ctx.Compute(h.applyUBlock(ref, k, xk), nil)
		h.uRowContribution(ctx, ref.I)
	}
}

func (h *base3dRank) uRowContribution(ctx *runtime.Ctx, k int) {
	h.pendingU[k]--
	if h.pendingU[k] != 0 {
		return
	}
	t := h.base().UReduceFlat[k]
	if t.Root() == h.r2d {
		h.queueX(k)
		return
	}
	s := h.getUsum(k)
	ctx.Send(runtime.Msg{
		Dst: h.p.GlobalRank(h.z, t.Parent(h.r2d)), Tag: tagUReduce, Cat: runtime.CatXY,
		Data: &sumMsg{K: k, S: s}, Bytes: panelBytes(s),
	})
	delete(h.usum, k)
}

func (h *base3dRank) drainReadyX(ctx *runtime.Ctx) {
	for len(h.readyX) > 0 {
		k := h.readyX[0]
		h.readyX = h.readyX[1:]
		xk, secs := h.diagSolveX(k)
		ctx.Compute(secs, nil)
		h.xl[k] = xk
		if h.gp.OwnerGridOfSn(k) == h.z {
			h.writeX(k, xk)
		}
		for _, gt := range h.base().UBcastGroups[k] {
			for _, child := range gt.Tree.Children(h.r2d) {
				ctx.Send(runtime.Msg{
					Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
					Data: &groupMsg{K: k, G: gt.Node, V: xk}, Bytes: panelBytes(xk),
				})
			}
		}
		for _, ref := range h.colU[k] {
			ctx.Compute(h.applyUBlock(ref, k, xk), nil)
			h.uRowContribution(ctx, ref.I)
		}
	}
}

// advanceU retires node stages top-down, sending the pairwise x bundle to
// the grid that resumes at each level.
func (h *base3dRank) advanceU(ctx *runtime.Ctx) {
	for h.phase == 2 && h.uRemaining[h.uStage] == 0 && len(h.readyX) == 0 {
		if h.uStage >= 1 {
			partner := h.z + (1 << (h.uStage - 1))
			b := &vecBundle{Step: h.uStage}
			for _, k := range sortedKeys(h.xl) {
				if h.gp.NodeOf[k] >= h.uStage {
					b.Ks = append(b.Ks, k)
					b.Vs = append(b.Vs, h.xl[k])
				}
			}
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(partner, h.r2d), Tag: tagZBcastU, Cat: runtime.CatZ,
				Data: b, Bytes: b.bytes(),
			})
			h.uStage--
			continue
		}
		ctx.Mark(MarkUDone)
		h.phase = 3
		return
	}
}

func sortedKeys(m map[int]*sparse.Panel) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
