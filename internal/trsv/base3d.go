package trsv

import (
	"fmt"
	"sort"

	"sptrsv/internal/dist"
	"sptrsv/internal/fault"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// base3dRank implements the baseline 3D SpTRSV (Sao et al., ICS '19) for
// one rank. Grid z (with s trailing zero bits) processes path nodes
// 0 (leaf) through s, one at a time:
//
//	L-solve, node i: pre-gathered cross-node lsum + message-driven 2D solve
//	  with one flat broadcast tree per (column, row-node) pair and a flat
//	  within-node reduction; then a pairwise inter-grid merge of leftover
//	  lsum rows with grid z+2^i (the per-level synchronization the proposed
//	  algorithm eliminates);
//	U-solve: the mirror image, top-down, with pairwise x broadcasts.
//
// With Pz=1 this is the classic 2D solver with flat communication.
type base3dRank struct {
	rankCore

	s int // trailing zeros of z, capped at L = log2(Pz)
}

// groupMsg is a y/x broadcast restricted to one row-node group.
type groupMsg struct {
	K, G int
	W    wirePanel
}

// NewBaseline3D returns the handler factory for the baseline algorithm
// under the default execution mode. dist.Plan.BuildBaseline must have run
// (Solve does it).
func NewBaseline3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel) func(rank int) runtime.Handler {
	return newBaseline3D(p, model, b, x, SolveOpts{})
}

func newBaseline3D(p *dist.Plan, model *machine.Model, b, x *sparse.Panel, opts SolveOpts) func(rank int) runtime.Handler {
	if err := p.BuildBaseline(); err != nil {
		// Unreachable from SolveInto, which builds the baseline plan (with an
		// error return) before constructing the factory.
		panic(&fault.ProtocolError{Rank: -1, Phase: "plan",
			Msg: fmt.Sprintf("baseline plan build failed: %v", err)})
	}
	return func(rank int) runtime.Handler {
		h := &base3dRank{}
		h.rankCore.init(p, model, rank, b, x, opts)
		return h
	}
}

func (h *base3dRank) Done() bool { return h.st.phase == 3 }

func (h *base3dRank) base() *dist.Baseline { return h.gp.Base }

func (h *base3dRank) Init(ctx *runtime.Ctx) {
	bb := h.base()
	h.s = bb.S
	rd := bb.Ranks[h.r2d]
	st := h.st
	copyCounts(st.pendingL, rd.PendingL)
	copyCounts(st.pendingU, rd.PendingU)
	st.lRemaining = append(st.lRemaining[:0], rd.LRemaining...)
	st.uRemaining = append(st.uRemaining[:0], rd.URemaining...)

	// Kick off the leaf node.
	for _, k := range h.myDiagSns {
		if h.gp.NodeOf[k] == 0 && st.pendingL[k] == 0 {
			st.enqueueY(k)
		}
	}
	h.drainReadyY(ctx, h)
	h.advanceL(ctx)
	h.drainDeferred(ctx, h)
	h.armElastic(ctx)
}

func (h *base3dRank) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	h.dispatch(ctx, m, h)
	h.armElastic(ctx)
}

func (h *base3dRank) accepts(m runtime.Msg) bool {
	st := h.st
	switch m.Tag {
	case tagYBcast:
		return st.phase == 0 && !st.lAwaitMerge && h.gp.NodeOf[m.Data.(*groupMsg).K] == st.lStage
	case tagLReduce:
		return st.phase == 0 && !st.lAwaitMerge && h.gp.NodeOf[m.Data.(*sumMsg).K] == st.lStage
	case tagZGatherL:
		return st.phase == 0 && st.lAwaitMerge && m.Data.(*vecBundle).Step == st.lStage
	case tagZBcastU:
		return st.phase == 1
	case tagXBcast, tagUReduce:
		return st.phase == 2
	}
	panic(&fault.ProtocolError{Rank: h.rank, Tag: m.Tag, Phase: baselinePhase(h.st.phase),
		Msg: fmt.Sprintf("baseline received unexpected tag %d from rank %d", m.Tag, m.Src)})
}

// DeadOnArrival implements runtime.DeadLetterer: the phase and the L-stage
// cursor only advance, so traffic for an earlier phase or a completed
// L-stage parks forever and must not charge wait time.
func (h *base3dRank) DeadOnArrival(m runtime.Msg) bool {
	st := h.st
	if st == nil {
		return true
	}
	switch m.Tag {
	case tagYBcast:
		return st.phase > 0 || (st.phase == 0 && h.gp.NodeOf[m.Data.(*groupMsg).K] < st.lStage)
	case tagLReduce:
		return st.phase > 0 || (st.phase == 0 && h.gp.NodeOf[m.Data.(*sumMsg).K] < st.lStage)
	case tagZGatherL:
		return st.phase > 0 || (st.phase == 0 && m.Data.(*vecBundle).Step < st.lStage)
	case tagZBcastU:
		return st.phase > 1
	case tagXBcast, tagUReduce:
		return st.phase > 2
	}
	return false
}

func (h *base3dRank) process(ctx *runtime.Ctx, m runtime.Msg) {
	st := h.st
	switch m.Tag {
	case tagYBcast:
		d := m.Data.(*groupMsg)
		st.lRemaining[st.lStage]--
		h.applyYGroup(ctx, d.K, d.G, h.unpackPanel(&d.W))
		h.drainReadyY(ctx, h)
		h.advanceL(ctx)
	case tagLReduce:
		d := m.Data.(*sumMsg)
		st.lRemaining[st.lStage]--
		addWire(h.getLsum(d.K), &d.W)
		h.lContribution(ctx, d.K, h.base().LReduceNode[d.K])
		h.drainReadyY(ctx, h)
		h.advanceL(ctx)
	case tagZGatherL:
		d := m.Data.(*vecBundle)
		for i, k := range d.Ks {
			addWire(h.getLsum(k), &d.Ws[i])
		}
		st.lAwaitMerge = false
		st.lStage++
		h.sendGathers(ctx)
		for _, k := range h.myDiagSns {
			if h.gp.NodeOf[k] == st.lStage && st.pendingL[k] == 0 {
				st.enqueueY(k)
			}
		}
		h.drainReadyY(ctx, h)
		h.advanceL(ctx)
	case tagZBcastU:
		d := m.Data.(*vecBundle)
		st.phase = 2
		st.uStage = h.s
		for i, k := range d.Ks {
			st.xl[k] = h.unpackPanel(&d.Ws[i])
		}
		for _, k := range d.Ks {
			h.rebroadcastX(ctx, k, st.xl[k])
		}
		h.startU(ctx)
	case tagXBcast:
		d := m.Data.(*groupMsg)
		stage := h.gp.NodeOf[d.K]
		if stage > h.s {
			stage = h.s // re-broadcasts are charged to stage s
		}
		st.uRemaining[stage]--
		h.applyXGroup(ctx, d.K, d.G, h.unpackPanel(&d.W))
		h.drainReadyX(ctx, h)
		h.advanceU(ctx)
	case tagUReduce:
		d := m.Data.(*sumMsg)
		st.uRemaining[h.gp.NodeOf[d.K]]--
		addWire(h.getUsum(d.K), &d.W)
		h.uContribution(ctx, d.K, h.base().UReduceFlat[d.K])
		h.drainReadyX(ctx, h)
		h.advanceU(ctx)
	}
}

// ---- L phase ----

// applyYGroup applies my column-K blocks whose rows live in node group g.
func (h *base3dRank) applyYGroup(ctx *runtime.Ctx, k, g int, yk *sparse.Panel) {
	for _, blk := range h.colL[k] {
		if h.gp.NodeOf[blk.I] != g {
			continue
		}
		ctx.ComputeT(TagApplyL, h.applyLBlock(blk, k, yk), nil)
		if g == h.gp.NodeOf[k] {
			h.lContribution(ctx, blk.I, h.base().LReduceNode[blk.I])
		}
	}
}

// keepB implements diagSolver: the baseline always keeps b(K) — its grids
// partition the path nodes, never replicate them.
//
// The baseline stays on map dependency counters even when scheduled (its
// counter templates are per-node-group and live on the baseline plan, not
// the level schedule) and on the plan's per-group broadcast trees; it
// still gains the arena panels and level-sweep drains.
func (h *base3dRank) keepB(int) bool { return true }

// solveY performs one L-phase diagonal solve plus the baseline's
// per-row-node-group broadcasts (diagSolver, driven by the shared drain).
func (h *base3dRank) solveY(ctx *runtime.Ctx, k int) {
	yk, secs := h.solveYPanel(k, true)
	ctx.ComputeT(TagDiagSolveL, secs, nil)
	delete(h.st.lsum, k)
	h.st.y[k] = yk
	// One broadcast per row-node group (the baseline's extra messages);
	// the subvector is packed once and shared by every hop.
	wy, ybytes := h.packSend(yk)
	for _, gt := range h.base().LBcastGroups[k] {
		for _, child := range gt.Tree.Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagYBcast, Cat: runtime.CatXY,
				Data: &groupMsg{K: k, G: gt.Node, W: wy}, Bytes: ybytes,
			})
		}
	}
	// Apply my own blocks across all groups.
	for _, blk := range h.colL[k] {
		ctx.ComputeT(TagApplyL, h.applyLBlock(blk, k, yk), nil)
		if h.gp.NodeOf[blk.I] == h.gp.NodeOf[k] {
			h.lContribution(ctx, blk.I, h.base().LReduceNode[blk.I])
		}
	}
}

// sendGathers forwards my accumulated cross-node lsum rows for the new
// current node to their diagonal ranks.
func (h *base3dRank) sendGathers(ctx *runtime.Ctx) {
	st := h.st
	for _, k := range h.gp.Sns {
		if h.gp.NodeOf[k] != st.lStage || k%h.p.Layout.Px != h.row {
			continue
		}
		diagCol := k % h.p.Layout.Py
		if h.col == diagCol || !containsCol(h.base().GatherCols[k], h.col) {
			continue
		}
		s := h.getLsum(k)
		w, bytes := h.packSend(s)
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(h.z, h.p.DiagRank2D(k)), Tag: tagLReduce, Cat: runtime.CatXY,
			Data: &sumMsg{K: k, W: w}, Bytes: bytes,
		})
		delete(st.lsum, k)
	}
}

func containsCol(cols []int, c int) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// advanceL moves through node stages once the current stage has quiesced.
func (h *base3dRank) advanceL(ctx *runtime.Ctx) {
	st := h.st
	for st.phase == 0 && !st.lAwaitMerge && st.lRemaining[st.lStage] == 0 && len(st.readyY) == 0 {
		if st.lStage < h.s {
			st.lAwaitMerge = true
			return
		}
		h.finishL(ctx)
		return
	}
}

func (h *base3dRank) finishL(ctx *runtime.Ctx) {
	ctx.Mark(MarkLDone)
	st := h.st
	if h.z != 0 {
		// Ship every leftover lsum row (all in unprocessed ancestor
		// nodes) to my partner on the continuing grid.
		partner := h.z - (1 << h.s)
		b := &vecBundle{Step: h.s}
		for _, k := range sortedKeys(st.lsum) {
			b.Ks = append(b.Ks, k)
			b.Ws = append(b.Ws, packPanel(st.lsum[k], h.comm))
		}
		clear(st.lsum) // ownership of the panels moved into the bundle
		ctx.Send(runtime.Msg{
			Dst: h.p.GlobalRank(partner, h.r2d), Tag: tagZGatherL, Cat: runtime.CatZ,
			Data: b, Bytes: b.bytes(),
		})
		st.phase = 1 // await the U bundle
		return
	}
	ctx.Mark(MarkZDone)
	st.phase = 2
	st.uStage = h.s
	h.startU(ctx)
}

// ---- U phase ----

func (h *base3dRank) startU(ctx *runtime.Ctx) {
	st := h.st
	if h.z != 0 {
		ctx.Mark(MarkZDone)
	}
	for _, k := range h.myDiagSns {
		if h.gp.NodeOf[k] <= h.s && st.pendingU[k] == 0 {
			st.enqueueX(k)
		}
	}
	h.drainReadyX(ctx, h)
	h.advanceU(ctx)
}

// rebroadcastX forwards a bundle-received x(K) (K in an unprocessed node)
// down my grid's group trees and applies my own blocks.
func (h *base3dRank) rebroadcastX(ctx *runtime.Ctx, k int, xk *sparse.Panel) {
	wx, xbytes := h.packSend(xk)
	for _, gt := range h.base().UBcastGroups[k] {
		if gt.Node > h.s {
			continue
		}
		for _, child := range gt.Tree.Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
				Data: &groupMsg{K: k, G: gt.Node, W: wx}, Bytes: xbytes,
			})
		}
	}
	for _, ref := range h.colU[k] {
		if h.gp.NodeOf[ref.I] > h.s {
			continue
		}
		ctx.ComputeT(TagApplyU, h.applyUBlock(ref, k, xk), nil)
		h.uContribution(ctx, ref.I, h.base().UReduceFlat[ref.I])
	}
}

func (h *base3dRank) applyXGroup(ctx *runtime.Ctx, k, g int, xk *sparse.Panel) {
	for _, ref := range h.colU[k] {
		if h.gp.NodeOf[ref.I] != g {
			continue
		}
		ctx.ComputeT(TagApplyU, h.applyUBlock(ref, k, xk), nil)
		h.uContribution(ctx, ref.I, h.base().UReduceFlat[ref.I])
	}
}

// solveX performs one U-phase diagonal solve plus the group broadcasts.
func (h *base3dRank) solveX(ctx *runtime.Ctx, k int) {
	xk, secs := h.solveXPanel(k)
	ctx.ComputeT(TagDiagSolveU, secs, nil)
	h.st.xl[k] = xk
	if h.gp.OwnerGridOfSn(k) == h.z {
		h.writeX(k, xk)
	}
	wx, xbytes := h.packSend(xk)
	for _, gt := range h.base().UBcastGroups[k] {
		for _, child := range gt.Tree.Children(h.r2d) {
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(h.z, child), Tag: tagXBcast, Cat: runtime.CatXY,
				Data: &groupMsg{K: k, G: gt.Node, W: wx}, Bytes: xbytes,
			})
		}
	}
	for _, ref := range h.colU[k] {
		ctx.ComputeT(TagApplyU, h.applyUBlock(ref, k, xk), nil)
		h.uContribution(ctx, ref.I, h.base().UReduceFlat[ref.I])
	}
}

// advanceU retires node stages top-down, sending the pairwise x bundle to
// the grid that resumes at each level.
func (h *base3dRank) advanceU(ctx *runtime.Ctx) {
	st := h.st
	for st.phase == 2 && st.uRemaining[st.uStage] == 0 && len(st.readyX) == 0 {
		if st.uStage >= 1 {
			partner := h.z + (1 << (st.uStage - 1))
			b := &vecBundle{Step: st.uStage}
			for _, k := range sortedKeys(st.xl) {
				if h.gp.NodeOf[k] >= st.uStage {
					b.Ks = append(b.Ks, k)
					b.Ws = append(b.Ws, packPanel(st.xl[k], h.comm))
				}
			}
			ctx.Send(runtime.Msg{
				Dst: h.p.GlobalRank(partner, h.r2d), Tag: tagZBcastU, Cat: runtime.CatZ,
				Data: b, Bytes: b.bytes(),
			})
			st.uStage--
			continue
		}
		ctx.Mark(MarkUDone)
		st.phase = 3
		return
	}
}

// ---- elastic forcing ----

// forceStale implements elasticForcer for the baseline's staged protocol.
// The baseline maps its phases onto the same three deadlines as the
// proposed algorithm: phase 0 covers every L node stage including the
// pairwise merges between them, phase 1 the inter-grid x bundle wait, and
// phase 2 the staged U sweep.
func (h *base3dRank) forceStale(ctx *runtime.Ctx, phase int) {
	if h.st.phase == 0 {
		h.forceL(ctx)
	}
	// Consume messages a closure just made admissible before declaring the
	// next phase's inputs missing.
	h.drainDeferred(ctx, h)
	if phase >= 1 && h.st.phase == 1 {
		// The partner grid's x bundle never came: every x value from the
		// unprocessed ancestor nodes reads as missing, so all of this
		// rank's U solves may be stale.
		for _, k := range h.myDiagSns {
			if h.gp.NodeOf[k] <= h.s {
				h.markStaleU(k)
			}
		}
		st := h.st
		st.phase = 2
		st.uStage = h.s
		h.startU(ctx)
		h.drainDeferred(ctx, h)
	}
	if phase >= 2 && h.st.phase == 2 {
		h.forceU(ctx)
	}
}

// forceL drives the staged L sweep to completion: each open stage's
// unsolved diagonal rows are solved with their current partial sums, each
// pending inter-grid merge is synthesized as an empty bundle (the
// partner's leftover sums read as zero — every row at or above the merge
// stage is conservatively marked stale), and the stage-advance machinery
// runs as usual so the protocol's own gathers and finishing bundle still
// go out.
func (h *base3dRank) forceL(ctx *runtime.Ctx) {
	st := h.st
	for st.phase == 0 {
		// A stage advance can make early-arrived (deferred) messages for
		// the new stage admissible — real data beats synthesized zeros.
		h.drainDeferred(ctx, h)
		if st.phase != 0 {
			return
		}
		if st.lAwaitMerge {
			st.lAwaitMerge = false
			st.lStage++
			for _, k := range h.myDiagSns {
				if h.gp.NodeOf[k] >= st.lStage {
					h.markStaleL(k)
				}
			}
			h.sendGathers(ctx)
			for _, k := range h.myDiagSns {
				if h.gp.NodeOf[k] == st.lStage && st.pendingL[k] == 0 {
					st.enqueueY(k)
				}
			}
			h.drainReadyY(ctx, h)
			h.advanceL(ctx)
			continue
		}
		for _, k := range h.myDiagSns {
			if h.gp.NodeOf[k] == st.lStage && st.y[k] == nil {
				h.markStaleL(k)
				st.pendingL[k] = 0
				st.enqueueY(k)
			}
		}
		st.lRemaining[st.lStage] = 0
		h.drainReadyY(ctx, h)
		h.advanceL(ctx)
	}
}

// forceU closes the staged U sweep: unsolved diagonal rows of this grid's
// nodes solve with their current partial sums and every stage budget is
// dropped, so advanceU runs the stages down — still emitting the pairwise
// x bundles partner grids may be waiting for.
func (h *base3dRank) forceU(ctx *runtime.Ctx) {
	st := h.st
	for _, k := range h.myDiagSns {
		if h.gp.NodeOf[k] <= h.s && st.xl[k] == nil {
			h.markStaleU(k)
			st.pendingU[k] = 0
			st.enqueueX(k)
		}
	}
	for i := range st.uRemaining {
		st.uRemaining[i] = 0
	}
	h.drainReadyX(ctx, h)
	h.advanceU(ctx)
}

func sortedKeys(m map[int]*sparse.Panel) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
