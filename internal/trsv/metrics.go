package trsv

import "sptrsv/internal/metrics"

// Solve metrics, published once per solve by SolveInto after the backend
// run has quiesced. The kernels bump plain integers on the per-rank solve
// state (single-writer during a run), so the hot paths never touch the
// registry and the discrete-event schedule is unperturbed.
var (
	mSolves = metrics.Default().Counter("sptrsv_trsv_solves",
		"Distributed triangular solves, by algorithm and outcome.", "algorithm", "status")
	mPhaseOps = metrics.Default().Counter("sptrsv_trsv_phase_ops",
		"Numeric kernel invocations summed over ranks, by solve phase: diagonal solves (diag_y, diag_x) and off-diagonal block applications (l_block, u_block).",
		"algorithm", "phase")
	mARRounds = metrics.Default().Counter("sptrsv_trsv_allreduce_rounds",
		"Inter-grid exchange rounds summed over ranks: sparse-allreduce reduce/bcast bundles, or the naive per-node butterfly exchanges.",
		"algorithm", "kind")
	mSweeps = metrics.Default().Counter("sptrsv_trsv_level_sweeps",
		"Scheduled-execution level sweeps summed over ranks (kind=sweeps) and the tasks they covered (kind=tasks); zero on the handler path.",
		"algorithm", "kind")
	mStale = metrics.Default().Counter("sptrsv_trsv_stale_supernodes",
		"Elastic-mode supernode solves that consumed stale or missing inputs after a staleness-deadline forced their phase closed, summed over ranks; zero on strict solves.",
		"algorithm")
	mForcedTicks = metrics.Default().Counter("sptrsv_trsv_forced_ticks",
		"Elastic-mode staleness-deadline ticks that fired with their phase still open and forced it, summed over ranks.",
		"algorithm")
)

// solveCounts tallies one rank's kernel and exchange activity during a
// single solve. It lives on solveState, is reset by release, and is summed
// across ranks before publication.
type solveCounts struct {
	diagY, diagX     int // diagonal panel solves (L phase, U phase)
	lBlocks, uBlocks int // off-diagonal block products applied
	arReduce         int // sparse-allreduce reduce bundles merged
	arBcast          int // sparse-allreduce broadcast bundles installed
	naiveRounds      int // strawman butterfly exchanges merged
	sweeps           int // scheduled-execution level sweeps run
	sweepTasks       int // tasks covered by those sweeps
	staleRows        int // elastic: supernode solves that consumed stale inputs
	forcedTicks      int // elastic: deadline ticks that forced an open phase
}

func (a *solveCounts) accumulate(b solveCounts) {
	a.diagY += b.diagY
	a.diagX += b.diagX
	a.lBlocks += b.lBlocks
	a.uBlocks += b.uBlocks
	a.arReduce += b.arReduce
	a.arBcast += b.arBcast
	a.naiveRounds += b.naiveRounds
	a.sweeps += b.sweeps
	a.sweepTasks += b.sweepTasks
	a.staleRows += b.staleRows
	a.forcedTicks += b.forcedTicks
}

// countsReporter exposes a handler's per-solve tallies; rankCore implements
// it, so every algorithm reports through the same hook SolveInto already
// uses for state release.
type countsReporter interface{ solveCounts() solveCounts }

func (c *rankCore) solveCounts() solveCounts {
	if c.st == nil {
		return solveCounts{}
	}
	return c.st.counts
}

// publishSolve records one solve's aggregate tallies under the algorithm
// label.
func publishSolve(algo Algorithm, total solveCounts, failed bool) {
	a := algo.String()
	status := "ok"
	if failed {
		status = "error"
	}
	mSolves.With(a, status).Inc()
	type pc struct {
		phase string
		n     int
	}
	for _, p := range []pc{
		{"diag_y", total.diagY}, {"diag_x", total.diagX},
		{"l_block", total.lBlocks}, {"u_block", total.uBlocks},
	} {
		if p.n > 0 {
			mPhaseOps.With(a, p.phase).Add(float64(p.n))
		}
	}
	for _, p := range []pc{
		{"reduce", total.arReduce}, {"bcast", total.arBcast},
		{"naive", total.naiveRounds},
	} {
		if p.n > 0 {
			mARRounds.With(a, p.phase).Add(float64(p.n))
		}
	}
	for _, p := range []pc{
		{"sweeps", total.sweeps}, {"tasks", total.sweepTasks},
	} {
		if p.n > 0 {
			mSweeps.With(a, p.phase).Add(float64(p.n))
		}
	}
	if total.staleRows > 0 {
		mStale.With(a).Add(float64(total.staleRows))
	}
	if total.forcedTicks > 0 {
		mForcedTicks.With(a).Add(float64(total.forcedTicks))
	}
}
