package trsv

import (
	"fmt"
	"testing"
	"time"

	"sptrsv/internal/ctree"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
)

// eventCounts tallies send/recv/compute events per (kind, category, tag) —
// the part of the trace schema that must be identical across backends. Wait
// events are excluded (the pool only blocks when a message is genuinely
// late; the simulator waits deterministically) and so are elapse events
// (pure simulation artifacts with no pool analog).
func eventCounts(tr *runtime.Trace) map[string]int {
	out := map[string]int{}
	for _, evs := range tr.Ranks {
		for i := range evs {
			e := &evs[i]
			switch e.Kind {
			case runtime.EvSend, runtime.EvRecv, runtime.EvCompute:
				out[fmt.Sprintf("%s/%s/%d", e.Kind, e.Cat, e.Tag)]++
			}
		}
	}
	return out
}

// TestTraceParityAcrossBackends pins that the simulator and the goroutine
// pool record the same communication and compute events for the same
// algorithm: every (kind, category, tag) count must match exactly. A drift
// here means one backend's instrumentation was edited without the other.
func TestTraceParityAcrossBackends(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 15), 2, 8)
	model := machine.CoriHaswell()
	sim := SimBackend{Opts: runtime.Options{Trace: true}}
	pool := PoolBackend{Pool: runtime.Pool{Timeout: 60 * time.Second, Opts: runtime.Options{Trace: true}}}

	cases := []struct {
		algo Algorithm
		kind ctree.Kind
		lay  grid.Layout
	}{
		{Proposed3D, ctree.Binary, grid.Layout{Px: 2, Py: 2, Pz: 4}},
		{Proposed3D, ctree.Flat, grid.Layout{Px: 2, Py: 1, Pz: 2}},
		{Baseline3D, ctree.Flat, grid.Layout{Px: 2, Py: 2, Pz: 2}},
	}
	for _, c := range cases {
		resSim := checkSolve(t, pl, c.lay, c.kind, c.algo, sim, model, 1, 48)
		resPool := checkSolve(t, pl, c.lay, c.kind, c.algo, pool, model, 1, 48)
		if resSim.Trace == nil || resPool.Trace == nil {
			t.Fatalf("%v %+v: missing trace", c.algo, c.lay)
		}
		if !resSim.Trace.Complete() || !resPool.Trace.Complete() {
			t.Fatalf("%v %+v: dropped events", c.algo, c.lay)
		}
		cs, cp := eventCounts(resSim.Trace), eventCounts(resPool.Trace)
		for k, n := range cs {
			if cp[k] != n {
				t.Errorf("%v %+v: %s count sim=%d pool=%d", c.algo, c.lay, k, n, cp[k])
			}
		}
		for k, n := range cp {
			if _, ok := cs[k]; !ok {
				t.Errorf("%v %+v: %s seen only in pool (count %d)", c.algo, c.lay, k, n)
			}
		}
	}
}

// TestTraceCriticalPathBoundOnSuite is the acceptance check from the
// paper-repro roadmap: on every suite matrix, a traced DES run of the
// proposed algorithm yields a critical path no longer than the makespan.
func TestTraceCriticalPathBoundOnSuite(t *testing.T) {
	model := machine.CoriHaswell()
	sim := SimBackend{Opts: runtime.Options{Trace: true}}
	for _, name := range gen.SuiteNames() {
		m := gen.Named(name, gen.Small)
		if m.A.N > 1200 {
			continue
		}
		pl := buildPipeline(t, m.A, 2, 16)
		res := checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 4}, ctree.Auto, Proposed3D, sim, model, 1, 49)
		cp, err := res.CriticalPath()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cp.Length > cp.Makespan*(1+1e-12) {
			t.Errorf("%s: critical path %g exceeds makespan %g", name, cp.Length, cp.Makespan)
		}
		if cp.Length <= 0 || len(cp.Steps) == 0 {
			t.Errorf("%s: empty critical path on a real solve", name)
		}
	}
}

// TestTraceTagNames ensures every event recorded during real solves carries
// a tag the TagName table knows, so traces and edge listings never show
// bare numbers for first-party traffic.
func TestTraceTagNames(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(12, 12, 16), 2, 8)
	sim := SimBackend{Opts: runtime.Options{Trace: true}}
	for _, algo := range []Algorithm{Proposed3D, Baseline3D} {
		res := checkSolve(t, pl, grid.Layout{Px: 2, Py: 2, Pz: 2}, ctree.Binary, algo, sim, machine.CoriHaswell(), 1, 50)
		for rank, evs := range res.Trace.Ranks {
			for i := range evs {
				e := &evs[i]
				switch e.Kind {
				case runtime.EvSend, runtime.EvRecv:
					if TagName(e.Tag) == "" {
						t.Fatalf("%v rank %d: message tag %d has no name", algo, rank, e.Tag)
					}
				case runtime.EvCompute:
					if e.Tag != 0 && TagName(e.Tag) == "" {
						t.Fatalf("%v rank %d: compute tag %d has no name", algo, rank, e.Tag)
					}
				}
			}
		}
	}
}
