package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// Algorithm selects a distributed SpTRSV variant.
type Algorithm int

const (
	// Proposed3D is the paper's contribution (Alg. 1): one inter-grid
	// synchronization via sparse allreduce. With Pz=1 it is the 2D solver
	// with the plan's tree kind.
	Proposed3D Algorithm = iota
	// Baseline3D is the level-by-level 3D algorithm of Sao et al. (ICS
	// '19) with O(log Pz) inter-grid exchanges and per-node-group flat
	// communication. With Pz=1 it is the classic 2D solver.
	Baseline3D
	// GPUSingle is the proposed 3D algorithm with each 2D grid collapsed
	// to one GPU (Px=Py=1, Alg. 4): no intra-grid communication, task-
	// parallel execution on SM slots. Simulation backend only.
	GPUSingle
	// GPUMulti is the proposed 3D algorithm with NVSHMEM-style multi-GPU
	// 2D grids (Alg. 5), Py=1 layouts. Simulation backend only.
	GPUMulti
	// Proposed3DNaiveAR is the proposed algorithm with the sparse
	// allreduce replaced by a per-node strawman exchange — the §3.2
	// ablation.
	Proposed3DNaiveAR
)

func (a Algorithm) String() string {
	switch a {
	case Proposed3D:
		return "proposed-3d"
	case Baseline3D:
		return "baseline-3d"
	case GPUSingle:
		return "gpu-single"
	case GPUMulti:
		return "gpu-multi"
	case Proposed3DNaiveAR:
		return "proposed-3d-naive-allreduce"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// stateReleaser is implemented by every handler embedding rankCore; Solve
// uses it to hand the per-solve state back to the pool after the run.
type stateReleaser interface{ releaseState() }

// Solve runs one distributed triangular solve of L·U·x = b on the given
// backend and returns the solution panel (in the permuted ordering of the
// plan's factors) together with the per-rank timing result.
//
// The plan is only read, so any number of Solve calls may run concurrently
// against the same plan, each with its own RHS.
func Solve(p *dist.Plan, model *machine.Model, algo Algorithm, back Backend, b *sparse.Panel) (*sparse.Panel, *runtime.Result, error) {
	x := sparse.NewPanel(b.Rows, b.Cols)
	res, err := SolveInto(p, model, algo, back, b, x)
	if err != nil {
		return nil, nil, err
	}
	return x, res, nil
}

// SolveInto is Solve writing the solution into a caller-provided panel
// (which it zeroes first), letting repeated solves reuse output storage.
// Each rank handler draws its per-solve execution state from a shared pool
// and returns it when the run completes, so steady-state repeated solves
// allocate little beyond the solution subvectors themselves.
func SolveInto(p *dist.Plan, model *machine.Model, algo Algorithm, back Backend, b, x *sparse.Panel) (*runtime.Result, error) {
	if b.Rows != p.M.N {
		return nil, fmt.Errorf("trsv: rhs has %d rows, matrix has %d", b.Rows, p.M.N)
	}
	if x.Rows != b.Rows || x.Cols != b.Cols {
		return nil, fmt.Errorf("trsv: output panel is %dx%d, rhs is %dx%d", x.Rows, x.Cols, b.Rows, b.Cols)
	}
	x.Zero()
	var factory func(int) runtime.Handler
	switch algo {
	case Proposed3D:
		factory = NewProposed3D(p, model, b, x)
	case Proposed3DNaiveAR:
		factory = NewProposed3DNaiveAR(p, model, b, x)
	case Baseline3D:
		if err := p.BuildBaseline(); err != nil {
			return nil, err
		}
		factory = NewBaseline3D(p, model, b, x)
	case GPUSingle:
		if p.Layout.Px != 1 || p.Layout.Py != 1 {
			return nil, fmt.Errorf("trsv: gpu-single requires Px=Py=1, got %dx%d", p.Layout.Px, p.Layout.Py)
		}
		if model.GPU == nil {
			return nil, fmt.Errorf("trsv: model %s has no GPU parameters", model.Name)
		}
		factory = NewGPUSingle(p, model, b, x)
	case GPUMulti:
		if p.Layout.Py != 1 {
			return nil, fmt.Errorf("trsv: gpu-multi requires Py=1, got Py=%d", p.Layout.Py)
		}
		if model.GPU == nil {
			return nil, fmt.Errorf("trsv: model %s has no GPU parameters", model.Name)
		}
		factory = NewGPUMulti(p, model, b, x)
	default:
		return nil, fmt.Errorf("trsv: unknown algorithm %v", algo)
	}

	// Track the handlers so their pooled solve states can be released once
	// the backend has fully quiesced (both backends only return after every
	// rank has stopped executing).
	handlers := make([]runtime.Handler, p.Layout.Size())
	wrapped := func(rank int) runtime.Handler {
		h := factory(rank)
		handlers[rank] = h
		return h
	}
	res, err := back.Run(p.Layout.Size(), model.Net(), wrapped)
	// Collect each rank's kernel tallies before the states go back to the
	// pool (release zeroes them), then publish the solve once.
	var total solveCounts
	for _, h := range handlers {
		if cr, ok := h.(countsReporter); ok {
			total.accumulate(cr.solveCounts())
		}
		if r, ok := h.(stateReleaser); ok {
			r.releaseState()
		}
	}
	publishSolve(algo, total, err != nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}
