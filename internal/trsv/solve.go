package trsv

import (
	"fmt"

	"sptrsv/internal/dist"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sched"
	"sptrsv/internal/sparse"
)

// Algorithm selects a distributed SpTRSV variant.
type Algorithm int

const (
	// Proposed3D is the paper's contribution (Alg. 1): one inter-grid
	// synchronization via sparse allreduce. With Pz=1 it is the 2D solver
	// with the plan's tree kind.
	Proposed3D Algorithm = iota
	// Baseline3D is the level-by-level 3D algorithm of Sao et al. (ICS
	// '19) with O(log Pz) inter-grid exchanges and per-node-group flat
	// communication. With Pz=1 it is the classic 2D solver.
	Baseline3D
	// GPUSingle is the proposed 3D algorithm with each 2D grid collapsed
	// to one GPU (Px=Py=1, Alg. 4): no intra-grid communication, task-
	// parallel execution on SM slots. Simulation backend only.
	GPUSingle
	// GPUMulti is the proposed 3D algorithm with NVSHMEM-style multi-GPU
	// 2D grids (Alg. 5), Py=1 layouts. Simulation backend only.
	GPUMulti
	// Proposed3DNaiveAR is the proposed algorithm with the sparse
	// allreduce replaced by a per-node strawman exchange — the §3.2
	// ablation.
	Proposed3DNaiveAR
)

func (a Algorithm) String() string {
	switch a {
	case Proposed3D:
		return "proposed-3d"
	case Baseline3D:
		return "baseline-3d"
	case GPUSingle:
		return "gpu-single"
	case GPUMulti:
		return "gpu-multi"
	case Proposed3DNaiveAR:
		return "proposed-3d-naive-allreduce"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ExecMode selects how the rank handlers execute a solve: against the
// plan's precomputed level/DAG schedule, or on the original per-message
// handler bookkeeping. Both modes exchange the same messages in the same
// order and produce bit-identical solutions and simulated clocks — the
// handler path stays selectable as the correctness oracle — but the
// scheduled path runs its ready queues as flat level sweeps over the
// schedule (one trace span per sweep, near-zero per-task allocation, and
// work-stealing parallelism across a level on the pool backend).
type ExecMode int

const (
	// ExecAuto picks the default mode (currently the scheduled path).
	ExecAuto ExecMode = iota
	// ExecSched runs on the precomputed level/DAG schedule.
	ExecSched
	// ExecHandler runs the original per-message handler path — the oracle
	// the scheduled path is validated against.
	ExecHandler
)

func (e ExecMode) String() string {
	switch e {
	case ExecAuto:
		return "auto"
	case ExecSched:
		return "sched"
	case ExecHandler:
		return "handler"
	}
	return fmt.Sprintf("ExecMode(%d)", int(e))
}

// Resolve maps ExecAuto to the concrete default mode.
func (e ExecMode) Resolve() ExecMode {
	if e == ExecAuto {
		return ExecSched
	}
	return e
}

// Valid reports whether e is a known mode.
func (e ExecMode) Valid() bool {
	return e == ExecAuto || e == ExecSched || e == ExecHandler
}

// SolveMode selects the blocking discipline of cross-rank dependencies.
// Strict mode is the historical contract: every rank blocks until each
// dependency arrives, so a single straggler stretches the whole critical
// path. Elastic mode bounds that wait: a rank whose phase is more than the
// staleness bound S dependency levels behind schedule proceeds with its
// last-received (possibly stale, initially zero) inputs instead of
// blocking, and records which supernodes consumed stale data so the
// caller can run iterative refinement (core.Solver does; see
// SolveOpts.Staleness and ElasticStats).
type SolveMode int

const (
	// ModeAuto picks the default mode (strict).
	ModeAuto SolveMode = iota
	// ModeStrict blocks on every cross-rank dependency (exactly-once-
	// then-block — the PR 4 contract's original execution discipline).
	ModeStrict
	// ModeElastic bounds dependency waits by the staleness deadline and
	// proceeds with stale inputs past it.
	ModeElastic
)

func (m SolveMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeStrict:
		return "strict"
	case ModeElastic:
		return "elastic"
	}
	return fmt.Sprintf("SolveMode(%d)", int(m))
}

// Resolve maps ModeAuto to the concrete default mode.
func (m SolveMode) Resolve() SolveMode {
	if m == ModeAuto {
		return ModeStrict
	}
	return m
}

// Valid reports whether m is a known mode.
func (m SolveMode) Valid() bool {
	return m == ModeAuto || m == ModeStrict || m == ModeElastic
}

// ElasticStats reports what an elastic solve actually skipped; SolveOpts
// callers pass a pointer to receive them after the run.
type ElasticStats struct {
	// StaleSupernodes counts supernode rows (across ranks and both
	// sweeps) whose solve consumed at least one stale or missing input
	// because a staleness deadline forced their dependencies closed.
	// Zero means the elastic run never forced anything — its result is
	// bit-identical to the strict run's.
	StaleSupernodes int
	// ForcedTicks counts the staleness-deadline timer pops that found
	// their phase still open and forced it.
	ForcedTicks int
}

// SolveOpts tunes solve execution without touching the plan.
type SolveOpts struct {
	// Exec selects the execution mode; the zero value resolves to the
	// scheduled path.
	Exec ExecMode
	// LevelChunk is the work-stealing chunk size of pool-backend level
	// sweeps (tasks claimed per steal); 0 means the built-in default.
	// Sweeps narrower than two chunks run serially.
	LevelChunk int
	// Comm selects the wire format of inter-rank subvector traffic; the
	// zero value resolves to the packed sparse format.
	Comm CommMode
	// Mode selects strict or elastic execution; the zero value resolves
	// to strict.
	Mode SolveMode
	// Staleness is elastic mode's staleness bound S in dependency levels:
	// each phase's forcing deadline is (phase depth + S) level quanta
	// after the previous phase's. S ≤ 0 disables forcing entirely, so an
	// elastic solve with S=0 is bit-identical to the strict solve.
	Staleness int
	// Elastic, when non-nil, receives the run's stale-consumption stats.
	Elastic *ElasticStats
}

// elasticBackend is implemented by the built-in backends: withElastic
// returns a copy configured for an elastic run (runtime.Options.ElasticTag
// set, which arms tick delivery filtering on the Engine and wall-clock
// timers plus the stray-message exemption on the Pool).
type elasticBackend interface{ withElastic(tag int) Backend }

func (s SimBackend) withElastic(tag int) Backend {
	s.Opts.ElasticTag = tag
	return s
}

func (p PoolBackend) withElastic(tag int) Backend {
	p.Pool.Opts.ElasticTag = tag
	return p
}

// stateReleaser is implemented by every handler embedding rankCore; Solve
// uses it to hand the per-solve state back to the pool after the run.
type stateReleaser interface{ releaseState() }

// Solve runs one distributed triangular solve of L·U·x = b on the given
// backend and returns the solution panel (in the permuted ordering of the
// plan's factors) together with the per-rank timing result.
//
// The plan is only read, so any number of Solve calls may run concurrently
// against the same plan, each with its own RHS.
func Solve(p *dist.Plan, model *machine.Model, algo Algorithm, back Backend, b *sparse.Panel) (*sparse.Panel, *runtime.Result, error) {
	x := sparse.NewPanel(b.Rows, b.Cols)
	res, err := SolveInto(p, model, algo, back, b, x)
	if err != nil {
		return nil, nil, err
	}
	return x, res, nil
}

// SolveInto is Solve writing the solution into a caller-provided panel
// (which it zeroes first), letting repeated solves reuse output storage.
// Each rank handler draws its per-solve execution state from a shared pool
// and returns it when the run completes, so steady-state repeated solves
// allocate little beyond the solution subvectors themselves.
func SolveInto(p *dist.Plan, model *machine.Model, algo Algorithm, back Backend, b, x *sparse.Panel) (*runtime.Result, error) {
	return SolveIntoOpts(p, model, algo, back, b, x, SolveOpts{})
}

// SolveIntoOpts is SolveInto with explicit execution options.
func SolveIntoOpts(p *dist.Plan, model *machine.Model, algo Algorithm, back Backend, b, x *sparse.Panel, opts SolveOpts) (*runtime.Result, error) {
	if b.Rows != p.M.N {
		return nil, fmt.Errorf("trsv: rhs has %d rows, matrix has %d", b.Rows, p.M.N)
	}
	if x.Rows != b.Rows || x.Cols != b.Cols {
		return nil, fmt.Errorf("trsv: output panel is %dx%d, rhs is %dx%d", x.Rows, x.Cols, b.Rows, b.Cols)
	}
	if !opts.Exec.Valid() {
		return nil, fmt.Errorf("trsv: unknown execution mode %v", opts.Exec)
	}
	if !opts.Comm.Valid() {
		return nil, fmt.Errorf("trsv: unknown communication mode %v", opts.Comm)
	}
	if !opts.Mode.Valid() {
		return nil, fmt.Errorf("trsv: unknown solve mode %v", opts.Mode)
	}
	elastic := opts.Mode.Resolve() == ModeElastic && opts.Staleness > 0
	if opts.Exec.Resolve() == ExecSched || elastic {
		// Derive (or fetch the cached) level/DAG schedule up front so a
		// build failure surfaces as an error, not a handler panic. Elastic
		// mode needs the schedule even on the handler path: its forcing
		// deadlines come from the grid dependency depths and its stale
		// bookkeeping from the slot mapping.
		if _, err := sched.Of(p); err != nil {
			return nil, err
		}
	}
	if elastic {
		eb, ok := back.(elasticBackend)
		if !ok {
			return nil, fmt.Errorf("trsv: elastic mode requires a built-in backend (SimBackend or PoolBackend), got %T", back)
		}
		back = eb.withElastic(tagElastic)
	}
	x.Zero()
	var factory func(int) runtime.Handler
	switch algo {
	case Proposed3D:
		factory = newProposed3D(p, model, b, x, opts, false)
	case Proposed3DNaiveAR:
		factory = newProposed3D(p, model, b, x, opts, true)
	case Baseline3D:
		if err := p.BuildBaseline(); err != nil {
			return nil, err
		}
		factory = newBaseline3D(p, model, b, x, opts)
	case GPUSingle:
		if p.Layout.Px != 1 || p.Layout.Py != 1 {
			return nil, fmt.Errorf("trsv: gpu-single requires Px=Py=1, got %dx%d", p.Layout.Px, p.Layout.Py)
		}
		if model.GPU == nil {
			return nil, fmt.Errorf("trsv: model %s has no GPU parameters", model.Name)
		}
		factory = newGPUSingle(p, model, b, x, opts)
	case GPUMulti:
		if p.Layout.Py != 1 {
			return nil, fmt.Errorf("trsv: gpu-multi requires Py=1, got Py=%d", p.Layout.Py)
		}
		if model.GPU == nil {
			return nil, fmt.Errorf("trsv: model %s has no GPU parameters", model.Name)
		}
		factory = newGPUMulti(p, model, b, x, opts)
	default:
		return nil, fmt.Errorf("trsv: unknown algorithm %v", algo)
	}

	// Track the handlers so their pooled solve states can be released once
	// the backend has fully quiesced (both backends only return after every
	// rank has stopped executing).
	handlers := make([]runtime.Handler, p.Layout.Size())
	wrapped := func(rank int) runtime.Handler {
		h := factory(rank)
		handlers[rank] = h
		return h
	}
	res, err := back.Run(p.Layout.Size(), model.Net(), wrapped)
	// Collect each rank's kernel tallies before the states go back to the
	// pool (release zeroes them), then publish the solve once.
	var total solveCounts
	for _, h := range handlers {
		if cr, ok := h.(countsReporter); ok {
			total.accumulate(cr.solveCounts())
		}
		if r, ok := h.(stateReleaser); ok {
			r.releaseState()
		}
	}
	publishSolve(algo, total, err != nil)
	if opts.Elastic != nil {
		opts.Elastic.StaleSupernodes = total.staleRows
		opts.Elastic.ForcedTicks = total.forcedTicks
	}
	if err != nil {
		// A traced run that died with a typed fault salvages its partial
		// result (clocks, timers, events up to the failure) — pass it
		// through so fault diagnostics can stitch the death into a trace.
		return res, err
	}
	return res, nil
}
