package trsv

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sptrsv/internal/ctree"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
)

// sparsePanel builds a panel whose density, trailing-zero columns, and
// special values (±0.0, subnormals) are driven by the rng — the property
// inputs of the pack/unpack round trip.
func sparsePanel(rng *rand.Rand, rows, cols int) *sparse.Panel {
	p := sparse.NewPanel(rows, cols)
	density := rng.Float64()
	zeroTail := rng.Intn(cols + 1) // trailing columns left all-zero
	for j := 0; j < cols-zeroTail; j++ {
		col := p.Col(j)
		for i := range col {
			if rng.Float64() >= density {
				continue
			}
			switch rng.Intn(8) {
			case 0:
				col[i] = math.Copysign(0, -1) // −0.0 must survive the trip
			case 1:
				col[i] = 5e-324 // subnormal
			default:
				col[i] = rng.NormFloat64()
			}
		}
	}
	return p
}

// TestPackPanelRoundTrip: packing any panel and unpacking it reproduces
// the original bit-for-bit, and the packed representation never models
// more bytes than the dense one.
func TestPackPanelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	c := &rankCore{st: &solveState{}}
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(40)
		cols := []int{1, 4, 16}[rng.Intn(3)]
		p := sparsePanel(rng, rows, cols)
		for _, mode := range []CommMode{CommPacked, CommDense, CommAggregated} {
			w := packPanel(p, mode)
			got := c.unpackPanel(&w)
			if got.Rows != p.Rows || got.Cols != p.Cols {
				t.Fatalf("mode %v: shape %dx%d, want %dx%d", mode, got.Rows, got.Cols, p.Rows, p.Cols)
			}
			for i := range p.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(p.Data[i]) {
					t.Fatalf("mode %v trial %d: element %d = %x, want %x",
						mode, trial, i, math.Float64bits(got.Data[i]), math.Float64bits(p.Data[i]))
				}
			}
		}
		dense := packPanel(p, CommDense)
		packed := packPanel(p, CommPacked)
		if singleBytes(&packed) > singleBytes(&dense) {
			t.Fatalf("trial %d: packed %d B above dense %d B", trial, singleBytes(&packed), singleBytes(&dense))
		}
	}
}

// TestAddWireMatchesDenseAdd: accumulating a packed panel equals the dense
// panel add in value (suppressed entries are +0.0; skipping them can only
// keep a −0.0 where a dense add would produce +0.0 — equal under ==).
func TestAddWireMatchesDenseAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(30)
		cols := 1 + rng.Intn(5)
		src := sparsePanel(rng, rows, cols)
		acc := sparsePanel(rng, rows, cols)
		want := acc.Clone()
		want.AddFrom(src)
		w := packPanel(src, CommPacked)
		addWire(acc, &w)
		for i := range acc.Data {
			if acc.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: element %d = %g, want %g", trial, i, acc.Data[i], want.Data[i])
			}
		}
	}
}

// recountMsg recomputes a message's modeled byte count from its payload,
// independently of the bytes()/singleBytes helpers the senders used: the
// uniform model is envelope + per entry (header + 4·indices + 8·values).
func recountMsg(m runtime.Msg) (int, bool) {
	entry := func(w *wirePanel) int {
		return wireHdrBytes + wireIdxBytes*len(w.RowIdx) + 8*len(w.Vals)
	}
	switch d := m.Data.(type) {
	case *yMsg:
		return wireEnvBytes + entry(&d.W), true
	case *sumMsg:
		return wireEnvBytes + entry(&d.W), true
	case *groupMsg:
		return wireEnvBytes + entry(&d.W), true
	case *gpuPut:
		return wireEnvBytes + entry(&d.W), true
	case *vecBundle:
		n := wireEnvBytes
		for i := range d.Ws {
			n += entry(&d.Ws[i])
		}
		return n, true
	case *aggMsg:
		n := wireEnvBytes
		for i := range d.Ws {
			n += entry(&d.Ws[i])
		}
		return n, true
	}
	return 0, false
}

// recountBackend wraps a backend so every delivered message's Bytes field
// is checked against an independent recount of its packed payload.
type recountBackend struct {
	inner Backend
	mu    sync.Mutex
	bad   []string
}

func (rb *recountBackend) Run(n int, net runtime.Network, f func(int) runtime.Handler) (*runtime.Result, error) {
	return rb.inner.Run(n, net, func(rank int) runtime.Handler {
		return &recountHandler{inner: f(rank), rb: rb}
	})
}

type recountHandler struct {
	inner runtime.Handler
	rb    *recountBackend
}

func (h *recountHandler) Init(ctx *runtime.Ctx) { h.inner.Init(ctx) }
func (h *recountHandler) Done() bool            { return h.inner.Done() }

func (h *recountHandler) OnMessage(ctx *runtime.Ctx, m runtime.Msg) {
	if want, ok := recountMsg(m); ok && want != m.Bytes {
		h.rb.mu.Lock()
		h.rb.bad = append(h.rb.bad, fmt.Sprintf("tag %s: Bytes %d, payload recount %d", TagName(m.Tag), m.Bytes, want))
		h.rb.mu.Unlock()
	}
	h.inner.OnMessage(ctx, m)
}

// releaseState forwards the pooled-state release through the wrapper so
// wrapped solves still return their states.
func (h *recountHandler) releaseState() {
	if r, ok := h.inner.(stateReleaser); ok {
		r.releaseState()
	}
}

// TestByteAccountingInvariant: across all four algorithms and both
// backends, every message's Bytes field equals an independent recount of
// its packed payload — the wire model is charged exactly once and
// consistently per entry.
func TestByteAccountingInvariant(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 31), 3, 8)
	model := machine.CrusherGPU() // has both CPU and GPU parameters
	cases := []struct {
		algo   Algorithm
		layout grid.Layout
		backs  []Backend
	}{
		{Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 4}, []Backend{SimBackend{}, PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}}},
		{Baseline3D, grid.Layout{Px: 2, Py: 2, Pz: 4}, []Backend{SimBackend{}, PoolBackend{Pool: runtime.Pool{Timeout: 30 * time.Second}}}},
		{Proposed3DNaiveAR, grid.Layout{Px: 2, Py: 2, Pz: 4}, []Backend{SimBackend{}}},
		{GPUSingle, grid.Layout{Px: 1, Py: 1, Pz: 4}, []Backend{SimBackend{}}},
		{GPUMulti, grid.Layout{Px: 2, Py: 1, Pz: 4}, []Backend{SimBackend{}}},
	}
	rng := rand.New(rand.NewSource(73))
	b := randPanel(rng, pl.m.N, 2)
	for _, tc := range cases {
		for _, back := range tc.backs {
			for _, comm := range []CommMode{CommPacked, CommDense, CommAggregated} {
				rb := &recountBackend{inner: back}
				p := pl.plan(t, tc.layout, ctree.Binary)
				x := sparse.NewPanel(b.Rows, b.Cols)
				if _, err := SolveIntoOpts(p, model, tc.algo, rb, b, x, SolveOpts{Comm: comm}); err != nil {
					t.Fatalf("%v %v %T: %v", tc.algo, comm, back, err)
				}
				for i, msg := range rb.bad {
					if i == 5 {
						t.Errorf("%v %v %T: ... %d more", tc.algo, comm, back, len(rb.bad)-i)
						break
					}
					t.Errorf("%v %v %T: %s", tc.algo, comm, back, msg)
				}
			}
		}
	}
}

// TestPackedMatchesDenseOracle: the packed wire format is an encoding
// change only — against the dense reference every algorithm must keep the
// message count exactly, move no more bytes, and produce value-identical
// solutions.
func TestPackedMatchesDenseOracle(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 32), 3, 8)
	model := machine.CrusherGPU()
	cases := []struct {
		algo   Algorithm
		layout grid.Layout
	}{
		{Proposed3D, grid.Layout{Px: 2, Py: 2, Pz: 4}},
		{Baseline3D, grid.Layout{Px: 2, Py: 2, Pz: 4}},
		{Proposed3DNaiveAR, grid.Layout{Px: 2, Py: 2, Pz: 4}},
		{GPUSingle, grid.Layout{Px: 1, Py: 1, Pz: 4}},
		{GPUMulti, grid.Layout{Px: 2, Py: 1, Pz: 4}},
	}
	rng := rand.New(rand.NewSource(74))
	b := randPanel(rng, pl.m.N, 3)
	for _, tc := range cases {
		solveWith := func(comm CommMode) (*sparse.Panel, *runtime.Result) {
			p := pl.plan(t, tc.layout, ctree.Binary)
			x := sparse.NewPanel(b.Rows, b.Cols)
			res, err := SolveIntoOpts(p, model, tc.algo, SimBackend{}, b, x, SolveOpts{Comm: comm})
			if err != nil {
				t.Fatalf("%v %v: %v", tc.algo, comm, err)
			}
			return x, res
		}
		xd, rd := solveWith(CommDense)
		xp, rp := solveWith(CommPacked)
		for i := range xd.Data {
			if xd.Data[i] != xp.Data[i] {
				t.Fatalf("%v: solution element %d differs: dense %g, packed %g", tc.algo, i, xd.Data[i], xp.Data[i])
			}
		}
		if dm, pm := rd.TotalMsgs(), rp.TotalMsgs(); dm != pm {
			t.Errorf("%v: packed sent %d messages, dense %d — counts must match", tc.algo, pm, dm)
		}
		if db, pb := rd.TotalBytes(), rp.TotalBytes(); pb > db {
			t.Errorf("%v: packed moved %d B, above dense %d B", tc.algo, pb, db)
		}
	}
}

// TestAggregatedCoalescesMessages: per-destination aggregation in the
// proposed algorithm must send strictly fewer XY messages than the packed
// per-message path on a layout with real 2D fan-out, at an unchanged
// correct solution (aggregation reorders floating-point accumulation, so
// the comparison is against the serial reference, not bit-for-bit).
func TestAggregatedCoalescesMessages(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(20, 20, 33), 3, 8)
	model := machine.CoriHaswell()
	l := grid.Layout{Px: 3, Py: 3, Pz: 2}
	rng := rand.New(rand.NewSource(75))
	b := randPanel(rng, pl.m.N, 2)
	want := pl.m.Solve(b)
	solveWith := func(comm CommMode) (*sparse.Panel, *runtime.Result) {
		p := pl.plan(t, l, ctree.Binary)
		x := sparse.NewPanel(b.Rows, b.Cols)
		res, err := SolveIntoOpts(p, model, Proposed3D, SimBackend{}, b, x, SolveOpts{Comm: comm})
		if err != nil {
			t.Fatalf("%v: %v", comm, err)
		}
		return x, res
	}
	xa, ra := solveWith(CommAggregated)
	_, rp := solveWith(CommPacked)
	if d := xa.MaxAbsDiff(want); d > 1e-8 {
		t.Fatalf("aggregated solution off by %g", d)
	}
	am, pm := ra.CatMsgs(runtime.CatXY), rp.CatMsgs(runtime.CatXY)
	if am >= pm {
		t.Fatalf("aggregated sent %d XY messages, packed %d — aggregation must coalesce", am, pm)
	}
	// Both engines run the same aggregation; the handler oracle must agree.
	p := pl.plan(t, l, ctree.Binary)
	xh := sparse.NewPanel(b.Rows, b.Cols)
	resH, err := SolveIntoOpts(p, model, Proposed3D, SimBackend{}, b, xh, SolveOpts{Comm: CommAggregated, Exec: ExecHandler})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xa.Data {
		if math.Float64bits(xa.Data[i]) != math.Float64bits(xh.Data[i]) {
			t.Fatalf("sched and handler aggregated solutions differ at %d", i)
		}
	}
	if hm := resH.CatMsgs(runtime.CatXY); hm != am {
		t.Fatalf("handler aggregated sent %d XY messages, sched %d", hm, am)
	}
}

// TestZeroRunSuppressionGPU: on the fig9 configuration (GPU single,
// 1x1x4), a multi-RHS batch padded with trailing zero columns must move
// strictly fewer bytes packed than dense, at an unchanged message count
// and a correct solution — the zero-run suppression of the wire format.
// (At nrhs=1 the fig9 subvectors are fully dense — a triangular solve
// densifies every panel — so column suppression is where the GPU points'
// byte reduction comes from.)
func TestZeroRunSuppressionGPU(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(16, 16, 35), 3, 8)
	model := machine.CrusherGPU()
	l := grid.Layout{Px: 1, Py: 1, Pz: 4}
	rng := rand.New(rand.NewSource(76))
	b := sparse.NewPanel(pl.m.N, 4)
	for j := 0; j < 2; j++ { // last two columns stay zero (padded batch)
		col := b.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	want := pl.m.Solve(b)
	solveWith := func(comm CommMode) (*sparse.Panel, *runtime.Result) {
		p := pl.plan(t, l, ctree.Auto)
		x := sparse.NewPanel(b.Rows, b.Cols)
		res, err := SolveIntoOpts(p, model, GPUSingle, SimBackend{}, b, x, SolveOpts{Comm: comm})
		if err != nil {
			t.Fatalf("%v: %v", comm, err)
		}
		if d := x.MaxAbsDiff(want); d > 1e-8 {
			t.Fatalf("%v: solution off by %g", comm, d)
		}
		return x, res
	}
	_, rd := solveWith(CommDense)
	_, rp := solveWith(CommPacked)
	if dm, pm := rd.TotalMsgs(), rp.TotalMsgs(); dm != pm {
		t.Fatalf("packed sent %d messages, dense %d", pm, dm)
	}
	if db, pb := rd.TotalBytes(), rp.TotalBytes(); pb >= db {
		t.Fatalf("packed moved %d B, dense %d B — zero columns must be suppressed", pb, db)
	}
}

// TestCommModeValidation: unknown modes are rejected before any solve.
func TestCommModeValidation(t *testing.T) {
	pl := buildPipeline(t, gen.S2D9pt(8, 8, 34), 2, 8)
	p := pl.plan(t, grid.Layout{Px: 1, Py: 1, Pz: 1}, ctree.Flat)
	b := sparse.NewPanel(pl.m.N, 1)
	x := sparse.NewPanel(pl.m.N, 1)
	if _, err := SolveIntoOpts(p, machine.CoriHaswell(), Proposed3D, SimBackend{}, b, x, SolveOpts{Comm: CommMode(99)}); err == nil {
		t.Fatal("CommMode(99) accepted")
	}
}
