package metrics

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the OpenMetrics v1 media type served by Handler.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the registry in OpenMetrics v1 text exposition
// format, ending with the mandatory "# EOF" line. Families are sorted by
// name and children by label values, so two registries holding the same
// values render byte-identical text — the determinism tests compare
// expositions directly.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	ex := r.ExemplarsEnabled()
	for _, f := range r.snapshotFamilies() {
		f.write(bw, ex)
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's OpenMetrics
// exposition — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteOpenMetrics(w)
	})
}

// write renders one family: the TYPE/HELP metadata, then every child's
// samples in sorted label order. exemplars additionally renders each
// histogram bucket's exemplar suffix.
func (f *family) write(w *bufio.Writer, exemplars bool) {
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}

	f.mu.RLock()
	keys := append([]string(nil), f.keyList...)
	kids := make([]any, len(keys))
	for i, k := range keys {
		kids[i] = f.kids[k]
	}
	f.mu.RUnlock()
	sort.Sort(&byKey{keys, kids})

	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, "\x1f")
		}
		switch m := kids[i].(type) {
		case *Counter:
			f.sample(w, "_total", values, nil, formatValue(m.Value()))
		case *Gauge:
			f.sample(w, "", values, nil, formatValue(m.Value()))
		case *Histogram:
			cum, total := m.cumulative()
			for bi, b := range m.bounds {
				f.sample(w, "_bucket", values, []string{"le", formatValue(b)},
					strconv.FormatUint(cum[bi], 10)+exemplarSuffix(m, bi, exemplars))
			}
			f.sample(w, "_bucket", values, []string{"le", "+Inf"},
				strconv.FormatUint(total, 10)+exemplarSuffix(m, len(m.bounds), exemplars))
			f.sample(w, "_count", values, nil, strconv.FormatUint(total, 10))
			f.sample(w, "_sum", values, nil, formatValue(m.Sum()))
		}
	}
}

// byKey sorts the parallel (keys, kids) slices by key.
type byKey struct {
	keys []string
	kids []any
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.kids[i], s.kids[j] = s.kids[j], s.kids[i]
}

// sample writes one exposition line: name+suffix{labels,extra} value.
func (f *family) sample(w *bufio.Writer, suffix string, values, extra []string, val string) {
	w.WriteString(f.name)
	w.WriteString(suffix)
	if len(values) > 0 || len(extra) > 0 {
		w.WriteByte('{')
		first := true
		for i, l := range f.labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		for i := 0; i+1 < len(extra); i += 2 {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(extra[i])
			w.WriteString(`="`)
			w.WriteString(escapeLabel(extra[i+1]))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(val)
	w.WriteByte('\n')
}

// exemplarSuffix renders bucket bi's exemplar as the OpenMetrics
// ` # {label="value"} value timestamp` suffix appended to the bucket's
// sample line; empty when exposition is disabled or the slot was never
// stamped. The suffix rides the sample's value string so the line grammar
// stays in one place (sample).
func exemplarSuffix(h *Histogram, bi int, on bool) string {
	if !on {
		return ""
	}
	e := h.ex[bi].Load()
	if e == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" # {")
	if e.LabelKey != "" {
		sb.WriteString(e.LabelKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(e.LabelValue))
		sb.WriteByte('"')
	}
	sb.WriteString("} ")
	sb.WriteString(formatValue(e.Value))
	if e.Ts > 0 {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(e.Ts, 'f', 3, 64))
	}
	return sb.String()
}

// formatValue renders a float the way OpenMetrics expects: shortest
// round-trip representation, so equal values always render equal text.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
