package metrics

import (
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_msgs", "messages", "cat").With("xy")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %g, want 5", got)
	}
	if again := r.Counter("test_msgs", "messages", "cat").With("xy"); again != c {
		t.Fatal("re-registration did not return the same child")
	}
	g := r.Gauge("test_residual", "last residual").With()
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestFamilyShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "")
	for _, f := range []func(){
		func() { r.Gauge("test_x", "") },
		func() { r.Counter("test_x", "", "extra") },
		func() { r.Counter("bad-name", "") },
		func() { r.Counter("test_y_total", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramCounts(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{1, 2, 4}).With()
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	cum, total := h.cumulative()
	want := []uint64{2, 3, 4}
	for i, c := range cum {
		if c != want[i] {
			t.Fatalf("cum[%d] = %d, want %d", i, c, want[i])
		}
	}
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

// TestHistogramQuantileProperty pins the accuracy contract: for random
// inputs, the histogram's quantile estimate lands within one bucket of the
// exact sample quantile.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}
	// bucketOf maps a value to the index of the bucket containing it,
	// len(bounds) meaning the +Inf bucket.
	bucketOf := func(v float64) int { return sort.SearchFloat64s(bounds, v) }
	for trial := 0; trial < 50; trial++ {
		r := NewRegistry()
		h := r.Histogram("test_q", "", bounds).With()
		n := 1 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over the bucket range, occasionally beyond it.
			samples[i] = math.Pow(10, -3.5+4.2*rng.Float64())
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			idx := int(math.Ceil(q*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := samples[idx]
			est := h.Quantile(q)
			if math.IsNaN(est) {
				t.Fatalf("trial %d q=%g: NaN estimate with %d samples", trial, q, n)
			}
			be, bx := bucketOf(est), bucketOf(exact)
			if be > bx+1 || be < bx-1 {
				t.Fatalf("trial %d q=%g: estimate %g (bucket %d) not within one bucket of exact %g (bucket %d)",
					trial, q, est, be, exact, bx)
			}
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_e", "", []float64{1, 2}).With()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

// ---- OpenMetrics validity ----

var (
	reComment = regexp.MustCompile(`^# (TYPE|HELP|UNIT) ([a-zA-Z_][a-zA-Z0-9_]*) (.+)$`)
	// reSample accepts an optional OpenMetrics exemplar suffix
	// (` # {labels} value [timestamp]`) after the sample value; the
	// exemplar groups are 6 (labels), 7 (value), 9 (timestamp).
	reSample = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{([^}]*)\})? (\S+)( # \{([^}]*)\} (\S+)( (\S+))?)?$`)
	reLabel  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// validateOpenMetrics is a strict-enough OpenMetrics v1 text parser for
// tests: it checks the line grammar, the terminal # EOF, counter _total
// suffixes, histogram bucket monotonicity and le labels, and returns every
// sample as name{sortedlabels} → value.
func validateOpenMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatalf("exposition must end with a single '# EOF' line, got tail %q", lines[max(0, len(lines)-3):])
	}
	lines = lines[:len(lines)-2]
	types := map[string]string{}
	samples := map[string]float64{}
	var curFamily string
	type bucketState struct {
		last     uint64
		sawInf   bool
		count    uint64
		hasCount bool
	}
	buckets := map[string]*bucketState{}
	for _, ln := range lines {
		if ln == "# EOF" {
			t.Fatal("# EOF before end of exposition")
		}
		if strings.HasPrefix(ln, "#") {
			m := reComment.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("bad metadata line %q", ln)
			}
			if m[1] == "TYPE" {
				if _, dup := types[m[2]]; dup {
					t.Fatalf("duplicate TYPE for %s", m[2])
				}
				types[m[2]] = m[3]
				curFamily = m[2]
			}
			continue
		}
		m := reSample.FindStringSubmatch(ln)
		if m == nil {
			t.Fatalf("bad sample line %q", ln)
		}
		name, labelStr, valStr := m[1], m[3], m[4]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", ln, err)
		}
		hasExemplar := m[5] != ""
		if hasExemplar {
			if !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
				t.Fatalf("exemplar on non-bucket/non-counter sample %q", ln)
			}
			total := 0
			for _, piece := range splitLabels(m[6]) {
				lm := reLabel.FindStringSubmatch(piece)
				if lm == nil {
					t.Fatalf("bad exemplar label %q in %q", piece, ln)
				}
				total += len(lm[1]) + len(lm[2])
			}
			if total > 128 {
				t.Fatalf("exemplar labelset exceeds 128 chars in %q", ln)
			}
			if _, err := strconv.ParseFloat(m[7], 64); err != nil {
				t.Fatalf("bad exemplar value in %q: %v", ln, err)
			}
			if m[9] != "" {
				if _, err := strconv.ParseFloat(m[9], 64); err != nil {
					t.Fatalf("bad exemplar timestamp in %q: %v", ln, err)
				}
			}
		}
		famType, fam := "", ""
		for f, ty := range types {
			if name == f || (strings.HasPrefix(name, f) &&
				(name == f+"_total" || name == f+"_bucket" || name == f+"_count" || name == f+"_sum")) {
				if len(f) > len(fam) {
					famType, fam = ty, f
				}
			}
		}
		if fam == "" {
			t.Fatalf("sample %q has no preceding TYPE", name)
		}
		if fam != curFamily {
			t.Fatalf("sample %q outside its family block (current %s)", name, curFamily)
		}
		var le string
		var sortedLabels []string
		if labelStr != "" {
			for _, piece := range splitLabels(labelStr) {
				lm := reLabel.FindStringSubmatch(piece)
				if lm == nil {
					t.Fatalf("bad label %q in %q", piece, ln)
				}
				if lm[1] == "le" {
					le = lm[2]
				}
				sortedLabels = append(sortedLabels, piece)
			}
			sort.Strings(sortedLabels)
		}
		key := name + "{" + strings.Join(sortedLabels, ",") + "}"
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %s", key)
		}
		samples[key] = v
		switch famType {
		case "counter":
			if name != fam+"_total" {
				t.Fatalf("counter sample %q must use the _total suffix", name)
			}
			if v < 0 {
				t.Fatalf("negative counter %s = %g", key, v)
			}
		case "histogram":
			// Bucket series per label set (le stripped).
			var rest []string
			for _, l := range sortedLabels {
				if !strings.HasPrefix(l, `le="`) {
					rest = append(rest, l)
				}
			}
			series := fam + "{" + strings.Join(rest, ",") + "}"
			st := buckets[series]
			if st == nil {
				st = &bucketState{}
				buckets[series] = st
			}
			switch {
			case name == fam+"_bucket":
				if le == "" {
					t.Fatalf("histogram bucket %q missing le label", ln)
				}
				c := uint64(v)
				if c < st.last {
					t.Fatalf("histogram %s buckets not monotone at le=%s", series, le)
				}
				st.last = c
				if le == "+Inf" {
					st.sawInf = true
				}
			case name == fam+"_count":
				st.count, st.hasCount = uint64(v), true
			}
		}
	}
	for series, st := range buckets {
		if !st.sawInf {
			t.Fatalf("histogram %s missing +Inf bucket", series)
		}
		if st.hasCount && st.count != st.last {
			t.Fatalf("histogram %s count %d != +Inf bucket %d", series, st.count, st.last)
		}
	}
	return samples
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func TestWriteOpenMetricsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_msgs", "messages sent", "backend", "cat").With("des", "XY-Comm").Add(12)
	r.Counter("test_msgs", "messages sent", "backend", "cat").With("des", "Z-Comm").Add(3)
	r.Gauge("test_residual", `odd "label" help with \ and`+"\nnewline", "m").With(`quo"te\n`).Set(1e-9)
	h := r.Histogram("test_lat_seconds", "solve latency", []float64{0.001, 0.1, 1}, "algo").With("proposed-3d")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validateOpenMetrics(t, sb.String())

	if got := samples[`test_msgs_total{backend="des",cat="XY-Comm"}`]; got != 12 {
		t.Fatalf("counter sample = %g, want 12", got)
	}
	if got := samples[`test_lat_seconds_count{algo="proposed-3d"}`]; got != 3 {
		t.Fatalf("histogram count = %g, want 3", got)
	}
	if got := samples[`test_lat_seconds_bucket{algo="proposed-3d",le="+Inf"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %g, want 3", got)
	}
	if got := samples[`test_lat_seconds_sum{algo="proposed-3d"}`]; got != 50.0505 {
		t.Fatalf("histogram sum = %g, want 50.0505", got)
	}
}

// TestExpositionDeterministic pins that rendering is a pure function of
// the stored values: same updates → byte-identical text, regardless of
// label-set creation order.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		v := r.Counter("test_m", "", "k")
		keys := []string{"a", "b", "c"}
		for _, i := range order {
			v.With(keys[i]).Add(float64(i + 1))
		}
		var sb strings.Builder
		if err := r.WriteOpenMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := build([]int{0, 1, 2}), build([]int{2, 0, 1}); a != b {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentUpdatesAndScrape hammers one registry from many goroutines
// while scraping — the shape the serving mode runs in. Run under -race.
func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hits", "", "worker")
	h := r.Histogram("test_obs", "", []float64{1, 10, 100})
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := strconv.Itoa(w % 3)
			for i := 0; i < iters; i++ {
				c.With(id).Inc()
				h.With().Observe(float64(i % 200))
			}
		}(w)
	}
	for s := 0; s < 20; s++ {
		var sb strings.Builder
		if err := r.WriteOpenMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		validateOpenMetrics(t, sb.String())
	}
	wg.Wait()
	total := 0.0
	for _, id := range []string{"0", "1", "2"} {
		total += c.With(id).Value()
	}
	if total != workers*iters {
		t.Fatalf("lost updates: %g != %d", total, workers*iters)
	}
	if h.With().Count() != workers*iters {
		t.Fatalf("histogram lost updates: %d", h.With().Count())
	}
}
