// Package metrics is a dependency-free, concurrency-safe metrics registry
// for the solver stack: atomic counters, gauges, and fixed-bucket
// histograms, each optionally split by a small set of labels (algorithm,
// backend, machine, matrix fingerprint), plus an OpenMetrics v1 text
// exposition writer (openmetrics.go) so a running process can be scraped
// at /metrics by Prometheus-compatible collectors.
//
// Design rules, in the spirit of the paper's communication/computation
// accounting (message counts, volumes, per-phase seconds):
//
//   - Instrumented packages publish at run boundaries, never inside hot
//     loops: the runtime aggregates per-rank timers when a run completes,
//     the solver records one histogram observation per solve. Metric
//     updates therefore cannot perturb the discrete-event schedule, and
//     repeated DES runs of the same seed add bit-identical values.
//   - Values are float64 updated with compare-and-swap on the raw bits;
//     integer counts stay exact far beyond any realistic event count
//     (2^53 messages).
//   - Families are created once (usually in package var blocks) and
//     looked up per label set; the per-(family,labels) metric handle can
//     be cached by the caller when even the map lookup matters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// value is an atomically updated float64 (bits stored in a uint64).
type value struct{ bits atomic.Uint64 }

func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }
func (v *value) store(f float64) {
	v.bits.Store(math.Float64bits(f))
}
func (v *value) add(f float64) {
	for {
		old := v.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + f)
		if v.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Counter is a monotonically non-decreasing value under one label set.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract — a negative add is a caller bug, not a reason to
// corrupt the exposition).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v.add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down under one label set.
type Gauge struct{ v value }

// Set replaces the gauge value.
func (g *Gauge) Set(f float64) { g.v.store(f) }

// Add shifts the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a fixed-bucket distribution under one label set: counts of
// observations ≤ each upper bound, plus the running sum. Buckets are set
// at family creation and never change, so Observe is a binary search plus
// two atomic adds. Each bucket additionally carries one exemplar slot (see
// ObserveExemplar) holding the most recent sample a caller chose to
// annotate — the OpenMetrics exemplar mechanism that links a latency
// bucket back to a concrete request ID.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	inf    atomic.Uint64 // observations above the last bound
	sum    value
	ex     []atomic.Pointer[Exemplar] // len(bounds)+1 slots; last is +Inf
}

// Exemplar annotates one histogram observation with an identifying label
// (typically request_id) and the observation's wall-clock time. It is
// exposed on the bucket line the observation landed in, using the
// OpenMetrics exemplar syntax, when the registry's exemplar flag is on.
type Exemplar struct {
	// LabelKey and LabelValue are the single identifying label
	// ("request_id", "abc123"). OpenMetrics caps an exemplar's combined
	// label length at 128 characters; ObserveExemplar clamps the value to
	// fit rather than dropping the exemplar.
	LabelKey, LabelValue string
	// Value is the observed sample; ObserveExemplar fills it in.
	Value float64
	// Ts is the observation's Unix time in seconds; <= 0 omits the
	// timestamp from the exposition. Callers stamp it from their own clock
	// so tests with injected clocks stay deterministic.
	Ts float64
}

// exemplarMaxLen is the OpenMetrics cap on the combined length of an
// exemplar's label names and values.
const exemplarMaxLen = 128

// Observe records one sample.
func (h *Histogram) Observe(f float64) {
	i := sort.SearchFloat64s(h.bounds, f)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(f)
}

// ObserveExemplar records one sample like Observe and stamps the landing
// bucket's exemplar slot with e (last writer wins — the freshest exemplar
// is the most useful one for debugging a live spike). The cost over
// Observe is one pointer store plus one heap allocation for the exemplar;
// callers on hot paths that do not need linkage keep calling Observe.
func (h *Histogram) ObserveExemplar(f float64, e Exemplar) {
	i := sort.SearchFloat64s(h.bounds, f)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(f)
	e.Value = f
	if over := len(e.LabelKey) + len(e.LabelValue) - exemplarMaxLen; over > 0 {
		if over < len(e.LabelValue) {
			e.LabelValue = e.LabelValue[:len(e.LabelValue)-over]
		} else {
			e.LabelValue = ""
		}
	}
	h.ex[i].Store(&e)
}

// Exemplars returns the current per-bucket exemplars keyed by bucket upper
// bound (math.Inf(1) for the +Inf bucket); buckets whose slot was never
// stamped are absent.
func (h *Histogram) Exemplars() map[float64]Exemplar {
	out := map[float64]Exemplar{}
	for i := range h.ex {
		if e := h.ex[i].Load(); e != nil {
			bound := math.Inf(1)
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			out[bound] = *e
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// cumulative returns the cumulative counts per bound (not including +Inf)
// and the grand total.
func (h *Histogram) cumulative() ([]uint64, uint64) {
	cum := make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run + h.inf.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket where the cumulative count crosses q·total — the
// standard fixed-bucket estimate, accurate to within one bucket of the
// exact quantile (the property the tests pin). It returns NaN with no
// observations, and the last finite bound when the quantile falls in the
// +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	cum, total := h.cumulative()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			lo := 0.0
			var below uint64
			if i > 0 {
				lo = h.bounds[i-1]
				below = cum[i-1]
			}
			in := float64(c - below)
			if in == 0 {
				return h.bounds[i]
			}
			frac := (rank - float64(below)) / in
			if frac < 0 {
				frac = 0
			}
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets spans the solve latencies this repo sees — sub-microsecond
// virtual times on tiny test matrices up to minutes of wall clock — in
// half-decade steps.
var DefBuckets = []float64{
	1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5, 10, 60,
}

// family is one named metric with its per-label-set children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	bounds  []float64 // histogram families only
	mu      sync.RWMutex
	kids    map[string]any // label-values key → *Counter/*Gauge/*Histogram
	keyList []string       // insertion order, re-sorted at exposition
}

// labelKey joins label values with a separator no sane value contains.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values %v, got %d",
			f.name, len(f.labels), f.labels, len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	c, ok := f.kids[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.kids[k]; ok {
		return c
	}
	switch f.kind {
	case KindCounter:
		c = &Counter{}
	case KindGauge:
		c = &Gauge{}
	case KindHistogram:
		c = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)),
			ex:     make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
		}
	}
	f.kids[k] = c
	f.keyList = append(f.keyList, k)
	return c
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry (or use Default).
type Registry struct {
	mu        sync.RWMutex
	families  map[string]*family
	exemplars atomic.Bool
}

// SetExemplars toggles OpenMetrics exemplar exposition for this registry.
// Off by default: the plain exposition stays byte-identical to what every
// pre-exemplar scraper and determinism test expects, and a deployment opts
// in (cmd/serve -exemplars) when its collector understands the syntax.
// Stored exemplars are kept either way — the flag gates rendering only.
func (r *Registry) SetExemplars(on bool) { r.exemplars.Store(on) }

// ExemplarsEnabled reports whether exemplar exposition is on.
func (r *Registry) ExemplarsEnabled() bool { return r.exemplars.Load() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// def is the process-wide registry the instrumented packages publish to.
var def = NewRegistry()

// Default returns the process-wide registry — the one /metrics serves.
func Default() *Registry { return def }

// family registers (or returns the existing) family under name, checking
// that kind and label names agree with any previous registration: two
// packages silently sharing one name with different shapes would corrupt
// the exposition.
func (r *Registry) family(name, help string, kind Kind, bounds []float64, labels []string) *family {
	validateName(name)
	for _, l := range labels {
		validateName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: family %s re-registered as %v%v, was %v%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...), kids: map[string]any{},
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validateName enforces the OpenMetrics metric/label name grammar.
func validateName(name string) {
	if name == "" {
		panic("metrics: empty name")
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid name %q", name))
		}
	}
}

// CounterVec is a counter family; With selects one label set.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The value count and order must match the family's label names.
func (v CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with shared fixed buckets.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Counter registers (or fetches) a counter family. Counter names must not
// carry the _total suffix — the exposition writer appends it, per the
// OpenMetrics counter convention.
func (r *Registry) Counter(name, help string, labels ...string) CounterVec {
	if strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("metrics: counter %s must be registered without the _total suffix", name))
	}
	return CounterVec{r.family(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// strictly increasing finite bucket upper bounds (nil means DefBuckets).
// The +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly increasing at %d", name, i))
		}
	}
	for _, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("metrics: histogram %s bucket bounds must be finite (+Inf is implicit)", name))
		}
	}
	return HistogramVec{r.family(name, help, KindHistogram, bounds, labels)}
}

// snapshotFamilies returns the families sorted by name, and each family's
// children sorted by label key — a deterministic exposition order, so two
// identical registries render byte-identical text.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
