package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExemplarRoundTrip pins the full path: ObserveExemplar stamps the
// landing bucket, the flag-enabled exposition renders the OpenMetrics
// exemplar syntax, and the strict parser accepts the line.
func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetExemplars(true)
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.001, 0.1, 1}).With()
	h.ObserveExemplar(0.05, Exemplar{LabelKey: "request_id", LabelValue: "req-42", Ts: 1754697600})
	h.ObserveExemplar(50, Exemplar{LabelKey: "request_id", LabelValue: "req-inf"})
	h.Observe(0.0005) // un-annotated samples leave their bucket's slot empty

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	validateOpenMetrics(t, text)

	want := `test_lat_seconds_bucket{le="0.1"} 2 # {request_id="req-42"} 0.05 1754697600.000`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, text)
	}
	// The +Inf bucket's exemplar has no timestamp (Ts <= 0 omits it).
	wantInf := `test_lat_seconds_bucket{le="+Inf"} 3 # {request_id="req-inf"} 50`
	if !strings.Contains(text, wantInf) {
		t.Fatalf("exposition missing +Inf exemplar line %q:\n%s", wantInf, text)
	}

	ex := h.Exemplars()
	if e, ok := ex[0.1]; !ok || e.LabelValue != "req-42" || e.Value != 0.05 {
		t.Fatalf("Exemplars()[0.1] = %+v, %v", e, ok)
	}
	if e, ok := ex[math.Inf(1)]; !ok || e.LabelValue != "req-inf" {
		t.Fatalf("Exemplars()[+Inf] = %+v, %v", e, ok)
	}
}

// TestExemplarsOffByDefault pins the compatibility contract: without
// SetExemplars(true) the exposition is byte-identical to the pre-exemplar
// format even when exemplars were stored.
func TestExemplarsOffByDefault(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{1}).With()
	h.ObserveExemplar(0.5, Exemplar{LabelKey: "request_id", LabelValue: "req-1", Ts: 1})

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#  ") || strings.Contains(sb.String(), "} 1 # {") {
		t.Fatalf("exemplar leaked into flag-off exposition:\n%s", sb.String())
	}
	for _, ln := range strings.Split(sb.String(), "\n") {
		if strings.Contains(ln, " # ") && !strings.HasPrefix(ln, "#") {
			t.Fatalf("exemplar suffix on %q with exposition disabled", ln)
		}
	}
	validateOpenMetrics(t, sb.String())
}

// TestExemplarClamped pins the OpenMetrics 128-char cap: an oversized label
// value is truncated to fit rather than rendered illegally.
func TestExemplarClamped(t *testing.T) {
	r := NewRegistry()
	r.SetExemplars(true)
	h := r.Histogram("test_lat_seconds", "latency", []float64{1}).With()
	h.ObserveExemplar(0.5, Exemplar{LabelKey: "request_id", LabelValue: strings.Repeat("x", 300)})
	e := h.Exemplars()[1.0]
	if got := len(e.LabelKey) + len(e.LabelValue); got > 128 {
		t.Fatalf("clamped exemplar labelset is %d chars, want <= 128", got)
	}
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	validateOpenMetrics(t, sb.String())
}

// TestExemplarConcurrent hammers ObserveExemplar from many goroutines while
// scraping with exposition enabled — run under -race.
func TestExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetExemplars(true)
	h := r.Histogram("test_obs", "", []float64{1, 10, 100}).With()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.ObserveExemplar(float64(i%200), Exemplar{
					LabelKey: "request_id", LabelValue: "w" + strconv.Itoa(w) + "-" + strconv.Itoa(i),
					Ts: float64(i + 1),
				})
			}
		}(w)
	}
	for s := 0; s < 20; s++ {
		var sb strings.Builder
		if err := r.WriteOpenMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		validateOpenMetrics(t, sb.String())
	}
	wg.Wait()
	if h.Count() != workers*iters {
		t.Fatalf("histogram lost updates: %d", h.Count())
	}
	if len(h.Exemplars()) == 0 {
		t.Fatal("no exemplar survived")
	}
}
