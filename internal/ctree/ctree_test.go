package ctree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func members(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 3 // arbitrary non-contiguous ranks
	}
	return out
}

func TestTreeSpansAllRanksOnce(t *testing.T) {
	check := func(seed int64, kindBit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ms := members(n)
		root := ms[rng.Intn(n)]
		kind := Flat
		if kindBit {
			kind = Binary
		}
		tr, err := New(kind, root, ms)
		if err != nil {
			return false
		}
		// BFS from root must reach each member exactly once.
		seen := map[int]bool{root: true}
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, c := range tr.Children(v) {
				if seen[c] {
					return false // duplicate delivery
				}
				seen[c] = true
				queue = append(queue, c)
			}
		}
		if len(seen) != n {
			return false
		}
		// Parent/child consistency.
		for _, m := range ms {
			for _, c := range tr.Children(m) {
				if tr.Parent(c) != m {
					return false
				}
			}
			if tr.NumChildren(m) != len(tr.Children(m)) {
				return false
			}
		}
		return tr.Parent(root) == -1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryDepthLogarithmic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 15, 16, 100} {
		tr, err := New(Binary, 0, members(n))
		if err != nil {
			t.Fatal(err)
		}
		// A binary heap of n nodes has depth floor(log2(n)).
		want := 0
		for v := 1; v < n; v = v*2 + 1 {
			want++
		}
		if d := tr.Depth(); d > want+1 || (n > 2 && d >= n-1) {
			t.Fatalf("n=%d: depth %d", n, d)
		}
	}
}

func TestFlatShape(t *testing.T) {
	tr, err := New(Flat, 6, members(5))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 1 {
		t.Fatalf("flat depth %d", tr.Depth())
	}
	if len(tr.Children(6)) != 4 {
		t.Fatalf("flat root children %v", tr.Children(6))
	}
	for _, m := range members(5) {
		if m != 6 && len(tr.Children(m)) != 0 {
			t.Fatal("flat non-root has children")
		}
	}
}

func TestBinaryMaxTwoChildren(t *testing.T) {
	tr, err := New(Binary, 0, members(33))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members(33) {
		if n := tr.NumChildren(m); n > 2 {
			t.Fatalf("rank %d has %d children", m, n)
		}
	}
}

func TestRootNotMemberRejected(t *testing.T) {
	if _, err := New(Binary, 99, members(4)); err == nil {
		t.Fatal("root outside members accepted")
	}
}

func TestDuplicateMemberRejected(t *testing.T) {
	if _, err := New(Binary, 1, []int{1, 2, 2}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestSingletonTree(t *testing.T) {
	tr, err := New(Binary, 5, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 || tr.Parent(5) != -1 || len(tr.Children(5)) != 0 {
		t.Fatal("singleton tree malformed")
	}
	if !tr.Contains(5) || tr.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestAutoKindSelection(t *testing.T) {
	small, err := New(Auto, 0, members(5))
	if err != nil {
		t.Fatal(err)
	}
	if small.Depth() != 1 {
		t.Fatalf("auto with 5 members should be flat, depth=%d", small.Depth())
	}
	big, err := New(Auto, 0, members(40))
	if err != nil {
		t.Fatal(err)
	}
	if big.Depth() >= 39 || big.NumChildren(0) > 2 {
		t.Fatal("auto with 40 members should be binary")
	}
}
