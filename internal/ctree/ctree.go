// Package ctree builds the per-supernode broadcast and reduction
// communication trees of Liu et al. (CSC '18), the intra-grid latency
// optimization the paper integrates in §3.3.
//
// A tree spans the set of ranks participating in one supernode column's
// broadcast (of y(K)) or one supernode row's reduction (of lsum(K)). The
// optimized form is a binary heap over the participants; the baseline
// ("flat") form has the root sending to — or receiving from — every other
// participant directly, which is what the un-optimized 2D and baseline 3D
// solvers do.
package ctree

import "fmt"

// Kind selects the tree shape.
type Kind int

const (
	// Flat: root connects directly to all other participants. O(P) root
	// messages, depth 1.
	Flat Kind = iota
	// Binary: participants form a binary heap rooted at the root rank.
	// O(log P) depth, every rank sends at most two messages.
	Binary
	// Auto selects Flat for small participant sets and Binary beyond
	// autoThreshold participants: flat trees have lower depth-latency,
	// binary trees avoid root serialization at high fan-out, and the
	// crossover depends only on the participant count.
	Auto
)

// autoThreshold is the participant count at which Auto switches from Flat
// to Binary. Calibrated on the Cori model: below it, the root's send/recv
// serialization is cheaper than the binary tree's hop latency.
const autoThreshold = 16

func (k Kind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Auto:
		return "auto"
	}
	return "flat"
}

// Tree is a communication tree over a fixed participant set. The same
// structure serves broadcasts (messages flow root→leaves) and reductions
// (leaves→root); callers pick the direction.
type Tree struct {
	kind  Kind
	ranks []int       // participants; ranks[0] is the root
	pos   map[int]int // rank → index in ranks
}

// New builds a tree over the given participants rooted at root. The
// participant list must contain root and have no duplicates.
func New(kind Kind, root int, members []int) (*Tree, error) {
	if kind == Auto {
		kind = Flat
		if len(members) > autoThreshold {
			kind = Binary
		}
	}
	t := &Tree{kind: kind, ranks: make([]int, 0, len(members)), pos: make(map[int]int, len(members))}
	t.ranks = append(t.ranks, root)
	for _, m := range members {
		if m != root {
			t.ranks = append(t.ranks, m)
		}
	}
	foundRoot := false
	for _, m := range members {
		if m == root {
			foundRoot = true
		}
	}
	if !foundRoot {
		return nil, fmt.Errorf("ctree: root %d not among members %v", root, members)
	}
	for i, r := range t.ranks {
		if _, dup := t.pos[r]; dup {
			return nil, fmt.Errorf("ctree: duplicate rank %d", r)
		}
		t.pos[r] = i
	}
	return t, nil
}

// Root returns the root rank.
func (t *Tree) Root() int { return t.ranks[0] }

// Members returns the participant ranks, root first. Callers must not
// modify the slice.
func (t *Tree) Members() []int { return t.ranks }

// Size returns the number of participants.
func (t *Tree) Size() int { return len(t.ranks) }

// Contains reports whether rank participates in the tree.
func (t *Tree) Contains(rank int) bool {
	_, ok := t.pos[rank]
	return ok
}

// Children returns the ranks a participant forwards to during a broadcast
// (equivalently, the ranks it receives from during a reduction).
func (t *Tree) Children(rank int) []int {
	i, ok := t.pos[rank]
	if !ok {
		return nil
	}
	if t.kind == Flat {
		if i != 0 {
			return nil
		}
		out := make([]int, 0, len(t.ranks)-1)
		out = append(out, t.ranks[1:]...)
		return out
	}
	var out []int
	if c := 2*i + 1; c < len(t.ranks) {
		out = append(out, t.ranks[c])
	}
	if c := 2*i + 2; c < len(t.ranks) {
		out = append(out, t.ranks[c])
	}
	return out
}

// Parent returns the rank a participant receives from during a broadcast
// (sends to during a reduction), or -1 at the root.
func (t *Tree) Parent(rank int) int {
	i, ok := t.pos[rank]
	if !ok || i == 0 {
		return -1
	}
	if t.kind == Flat {
		return t.ranks[0]
	}
	return t.ranks[(i-1)/2]
}

// NumChildren returns len(Children(rank)) without allocating.
func (t *Tree) NumChildren(rank int) int {
	i, ok := t.pos[rank]
	if !ok {
		return 0
	}
	if t.kind == Flat {
		if i != 0 {
			return 0
		}
		return len(t.ranks) - 1
	}
	n := 0
	if 2*i+1 < len(t.ranks) {
		n++
	}
	if 2*i+2 < len(t.ranks) {
		n++
	}
	return n
}

// Depth returns the longest root-to-leaf hop count: the latency-critical
// metric the binary trees optimize.
func (t *Tree) Depth() int {
	if len(t.ranks) <= 1 {
		return 0
	}
	if t.kind == Flat {
		return 1
	}
	d := 0
	for i := len(t.ranks) - 1; i > 0; i = (i - 1) / 2 {
		d++
	}
	return d
}
