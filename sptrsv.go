// Package sptrsv is a Go reproduction of "Unified Communication
// Optimization Strategies for Sparse Triangular Solver on CPU and GPU
// Clusters" (Liu, Ding, Sao, Williams, Li — SC '23).
//
// It provides distributed-memory sparse triangular solve (SpTRSV) on
// supernodal LU factors over a 3D process layout Px × Py × Pz, with the
// paper's four algorithm variants:
//
//   - Proposed3D — the paper's contribution: one 2D L-solve over each
//     grid's whole elimination-tree path, a single inter-grid sparse
//     allreduce, one 2D U-solve, with flat or binary communication trees.
//   - Baseline3D — the level-by-level 3D algorithm it improves on
//     (Sao et al., ICS '19), with O(log Pz) inter-grid synchronizations.
//   - GPUSingle / GPUMulti — the GPU execution models of the paper's
//     Algorithms 4 and 5 (thread-block tasks on SM slots; NVSHMEM-style
//     one-sided broadcasts), simulation backend only.
//
// Two execution backends run the same algorithms: a deterministic
// discrete-event simulator with machine models of Cori Haswell, Perlmutter
// and Crusher (regenerates the paper's figures), and a real
// goroutine-per-rank pool (wall-clock benchmarks on the host). Every
// simulated run performs the real numeric solve, so results are always
// verifiable against the serial reference.
//
// Quickstart — let the autotuner pick the algorithm, grid shape, and tree
// kind for a rank budget:
//
//	a := sptrsv.S2D9pt(256, 256, 1)          // 2D Poisson analog
//	sys, _ := sptrsv.Factorize(a, sptrsv.FactorOptions{})
//	solver, _ := sptrsv.NewAutoSolver(sys, sptrsv.CoriHaswell(), 64)
//	b := sptrsv.NewPanel(a.N, 1) // fill with the right-hand side
//	x, report, _ := solver.Solve(b)
//	_ = x
//	fmt.Printf("solve time %.3g s\n", report.Time)
//
// Or pin every knob by hand:
//
//	solver, _ := sptrsv.NewSolver(sys, sptrsv.Config{
//		Layout:    sptrsv.Layout{Px: 4, Py: 4, Pz: 4},
//		Algorithm: sptrsv.Proposed3D,
//		Trees:     sptrsv.BinaryTrees,
//		Machine:   sptrsv.CoriHaswell(),
//	})
//
// A Solver is an immutable plan plus pooled per-solve state: build it once
// and reuse it across right-hand sides. Solve is safe for concurrent use
// from multiple goroutines, and SolveBatch runs one solve per panel
// concurrently on a shared Solver.
package sptrsv

import (
	"io"

	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/mtx"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
	"sptrsv/internal/tune"
)

// Matrix and vector types.
type (
	// CSR is a square sparse matrix in compressed sparse row form.
	CSR = sparse.CSR
	// Builder assembles CSR matrices from coordinate entries.
	Builder = sparse.Builder
	// Panel is a dense column-major rows×cols matrix used for right-hand
	// sides and solutions (cols = nrhs).
	Panel = sparse.Panel
)

// NewBuilder returns a coordinate builder for an n×n matrix.
func NewBuilder(n int) *Builder { return sparse.NewBuilder(n) }

// NewPanel allocates a zeroed rows×cols panel.
func NewPanel(rows, cols int) *Panel { return sparse.NewPanel(rows, cols) }

// ResidualInf computes max over columns of ‖A·x − b‖∞.
func ResidualInf(a *CSR, x, b *Panel) float64 { return sparse.ResidualInf(a, x, b) }

// Preprocessing pipeline.
type (
	// FactorOptions controls ordering depth and supernode width.
	FactorOptions = core.FactorOptions
	// System is a factored matrix ready to distribute and solve.
	System = core.System
	// Config selects layout, algorithm, trees, machine, and backend.
	Config = core.Config
	// Solver executes distributed solves for one System and Config.
	Solver = core.Solver
	// Report summarizes one solve (makespan, breakdown, per-rank spans).
	Report = core.Report
)

// Factorize orders, analyzes and LU-factors a symmetric-pattern matrix.
func Factorize(a *CSR, opt FactorOptions) (*System, error) { return core.Factorize(a, opt) }

// Fingerprint returns the structural identity of a factored system — its
// dimension, factor fill nnz(L)+nnz(U), supernode count, and recorded
// separator-tree depth. It is the cache key the autotuner's persistent
// cache, the benchmark summary, and the metric labels all agree on.
//
// Stability guarantees: the fingerprint is a deterministic function of the
// matrix nonzero pattern and the FactorOptions — the same matrix factored
// with the same options yields the same fingerprint in any process on any
// platform. It deliberately ignores numeric values (two systems with equal
// pattern but different values are structurally interchangeable for
// planning and tuning) — which is exactly why it must never name a
// matrix: the solve service identifies uploaded matrices by a content
// hash over pattern and values (server.ContentHash) and reserves the
// fingerprint for the plan and tuning caches. Treat it as an opaque
// equality-comparable key: the textual format may gain fields when the
// planning-relevant structure grows, and such a change invalidates old
// keys loudly (a cache miss) rather than silently colliding.
func Fingerprint(sys *System) string { return sys.Fingerprint() }

// NewSolver validates a configuration and builds the distribution plan.
func NewSolver(sys *System, cfg Config) (*Solver, error) { return core.NewSolver(sys, cfg) }

// ValidateConfig checks an algorithm × layout × machine combination
// without building the distribution plan — the same rules NewSolver
// enforces.
func ValidateConfig(sys *System, cfg Config) error { return core.ValidateConfig(sys, cfg) }

// Autotuning. AutoConfig searches the paper-legal configuration space
// (algorithm × Px×Py×Pz × tree kind) for the rank budget p with a
// two-stage search — an analytic pre-score followed by concurrent
// discrete-event probe solves — and returns the best configuration found.
// The result is deterministic and never slower (in modeled makespan) than
// the fixed default {Proposed3D, Px≈Py, Pz=1, AutoTrees}.
type (
	// TuneOptions controls Tune (probe budget, nrhs class, persistent
	// cache).
	TuneOptions = tune.Options
	// TuneResult reports the chosen config, its makespan, the default's
	// makespan, and how many probe solves the search ran.
	TuneResult = tune.Result
	// TuneCache is the persistent tuned-config cache (one JSON file under
	// a caller-chosen directory), safe for concurrent use.
	TuneCache = tune.Cache
)

// OpenTuneCache loads or initializes a persistent tuned-config cache under
// dir. Pass it via TuneOptions.Cache to make repeated Tune calls for the
// same matrix × machine × rank budget skip the search entirely.
func OpenTuneCache(dir string) (*TuneCache, error) { return tune.OpenCache(dir) }

// Tune runs the autotuner with explicit options and returns the full
// search report.
func Tune(sys *System, m *MachineModel, p int, opt TuneOptions) (*TuneResult, error) {
	return tune.Run(sys, m, p, opt)
}

// AutoConfig returns the best configuration for solving sys on machine m
// with p ranks, using default tuning options (nrhs=1, no persistent
// cache).
func AutoConfig(sys *System, m *MachineModel, p int) (Config, error) {
	res, err := tune.Run(sys, m, p, tune.Options{})
	if err != nil {
		return Config{}, err
	}
	return res.Config, nil
}

// NewAutoSolver tunes and builds in one step: the Solver equivalent of
// NewSolver(sys, AutoConfig(sys, m, p)).
func NewAutoSolver(sys *System, m *MachineModel, p int) (*Solver, error) {
	cfg, err := AutoConfig(sys, m, p)
	if err != nil {
		return nil, err
	}
	return core.NewSolver(sys, cfg)
}

// Layout is a Px × Py × Pz process layout (Pz must be a power of two).
type Layout = grid.Layout

// Square2D splits p ranks into the most square Px×Py grid (Px ≥ Py), the
// paper's rule for Fig. 4.
func Square2D(p int) (px, py int) { return grid.Square2D(p) }

// Algorithm variants. Proposed3DNaiveAR swaps the sparse allreduce for a
// per-node collective — the ablation of the paper's §3.2 optimization.
const (
	Proposed3D        = trsv.Proposed3D
	Baseline3D        = trsv.Baseline3D
	GPUSingle         = trsv.GPUSingle
	GPUMulti          = trsv.GPUMulti
	Proposed3DNaiveAR = trsv.Proposed3DNaiveAR
)

// Communication tree kinds for the intra-grid broadcasts and reductions.
// AutoTrees picks flat below a fan-out threshold and binary above it.
const (
	FlatTrees   = ctree.Flat
	BinaryTrees = ctree.Binary
	AutoTrees   = ctree.Auto
)

// ExecMode selects the execution engine via Config.Exec.
type ExecMode = trsv.ExecMode

// Execution engines. ExecSched (the ExecAuto default) runs level-scheduled
// sweeps over the plan's precomputed dependency schedule; ExecHandler is
// the original per-message handler path, kept selectable as the bit-exact
// oracle (see DESIGN.md §11).
const (
	ExecAuto    = trsv.ExecAuto
	ExecSched   = trsv.ExecSched
	ExecHandler = trsv.ExecHandler
)

// CommMode selects the wire format of inter-rank subvector traffic via
// Config.Comm.
type CommMode = trsv.CommMode

// Communication modes. CommPacked (the CommAuto default) ships index+value
// packed supernode segments with trailing-zero-column suppression — fewer
// modeled bytes, identical message counts, bit-exact solutions. CommDense
// is the full-dense reference wire model; CommAggregated adds
// per-destination coalescing of same-phase messages in the proposed
// algorithm's 2D phases (see DESIGN.md §13).
const (
	CommAuto       = trsv.CommAuto
	CommPacked     = trsv.CommPacked
	CommDense      = trsv.CommDense
	CommAggregated = trsv.CommAggregated
)

// SolveMode selects strict or elastic stale-synchronous execution via
// Config.Mode.
type SolveMode = trsv.SolveMode

// Solve modes. ModeStrict (the ModeAuto default) waits for every dependency
// — the classical SpTRSV contract. ModeElastic bounds how long: a rank that
// falls more than Config.Staleness dependency levels behind the modeled
// schedule forces progress with the contributions received so far, and the
// solver repairs the stale reads with iterative refinement until the true
// residual meets Config.RefineTol (default 1e-8) or returns a typed
// NumericalError — a verified solution either way. Fault-free elastic runs
// force nothing and are bit-identical to strict (see DESIGN.md §14).
const (
	ModeAuto    = trsv.ModeAuto
	ModeStrict  = trsv.ModeStrict
	ModeElastic = trsv.ModeElastic
)

// Machine models of the paper's three systems.
var (
	CoriHaswell   = machine.CoriHaswell
	PerlmutterCPU = machine.PerlmutterCPU
	PerlmutterGPU = machine.PerlmutterGPU
	CrusherCPU    = machine.CrusherCPU
	CrusherGPU    = machine.CrusherGPU
)

// MachineModel is a simulator machine description; see the machine
// constructors above, or build a custom one.
type MachineModel = machine.Model

// Backends.
type (
	// SimBackend runs on the deterministic discrete-event simulator.
	SimBackend = trsv.SimBackend
	// PoolBackend runs one goroutine per rank in real time.
	PoolBackend = trsv.PoolBackend
)

// GoroutinePool returns a PoolBackend with default settings.
func GoroutinePool() PoolBackend { return PoolBackend{Pool: runtime.Pool{}} }

// Fault injection and the typed failure taxonomy. A FaultPlan passed via
// Config.Faults (or a backend's runtime.Options) injects deterministic
// faults — straggler ranks, message latency jitter, message drops, rank
// crashes — into solves; see DESIGN.md §9. Every runtime failure a solve
// can hit (injected or not) comes back as one of the typed errors below
// rather than crashing the process.
type (
	// FaultPlan describes the faults to inject into a run; the zero value
	// injects nothing, and a plan is reusable across concurrent solves.
	FaultPlan = fault.Plan
	// DropRule selects messages for a FaultPlan to discard.
	DropRule = fault.DropRule
	// StallError: a rank stopped making progress (pool watchdog fired, or
	// the simulator reached quiescence with messages still expected).
	StallError = fault.StallError
	// CrashError: an injected rank crash prevented completion.
	CrashError = fault.CrashError
	// PanicError: a panic recovered inside a rank body.
	PanicError = fault.PanicError
	// ProtocolError: a violated runtime or algorithm invariant.
	ProtocolError = fault.ProtocolError
	// NumericalError: a non-finite value in the RHS or the solution, or
	// an elastic solve whose iterative refinement could not reach
	// Config.RefineTol within Config.RefineMax passes.
	NumericalError = fault.NumericalError
	// BatchError maps each SolveBatch panel to its error (nil = success).
	BatchError = core.BatchError
)

// FaultWildcard matches any rank or tag in a DropRule.
const FaultWildcard = fault.Wildcard

// IsFault reports whether err is (or wraps) one of the typed fault errors —
// a diagnosed runtime failure, as opposed to a usage error such as a
// wrong-shaped right-hand side.
func IsFault(err error) bool { return fault.IsFault(err) }

// Generators for the paper's six matrix analogs (see internal/gen for the
// substitution rationale) plus scale-parameterized suite access.
var (
	S2D9pt         = gen.S2D9pt
	NLPKKTLike     = gen.NLPKKTLike
	LdoorLike      = gen.LdoorLike
	DielFilterLike = gen.DielFilterLike
	GaAsLike       = gen.GaAsLike
	S1MatLike      = gen.S1MatLike
)

// TestMatrix is a generated analog of one of the paper's test matrices.
type TestMatrix = gen.Matrix

// Suite generates the full Table 1 analog set at the given scale
// ("small", "medium", "large" via ParseScale).
func Suite(scale string) []TestMatrix { return gen.Suite(gen.ParseScale(scale)) }

// ReadMatrixMarket parses a Matrix Market coordinate stream (real/integer,
// general/symmetric) into a CSR matrix, so the paper's original SuiteSparse
// matrices can be used when available.
func ReadMatrixMarket(r io.Reader) (*CSR, error) { return mtx.Read(r) }

// ReadMatrixMarketFile reads a .mtx file from disk.
func ReadMatrixMarketFile(path string) (*CSR, error) { return mtx.ReadFile(path) }

// WriteMatrixMarket emits a matrix in coordinate real general form.
func WriteMatrixMarket(w io.Writer, a *CSR) error { return mtx.Write(w, a) }
