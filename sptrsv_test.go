package sptrsv_test

import (
	"math/rand"
	"strings"
	"testing"

	"sptrsv"
)

// TestPublicAPIEndToEnd exercises the documented workflow exactly as the
// README shows it, on both backends and several algorithms.
func TestPublicAPIEndToEnd(t *testing.T) {
	a := sptrsv.S2D9pt(24, 24, 1)
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{TreeDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := sptrsv.NewPanel(a.N, 2)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	configs := []sptrsv.Config{
		{Layout: sptrsv.Layout{Px: 2, Py: 2, Pz: 4}, Algorithm: sptrsv.Proposed3D, Trees: sptrsv.AutoTrees, Machine: sptrsv.CoriHaswell()},
		{Layout: sptrsv.Layout{Px: 2, Py: 2, Pz: 4}, Algorithm: sptrsv.Baseline3D, Trees: sptrsv.FlatTrees, Machine: sptrsv.CoriHaswell()},
		{Layout: sptrsv.Layout{Px: 1, Py: 1, Pz: 8}, Algorithm: sptrsv.GPUSingle, Machine: sptrsv.PerlmutterGPU()},
		{Layout: sptrsv.Layout{Px: 4, Py: 1, Pz: 2}, Algorithm: sptrsv.GPUMulti, Trees: sptrsv.BinaryTrees, Machine: sptrsv.CrusherGPU()},
		{Layout: sptrsv.Layout{Px: 2, Py: 2, Pz: 2}, Algorithm: sptrsv.Proposed3D, Trees: sptrsv.BinaryTrees, Machine: sptrsv.CoriHaswell(), Backend: sptrsv.GoroutinePool()},
	}
	for _, cfg := range configs {
		solver, err := sptrsv.NewSolver(sys, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg.Layout, err)
		}
		x, rep, err := solver.Solve(b)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		if r := solver.Residual(x, b); r > 1e-7 {
			t.Fatalf("%v: residual %g", cfg.Algorithm, r)
		}
		if rep.Time <= 0 {
			t.Fatalf("%v: no time", cfg.Algorithm)
		}
	}
}

// TestPublicAPIAutoSolver exercises the autotuning entry points: tuned
// solver end-to-end, AutoConfig validity, and the persistent cache flow
// through TuneOptions.
func TestPublicAPIAutoSolver(t *testing.T) {
	a := sptrsv.S2D9pt(24, 24, 2)
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{TreeDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := sptrsv.NewAutoSolver(sys, sptrsv.CoriHaswell(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b := sptrsv.NewPanel(a.N, 1)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x, rep, err := solver.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := solver.Residual(x, b); r > 1e-7 {
		t.Fatalf("auto solver residual %g", r)
	}
	if rep.Time <= 0 {
		t.Fatal("auto solver reported no time")
	}

	cfg, err := sptrsv.AutoConfig(sys, sptrsv.CoriHaswell(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sptrsv.ValidateConfig(sys, cfg); err != nil {
		t.Fatalf("AutoConfig returned invalid config: %v", err)
	}

	cache, err := sptrsv.OpenTuneCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sptrsv.Tune(sys, sptrsv.CoriHaswell(), 8, sptrsv.TuneOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sptrsv.Tune(sys, sptrsv.CoriHaswell(), 8, sptrsv.TuneOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache || warm.Probes != 0 {
		t.Fatalf("warm tune not cached: fromCache=%v probes=%d", warm.FromCache, warm.Probes)
	}
	if warm.Config.Layout != cold.Config.Layout || warm.Config.Algorithm != cold.Config.Algorithm {
		t.Fatalf("warm config %+v differs from cold %+v", warm.Config, cold.Config)
	}
}

func TestPublicAPISuiteAndMTX(t *testing.T) {
	suite := sptrsv.Suite("small")
	if len(suite) != 6 {
		t.Fatalf("suite has %d matrices", len(suite))
	}
	// Round-trip one matrix through the Matrix Market exports.
	var sb strings.Builder
	if err := sptrsv.WriteMatrixMarket(&sb, suite[1].A); err != nil {
		t.Fatal(err)
	}
	back, err := sptrsv.ReadMatrixMarket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != suite[1].A.NNZ() {
		t.Fatal("mtx round trip changed nnz")
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	// Users can assemble their own matrices.
	b := sptrsv.NewBuilder(3)
	b.Add(0, 0, 4)
	b.Add(1, 1, 4)
	b.Add(2, 2, 4)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	a := b.ToCSR()
	sys, err := sptrsv.Factorize(a, sptrsv.FactorOptions{TreeDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := sptrsv.NewSolver(sys, sptrsv.Config{
		Layout: sptrsv.Layout{Px: 1, Py: 1, Pz: 1}, Machine: sptrsv.CoriHaswell(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rhs := sptrsv.NewPanel(3, 1)
	rhs.Set(0, 0, 5)
	rhs.Set(1, 0, 5)
	rhs.Set(2, 0, 4)
	x, _, err := solver.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if r := sptrsv.ResidualInf(a, x, rhs); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
	if x.At(2, 0) != 1 {
		t.Fatalf("x[2] = %v, want 1", x.At(2, 0))
	}
}

func TestSquare2DExport(t *testing.T) {
	px, py := sptrsv.Square2D(128)
	if px*py != 128 || px < py {
		t.Fatalf("Square2D(128) = %d,%d", px, py)
	}
}
