#!/bin/sh
# Pre-PR gate: formatting, vet, build, race-enabled tests, and the quick
# solve benchmarks. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -race -count=2 (tuner + solver concurrency stress) =="
go test -race -count=2 ./internal/tune ./internal/core

echo "== go test -race -count=2 (tracer under both backends) =="
go test -race -count=2 -run 'Trace|Parity|CriticalPath|ConcurrentTraced' \
    ./internal/runtime ./internal/trsv ./internal/core

echo "== go test -race -count=2 (chaos / fault-injection stress) =="
go test -race -count=2 -run 'Chaos|Fault|Stall|Watchdog|Crash|Robust|NonFinite' \
    ./internal/fault ./internal/runtime ./internal/core ./internal/sparse

echo "== go test -race -count=2 (elastic-chaos stress: staleness x straggler severity) =="
go test -race -count=2 -run 'Elastic' \
    ./internal/trsv ./internal/fault ./internal/core ./internal/server

echo "== go test -race -count=2 (concurrent solves scraping /metrics) =="
go test -race -count=2 -run 'Metrics|OpenMetrics|Histogram' \
    ./internal/metrics ./internal/core

echo "== go test -race -count=3 (scheduled-execution work-stealing stress) =="
go test -race -count=3 -run 'TestSchedConcurrentSolves|TestSchedPoolBitExact|TestSchedMatchesHandlerBitExact' \
    ./internal/trsv ./internal/sched

echo "== go test -race -count=2 (packed wire format + deferred-queue stress) =="
go test -race -count=2 -run 'Wire|Pack|Comm|ByteAccount|Aggregated|Deferred|SendDsts' \
    ./internal/trsv ./internal/sched

echo "== go test -race -count=2 (solve service stress: clients x scrapes x cache churn) =="
go test -race -count=2 -run 'TestServerStressRace|TestCoalesce|TestQueueFull' \
    ./internal/server ./internal/server/loadgen

echo "== go test -race -count=2 (request tracing / flight recorder / exemplars) =="
go test -race -count=2 ./internal/reqtrace
go test -race -count=2 \
    -run 'Flight|Statusz|Exemplar|DebugRequest|RequestID|TraceOff|ShedRequests|ConcurrentTraffic' \
    ./internal/server ./internal/metrics

echo "== traced-serve + flight-recorder smoke =="
go run ./scripts/tracesmoke

echo "== solve service + loadgen smoke =="
go run ./cmd/figures -only slo -scale small -quick

echo "== serve loop-mode smoke =="
go run ./cmd/serve -mode loop -matrix s2d9pt -scale small -n 5 -interval 0 -check 5 -addr 127.0.0.1:0

echo "== benchmark regression gate =="
scripts/bench_regress

echo "== scheduled vs handler engine comparison =="
go run ./cmd/figures -only sched -scale small

echo "== elasticity sweep smoke (strict vs elastic under stragglers) =="
go run ./cmd/figures -only elastic -scale small -quick

echo "== quick solve benchmarks =="
go test -run xxx -bench 'Solve' -benchmem -benchtime 1x .

echo "== check.sh OK =="
