#!/bin/sh
# Pre-PR gate: formatting, vet, build, race-enabled tests, and the quick
# solve benchmarks. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -race -count=2 (tuner + solver concurrency stress) =="
go test -race -count=2 ./internal/tune ./internal/core

echo "== go test -race -count=2 (tracer under both backends) =="
go test -race -count=2 -run 'Trace|Parity|CriticalPath|ConcurrentTraced' \
    ./internal/runtime ./internal/trsv ./internal/core

echo "== go test -race -count=2 (chaos / fault-injection stress) =="
go test -race -count=2 -run 'Chaos|Fault|Stall|Watchdog|Crash|Robust|NonFinite' \
    ./internal/fault ./internal/runtime ./internal/core ./internal/sparse

echo "== go test -race -count=2 (concurrent solves scraping /metrics) =="
go test -race -count=2 -run 'Metrics|OpenMetrics|Histogram' \
    ./internal/metrics ./internal/core

echo "== go test -race -count=3 (scheduled-execution work-stealing stress) =="
go test -race -count=3 -run 'TestSchedConcurrentSolves|TestSchedPoolBitExact|TestSchedMatchesHandlerBitExact' \
    ./internal/trsv ./internal/sched

echo "== benchmark regression gate =="
scripts/bench_regress

echo "== scheduled vs handler engine comparison =="
go run ./cmd/figures -only sched -scale small

echo "== quick solve benchmarks =="
go test -run xxx -bench 'Solve' -benchmem -benchtime 1x .

echo "== check.sh OK =="
