// Command tracesmoke is the end-to-end smoke test for the request-tracing
// and flight-recorder surface, run by scripts/check.sh. It hosts the solve
// service in-process behind a real TCP listener, then drives the full
// observability loop a human operator would:
//
//  1. upload a matrix, solve it with X-Request-ID + X-Trace, and fetch the
//     per-request record and stitched Chrome trace back by that ID;
//  2. inject a crash fault and confirm the flight recorder captured it,
//     trigger and runtime events included;
//  3. scrape /metrics for the outcome-labeled latency histogram with
//     request-ID exemplars, and /statusz for the operational snapshot.
//
// Any deviation exits non-zero with a message naming the failed check.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"sptrsv/internal/metrics"
	"sptrsv/internal/server"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	svc, err := server.New(server.Options{
		Ranks:     4,
		MaxBatch:  4,
		MaxWait:   time.Millisecond,
		MaxQueue:  64,
		Registry:  metrics.NewRegistry(),
		Exemplars: true,
	})
	if err != nil {
		die("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("listen: %v", err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// 1. Upload a generated matrix.
	var up struct {
		Handle string `json:"handle"`
		N      int    `json:"n"`
	}
	code := postJSON(base+"/v1/matrices", `{"generate":{"name":"s2d9pt","scale":"small"}}`, nil, &up)
	if code/100 != 2 || up.Handle == "" {
		die("upload: status %d, handle %q", code, up.Handle)
	}
	fmt.Printf("uploaded %s (n=%d)\n", up.Handle, up.N)

	b := make([]float64, up.N)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	solveURL := base + "/v1/matrices/" + up.Handle + "/solve"

	// 2. Traced solve, named by the client.
	var solved struct {
		BatchWidth int `json:"batch_width"`
	}
	code = postJSON(solveURL, mustBody(map[string]any{"b": b}),
		map[string]string{"X-Request-ID": "smoke-ok", "X-Trace": "1"}, &solved)
	if code != http.StatusOK {
		die("traced solve: status %d", code)
	}

	// 3. The record must be retrievable by the ID the client chose.
	var rec struct {
		Outcome     string `json:"outcome"`
		TraceEvents int    `json:"trace_events"`
		Spans       []struct {
			Stage string `json:"stage"`
		} `json:"spans"`
	}
	code = getJSON(base+"/debug/requests/smoke-ok", &rec)
	if code != http.StatusOK || rec.Outcome != "ok" {
		die("/debug/requests/smoke-ok: status %d, outcome %q", code, rec.Outcome)
	}
	if rec.TraceEvents == 0 {
		die("traced solve recorded no runtime trace events")
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Stage] = true
	}
	for _, want := range []string{"decode", "queue-wait", "solve", "encode"} {
		if !names[want] {
			die("record is missing the %q span (got %v)", want, rec.Spans)
		}
	}
	trace := getRaw(base + "/debug/requests/smoke-ok/trace")
	if !strings.Contains(trace, `"traceEvents"`) || !strings.Contains(trace, `"queue-wait"`) {
		die("/debug/requests/smoke-ok/trace is not a stitched Chrome trace")
	}
	fmt.Printf("request smoke-ok: %d spans, %d runtime events, stitched trace %d bytes\n",
		len(rec.Spans), rec.TraceEvents, len(trace))

	// 4. Crash fault: the flight recorder must capture it automatically.
	code = postJSON(solveURL, mustBody(map[string]any{
		"b": b, "fault": map[string]any{"crash_rank": 1, "crash_at": 0.0},
	}), map[string]string{"X-Request-ID": "smoke-fault", "X-Trace": "1"}, nil)
	if code != http.StatusInternalServerError {
		die("faulted solve: status %d, want 500", code)
	}
	var fl struct {
		Flights []struct {
			ID          string `json:"id"`
			Trigger     string `json:"trigger"`
			TraceEvents int    `json:"trace_events"`
		} `json:"flights"`
	}
	code = getJSON(base+"/debug/flights", &fl)
	if code != http.StatusOK {
		die("/debug/flights: status %d", code)
	}
	found := false
	for _, f := range fl.Flights {
		if f.ID == "smoke-fault" {
			found = true
			if f.Trigger != "fault" {
				die("flight smoke-fault trigger %q, want fault", f.Trigger)
			}
			if f.TraceEvents == 0 {
				die("flight smoke-fault carries no runtime events (partial-trace salvage broken)")
			}
		}
	}
	if !found {
		die("faulted request produced no flight (have %+v)", fl.Flights)
	}
	flight := getRaw(base + "/debug/flights/smoke-fault")
	if !strings.Contains(flight, `"traceEvents"`) {
		die("/debug/flights/smoke-fault is not a Chrome trace")
	}
	fmt.Printf("flight smoke-fault: trigger=fault, download %d bytes\n", len(flight))

	// 5. Metrics: outcome-labeled latency histogram with exemplars.
	exposition := getRaw(base + "/metrics")
	for _, want := range []string{
		`sptrsv_server_request_seconds_bucket`,
		`outcome="ok"`,
		`outcome="fault"`,
		`# {request_id="smoke-`,
	} {
		if !strings.Contains(exposition, want) {
			die("/metrics is missing %q", want)
		}
	}

	// 6. Statusz.
	var st struct {
		Status  string `json:"status"`
		Flights int    `json:"flights"`
	}
	code = getJSON(base+"/statusz", &st)
	if code != http.StatusOK || st.Status != "ok" || st.Flights < 1 {
		die("/statusz: status %d, %+v", code, st)
	}

	fmt.Println("tracesmoke OK")
}

func mustBody(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		die("marshal: %v", err)
	}
	return string(raw)
}

func postJSON(url, body string, headers map[string]string, out any) int {
	req, err := http.NewRequest("POST", url, bytes.NewReader([]byte(body)))
	if err != nil {
		die("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		die("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			die("decode %s: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func getJSON(url string, out any) int {
	resp, err := http.Get(url)
	if err != nil {
		die("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			die("decode %s: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func getRaw(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		die("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		die("read %s: %v", url, err)
	}
	return string(data)
}
