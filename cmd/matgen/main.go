// Command matgen generates the paper's test-matrix analogs and reports
// their structural properties (before and after factorization) — the local
// equivalent of downloading from SuiteSparse and running the SuperLU_DIST
// symbolic phase.
//
// Usage:
//
//	matgen [-scale small|medium|large] [-matrix all|s2d9pt|...] [-factor]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
)

func main() {
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	matrix := flag.String("matrix", "all", "one analog name or 'all'")
	factored := flag.Bool("factor", true, "run ordering+factorization and report fill")
	flag.Parse()

	names := gen.SuiteNames()
	if *matrix != "all" {
		names = []string{*matrix}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "analog\tstands for\tn\tnnz(A)\tnnz(LU)\tdensity\tsupernodes\tdomain")
	for _, name := range names {
		m := gen.Named(name, gen.ParseScale(*scale))
		nnzLU, snCount := -1, -1
		if *factored {
			sys, err := core.Factorize(m.A, core.FactorOptions{})
			if err != nil {
				cliutil.Fail("matgen", err)
			}
			nnzLU = sys.NNZFactors()
			snCount = sys.SN.SnCount
		}
		density := "-"
		lu := "-"
		sn := "-"
		if nnzLU >= 0 {
			density = fmt.Sprintf("%.3g%%", 100*float64(nnzLU)/(float64(m.A.N)*float64(m.A.N)))
			lu = fmt.Sprint(nnzLU)
			sn = fmt.Sprint(snCount)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
			m.Name, m.PaperName, m.A.N, m.A.NNZ(), lu, density, sn, m.Description)
	}
	tw.Flush()
}
