// Command matgen generates the paper's test-matrix analogs and reports
// their structural properties (before and after factorization) — the local
// equivalent of downloading from SuiteSparse and running the SuperLU_DIST
// symbolic phase.
//
// Usage:
//
//	matgen [-scale small|medium|large] [-matrix all|s2d9pt|...] [-factor]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/ctree"
	"sptrsv/internal/dist"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/sched"
	"sptrsv/internal/trsv"
)

func main() {
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	matrix := flag.String("matrix", "all", "one analog name or 'all'")
	factored := flag.Bool("factor", true, "run ordering+factorization and report fill")
	modeName := flag.String("mode", "auto", "solve mode: auto, strict, elastic (elastic adds the L/U dependency-depth columns that calibrate -staleness)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	flag.Parse()

	mode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		cliutil.Fail("matgen", err)
	}
	// Elastic mode is about dependency levels, so report the structural
	// quantity the staleness bound S is measured against: the L- and
	// U-sweep dependency depths (from a 1x1x1 plan — depths are a property
	// of the factors, not of any particular process grid).
	elastic := mode.Resolve() == trsv.ModeElastic && *factored

	names := gen.SuiteNames()
	if *matrix != "all" {
		names = []string{*matrix}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "analog\tstands for\tn\tnnz(A)\tnnz(LU)\tdensity\tsupernodes\tdomain"
	if elastic {
		header = "analog\tstands for\tn\tnnz(A)\tnnz(LU)\tdensity\tsupernodes\tL-depth\tU-depth\tdomain"
	}
	fmt.Fprintln(tw, header)
	for _, name := range names {
		m := gen.Named(name, gen.ParseScale(*scale))
		nnzLU, snCount := -1, -1
		lDepth, uDepth := "-", "-"
		if *factored {
			sys, err := core.Factorize(m.A, core.FactorOptions{})
			if err != nil {
				cliutil.Fail("matgen", err)
			}
			nnzLU = sys.NNZFactors()
			snCount = sys.SN.SnCount
			if elastic {
				plan, err := dist.New(sys.SN, sys.Tree, grid.Layout{Px: 1, Py: 1, Pz: 1}, ctree.Auto)
				if err != nil {
					cliutil.Fail("matgen", err)
				}
				sc, err := sched.Of(plan)
				if err != nil {
					cliutil.Fail("matgen", err)
				}
				lDepth = fmt.Sprint(sc.Grids[0].LDepth)
				uDepth = fmt.Sprint(sc.Grids[0].UDepth)
			}
		}
		density := "-"
		lu := "-"
		sn := "-"
		if nnzLU >= 0 {
			density = fmt.Sprintf("%.3g%%", 100*float64(nnzLU)/(float64(m.A.N)*float64(m.A.N)))
			lu = fmt.Sprint(nnzLU)
			sn = fmt.Sprint(snCount)
		}
		if elastic {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
				m.Name, m.PaperName, m.A.N, m.A.NNZ(), lu, density, sn, lDepth, uDepth, m.Description)
		} else {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
				m.Name, m.PaperName, m.A.N, m.A.NNZ(), lu, density, sn, m.Description)
		}
	}
	tw.Flush()
	if elastic {
		fmt.Printf("\nelastic deadlines: a rank forces progress once it falls S=%d levels behind; "+
			"a sweep's forcing horizon is depth+S levels\n", *staleness)
	}
}
