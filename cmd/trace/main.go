// Command trace runs one traced solve on the discrete-event backend and
// writes a Chrome trace_event JSON file — open it in chrome://tracing or
// https://ui.perfetto.dev to see every rank's compute, send, recv, and wait
// spans on the virtual timeline. It also prints the trace-derived breakdown,
// the run's critical path (the longest task → message → task dependency
// chain, a lower bound on any schedule of the same graph), and the
// top-slack/top-wait message edges — the direct input for choosing the next
// communication optimization.
//
// Usage:
//
//	trace -matrix s2d9pt -scale small -px 2 -py 2 -pz 4 \
//	      -algo proposed -machine cori-haswell -o trace.json -top 5
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func main() {
	matrix := flag.String("matrix", "s2d9pt", "matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "trace a Matrix Market file instead of a generated analog")
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	px := flag.Int("px", 2, "process rows per 2D grid")
	py := flag.Int("py", 2, "process columns per 2D grid")
	pz := flag.Int("pz", 2, "number of replicated 2D grids (power of two)")
	algoName := flag.String("algo", "proposed", "algorithm: proposed, baseline, gpu-single, gpu-multi")
	treeName := flag.String("trees", "auto", "communication trees: flat, binary, auto")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	execName := flag.String("exec", "auto", "execution engine: auto, sched (level-scheduled sweeps), handler (per-message oracle)")
	levelChunk := flag.Int("level-chunk", 0, "scheduled-execution cache-blocking chunk size (0 = default)")
	modeName := flag.String("mode", "auto", "solve mode: auto, strict, elastic (bounded staleness + iterative refinement)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	nrhs := flag.Int("nrhs", 1, "number of right-hand sides")
	traceCap := flag.Int("trace-cap", 0, "per-rank trace event capacity (0 = default 65536); overflow drops oldest events")
	out := flag.String("o", "trace.json", "output path for the Chrome trace_event JSON")
	top := flag.Int("top", 5, "how many top-slack and top-wait message edges to print")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("trace", err) }

	var a *sparse.CSR
	if *mtxPath != "" {
		a = cliutil.LoadMTX("trace", *mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", *mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(*matrix, gen.ParseScale(*scale))
		a = m.A
		fmt.Printf("matrix %s (analog of %s): n=%d, nnz=%d\n", m.Name, m.PaperName, a.N, a.NNZ())
	}
	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}

	algo, err := cliutil.ParseAlgorithm(*algoName)
	if err != nil {
		fail(err)
	}
	trees, err := cliutil.ParseTrees(*treeName)
	if err != nil {
		fail(err)
	}
	exec, err := cliutil.ParseExec(*execName)
	if err != nil {
		fail(err)
	}
	mode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		fail(err)
	}

	solver, err := core.NewSolver(sys, core.Config{
		Layout:     grid.Layout{Px: *px, Py: *py, Pz: *pz},
		Algorithm:  algo,
		Trees:      trees,
		Machine:    machine.ByName(*machineName),
		Trace:      true,
		TraceCap:   *traceCap,
		Exec:       exec,
		LevelChunk: *levelChunk,
		Mode:       mode,
		Staleness:  *staleness,
		RefineTol:  *refineTol,
		RefineMax:  *refineMax,
	})
	if err != nil {
		fail(err)
	}

	b := sparse.NewPanel(a.N, *nrhs)
	for i := range b.Data {
		b.Data[i] = 1
	}
	x, rep, err := solver.Solve(b)
	if err != nil {
		fail(err)
	}
	fmt.Printf("layout %dx%dx%d, %s, %s model: solve time %.6g s, residual %.3g\n",
		*px, *py, *pz, *algoName, *machineName, rep.Time, solver.Residual(x, b))
	if mode.Resolve() == trsv.ModeElastic {
		fmt.Printf("elastic: S=%d, %d stale supernodes, %d refinement passes, verified residual %.3g\n",
			*staleness, rep.StaleSupernodes, rep.RefinePasses, rep.Residual)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(f)
	if err := rep.Raw.WriteTraceNamed(w, trsv.TagName); err != nil {
		// A truncated-but-valid trace is worth keeping; warn and go on.
		var dropped *runtime.DroppedEventsError
		if !errors.As(err, &dropped) {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: warning: %d trace events dropped, raise -trace-cap\n", dropped.Dropped)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d events) — open in chrome://tracing or ui.perfetto.dev\n",
		*out, rep.Raw.Trace.Events())

	bd, err := rep.Raw.TraceBreakdown()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nbreakdown (mean s over %d participating ranks):\n", bd.Participants)
	for _, k := range []runtime.EventKind{runtime.EvCompute, runtime.EvSend, runtime.EvRecv, runtime.EvElapse} {
		fmt.Printf("  %-8s %.4g\n", k, bd.KindSeconds(k))
	}
	fmt.Printf("  wait-XY  %.4g\n", bd.Seconds[runtime.EvWait][runtime.CatXY])
	fmt.Printf("  wait-Z   %.4g\n", bd.Seconds[runtime.EvWait][runtime.CatZ])

	if ss, err := rep.Raw.LevelSweeps(); err == nil && ss.Sweeps > 0 {
		fmt.Printf("\nlevel sweeps (%s exec): %d sweeps covering %d tasks, mean %.1f tasks/sweep, widest %d\n",
			exec.Resolve(), ss.Sweeps, ss.Tasks, ss.MeanTasks(), ss.MaxTasks)
	}

	if !rep.Raw.Trace.Complete() {
		// Critical-path and edge analyses need every event; the written
		// (truncated) trace file is still usable in a viewer.
		fmt.Println("\nskipping critical-path and edge analyses: trace is truncated, raise -trace-cap for them")
		return
	}

	cp, err := rep.Raw.CriticalPath()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ncritical path: %.6g s = %.0f%% of the %.6g s makespan\n",
		cp.Length, 100*cp.Length/cp.Makespan, cp.Makespan)
	fmt.Printf("  %d steps, %d message hops, %.4g s in latency\n",
		len(cp.Steps), cp.MsgHops, cp.LatencySeconds)
	for c := runtime.Category(0); int(c) < runtime.NumCategories; c++ {
		if w := cp.WorkByCat[c]; w > 0 {
			fmt.Printf("  work on chain (%s): %.4g s\n", c, w)
		}
	}

	edges, err := rep.Raw.MessageEdges()
	if err != nil {
		fail(err)
	}
	name := func(tag int) string {
		if n := trsv.TagName(tag); n != "" {
			return n
		}
		return fmt.Sprintf("tag-%d", tag)
	}
	fmt.Printf("\ntop %d edges by least slack (0 = receiver was blocked on it):\n", *top)
	for _, e := range runtime.TopSlack(edges, *top) {
		fmt.Printf("  %-12s %3d -> %3d  %6d B  slack %.4g s\n", name(e.Tag), e.Src, e.Dst, e.Bytes, e.Slack)
	}
	fmt.Printf("top %d edges by receiver wait they ended:\n", *top)
	for _, e := range runtime.TopWait(edges, *top) {
		fmt.Printf("  %-12s %3d -> %3d  %6d B  wait %.4g s\n", name(e.Tag), e.Src, e.Dst, e.Bytes, e.Wait)
	}
}
